package convergence

import (
	"math/rand"
	"testing"
)

func ringStream(n int, chords ...Edge) []TimedEdge {
	var stream []TimedEdge
	for i := 0; i < n; i++ {
		stream = append(stream, TimedEdge{U: i, V: (i + 1) % n, Time: int64(i)})
	}
	for _, c := range chords {
		stream = append(stream, TimedEdge{U: c.U, V: c.V, Time: int64(len(stream))})
	}
	return stream
}

func TestPublicWatch(t *testing.T) {
	ev, err := NewEvolving(ringStream(20, Edge{U: 0, V: 10}, Edge{U: 5, V: 15}))
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Watch(ev, EvenWindows(0.8, 2), MonitorConfig{
		Selector: MustSelector("MaxAvg"), M: 5, MinDelta: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	found := 0
	for _, rep := range reports {
		found += len(rep.Pairs)
	}
	if found == 0 {
		t.Fatal("chord insertions should produce converging pairs")
	}
}

func TestPublicDynamicBFSAndTracker(t *testing.T) {
	ev, err := NewEvolving(ringStream(16, Edge{U: 0, V: 8}))
	if err != nil {
		t.Fatal(err)
	}
	g1 := ev.SnapshotPrefix(16)
	d, err := NewDynamicBFS(g1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertEdge(0, 8); err != nil {
		t.Fatal(err)
	}
	if d.Dist(8) != 1 {
		t.Fatalf("dist(8) = %d", d.Dist(8))
	}
	tr, err := NewLandmarkTracker(ev, []int{0, 4}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AdvanceToFraction(1.0); err != nil {
		t.Fatal(err)
	}
	top := tr.Top(3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
}

func TestPublicWeighted(t *testing.T) {
	g1, err := NewWeighted(6, []WeightedEdge{
		{U: 0, V: 1, Weight: 3}, {U: 1, V: 2, Weight: 3}, {U: 2, V: 3, Weight: 3},
		{U: 3, V: 4, Weight: 3}, {U: 4, V: 5, Weight: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewWeighted(6, []WeightedEdge{
		{U: 0, V: 1, Weight: 3}, {U: 1, V: 2, Weight: 3}, {U: 2, V: 3, Weight: 3},
		{U: 3, V: 4, Weight: 3}, {U: 4, V: 5, Weight: 3},
		{U: 0, V: 5, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pair := WeightedSnapshotPair{G1: g1, G2: g2}
	gt, err := WeightedGroundTruth(pair, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gt.MaxDelta != 14 { // d1(0,5)=15, d2=1
		t.Fatalf("MaxDelta = %d, want 14", gt.MaxDelta)
	}
	res, err := WeightedTopK(pair, WeightedOptions{Selector: "MaxAvg", M: 3, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 || res.Pairs[0].Delta != 14 {
		t.Fatalf("pairs = %v", res.Pairs)
	}
}

func TestPublicEmbedding(t *testing.T) {
	var stream []TimedEdge
	for i := 0; i < 19; i++ {
		stream = append(stream, TimedEdge{U: i, V: i + 1, Time: int64(i)})
	}
	ev, err := NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	g := ev.SnapshotFraction(1.0)
	e, err := EmbedGraph(g, []int{0, 19, 10}, nil, EmbedOptions{Dim: 3}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if e.Estimate(0, 19) < e.Estimate(0, 2) {
		t.Fatal("embedding ordering broken")
	}
	sel := NewEmbedSelector(EmbedOptions{Dim: 3}, 16)
	if sel.Name() != "EmbedSum" {
		t.Fatal("name")
	}
}

func TestPublicRegression(t *testing.T) {
	ev, err := NewEvolving(ringStream(30, Edge{U: 0, V: 15}, Edge{U: 7, V: 22}))
	if err != nil {
		t.Fatal(err)
	}
	pair := SnapshotPair{G1: ev.SnapshotPrefix(30), G2: ev.SnapshotFraction(1.0)}
	gt, err := ComputeGroundTruth(pair, 2)
	if err != nil {
		t.Fatal(err)
	}
	targets := PairDegreeTargets(gt.PairsAtLeast(gt.MaxDelta - 1))
	if len(targets) == 0 {
		t.Fatal("no targets")
	}
	model, err := TrainRegression(
		[]RegressionSample{{Pair: pair, Targets: targets}}, trainOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	sel := NewRegressionSelector("R-Classifier", model)
	res, err := TopK(pair, Options{Selector: sel, M: 15, L: 3, K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget.Total() > 30 {
		t.Fatalf("budget %d > 2m", res.Budget.Total())
	}
}

func TestPublicExplain(t *testing.T) {
	ev, err := NewEvolving(ringStream(12, Edge{U: 0, V: 6}))
	if err != nil {
		t.Fatal(err)
	}
	pair := SnapshotPair{G1: ev.SnapshotPrefix(12), G2: ev.SnapshotFraction(1.0)}
	res, err := TopK(pair, Options{Selector: MustSelector("MaxAvg"), M: 4, K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no pairs")
	}
	exp, err := Explain(pair, res.Pairs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.NewEdges) == 0 {
		t.Fatalf("explanation without new edges: %v", exp)
	}
	if int32(len(exp.Path)-1) != res.Pairs[0].D2 {
		t.Fatal("path length mismatch")
	}
}
