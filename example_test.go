package convergence_test

import (
	"fmt"

	convergence "repro"
)

// Example demonstrates the core workflow: build an evolving graph, take two
// snapshots, and find the most-converged pairs on a budget.
func Example() {
	// A path 0-1-2-3-4-5 grows a shortcut {0,5}.
	var stream []convergence.TimedEdge
	for i := 0; i < 5; i++ {
		stream = append(stream, convergence.TimedEdge{U: i, V: i + 1, Time: int64(i)})
	}
	stream = append(stream, convergence.TimedEdge{U: 0, V: 5, Time: 5})
	ev, _ := convergence.NewEvolving(stream)

	pair := convergence.SnapshotPair{
		G1: ev.SnapshotPrefix(5), // before the shortcut
		G2: ev.SnapshotFraction(1.0),
	}
	res, _ := convergence.TopK(pair, convergence.Options{
		Selector: convergence.MustSelector("MaxAvg"),
		M:        2,
		K:        1,
		Seed:     1,
	})
	p := res.Pairs[0]
	fmt.Printf("pair (%d,%d) converged from %d to %d\n", p.U, p.V, p.D1, p.D2)
	// Output: pair (0,5) converged from 5 to 1
}

// ExampleComputeGroundTruth shows the exact, unbudgeted baseline and the
// δ-threshold way of choosing k.
func ExampleComputeGroundTruth() {
	var stream []convergence.TimedEdge
	for i := 0; i < 7; i++ {
		stream = append(stream, convergence.TimedEdge{U: i, V: i + 1, Time: int64(i)})
	}
	stream = append(stream, convergence.TimedEdge{U: 0, V: 7, Time: 7})
	ev, _ := convergence.NewEvolving(stream)
	pair, _ := ev.Pair(0.875, 1.0)

	gt, _ := convergence.ComputeGroundTruth(pair, 1)
	fmt.Printf("Δmax=%d, pairs with Δ>=Δmax: %d\n", gt.MaxDelta, gt.KForDelta(gt.MaxDelta))
	// Output: Δmax=6, pairs with Δ>=Δmax: 1
}

// ExampleGreedyCover shows the vertex-cover view of candidate endpoints:
// a few nodes cover all converging pairs.
func ExampleGreedyCover() {
	pairs := []convergence.Pair{
		{U: 0, V: 5, Delta: 3},
		{U: 0, V: 7, Delta: 3},
		{U: 0, V: 9, Delta: 2},
	}
	cover := convergence.GreedyCover(pairs)
	fmt.Printf("cover: %v covers all %d pairs: %v\n",
		cover, len(pairs), convergence.IsCover(pairs, cover))
	// Output: cover: [0] covers all 3 pairs: true
}

// ExampleCoverage shows the evaluation metric: the fraction of true pairs
// recoverable from a candidate set.
func ExampleCoverage() {
	pairs := []convergence.Pair{{U: 1, V: 4}, {U: 2, V: 5}, {U: 3, V: 6}}
	fmt.Printf("%.2f\n", convergence.Coverage(pairs, []int{4, 5}))
	// Output: 0.67
}

// ExampleExplain traces the new edges responsible for a convergence.
func ExampleExplain() {
	var stream []convergence.TimedEdge
	for i := 0; i < 5; i++ {
		stream = append(stream, convergence.TimedEdge{U: i, V: i + 1, Time: int64(i)})
	}
	stream = append(stream, convergence.TimedEdge{U: 0, V: 5, Time: 5})
	ev, _ := convergence.NewEvolving(stream)
	pair := convergence.SnapshotPair{G1: ev.SnapshotPrefix(5), G2: ev.SnapshotFraction(1.0)}

	top, _ := convergence.Exact(pair, 1, 1)
	exp, _ := convergence.Explain(pair, top[0])
	fmt.Println(exp)
	// Output: (0,5) Δ=4 via 0 == 5  (== marks the 1 new edges)
}

// ExampleWeightedTopK runs the Dijkstra-based weighted variant.
func ExampleWeightedTopK() {
	// A heavy 4-segment road 0-1-2-3-4 (weight 5 each) gets a weight-1
	// bypass between its ends.
	mk := func(withBypass bool) *convergence.Weighted {
		edges := []convergence.WeightedEdge{
			{U: 0, V: 1, Weight: 5}, {U: 1, V: 2, Weight: 5},
			{U: 2, V: 3, Weight: 5}, {U: 3, V: 4, Weight: 5},
		}
		if withBypass {
			edges = append(edges, convergence.WeightedEdge{U: 0, V: 4, Weight: 1})
		}
		g, _ := convergence.NewWeighted(5, edges)
		return g
	}
	pair := convergence.WeightedSnapshotPair{G1: mk(false), G2: mk(true)}
	res, _ := convergence.WeightedTopK(pair, convergence.WeightedOptions{
		Selector: "MaxAvg", M: 2, K: 1, Seed: 1,
	})
	p := res.Pairs[0]
	fmt.Printf("(%d,%d) travel time %d -> %d\n", p.U, p.V, p.D1, p.D2)
	// Output: (0,4) travel time 20 -> 1
}
