package candidates

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/topk"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	trainPair := growingPair(t, 150, 91)
	model, err := Train([]TrainSample{trainSampleFor(t, trainPair)},
		TrainOptions{L: 4, Workers: 2, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.L != model.L || loaded.Global != model.Global {
		t.Fatal("metadata lost")
	}
	for i := range model.LogReg.Weights {
		if loaded.LogReg.Weights[i] != model.LogReg.Weights[i] {
			t.Fatal("weights changed")
		}
	}
	// Loaded model selects the same candidates.
	testPair := growingPair(t, 150, 93)
	a, err := Classifier("L", model).Select(newCtx(testPair, 30, 4, 94))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Classifier("L", loaded).Select(newCtx(testPair, 30, 4, 94))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded model selects differently")
		}
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	trainPair := growingPair(t, 120, 95)
	model, err := Train([]TrainSample{trainSampleFor(t, trainPair)},
		TrainOptions{L: 3, Workers: 2, Seed: 96})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.json"
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(path + ".missing"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestRegressionModelRoundTrip(t *testing.T) {
	pair := growingPair(t, 120, 97)
	gt, err := topk.Compute(pair, topk.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	targets := PairDegreeTargets(gt.Pairs)
	if len(targets) == 0 {
		t.Skip("no pairs at this seed")
	}
	model, err := TrainRegression([]RegressionSample{{Pair: pair, Targets: targets}},
		TrainOptions{L: 3, Workers: 2, Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRegressionModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.LinReg.Bias != model.LinReg.Bias {
		t.Fatal("bias changed")
	}
	path := t.TempDir() + "/reg.json"
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegressionModelFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestModelKindMismatch(t *testing.T) {
	pair := growingPair(t, 120, 99)
	model, err := Train([]TrainSample{trainSampleFor(t, pair)},
		TrainOptions{L: 3, Workers: 2, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegressionModel(&buf); !errors.Is(err, ErrModelKind) {
		t.Fatalf("err = %v, want ErrModelKind", err)
	}
}

func TestLoadModelCorrupt(t *testing.T) {
	cases := map[string]string{
		"garbage":     "not json",
		"bad version": `{"kind":"logistic","version":99,"weights":[1],"scaler_min":[0],"scaler_max":[1]}`,
		"shape":       `{"kind":"logistic","version":1,"weights":[1,2],"scaler_min":[0],"scaler_max":[1]}`,
		"width":       `{"kind":"logistic","version":1,"weights":[1],"scaler_min":[0],"scaler_max":[1]}`,
	}
	for name, payload := range cases {
		if _, err := LoadModel(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSaveUntrained(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Model{}).Save(&buf); err == nil {
		t.Error("untrained classifier save should fail")
	}
	if err := (&RegressionModel{}).Save(&buf); err == nil {
		t.Error("untrained regression save should fail")
	}
}
