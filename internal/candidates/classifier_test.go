package candidates

import (
	"errors"
	"testing"

	"repro/internal/cover"
	"repro/internal/graph"
	"repro/internal/topk"
)

// trainSampleFor computes ground truth for a pair and labels the greedy
// cover of the δ = Δmax - 1 pairs graph as positive.
func trainSampleFor(t testing.TB, sp graph.SnapshotPair) TrainSample {
	t.Helper()
	gt, err := topk.Compute(sp, topk.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	delta := gt.MaxDelta - 1
	if delta < 1 {
		delta = 1
	}
	pairs := gt.PairsAtLeast(delta)
	positives := map[int32]bool{}
	for _, u := range cover.Greedy(pairs) {
		positives[u] = true
	}
	return TrainSample{Pair: sp, Positives: positives}
}

func TestTrainAndSelect(t *testing.T) {
	trainPair := growingPair(t, 150, 21)
	testPair := growingPair(t, 150, 22)

	sample := trainSampleFor(t, trainPair)
	if len(sample.Positives) == 0 {
		t.Fatal("training pair produced no positives; pick another seed")
	}
	model, err := Train([]TrainSample{sample}, TrainOptions{L: 4, Workers: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if model.Global {
		t.Fatal("local model marked global")
	}
	if len(model.LogReg.Weights) != NumNodeFeatures {
		t.Fatalf("weights = %d, want %d", len(model.LogReg.Weights), NumNodeFeatures)
	}

	sel := Classifier("L-Classifier", model)
	if sel.Name() != "L-Classifier" {
		t.Fatal("name mismatch")
	}
	ctx := newCtx(testPair, 30, 4, 24)
	got, err := sel.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// m - 3l candidates.
	if len(got) != 30-12 {
		t.Fatalf("got %d candidates, want 18", len(got))
	}
	// Setup cost 6l = 24 (Table 1).
	if rep := ctx.Meter.Report(); rep.CandidateGen != 24 {
		t.Fatalf("classifier charged %d, want 6l=24", rep.CandidateGen)
	}
	for _, u := range got {
		if testPair.G1.Degree(u) == 0 {
			t.Fatalf("candidate %d absent from G1", u)
		}
	}
}

func TestTrainGlobalModel(t *testing.T) {
	s1 := trainSampleFor(t, growingPair(t, 120, 31))
	s2 := trainSampleFor(t, growingPair(t, 120, 32))
	model, err := Train([]TrainSample{s1, s2}, TrainOptions{Global: true, L: 3, Workers: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if !model.Global || len(model.LogReg.Weights) != NumGlobalFeatures {
		t.Fatalf("global model wrong shape: global=%v width=%d", model.Global, len(model.LogReg.Weights))
	}
	sel := Classifier("G-Classifier", model)
	ctx := newCtx(growingPair(t, 120, 34), 25, 3, 35)
	got, err := sel.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 25-9 {
		t.Fatalf("got %d candidates, want 16", len(got))
	}
}

func TestClassifierBudgetTooSmall(t *testing.T) {
	model := &Model{LogReg: nil}
	sel := Classifier("L-Classifier", model)
	ctx := newCtx(growingPair(t, 60, 41), 5, 0, 42)
	if _, err := sel.Select(ctx); err == nil {
		t.Fatal("untrained model should fail")
	}
	trained, err := Train([]TrainSample{trainSampleFor(t, growingPair(t, 120, 43))},
		TrainOptions{L: 10, Workers: 2, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	ctx = newCtx(growingPair(t, 60, 45), 20, 10, 46) // m=20 <= 3l=30
	_, err = Classifier("L-Classifier", trained).Select(ctx)
	if !errors.Is(err, ErrBudgetTooSmall) {
		t.Fatalf("err = %v, want ErrBudgetTooSmall", err)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Fatal("no samples should fail")
	}
	// All-negative labels cannot train.
	sp := growingPair(t, 60, 51)
	_, err := Train([]TrainSample{{Pair: sp, Positives: map[int32]bool{}}}, TrainOptions{L: 3, Seed: 52})
	if err == nil {
		t.Fatal("single-class training should fail")
	}
}

// The classifier should learn to rank true cover nodes highly when trained
// and tested on the same distribution (a smoke test of end-to-end learning).
func TestClassifierLearnsCoverMembership(t *testing.T) {
	trainPair := growingPair(t, 200, 61)
	testPair := growingPair(t, 200, 62)
	model, err := Train([]TrainSample{trainSampleFor(t, trainPair)},
		TrainOptions{L: 5, Workers: 2, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate: candidates from the classifier should cover a decent share
	// of the test pair's top pairs — far above the random baseline.
	gt, err := topk.Compute(testPair, topk.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	delta := gt.MaxDelta - 1
	if delta < 1 {
		delta = 1
	}
	truth := gt.PairsAtLeast(delta)
	if len(truth) == 0 {
		t.Skip("test pair has no converging pairs at this seed")
	}
	m := 40
	clfCands, err := Classifier("L-Classifier", model).Select(newCtx(testPair, m, 5, 64))
	if err != nil {
		t.Fatal(err)
	}
	rndCands, err := Random().Select(newCtx(testPair, m, 5, 64))
	if err != nil {
		t.Fatal(err)
	}
	clfCov := topk.Coverage(truth, topk.NodeSet(clfCands))
	rndCov := topk.Coverage(truth, topk.NodeSet(rndCands))
	if clfCov < rndCov {
		t.Fatalf("classifier coverage %.2f below random %.2f", clfCov, rndCov)
	}
}

func TestFeatureImportance(t *testing.T) {
	model, err := Train([]TrainSample{trainSampleFor(t, growingPair(t, 150, 81))},
		TrainOptions{L: 4, Workers: 2, Seed: 82})
	if err != nil {
		t.Fatal(err)
	}
	fw := model.FeatureImportance()
	if len(fw) != NumNodeFeatures {
		t.Fatalf("weights = %d", len(fw))
	}
	for i := 1; i < len(fw); i++ {
		absPrev, absCur := fw[i-1].Weight, fw[i].Weight
		if absPrev < 0 {
			absPrev = -absPrev
		}
		if absCur < 0 {
			absCur = -absCur
		}
		if absPrev < absCur {
			t.Fatal("importance not sorted by magnitude")
		}
	}
	names := map[string]bool{}
	for _, w := range fw {
		names[w.Name] = true
	}
	if !names["L1_maxmin"] || !names["deg_t1"] {
		t.Fatalf("feature names missing: %v", fw)
	}
	if (&Model{}).FeatureImportance() != nil {
		t.Fatal("untrained importance should be nil")
	}
	if (&RegressionModel{}).FeatureImportance() != nil {
		t.Fatal("untrained regression importance should be nil")
	}
}
