package candidates

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/ml"
)

// Model is a trained classification-based candidate generator: a logistic
// regression plus the feature scaler fitted on its training data. Global
// models carry the four dataset-level features and can be applied to any
// graph; local models are trained and applied on snapshots of one dataset.
type Model struct {
	LogReg *ml.LogisticRegression
	Scaler *ml.Scaler
	Global bool
	// L is the landmark-set size the features were built with; selection
	// must use the same value.
	L int
}

// TrainSample is one training snapshot pair with its positive class: the
// paper uses membership in the greedy vertex cover of the training pair's
// G^p_k (using all G^p_k endpoints gives very similar results).
type TrainSample struct {
	Pair      graph.SnapshotPair
	Positives map[int32]bool
}

// TrainOptions configures classifier training.
type TrainOptions struct {
	// Global appends dataset-level features, producing a model usable on any
	// graph (the paper's G-Classifier). Local models (L-Classifier) omit
	// them.
	Global bool
	// L is the landmark-set size; 0 means DefaultLandmarks.
	L int
	// Workers bounds BFS parallelism during feature extraction.
	Workers int
	// Seed drives landmark sampling during feature extraction.
	Seed int64
	// ML forwards training hyperparameters to the logistic regression.
	ML ml.TrainOptions
}

// Train builds a classifier Model from one or more labeled training pairs.
// Feature extraction during training is not budget-metered: the paper trains
// offline on earlier snapshots (the 60%/70% prefixes) and only meters the
// test-time selection. Nodes absent from G_t1 (degree 0) are excluded from
// the training set. For a global model, samples from several datasets should
// be passed together (the paper mixes all four in equal proportions).
func Train(samples []TrainSample, opts TrainOptions) (*Model, error) {
	if len(samples) == 0 {
		return nil, errors.New("candidates: no training samples")
	}
	l := opts.L
	if l <= 0 {
		l = DefaultLandmarks
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var x [][]float64
	var y []bool
	for i, s := range samples {
		ctx := &Context{
			Pair:    s.Pair,
			M:       1, // Validate requires a positive budget; unmetered here
			L:       l,
			RNG:     rng,
			Workers: opts.Workers,
		}
		feats, err := BuildFeatures(ctx, opts.Global)
		if err != nil {
			return nil, fmt.Errorf("candidates: training sample %d: %w", i, err)
		}
		for u := 0; u < s.Pair.G1.NumNodes(); u++ {
			if s.Pair.G1.Degree(u) == 0 {
				continue
			}
			x = append(x, feats[u])
			y = append(y, s.Positives[int32(u)])
		}
	}
	scaler, err := ml.FitScaler(x)
	if err != nil {
		return nil, fmt.Errorf("candidates: scaler: %w", err)
	}
	if _, err := scaler.ApplyAll(x); err != nil {
		return nil, err
	}
	logreg, err := ml.Fit(x, y, opts.ML)
	if err != nil {
		return nil, fmt.Errorf("candidates: logistic regression: %w", err)
	}
	return &Model{LogReg: logreg, Scaler: scaler, Global: opts.Global, L: l}, nil
}

// classifierSelector ranks nodes by the model's cover-membership
// probability.
type classifierSelector struct {
	name  string
	model *Model
}

// Classifier wraps a trained Model as a Selector. Use "L-Classifier" or
// "G-Classifier" as the name to match the paper's labels.
func Classifier(name string, model *Model) Selector {
	return classifierSelector{name: name, model: model}
}

func (s classifierSelector) Name() string { return s.name }

// Select builds test-time features (costing the 3·2l landmark setup of
// Table 1), scores every G_t1 node with the model, and returns the m − 3l
// most probable cover members.
func (s classifierSelector) Select(ctx *Context) ([]int, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if s.model == nil || s.model.LogReg == nil || s.model.Scaler == nil {
		return nil, fmt.Errorf("candidates: %s has no trained model", s.name)
	}
	l := s.model.L
	if l <= 0 {
		l = DefaultLandmarks
	}
	setup := 3 * l // landmark sources whose 2x SSSPs the features consume
	if ctx.M <= setup {
		return nil, fmt.Errorf("%w: m=%d <= 3l=%d classifier setup", ErrBudgetTooSmall, ctx.M, setup)
	}
	// Force the model's landmark count onto the feature build.
	fctx := *ctx
	fctx.L = l
	feats, err := BuildFeatures(&fctx, s.model.Global)
	if err != nil {
		return nil, fmt.Errorf("candidates: %s features: %w", s.name, err)
	}
	// Copy caches back so the extraction phase can reuse landmark rows.
	ctx.D1Rows = fctx.D1Rows
	ctx.D2Rows = fctx.D2Rows

	s1 := ctx.S1
	n := s1.NumNodes()
	score := make([]float64, n)
	exclude := make(map[int]bool)
	for u := 0; u < n; u++ {
		if s1.Degree(u) == 0 {
			exclude[u] = true
			continue
		}
		row := make([]float64, len(feats[u]))
		copy(row, feats[u])
		if _, err := s.model.Scaler.Apply(row); err != nil {
			return nil, fmt.Errorf("candidates: %s scaling: %w", s.name, err)
		}
		score[u] = s.model.LogReg.Predict(row)
	}
	return landmark.TopByScore(score, ctx.M-setup, exclude), nil
}

// FeatureWeight pairs a feature name with its trained weight; the scaler
// maps all features to [-1, 1], so magnitudes are comparable.
type FeatureWeight struct {
	Name   string
	Weight float64
}

// FeatureImportance returns the model's weights by feature, sorted by
// absolute magnitude descending — which structural signals the classifier
// actually learned to rely on (the paper notes the classifier "automatically
// finds the appropriate features for each dataset"; this makes that
// inspectable).
func (m *Model) FeatureImportance() []FeatureWeight {
	if m.LogReg == nil {
		return nil
	}
	return rankWeights(m.LogReg.Weights, m.Global)
}

// FeatureImportance is the regression model's analogue.
func (m *RegressionModel) FeatureImportance() []FeatureWeight {
	if m.LinReg == nil {
		return nil
	}
	return rankWeights(m.LinReg.Weights, m.Global)
}

func rankWeights(weights []float64, global bool) []FeatureWeight {
	names := FeatureNames(global)
	out := make([]FeatureWeight, 0, len(weights))
	for i, w := range weights {
		name := fmt.Sprintf("feature%d", i)
		if i < len(names) {
			name = names[i]
		}
		out = append(out, FeatureWeight{Name: name, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Weight, out[j].Weight
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return out[i].Name < out[j].Name
	})
	return out
}
