package candidates

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/sssp"
)

// Feature layout for the classification-based selectors (Section 5.3): the
// degree of the node in the first snapshot, the degree difference, the
// relative degree difference, and the L1 and L∞ landmark delta norms for
// random, MaxMin- and MaxAvg-selected landmark sets.
const (
	FeatDeg1 = iota
	FeatDegDiff
	FeatDegRel
	FeatL1Random
	FeatLInfRandom
	FeatL1MaxMin
	FeatLInfMaxMin
	FeatL1MaxAvg
	FeatLInfMaxAvg
	// NumNodeFeatures is the per-node feature count of the local classifier.
	NumNodeFeatures
)

// Global (per-dataset) features appended by the global classifier: density
// and maximum degree of both snapshots (max degree is normalized by the node
// count so it is comparable across datasets).
const (
	FeatDensity1 = NumNodeFeatures + iota
	FeatDensity2
	FeatMaxDeg1
	FeatMaxDeg2
	// NumGlobalFeatures is the total feature count of the global classifier.
	NumGlobalFeatures
)

// FeatureNames returns the feature labels, in column order, for either the
// local (global=false) or global (global=true) feature layout.
func FeatureNames(global bool) []string {
	names := []string{
		"deg_t1", "deg_diff", "deg_rel",
		"L1_random", "Linf_random",
		"L1_maxmin", "Linf_maxmin",
		"L1_maxavg", "Linf_maxavg",
	}
	if global {
		names = append(names, "density_t1", "density_t2", "maxdeg_t1", "maxdeg_t2")
	}
	return names
}

// BuildFeatures computes the classifier feature matrix for every node of the
// snapshot pair (rows indexed by node ID, unscaled). Features are built from
// degrees and metered distance rows only, so the same matrix layout works
// for BFS and Dijkstra distance sources. It consumes the classifier's setup
// budget: three landmark sets of l nodes each, costing 3·2l SSSP
// computations (Table 1). The landmark rows are cached in ctx for potential
// reuse by the extraction phase. When global is true the four dataset-level
// features are appended to every row.
func BuildFeatures(ctx *Context, global bool) ([][]float64, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if ctx.RNG == nil {
		return nil, fmt.Errorf("candidates: feature extraction requires an RNG for random landmarks")
	}
	s1, s2 := ctx.S1, ctx.S2
	n := s1.NumNodes()
	width := NumNodeFeatures
	if global {
		width = NumGlobalFeatures
	}
	x := make([][]float64, n)
	backing := make([]float64, n*width)
	for u := 0; u < n; u++ {
		x[u] = backing[u*width : (u+1)*width : (u+1)*width]
		d1, d2 := s1.Degree(u), s2.Degree(u)
		x[u][FeatDeg1] = float64(d1)
		x[u][FeatDegDiff] = float64(d2 - d1)
		if d1 > 0 {
			x[u][FeatDegRel] = float64(d2-d1) / float64(d1)
		}
	}

	for _, spec := range []struct {
		strategy landmark.Strategy
		l1Col    int
		infCol   int
	}{
		{landmark.Random, FeatL1Random, FeatLInfRandom},
		{landmark.MaxMin, FeatL1MaxMin, FeatLInfMaxMin},
		{landmark.MaxAvg, FeatL1MaxAvg, FeatLInfMaxAvg},
	} {
		set, err := landmark.SelectSource(spec.strategy, s1, ctx.Landmarks(), ctx.RNG, ctx.Meter)
		if err != nil {
			return nil, fmt.Errorf("candidates: %v landmarks: %w", spec.strategy, err)
		}
		norms, d1rows, d2rows, err := landmark.ComputeNormsSource(set, ctx.Sources(), ctx.Meter, ctx.Workers)
		if err != nil {
			return nil, fmt.Errorf("candidates: %v norms: %w", spec.strategy, err)
		}
		for i, w := range set.Nodes {
			ctx.CacheD1(w, d1rows[i])
			ctx.CacheD2(w, d2rows[i])
		}
		for u := 0; u < n; u++ {
			x[u][spec.l1Col] = float64(norms.L1[u])
			x[u][spec.infCol] = float64(norms.LInf[u])
		}
	}

	if global {
		gf := GlobalFeaturesSources(ctx.Sources())
		for u := 0; u < n; u++ {
			copy(x[u][NumNodeFeatures:], gf)
		}
	}
	return x, nil
}

// GlobalFeatures returns the four dataset-level features of an unweighted
// snapshot pair: density of both snapshots and maximum degree normalized by
// node count.
func GlobalFeatures(pair graph.SnapshotPair) []float64 {
	return GlobalFeaturesSources(dist.BFSPair(pair, sssp.Auto))
}

// GlobalFeaturesSources is GlobalFeatures over any distance-source pair;
// the features are structural (degree-derived), hence metric-independent.
func GlobalFeaturesSources(p dist.Pair) []float64 {
	n := float64(p.NumNodes())
	if n == 0 {
		n = 1
	}
	return []float64{
		dist.Density(p.S1),
		dist.Density(p.S2),
		float64(dist.MaxDegree(p.S1)) / n,
		float64(dist.MaxDegree(p.S2)) / n,
	}
}
