package candidates

import (
	"fmt"
	"sort"
)

// registry maps the paper's algorithm names (Table 4) to constructors for
// the single-feature selectors. Classifier and Incidence selectors are not
// here: the former need a trained Model, the latter live in
// internal/incidence to keep the baseline code separate.
var registry = map[string]func() Selector{
	"Degree":  Degree,
	"DegDiff": DegDiff,
	"DegRel":  DegRel,
	"MaxMin":  MaxMin,
	"MaxAvg":  MaxAvg,
	"SumDiff": SumDiff,
	"MaxDiff": MaxDiff,
	"MMSD":    MMSD,
	"MMMD":    MMMD,
	"MASD":    MASD,
	"MAMD":    MAMD,
	"Random":  Random,
}

// Descriptions reproduces the paper's Table 4: one line per selector
// explaining its ranking rule.
var Descriptions = map[string]string{
	"Degree":  "Selects the m nodes with the largest deg_t1(u).",
	"DegDiff": "Selects the m nodes with the largest deg_t2(u) - deg_t1(u).",
	"DegRel":  "Selects the m nodes with the largest (deg_t2(u) - deg_t1(u)) / deg_t1(u).",
	"MaxMin":  "Greedily selects nodes in G_t1 maximizing the minimum distance to the already-selected nodes.",
	"MaxAvg":  "Greedily selects nodes in G_t1 maximizing the average distance to the already-selected nodes.",
	"SumDiff": "Selects the nodes with the largest sum of distance decreases from a set of random landmarks.",
	"MaxDiff": "Selects the nodes with the largest maximum distance decrease from a set of random landmarks.",
	"MMSD":    "MaxMin-SumDiff: MaxMin landmark selection, SumDiff node ranking.",
	"MMMD":    "MaxMin-MaxDiff: MaxMin landmark selection, MaxDiff node ranking.",
	"MASD":    "MaxAvg-SumDiff: MaxAvg landmark selection, SumDiff node ranking.",
	"MAMD":    "MaxAvg-MaxDiff: MaxAvg landmark selection, MaxDiff node ranking.",
	"Random":  "Selects m uniformly random nodes of G_t1 (sanity baseline; not in the paper's table).",
}

// ByName constructs the named single-feature selector.
func ByName(name string) (Selector, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("candidates: unknown selector %q (known: %v)", name, Names())
	}
	return ctor(), nil
}

// Names lists the registered selector names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PaperOrder lists the single-feature selectors in the row order of the
// paper's Table 5.
var PaperOrder = []string{
	"Degree", "DegDiff", "DegRel",
	"MaxMin", "MaxAvg",
	"SumDiff", "MaxDiff",
	"MMSD", "MMMD", "MASD", "MAMD",
}

// All constructs every selector in PaperOrder.
func All() []Selector {
	out := make([]Selector, 0, len(PaperOrder))
	for _, name := range PaperOrder {
		sel, err := ByName(name)
		if err != nil {
			panic(err) // PaperOrder and registry are maintained together
		}
		out = append(out, sel)
	}
	return out
}
