// Package candidates implements the paper's candidate-endpoint generation
// algorithms (Section 4.2): centrality-based (Degree, DegDiff, DegRel),
// dispersion-based (MaxMin, MaxAvg), landmark-based (SumDiff, MaxDiff), the
// four hybrids (MMSD, MMMD, MASD, MAMD), a uniform-random baseline, and the
// classification-based selectors built on internal/ml.
//
// A Selector consumes a Context — the snapshot pair as a pair of abstract
// distance sources (dist.Source), the endpoint budget m, the landmark count
// l, an RNG, and a budget meter — and returns at most m candidate node IDs.
// Because selection only reads degrees, adjacency, and metered distance
// rows, every selector here runs unchanged on BFS distances (unweighted
// snapshots) and Dijkstra distances (weighted snapshots). All shortest-path
// work is charged to the meter; distance rows on G_t1 computed during
// selection are cached in the Context so the top-k extraction phase can
// reuse them, reproducing the paper's Table 1 budget split exactly.
package candidates

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/budget"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/sssp"
)

// DefaultLandmarks is the paper's landmark-set size (Section 5.1 fixes
// l = 10 for all algorithms; larger values did not improve performance).
const DefaultLandmarks = 10

// Context carries the inputs of one candidate-generation run.
type Context struct {
	// Pair is the unweighted (G_t1, G_t2) snapshot pair. Optional when S1/S2
	// are set directly: only the structural selectors (BetDiff, Incidence,
	// EmbedSum) and classifier training need raw graphs; the paper's thirteen
	// selectors run on the abstract sources alone.
	Pair graph.SnapshotPair
	// S1 and S2 are the snapshots as abstract distance sources. When nil,
	// Validate derives BFS sources from Pair, so unweighted callers can keep
	// constructing Contexts from a pair only.
	S1, S2 dist.Source
	// M is the endpoint budget: at most M candidates, 2M SSSPs total.
	M int
	// L is the landmark-set size; 0 means DefaultLandmarks.
	L int
	// RNG drives the random choices (landmark sampling, Random baseline).
	RNG *rand.Rand
	// Meter receives every SSSP charge. nil disables budget enforcement.
	Meter *budget.Meter
	// Workers bounds SSSP parallelism; <=0 means GOMAXPROCS.
	Workers int
	// Ctx, when non-nil, carries the query's cancellation signal. Selectors
	// whose selection sweeps many sources should pass it to the ctx-aware
	// dist drivers (dist.SweepCtx) so an abandoned query stops traversing;
	// core checks it between phases regardless, so honoring it here only
	// sharpens promptness, never correctness.
	Ctx context.Context

	// D1Rows and D2Rows cache distance rows on G_t1 / G_t2 keyed by source
	// node, filled by selectors whose selection work already computed them
	// (dispersion picks, hybrid landmark rows). The extraction phase
	// consults these caches before spending more budget, which is what
	// makes the overall cost land exactly on the paper's 2m.
	D1Rows map[int][]int32
	D2Rows map[int][]int32

	// LandmarkNodes records the landmark set whose full (d1, d2) row pairs
	// the selector cached in D1Rows/D2Rows (the landmark and hybrid
	// selectors). The pruned extraction uses those rows to upper-bound each
	// candidate's best achievable Δ before traversing it; selectors that
	// cache no d2 rows leave it empty and extraction simply cannot skip
	// whole candidates.
	LandmarkNodes []int
}

// Landmarks returns the effective landmark count.
func (ctx *Context) Landmarks() int {
	if ctx.L > 0 {
		return ctx.L
	}
	return DefaultLandmarks
}

// Sources returns the snapshot pair as a dist.Pair (valid after Validate).
func (ctx *Context) Sources() dist.Pair { return dist.Pair{S1: ctx.S1, S2: ctx.S2} }

// Unweighted returns the raw unweighted snapshot pair for structural
// selectors that need more than distances (betweenness, embeddings,
// incidence). It fails with a clear error when the run is driven by a
// non-BFS distance source, e.g. a weighted pipeline run.
func (ctx *Context) Unweighted() (graph.SnapshotPair, error) {
	if ctx.Pair.G1 != nil && ctx.Pair.G2 != nil {
		return ctx.Pair, nil
	}
	if g1, ok := dist.UnweightedGraph(ctx.S1); ok {
		if g2, ok2 := dist.UnweightedGraph(ctx.S2); ok2 {
			return graph.SnapshotPair{G1: g1, G2: g2}, nil
		}
	}
	return graph.SnapshotPair{}, errors.New(
		"candidates: selector requires unweighted snapshots (structural graph access)")
}

// CacheD1 records a distance row on G_t1 for later reuse.
func (ctx *Context) CacheD1(node int, row []int32) {
	if ctx.D1Rows == nil {
		ctx.D1Rows = make(map[int][]int32)
	}
	ctx.D1Rows[node] = row
}

// CacheD2 records a distance row on G_t2 for later reuse.
func (ctx *Context) CacheD2(node int, row []int32) {
	if ctx.D2Rows == nil {
		ctx.D2Rows = make(map[int][]int32)
	}
	ctx.D2Rows[node] = row
}

// Validate checks the Context invariants shared by all selectors, deriving
// the distance sources from Pair when the caller did not set them.
func (ctx *Context) Validate() error {
	if ctx.S1 == nil || ctx.S2 == nil {
		if err := ctx.Pair.Validate(); err != nil {
			return err
		}
		ctx.S1 = dist.NewBFS(ctx.Pair.G1, sssp.Auto)
		ctx.S2 = dist.NewBFS(ctx.Pair.G2, sssp.Auto)
	}
	if n1, n2 := ctx.S1.NumNodes(), ctx.S2.NumNodes(); n1 != n2 {
		return fmt.Errorf("candidates: node universes differ: %d vs %d", n1, n2)
	}
	if ctx.M <= 0 {
		return fmt.Errorf("candidates: non-positive endpoint budget m=%d", ctx.M)
	}
	return nil
}

// Selector generates candidate endpoints for the converging-pairs search.
type Selector interface {
	// Name returns the paper's algorithm name (Table 4).
	Name() string
	// Select returns at most ctx.M candidate node IDs, charging any
	// shortest-path work to ctx.Meter.
	Select(ctx *Context) ([]int, error)
}

// ErrBudgetTooSmall reports a budget m that cannot even pay for the
// selector's setup (e.g. landmark computation).
var ErrBudgetTooSmall = errors.New("candidates: budget too small for selector setup")

// --- Centrality-based selection (Section 4.2.1) ---

// degreeKind distinguishes the three degree-derived rankings.
type degreeKind int

const (
	byDegree degreeKind = iota
	byDegDiff
	byDegRel
)

// degreeSelector ranks nodes by a degree statistic. It performs no
// shortest-path work during selection.
type degreeSelector struct {
	kind degreeKind
}

// Degree ranks by degree in G_t1 — the paper shows it is negatively
// correlated with converging-pair participation (high-degree nodes are
// already central).
func Degree() Selector { return degreeSelector{byDegree} }

// DegDiff ranks by the absolute degree increase deg_t2 - deg_t1.
func DegDiff() Selector { return degreeSelector{byDegDiff} }

// DegRel ranks by the relative degree increase
// (deg_t2 - deg_t1) / deg_t1, mitigating preferential attachment.
func DegRel() Selector { return degreeSelector{byDegRel} }

func (s degreeSelector) Name() string {
	switch s.kind {
	case byDegree:
		return "Degree"
	case byDegDiff:
		return "DegDiff"
	default:
		return "DegRel"
	}
}

func (s degreeSelector) Select(ctx *Context) ([]int, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	s1, s2 := ctx.S1, ctx.S2
	n := s1.NumNodes()
	score := make([]float64, n)
	eligible := make([]int, 0, n)
	for u := 0; u < n; u++ {
		d1, d2 := s1.Degree(u), s2.Degree(u)
		switch s.kind {
		case byDegree:
			if d1 == 0 {
				continue // not present in G_t1
			}
			score[u] = float64(d1)
		case byDegDiff:
			if d1 == 0 {
				continue
			}
			score[u] = float64(d2 - d1)
		case byDegRel:
			if d1 == 0 {
				continue // relative change undefined for new nodes
			}
			score[u] = float64(d2-d1) / float64(d1)
		}
		eligible = append(eligible, u)
	}
	sort.Slice(eligible, func(i, j int) bool {
		if score[eligible[i]] != score[eligible[j]] {
			return score[eligible[i]] > score[eligible[j]]
		}
		return eligible[i] < eligible[j]
	})
	if len(eligible) > ctx.M {
		eligible = eligible[:ctx.M]
	}
	return eligible, nil
}

// --- Random baseline ---

type randomSelector struct{}

// Random selects m uniformly random nodes of G_t1 — the sanity baseline
// every structural method must beat.
func Random() Selector { return randomSelector{} }

func (randomSelector) Name() string { return "Random" }

func (randomSelector) Select(ctx *Context) ([]int, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if ctx.RNG == nil {
		return nil, errors.New("candidates: Random selector requires an RNG")
	}
	s1 := ctx.S1
	present := make([]int, 0, s1.NumNodes())
	for u := 0; u < s1.NumNodes(); u++ {
		if s1.Degree(u) > 0 {
			present = append(present, u)
		}
	}
	m := ctx.M
	if m > len(present) {
		m = len(present)
	}
	perm := ctx.RNG.Perm(len(present))[:m]
	out := make([]int, m)
	for i, j := range perm {
		out[i] = present[j]
	}
	sort.Ints(out)
	return out, nil
}

// --- Dispersion-based selection (Section 4.2.2) ---

type dispersionSelector struct {
	strategy landmark.Strategy
}

// MaxMin greedily selects nodes maximizing the minimum distance to the
// already-selected set; the picks cover the graph's clusters.
func MaxMin() Selector { return dispersionSelector{landmark.MaxMin} }

// MaxAvg greedily selects nodes maximizing the average distance to the
// already-selected set; the picks favor the graph's periphery, which the
// paper finds slightly better for candidate generation.
func MaxAvg() Selector { return dispersionSelector{landmark.MaxAvg} }

func (s dispersionSelector) Name() string {
	if s.strategy == landmark.MaxMin {
		return "MaxMin"
	}
	return "MaxAvg"
}

func (s dispersionSelector) Select(ctx *Context) ([]int, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	// Each greedy pick costs one SSSP on G_t1, charged inside
	// landmark.SelectSource; the rows double as the D1 rows of the
	// extraction phase.
	set, err := landmark.SelectSource(s.strategy, ctx.S1, ctx.M, ctx.RNG, ctx.Meter)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	for i, u := range set.Nodes {
		ctx.CacheD1(u, set.D1[i])
	}
	return set.Nodes, nil
}

// --- Landmark-based selection (Section 4.2.3) ---

type landmarkSelector struct {
	useL1 bool
}

// SumDiff ranks nodes by the L1 norm of their landmark delta vector over l
// random landmarks; high scores mark nodes that came closer to many parts of
// the graph.
func SumDiff() Selector { return landmarkSelector{useL1: true} }

// MaxDiff ranks nodes by the L∞ norm of their landmark delta vector over l
// random landmarks.
func MaxDiff() Selector { return landmarkSelector{useL1: false} }

func (s landmarkSelector) Name() string {
	if s.useL1 {
		return "SumDiff"
	}
	return "MaxDiff"
}

func (s landmarkSelector) Select(ctx *Context) ([]int, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if ctx.RNG == nil {
		return nil, fmt.Errorf("candidates: %s requires an RNG for landmark sampling", s.Name())
	}
	l := ctx.Landmarks()
	if ctx.M <= l {
		// The whole budget would go to random landmarks that are unlikely
		// endpoints; the paper's Figure 1 shows this dead zone as zero
		// coverage. Returning no candidates models it faithfully.
		return nil, fmt.Errorf("%w: m=%d <= l=%d random landmarks", ErrBudgetTooSmall, ctx.M, l)
	}
	set, err := landmark.SelectSource(landmark.Random, ctx.S1, l, ctx.RNG, ctx.Meter)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	norms, d1, d2, err := landmark.ComputeNormsSource(set, ctx.Sources(), ctx.Meter, ctx.Workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	// Cache the landmark rows: if a landmark happens to rank into the
	// candidate set, the extraction phase reuses them for free — and the
	// pruned extraction bounds every candidate's Δ with them.
	for i, u := range set.Nodes {
		ctx.CacheD1(u, d1[i])
		ctx.CacheD2(u, d2[i])
	}
	ctx.LandmarkNodes = append([]int(nil), set.Nodes...)
	m := ctx.M - len(set.Nodes)
	if s.useL1 {
		return landmark.TopByScore(norms.L1, m, nil), nil
	}
	return landmark.TopByScore(norms.LInf, m, nil), nil
}

// --- Hybrid selection (Section 4.2.4) ---

type hybridSelector struct {
	strategy landmark.Strategy
	useL1    bool
}

// MMSD is MaxMin-SumDiff: MaxMin-dispersed landmarks, L1 ranking — the
// paper's best performer in most settings.
func MMSD() Selector { return hybridSelector{landmark.MaxMin, true} }

// MMMD is MaxMin-MaxDiff.
func MMMD() Selector { return hybridSelector{landmark.MaxMin, false} }

// MASD is MaxAvg-SumDiff.
func MASD() Selector { return hybridSelector{landmark.MaxAvg, true} }

// MAMD is MaxAvg-MaxDiff.
func MAMD() Selector { return hybridSelector{landmark.MaxAvg, false} }

func (s hybridSelector) Name() string {
	name := "MA"
	if s.strategy == landmark.MaxMin {
		name = "MM"
	}
	if s.useL1 {
		return name + "SD"
	}
	return name + "MD"
}

func (s hybridSelector) Select(ctx *Context) ([]int, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	l := ctx.Landmarks()
	if ctx.M < l {
		// With fewer endpoints than landmarks, fall back to pure dispersion:
		// the hybrid's landmarks are themselves meaningful candidates, so
		// unlike the random-landmark methods the budget is not wasted.
		return dispersionSelector{s.strategy}.Select(ctx)
	}
	set, err := landmark.SelectSource(s.strategy, ctx.S1, l, ctx.RNG, ctx.Meter)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	norms, d1, d2, err := landmark.ComputeNormsSource(set, ctx.Sources(), ctx.Meter, ctx.Workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	for i, u := range set.Nodes {
		ctx.CacheD1(u, d1[i])
		ctx.CacheD2(u, d2[i])
	}
	ctx.LandmarkNodes = append([]int(nil), set.Nodes...)
	// The dispersed landmarks join the candidate set (their SSSPs are paid
	// for already), topped up with the best-ranked remaining nodes.
	exclude := make(map[int]bool, len(set.Nodes))
	for _, u := range set.Nodes {
		exclude[u] = true
	}
	var ranked []int
	if s.useL1 {
		ranked = landmark.TopByScore(norms.L1, ctx.M-len(set.Nodes), exclude)
	} else {
		ranked = landmark.TopByScore(norms.LInf, ctx.M-len(set.Nodes), exclude)
	}
	return append(append([]int(nil), set.Nodes...), ranked...), nil
}
