package candidates

import (
	"sync"

	"repro/internal/budget"
)

// Warm is a per-window warm cache for repeated queries over one snapshot
// pair: memoized selection results (candidates, cached distance rows,
// landmark sets) and the final kth-Δ of completed top-k queries, both keyed
// by the query's result-determining shape. The serve layer keeps one Warm
// per epoch window, so entries can never leak across snapshots — that
// scoping is what makes reuse sound. Served results stay bit-identical to
// cold runs: a selection hit restores exactly what the cold selector
// produced and replays its recorded meter charges, and a kth-Δ entry seeds
// the prune threshold only for a query whose shape recomputes the identical
// pair set.
//
// Warm is safe for concurrent use.
type Warm struct {
	mu  sync.Mutex
	sel map[string]*warmSelection
	kth map[string]int32
}

// WarmCharge is one successful meter charge recorded during a cold
// selection, replayed verbatim on warm hits so the budget report (and any
// budget-exhaustion failure point) matches the cold run exactly.
type WarmCharge struct {
	Phase budget.Phase
	N     int
}

// warmSelection is one memoized selection outcome. The row slices are
// shared read-only between the cache and every restored query; the
// candidate slice and maps are copied on both store and lookup because
// callers mutate them (core's defensive dedupe reuses the backing array).
type warmSelection struct {
	cands     []int
	landmarks []int
	d1, d2    map[int][]int32
	charges   []WarmCharge
}

// NewWarm returns an empty warm cache.
func NewWarm() *Warm {
	return &Warm{sel: make(map[string]*warmSelection), kth: make(map[string]int32)}
}

// LookupSelection restores a memoized selection into ctx (row caches and
// landmark set) and returns the candidate list plus the charges to replay.
// The returned slices are private copies; row contents are shared read-only.
func (w *Warm) LookupSelection(key string, ctx *Context) ([]int, []WarmCharge, bool) {
	w.mu.Lock()
	s, ok := w.sel[key]
	w.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	ctx.D1Rows = copyRows(s.d1)
	ctx.D2Rows = copyRows(s.d2)
	ctx.LandmarkNodes = append([]int(nil), s.landmarks...)
	return append([]int(nil), s.cands...), s.charges, true
}

// StoreSelection memoizes a completed selection: the candidates, the rows
// and landmarks the selector left in ctx, and the charges recorded while it
// ran. Call only after the selection validated cleanly; failed selections
// must not be cached.
func (w *Warm) StoreSelection(key string, cands []int, ctx *Context, charges []WarmCharge) {
	s := &warmSelection{
		cands:     append([]int(nil), cands...),
		landmarks: append([]int(nil), ctx.LandmarkNodes...),
		d1:        copyRows(ctx.D1Rows),
		d2:        copyRows(ctx.D2Rows),
		charges:   append([]WarmCharge(nil), charges...),
	}
	w.mu.Lock()
	w.sel[key] = s
	w.mu.Unlock()
}

// KthDelta returns the final kth-Δ of a previously completed top-k query
// with the same selection key and k, if any — a sound prune-threshold seed
// for an identical query (it recomputes the identical pair set).
func (w *Warm) KthDelta(selKey string, k int) (int32, bool) {
	w.mu.Lock()
	d, ok := w.kth[kthKey(selKey, k)]
	w.mu.Unlock()
	return d, ok
}

// StoreKthDelta records the final kth-Δ of a completed top-k query. Callers
// must only store when the query returned exactly k pairs — a short result
// has no kth boundary.
func (w *Warm) StoreKthDelta(selKey string, k int, delta int32) {
	w.mu.Lock()
	w.kth[kthKey(selKey, k)] = delta
	w.mu.Unlock()
}

func kthKey(selKey string, k int) string {
	// Manual itoa keeps this free of fmt; k is always small and positive.
	buf := [20]byte{}
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = byte('0' + k%10)
		k /= 10
	}
	return selKey + "|k" + string(buf[i:])
}

// copyRows clones the map headers; the row slices themselves are shared
// (they are read-only after selection).
func copyRows(m map[int][]int32) map[int][]int32 {
	if m == nil {
		return nil
	}
	out := make(map[int][]int32, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
