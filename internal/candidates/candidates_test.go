package candidates

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/budget"
	"repro/internal/graph"
)

// growingGraph builds a deterministic preferential-attachment-ish evolving
// graph and returns the (80%, 100%) snapshot pair.
func growingPair(t testing.TB, n int, seed int64) graph.SnapshotPair {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := map[graph.Edge]struct{}{}
	var stream []graph.TimedEdge
	add := func(u, v int) {
		if u == v {
			return
		}
		c := graph.Edge{U: u, V: v}.Canon()
		if _, dup := seen[c]; dup {
			return
		}
		seen[c] = struct{}{}
		stream = append(stream, graph.TimedEdge{U: u, V: v, Time: int64(len(stream))})
	}
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i))
		if i > 2 && rng.Intn(3) == 0 {
			add(i, rng.Intn(i))
		}
	}
	ev, err := graph.NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ev.Pair(0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func newCtx(sp graph.SnapshotPair, m, l int, seed int64) *Context {
	return &Context{
		Pair:    sp,
		M:       m,
		L:       l,
		RNG:     rand.New(rand.NewSource(seed)),
		Meter:   budget.NewMeter(m),
		Workers: 2,
	}
}

func TestContextValidate(t *testing.T) {
	sp := growingPair(t, 50, 1)
	ctx := &Context{Pair: sp, M: 0}
	if err := ctx.Validate(); err == nil {
		t.Error("m=0 should fail")
	}
	bad := &Context{Pair: graph.SnapshotPair{}, M: 5}
	if err := bad.Validate(); err == nil {
		t.Error("nil snapshots should fail")
	}
	if (&Context{L: 0}).Landmarks() != DefaultLandmarks {
		t.Error("default landmarks wrong")
	}
	if (&Context{L: 7}).Landmarks() != 7 {
		t.Error("explicit landmarks wrong")
	}
}

func TestDegreeSelectors(t *testing.T) {
	// G1: star center 0 with leaves 1..4; node 5 isolated in G1.
	// G2 adds: 5-1, 5-2, 5-3 (node 5 has deg1=0 -> excluded from all),
	// and 4-1 (deg(4): 1->2, relative change 1.0; deg(1): 1->3).
	g1 := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	g2 := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
		{U: 5, V: 1}, {U: 5, V: 2}, {U: 5, V: 3}, {U: 4, V: 1},
	})
	sp := graph.SnapshotPair{G1: g1, G2: g2}

	sel := Degree()
	got, err := sel.Select(newCtx(sp, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Degree top-1 = %v, want [0]", got)
	}

	got, err = DegDiff().Select(newCtx(sp, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 gains 2 edges (from 5 and 4); nodes 2,3 gain 1; node 5 excluded.
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("DegDiff top-1 = %v, want [1]", got)
	}

	got, err = DegRel().Select(newCtx(sp, 2, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Relative: node 1: 2/1 = 2.0 best; nodes 2,3,4: 1/1 = 1.0.
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("DegRel top-2 = %v, want [1 2]", got)
	}

	// Degree selectors spend nothing on candidate generation.
	ctx := newCtx(sp, 3, 0, 1)
	if _, err := Degree().Select(ctx); err != nil {
		t.Fatal(err)
	}
	if rep := ctx.Meter.Report(); rep.CandidateGen != 0 {
		t.Fatalf("Degree charged %d SSSPs", rep.CandidateGen)
	}
}

func TestRandomSelector(t *testing.T) {
	sp := growingPair(t, 60, 3)
	ctx := newCtx(sp, 10, 0, 4)
	got, err := Random().Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d candidates", len(got))
	}
	seen := map[int]bool{}
	for _, u := range got {
		if seen[u] {
			t.Fatal("duplicate candidate")
		}
		seen[u] = true
		if sp.G1.Degree(u) == 0 {
			t.Fatalf("candidate %d absent from G1", u)
		}
	}
	ctx.RNG = nil
	if _, err := Random().Select(ctx); err == nil {
		t.Fatal("Random without RNG should fail")
	}
}

func TestDispersionSelectorCachesAndCharges(t *testing.T) {
	sp := growingPair(t, 80, 5)
	for _, sel := range []Selector{MaxMin(), MaxAvg()} {
		ctx := newCtx(sp, 6, 0, 6)
		got, err := sel.Select(ctx)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		if len(got) != 6 {
			t.Fatalf("%s returned %d candidates", sel.Name(), len(got))
		}
		rep := ctx.Meter.Report()
		if rep.CandidateGen != 6 {
			t.Fatalf("%s charged %d, want m=6 (Table 1)", sel.Name(), rep.CandidateGen)
		}
		for _, u := range got {
			if ctx.D1Rows[u] == nil {
				t.Fatalf("%s did not cache D1 row for %d", sel.Name(), u)
			}
		}
	}
}

func TestLandmarkSelectorDeadZone(t *testing.T) {
	sp := growingPair(t, 80, 7)
	ctx := newCtx(sp, 5, 10, 8) // m=5 <= l=10
	_, err := SumDiff().Select(ctx)
	if !errors.Is(err, ErrBudgetTooSmall) {
		t.Fatalf("err = %v, want ErrBudgetTooSmall", err)
	}
}

func TestLandmarkSelectorBudget(t *testing.T) {
	sp := growingPair(t, 80, 9)
	for _, sel := range []Selector{SumDiff(), MaxDiff()} {
		ctx := newCtx(sp, 15, 5, 10)
		got, err := sel.Select(ctx)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		// m - l candidates.
		if len(got) != 10 {
			t.Fatalf("%s returned %d candidates, want 10", sel.Name(), len(got))
		}
		// 2l SSSPs on candidate generation (Table 1).
		if rep := ctx.Meter.Report(); rep.CandidateGen != 10 {
			t.Fatalf("%s charged %d, want 2l=10", sel.Name(), rep.CandidateGen)
		}
	}
}

func TestHybridSelectorsIncludeLandmarks(t *testing.T) {
	sp := growingPair(t, 80, 11)
	for _, sel := range []Selector{MMSD(), MMMD(), MASD(), MAMD()} {
		ctx := newCtx(sp, 12, 4, 12)
		got, err := sel.Select(ctx)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		if len(got) != 12 {
			t.Fatalf("%s returned %d candidates, want m=12", sel.Name(), len(got))
		}
		// First l entries are the dispersed landmarks, with both rows cached.
		for i := 0; i < 4; i++ {
			u := got[i]
			if ctx.D1Rows[u] == nil || ctx.D2Rows[u] == nil {
				t.Fatalf("%s landmark %d rows not cached", sel.Name(), u)
			}
		}
		if rep := ctx.Meter.Report(); rep.CandidateGen != 8 {
			t.Fatalf("%s charged %d, want 2l=8 (Table 1)", sel.Name(), rep.CandidateGen)
		}
		seen := map[int]bool{}
		for _, u := range got {
			if seen[u] {
				t.Fatalf("%s produced duplicate candidate %d", sel.Name(), u)
			}
			seen[u] = true
		}
	}
}

func TestHybridFallsBackToDispersionWhenSmall(t *testing.T) {
	sp := growingPair(t, 80, 13)
	ctx := newCtx(sp, 3, 10, 14) // m < l
	got, err := MMSD().Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("fallback returned %d candidates", len(got))
	}
	if rep := ctx.Meter.Report(); rep.CandidateGen != 3 {
		t.Fatalf("fallback charged %d, want m=3", rep.CandidateGen)
	}
}

func TestRegistry(t *testing.T) {
	if len(Names()) != len(registry) {
		t.Fatal("Names() incomplete")
	}
	for _, name := range PaperOrder {
		sel, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Name() != name {
			t.Fatalf("selector %q reports name %q", name, sel.Name())
		}
		if Descriptions[name] == "" {
			t.Fatalf("no description for %q", name)
		}
	}
	if _, err := ByName("Nope"); err == nil {
		t.Fatal("unknown name should fail")
	}
	if len(All()) != len(PaperOrder) {
		t.Fatal("All() incomplete")
	}
}

func TestBuildFeatures(t *testing.T) {
	sp := growingPair(t, 100, 15)
	ctx := newCtx(sp, 50, 5, 16)
	x, err := BuildFeatures(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != sp.G1.NumNodes() || len(x[0]) != NumNodeFeatures {
		t.Fatalf("features %dx%d", len(x), len(x[0]))
	}
	// Feature setup budget: 3 landmark sets x 2l = 6l = 30 (Table 1).
	if rep := ctx.Meter.Report(); rep.CandidateGen != 30 {
		t.Fatalf("feature charge = %d, want 6l=30", rep.CandidateGen)
	}
	// Degree features must match the graph.
	for u := 0; u < sp.G1.NumNodes(); u++ {
		if x[u][FeatDeg1] != float64(sp.G1.Degree(u)) {
			t.Fatalf("FeatDeg1[%d] = %v", u, x[u][FeatDeg1])
		}
		if x[u][FeatDegDiff] != float64(sp.G2.Degree(u)-sp.G1.Degree(u)) {
			t.Fatalf("FeatDegDiff[%d] = %v", u, x[u][FeatDegDiff])
		}
	}

	xg, err := BuildFeatures(newCtx(sp, 50, 5, 16), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(xg[0]) != NumGlobalFeatures {
		t.Fatalf("global features width = %d", len(xg[0]))
	}
	gf := GlobalFeatures(sp)
	for j, v := range gf {
		if xg[0][NumNodeFeatures+j] != v || xg[7][NumNodeFeatures+j] != v {
			t.Fatal("global features not constant across rows")
		}
	}
	if got := len(FeatureNames(true)); got != NumGlobalFeatures {
		t.Fatalf("FeatureNames(true) = %d names", got)
	}
	if got := len(FeatureNames(false)); got != NumNodeFeatures {
		t.Fatalf("FeatureNames(false) = %d names", got)
	}
}

func TestBuildFeaturesRequiresRNG(t *testing.T) {
	sp := growingPair(t, 40, 17)
	ctx := &Context{Pair: sp, M: 10}
	if _, err := BuildFeatures(ctx, false); err == nil {
		t.Fatal("missing RNG should fail")
	}
}

func TestBetDiffSelector(t *testing.T) {
	sp := growingPair(t, 100, 19)
	sel := BetDiff(32)
	if sel.Name() != "BetDiff" {
		t.Fatal("name")
	}
	ctx := newCtx(sp, 10, 0, 20)
	got, err := sel.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d candidates", len(got))
	}
	// Betweenness passes run outside the SSSP meter.
	if rep := ctx.Meter.Report(); rep.CandidateGen != 0 {
		t.Fatalf("BetDiff charged %d SSSPs", rep.CandidateGen)
	}
	for _, u := range got {
		if sp.G1.Degree(u) == 0 {
			t.Fatalf("candidate %d absent from G1", u)
		}
	}
	ctx.RNG = nil
	if _, err := sel.Select(ctx); err == nil {
		t.Fatal("missing RNG should fail")
	}
	// Default sample count.
	if BetDiff(0).(betweennessSelector).samples != 64 {
		t.Fatal("default samples")
	}
}
