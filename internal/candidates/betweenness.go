package candidates

import (
	"fmt"

	"repro/internal/betweenness"
	"repro/internal/landmark"
)

// betweennessSelector ranks nodes by the increase of their (sampled) node
// betweenness between the snapshots — the centrality family's natural
// extension beyond degree. The paper avoids betweenness for candidate
// generation because exact computation "in general is expensive to
// compute"; the sampled Brandes estimator makes the idea testable, and the
// ablation benchmarks quantify whether the extra cost buys coverage.
//
// Like IncBet, the betweenness passes run outside the SSSP meter (they are
// not single-source shortest-path computations in the paper's cost model);
// the samples parameter bounds their actual cost.
type betweennessSelector struct {
	samples int
}

// BetDiff builds the betweenness-difference selector with the given pivot
// sample count per snapshot (0 means 64).
func BetDiff(samples int) Selector {
	if samples <= 0 {
		samples = 64
	}
	return betweennessSelector{samples: samples}
}

func (betweennessSelector) Name() string { return "BetDiff" }

func (s betweennessSelector) Select(ctx *Context) ([]int, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if ctx.RNG == nil {
		return nil, fmt.Errorf("candidates: BetDiff requires an RNG for pivot sampling")
	}
	pair, err := ctx.Unweighted()
	if err != nil {
		return nil, fmt.Errorf("BetDiff: %w", err)
	}
	g1, g2 := pair.G1, pair.G2
	bc1 := betweenness.NodesSampled(g1, s.samples, ctx.RNG, ctx.Workers)
	bc2 := betweenness.NodesSampled(g2, s.samples, ctx.RNG, ctx.Workers)
	n := g1.NumNodes()
	score := make([]float64, n)
	exclude := make(map[int]bool)
	for u := 0; u < n; u++ {
		if g1.Degree(u) == 0 {
			exclude[u] = true
			continue
		}
		score[u] = bc2[u] - bc1[u]
	}
	return landmark.TopByScore(score, ctx.M, exclude), nil
}
