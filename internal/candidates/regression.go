package candidates

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/ml"
	"repro/internal/topk"
)

// RegressionModel is the regression-based candidate generator of the
// paper's ref-[5] flavor: instead of classifying cover membership, a ridge
// regression predicts each node's converging-pair participation (its G^p_k
// degree) from the same vertex- and landmark-based attributes, and nodes are
// ranked by the predicted value.
type RegressionModel struct {
	LinReg *ml.LinearRegression
	Scaler *ml.Scaler
	Global bool
	L      int
}

// RegressionSample is one training pair with per-node regression targets
// (zero for nodes absent from Targets).
type RegressionSample struct {
	Pair graph.SnapshotPair
	// Targets maps node -> participation count in the training pair's
	// top-k converging pairs (the G^p_k degree).
	Targets map[int32]float64
}

// TrainRegression fits the regression model; see Train for the shared
// conventions (unmetered offline training, degree-0 nodes excluded).
func TrainRegression(samples []RegressionSample, opts TrainOptions) (*RegressionModel, error) {
	if len(samples) == 0 {
		return nil, errors.New("candidates: no training samples")
	}
	l := opts.L
	if l <= 0 {
		l = DefaultLandmarks
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var x [][]float64
	var y []float64
	for i, s := range samples {
		ctx := &Context{
			Pair:    s.Pair,
			M:       1,
			L:       l,
			RNG:     rng,
			Workers: opts.Workers,
		}
		feats, err := BuildFeatures(ctx, opts.Global)
		if err != nil {
			return nil, fmt.Errorf("candidates: regression sample %d: %w", i, err)
		}
		for u := 0; u < s.Pair.G1.NumNodes(); u++ {
			if s.Pair.G1.Degree(u) == 0 {
				continue
			}
			x = append(x, feats[u])
			y = append(y, s.Targets[int32(u)])
		}
	}
	scaler, err := ml.FitScaler(x)
	if err != nil {
		return nil, fmt.Errorf("candidates: scaler: %w", err)
	}
	if _, err := scaler.ApplyAll(x); err != nil {
		return nil, err
	}
	linreg, err := ml.FitLinear(x, y, 1e-4)
	if err != nil {
		return nil, fmt.Errorf("candidates: ridge regression: %w", err)
	}
	return &RegressionModel{LinReg: linreg, Scaler: scaler, Global: opts.Global, L: l}, nil
}

type regressionSelector struct {
	name  string
	model *RegressionModel
}

// Regression wraps a trained RegressionModel as a Selector. The standard
// name in the experiment harness is "R-Classifier".
func Regression(name string, model *RegressionModel) Selector {
	return regressionSelector{name: name, model: model}
}

func (s regressionSelector) Name() string { return s.name }

func (s regressionSelector) Select(ctx *Context) ([]int, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if s.model == nil || s.model.LinReg == nil || s.model.Scaler == nil {
		return nil, fmt.Errorf("candidates: %s has no trained model", s.name)
	}
	l := s.model.L
	if l <= 0 {
		l = DefaultLandmarks
	}
	setup := 3 * l
	if ctx.M <= setup {
		return nil, fmt.Errorf("%w: m=%d <= 3l=%d regression setup", ErrBudgetTooSmall, ctx.M, setup)
	}
	fctx := *ctx
	fctx.L = l
	feats, err := BuildFeatures(&fctx, s.model.Global)
	if err != nil {
		return nil, fmt.Errorf("candidates: %s features: %w", s.name, err)
	}
	ctx.D1Rows = fctx.D1Rows
	ctx.D2Rows = fctx.D2Rows

	s1 := ctx.S1
	n := s1.NumNodes()
	score := make([]float64, n)
	exclude := make(map[int]bool)
	for u := 0; u < n; u++ {
		if s1.Degree(u) == 0 {
			exclude[u] = true
			continue
		}
		row := make([]float64, len(feats[u]))
		copy(row, feats[u])
		if _, err := s.model.Scaler.Apply(row); err != nil {
			return nil, fmt.Errorf("candidates: %s scaling: %w", s.name, err)
		}
		score[u] = s.model.LinReg.Predict(row)
	}
	return landmark.TopByScore(score, ctx.M-setup, exclude), nil
}

// PairDegreeTargets converts a top-k pair set into regression targets:
// each node's participation count (its G^p_k degree).
func PairDegreeTargets(pairs []topk.Pair) map[int32]float64 {
	out := map[int32]float64{}
	for _, p := range pairs {
		out[p.U]++
		out[p.V]++
	}
	return out
}
