package candidates

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/ml"
)

// modelFile is the on-disk JSON envelope for trained selector models, with
// a kind tag so a classifier file cannot be loaded as a regression model.
type modelFile struct {
	Kind      string    `json:"kind"` // "logistic" or "ridge"
	Version   int       `json:"version"`
	Global    bool      `json:"global"`
	L         int       `json:"landmarks"`
	Weights   []float64 `json:"weights"`
	Bias      float64   `json:"bias"`
	ScalerMin []float64 `json:"scaler_min"`
	ScalerMax []float64 `json:"scaler_max"`
}

const modelVersion = 1

// ErrModelKind reports a model file of the wrong kind.
var ErrModelKind = errors.New("candidates: wrong model kind")

// Save writes the classifier model as JSON.
func (m *Model) Save(w io.Writer) error {
	if m.LogReg == nil || m.Scaler == nil {
		return errors.New("candidates: cannot save untrained model")
	}
	return json.NewEncoder(w).Encode(modelFile{
		Kind: "logistic", Version: modelVersion,
		Global: m.Global, L: m.L,
		Weights: m.LogReg.Weights, Bias: m.LogReg.Bias,
		ScalerMin: m.Scaler.Min, ScalerMax: m.Scaler.Max,
	})
}

// SaveFile writes the classifier model to a path.
func (m *Model) SaveFile(path string) error { return saveFile(path, m.Save) }

// LoadModel reads a classifier model saved by Save.
func LoadModel(r io.Reader) (*Model, error) {
	mf, err := decodeModel(r, "logistic")
	if err != nil {
		return nil, err
	}
	return &Model{
		LogReg: &ml.LogisticRegression{Weights: mf.Weights, Bias: mf.Bias},
		Scaler: &ml.Scaler{Min: mf.ScalerMin, Max: mf.ScalerMax},
		Global: mf.Global,
		L:      mf.L,
	}, nil
}

// LoadModelFile reads a classifier model from a path.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}

// Save writes the regression model as JSON.
func (m *RegressionModel) Save(w io.Writer) error {
	if m.LinReg == nil || m.Scaler == nil {
		return errors.New("candidates: cannot save untrained model")
	}
	return json.NewEncoder(w).Encode(modelFile{
		Kind: "ridge", Version: modelVersion,
		Global: m.Global, L: m.L,
		Weights: m.LinReg.Weights, Bias: m.LinReg.Bias,
		ScalerMin: m.Scaler.Min, ScalerMax: m.Scaler.Max,
	})
}

// SaveFile writes the regression model to a path.
func (m *RegressionModel) SaveFile(path string) error { return saveFile(path, m.Save) }

// LoadRegressionModel reads a regression model saved by Save.
func LoadRegressionModel(r io.Reader) (*RegressionModel, error) {
	mf, err := decodeModel(r, "ridge")
	if err != nil {
		return nil, err
	}
	return &RegressionModel{
		LinReg: &ml.LinearRegression{Weights: mf.Weights, Bias: mf.Bias},
		Scaler: &ml.Scaler{Min: mf.ScalerMin, Max: mf.ScalerMax},
		Global: mf.Global,
		L:      mf.L,
	}, nil
}

// LoadRegressionModelFile reads a regression model from a path.
func LoadRegressionModelFile(path string) (*RegressionModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadRegressionModel(f)
}

func decodeModel(r io.Reader, kind string) (*modelFile, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("candidates: decode model: %w", err)
	}
	if mf.Kind != kind {
		return nil, fmt.Errorf("%w: have %q, want %q", ErrModelKind, mf.Kind, kind)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("candidates: unsupported model version %d", mf.Version)
	}
	if len(mf.Weights) == 0 || len(mf.Weights) != len(mf.ScalerMin) || len(mf.ScalerMin) != len(mf.ScalerMax) {
		return nil, errors.New("candidates: corrupt model file (shape mismatch)")
	}
	wantWidth := NumNodeFeatures
	if mf.Global {
		wantWidth = NumGlobalFeatures
	}
	if len(mf.Weights) != wantWidth {
		return nil, fmt.Errorf("candidates: model has %d features, want %d", len(mf.Weights), wantWidth)
	}
	return &mf, nil
}

func saveFile(path string, save func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
