package candidates

import (
	"errors"
	"testing"

	"repro/internal/topk"
)

func TestPairDegreeTargets(t *testing.T) {
	pairs := []topk.Pair{{U: 0, V: 5}, {U: 0, V: 7}, {U: 5, V: 7}}
	targets := PairDegreeTargets(pairs)
	if targets[0] != 2 || targets[5] != 2 || targets[7] != 2 {
		t.Fatalf("targets = %v", targets)
	}
	if len(targets) != 3 {
		t.Fatalf("targets = %v", targets)
	}
}

func TestTrainRegressionAndSelect(t *testing.T) {
	trainPair := growingPair(t, 150, 71)
	testPair := growingPair(t, 150, 72)

	gt, err := topk.Compute(trainPair, topk.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	delta := gt.MaxDelta - 1
	if delta < 1 {
		delta = 1
	}
	targets := PairDegreeTargets(gt.PairsAtLeast(delta))
	if len(targets) == 0 {
		t.Fatal("no targets at this seed")
	}
	model, err := TrainRegression(
		[]RegressionSample{{Pair: trainPair, Targets: targets}},
		TrainOptions{L: 4, Workers: 2, Seed: 73},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.LinReg.Weights) != NumNodeFeatures {
		t.Fatalf("weights = %d", len(model.LinReg.Weights))
	}
	sel := Regression("R-Classifier", model)
	if sel.Name() != "R-Classifier" {
		t.Fatal("name")
	}
	ctx := newCtx(testPair, 30, 4, 74)
	got, err := sel.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30-12 {
		t.Fatalf("got %d candidates, want m-3l=18", len(got))
	}
	if rep := ctx.Meter.Report(); rep.CandidateGen != 24 {
		t.Fatalf("charged %d, want 6l=24", rep.CandidateGen)
	}
	for _, u := range got {
		if testPair.G1.Degree(u) == 0 {
			t.Fatalf("candidate %d absent from G1", u)
		}
	}
}

func TestTrainRegressionValidation(t *testing.T) {
	if _, err := TrainRegression(nil, TrainOptions{}); err == nil {
		t.Fatal("no samples should fail")
	}
}

func TestRegressionSelectorErrors(t *testing.T) {
	sp := growingPair(t, 80, 75)
	sel := Regression("R-Classifier", nil)
	if _, err := sel.Select(newCtx(sp, 40, 4, 76)); err == nil {
		t.Fatal("nil model should fail")
	}
	gt, err := topk.Compute(sp, topk.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	targets := PairDegreeTargets(gt.Pairs)
	if len(targets) == 0 {
		t.Skip("no pairs at this seed")
	}
	model, err := TrainRegression(
		[]RegressionSample{{Pair: sp, Targets: targets}},
		TrainOptions{L: 10, Workers: 2, Seed: 77},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Regression("R-Classifier", model).Select(newCtx(sp, 20, 10, 78))
	if !errors.Is(err, ErrBudgetTooSmall) {
		t.Fatalf("err = %v, want ErrBudgetTooSmall", err)
	}
}
