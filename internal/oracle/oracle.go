// Package oracle implements a landmark-based approximate distance oracle in
// the style the paper cites for fast shortest-path estimation (Potamias et
// al., "Fast shortest path distance estimation in large networks"): after
// precomputing BFS rows from l landmarks, any pair distance is bounded in
// O(l) by the triangle inequality,
//
//	lower(u,v) = max_i |d(u, L_i) − d(v, L_i)|
//	upper(u,v) = min_i  d(u, L_i) + d(v, L_i)
//
// The paper's introduction argues that even with such oracles the exact
// top-k computation stays quadratic ("regardless of how fast we compute the
// shortest paths ... just outputting the pairs requires time O(n²)"); the
// oracle package makes that argument measurable: an oracle-based
// approximate top-k baseline that is fast per query but still scans pairs,
// compared in the benchmarks against both the exact sweep and the budgeted
// algorithm.
package oracle

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/sssp"
	"repro/internal/topk"
)

// Oracle answers approximate distance queries on one snapshot.
type Oracle struct {
	landmarks []int
	rows      [][]int32 // rows[i][v] = d(L_i, v)
	n         int
}

// New builds an oracle from explicit landmarks; rows may carry precomputed
// BFS vectors (pass nil to compute them here, costing l BFS runs).
func New(g *graph.Graph, landmarks []int, rows [][]int32, workers int) (*Oracle, error) {
	if len(landmarks) == 0 {
		return nil, errors.New("oracle: no landmarks")
	}
	if rows == nil {
		rows = sssp.DistanceMatrix(g, landmarks, workers)
	}
	if len(rows) != len(landmarks) {
		return nil, fmt.Errorf("oracle: %d rows for %d landmarks", len(rows), len(landmarks))
	}
	return &Oracle{landmarks: append([]int(nil), landmarks...), rows: rows, n: g.NumNodes()}, nil
}

// Build selects l landmarks with the given strategy and constructs the
// oracle (costing l BFS runs).
func Build(g *graph.Graph, strategy landmark.Strategy, l int, rng *rand.Rand, workers int) (*Oracle, error) {
	set, err := landmark.Select(strategy, g, l, rng, nil)
	if err != nil {
		return nil, err
	}
	return New(g, set.Nodes, set.D1, workers)
}

// NumLandmarks returns the landmark count.
func (o *Oracle) NumLandmarks() int { return len(o.landmarks) }

// Landmarks returns the landmark nodes; the slice must not be modified.
func (o *Oracle) Landmarks() []int { return o.landmarks }

// Bounds returns the triangle-inequality lower and upper bounds on d(u, v).
// If no landmark reaches both nodes, ok is false (different components as
// far as the oracle can tell).
func (o *Oracle) Bounds(u, v int) (lower, upper int32, ok bool) {
	lower, upper = 0, int32(1)<<30
	for _, row := range o.rows {
		du, dv := row[u], row[v]
		if du < 0 || dv < 0 {
			continue
		}
		ok = true
		diff := du - dv
		if diff < 0 {
			diff = -diff
		}
		if diff > lower {
			lower = diff
		}
		if s := du + dv; s < upper {
			upper = s
		}
	}
	return lower, upper, ok
}

// Estimate returns the oracle's point estimate of d(u, v): the upper bound,
// which is exact whenever a shortest path passes near a landmark and is the
// standard landmark estimate. Returns -1 when the pair looks disconnected.
func (o *Oracle) Estimate(u, v int) int32 {
	if u == v {
		return 0
	}
	_, upper, ok := o.Bounds(u, v)
	if !ok {
		return -1
	}
	return upper
}

// MeanBoundsError measures the oracle against exact BFS from the probe
// sources: average slack of the upper bound and of the lower bound.
func (o *Oracle) MeanBoundsError(g *graph.Graph, probes []int) (upperSlack, lowerSlack float64) {
	dist := make([]int32, g.NumNodes())
	var count float64
	for _, src := range probes {
		sssp.BFS(g, src, dist)
		for v, d := range dist {
			if d <= 0 || v == src {
				continue
			}
			lo, hi, ok := o.Bounds(src, v)
			if !ok {
				continue
			}
			upperSlack += float64(hi - d)
			lowerSlack += float64(d - lo)
			count++
		}
	}
	if count == 0 {
		return 0, 0
	}
	return upperSlack / count, lowerSlack / count
}

// PairOracle estimates distance *changes* between two snapshots sharing a
// landmark set: Δ̂(u,v) = est1(u,v) − est2(u,v). It powers the approximate
// top-k baseline.
type PairOracle struct {
	O1, O2 *Oracle
}

// NewPair builds oracles for both snapshots over one landmark set chosen on
// G_t1 (2l BFS runs total).
func NewPair(pair graph.SnapshotPair, strategy landmark.Strategy, l int, rng *rand.Rand, workers int) (*PairOracle, error) {
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	set, err := landmark.Select(strategy, pair.G1, l, rng, nil)
	if err != nil {
		return nil, err
	}
	o1, err := New(pair.G1, set.Nodes, set.D1, workers)
	if err != nil {
		return nil, err
	}
	o2, err := New(pair.G2, set.Nodes, nil, workers)
	if err != nil {
		return nil, err
	}
	return &PairOracle{O1: o1, O2: o2}, nil
}

// DeltaEstimate returns the estimated distance decrease for a pair, clamped
// at 0 (the true Δ is non-negative). Pairs the oracle cannot see as
// connected in G_t1 report 0.
func (p *PairOracle) DeltaEstimate(u, v int) int32 {
	d1 := p.O1.Estimate(u, v)
	if d1 <= 0 {
		return 0
	}
	d2 := p.O2.Estimate(u, v)
	if d2 < 0 {
		return 0
	}
	if d2 > d1 {
		return 0
	}
	return d1 - d2
}

// ApproxTopK scans all (or a sampled fraction of) pairs with the oracle and
// returns the k pairs with the largest estimated Δ. It is the "fast
// approximate shortest paths don't fix the quadratic scan" baseline: each
// query is O(l) but the loop is still O(n²·l/sampleStride).
//
// sampleStride > 1 scans only every stride-th pair per source, trading
// recall for time. Returns estimated (not exact) distances in the pairs.
func (p *PairOracle) ApproxTopK(k int, sampleStride int) []topk.Pair {
	if sampleStride < 1 {
		sampleStride = 1
	}
	n := p.O1.n
	var pairs []topk.Pair
	var floor int32 = 1
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v += sampleStride {
			delta := p.DeltaEstimate(u, v)
			if delta < floor {
				continue
			}
			pairs = append(pairs, topk.Pair{
				U: int32(u), V: int32(v),
				D1: p.O1.Estimate(u, v), D2: p.O2.Estimate(u, v), Delta: delta,
			})
			// Periodically prune to bound memory and raise the floor.
			if len(pairs) > 4*k && k > 0 {
				topk.SortPairs(pairs)
				pairs = pairs[:k]
				if f := pairs[len(pairs)-1].Delta; f > floor {
					floor = f
				}
			}
		}
	}
	topk.SortPairs(pairs)
	if k > 0 && len(pairs) > k {
		pairs = pairs[:k]
	}
	return pairs
}

// Recall measures how many of the true pairs the approximate result
// recovered (by endpoint identity).
func Recall(truth, approx []topk.Pair) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[[2]int32]bool, len(approx))
	for _, p := range approx {
		set[[2]int32{p.U, p.V}] = true
	}
	hit := 0
	for _, p := range truth {
		if set[[2]int32{p.U, p.V}] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// CandidateNodes converts the approximate top pairs into a candidate
// endpoint list (deduped, sorted) — how an oracle would feed Algorithm 1.
func CandidateNodes(pairs []topk.Pair, m int) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range pairs {
		for _, u := range [2]int32{p.U, p.V} {
			if !seen[int(u)] {
				seen[int(u)] = true
				out = append(out, int(u))
				if len(out) == m {
					sort.Ints(out)
					return out
				}
			}
		}
	}
	sort.Ints(out)
	return out
}
