package oracle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/sssp"
	"repro/internal/topk"
)

func pathGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.FromEdges(n, edges)
}

func randomConnected(rng *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(i, rng.Intn(i))
	}
	for i := 0; i < n/2; i++ {
		_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

func TestNewValidation(t *testing.T) {
	g := pathGraph(5)
	if _, err := New(g, nil, nil, 1); err == nil {
		t.Error("no landmarks should fail")
	}
	if _, err := New(g, []int{0, 1}, [][]int32{{0}}, 1); err == nil {
		t.Error("row mismatch should fail")
	}
}

func TestBoundsExactOnLandmarkPaths(t *testing.T) {
	g := pathGraph(10)
	o, err := New(g, []int{0}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// On a path with landmark at an end, both bounds are exact.
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			lo, hi, ok := o.Bounds(u, v)
			if !ok {
				t.Fatalf("(%d,%d) not ok", u, v)
			}
			want := int32(v - u)
			if lo != want || hi < want {
				t.Fatalf("bounds(%d,%d) = [%d,%d], true %d", u, v, lo, hi, want)
			}
		}
	}
	if o.Estimate(3, 3) != 0 {
		t.Fatal("self distance")
	}
	if o.NumLandmarks() != 1 || o.Landmarks()[0] != 0 {
		t.Fatal("landmark accessors")
	}
}

func TestBoundsDisconnected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	o, err := New(g, []int{0}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := o.Bounds(0, 2); ok {
		t.Fatal("cross-component pair should not be ok")
	}
	if o.Estimate(0, 2) != -1 {
		t.Fatal("estimate should be -1")
	}
}

// Property: triangle-inequality bounds always bracket the true distance.
func TestBoundsBracketTruth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := randomConnected(rng, n)
		l := 1 + rng.Intn(4)
		o, err := Build(g, landmark.MaxMin, l, nil, 2)
		if err != nil {
			return false
		}
		src := rng.Intn(n)
		dist := sssp.Distances(g, src)
		for v := 0; v < n; v++ {
			if v == src || dist[v] < 0 {
				continue
			}
			lo, hi, ok := o.Bounds(src, v)
			if !ok {
				return false // connected graph: some landmark reaches both
			}
			if lo > dist[v] || hi < dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBoundsError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(rng, 120)
	few, err := Build(g, landmark.MaxMin, 2, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	many, err := Build(g, landmark.MaxMin, 16, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	upFew, loFew := few.MeanBoundsError(g, []int{1, 5, 9})
	upMany, loMany := many.MeanBoundsError(g, []int{1, 5, 9})
	if upMany > upFew || loMany > loFew {
		t.Fatalf("more landmarks should tighten bounds: up %v->%v lo %v->%v",
			upFew, upMany, loFew, loMany)
	}
}

func chordPair(n int, chords ...graph.Edge) graph.SnapshotPair {
	g1 := pathGraph(n)
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		_ = b.AddEdge(i, i+1)
	}
	for _, c := range chords {
		_ = b.AddEdge(c.U, c.V)
	}
	return graph.SnapshotPair{G1: g1, G2: b.Build()}
}

func TestPairOracleApproxTopK(t *testing.T) {
	sp := chordPair(40, graph.Edge{U: 0, V: 39}, graph.Edge{U: 10, V: 30})
	po, err := NewPair(sp, landmark.MaxMin, 6, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx := po.ApproxTopK(10, 1)
	if len(approx) == 0 {
		t.Fatal("no approximate pairs")
	}
	// The heaviest true pair (0,39) must appear with a large estimate.
	found := false
	for _, p := range approx {
		if p.U == 0 && p.V == 39 {
			found = true
		}
		if p.Delta < 1 {
			t.Fatalf("pair %v below floor", p)
		}
	}
	if !found {
		t.Fatalf("approx misses the dominant pair: %v", approx)
	}
	// Recall against exact ground truth.
	gt, err := topk.Compute(sp, topk.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	truth := gt.PairsAtLeast(gt.MaxDelta)
	if r := Recall(truth, approx); r < 0.5 {
		t.Fatalf("recall = %v", r)
	}
	if Recall(nil, approx) != 1 {
		t.Fatal("empty truth recall should be 1")
	}
}

func TestPairOracleSampling(t *testing.T) {
	sp := chordPair(60, graph.Edge{U: 0, V: 59})
	po, err := NewPair(sp, landmark.MaxMin, 4, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := po.ApproxTopK(20, 1)
	sampled := po.ApproxTopK(20, 7)
	if len(sampled) > len(full) {
		t.Fatal("sampling should not find more pairs")
	}
	if d := po.DeltaEstimate(0, 0); d != 0 {
		t.Fatalf("self delta = %d", d)
	}
}

func TestCandidateNodes(t *testing.T) {
	pairs := []topk.Pair{{U: 3, V: 9}, {U: 3, V: 5}, {U: 1, V: 9}}
	cands := CandidateNodes(pairs, 3)
	if len(cands) != 3 {
		t.Fatalf("cands = %v", cands)
	}
	all := CandidateNodes(pairs, 100)
	if len(all) != 4 {
		t.Fatalf("all = %v", all)
	}
}

func TestNewPairValidates(t *testing.T) {
	bad := graph.SnapshotPair{
		G1: graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}),
		G2: graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}}),
	}
	if _, err := NewPair(bad, landmark.MaxMin, 2, nil, 1); err == nil {
		t.Fatal("invalid pair should fail")
	}
}
