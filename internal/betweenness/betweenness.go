// Package betweenness implements Brandes' algorithm for node and edge
// betweenness centrality on unweighted undirected graphs, plus a sampled
// (pivot-based) approximation. The Incidence baseline of the paper ranks
// active nodes by the change in total betweenness of their incident edges;
// the paper's own experiments "used the actual edge betweenness centrality,
// giving an advantage to the Incidence algorithm", so the exact variant is
// the one the evaluation harness uses.
package betweenness

import (
	"math/rand"
	"sync"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// EdgeScores maps each undirected edge (canonical orientation U < V) to its
// betweenness score.
type EdgeScores map[graph.Edge]float64

// Nodes computes exact node betweenness for every node with Brandes'
// algorithm, parallelized over source vertices. Each shortest path between
// distinct s and t contributes to the interior nodes of the path;
// undirected double counting is halved away.
func Nodes(g *graph.Graph, workers int) []float64 {
	return nodesFrom(g, allSources(g), workers, 0.5)
}

// NodesSampled approximates node betweenness using `samples` random pivot
// sources; the result is scaled by n/samples so scores are comparable to the
// exact ones in expectation.
func NodesSampled(g *graph.Graph, samples int, rng *rand.Rand, workers int) []float64 {
	n := g.NumNodes()
	if samples >= n {
		return Nodes(g, workers)
	}
	pivots := rng.Perm(n)[:samples]
	scale := 0.5 * float64(n) / float64(samples)
	return nodesFrom(g, pivots, workers, scale)
}

func allSources(g *graph.Graph) []int {
	sources := make([]int, g.NumNodes())
	for i := range sources {
		sources[i] = i
	}
	return sources
}

func nodesFrom(g *graph.Graph, sources []int, workers int, scale float64) []float64 {
	n := g.NumNodes()
	acc := make([]float64, n)
	var mu sync.Mutex
	parallelBrandes(g, sources, workers, func(local []float64, _ EdgeScores) {
		mu.Lock()
		for i, v := range local {
			acc[i] += v
		}
		mu.Unlock()
	}, false)
	for i := range acc {
		acc[i] *= scale
	}
	return acc
}

// Edges computes exact edge betweenness for every edge, parallelized over
// source vertices. Scores use canonical edge orientation.
func Edges(g *graph.Graph, workers int) EdgeScores {
	acc := make(EdgeScores, g.NumEdges())
	var mu sync.Mutex
	parallelBrandes(g, allSources(g), workers, func(_ []float64, local EdgeScores) {
		mu.Lock()
		for e, v := range local {
			acc[e] += v
		}
		mu.Unlock()
	}, true)
	for e := range acc {
		acc[e] *= 0.5
	}
	return acc
}

// EdgesSampled approximates edge betweenness from `samples` random pivots,
// scaled to be comparable with exact scores — the paper's [14] estimates
// edge importance from "a randomly selected set of shortest path trees",
// which is exactly this estimator.
func EdgesSampled(g *graph.Graph, samples int, rng *rand.Rand, workers int) EdgeScores {
	n := g.NumNodes()
	if samples >= n {
		return Edges(g, workers)
	}
	pivots := rng.Perm(n)[:samples]
	acc := make(EdgeScores, g.NumEdges())
	var mu sync.Mutex
	parallelBrandes(g, pivots, workers, func(_ []float64, local EdgeScores) {
		mu.Lock()
		for e, v := range local {
			acc[e] += v
		}
		mu.Unlock()
	}, true)
	scale := 0.5 * float64(n) / float64(samples)
	for e := range acc {
		acc[e] *= scale
	}
	return acc
}

// parallelBrandes runs one Brandes dependency accumulation per source and
// hands each worker's combined local result to merge once per worker.
func parallelBrandes(g *graph.Graph, sources []int, workers int, merge func([]float64, EdgeScores), wantEdges bool) {
	workers = sssp.ClampWorkers(workers, len(sources))
	next := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newState(g.NumNodes())
			nodeAcc := make([]float64, g.NumNodes())
			var edgeAcc EdgeScores
			if wantEdges {
				edgeAcc = make(EdgeScores, g.NumEdges())
			}
			for i := range next {
				st.run(g, sources[i], nodeAcc, edgeAcc)
			}
			merge(nodeAcc, edgeAcc)
		}()
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
}

// state holds the per-source scratch buffers of Brandes' algorithm.
type state struct {
	dist    []int32
	sigma   []float64 // number of shortest paths from source
	delta   []float64 // dependency accumulation
	order   []int32   // nodes in BFS visit order
	parents [][]int32
}

func newState(n int) *state {
	return &state{
		dist:    make([]int32, n),
		sigma:   make([]float64, n),
		delta:   make([]float64, n),
		order:   make([]int32, 0, n),
		parents: make([][]int32, n),
	}
}

// run executes one Brandes source iteration, accumulating node dependencies
// into nodeAcc and (if non-nil) edge dependencies into edgeAcc.
func (st *state) run(g *graph.Graph, src int, nodeAcc []float64, edgeAcc EdgeScores) {
	n := g.NumNodes()
	st.order = st.order[:0]
	for i := 0; i < n; i++ {
		st.dist[i] = -1
		st.sigma[i] = 0
		st.delta[i] = 0
		st.parents[i] = st.parents[i][:0]
	}
	st.dist[src] = 0
	st.sigma[src] = 1
	queue := append(make([]int32, 0, 256), int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		st.order = append(st.order, u)
		for _, v := range g.Neighbors(int(u)) {
			if st.dist[v] < 0 {
				st.dist[v] = st.dist[u] + 1
				queue = append(queue, v)
			}
			if st.dist[v] == st.dist[u]+1 {
				st.sigma[v] += st.sigma[u]
				st.parents[v] = append(st.parents[v], u)
			}
		}
	}
	// Dependency accumulation in reverse BFS order.
	for i := len(st.order) - 1; i >= 0; i-- {
		w := st.order[i]
		coef := (1 + st.delta[w]) / st.sigma[w]
		for _, p := range st.parents[w] {
			contrib := st.sigma[p] * coef
			st.delta[p] += contrib
			if edgeAcc != nil {
				edgeAcc[graph.Edge{U: int(p), V: int(w)}.Canon()] += contrib
			}
		}
		if int(w) != src {
			nodeAcc[w] += st.delta[w]
		}
	}
}
