package betweenness

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func benchGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(i, rng.Intn(i))
	}
	for i := 0; i < 2*n; i++ {
		_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

// BenchmarkNodesExact quantifies why the paper avoids exact betweenness for
// candidate generation: one full Brandes pass equals n SSSP computations.
func BenchmarkNodesExact(b *testing.B) {
	for _, n := range []int{500, 2000} {
		g := benchGraph(n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = Nodes(g, 0)
			}
		})
	}
}

// BenchmarkNodesSampled shows the pivot-sampled estimator's cost advantage.
func BenchmarkNodesSampled(b *testing.B) {
	g := benchGraph(2000, 2)
	for _, samples := range []int{32, 128} {
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < b.N; i++ {
				_ = NodesSampled(g, samples, rng, 0)
			}
		})
	}
}

// BenchmarkEdgesExact times exact edge betweenness (IncBet's setup).
func BenchmarkEdgesExact(b *testing.B) {
	g := benchGraph(1000, 4)
	for i := 0; i < b.N; i++ {
		_ = Edges(g, 0)
	}
}
