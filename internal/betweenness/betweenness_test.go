package betweenness

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sssp"
)

func pathGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.FromEdges(n, edges)
}

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNodesPath(t *testing.T) {
	// Path 0-1-2-3-4: betweenness of node i (0-indexed) is the number of
	// pairs it separates: node 1 separates {0}x{2,3,4} = 3, node 2 = 2*2 = 4.
	bc := Nodes(pathGraph(5), 1)
	want := []float64{0, 3, 4, 3, 0}
	for i := range want {
		if !approxEq(bc[i], want[i]) {
			t.Fatalf("bc = %v, want %v", bc, want)
		}
	}
}

func TestNodesStar(t *testing.T) {
	// Star center sits on all C(4,2)=6 leaf pairs.
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	bc := Nodes(g, 2)
	if !approxEq(bc[0], 6) {
		t.Fatalf("center betweenness = %v, want 6", bc[0])
	}
	for i := 1; i < 5; i++ {
		if !approxEq(bc[i], 0) {
			t.Fatalf("leaf betweenness = %v, want 0", bc[i])
		}
	}
}

func TestNodesTriangle(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	bc := Nodes(g, 1)
	for i, v := range bc {
		if !approxEq(v, 0) {
			t.Fatalf("triangle bc[%d] = %v, want 0", i, v)
		}
	}
}

func TestEdgesPath(t *testing.T) {
	// Path 0-1-2-3: edge {i,i+1} carries (i+1)*(n-1-i) pairs.
	es := Edges(pathGraph(4), 1)
	want := map[graph.Edge]float64{
		{U: 0, V: 1}: 3, // {0}x{1,2,3}
		{U: 1, V: 2}: 4, // {0,1}x{2,3}
		{U: 2, V: 3}: 3,
	}
	for e, w := range want {
		if !approxEq(es[e], w) {
			t.Fatalf("edge %v betweenness = %v, want %v", e, es[e], w)
		}
	}
}

func TestEdgesSplitAcrossShortestPaths(t *testing.T) {
	// Square 0-1-2-3-0: two shortest paths between opposite corners, so
	// each edge carries 1 (adjacent pair) + 2 * 1/2 (two opposite pairs
	// splitting across it) = 2.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	es := Edges(g, 1)
	for e, v := range es {
		if !approxEq(v, 2) {
			t.Fatalf("square edge %v betweenness = %v, want 2", e, v)
		}
	}
}

// naiveNodeBetweenness counts pair dependencies by enumerating all shortest
// paths via BFS sigma counting per (s,t) — an O(n^3)-ish reference.
func naiveNodeBetweenness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		ds := sssp.Distances(g, s)
		sigmaS := pathCounts(g, s, ds)
		for t := 0; t < n; t++ {
			if t == s || ds[t] < 0 {
				continue
			}
			dt := sssp.Distances(g, t)
			sigmaT := pathCounts(g, t, dt)
			for v := 0; v < n; v++ {
				if v == s || v == t || ds[v] < 0 {
					continue
				}
				if ds[v]+dt[v] == ds[t] {
					bc[v] += sigmaS[v] * sigmaT[v] / sigmaS[t]
				}
			}
		}
	}
	for i := range bc {
		bc[i] /= 2 // each unordered pair counted twice
	}
	return bc
}

func pathCounts(g *graph.Graph, src int, dist []int32) []float64 {
	n := g.NumNodes()
	sigma := make([]float64, n)
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if dist[v] >= 0 {
			order = append(order, v)
		}
	}
	// Process in distance order.
	for d := int32(0); ; d++ {
		found := false
		for _, v := range order {
			if dist[v] != d {
				continue
			}
			found = true
			if d == 0 {
				sigma[v] = 1
				continue
			}
			for _, u := range g.Neighbors(v) {
				if dist[u] == d-1 {
					sigma[v] += sigma[u]
				}
			}
		}
		if !found {
			break
		}
	}
	return sigma
}

// Property: Brandes matches the naive pair-dependency computation on random
// graphs, and parallel execution matches serial.
func TestBrandesMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(14)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		got := Nodes(g, 4)
		want := naiveNodeBetweenness(g)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				return false
			}
		}
		serial := Nodes(g, 1)
		for i := range serial {
			if math.Abs(got[i]-serial[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: summing edge betweenness over edges incident to interior path
// structure equals pair-count identities — here we check the simpler global
// identity sum_e EB(e) = sum over connected pairs of d(u,v).
func TestEdgeBetweennessSumIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(14)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		es := Edges(g, 2)
		var sumEB float64
		for _, v := range es {
			sumEB += v
		}
		var sumDist float64
		for u := 0; u < n; u++ {
			d := sssp.Distances(g, u)
			for v := u + 1; v < n; v++ {
				if d[v] > 0 {
					sumDist += float64(d[v])
				}
			}
		}
		return math.Abs(sumEB-sumDist) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSampledApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// A graph big enough that sampling differs from exact.
	b := graph.NewBuilder(120)
	for i := 1; i < 120; i++ {
		_ = b.AddEdge(i, rng.Intn(i))
	}
	g := b.Build()
	exact := Nodes(g, 0)
	approx := NodesSampled(g, 60, rng, 0)
	// Spearman-ish sanity: the top exact node should rank in the approx
	// top-10.
	bestExact := argmax(exact)
	rank := 0
	for i := range approx {
		if approx[i] > approx[bestExact] {
			rank++
		}
	}
	if rank >= 10 {
		t.Fatalf("top exact node ranked %d in sampled scores", rank)
	}
	// With samples >= n, sampled must be exact.
	full := NodesSampled(g, 500, rng, 0)
	for i := range exact {
		if math.Abs(full[i]-exact[i]) > 1e-9 {
			t.Fatal("full sampling should equal exact")
		}
	}
	esExact := Edges(g, 0)
	esFull := EdgesSampled(g, 500, rng, 0)
	for e, v := range esExact {
		if math.Abs(esFull[e]-v) > 1e-9 {
			t.Fatal("full edge sampling should equal exact")
		}
	}
	esApprox := EdgesSampled(g, 60, rng, 0)
	if len(esApprox) == 0 {
		t.Fatal("sampled edge scores empty")
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
