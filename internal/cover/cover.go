// Package cover solves the vertex-cover and budgeted max-coverage problems
// on the pairs graph G^p_k. The paper formalizes good candidate endpoints as
// a vertex cover of G^p_k (Problem 2: with budget m, maximize the number of
// covered pairs), uses the greedy log-approximation as the reference
// solution ("greedy-cover"), and trains its classifiers with greedy-cover
// membership as the positive class.
package cover

import (
	"sort"

	"repro/internal/topk"
)

// Greedy computes a vertex cover of the pairs graph with the classic greedy
// algorithm: repeatedly pick the node covering the most uncovered pairs.
// Ties break toward the smaller node ID for determinism. The result covers
// every pair and has the well-known logarithmic approximation ratio.
func Greedy(pairs []topk.Pair) []int32 {
	cover, _ := MaxCoverage(pairs, len(pairs)) // k nodes always suffice
	return cover
}

// MaxCoverage runs the greedy algorithm for the budgeted max-coverage
// variant: select at most budget nodes maximizing the number of covered
// pairs. It returns the selected nodes in pick order and the number of pairs
// they cover. Selection stops early once everything is covered.
func MaxCoverage(pairs []topk.Pair, budget int) (nodes []int32, covered int) {
	if budget <= 0 || len(pairs) == 0 {
		return nil, 0
	}
	// Adjacency from node -> indices of incident pairs.
	incident := make(map[int32][]int)
	for i, p := range pairs {
		incident[p.U] = append(incident[p.U], i)
		incident[p.V] = append(incident[p.V], i)
	}
	gain := make(map[int32]int, len(incident))
	for u, inc := range incident {
		gain[u] = len(inc)
	}
	done := make([]bool, len(pairs))
	for len(nodes) < budget && covered < len(pairs) {
		best, bestGain := int32(-1), 0
		for u, g := range gain {
			if g > bestGain || (g == bestGain && g > 0 && (best == -1 || u < best)) {
				best, bestGain = u, g
			}
		}
		if bestGain == 0 {
			break
		}
		nodes = append(nodes, best)
		for _, i := range incident[best] {
			if done[i] {
				continue
			}
			done[i] = true
			covered++
			p := pairs[i]
			gain[p.U]--
			gain[p.V]--
		}
		delete(gain, best)
	}
	return nodes, covered
}

// Matching computes a vertex cover via a maximal matching: both endpoints of
// every matched pair enter the cover, a classic 2-approximation of the
// minimum vertex cover. Provided as an ablation alternative to Greedy.
func Matching(pairs []topk.Pair) []int32 {
	matched := make(map[int32]bool)
	var cover []int32
	for _, p := range pairs {
		if matched[p.U] || matched[p.V] {
			continue
		}
		matched[p.U], matched[p.V] = true, true
		cover = append(cover, p.U, p.V)
	}
	sort.Slice(cover, func(i, j int) bool { return cover[i] < cover[j] })
	return cover
}

// DegreeOrdered returns a cover built by scanning endpoints in descending
// G^p_k-degree order and adding any node incident to a still-uncovered pair.
// A third ablation strategy for the classifier's positive class.
func DegreeOrdered(pairs []topk.Pair) []int32 {
	pg := topk.NewPairsGraph(pairs)
	endpoints := pg.Endpoints()
	sort.Slice(endpoints, func(i, j int) bool {
		di, dj := pg.Degree(endpoints[i]), pg.Degree(endpoints[j])
		if di != dj {
			return di > dj
		}
		return endpoints[i] < endpoints[j]
	})
	covered := make([]bool, len(pairs))
	incident := make(map[int32][]int)
	for i, p := range pairs {
		incident[p.U] = append(incident[p.U], i)
		incident[p.V] = append(incident[p.V], i)
	}
	var cover []int32
	remaining := len(pairs)
	for _, u := range endpoints {
		if remaining == 0 {
			break
		}
		useful := false
		for _, i := range incident[u] {
			if !covered[i] {
				useful = true
				break
			}
		}
		if !useful {
			continue
		}
		cover = append(cover, u)
		for _, i := range incident[u] {
			if !covered[i] {
				covered[i] = true
				remaining--
			}
		}
	}
	return cover
}

// IsCover reports whether nodes cover every pair.
func IsCover(pairs []topk.Pair, nodes []int32) bool {
	set := make(map[int32]bool, len(nodes))
	for _, u := range nodes {
		set[u] = true
	}
	for _, p := range pairs {
		if !set[p.U] && !set[p.V] {
			return false
		}
	}
	return true
}

// Exact computes a minimum vertex cover by branch and bound on the pair
// list. Exponential in the worst case; intended for tests and tiny graphs
// (it refuses inputs with more than 30 distinct endpoints by returning nil).
func Exact(pairs []topk.Pair) []int32 {
	ids := topk.NewPairsGraph(pairs).Endpoints()
	if len(ids) > 30 {
		return nil
	}
	if len(pairs) == 0 {
		return []int32{}
	}
	index := make(map[int32]int, len(ids))
	for i, u := range ids {
		index[u] = i
	}
	type edge struct{ a, b int }
	edges := make([]edge, len(pairs))
	for i, p := range pairs {
		edges[i] = edge{index[p.U], index[p.V]}
	}
	best := uint32(1<<len(ids)) - 1 // all nodes
	bestCount := len(ids)
	var rec func(i int, chosen uint32, count int)
	rec = func(i int, chosen uint32, count int) {
		if count >= bestCount {
			return
		}
		if i == len(edges) {
			best, bestCount = chosen, count
			return
		}
		e := edges[i]
		if chosen&(1<<e.a) != 0 || chosen&(1<<e.b) != 0 {
			rec(i+1, chosen, count)
			return
		}
		rec(i+1, chosen|1<<e.a, count+1)
		rec(i+1, chosen|1<<e.b, count+1)
	}
	rec(0, 0, 0)
	var cover []int32
	for i, u := range ids {
		if best&(1<<i) != 0 {
			cover = append(cover, u)
		}
	}
	return cover
}
