package cover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topk"
)

func star(center int32, leaves ...int32) []topk.Pair {
	var pairs []topk.Pair
	for _, l := range leaves {
		p := topk.Pair{U: center, V: l}
		if l < center {
			p = topk.Pair{U: l, V: center}
		}
		pairs = append(pairs, p)
	}
	return pairs
}

func TestGreedyStar(t *testing.T) {
	pairs := star(0, 1, 2, 3, 4, 5)
	cover := Greedy(pairs)
	if len(cover) != 1 || cover[0] != 0 {
		t.Fatalf("greedy on star = %v, want [0]", cover)
	}
	if !IsCover(pairs, cover) {
		t.Fatal("greedy result is not a cover")
	}
}

func TestGreedyEmpty(t *testing.T) {
	if c := Greedy(nil); len(c) != 0 {
		t.Fatalf("greedy(nil) = %v", c)
	}
	if nodes, covered := MaxCoverage(nil, 5); nodes != nil || covered != 0 {
		t.Fatalf("MaxCoverage(nil) = %v, %d", nodes, covered)
	}
	if nodes, covered := MaxCoverage(star(0, 1), 0); nodes != nil || covered != 0 {
		t.Fatalf("MaxCoverage budget 0 = %v, %d", nodes, covered)
	}
}

func TestMaxCoverageBudgeted(t *testing.T) {
	// Two stars: center 0 with 5 leaves, center 10 with 3 leaves.
	pairs := append(star(0, 1, 2, 3, 4, 5), star(10, 11, 12, 13)...)
	nodes, covered := MaxCoverage(pairs, 1)
	if len(nodes) != 1 || nodes[0] != 0 || covered != 5 {
		t.Fatalf("budget 1: nodes=%v covered=%d, want [0] 5", nodes, covered)
	}
	nodes, covered = MaxCoverage(pairs, 2)
	if len(nodes) != 2 || nodes[1] != 10 || covered != 8 {
		t.Fatalf("budget 2: nodes=%v covered=%d, want [0 10] 8", nodes, covered)
	}
	// Budget beyond need stops once everything is covered.
	nodes, covered = MaxCoverage(pairs, 50)
	if covered != len(pairs) || len(nodes) != 2 {
		t.Fatalf("budget 50: nodes=%v covered=%d", nodes, covered)
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	pairs := []topk.Pair{{U: 1, V: 2}, {U: 3, V: 4}}
	nodes, _ := MaxCoverage(pairs, 2)
	if nodes[0] != 1 || nodes[1] != 3 {
		t.Fatalf("tie-break order = %v, want [1 3]", nodes)
	}
}

func TestMatchingIsCoverAndTwoApprox(t *testing.T) {
	pairs := append(star(0, 1, 2, 3), topk.Pair{U: 1, V: 2})
	m := Matching(pairs)
	if !IsCover(pairs, m) {
		t.Fatalf("matching cover %v does not cover", m)
	}
	exact := Exact(pairs)
	if len(m) > 2*len(exact) {
		t.Fatalf("matching size %d > 2x optimal %d", len(m), len(exact))
	}
}

func TestDegreeOrderedIsCover(t *testing.T) {
	pairs := append(star(0, 1, 2, 3), star(5, 6, 7)...)
	c := DegreeOrdered(pairs)
	if !IsCover(pairs, c) {
		t.Fatalf("degree-ordered cover %v does not cover", c)
	}
	if len(c) != 2 {
		t.Fatalf("degree-ordered on two stars = %v, want two centers", c)
	}
}

func TestExactSmall(t *testing.T) {
	// Triangle needs two nodes.
	pairs := []topk.Pair{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}
	c := Exact(pairs)
	if len(c) != 2 || !IsCover(pairs, c) {
		t.Fatalf("exact triangle cover = %v", c)
	}
	if c := Exact(nil); len(c) != 0 || c == nil {
		t.Fatalf("exact(nil) = %v, want empty non-nil", c)
	}
}

func TestExactRefusesLarge(t *testing.T) {
	var pairs []topk.Pair
	for i := int32(0); i < 40; i += 2 {
		pairs = append(pairs, topk.Pair{U: i, V: i + 1})
	}
	if Exact(pairs) != nil {
		t.Fatal("exact should refuse >30 endpoints")
	}
}

func randomPairs(rng *rand.Rand) []topk.Pair {
	n := int32(4 + rng.Intn(10))
	seen := map[[2]int32]bool{}
	var pairs []topk.Pair
	for i := 0; i < 15; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int32{u, v}] {
			continue
		}
		seen[[2]int32{u, v}] = true
		pairs = append(pairs, topk.Pair{U: u, V: v})
	}
	return pairs
}

// Property: all three heuristics always produce valid covers; greedy and
// matching respect their approximation bounds against the exact optimum.
func TestCoverProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := randomPairs(rng)
		g, m, d := Greedy(pairs), Matching(pairs), DegreeOrdered(pairs)
		if !IsCover(pairs, g) || !IsCover(pairs, m) || !IsCover(pairs, d) {
			return false
		}
		opt := Exact(pairs)
		if opt == nil {
			return true
		}
		if len(m) > 2*len(opt) {
			return false
		}
		// Greedy's worst case is H(n)·opt; for these sizes ln(15)+1 < 4.
		if len(pairs) > 0 && len(g) > 4*len(opt) {
			return false
		}
		return len(g) >= len(opt) && len(m) >= len(opt) && len(d) >= len(opt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy max-coverage with budget b covers at least (1 - 1/e) of
// what ANY b nodes could cover; we check the weaker but testable guarantee
// that coverage is monotone in budget and reaches |pairs| at b = |pairs|.
func TestMaxCoverageMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := randomPairs(rng)
		prev := -1
		for b := 0; b <= len(pairs); b++ {
			_, covered := MaxCoverage(pairs, b)
			if covered < prev {
				return false
			}
			prev = covered
		}
		return prev == len(pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
