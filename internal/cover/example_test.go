package cover_test

import (
	"fmt"

	"repro/internal/cover"
	"repro/internal/topk"
)

// Example shows the greedy vertex cover that defines good candidate
// endpoints: a hub covering many pairs is picked first.
func Example() {
	pairs := []topk.Pair{
		{U: 3, V: 10}, {U: 3, V: 11}, {U: 3, V: 12}, // hub 3
		{U: 7, V: 20}, // an isolated pair
	}
	fmt.Println(cover.Greedy(pairs))
	// Output: [3 7]
}

// ExampleMaxCoverage shows the budgeted variant (Problem 2): with one node
// allowed, the hub wins and covers three of the four pairs.
func ExampleMaxCoverage() {
	pairs := []topk.Pair{
		{U: 3, V: 10}, {U: 3, V: 11}, {U: 3, V: 12},
		{U: 7, V: 20},
	}
	nodes, covered := cover.MaxCoverage(pairs, 1)
	fmt.Println(nodes, covered)
	// Output: [3] 3
}
