// Package landmark implements landmark selection and landmark-based distance
// change estimation. A landmark set L gives every node u a delta vector
// Λ(u)[i] = d_t1(u, w_i) − d_t2(u, w_i); its L1 and L∞ norms are the paper's
// SumDiff and MaxDiff ranking scores, and dispersion-selected landmark sets
// (MaxMin / MaxAvg) power the hybrid algorithms.
//
// Selection and norm computation are metric-generic: they run over
// dist.Source / dist.Pair, so the same code serves BFS distances on
// unweighted snapshots and Dijkstra distances on weighted ones. The
// *graph.Graph entry points (Select, ComputeNorms, ComputeNormsRows) remain
// as thin BFS-source wrappers.
//
// Budget discipline follows the paper's Table 1: every SSSP performed here
// is charged to the caller's budget meter in the candidate-generation phase
// — l per snapshot for the landmark rows, with dispersion selection's G_t1
// rows cached and reused so hybrids pay 2l total, not 3l.
package landmark

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/budget"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/sssp"
)

// Strategy selects how landmarks are picked from G_t1.
type Strategy int

const (
	// Random samples landmarks uniformly from the largest component.
	Random Strategy = iota
	// MaxMin greedily maximizes the minimum distance to selected landmarks,
	// spreading landmarks to cover the graph's clusters.
	MaxMin
	// MaxAvg greedily maximizes the average distance to selected landmarks,
	// favoring peripheral nodes.
	MaxAvg
	// HighDegree picks the highest-degree nodes (a cheap centrality-flavored
	// baseline, used in ablations).
	HighDegree
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case MaxMin:
		return "maxmin"
	case MaxAvg:
		return "maxavg"
	case HighDegree:
		return "highdegree"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ErrNoLandmarks reports a selection request that cannot produce landmarks.
var ErrNoLandmarks = errors.New("landmark: no landmarks selectable")

// Set is a selected landmark set. For dispersion strategies, D1 caches the
// distance rows on G_t1 computed during selection (row i is distances from
// Nodes[i]); reusing them halves the landmark budget of hybrids.
type Set struct {
	Strategy Strategy
	Nodes    []int
	D1       [][]int32
}

// Select picks l landmarks from the unweighted g1; it is SelectSource over a
// BFS distance source, kept for structural callers (oracle, ablations).
func Select(strategy Strategy, g1 *graph.Graph, l int, rng *rand.Rand, meter *budget.Meter) (Set, error) {
	return SelectSource(strategy, dist.NewBFS(g1, sssp.Auto), l, rng, meter)
}

// SelectSource picks l landmarks from a snapshot under any distance metric.
// Landmarks come from the largest connected component, where pairwise
// dispersion distances are well defined. Dispersion strategies charge one
// SSSP per pick to meter (candidate-generation phase); Random and HighDegree
// are free. rng is used by Random only and may be nil for the other
// strategies.
func SelectSource(strategy Strategy, s1 dist.Source, l int, rng *rand.Rand, meter *budget.Meter) (Set, error) {
	if l <= 0 {
		return Set{}, fmt.Errorf("landmark: non-positive landmark count %d", l)
	}
	comp, _ := dist.LargestComponent(s1)
	if len(comp) == 0 {
		return Set{}, fmt.Errorf("%w: empty graph", ErrNoLandmarks)
	}
	if l > len(comp) {
		l = len(comp)
	}
	switch strategy {
	case Random:
		if rng == nil {
			return Set{}, errors.New("landmark: Random strategy requires an rng")
		}
		idx := rng.Perm(len(comp))[:l]
		nodes := make([]int, l)
		for i, j := range idx {
			nodes[i] = comp[j]
		}
		sort.Ints(nodes)
		return Set{Strategy: Random, Nodes: nodes}, nil
	case HighDegree:
		sorted := append([]int(nil), comp...)
		sort.Slice(sorted, func(i, j int) bool {
			di, dj := s1.Degree(sorted[i]), s1.Degree(sorted[j])
			if di != dj {
				return di > dj
			}
			return sorted[i] < sorted[j]
		})
		return Set{Strategy: HighDegree, Nodes: sorted[:l]}, nil
	case MaxMin, MaxAvg:
		return selectDispersed(strategy, s1, comp, l, meter)
	default:
		return Set{}, fmt.Errorf("landmark: unknown strategy %v", strategy)
	}
}

// selectDispersed runs the greedy dispersion selection shared by MaxMin and
// MaxAvg. The first pick is the highest-degree node of the component (a
// deterministic, central anchor); each subsequent pick maximizes the
// min (MaxMin) or sum (MaxAvg) of distances to the already-selected set.
func selectDispersed(strategy Strategy, s1 dist.Source, comp []int, l int, meter *budget.Meter) (Set, error) {
	first := comp[0]
	for _, u := range comp {
		if s1.Degree(u) > s1.Degree(first) {
			first = u
		}
	}
	n := s1.NumNodes()
	inComp := make([]bool, n)
	for _, u := range comp {
		inComp[u] = true
	}
	selected := make([]int, 0, l)
	isSelected := make([]bool, n)
	score := make([]int64, n) // min- or sum-distance to selected
	rows := make([][]int32, 0, l)
	sess := dist.NewSession(s1)

	pick := func(u int) error {
		if err := meter.Charge(budget.PhaseCandidateGen, 1); err != nil {
			return err
		}
		row := make([]int32, n)
		sess.DistancesInto(u, row)
		rows = append(rows, row)
		selected = append(selected, u)
		isSelected[u] = true
		for v := 0; v < n; v++ {
			if !inComp[v] {
				continue
			}
			d := int64(row[v]) // finite within the component
			if strategy == MaxAvg {
				score[v] += d
			} else if len(selected) == 1 || d < score[v] {
				score[v] = d
			}
		}
		return nil
	}

	if err := pick(first); err != nil {
		return Set{}, fmt.Errorf("landmark: %v selection: %w", strategy, err)
	}
	for len(selected) < l {
		best, bestScore := -1, int64(-1)
		for _, v := range comp {
			if isSelected[v] {
				continue
			}
			if score[v] > bestScore {
				best, bestScore = v, score[v]
			}
		}
		if best < 0 {
			break
		}
		if err := pick(best); err != nil {
			return Set{}, fmt.Errorf("landmark: %v selection: %w", strategy, err)
		}
	}
	return Set{Strategy: strategy, Nodes: selected, D1: rows}, nil
}

// Norms holds, per node of the snapshot universe, the L1 and L∞ norms of the
// landmark delta vector. Unreachable (in G_t1) landmark–node combinations
// contribute zero: such pairs are not connected, hence not converging.
type Norms struct {
	L1   []int64
	LInf []int32
}

// ComputeNorms evaluates the delta-vector norms of every node for the given
// landmark set. It charges one SSSP per landmark on G_t2, plus one per
// landmark on G_t1 when the set carries no cached D1 rows.
func ComputeNorms(set Set, pair graph.SnapshotPair, meter *budget.Meter, workers int) (Norms, error) {
	norms, _, _, err := ComputeNormsRows(set, pair, meter, workers)
	return norms, err
}

// ComputeNormsRows is ComputeNorms but also returns the landmark distance
// matrices on both snapshots (row i = distances from set.Nodes[i]). Hybrid
// selectors cache these rows so the extraction phase re-spends nothing on
// landmark sources, preserving the paper's exact 2m SSSP budget.
func ComputeNormsRows(set Set, pair graph.SnapshotPair, meter *budget.Meter, workers int) (Norms, [][]int32, [][]int32, error) {
	return ComputeNormsSource(set, dist.BFSPair(pair, sssp.Auto), meter, workers)
}

// ComputeNormsSource is the metric-generic ComputeNormsRows: it evaluates
// the delta-vector norms over any distance-source pair, with the same
// charging discipline.
func ComputeNormsSource(set Set, p dist.Pair, meter *budget.Meter, workers int) (Norms, [][]int32, [][]int32, error) {
	l := len(set.Nodes)
	if l == 0 {
		return Norms{}, nil, nil, ErrNoLandmarks
	}
	d1 := set.D1
	if d1 == nil {
		if err := meter.Charge(budget.PhaseCandidateGen, l); err != nil {
			return Norms{}, nil, nil, fmt.Errorf("landmark: G_t1 rows: %w", err)
		}
		d1 = dist.DistanceMatrix(p.S1, set.Nodes, workers)
	} else if len(d1) != l {
		return Norms{}, nil, nil, fmt.Errorf("landmark: cached D1 has %d rows for %d landmarks", len(d1), l)
	}
	if err := meter.Charge(budget.PhaseCandidateGen, l); err != nil {
		return Norms{}, nil, nil, fmt.Errorf("landmark: G_t2 rows: %w", err)
	}
	d2 := dist.DistanceMatrix(p.S2, set.Nodes, workers)

	n := p.NumNodes()
	norms := Norms{L1: make([]int64, n), LInf: make([]int32, n)}
	for i := 0; i < l; i++ {
		r1, r2 := d1[i], d2[i]
		for v := 0; v < n; v++ {
			if r1[v] <= 0 { // unreachable in G_t1, or the landmark itself
				continue
			}
			delta := r1[v] - r2[v]
			if delta <= 0 {
				continue
			}
			norms.L1[v] += int64(delta)
			if delta > norms.LInf[v] {
				norms.LInf[v] = delta
			}
		}
	}
	return norms, d1, d2, nil
}

// TopByScore returns the m nodes with the highest score, excluding any node
// in the exclude set, breaking ties toward smaller IDs. score must be
// indexable by node ID; nodes with zero score still qualify (the paper's
// rankings keep the top-m regardless).
func TopByScore[T int64 | int32 | float64](score []T, m int, exclude map[int]bool) []int {
	if m <= 0 {
		return nil
	}
	idx := make([]int, 0, len(score))
	for v := range score {
		if !exclude[v] {
			idx = append(idx, v)
		}
	}
	sort.Slice(idx, func(i, j int) bool {
		if score[idx[i]] != score[idx[j]] {
			return score[idx[i]] > score[idx[j]]
		}
		return idx[i] < idx[j]
	})
	if m > len(idx) {
		m = len(idx)
	}
	return idx[:m]
}
