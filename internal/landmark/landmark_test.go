package landmark

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/budget"
	"repro/internal/graph"
	"repro/internal/sssp"
)

func pathGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.FromEdges(n, edges)
}

func TestSelectValidation(t *testing.T) {
	g := pathGraph(5)
	if _, err := Select(Random, g, 0, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("l=0 should fail")
	}
	if _, err := Select(Random, g, 2, nil, nil); err == nil {
		t.Error("Random without rng should fail")
	}
	if _, err := Select(Strategy(99), g, 2, nil, nil); err == nil {
		t.Error("unknown strategy should fail")
	}
	empty := graph.FromEdges(0, nil)
	if _, err := Select(HighDegree, empty, 2, nil, nil); !errors.Is(err, ErrNoLandmarks) {
		t.Errorf("empty graph err = %v", err)
	}
}

func TestSelectRandomFromLargestComponent(t *testing.T) {
	// Two components: path of 6 (largest) and an edge {6,7}.
	b := graph.NewBuilder(8)
	for i := 0; i < 5; i++ {
		_ = b.AddEdge(i, i+1)
	}
	_ = b.AddEdge(6, 7)
	g := b.Build()
	set, err := Select(Random, g, 4, rand.New(rand.NewSource(2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Nodes) != 4 {
		t.Fatalf("got %d landmarks", len(set.Nodes))
	}
	for _, u := range set.Nodes {
		if u > 5 {
			t.Fatalf("landmark %d outside largest component", u)
		}
	}
	// Requesting more than the component size clamps.
	set, err = Select(Random, g, 100, rand.New(rand.NewSource(3)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Nodes) != 6 {
		t.Fatalf("clamped landmarks = %d, want 6", len(set.Nodes))
	}
}

func TestSelectHighDegree(t *testing.T) {
	// Star with center 3 plus chain so all connected.
	g := graph.FromEdges(6, []graph.Edge{{U: 3, V: 0}, {U: 3, V: 1}, {U: 3, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}})
	set, err := Select(HighDegree, g, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.Nodes[0] != 3 {
		t.Fatalf("highest degree landmark = %d, want 3", set.Nodes[0])
	}
	if set.Nodes[1] != 4 {
		t.Fatalf("second landmark = %d, want 4 (degree 2)", set.Nodes[1])
	}
}

func TestSelectMaxMinOnPath(t *testing.T) {
	// Path 0..8 with a high-degree anchor: node 4 gets extra stubs so the
	// deterministic first pick is the middle; MaxMin should then pick an end.
	b := graph.NewBuilder(11)
	for i := 0; i < 8; i++ {
		_ = b.AddEdge(i, i+1)
	}
	_ = b.AddEdge(4, 9)
	_ = b.AddEdge(4, 10)
	g := b.Build()
	mt := budget.NewMeterSSSP(10)
	set, err := Select(MaxMin, g, 2, nil, mt)
	if err != nil {
		t.Fatal(err)
	}
	if set.Nodes[0] != 4 {
		t.Fatalf("first pick = %d, want hub 4", set.Nodes[0])
	}
	if set.Nodes[1] != 0 && set.Nodes[1] != 8 {
		t.Fatalf("second MaxMin pick = %d, want a path end", set.Nodes[1])
	}
	if got := mt.Report().CandidateGen; got != 2 {
		t.Fatalf("charged %d BFS, want 2", got)
	}
	if len(set.D1) != 2 || set.D1[0][0] != 4 {
		t.Fatalf("cached D1 rows wrong: %v", set.D1)
	}
}

func TestSelectDispersionBudgetExhaustion(t *testing.T) {
	g := pathGraph(10)
	mt := budget.NewMeterSSSP(1)
	_, err := Select(MaxMin, g, 3, nil, mt)
	if !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
}

// Property: MaxMin and MaxAvg produce distinct landmarks inside the largest
// component, and MaxMin's picks are pairwise farther apart than random's
// worst case on a path.
func TestDispersionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			_ = b.AddEdge(i, rng.Intn(i))
		}
		g := b.Build()
		l := 2 + rng.Intn(4)
		for _, s := range []Strategy{MaxMin, MaxAvg} {
			set, err := Select(s, g, l, nil, nil)
			if err != nil {
				return false
			}
			seen := map[int]bool{}
			for _, u := range set.Nodes {
				if seen[u] {
					return false
				}
				seen[u] = true
			}
			if len(set.D1) != len(set.Nodes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func snapshotWithShortcut(n int) graph.SnapshotPair {
	g1 := pathGraph(n)
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		_ = b.AddEdge(i, i+1)
	}
	_ = b.AddEdge(0, n-1)
	return graph.SnapshotPair{G1: g1, G2: b.Build()}
}

func TestComputeNorms(t *testing.T) {
	sp := snapshotWithShortcut(8) // path 0..7 + shortcut {0,7}
	set := Set{Strategy: Random, Nodes: []int{0}}
	mt := budget.NewMeterSSSP(2)
	norms, err := ComputeNorms(set, sp, mt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0 (1 BFS per snapshot)", mt.Remaining())
	}
	// From landmark 0: d1(0,v)=v, d2(0,v)=min(v, 8-v).
	// v=7: Δ=6; v=6: Δ=4; v=5: Δ=2; else 0.
	wantL1 := []int64{0, 0, 0, 0, 0, 2, 4, 6}
	for v, w := range wantL1 {
		if norms.L1[v] != w {
			t.Fatalf("L1 = %v, want %v", norms.L1, wantL1)
		}
		if norms.LInf[v] != int32(w) {
			t.Fatalf("LInf[%d] = %d, want %d (single landmark: L1 == LInf)", v, norms.LInf[v], w)
		}
	}
}

func TestComputeNormsUsesCachedD1(t *testing.T) {
	sp := snapshotWithShortcut(6)
	d1 := [][]int32{sssp.Distances(sp.G1, 0)}
	set := Set{Strategy: MaxMin, Nodes: []int{0}, D1: d1}
	mt := budget.NewMeterSSSP(1) // only the G_t2 row should be charged
	if _, err := ComputeNorms(set, sp, mt, 1); err != nil {
		t.Fatal(err)
	}
	if mt.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", mt.Remaining())
	}
	// Mismatched cache is rejected.
	bad := Set{Strategy: MaxMin, Nodes: []int{0, 1}, D1: d1}
	if _, err := ComputeNorms(bad, sp, nil, 1); err == nil {
		t.Fatal("mismatched D1 cache should fail")
	}
	if _, err := ComputeNorms(Set{}, sp, nil, 1); !errors.Is(err, ErrNoLandmarks) {
		t.Fatal("empty set should fail with ErrNoLandmarks")
	}
}

func TestComputeNormsBudgetExhaustion(t *testing.T) {
	sp := snapshotWithShortcut(6)
	set := Set{Strategy: Random, Nodes: []int{0, 1, 2}}
	mt := budget.NewMeterSSSP(3) // needs 6
	if _, err := ComputeNorms(set, sp, mt, 1); !errors.Is(err, budget.ErrExhausted) {
		t.Fatal("expected budget exhaustion")
	}
}

// Property: for a single landmark w, LInf[u] == L1[u] == max(0, d1-d2), and
// for multiple landmarks L1 >= LInf and LInf equals the max per-landmark
// delta computed directly.
func TestNormsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			_ = b.AddEdge(i, rng.Intn(i))
		}
		g1 := b.Build()
		for i := 0; i < 3; i++ {
			_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g2 := b.Build()
		sp := graph.SnapshotPair{G1: g1, G2: g2}
		l := 1 + rng.Intn(3)
		set, err := Select(Random, g1, l, rng, nil)
		if err != nil {
			return false
		}
		norms, err := ComputeNorms(set, sp, nil, 2)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if norms.L1[v] < int64(norms.LInf[v]) || norms.LInf[v] < 0 {
				return false
			}
			var wantInf int32
			var wantL1 int64
			for _, w := range set.Nodes {
				d1 := sssp.Distances(g1, w)
				d2 := sssp.Distances(g2, w)
				if d1[v] <= 0 {
					continue
				}
				delta := d1[v] - d2[v]
				if delta > 0 {
					wantL1 += int64(delta)
					if delta > wantInf {
						wantInf = delta
					}
				}
			}
			if norms.LInf[v] != wantInf || norms.L1[v] != wantL1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTopByScore(t *testing.T) {
	score := []int64{5, 1, 9, 9, 0}
	got := TopByScore(score, 3, nil)
	want := []int{2, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopByScore = %v, want %v", got, want)
		}
	}
	got = TopByScore(score, 2, map[int]bool{2: true})
	if got[0] != 3 || got[1] != 0 {
		t.Fatalf("TopByScore with exclude = %v", got)
	}
	if TopByScore(score, 0, nil) != nil {
		t.Fatal("m=0 should return nil")
	}
	if len(TopByScore(score, 100, nil)) != 5 {
		t.Fatal("m beyond len should clamp")
	}
}
