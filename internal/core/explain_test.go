package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/topk"
)

// explainPair builds the canonical shortcut scenario: G_t1 is the path
// 0-1-2-3-4 plus a separate path 5-6-7; G_t2 adds the shortcuts 1-3 and 5-7.
// Shortest paths over the shortcuts are unique, so Explain's output is
// deterministic.
func explainPair(t *testing.T) graph.SnapshotPair {
	t.Helper()
	old := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
		{U: 5, V: 6}, {U: 6, V: 7},
	}
	sp := graph.SnapshotPair{
		G1: graph.FromEdges(8, old),
		G2: graph.FromEdges(8, append(old, graph.Edge{U: 1, V: 3}, graph.Edge{U: 5, V: 7})),
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestExplainSplitsPathIntoOldAndNewEdges(t *testing.T) {
	sp := explainPair(t)
	exp, err := Explain(sp, topk.Pair{U: 0, V: 4, D1: 4, D2: 3, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantPath := []int{0, 1, 3, 4}
	if len(exp.Path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", exp.Path, wantPath)
	}
	for i := range wantPath {
		if exp.Path[i] != wantPath[i] {
			t.Fatalf("path = %v, want %v", exp.Path, wantPath)
		}
	}
	if len(exp.NewEdges) != 1 || exp.NewEdges[0].Canon() != (graph.Edge{U: 1, V: 3}) {
		t.Fatalf("new edges = %v, want [{1 3}]", exp.NewEdges)
	}
	if len(exp.OldEdges) != 2 {
		t.Fatalf("old edges = %v, want the 0-1 and 3-4 hops", exp.OldEdges)
	}
}

func TestExplanationStringMarksNewEdges(t *testing.T) {
	sp := explainPair(t)
	exp, err := Explain(sp, topk.Pair{U: 0, V: 4, D1: 4, D2: 3, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := exp.String()
	if !strings.Contains(s, "0 -- 1 == 3 -- 4") {
		t.Fatalf("String() = %q, want the path with == marking the new 1-3 edge", s)
	}
	if !strings.Contains(s, "1 new edge") {
		t.Fatalf("String() = %q, want the new-edge count legend", s)
	}
}

func TestExplainErrors(t *testing.T) {
	sp := explainPair(t)
	cases := []struct {
		name string
		pair topk.Pair
		want string
	}{
		{"out of range", topk.Pair{U: 0, V: 100, D2: 1}, "out of range"},
		{"non-canonical", topk.Pair{U: 4, V: 0, D2: 3}, "non-canonical"},
		{"negative", topk.Pair{U: -1, V: 2, D2: 1}, "out of range"},
		{"unconnected", topk.Pair{U: 0, V: 7, D2: 2}, "not connected"},
		{"stale distance", topk.Pair{U: 0, V: 4, D2: 4}, "stale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Explain(sp, tc.pair)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	// An invalid snapshot pair (G_t2 missing a G_t1 edge) fails validation
	// before any path work.
	bad := graph.SnapshotPair{
		G1: graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}),
		G2: graph.FromEdges(2, nil),
	}
	if _, err := Explain(bad, topk.Pair{U: 0, V: 1, D2: 1}); err == nil {
		t.Fatal("invalid snapshot pair should fail")
	}
}

func TestCriticalNewEdgesRanksByImpact(t *testing.T) {
	sp := explainPair(t)
	pairs := []topk.Pair{
		{U: 0, V: 4, D1: 4, D2: 3, Delta: 1}, // routes over 1-3
		{U: 0, V: 3, D1: 3, D2: 2, Delta: 1}, // routes over 1-3
		{U: 1, V: 4, D1: 3, D2: 2, Delta: 1}, // routes over 1-3
		{U: 5, V: 7, D1: 2, D2: 1, Delta: 1}, // routes over 5-7
		{U: 2, V: 4, D1: 2, D2: 9, Delta: 0}, // stale distance: skipped, not fatal
	}
	impacts := CriticalNewEdges(sp, pairs, 0)
	if len(impacts) != 2 {
		t.Fatalf("impacts = %v, want the two shortcut edges", impacts)
	}
	if impacts[0].Edge != (graph.Edge{U: 1, V: 3}) || impacts[0].Pairs != 3 {
		t.Fatalf("top impact = %v, want edge 1-3 with 3 pairs", impacts[0])
	}
	if impacts[1].Edge != (graph.Edge{U: 5, V: 7}) || impacts[1].Pairs != 1 {
		t.Fatalf("second impact = %v, want edge 5-7 with 1 pair", impacts[1])
	}
	// topN truncates after ranking.
	if top := CriticalNewEdges(sp, pairs, 1); len(top) != 1 || top[0].Edge != (graph.Edge{U: 1, V: 3}) {
		t.Fatalf("topN=1 = %v, want only edge 1-3", top)
	}
}
