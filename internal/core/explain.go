package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/sssp"
	"repro/internal/topk"
)

// Explanation attributes a converging pair to the evolution that caused it:
// one shortest path in G_t2 between the endpoints, split into the edges
// that already existed in G_t1 and the new edges responsible for the
// collapse. Applications act on this ("which new friendship / peering link
// brought them together?"), and it doubles as a verification: the path
// length must equal the pair's D2.
type Explanation struct {
	Pair topk.Pair
	// Path is one shortest path in G_t2 from Pair.U to Pair.V (inclusive).
	Path []int
	// NewEdges are the path edges absent from G_t1 — the insertions that
	// created the shortcut, in path order.
	NewEdges []graph.Edge
	// OldEdges are the path edges already present in G_t1, in path order.
	OldEdges []graph.Edge
}

// Explain traces the shortest path behind a converging pair on the snapshot
// pair it was found on. It validates that the pair's recorded distances
// match the graphs, so stale results surface as errors rather than wrong
// stories.
func Explain(pair graph.SnapshotPair, p topk.Pair) (*Explanation, error) {
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	n := pair.G1.NumNodes()
	if int(p.U) >= n || int(p.V) >= n || p.U < 0 || p.U >= p.V {
		return nil, fmt.Errorf("core: pair %v out of range or non-canonical", p)
	}
	path := sssp.Path(pair.G2, int(p.U), int(p.V))
	if path == nil {
		return nil, fmt.Errorf("core: pair %v is not connected in G_t2", p)
	}
	if int32(len(path)-1) != p.D2 {
		return nil, fmt.Errorf("core: pair %v records d2=%d but G_t2 distance is %d (stale result?)",
			p, p.D2, len(path)-1)
	}
	exp := &Explanation{Pair: p, Path: path}
	for i := 1; i < len(path); i++ {
		e := graph.Edge{U: path[i-1], V: path[i]}
		if pair.G1.HasEdge(e.U, e.V) {
			exp.OldEdges = append(exp.OldEdges, e)
		} else {
			exp.NewEdges = append(exp.NewEdges, e)
		}
	}
	return exp, nil
}

// String renders the explanation as a one-line path with new edges marked.
func (e *Explanation) String() string {
	out := fmt.Sprintf("(%d,%d) Δ=%d via", e.Pair.U, e.Pair.V, e.Pair.Delta)
	isNew := make(map[graph.Edge]bool, len(e.NewEdges))
	for _, ne := range e.NewEdges {
		isNew[ne.Canon()] = true
	}
	for i, v := range e.Path {
		if i == 0 {
			out += fmt.Sprintf(" %d", v)
			continue
		}
		sep := "--"
		if isNew[(graph.Edge{U: e.Path[i-1], V: v}).Canon()] {
			sep = "==" // new edge
		}
		out += fmt.Sprintf(" %s %d", sep, v)
	}
	if len(e.NewEdges) > 0 {
		out += fmt.Sprintf("  (== marks the %d new edges)", len(e.NewEdges))
	}
	return out
}

// EdgeImpact aggregates explanations: how many of the given converging
// pairs route over each new edge.
type EdgeImpact struct {
	Edge  graph.Edge
	Pairs int
}

// CriticalNewEdges explains every pair and ranks the new edges by how many
// converging pairs route over them — the inverse view of the Incidence
// baseline's "important edges": instead of guessing candidates from new
// edges, it attributes discovered convergence back to the insertions that
// caused it. Pairs that fail to explain (e.g. stale distances) are skipped.
// Results are sorted by impact descending, then edge order; at most topN
// are returned (0 = all).
func CriticalNewEdges(pair graph.SnapshotPair, pairs []topk.Pair, topN int) []EdgeImpact {
	counts := map[graph.Edge]int{}
	for _, p := range pairs {
		exp, err := Explain(pair, p)
		if err != nil {
			continue
		}
		for _, e := range exp.NewEdges {
			counts[e.Canon()]++
		}
	}
	out := make([]EdgeImpact, 0, len(counts))
	for e, c := range counts {
		out = append(out, EdgeImpact{Edge: e, Pairs: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pairs != out[j].Pairs {
			return out[i].Pairs > out[j].Pairs
		}
		if out[i].Edge.U != out[j].Edge.U {
			return out[i].Edge.U < out[j].Edge.U
		}
		return out[i].Edge.V < out[j].Edge.V
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}
