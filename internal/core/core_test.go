package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/topk"
)

func growingPair(t testing.TB, n int, seed int64) graph.SnapshotPair {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := map[graph.Edge]struct{}{}
	var stream []graph.TimedEdge
	add := func(u, v int) {
		if u == v {
			return
		}
		c := graph.Edge{U: u, V: v}.Canon()
		if _, dup := seen[c]; dup {
			return
		}
		seen[c] = struct{}{}
		stream = append(stream, graph.TimedEdge{U: u, V: v, Time: int64(len(stream))})
	}
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i))
		if i > 2 && rng.Intn(3) == 0 {
			add(i, rng.Intn(i))
		}
	}
	ev, err := graph.NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ev.Pair(0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestTopKValidation(t *testing.T) {
	sp := growingPair(t, 40, 1)
	if _, err := TopK(sp, Options{M: 5, K: 3}); err != ErrNoSelector {
		t.Fatalf("err = %v, want ErrNoSelector", err)
	}
	sel := candidates.Degree()
	if _, err := TopK(sp, Options{Selector: sel, M: 5}); err == nil {
		t.Fatal("neither K nor MinDelta should fail")
	}
	if _, err := TopK(sp, Options{Selector: sel, M: 5, K: 3, MinDelta: 2}); err == nil {
		t.Fatal("both K and MinDelta should fail")
	}
	if _, err := TopK(sp, Options{Selector: sel, M: 0, K: 3}); err == nil {
		t.Fatal("m=0 should fail")
	}
	bad := graph.SnapshotPair{G1: graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}), G2: graph.FromEdges(2, nil)}
	if _, err := TopK(bad, Options{Selector: sel, M: 5, K: 3}); err == nil {
		t.Fatal("invalid pair should fail")
	}
}

// TestBudgetNeverExceeds2M is the library's central guarantee: for every
// selector, a full run spends at most 2m SSSP computations, and the split
// between phases matches the paper's Table 1.
func TestBudgetNeverExceeds2M(t *testing.T) {
	sp := growingPair(t, 150, 2)
	const m, l = 20, 5
	wantGen := map[string]int{
		"Degree": 0, "DegDiff": 0, "DegRel": 0, "Random": 0,
		"MaxMin": m, "MaxAvg": m,
		"SumDiff": 2 * l, "MaxDiff": 2 * l,
		"MMSD": 2 * l, "MMMD": 2 * l, "MASD": 2 * l, "MAMD": 2 * l,
	}
	for _, name := range append([]string{"Random"}, candidates.PaperOrder...) {
		sel, err := candidates.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := TopK(sp, Options{Selector: sel, M: m, L: l, K: 10, Seed: 3, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := res.Budget
		if rep.Total() > 2*m {
			t.Errorf("%s spent %d SSSPs > 2m=%d", name, rep.Total(), 2*m)
		}
		if rep.CandidateGen != wantGen[name] {
			t.Errorf("%s candidate-gen = %d, want %d (Table 1)", name, rep.CandidateGen, wantGen[name])
		}
		if len(res.Candidates) > m {
			t.Errorf("%s produced %d candidates > m", name, len(res.Candidates))
		}
		// The paper's accounting: every run totals exactly 2m when the
		// selector fills its whole candidate budget (all these do, since the
		// graph has >= m eligible nodes) — except hybrids/dispersion whose
		// cached rows make the total land on exactly 2m too.
		if rep.Total() != 2*m {
			t.Errorf("%s spent %d, want exactly 2m=%d", name, rep.Total(), 2*m)
		}
	}
}

// TestPairedModesEquivalent pins the tentpole guarantee at the algorithm
// level: for every selector, running extraction with the incremental paired
// engine returns bit-identical Results — pairs, candidates, AND the budget
// report, since the meter charges rows produced, not traversal work — to the
// full-traversal default.
func TestPairedModesEquivalent(t *testing.T) {
	sp := growingPair(t, 150, 11)
	const m, l = 20, 5
	for _, name := range append([]string{"Random"}, candidates.PaperOrder...) {
		sel, err := candidates.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Selector: sel, M: m, L: l, K: 10, Seed: 7, Workers: 2}
		full, err := TopK(sp, opts)
		if err != nil {
			t.Fatalf("%s full: %v", name, err)
		}
		opts.PairedMode = dist.PairedIncremental
		incr, err := TopK(sp, opts)
		if err != nil {
			t.Fatalf("%s incremental: %v", name, err)
		}
		if !reflect.DeepEqual(full.Pairs, incr.Pairs) {
			t.Errorf("%s: pairs differ between paired modes:\nfull %v\nincr %v",
				name, full.Pairs, incr.Pairs)
		}
		if !reflect.DeepEqual(full.Candidates, incr.Candidates) {
			t.Errorf("%s: candidates differ between paired modes", name)
		}
		if full.Budget != incr.Budget {
			t.Errorf("%s: budget reports differ: full %+v, incremental %+v",
				name, full.Budget, incr.Budget)
		}
	}
}

// TestPipelineAgainstExact: with the candidate set in hand, the pipeline
// must return exactly the converging pairs covered by that set, in canonical
// order, matching a brute-force filter of the exact ground truth.
func TestPipelineAgainstExact(t *testing.T) {
	sp := growingPair(t, 120, 4)
	gt, err := topk.Compute(sp, topk.Options{Workers: 2, Slack: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if gt.MaxDelta < 2 {
		t.Skip("graph too tame at this seed")
	}
	res, err := TopK(sp, Options{Selector: candidates.MMSD(), M: 15, L: 5, MinDelta: 1, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every returned pair must be a true converging pair with one endpoint
	// in the candidate set.
	truth := map[topk.Pair]bool{}
	for _, p := range gt.Pairs {
		truth[p] = true
	}
	set := res.CandidateSet()
	for _, p := range res.Pairs {
		if !truth[p] {
			t.Fatalf("returned pair %v is not a true converging pair", p)
		}
		if !set[p.U] && !set[p.V] {
			t.Fatalf("returned pair %v has no endpoint in the candidate set", p)
		}
	}
	// Conversely, every true pair covered by the candidate set must be
	// returned (MinDelta=1 returns all discovered pairs).
	got := map[topk.Pair]bool{}
	for _, p := range res.Pairs {
		got[p] = true
	}
	for _, p := range topk.CoveredBy(gt.Pairs, set) {
		if !got[p] {
			t.Fatalf("true covered pair %v missing from result", p)
		}
	}
	// Canonical order.
	for i := 1; i < len(res.Pairs); i++ {
		a, b := res.Pairs[i-1], res.Pairs[i]
		if a.Delta < b.Delta {
			t.Fatal("pairs not sorted by Delta descending")
		}
	}
}

func TestTopKCutsAtK(t *testing.T) {
	sp := growingPair(t, 120, 6)
	res, err := TopK(sp, Options{Selector: candidates.MaxAvg(), M: 10, K: 3, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) > 3 {
		t.Fatalf("got %d pairs, want <= 3", len(res.Pairs))
	}
}

func TestCoverageMetric(t *testing.T) {
	sp := growingPair(t, 120, 8)
	gt, err := topk.Compute(sp, topk.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if gt.MaxDelta == 0 {
		t.Skip("no converging pairs at this seed")
	}
	truth := gt.PairsAtLeast(gt.MaxDelta)
	res, err := TopK(sp, Options{Selector: candidates.MMSD(), M: 25, L: 5, K: len(truth), Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Coverage(truth)
	if cov < 0 || cov > 1 {
		t.Fatalf("coverage = %v out of range", cov)
	}
	// Found pairs at Δmax must be a subset of truth; coverage should count
	// exactly those pairs of truth covered by the candidate set.
	want := topk.Coverage(truth, res.CandidateSet())
	if cov != want {
		t.Fatalf("Coverage() = %v, direct = %v", cov, want)
	}
}

func TestExactBaseline(t *testing.T) {
	sp := growingPair(t, 100, 10)
	pairs, err := Exact(sp, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) > 5 {
		t.Fatalf("Exact returned %d pairs", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Delta < pairs[i].Delta {
			t.Fatal("Exact pairs not sorted")
		}
	}
}

func TestMeterOverride(t *testing.T) {
	sp := growingPair(t, 80, 11)
	mt := budget.NewMeterSSSP(3) // deliberately tiny
	_, err := TopK(sp, Options{Selector: candidates.MaxMin(), M: 10, K: 5, Meter: mt, Workers: 2})
	if err == nil {
		t.Fatal("tiny meter should exhaust")
	}
}

func TestEmptyCandidates(t *testing.T) {
	// A G1 with a single edge: Degree yields at most 2 candidates; with all
	// nodes isolated except two, pipeline still works and may find nothing.
	g1 := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}})
	g2 := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	sp := graph.SnapshotPair{G1: g1, G2: g2}
	res, err := TopK(sp, Options{Selector: candidates.Degree(), M: 5, K: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("no distances decreased, got %v", res.Pairs)
	}
}

func TestExactClampsAndSorts(t *testing.T) {
	sp := growingPair(t, 60, 12)
	// k far beyond the pair count clamps without panicking.
	pairs, err := Exact(sp, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Delta < pairs[i].Delta {
			t.Fatal("Exact pairs not sorted")
		}
	}
	// Invalid pair propagates the error.
	bad := graph.SnapshotPair{
		G1: graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}),
		G2: graph.FromEdges(2, nil),
	}
	if _, err := Exact(bad, 5, 1); err == nil {
		t.Fatal("invalid pair should fail")
	}
}

func TestSortCandidates(t *testing.T) {
	c := []int{9, 1, 5}
	SortCandidates(c)
	if c[0] != 1 || c[2] != 9 {
		t.Fatalf("sorted = %v", c)
	}
}

func TestExplain(t *testing.T) {
	// Path 0..5 in G1; G2 adds the chord {0,5}.
	g1 := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}})
	g2 := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 0, V: 5}})
	sp := graph.SnapshotPair{G1: g1, G2: g2}
	p := topk.Pair{U: 0, V: 5, D1: 5, D2: 1, Delta: 4}
	exp, err := Explain(sp, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Path) != 2 || exp.Path[0] != 0 || exp.Path[1] != 5 {
		t.Fatalf("path = %v", exp.Path)
	}
	if len(exp.NewEdges) != 1 || exp.NewEdges[0] != (graph.Edge{U: 0, V: 5}) {
		t.Fatalf("new edges = %v", exp.NewEdges)
	}
	if len(exp.OldEdges) != 0 {
		t.Fatalf("old edges = %v", exp.OldEdges)
	}
	s := exp.String()
	if s == "" || !containsAll(s, "==", "(0,5)") {
		t.Fatalf("explanation string = %q", s)
	}
	// Pair (1,5): d2 = 2 via 1-0-5; one old edge, one new edge.
	exp, err = Explain(sp, topk.Pair{U: 1, V: 5, D1: 4, D2: 2, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.NewEdges) != 1 || len(exp.OldEdges) != 1 {
		t.Fatalf("edges = new %v old %v", exp.NewEdges, exp.OldEdges)
	}
	// Stale result (wrong D2) is rejected.
	if _, err := Explain(sp, topk.Pair{U: 0, V: 5, D1: 5, D2: 3, Delta: 2}); err == nil {
		t.Fatal("stale D2 should fail")
	}
	// Non-canonical / out-of-range pairs are rejected.
	if _, err := Explain(sp, topk.Pair{U: 5, V: 0}); err == nil {
		t.Fatal("non-canonical pair should fail")
	}
	if _, err := Explain(sp, topk.Pair{U: 0, V: 99}); err == nil {
		t.Fatal("out-of-range pair should fail")
	}
	// Disconnected pair in G2.
	disc := graph.SnapshotPair{
		G1: graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}),
		G2: graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}),
	}
	if _, err := Explain(disc, topk.Pair{U: 0, V: 2, D2: 1}); err == nil {
		t.Fatal("disconnected pair should fail")
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}

func TestCriticalNewEdges(t *testing.T) {
	// Ring of 12 with two chords; the chord {0,6} shortcuts more pairs.
	b := graph.NewBuilder(12)
	for i := 0; i < 12; i++ {
		_ = b.AddEdge(i, (i+1)%12)
	}
	g1 := b.Build()
	_ = b.AddEdge(0, 6)
	_ = b.AddEdge(3, 5)
	g2 := b.Build()
	sp := graph.SnapshotPair{G1: g1, G2: g2}
	gt, err := topk.Compute(sp, topk.Options{Workers: 1, Slack: 100})
	if err != nil {
		t.Fatal(err)
	}
	impacts := CriticalNewEdges(sp, gt.Pairs, 0)
	if len(impacts) == 0 {
		t.Fatal("no impacts")
	}
	if impacts[0].Edge != (graph.Edge{U: 0, V: 6}) {
		t.Fatalf("top edge = %v, want {0,6}", impacts[0].Edge)
	}
	for i := 1; i < len(impacts); i++ {
		if impacts[i-1].Pairs < impacts[i].Pairs {
			t.Fatal("impacts not sorted")
		}
	}
	top1 := CriticalNewEdges(sp, gt.Pairs, 1)
	if len(top1) != 1 {
		t.Fatalf("topN = %v", top1)
	}
	// Stale pairs are skipped, not fatal.
	if got := CriticalNewEdges(sp, []topk.Pair{{U: 0, V: 6, D2: 9}}, 0); len(got) != 0 {
		t.Fatalf("stale pair produced impacts: %v", got)
	}
}

// badSelector returns duplicate and out-of-range candidates to exercise
// core's defenses.
type badSelector struct{ cands []int }

func (badSelector) Name() string                                { return "Bad" }
func (s badSelector) Select(*candidates.Context) ([]int, error) { return s.cands, nil }

func TestSelectorDefenses(t *testing.T) {
	sp := growingPair(t, 40, 14)
	// Duplicates are deduped, not double-counted.
	res, err := TopK(sp, Options{Selector: badSelector{cands: []int{1, 1, 2}}, M: 5, K: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %v, want deduped to 2", res.Candidates)
	}
	// Out-of-range candidates are rejected.
	if _, err := TopK(sp, Options{Selector: badSelector{cands: []int{9999}}, M: 5, K: 3}); err == nil {
		t.Fatal("out-of-range candidate should fail")
	}
	// Over-budget candidate lists are rejected.
	many := make([]int, 10)
	for i := range many {
		many[i] = i
	}
	if _, err := TopK(sp, Options{Selector: badSelector{cands: many}, M: 5, K: 3}); err == nil {
		t.Fatal("over-budget candidates should fail")
	}
}
