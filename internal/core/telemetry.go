package core

import (
	"fmt"
	"time"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/sssp"
)

// Phase wall-time histograms: one core.phase_ns series per Algorithm 1
// phase, observed at the same points the trace spans end, so a phase's
// _count equals the number of spans of that name and p50/p99 latencies can
// be read straight off /metrics without a trace file.
var (
	selectionNS  = obs.NewHistogram("core.phase_ns", obs.L("phase", "selection"))
	extractionNS = obs.NewHistogram("core.phase_ns", obs.L("phase", "extraction"))
	sortCutNS    = obs.NewHistogram("core.phase_ns", obs.L("phase", "sort-cut"))
	totalNS      = obs.NewHistogram("core.phase_ns", obs.L("phase", "total"))
)

// PhaseLatencies returns point-in-time snapshots of the phase wall-time
// histograms keyed by phase name — the programmatic view of the
// core.phase_ns series. Diff two calls with HistogramSnapshot.Sub to get the
// latency distribution of a region (internal/eval's latency table does).
func PhaseLatencies() map[string]obs.HistogramSnapshot {
	return map[string]obs.HistogramSnapshot{
		"selection":  selectionNS.Snapshot(),
		"extraction": extractionNS.Snapshot(),
		"sort-cut":   sortCutNS.Snapshot(),
		"total":      totalNS.Snapshot(),
	}
}

// fingerprint compacts the options that determine a run's result into one
// string, the flight record's identity line.
func fingerprint(opts Options) string {
	name := "none"
	if opts.Selector != nil {
		name = opts.Selector.Name()
	}
	return fmt.Sprintf("selector=%s m=%d k=%d delta=%d seed=%d engine=%s paired=%s workers=%d par=%d",
		name, opts.M, opts.K, opts.MinDelta, opts.Seed,
		opts.Engine, opts.PairedMode, opts.Workers, opts.Parallelism)
}

// recordRun closes out one run's telemetry: the total-phase histogram sample
// and a flight-recorder entry carrying the options fingerprint, per-phase
// wall times, the meter's final report, and the kernel-counter delta. The
// kernel counters are process-global, so under concurrent runs the delta
// attributes overlapping traversal work to whichever run reads it — an
// accepted imprecision, same as SnapshotMetrics region attribution.
func recordRun(opts Options, meter *budget.Meter, before sssp.MetricsSnapshot, prunedBefore sssp.PrunedWork, start time.Time, phases obs.PhaseNanos, res *Result, err error) {
	//convlint:nondet phase latency is observational, not part of results
	phases.Total = time.Since(start).Nanoseconds()
	totalNS.Observe(phases.Total)
	d := sssp.SnapshotMetrics().Sub(before)
	pd := sssp.SnapshotPrunedWork().Sub(prunedBefore)
	t := d.Total()
	rep := meter.Report()
	rec := obs.RunRecord{
		Kind:        "topk",
		Fingerprint: fingerprint(opts),
		Phases:      phases,
		Budget:      obs.BudgetSplit{Limit: rep.Limit, CandidateGen: rep.CandidateGen, TopK: rep.TopK},
		Kernels: obs.KernelDelta{
			Calls:       t.Calls - d.Repair.Calls - d.PrunedBFS.Calls,
			Sources:     t.Sources - d.Repair.Sources - d.PrunedBFS.Sources,
			Nodes:       t.Nodes - d.Repair.Nodes - d.PrunedBFS.Nodes,
			Edges:       t.Edges - d.Repair.Edges - d.PrunedBFS.Edges,
			RepairCalls: d.Repair.Calls,
			RepairNodes: d.Repair.Nodes,
			RepairEdges: d.Repair.Edges,
			// The pruned-extraction split: bounded t2 traversals are broken
			// out like repairs, plus the work the Δ-threshold cuts avoided.
			PrunedBFSCalls:     d.PrunedBFS.Calls,
			PrunedBFSEdges:     d.PrunedBFS.Edges,
			PrunedCutoffs:      pd.Cutoffs,
			PrunedSkippedNodes: pd.Nodes,
			PrunedSkippedEdges: pd.Edges,
		},
		Outcome: "ok",
	}
	if res != nil {
		rec.Candidates = len(res.Candidates)
		rec.Pairs = len(res.Pairs)
		rec.PrunedCandidates = res.Pruned.CandidatesSkipped
	}
	if err != nil {
		rec.Outcome = err.Error()
	}
	obs.Flight.Append(rec)
}
