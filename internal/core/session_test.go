package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/dist"
	"repro/internal/graph"
)

// resultsEqual compares everything a served query promises to keep
// bit-identical to a one-shot run: pairs, candidates, budget report, and
// selector name. Phases are wall-clock and deliberately excluded.
func resultsEqual(a, b *Result) bool {
	return reflect.DeepEqual(a.Pairs, b.Pairs) &&
		reflect.DeepEqual(a.Candidates, b.Candidates) &&
		a.Budget == b.Budget &&
		a.SelectorName == b.SelectorName
}

// TestSessionMatchesOneShot pins the session invariant across selectors and
// paired modes: N queries on one Session return exactly what N one-shot TopK
// calls return.
func TestSessionMatchesOneShot(t *testing.T) {
	sp := growingPair(t, 120, 3)
	for _, mode := range []dist.PairedMode{dist.PairedFull, dist.PairedIncremental} {
		sess, err := NewSession(sp, SessionConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, sel := range []candidates.Selector{
			candidates.Degree(), candidates.Random(), candidates.MaxMin(), candidates.SumDiff(),
		} {
			opts := Options{Selector: sel, M: 15, L: 5, K: 5, Seed: 42, PairedMode: mode}
			want, err := TopK(sp, opts)
			if err != nil {
				t.Fatalf("%s one-shot: %v", sel.Name(), err)
			}
			// Two session queries back to back: the second exercises reused
			// engines and pooled scratch.
			for rep := 0; rep < 2; rep++ {
				got, err := sess.TopK(context.Background(), opts)
				if err != nil {
					t.Fatalf("%s session rep %d: %v", sel.Name(), rep, err)
				}
				if !resultsEqual(want, got) {
					t.Fatalf("%s (mode %v) rep %d: session result diverged from one-shot", sel.Name(), mode, rep)
				}
			}
		}
	}
}

// TestSessionCachesPairedEngine pins the pay-setup-once claim: the paired
// engine (and its edge delta, in incremental mode) is built on first use and
// shared by later queries.
func TestSessionCachesPairedEngine(t *testing.T) {
	sp := growingPair(t, 60, 5)
	sess, err := NewSession(sp, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Selector: candidates.Degree(), M: 4, K: 3, PairedMode: dist.PairedIncremental}
	if _, err := sess.TopK(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	first := sess.pairedEngine(dist.PairedIncremental)
	if _, err := sess.TopK(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if sess.pairedEngine(dist.PairedIncremental) != first {
		t.Fatalf("paired engine rebuilt between queries")
	}
	if len(sess.pengs) != 1 {
		t.Fatalf("session holds %d engines, want 1", len(sess.pengs))
	}
}

// TestSessionConcurrentQueries runs queries with different seeds and budgets
// concurrently on one Session and checks each against its own one-shot run —
// the serve layer's exact usage pattern.
func TestSessionConcurrentQueries(t *testing.T) {
	sp := growingPair(t, 100, 7)
	sess, err := NewSession(sp, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := Options{Selector: candidates.Random(), M: 4 + i, K: 4, Seed: int64(100 + i)}
			want, err := TopK(sp, opts)
			if err != nil {
				t.Error(err)
				return
			}
			got, err := sess.TopK(context.Background(), opts)
			if err != nil {
				t.Error(err)
				return
			}
			if !resultsEqual(want, got) {
				t.Errorf("query %d diverged under concurrency", i)
			}
		}()
	}
	wg.Wait()
}

// TestSessionCancellation pins ctx semantics: a pre-canceled context fails
// before spending budget, and the session stays fully usable afterwards.
func TestSessionCancellation(t *testing.T) {
	sp := growingPair(t, 80, 9)
	sess, err := NewSession(sp, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	meter := budget.NewMeter(6)
	opts := Options{Selector: candidates.Degree(), M: 6, K: 4, Meter: meter}
	if _, err := sess.TopK(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if spent := meter.Report().Total(); spent != 0 {
		t.Fatalf("canceled query spent %d SSSPs", spent)
	}
	got, err := sess.TopK(context.Background(), Options{Selector: candidates.Degree(), M: 6, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := TopK(sp, Options{Selector: candidates.Degree(), M: 6, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(want, got) {
		t.Fatalf("session diverged after a canceled query")
	}
}

// TestSessionSourcesBatched pins the serve wiring end to end at the core
// layer: a session over Batcher-wrapped sources returns bit-identical
// results to the unbatched one-shot run, for both paired modes.
func TestSessionSourcesBatched(t *testing.T) {
	sp := growingPair(t, 100, 11)
	batched := dist.Pair{
		S1: dist.NewBatcher(dist.NewBFSPar(sp.G1, 0, 0), dist.BatcherOptions{Immediate: true}),
		S2: dist.NewBatcher(dist.NewBFSPar(sp.G2, 0, 0), dist.BatcherOptions{Immediate: true}),
	}
	sess, err := NewSessionSources(batched)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []dist.PairedMode{dist.PairedFull, dist.PairedIncremental} {
		// MaxMin exercises selector-side sweeps (dispersion picks) through
		// the batcher, not just extraction.
		opts := Options{Selector: candidates.MaxMin(), M: 6, K: 5, Seed: 13, PairedMode: mode}
		want, err := TopK(sp, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.TopK(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(want, got) {
			t.Fatalf("mode %v: batched session diverged from one-shot", mode)
		}
	}
}

// TestSessionValidation pins constructor and per-query validation errors.
func TestSessionValidation(t *testing.T) {
	bad := graph.SnapshotPair{G1: graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}), G2: graph.FromEdges(2, nil)}
	if _, err := NewSession(bad, SessionConfig{}); err == nil {
		t.Fatal("invalid pair accepted")
	}
	if _, err := NewSessionSources(dist.Pair{}); err == nil {
		t.Fatal("nil sources accepted")
	}
	sp := growingPair(t, 30, 15)
	sess, err := NewSession(sp, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.NumNodes() != sp.G1.NumNodes() {
		t.Fatalf("session universe %d, want %d", sess.NumNodes(), sp.G1.NumNodes())
	}
	if _, err := sess.TopK(context.Background(), Options{M: 5, K: 3}); err != ErrNoSelector {
		t.Fatalf("err = %v, want ErrNoSelector", err)
	}
	if _, err := sess.TopK(context.Background(), Options{Selector: candidates.Degree(), M: 0, K: 3}); err == nil {
		t.Fatal("m=0 accepted")
	}
	// nil ctx means background, matching the one-shot wrappers.
	if _, err := sess.TopK(nil, Options{Selector: candidates.Degree(), M: 4, K: 3}); err != nil { //nolint:staticcheck
		t.Fatalf("nil ctx: %v", err)
	}
}
