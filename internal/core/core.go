// Package core implements the paper's Algorithm 1, the generic budgeted
// top-k converging-pairs algorithm: select m candidate endpoints with a
// pluggable selector, compute their single-source shortest paths on both
// snapshots (reusing any rows the selector already paid for), take the
// pairwise distance differences, and return the k pairs that converged the
// most. Every shortest-path computation is charged to a budget meter, so a
// run's total cost is provably at most 2m SSSPs.
//
// The algorithm is metric-agnostic: it runs over any dist.Pair of distance
// sources. TopK wires up BFS engines for unweighted snapshots; TopKSources
// accepts arbitrary sources (Dijkstra over weighted snapshots, or anything
// else satisfying dist.Source), so the unweighted and weighted pipelines
// share one implementation of selection, extraction, and ranking.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sssp"
	"repro/internal/topk"
)

// Options configures one run of the generic top-k algorithm.
type Options struct {
	// Selector generates the candidate endpoints; required.
	Selector candidates.Selector
	// M is the endpoint budget (2M SSSP computations in total); required.
	M int
	// L is the landmark-set size for landmark-using selectors; 0 means the
	// paper's default of 10.
	L int
	// K asks for the K pairs with the largest distance decrease. Exactly one
	// of K and MinDelta must be set.
	K int
	// MinDelta asks for every discovered pair whose distance decreased by at
	// least MinDelta (the paper's δ-threshold formulation).
	MinDelta int32
	// Seed drives random choices; ignored if RNG is set.
	Seed int64
	// RNG overrides the seeded RNG.
	RNG *rand.Rand
	// Workers bounds SSSP parallelism; <=0 means GOMAXPROCS.
	Workers int
	// Parallelism bounds intra-traversal parallelism: how many cores one
	// BFS may split its frontiers across (sssp's parallel level-synchronous
	// kernels). 0 follows the process default, <=1 runs each traversal
	// serial. Orthogonal to Workers, which spreads sources; total
	// concurrency is roughly their product. Results, budget charges, and
	// traversal-work metrics are identical at every setting — only
	// wall-clock changes.
	Parallelism int
	// Engine selects the BFS kernel for the extraction phase's shortest
	// paths (ablations pin one); the zero value Auto picks the fastest.
	// Ignored by TopKSources, whose sources carry their own kernels.
	Engine sssp.Engine
	// PairedMode selects how extraction produces the G_t2 rows: the zero
	// value PairedFull traverses G_t2 per candidate (the paper's literal
	// algorithm); dist.PairedIncremental derives them from the G_t1 rows via
	// the snapshot edge delta, silently falling back to full when the
	// sources don't support it. The budget charge is identical in both modes
	// (2 units per uncached candidate — the meter counts rows produced, not
	// traversal work), so Table-1 accounting never depends on this knob.
	PairedMode dist.PairedMode
	// Meter overrides the default budget meter of 2M SSSPs. Useful for
	// tests; normal callers leave it nil.
	Meter *budget.Meter
	// Trace, when non-nil, records Algorithm 1's phases (selection,
	// extraction, sort/cut) as spans and attributes every budget charge to
	// the phase executing when it was spent. Export with Trace.WriteChrome
	// or Trace.WriteTree; tracing off (nil) costs nothing.
	Trace *obs.Trace
}

// Result is the outcome of a budgeted top-k run.
type Result struct {
	// Pairs holds the discovered converging pairs in canonical order
	// (Delta descending, then node IDs), cut to K if K was set.
	Pairs []topk.Pair
	// Candidates is the endpoint set M the selector produced.
	Candidates []int
	// Budget reports the SSSP spending split by phase (Table 1).
	Budget budget.Report
	// SelectorName records which algorithm generated the candidates.
	SelectorName string
}

// CandidateSet returns the candidate endpoints as a set, the form the
// coverage metric consumes.
func (r *Result) CandidateSet() map[int32]bool { return topk.NodeSet(r.Candidates) }

// Coverage returns the fraction of truePairs recoverable from this run's
// candidate set — the paper's evaluation metric.
func (r *Result) Coverage(truePairs []topk.Pair) float64 {
	return topk.Coverage(truePairs, r.CandidateSet())
}

// ErrNoSelector reports Options without a selector.
var ErrNoSelector = errors.New("core: no selector configured")

// TopK runs Algorithm 1 on the unweighted snapshot pair with BFS distance
// engines.
func TopK(pair graph.SnapshotPair, opts Options) (*Result, error) {
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	return run(dist.BFSPairPar(pair, opts.Engine, opts.Parallelism), pair, opts)
}

// TopKSources runs Algorithm 1 over an arbitrary pair of distance sources —
// the single implementation behind both the unweighted (BFS) and weighted
// (Dijkstra) pipelines. Structural selectors that need raw adjacency (e.g.
// BetDiff, EmbedSum) work only when the sources unwrap to unweighted graphs.
func TopKSources(src dist.Pair, opts Options) (*Result, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	var pair graph.SnapshotPair
	if g1, ok := dist.UnweightedGraph(src.S1); ok {
		if g2, ok := dist.UnweightedGraph(src.S2); ok {
			pair = graph.SnapshotPair{G1: g1, G2: g2}
		}
	}
	return run(src, pair, opts)
}

// run is the shared body of Algorithm 1. pair is the structural view of src
// when one exists (unweighted sources); it is zero for metric-only sources.
func run(src dist.Pair, pair graph.SnapshotPair, opts Options) (result *Result, err error) {
	if opts.Selector == nil {
		return nil, ErrNoSelector
	}
	if (opts.K > 0) == (opts.MinDelta > 0) {
		return nil, fmt.Errorf("core: exactly one of K (%d) and MinDelta (%d) must be positive",
			opts.K, opts.MinDelta)
	}
	if opts.M <= 0 {
		return nil, fmt.Errorf("core: non-positive endpoint budget m=%d", opts.M)
	}
	rng := opts.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	meter := opts.Meter
	if meter == nil {
		meter = budget.NewMeter(opts.M)
	}
	// Telemetry brackets the whole run (every path from here records one
	// flight entry and one total-phase histogram sample).
	//convlint:nondet phase latency is observational, not part of results
	runStart := time.Now()
	kernelsBefore := sssp.SnapshotMetrics()
	var phases obs.PhaseNanos
	defer func() { recordRun(opts, meter, kernelsBefore, runStart, phases, result, err) }()
	tr := opts.Trace
	if tr != nil {
		// Every successful charge lands on the span open at that moment, so
		// the trace's per-phase totals reproduce the meter's Report exactly.
		meter.SetObserver(func(p budget.Phase, n int) { tr.AddSSSP(p.String(), n) })
		defer meter.SetObserver(nil)
	}
	run := tr.StartSpan("algorithm1",
		obs.Str("selector", opts.Selector.Name()),
		obs.Int("m", opts.M), obs.Int("k", opts.K),
		obs.Int("nodes", src.NumNodes()))
	defer run.End()
	ctx := &candidates.Context{
		Pair:    pair,
		S1:      src.S1,
		S2:      src.S2,
		M:       opts.M,
		L:       opts.L,
		RNG:     rng,
		Meter:   meter,
		Workers: opts.Workers,
	}
	//convlint:nondet phase latency is observational, not part of results
	selStart := time.Now()
	selSpan := tr.StartSpan("selection", obs.Str("selector", opts.Selector.Name()))
	cands, err := opts.Selector.Select(ctx)
	selSpan.Set(obs.Int("candidates", len(cands)),
		obs.Int("d1-rows-cached", len(ctx.D1Rows)), obs.Int("d2-rows-cached", len(ctx.D2Rows)))
	selSpan.End()
	//convlint:nondet phase latency is observational, not part of results
	phases.Selection = time.Since(selStart).Nanoseconds()
	selectionNS.Observe(phases.Selection)
	if err != nil {
		return nil, fmt.Errorf("core: candidate generation (%s): %w", opts.Selector.Name(), err)
	}
	if len(cands) > opts.M {
		return nil, fmt.Errorf("core: selector %s returned %d candidates for budget m=%d",
			opts.Selector.Name(), len(cands), opts.M)
	}
	// Defensive dedupe: a duplicated candidate would double-charge the
	// budget and double-count its pairs.
	seen := make(map[int]bool, len(cands))
	uniq := cands[:0]
	for _, u := range cands {
		if u < 0 || u >= src.NumNodes() {
			return nil, fmt.Errorf("core: selector %s returned out-of-range candidate %d",
				opts.Selector.Name(), u)
		}
		if !seen[u] {
			seen[u] = true
			uniq = append(uniq, u)
		}
	}
	cands = uniq
	pairs, err := extractPairs(src, ctx, cands, opts, meter, &phases)
	if err != nil {
		return nil, err
	}
	return &Result{
		Pairs:        pairs,
		Candidates:   cands,
		Budget:       meter.Report(),
		SelectorName: opts.Selector.Name(),
	}, nil
}

// extractPairs implements lines 2-5 of Algorithm 1: compute D1 and D2 rows
// for the candidate set (reusing rows the selector cached), form the
// pairwise deltas, and keep the top pairs.
func extractPairs(src dist.Pair, ctx *candidates.Context, cands []int, opts Options, meter *budget.Meter, phases *obs.PhaseNanos) ([]topk.Pair, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	n := src.NumNodes()
	tr := opts.Trace

	// Charge exactly the SSSP computations the caches cannot cover.
	toCharge := 0
	for _, u := range cands {
		if _, ok := ctx.D1Rows[u]; !ok {
			toCharge++
		}
		if _, ok := ctx.D2Rows[u]; !ok {
			toCharge++
		}
	}
	// The paired engine is built once per run: incremental mode computes the
	// snapshot edge delta here and shares it read-only across all workers.
	peng := dist.NewPairedEngine(src, opts.PairedMode)
	//convlint:nondet phase latency is observational, not part of results
	extStart := time.Now()
	extSpan := tr.StartSpan("extraction",
		obs.Int("candidates", len(cands)), obs.Int("cache-misses", toCharge),
		obs.Str("paired", peng.Mode().String()))
	if err := meter.Charge(budget.PhaseTopK, toCharge); err != nil {
		extSpan.End()
		//convlint:nondet phase latency is observational, not part of results
		phases.Extraction = time.Since(extStart).Nanoseconds()
		extractionNS.Observe(phases.Extraction)
		return nil, fmt.Errorf("core: extraction phase: %w", err)
	}

	inM := make(map[int]bool, len(cands))
	for _, u := range cands {
		inM[u] = true
	}

	floor := opts.MinDelta
	if floor <= 0 {
		floor = 1
	}

	workers := sssp.ClampWorkers(opts.Workers, len(cands))
	var mu sync.Mutex
	var all []topk.Pair
	next := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// The pprof label splits CPU/goroutine profiles by subsystem, so an
		// extraction-heavy run shows up as such in /debug/pprof.
		go pprof.Do(context.Background(), pprof.Labels("subsystem", "core-extract"),
			func(context.Context) {
				defer wg.Done()
				d1buf := make([]int32, n)
				d2buf := make([]int32, n)
				ps := peng.NewSession()
				// Plain S1 session for the rare only-d2-cached case, created
				// lazily: most runs never hit it.
				var sess1 dist.Session
				var local []topk.Pair
				for i := range next {
					u := cands[i]
					d1 := ctx.D1Rows[u]
					d2 := ctx.D2Rows[u]
					switch {
					case d1 == nil && d2 == nil:
						ps.DistancesPairInto(u, d1buf, d2buf)
						d1, d2 = d1buf, d2buf
					case d1 != nil && d2 == nil:
						// The selector already paid for the t1 row; derive
						// (or recompute, in full mode) just the t2 row.
						ps.DeriveInto(u, d1, d2buf)
						d2 = d2buf
					case d1 == nil:
						if sess1 == nil {
							sess1 = dist.NewSession(src.S1)
						}
						sess1.DistancesInto(u, d1buf)
						d1 = d1buf
					}
					for v := 0; v < n; v++ {
						if v == u || (inM[v] && v < u) {
							continue // the pair is found from the smaller candidate
						}
						if d1[v] <= 0 {
							continue
						}
						delta := d1[v] - d2[v]
						if delta < floor {
							continue
						}
						p := topk.Pair{U: int32(u), V: int32(v), D1: d1[v], D2: d2[v], Delta: delta}
						if p.U > p.V {
							p.U, p.V = p.V, p.U
						}
						local = append(local, p)
					}
				}
				mu.Lock()
				all = append(all, local...) //convlint:shared per-worker batches merged under mu
				mu.Unlock()
			})
	}
	for i := range cands {
		next <- i
	}
	close(next)
	wg.Wait()
	extSpan.Set(obs.Int("raw-pairs", len(all)))
	extSpan.End()
	//convlint:nondet phase latency is observational, not part of results
	phases.Extraction = time.Since(extStart).Nanoseconds()
	extractionNS.Observe(phases.Extraction)

	//convlint:nondet phase latency is observational, not part of results
	cutStart := time.Now()
	cutSpan := tr.StartSpan("sort-cut", obs.Int("pairs", len(all)))
	topk.SortPairs(all)
	if opts.K > 0 && len(all) > opts.K {
		all = all[:opts.K]
	}
	cutSpan.Set(obs.Int("kept", len(all)))
	cutSpan.End()
	//convlint:nondet phase latency is observational, not part of results
	phases.SortCut = time.Since(cutStart).Nanoseconds()
	sortCutNS.Observe(phases.SortCut)
	return all, nil
}

// Exact computes the true top-k converging pairs without budget constraints
// (the quadratic baseline the paper compares against). It is a thin wrapper
// over the topk package, exposed here so the public API offers both the
// budgeted algorithm and the exact one.
func Exact(pair graph.SnapshotPair, k int, workers int) ([]topk.Pair, error) {
	gt, err := topk.Compute(pair, topk.Options{Workers: workers, Slack: 1 << 30})
	if err != nil {
		return nil, err
	}
	if k > len(gt.Pairs) {
		k = len(gt.Pairs)
	}
	return gt.Pairs[:k], nil
}

// SortCandidates orders a candidate slice ascending; a display helper.
func SortCandidates(cands []int) { sort.Ints(cands) }
