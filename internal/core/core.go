// Package core implements the paper's Algorithm 1, the generic budgeted
// top-k converging-pairs algorithm: select m candidate endpoints with a
// pluggable selector, compute their single-source shortest paths on both
// snapshots (reusing any rows the selector already paid for), take the
// pairwise distance differences, and return the k pairs that converged the
// most. Every shortest-path computation is charged to a budget meter, so a
// run's total cost is provably at most 2m SSSPs.
//
// The algorithm is metric-agnostic: it runs over any dist.Pair of distance
// sources. TopK wires up BFS engines for unweighted snapshots; TopKSources
// accepts arbitrary sources (Dijkstra over weighted snapshots, or anything
// else satisfying dist.Source), so the unweighted and weighted pipelines
// share one implementation of selection, extraction, and ranking.
package core

import (
	"context"
	"errors"
	"math/rand"
	"sort"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sssp"
	"repro/internal/topk"
)

// Options configures one run of the generic top-k algorithm.
type Options struct {
	// Selector generates the candidate endpoints; required.
	Selector candidates.Selector
	// M is the endpoint budget (2M SSSP computations in total); required.
	M int
	// L is the landmark-set size for landmark-using selectors; 0 means the
	// paper's default of 10.
	L int
	// K asks for the K pairs with the largest distance decrease. Exactly one
	// of K and MinDelta must be set.
	K int
	// MinDelta asks for every discovered pair whose distance decreased by at
	// least MinDelta (the paper's δ-threshold formulation).
	MinDelta int32
	// Seed drives random choices; ignored if RNG is set.
	Seed int64
	// RNG overrides the seeded RNG.
	RNG *rand.Rand
	// Workers bounds SSSP parallelism; <=0 means GOMAXPROCS.
	Workers int
	// Parallelism bounds intra-traversal parallelism: how many cores one
	// BFS may split its frontiers across (sssp's parallel level-synchronous
	// kernels). 0 follows the process default, <=1 runs each traversal
	// serial. Orthogonal to Workers, which spreads sources; total
	// concurrency is roughly their product. Results, budget charges, and
	// traversal-work metrics are identical at every setting — only
	// wall-clock changes.
	Parallelism int
	// Engine selects the BFS kernel for the extraction phase's shortest
	// paths (ablations pin one); the zero value Auto picks the fastest.
	// Ignored by TopKSources, whose sources carry their own kernels.
	Engine sssp.Engine
	// PairedMode selects how extraction produces the G_t2 rows: the zero
	// value PairedFull traverses G_t2 per candidate (the paper's literal
	// algorithm); dist.PairedIncremental derives them from the G_t1 rows via
	// the snapshot edge delta, silently falling back to full when the
	// sources don't support it. The budget charge is identical in both modes
	// (2 units per uncached candidate — the meter counts rows produced, not
	// traversal work), so Table-1 accounting never depends on this knob.
	PairedMode dist.PairedMode
	// Prune controls the Δ-threshold pruned extraction. The zero value
	// PruneAuto prunes top-K queries (output stays bit-identical; only
	// traversal work and wall time drop) and never prunes MinDelta queries,
	// which must return every qualifying pair. PruneOff forces full
	// traversals everywhere — the differential baseline.
	Prune PruneMode
	// PruneSeed pre-loads the kth-Δ threshold. SOUND ONLY when it is a
	// lower bound on this query's final kth Δ (e.g. the final kth Δ of a
	// previous run of the identical query); anything larger silently drops
	// pairs. Leave 0 unless you can prove that.
	PruneSeed int32
	// Warm, when non-nil, is a per-snapshot-pair warm cache: selection
	// results are memoized (with their budget charges replayed on hits) and
	// completed top-K queries seed the prune threshold of identical later
	// queries. The caller must scope one Warm to one snapshot pair — the
	// serve layer keeps one per epoch window. Ignored when RNG is set (an
	// externally-advanced RNG makes the query shape unkeyable).
	Warm *candidates.Warm
	// Meter overrides the default budget meter of 2M SSSPs. Useful for
	// tests; normal callers leave it nil.
	Meter *budget.Meter
	// Trace, when non-nil, records Algorithm 1's phases (selection,
	// extraction, sort/cut) as spans and attributes every budget charge to
	// the phase executing when it was spent. Export with Trace.WriteChrome
	// or Trace.WriteTree; tracing off (nil) costs nothing.
	Trace *obs.Trace
}

// Result is the outcome of a budgeted top-k run.
type Result struct {
	// Pairs holds the discovered converging pairs in canonical order
	// (Delta descending, then node IDs), cut to K if K was set.
	Pairs []topk.Pair
	// Candidates is the endpoint set M the selector produced.
	Candidates []int
	// Budget reports the SSSP spending split by phase (Table 1).
	Budget budget.Report
	// SelectorName records which algorithm generated the candidates.
	SelectorName string
	// Phases holds the query's wall-clock phase breakdown in nanoseconds —
	// observational only (never part of result comparisons); serve layers
	// re-observe it into per-tenant latency histograms.
	Phases obs.PhaseNanos
	// Pruned reports what the Δ-threshold pruning did. Observational only:
	// worker timing changes how early the threshold tightens, so skip
	// counts vary run to run while Pairs/Candidates/Budget never do.
	Pruned PruneStats
}

// PruneMode controls the Δ-threshold pruned extraction (Options.Prune).
type PruneMode int

const (
	// PruneAuto prunes exactly the queries where it is sound: top-K
	// queries, where pairs provably below the kth-best Δ cannot change the
	// output. MinDelta queries are never pruned.
	PruneAuto PruneMode = iota
	// PruneOff disables pruning everywhere.
	PruneOff
)

// PruneStats summarizes the pruned extraction of one query.
type PruneStats struct {
	// Enabled reports whether extraction ran with the Δ-threshold.
	Enabled bool
	// CandidatesSkipped counts candidates whose landmark upper bound proved
	// no pair of theirs can reach the top-k; their rows were charged but
	// never traversed.
	CandidatesSkipped int
	// FinalThreshold is the kth-Δ threshold when extraction finished.
	FinalThreshold int32
}

// CandidateSet returns the candidate endpoints as a set, the form the
// coverage metric consumes.
func (r *Result) CandidateSet() map[int32]bool { return topk.NodeSet(r.Candidates) }

// Coverage returns the fraction of truePairs recoverable from this run's
// candidate set — the paper's evaluation metric.
func (r *Result) Coverage(truePairs []topk.Pair) float64 {
	return topk.Coverage(truePairs, r.CandidateSet())
}

// ErrNoSelector reports Options without a selector.
var ErrNoSelector = errors.New("core: no selector configured")

// TopK runs Algorithm 1 on the unweighted snapshot pair with BFS distance
// engines. It is the one-shot form: a throwaway Session per call. Long-lived
// callers (services, monitors) build a Session once and query it repeatedly;
// both paths produce bit-identical results by construction.
func TopK(pair graph.SnapshotPair, opts Options) (*Result, error) {
	s, err := NewSession(pair, SessionConfig{Engine: opts.Engine, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	return s.TopK(context.Background(), opts)
}

// TopKSources runs Algorithm 1 over an arbitrary pair of distance sources —
// the single implementation behind both the unweighted (BFS) and weighted
// (Dijkstra) pipelines. Structural selectors that need raw adjacency (e.g.
// BetDiff, EmbedSum) work only when the sources unwrap to unweighted graphs.
func TopKSources(src dist.Pair, opts Options) (*Result, error) {
	s, err := NewSessionSources(src)
	if err != nil {
		return nil, err
	}
	return s.TopK(context.Background(), opts)
}

// Exact computes the true top-k converging pairs without budget constraints
// (the quadratic baseline the paper compares against). It is a thin wrapper
// over the topk package, exposed here so the public API offers both the
// budgeted algorithm and the exact one.
func Exact(pair graph.SnapshotPair, k int, workers int) ([]topk.Pair, error) {
	gt, err := topk.Compute(pair, topk.Options{Workers: workers, Slack: 1 << 30})
	if err != nil {
		return nil, err
	}
	if k > len(gt.Pairs) {
		k = len(gt.Pairs)
	}
	return gt.Pairs[:k], nil
}

// SortCandidates orders a candidate slice ascending; a display helper.
func SortCandidates(cands []int) { sort.Ints(cands) }
