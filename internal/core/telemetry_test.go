package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/obs"
)

// TestPhaseHistogramsMatchSpanCounts ties the two latency views together:
// every phase span a traced run emits must land exactly one observation in
// the matching core.phase_ns histogram, so a /metrics scrape and a trace
// file agree on how many times each phase ran.
func TestPhaseHistogramsMatchSpanCounts(t *testing.T) {
	sp := growingPair(t, 120, 33)
	tr := obs.New("telemetry-test")
	before := PhaseLatencies()
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, err := TopK(sp, Options{
			Selector: candidates.MMSD(), M: 15, L: 4, K: 5, Seed: int64(i), Trace: tr,
		}); err != nil {
			t.Fatal(err)
		}
	}
	after := PhaseLatencies()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export: %v", err)
	}
	spanCount := map[string]int64{}
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" {
			spanCount[e.Name]++
		}
	}

	for phase, span := range map[string]string{
		"selection":  "selection",
		"extraction": "extraction",
		"sort-cut":   "sort-cut",
		"total":      "algorithm1",
	} {
		d := after[phase].Sub(before[phase])
		if d.Count != runs {
			t.Errorf("phase %s histogram _count delta = %d, want %d", phase, d.Count, runs)
		}
		if spanCount[span] != d.Count {
			t.Errorf("phase %s: %d spans traced but %d histogram observations", phase, spanCount[span], d.Count)
		}
		if d.Count > 0 && d.Sum <= 0 {
			t.Errorf("phase %s observed %d samples with non-positive total %d ns", phase, d.Count, d.Sum)
		}
	}
}

// TestFlightRecordMatchesBudgetReport: the newest flight record of a run
// must carry the meter's report bit-for-bit, plus the outcome sizes.
func TestFlightRecordMatchesBudgetReport(t *testing.T) {
	sp := growingPair(t, 150, 7)
	meter := budget.NewMeter(20)
	totalBefore := obs.Flight.Total()
	res, err := TopK(sp, Options{
		Selector: candidates.MMSD(), M: 20, L: 5, K: 10, Meter: meter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Flight.Total() != totalBefore+1 {
		t.Fatalf("run appended %d flight records, want 1", obs.Flight.Total()-totalBefore)
	}
	rec := obs.Flight.Last(1)[0]
	if rec.Kind != "topk" {
		t.Errorf("Kind = %q, want topk", rec.Kind)
	}
	rep := meter.Report()
	want := obs.BudgetSplit{Limit: rep.Limit, CandidateGen: rep.CandidateGen, TopK: rep.TopK}
	if rec.Budget != want {
		t.Errorf("flight budget %+v != meter report %+v", rec.Budget, want)
	}
	if rec.Budget != (obs.BudgetSplit{Limit: res.Budget.Limit, CandidateGen: res.Budget.CandidateGen, TopK: res.Budget.TopK}) {
		t.Errorf("flight budget %+v != result budget %+v", rec.Budget, res.Budget)
	}
	if rec.Candidates != len(res.Candidates) || rec.Pairs != len(res.Pairs) {
		t.Errorf("flight sizes %d/%d, result %d/%d", rec.Candidates, rec.Pairs, len(res.Candidates), len(res.Pairs))
	}
	if rec.Outcome != "ok" {
		t.Errorf("Outcome = %q, want ok", rec.Outcome)
	}
	if !strings.Contains(rec.Fingerprint, "selector=MMSD") || !strings.Contains(rec.Fingerprint, "m=20") {
		t.Errorf("fingerprint %q missing selector/m", rec.Fingerprint)
	}
	if rec.Phases.Total <= 0 {
		t.Errorf("Phases.Total = %d, want > 0", rec.Phases.Total)
	}
	if sum := rec.Phases.Selection + rec.Phases.Extraction + rec.Phases.SortCut; sum > rec.Phases.Total {
		t.Errorf("phase sum %d exceeds total %d", sum, rec.Phases.Total)
	}
	if rec.Kernels.Calls <= 0 || rec.Kernels.Edges <= 0 {
		t.Errorf("kernel delta empty: %+v (MMSD runs BFS)", rec.Kernels)
	}
	if rec.UnixNano == 0 || rec.Seq != totalBefore {
		t.Errorf("record not stamped: seq=%d unixnano=%d", rec.Seq, rec.UnixNano)
	}
}

// TestFlightRecordsFailedRun: a run that dies mid-flight (budget exhaustion
// in extraction) still leaves a record, with the error text as the outcome.
func TestFlightRecordsFailedRun(t *testing.T) {
	sp := growingPair(t, 80, 9)
	totalBefore := obs.Flight.Total()
	_, err := TopK(sp, Options{
		Selector: candidates.Degree(), M: 10, K: 5,
		Meter: budget.NewMeter(1), // too small for extraction's 2-per-candidate charge
	})
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
	if obs.Flight.Total() != totalBefore+1 {
		t.Fatalf("failed run appended %d records, want 1", obs.Flight.Total()-totalBefore)
	}
	rec := obs.Flight.Last(1)[0]
	if rec.Outcome == "ok" || !strings.Contains(rec.Outcome, "extraction") {
		t.Errorf("Outcome = %q, want the extraction budget error", rec.Outcome)
	}
	if rec.Pairs != 0 || rec.Candidates != 0 {
		t.Errorf("failed run reports sizes %d/%d, want 0/0", rec.Candidates, rec.Pairs)
	}
}
