package core

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/candidates"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sssp"
)

// disconnectedPair builds a snapshot pair whose stream grows `comps`
// independent components — no edge ever bridges them, so every distance row
// carries unreachable entries and the pruned kernels' histogram setup must
// exclude them exactly like the full kernels' emit loop does.
func disconnectedPair(t testing.TB, n, comps int, seed int64) graph.SnapshotPair {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var stream []graph.TimedEdge
	for i := comps; i < n; i++ {
		c := i % comps
		// Attach to an earlier node of the same component (component c holds
		// nodes c, c+comps, c+2*comps, ...).
		prev := rng.Intn(i/comps) * comps
		stream = append(stream, graph.TimedEdge{U: i, V: prev + c, Time: int64(len(stream))})
	}
	ev, err := graph.NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ev.Pair(0.7, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// requireSameResult asserts the full and pruned runs of one query agree on
// everything the algorithm defines: pairs (bit-equal, post sort-cut),
// candidates, and the budget report.
func requireSameResult(t *testing.T, label string, full, pruned *Result) {
	t.Helper()
	if !reflect.DeepEqual(full.Pairs, pruned.Pairs) {
		t.Errorf("%s: pairs differ:\nfull   %v\npruned %v", label, full.Pairs, pruned.Pairs)
	}
	if !reflect.DeepEqual(full.Candidates, pruned.Candidates) {
		t.Errorf("%s: candidates differ:\nfull   %v\npruned %v", label, full.Candidates, pruned.Candidates)
	}
	if full.Budget != pruned.Budget {
		t.Errorf("%s: budget reports differ: full %+v, pruned %+v", label, full.Budget, pruned.Budget)
	}
}

// TestPrunedEquivalentFuzz is the pruning differential: across engines,
// paired modes, parallelism settings, selectors (landmark-using and not),
// connected and disconnected random graphs, the pruned extraction must be
// bit-identical to the full one. Small k on dense-delta graphs makes ties at
// the kth boundary routine, so the strict-inequality cut discipline (ties at
// the threshold are kept) is exercised throughout.
func TestPrunedEquivalentFuzz(t *testing.T) {
	pairs := []struct {
		name string
		sp   graph.SnapshotPair
	}{
		{"growing", growingPair(t, 150, 11)},
		{"growing2", growingPair(t, 200, 23)},
		{"disconnected", disconnectedPair(t, 160, 3, 5)},
	}
	for _, engName := range sssp.EngineNames() {
		eng, err := sssp.ParseEngine(engName)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []dist.PairedMode{dist.PairedFull, dist.PairedIncremental} {
			for _, par := range []int{1, 2} {
				for _, g := range pairs {
					for _, selName := range []string{"MMSD", "SumDiff", "Random"} {
						sel, err := candidates.ByName(selName)
						if err != nil {
							t.Fatal(err)
						}
						for _, k := range []int{3, 10} {
							label := g.name + "/" + engName + "/" + mode.String() + "/" + selName
							opts := Options{
								Selector: sel, M: 25, L: 5, K: k, Seed: 7,
								Workers: 3, Parallelism: par, Engine: eng, PairedMode: mode,
							}
							opts.Prune = PruneOff
							full, err := TopK(g.sp, opts)
							if err != nil {
								t.Fatalf("%s full: %v", label, err)
							}
							opts.Prune = PruneAuto
							pruned, err := TopK(g.sp, opts)
							if err != nil {
								t.Fatalf("%s pruned: %v", label, err)
							}
							if !pruned.Pruned.Enabled {
								t.Fatalf("%s: PruneAuto did not prune a top-k query", label)
							}
							requireSameResult(t, label, full, pruned)
						}
					}
				}
			}
		}
	}
}

// TestPruneAutoSkipsMinDelta: a δ-threshold query must return every
// qualifying pair, so PruneAuto must leave it unpruned (and the result must
// of course match a PruneOff run).
func TestPruneAutoSkipsMinDelta(t *testing.T) {
	sp := growingPair(t, 150, 11)
	opts := Options{Selector: candidates.MMSD(), M: 20, L: 5, MinDelta: 2, Seed: 7, Workers: 2}
	auto, err := TopK(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Pruned.Enabled {
		t.Fatal("PruneAuto pruned a MinDelta query")
	}
	opts.Prune = PruneOff
	off, err := TopK(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "mindelta", auto, off)
}

// TestPruneSeedSound: seeding the threshold with the true kth Δ of the same
// query (the strongest seed the warm cache can ever supply) must not change
// the result.
func TestPruneSeedSound(t *testing.T) {
	sp := growingPair(t, 200, 3)
	opts := Options{Selector: candidates.MMSD(), M: 25, L: 5, K: 10, Seed: 7, Workers: 2}
	opts.Prune = PruneOff
	full, err := TopK(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Pairs) == 0 {
		t.Skip("no pairs on this graph")
	}
	opts.Prune = PruneAuto
	opts.PruneSeed = full.Pairs[len(full.Pairs)-1].Delta
	seeded, err := TopK(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "seeded", full, seeded)
}

// TestWarmCacheIdentical: repeated queries on one session with a shared warm
// cache must return bit-identical results (pairs, candidates, budget) while
// doing strictly less traversal work on the repeat — the selection is
// replayed from the memo and the kth-Δ seed starts the threshold tight.
func TestWarmCacheIdentical(t *testing.T) {
	sp := growingPair(t, 200, 17)
	sess, err := NewSession(sp, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	warm := candidates.NewWarm()
	opts := Options{Selector: candidates.MMSD(), M: 25, L: 5, K: 10, Seed: 7, Workers: 2, Warm: warm}

	before := sssp.SnapshotMetrics()
	cold, err := sess.TopK(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	coldWork := sssp.SnapshotMetrics().Sub(before).Total()

	before = sssp.SnapshotMetrics()
	warmRes, err := sess.TopK(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	warmWork := sssp.SnapshotMetrics().Sub(before).Total()

	requireSameResult(t, "warm", cold, warmRes)
	if warmWork.Edges >= coldWork.Edges {
		t.Errorf("warm query scanned %d edges, cold scanned %d — expected a reduction",
			warmWork.Edges, coldWork.Edges)
	}
	// The same query without the warm cache must also agree — warm reuse may
	// never steer the result.
	opts.Warm = nil
	plain, err := sess.TopK(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "warm-vs-plain", cold, plain)
}

// TestPrunedTraceConsistency pins the observability contract of pruning:
// skipped candidates were still charged, so the trace's charge-based
// per-phase SSSP attribution and the budget report stay exactly what the
// full run produces — the savings appear only in the kernel machine-work
// counters and the prune/pruned-BFS series on /metrics.
func TestPrunedTraceConsistency(t *testing.T) {
	sp := growingPair(t, 400, 9)
	base := Options{Selector: candidates.MMSD(), M: 30, L: 5, K: 3, Seed: 7, Workers: 2}

	opts := base
	opts.Prune = PruneOff
	fullBefore := sssp.SnapshotMetrics()
	full, err := TopK(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	fullWork := sssp.SnapshotMetrics().Sub(fullBefore).Total()
	if len(full.Pairs) < base.K {
		t.Skipf("only %d pairs on this graph", len(full.Pairs))
	}

	// Seed the threshold with the true kth Δ so candidate skips are certain
	// from the first dequeue, then check every accounting surface.
	tr := obs.New("pruned")
	opts = base
	opts.Prune = PruneAuto
	opts.PruneSeed = full.Pairs[base.K-1].Delta
	opts.Trace = tr
	prunedBefore := sssp.SnapshotMetrics()
	pruned, err := TopK(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	prunedWork := sssp.SnapshotMetrics().Sub(prunedBefore).Total()

	requireSameResult(t, "traced", full, pruned)
	byPhase := tr.SSSPByPhase()
	if got := byPhase["candidate-generation"]; got != pruned.Budget.CandidateGen {
		t.Errorf("traced candidate-generation = %d, budget report = %d", got, pruned.Budget.CandidateGen)
	}
	if got := byPhase["top-k-extraction"]; got != pruned.Budget.TopK {
		t.Errorf("traced top-k-extraction = %d, budget report = %d", got, pruned.Budget.TopK)
	}
	if prunedWork.Edges >= fullWork.Edges {
		t.Errorf("pruned run scanned %d edges, full scanned %d — expected a reduction",
			prunedWork.Edges, fullWork.Edges)
	}

	// The flight recorder's newest record is the pruned run: its candidate
	// count must include the skipped ones (they were charged and remain part
	// of Result.Candidates) and the pruned split must be populated.
	recs := obs.Flight.Last(1)
	if len(recs) != 1 {
		t.Fatal("flight recorder empty")
	}
	rec := recs[0]
	if rec.PrunedCandidates != pruned.Pruned.CandidatesSkipped {
		t.Errorf("flight pruned_candidates = %d, result reports %d",
			rec.PrunedCandidates, pruned.Pruned.CandidatesSkipped)
	}
	if rec.Candidates != len(pruned.Candidates) {
		t.Errorf("flight candidates = %d, want %d (skips must not shrink the candidate set)",
			rec.Candidates, len(pruned.Candidates))
	}
	if pruned.Pruned.CandidatesSkipped > 0 && rec.Kernels.Calls+rec.Kernels.PrunedBFSCalls >= fullWork.Calls {
		t.Errorf("pruned run ran %d+%d traversals, full ran %d — skipped candidates still traversed?",
			rec.Kernels.Calls, rec.Kernels.PrunedBFSCalls, fullWork.Calls)
	}

	// The new counter families must be on /metrics.
	var buf bytes.Buffer
	if err := obs.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"prune.candidates_skipped", "prune.threshold_raises",
		"sssp.pruned_cutoffs", "sssp.pruned_edges", "sssp.prunedbfs_calls",
	} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("/metrics is missing %s", name)
		}
	}
}

// TestKthBoundaryTies pins the tie discipline on a crafted graph where many
// pairs share the kth Δ: the pruned run must keep the same canonical winners
// as the full run for every k around the tie plateau.
func TestKthBoundaryTies(t *testing.T) {
	// A star that gains spokes-to-spokes shortcuts: every shortcut pair
	// converges by the same Δ (2 -> 1), giving a wide tie plateau.
	var stream []graph.TimedEdge
	const spokes = 40
	for i := 1; i <= spokes; i++ {
		stream = append(stream, graph.TimedEdge{U: 0, V: i, Time: int64(len(stream))})
	}
	for i := 1; i+1 <= spokes; i += 2 {
		stream = append(stream, graph.TimedEdge{U: i, V: i + 1, Time: int64(len(stream))})
	}
	ev, err := graph.NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ev.Pair(float64(spokes)/float64(len(stream)), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 5, 10, 19} {
		opts := Options{Selector: candidates.MMSD(), M: 20, L: 5, K: k, Seed: 1, Workers: 2}
		opts.Prune = PruneOff
		full, err := TopK(sp, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Prune = PruneAuto
		pruned, err := TopK(sp, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "ties", full, pruned)
	}
}
