package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/prune"
	"repro/internal/sssp"
	"repro/internal/topk"
)

// Session is the reusable form of Algorithm 1 over one snapshot pair:
// distance engines, paired engines (with their precomputed edge deltas), and
// per-worker extraction scratch are prepared once and shared across queries,
// so a service answering many queries over the same epoch window pays setup
// cost once instead of per call. Results are bit-identical to the one-shot
// TopK path — the session caches machine state (visible in kernel metrics
// and allocation profiles), never anything that feeds the algorithm's
// output.
//
// A Session is safe for concurrent TopK calls: queries share the cached
// paired engines read-only and draw per-worker scratch from a pool.
type Session struct {
	src  dist.Pair
	pair graph.SnapshotPair // structural view; zero for metric-only sources

	mu    sync.Mutex
	pengs map[dist.PairedMode]*enginePool
}

// SessionConfig fixes the machine-level knobs a session's engines are built
// with. Per-query knobs (selector, budget, ranking) stay in Options.
type SessionConfig struct {
	// Engine selects the BFS kernel (Auto picks the fastest per call).
	Engine sssp.Engine
	// Parallelism bounds intra-traversal parallelism (see Options).
	Parallelism int
}

// enginePool is one paired engine plus the pool of per-worker extraction
// state bound to it. The engine is built once (incremental mode computes the
// snapshot edge delta there); workers of any query on this session check
// state out and back in.
type enginePool struct {
	eng  dist.PairedEngine
	pool sync.Pool // *workerState
}

// workerState is one extraction worker's scratch: the distance-row buffers
// and the engine-bound paired session (which owns traversal scratch).
type workerState struct {
	d1buf, d2buf []int32
	ps           dist.PairedSession
	// pps is ps seen through the Δ-threshold capability (ps itself when it
	// implements it, a full-computation fallback otherwise); pruned
	// extraction routes row computation through it.
	pps dist.PrunedPairSession
	// sess1 serves the rare only-d2-cached case; created lazily because most
	// queries never hit it.
	sess1 dist.Session
}

// NewSession prepares a reusable session over an unweighted snapshot pair
// with BFS distance engines.
func NewSession(pair graph.SnapshotPair, cfg SessionConfig) (*Session, error) {
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	return newSession(dist.BFSPairPar(pair, cfg.Engine, cfg.Parallelism), pair), nil
}

// NewSessionSources prepares a session over arbitrary distance sources (the
// weighted pipeline, or batching-wrapped sources from the serve layer).
// Structural selectors work when the sources unwrap to unweighted graphs.
func NewSessionSources(src dist.Pair) (*Session, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	var pair graph.SnapshotPair
	if g1, ok := dist.UnweightedGraph(src.S1); ok {
		if g2, ok := dist.UnweightedGraph(src.S2); ok {
			pair = graph.SnapshotPair{G1: g1, G2: g2}
		}
	}
	return newSession(src, pair), nil
}

func newSession(src dist.Pair, pair graph.SnapshotPair) *Session {
	return &Session{src: src, pair: pair, pengs: make(map[dist.PairedMode]*enginePool)}
}

// Sources returns the session's distance-source pair.
func (s *Session) Sources() dist.Pair { return s.src }

// NumNodes returns the shared node-universe size.
func (s *Session) NumNodes() int { return s.src.NumNodes() }

// pairedEngine returns the cached engine pool for mode, building it on first
// use. Incremental engines compute the edge delta exactly once per session.
func (s *Session) pairedEngine(mode dist.PairedMode) *enginePool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ep, ok := s.pengs[mode]; ok {
		return ep
	}
	ep := &enginePool{eng: dist.NewPairedEngine(s.src, mode)}
	s.pengs[mode] = ep
	return ep
}

// checkout draws per-worker extraction state from the pool (allocating on
// first use), bound to the pool's engine.
func (ep *enginePool) checkout(n int) *workerState {
	if st, _ := ep.pool.Get().(*workerState); st != nil {
		return st
	}
	st := &workerState{
		d1buf: make([]int32, n),
		d2buf: make([]int32, n),
		ps:    ep.eng.NewSession(),
	}
	st.pps = dist.AsPruned(st.ps)
	return st
}

// TopK runs one query of Algorithm 1 on the session. It is the former
// package-level run body, with two session-era additions: prepared state is
// reused across calls, and ctx cancels the query between phases and between
// extraction candidates (rows in flight finish whole; pooled scratch stays
// reusable). Every SSSP is charged to opts.Meter (or a fresh 2M meter when
// nil) before the traversal runs.
func (s *Session) TopK(ctx context.Context, opts Options) (result *Result, err error) {
	if opts.Selector == nil {
		return nil, ErrNoSelector
	}
	if (opts.K > 0) == (opts.MinDelta > 0) {
		return nil, fmt.Errorf("core: exactly one of K (%d) and MinDelta (%d) must be positive",
			opts.K, opts.MinDelta)
	}
	if opts.M <= 0 {
		return nil, fmt.Errorf("core: non-positive endpoint budget m=%d", opts.M)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rng := opts.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	meter := opts.Meter
	if meter == nil {
		meter = budget.NewMeter(opts.M)
	}
	// Telemetry brackets the whole query (every path from here records one
	// flight entry and one total-phase histogram sample).
	//convlint:nondet phase latency is observational, not part of results
	runStart := time.Now()
	kernelsBefore := sssp.SnapshotMetrics()
	prunedBefore := sssp.SnapshotPrunedWork()
	var phases obs.PhaseNanos
	defer func() { recordRun(opts, meter, kernelsBefore, prunedBefore, runStart, phases, result, err) }()
	tr := opts.Trace
	// warmKey is the query's result-determining selection shape; empty when
	// warm caching is off or unkeyable (external RNG). The same key (plus k)
	// also scopes the kth-Δ seed.
	warmKey := ""
	if opts.Warm != nil && opts.RNG == nil {
		warmKey = fmt.Sprintf("%s|m%d|l%d|s%d", opts.Selector.Name(), opts.M, opts.L, opts.Seed)
	}
	var warmCharges []candidates.WarmCharge
	recordWarm := false
	if tr != nil || warmKey != "" {
		// Every successful charge lands on the span open at that moment, so
		// the trace's per-phase totals reproduce the meter's Report exactly.
		// The same hook records a cold selection's charges for warm replay
		// (recordWarm is toggled around the selector call only, on this
		// goroutine — extraction charges happen after it is off again).
		meter.SetObserver(func(p budget.Phase, n int) {
			if tr != nil {
				tr.AddSSSP(p.String(), n)
			}
			if recordWarm {
				warmCharges = append(warmCharges, candidates.WarmCharge{Phase: p, N: n})
			}
		})
		defer meter.SetObserver(nil)
	}
	run := tr.StartSpan("algorithm1",
		obs.Str("selector", opts.Selector.Name()),
		obs.Int("m", opts.M), obs.Int("k", opts.K),
		obs.Int("nodes", s.src.NumNodes()))
	defer run.End()
	cctx := &candidates.Context{
		Pair:    s.pair,
		S1:      s.src.S1,
		S2:      s.src.S2,
		M:       opts.M,
		L:       opts.L,
		RNG:     rng,
		Meter:   meter,
		Workers: opts.Workers,
		Ctx:     ctx,
	}
	//convlint:nondet phase latency is observational, not part of results
	selStart := time.Now()
	selSpan := tr.StartSpan("selection", obs.Str("selector", opts.Selector.Name()))
	var cands []int
	var selErr error
	warmSel := false
	if warmKey != "" {
		if wcands, charges, ok := opts.Warm.LookupSelection(warmKey, cctx); ok {
			// Replay the cold run's charges so the meter (and the trace's
			// per-phase attribution) report the identical spending — a warm
			// hit changes machine work, never cost.
			warmSel = true
			cands = wcands
			for _, c := range charges {
				if selErr = meter.Charge(c.Phase, c.N); selErr != nil {
					break
				}
			}
		}
	}
	if !warmSel {
		recordWarm = warmKey != ""
		cands, selErr = opts.Selector.Select(cctx)
		recordWarm = false
	}
	selSpan.Set(obs.Int("candidates", len(cands)), obs.Int("warm-hit", boolInt(warmSel)),
		obs.Int("d1-rows-cached", len(cctx.D1Rows)), obs.Int("d2-rows-cached", len(cctx.D2Rows)))
	selSpan.End()
	//convlint:nondet phase latency is observational, not part of results
	phases.Selection = time.Since(selStart).Nanoseconds()
	selectionNS.Observe(phases.Selection)
	if selErr != nil {
		return nil, fmt.Errorf("core: candidate generation (%s): %w", opts.Selector.Name(), selErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(cands) > opts.M {
		return nil, fmt.Errorf("core: selector %s returned %d candidates for budget m=%d",
			opts.Selector.Name(), len(cands), opts.M)
	}
	if !warmSel && warmKey != "" {
		// Memoize only selections that validated cleanly; LookupSelection
		// and StoreSelection both copy, so the dedupe below (which reuses
		// the cands backing array) can never corrupt the cache.
		opts.Warm.StoreSelection(warmKey, cands, cctx, warmCharges)
	}
	// Defensive dedupe: a duplicated candidate would double-charge the
	// budget and double-count its pairs.
	seen := make(map[int]bool, len(cands))
	uniq := cands[:0]
	for _, u := range cands {
		if u < 0 || u >= s.src.NumNodes() {
			return nil, fmt.Errorf("core: selector %s returned out-of-range candidate %d",
				opts.Selector.Name(), u)
		}
		if !seen[u] {
			seen[u] = true
			uniq = append(uniq, u)
		}
	}
	cands = uniq
	pairs, pstats, err := s.extractPairs(ctx, cctx, cands, opts, meter, &phases, warmKey)
	if err != nil {
		return nil, err
	}
	if warmKey != "" && opts.K > 0 && len(pairs) == opts.K {
		// A full-length top-k result pins its kth Δ — a sound prune seed for
		// the identical query on this window (it recomputes the same pairs).
		opts.Warm.StoreKthDelta(warmKey, opts.K, pairs[opts.K-1].Delta)
	}
	return &Result{
		Pairs:        pairs,
		Candidates:   cands,
		Budget:       meter.Report(),
		SelectorName: opts.Selector.Name(),
		Phases:       phases,
		Pruned:       pstats,
	}, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// extractPairs implements lines 2-5 of Algorithm 1: compute D1 and D2 rows
// for the candidate set (reusing rows the selector cached), form the
// pairwise deltas, and keep the top pairs.
//
// For top-K queries (unless Options.Prune says otherwise) extraction runs
// Δ-threshold pruned: a shared monotone threshold T tracks the kth-best Δ
// offered so far, second-snapshot traversals stop once no undiscovered node
// can still yield delta >= T (sssp.PrunedSecondBFS / dynsssp.ApplyAllBounded),
// and candidates whose landmark upper bound proves every one of their pairs
// is strictly below T are skipped whole. All of it is output-invariant: only
// pairs with delta strictly below T <= the final kth Δ are ever dropped, and
// those cannot survive the sort-cut. Budget charges are identical — the
// charge above counts rows produced, and a skipped candidate's rows were
// still charged.
func (s *Session) extractPairs(ctx context.Context, cctx *candidates.Context, cands []int, opts Options, meter *budget.Meter, phases *obs.PhaseNanos, warmKey string) ([]topk.Pair, PruneStats, error) {
	if len(cands) == 0 {
		return nil, PruneStats{}, nil
	}
	n := s.src.NumNodes()
	tr := opts.Trace

	// Charge exactly the SSSP computations the caches cannot cover.
	toCharge := 0
	for _, u := range cands {
		if _, ok := cctx.D1Rows[u]; !ok {
			toCharge++
		}
		if _, ok := cctx.D2Rows[u]; !ok {
			toCharge++
		}
	}
	// The paired engine is cached on the session: first query in each mode
	// builds it (incremental mode computes the snapshot edge delta there);
	// later queries share it read-only.
	ep := s.pairedEngine(opts.PairedMode)
	//convlint:nondet phase latency is observational, not part of results
	extStart := time.Now()
	extSpan := tr.StartSpan("extraction",
		obs.Int("candidates", len(cands)), obs.Int("cache-misses", toCharge),
		obs.Str("paired", ep.eng.Mode().String()))
	if err := meter.Charge(budget.PhaseTopK, toCharge); err != nil {
		extSpan.End()
		//convlint:nondet phase latency is observational, not part of results
		phases.Extraction = time.Since(extStart).Nanoseconds()
		extractionNS.Observe(phases.Extraction)
		return nil, PruneStats{}, fmt.Errorf("core: extraction phase: %w", err)
	}

	inM := make(map[int]bool, len(cands))
	for _, u := range cands {
		inM[u] = true
	}

	floor := opts.MinDelta
	if floor <= 0 {
		floor = 1
	}

	// Δ-threshold setup. Pruning is sound only for top-K (a MinDelta query
	// must return every qualifying pair, so PruneAuto never prunes it).
	pruneOn := opts.K > 0 && opts.Prune != PruneOff
	var th *prune.Threshold
	var boundFn func() int32
	var ubounds []int32
	//convlint:shared lock-free skip tally; workers only Add, read after Wait
	var skipped atomic.Int64
	if pruneOn {
		th = prune.NewThreshold(opts.K)
		if opts.PruneSeed > 0 {
			th.Seed(opts.PruneSeed)
		}
		if warmKey != "" {
			if d, ok := opts.Warm.KthDelta(warmKey, opts.K); ok {
				// The final kth Δ of the identical prior query lower-bounds
				// this one's (same pair set), so seeding it is sound.
				th.Seed(d)
			}
		}
		boundFn = th.Load
		ubounds = landmarkBounds(cctx, cands)
	}
	// Processing order: largest upper bound first, so the candidates most
	// likely to hold top pairs tighten the threshold before the hopeless tail
	// is even dequeued. The order permutation leaves cands itself untouched —
	// Result.Candidates must stay in selector order.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	if ubounds != nil {
		sort.SliceStable(order, func(a, b int) bool { return ubounds[order[a]] > ubounds[order[b]] })
	}

	workers := sssp.ClampWorkers(opts.Workers, len(cands))
	var mu sync.Mutex
	var all []topk.Pair
	next := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// The pprof label splits CPU/goroutine profiles by subsystem, so an
		// extraction-heavy run shows up as such in /debug/pprof.
		go pprof.Do(context.Background(), pprof.Labels("subsystem", "core-extract"),
			func(context.Context) {
				defer wg.Done()
				st := ep.checkout(n)
				defer ep.pool.Put(st)
				var local []topk.Pair
				for i := range next {
					if ctx.Err() != nil {
						continue // drain without traversing
					}
					if ubounds != nil {
						// Whole-candidate skip: the landmark bound caps every
						// pair involving this candidate (including pairs it
						// would have found for larger candidates), so a bound
						// strictly below max(1, T) proves none can reach the
						// top-k. Ties at T are kept.
						t := th.Load()
						if t < 1 {
							t = 1
						}
						if ubounds[i] < t {
							skipped.Add(1)
							continue
						}
					}
					u := cands[i]
					d1 := cctx.D1Rows[u]
					d2 := cctx.D2Rows[u]
					switch {
					case d1 == nil && d2 == nil:
						if pruneOn {
							st.pps.DistancesPairBoundedInto(u, st.d1buf, st.d2buf, boundFn)
						} else {
							st.ps.DistancesPairInto(u, st.d1buf, st.d2buf)
						}
						d1, d2 = st.d1buf, st.d2buf
					case d1 != nil && d2 == nil:
						// The selector already paid for the t1 row; derive
						// (or recompute, in full mode) just the t2 row.
						if pruneOn {
							st.pps.DeriveBoundedInto(u, d1, st.d2buf, boundFn)
						} else {
							st.ps.DeriveInto(u, d1, st.d2buf)
						}
						d2 = st.d2buf
					case d1 == nil:
						if st.sess1 == nil {
							st.sess1 = dist.NewSession(s.src.S1)
						}
						st.sess1.DistancesInto(u, st.d1buf)
						d1 = st.d1buf
					}
					for v := 0; v < n; v++ {
						if v == u || (inM[v] && v < u) {
							continue // the pair is found from the smaller candidate
						}
						if d1[v] <= 0 {
							continue
						}
						delta := d1[v] - d2[v]
						if delta < floor {
							continue
						}
						if pruneOn {
							th.Offer(delta)
						}
						p := topk.Pair{U: int32(u), V: int32(v), D1: d1[v], D2: d2[v], Delta: delta}
						if p.U > p.V {
							p.U, p.V = p.V, p.U
						}
						local = append(local, p)
					}
				}
				mu.Lock()
				all = append(all, local...) //convlint:shared per-worker batches merged under mu
				mu.Unlock()
			})
	}
	for _, i := range order {
		next <- i
	}
	close(next)
	wg.Wait()
	pstats := PruneStats{Enabled: pruneOn}
	if pruneOn {
		pstats.CandidatesSkipped = int(skipped.Load())
		pstats.FinalThreshold = th.Load()
		prune.SkipCandidates(pstats.CandidatesSkipped)
	}
	extSpan.Set(obs.Int("raw-pairs", len(all)), obs.Int("pruned-skipped", pstats.CandidatesSkipped))
	extSpan.End()
	//convlint:nondet phase latency is observational, not part of results
	phases.Extraction = time.Since(extStart).Nanoseconds()
	extractionNS.Observe(phases.Extraction)
	if err := ctx.Err(); err != nil {
		return nil, pstats, err
	}

	//convlint:nondet phase latency is observational, not part of results
	cutStart := time.Now()
	cutSpan := tr.StartSpan("sort-cut", obs.Int("pairs", len(all)))
	topk.SortPairs(all)
	if opts.K > 0 && len(all) > opts.K {
		all = all[:opts.K]
	}
	cutSpan.Set(obs.Int("kept", len(all)))
	cutSpan.End()
	//convlint:nondet phase latency is observational, not part of results
	phases.SortCut = time.Since(cutStart).Nanoseconds()
	sortCutNS.Observe(phases.SortCut)
	return all, pstats, nil
}

// landmarkBounds computes, per candidate, a cheap upper bound on the Δ of
// any pair involving it, from the landmark rows a landmark-using selector
// left in the context. For a landmark w and nodes u, v all reachable from w
// in G1 (G1 ⊆ G2 keeps them reachable in G2):
//
//	d1(u,v) <= ld1[w][u] + ld1[w][v]        (triangle in G1)
//	d2(u,v) >= ld2[w][v] - ld2[w][u]        (triangle in G2)
//	Δ(u,v)  <= (ld1[w][u] + ld2[w][u]) + (ld1[w][v] - ld2[w][v])
//	        <= (ld1[w][u] + ld2[w][u]) + maxΛ(w)
//
// where maxΛ(w) = max over reachable v of (ld1[w][v] - ld2[w][v]) — computed
// once per landmark, O(l·n) total, then O(l) per candidate. Pairs whose far
// endpoint is unreachable from w in G1 are either d1-infinite (never emitted)
// or in a component not containing w, in which case u is also unreachable
// from w and w contributes no bound (MaxInt32 = never skip). Returns nil when
// no landmark has both rows cached (non-landmark selectors).
func landmarkBounds(cctx *candidates.Context, cands []int) []int32 {
	if len(cctx.LandmarkNodes) == 0 {
		return nil
	}
	type lmBound struct {
		d1, d2 []int32
		maxL   int32
	}
	var lms []lmBound
	for _, w := range cctx.LandmarkNodes {
		ld1, ld2 := cctx.D1Rows[w], cctx.D2Rows[w]
		if ld1 == nil || ld2 == nil {
			continue
		}
		var maxL int32 // >= 0: v == w contributes 0 - 0
		for v := range ld1 {
			if ld1[v] >= 0 && ld2[v] >= 0 {
				if d := ld1[v] - ld2[v]; d > maxL {
					maxL = d
				}
			}
		}
		lms = append(lms, lmBound{d1: ld1, d2: ld2, maxL: maxL})
	}
	if len(lms) == 0 {
		return nil
	}
	bounds := make([]int32, len(cands))
	for i, u := range cands {
		b := int32(math.MaxInt32)
		for _, lm := range lms {
			if lm.d1[u] < 0 || lm.d2[u] < 0 {
				continue
			}
			if v := lm.d1[u] + lm.d2[u] + lm.maxL; v < b {
				b = v
			}
		}
		bounds[i] = b
	}
	return bounds
}
