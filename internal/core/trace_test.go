package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/candidates"
	"repro/internal/obs"
)

// TestTraceMatchesBudgetReport is the observability layer's core contract:
// every SSSP the meter charges is attributed to a phase span via the budget
// observer, so the trace's per-phase totals and the run's budget report are
// two views of the same spending.
func TestTraceMatchesBudgetReport(t *testing.T) {
	sp := growingPair(t, 150, 21)
	tr := obs.New("core-test")
	res, err := TopK(sp, Options{
		Selector: candidates.MMSD(), M: 20, L: 5, K: 10, Workers: 2, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	byPhase := tr.SSSPByPhase()
	if got := byPhase["candidate-generation"]; got != res.Budget.CandidateGen {
		t.Errorf("traced candidate-generation = %d, budget report = %d", got, res.Budget.CandidateGen)
	}
	if got := byPhase["top-k-extraction"]; got != res.Budget.TopK {
		t.Errorf("traced top-k-extraction = %d, budget report = %d", got, res.Budget.TopK)
	}
	if res.Budget.Total() == 0 {
		t.Fatal("run spent no budget; the test is vacuous")
	}

	// The exported Chrome document must parse and contain all three phase
	// spans of Algorithm 1 under the run span.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
		Metadata struct {
			SSSPByPhase map[string]int `json:"sssp-by-phase"`
		} `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	spans := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" {
			spans[e.Name] = true
		}
	}
	for _, want := range []string{"algorithm1", "selection", "extraction", "sort-cut"} {
		if !spans[want] {
			t.Errorf("Chrome export is missing the %q span (have %v)", want, spans)
		}
	}
	if doc.Metadata.SSSPByPhase["candidate-generation"] != res.Budget.CandidateGen {
		t.Errorf("metadata sssp-by-phase = %v, want candidate-generation=%d",
			doc.Metadata.SSSPByPhase, res.Budget.CandidateGen)
	}
}

// TestTopKNilTrace pins that an untraced run takes the zero-overhead path:
// Options.Trace == nil must not panic anywhere in the pipeline.
func TestTopKNilTrace(t *testing.T) {
	sp := growingPair(t, 60, 22)
	res, err := TopK(sp, Options{Selector: candidates.Degree(), M: 10, K: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("expected some pairs")
	}
}
