package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func lineStream(n int) []TimedEdge {
	stream := make([]TimedEdge, 0, n-1)
	for i := 0; i < n-1; i++ {
		stream = append(stream, TimedEdge{U: i, V: i + 1, Time: int64(i)})
	}
	return stream
}

func TestNewEvolvingValidation(t *testing.T) {
	cases := []struct {
		name   string
		stream []TimedEdge
		errIs  error
	}{
		{"empty", nil, ErrEmptyStream},
		{"negative", []TimedEdge{{U: -1, V: 0}}, ErrNodeRange},
		{"unsorted", []TimedEdge{{U: 0, V: 1, Time: 5}, {U: 1, V: 2, Time: 3}}, ErrUnsorted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewEvolving(tc.stream)
			if !errors.Is(err, tc.errIs) {
				t.Fatalf("err = %v, want %v", err, tc.errIs)
			}
		})
	}
	if _, err := NewEvolving([]TimedEdge{{U: 2, V: 2}}); err == nil {
		t.Error("self-loop stream should be rejected")
	}
	if _, err := NewEvolving([]TimedEdge{{U: 0, V: 1}, {U: 1, V: 0, Time: 1}}); err == nil {
		t.Error("duplicate edge stream should be rejected")
	}
}

func TestSnapshotPrefix(t *testing.T) {
	ev, err := NewEvolving(lineStream(6))
	if err != nil {
		t.Fatal(err)
	}
	if ev.NumNodes() != 6 || ev.NumEdges() != 5 {
		t.Fatalf("got %d nodes %d edges", ev.NumNodes(), ev.NumEdges())
	}
	g := ev.SnapshotPrefix(3)
	if g.NumNodes() != 6 {
		t.Errorf("snapshot universe = %d, want full universe 6", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("snapshot edges = %d, want 3", g.NumEdges())
	}
	if g.Degree(5) != 0 {
		t.Errorf("node 5 should be isolated at prefix 3")
	}
	if full := ev.SnapshotPrefix(999); full.NumEdges() != 5 {
		t.Errorf("clamped prefix edges = %d, want 5", full.NumEdges())
	}
	if none := ev.SnapshotPrefix(-1); none.NumEdges() != 0 {
		t.Errorf("negative prefix edges = %d, want 0", none.NumEdges())
	}
}

func TestSnapshotFractionAndTime(t *testing.T) {
	ev, err := NewEvolving(lineStream(11)) // 10 edges at times 0..9
	if err != nil {
		t.Fatal(err)
	}
	if g := ev.SnapshotFraction(0.8); g.NumEdges() != 8 {
		t.Errorf("80%% snapshot edges = %d, want 8", g.NumEdges())
	}
	if g := ev.SnapshotFraction(2.0); g.NumEdges() != 10 {
		t.Errorf("clamped fraction edges = %d, want 10", g.NumEdges())
	}
	if g := ev.SnapshotFraction(-0.5); g.NumEdges() != 0 {
		t.Errorf("clamped fraction edges = %d, want 0", g.NumEdges())
	}
	if g := ev.SnapshotAtTime(4); g.NumEdges() != 5 {
		t.Errorf("time-4 snapshot edges = %d, want 5 (times 0..4)", g.NumEdges())
	}
	if g := ev.SnapshotAtTime(-1); g.NumEdges() != 0 {
		t.Errorf("time -1 snapshot edges = %d, want 0", g.NumEdges())
	}
}

func TestPairAndValidate(t *testing.T) {
	ev, err := NewEvolving(lineStream(11))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ev.Pair(0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("valid pair rejected: %v", err)
	}
	if _, err := ev.Pair(1.0, 0.8); err == nil {
		t.Error("reversed fractions should be rejected")
	}
	if err := (SnapshotPair{}).Validate(); err == nil {
		t.Error("nil graphs should be rejected")
	}
	// Deletion (G2 missing a G1 edge) must be rejected.
	bad := SnapshotPair{
		G1: FromEdges(3, []Edge{{0, 1}, {1, 2}}),
		G2: FromEdges(3, []Edge{{0, 1}, {0, 2}}),
	}
	if err := bad.Validate(); err == nil {
		t.Error("edge deletion should be rejected")
	}
	mismatch := SnapshotPair{G1: FromEdges(3, nil), G2: FromEdges(4, nil)}
	if err := mismatch.Validate(); err == nil {
		t.Error("differing universes should be rejected")
	}
}

func TestNewEdges(t *testing.T) {
	sp := SnapshotPair{
		G1: FromEdges(4, []Edge{{0, 1}}),
		G2: FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}}),
	}
	got := sp.NewEdges()
	if len(got) != 2 {
		t.Fatalf("NewEdges = %v, want 2 edges", got)
	}
	for _, e := range got {
		if sp.G1.HasEdge(e.U, e.V) {
			t.Errorf("edge %v already in G1", e)
		}
		if !sp.G2.HasEdge(e.U, e.V) {
			t.Errorf("edge %v not in G2", e)
		}
	}
}

// Property: for any random monotone stream and any pair of prefixes
// a <= b, the later snapshot is a supergraph of the earlier one.
// TestNewDeltaMatchesBruteForce checks the merge-walk edge diff against a
// per-edge HasEdge scan on random snapshot pairs, including pairs where g2
// has a larger node universe than g1, and pins the canonical sorted order.
func TestNewDeltaMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n2 := 3 + rng.Intn(40)
		n1 := 1 + rng.Intn(n2)
		seen := map[Edge]struct{}{}
		var all []Edge
		for i := 0; i < 2*n2; i++ {
			u, v := rng.Intn(n2), rng.Intn(n2)
			if u == v {
				continue
			}
			c := Edge{u, v}.Canon()
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			all = append(all, c)
		}
		var inG1 []Edge
		for _, e := range all {
			if e.V < n1 && rng.Intn(2) == 0 { // e.V is the larger endpoint
				inG1 = append(inG1, e)
			}
		}
		g1 := FromEdges(n1, inG1)
		g2 := FromEdges(n2, all)
		got := NewDelta(g1, g2).Edges
		var want []Edge
		for _, e := range g2.Edges() {
			if e.U >= n1 || e.V >= n1 || !g1.HasEdge(e.U, e.V) {
				want = append(want, e)
			}
		}
		if len(got) != len(want) {
			t.Logf("seed %d: %d delta edges, want %d", seed, len(got), len(want))
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed %d: delta[%d] = %v, want %v", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// Identical snapshots: an empty delta.
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}})
	if d := NewDelta(g, g); d.NumEdges() != 0 {
		t.Fatalf("self-delta has %d edges", d.NumEdges())
	}
}

func TestSnapshotMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		seen := map[Edge]struct{}{}
		var stream []TimedEdge
		for i := 0; len(stream) < 2*n && i < 10*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := Edge{u, v}.Canon()
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			stream = append(stream, TimedEdge{U: u, V: v, Time: int64(len(stream))})
		}
		if len(stream) == 0 {
			return true
		}
		ev, err := NewEvolving(stream)
		if err != nil {
			return false
		}
		a := rng.Intn(len(stream) + 1)
		b := a + rng.Intn(len(stream)+1-a)
		ga, gb := ev.SnapshotPrefix(a), ev.SnapshotPrefix(b)
		return gb.IsSupergraphOf(ga) && ga.NumNodes() == gb.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
