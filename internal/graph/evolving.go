package graph

import (
	"errors"
	"fmt"
	"sort"
)

// TimedEdge is an undirected edge annotated with the time slice in which it
// appeared. Streams are kept in non-decreasing Time order.
type TimedEdge struct {
	U, V int
	Time int64
}

// Evolving models a growing graph as a timestamped stream of edge insertions
// (the paper's sequence of slices S_1, S_2, ...). Nodes are implicit: a node
// exists from the first edge that mentions it. Only insertions are supported,
// matching the paper's evolution model, so any later snapshot is a supergraph
// of any earlier one.
type Evolving struct {
	stream   []TimedEdge
	numNodes int
}

var (
	// ErrEmptyStream reports an Evolving with no edges.
	ErrEmptyStream = errors.New("graph: empty edge stream")
	// ErrUnsorted reports an out-of-order edge stream.
	ErrUnsorted = errors.New("graph: edge stream not sorted by time")
)

// NewEvolving validates and wraps a timestamped edge stream. The stream must
// be non-empty, sorted by Time, free of self-loops and duplicate edges, and
// use non-negative node IDs. The stream slice is retained; callers must not
// modify it afterwards.
func NewEvolving(stream []TimedEdge) (*Evolving, error) {
	if len(stream) == 0 {
		return nil, ErrEmptyStream
	}
	seen := make(map[Edge]struct{}, len(stream))
	n := 0
	for i, te := range stream {
		if te.U < 0 || te.V < 0 {
			return nil, fmt.Errorf("%w: stream[%d] = (%d, %d)", ErrNodeRange, i, te.U, te.V)
		}
		if te.U == te.V {
			return nil, fmt.Errorf("graph: stream[%d] is a self-loop on node %d", i, te.U)
		}
		if i > 0 && te.Time < stream[i-1].Time {
			return nil, fmt.Errorf("%w: stream[%d].Time=%d < stream[%d].Time=%d",
				ErrUnsorted, i, te.Time, i-1, stream[i-1].Time)
		}
		c := Edge{te.U, te.V}.Canon()
		if _, dup := seen[c]; dup {
			return nil, fmt.Errorf("graph: stream[%d] duplicates edge (%d, %d)", i, c.U, c.V)
		}
		seen[c] = struct{}{}
		if te.U >= n {
			n = te.U + 1
		}
		if te.V >= n {
			n = te.V + 1
		}
	}
	return &Evolving{stream: stream, numNodes: n}, nil
}

// NumNodes returns the size of the node universe after all insertions.
func (ev *Evolving) NumNodes() int { return ev.numNodes }

// NumEdges returns the total number of edge insertions in the stream.
func (ev *Evolving) NumEdges() int { return len(ev.stream) }

// Stream returns the underlying edge stream. The slice must not be modified.
func (ev *Evolving) Stream() []TimedEdge { return ev.stream }

// SnapshotPrefix builds the graph containing the first count edges of the
// stream, over the full node universe (so node IDs are comparable across
// snapshots). count is clamped to [0, NumEdges].
func (ev *Evolving) SnapshotPrefix(count int) *Graph {
	if count < 0 {
		count = 0
	}
	if count > len(ev.stream) {
		count = len(ev.stream)
	}
	b := NewBuilder(ev.numNodes)
	for _, te := range ev.stream[:count] {
		// Stream edges were validated by NewEvolving; AddEdge cannot fail.
		_ = b.AddEdge(te.U, te.V)
	}
	return b.Build()
}

// SnapshotFraction builds the graph containing the first frac fraction of the
// edge stream; frac is clamped to [0, 1]. The paper's snapshots are defined
// this way: G_t1 holds 80% of the edges, G_t2 the full graph, and classifier
// training uses the 60% and 70% prefixes.
func (ev *Evolving) SnapshotFraction(frac float64) *Graph {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return ev.SnapshotPrefix(int(frac * float64(len(ev.stream))))
}

// SnapshotAtTime builds the graph containing every edge with Time <= t.
func (ev *Evolving) SnapshotAtTime(t int64) *Graph {
	count := sort.Search(len(ev.stream), func(i int) bool { return ev.stream[i].Time > t })
	return ev.SnapshotPrefix(count)
}

// SnapshotPair is a (G_t1, G_t2) instance pair with G2 ⊇ G1 — the input to
// every algorithm in the library.
type SnapshotPair struct {
	G1, G2 *Graph
}

// Pair builds the snapshot pair at the two edge fractions f1 < f2.
func (ev *Evolving) Pair(f1, f2 float64) (SnapshotPair, error) {
	if !(f1 < f2) {
		return SnapshotPair{}, fmt.Errorf("graph: snapshot fractions must satisfy f1 < f2, got %v >= %v", f1, f2)
	}
	return SnapshotPair{G1: ev.SnapshotFraction(f1), G2: ev.SnapshotFraction(f2)}, nil
}

// Validate checks the structural invariant the problem definition relies on:
// both snapshots exist, share a node universe, and G2 is a supergraph of G1.
func (sp SnapshotPair) Validate() error {
	if sp.G1 == nil || sp.G2 == nil {
		return errors.New("graph: snapshot pair has nil graph")
	}
	if sp.G1.NumNodes() != sp.G2.NumNodes() {
		return fmt.Errorf("graph: snapshot node universes differ: %d vs %d",
			sp.G1.NumNodes(), sp.G2.NumNodes())
	}
	if !sp.G2.IsSupergraphOf(sp.G1) {
		return errors.New("graph: G2 is not a supergraph of G1 (edge deletions are not supported)")
	}
	return nil
}

// NewEdges returns the edges present in G2 but not in G1, i.e. the insertions
// between the two snapshots. The Incidence baseline builds its active-node
// set from their endpoints.
func (sp SnapshotPair) NewEdges() []Edge {
	return NewDelta(sp.G1, sp.G2).Edges
}

// Delta is the edge difference G2 \ G1 of a snapshot pair: the insertions
// that happened between t1 and t2, canonical (U <= V) and sorted ascending.
// It is immutable once built — compute it once per run and share it
// read-only across workers (the incremental paired sweep derives every
// candidate's G_t2 distances from it).
type Delta struct {
	// Edges holds the inserted edges, canonical and sorted. Nil when the
	// snapshots are identical.
	Edges []Edge
}

// NumEdges returns the number of inserted edges.
func (d *Delta) NumEdges() int { return len(d.Edges) }

// NewDelta computes the edge difference g2 \ g1 with one merge pass over the
// two sorted CSR adjacency structures — O(V + E2), no per-edge lookups.
// Edges of g1 absent from g2 (deletions) are ignored; callers that need the
// supergraph invariant enforced validate the pair first
// (SnapshotPair.Validate). Nodes of g2 beyond g1's universe contribute all
// their edges.
func NewDelta(g1, g2 *Graph) *Delta {
	n1, n2 := g1.NumNodes(), g2.NumNodes()
	var out []Edge
	for u := 0; u < n2; u++ {
		adj2 := g2.Neighbors(u)
		var adj1 []int32
		if u < n1 {
			adj1 = g1.Neighbors(u)
		}
		i := 0
		for _, v := range adj2 {
			if v < int32(u) {
				continue // report each undirected edge once, from its smaller endpoint
			}
			for i < len(adj1) && adj1[i] < v {
				i++
			}
			if i < len(adj1) && adj1[i] == v {
				continue
			}
			out = append(out, Edge{u, int(v)})
		}
	}
	return &Delta{Edges: out}
}

// Delta returns the pair's edge difference G2 \ G1.
func (sp SnapshotPair) Delta() *Delta { return NewDelta(sp.G1, sp.G2) }
