package graph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the session-oriented face of the package: a streaming edge
// ingester that seals immutable CSR epochs into an RCU-style Store, so a
// long-running service can answer (t1, t2) window queries while edges keep
// arriving. It generalizes the ingestion loop that monitor.Watch and the
// streaming-watch example used to own privately.
//
// Concurrency model: epochs are immutable once sealed; the Store publishes
// the epoch list through an atomic pointer, so readers never lock. Writers
// (seal, prune) serialize on a mutex and swap a fresh copy of the list in.
// A reader that obtained an *Epoch keeps it valid forever — pruning only
// removes epochs from the list, never invalidates them — but queries that
// resolve epochs *by sequence number* later should Pin them so retention
// cannot drop them from the list in between.

// Epoch is one sealed, immutable snapshot of the evolving graph. Sequence
// numbers start at 1 and increase by one per seal.
type Epoch struct {
	// Seq is the 1-based seal sequence number.
	Seq int
	// Time is the largest edge timestamp ingested before the seal (0 when no
	// edge carried a timestamp).
	Time int64
	// EdgeCount is the number of distinct edges in the epoch.
	EdgeCount int

	g    *Graph
	pins atomic.Int64
}

// Graph returns the epoch's immutable CSR snapshot.
func (e *Epoch) Graph() *Graph { return e.g }

// Pin marks the epoch in use, excluding it from retention pruning, and
// returns the release function. Release is idempotent-unsafe: call it exactly
// once.
func (e *Epoch) Pin() (release func()) {
	e.pins.Add(1)
	return func() { e.pins.Add(-1) }
}

// Pinned reports whether any holder currently pins the epoch.
func (e *Epoch) Pinned() bool { return e.pins.Load() > 0 }

// Store is the epoch snapshot store: an append-only (modulo retention)
// sequence of sealed epochs, readable without locks.
type Store struct {
	mu     sync.Mutex // serializes seal and prune
	retain int        // max unpinned epochs kept; <= 0 means unlimited
	list   atomic.Pointer[[]*Epoch]
}

// NewStore creates a store retaining at most retain epochs (<= 0 for
// unlimited). The latest epoch and every pinned epoch are always retained
// regardless of the limit.
func NewStore(retain int) *Store {
	s := &Store{retain: retain}
	empty := []*Epoch{}
	s.list.Store(&empty)
	return s
}

// Epochs returns the current epoch list, oldest first. The returned slice is
// a private copy; the epochs themselves are shared and immutable.
func (s *Store) Epochs() []*Epoch {
	cur := *s.list.Load()
	out := make([]*Epoch, len(cur))
	copy(out, cur)
	return out
}

// Len returns the number of retained epochs.
func (s *Store) Len() int { return len(*s.list.Load()) }

// Latest returns the newest epoch, or false when nothing was sealed yet.
func (s *Store) Latest() (*Epoch, bool) {
	cur := *s.list.Load()
	if len(cur) == 0 {
		return nil, false
	}
	return cur[len(cur)-1], true
}

// At returns the epoch with the given sequence number, or false when it was
// never sealed or has been pruned.
func (s *Store) At(seq int) (*Epoch, bool) {
	cur := *s.list.Load()
	// Retention removes a prefix, so seq maps to a dense suffix index.
	if len(cur) == 0 {
		return nil, false
	}
	first := cur[0].Seq
	i := seq - first
	if i < 0 || i >= len(cur) {
		return nil, false
	}
	return cur[i], true
}

// append publishes e and applies retention. Caller holds s.mu.
func (s *Store) append(e *Epoch) {
	cur := *s.list.Load()
	next := make([]*Epoch, 0, len(cur)+1)
	next = append(next, cur...)
	next = append(next, e)
	if s.retain > 0 {
		// Drop the oldest unpinned epochs beyond the limit. Pinned epochs
		// block pruning of everything newer than them so the dense-suffix
		// indexing of At stays valid (retention only ever removes a prefix).
		excess := len(next) - s.retain
		drop := 0
		for drop < excess && drop < len(next)-1 && !next[drop].Pinned() {
			drop++
		}
		next = next[drop:]
	}
	s.list.Store(&next)
}

// ErrNoEpoch reports a window request against a sequence number the store
// does not hold.
var ErrNoEpoch = errors.New("graph: no such epoch")

// Window is a pinned (G_t1, G_t2) view over two epochs. The pair shares G2's
// node universe: the earlier snapshot is padded with isolated nodes
// (PadUniverse) so node IDs — and therefore distances, selections, and RNG
// draws — are directly comparable, exactly as if both snapshots had been
// built over the full universe by Evolving.SnapshotPrefix. Close releases
// both pins; the Pair stays valid afterwards (epochs are immutable), it just
// no longer blocks retention.
type Window struct {
	Pair   SnapshotPair
	E1, E2 *Epoch

	releaseOnce sync.Once
	release     func()
}

// Close releases the window's epoch pins. Safe to call more than once.
func (w *Window) Close() {
	w.releaseOnce.Do(w.release)
}

// Window pins the epochs seq1 < seq2 and returns their snapshot pair over
// G_t2's node universe. The supergraph invariant holds by construction
// (epochs grow by insertion only), but is re-validated here as a cheap guard
// against store misuse.
func (s *Store) Window(seq1, seq2 int) (*Window, error) {
	if seq1 >= seq2 {
		return nil, fmt.Errorf("graph: window wants seq1 < seq2, got %d >= %d", seq1, seq2)
	}
	e1, ok := s.At(seq1)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoEpoch, seq1)
	}
	e2, ok := s.At(seq2)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoEpoch, seq2)
	}
	r1, r2 := e1.Pin(), e2.Pin()
	pair := SnapshotPair{G1: PadUniverse(e1.g, e2.g.NumNodes()), G2: e2.g}
	if err := pair.Validate(); err != nil {
		r1()
		r2()
		return nil, err
	}
	return &Window{Pair: pair, E1: e1, E2: e2, release: func() { r1(); r2() }}, nil
}

// PadUniverse returns a view of g over a node universe of size n >= g's: the
// extra nodes are isolated. The returned graph shares g's neighbor storage
// (only the offsets array is reallocated), so padding an epoch for a window
// costs O(n), not O(E). Returns g itself when no padding is needed.
func PadUniverse(g *Graph, n int) *Graph {
	old := g.NumNodes()
	if n <= old {
		return g
	}
	offsets := make([]int32, n+1)
	copy(offsets, g.offsets)
	tail := int32(0)
	if old > 0 {
		tail = g.offsets[old]
	}
	for u := old + 1; u <= n; u++ {
		offsets[u] = tail
	}
	return &Graph{offsets: offsets, neighbors: g.neighbors, numEdges: g.numEdges}
}

// MergeDeltas concatenates consecutive epoch deltas into one. The inputs
// must be deltas of an insertion-only chain (disjoint, each sorted); the
// result is sorted canonical, equal to the direct delta of the chain's
// endpoints — the identity the epoch store's incremental consumers rely on,
// pinned by TestDeltaChainComposition.
func MergeDeltas(deltas ...*Delta) *Delta {
	total := 0
	for _, d := range deltas {
		total += len(d.Edges)
	}
	if total == 0 {
		return &Delta{}
	}
	out := make([]Edge, 0, total)
	// k-way merge by repeated two-way merges; chains are short (a handful of
	// epochs), so simplicity beats a heap.
	for _, d := range deltas {
		out = mergeEdges(out, d.Edges)
	}
	return &Delta{Edges: out}
}

// mergeEdges merges two sorted canonical edge lists into a fresh sorted list.
func mergeEdges(a, b []Edge) []Edge {
	if len(a) == 0 {
		return append([]Edge(nil), b...)
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Edge, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if edgeLess(a[i], b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func edgeLess(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// IngesterOptions tunes a streaming Ingester.
type IngesterOptions struct {
	// Universe is the minimum node-universe size of every sealed epoch. Set
	// it when the eventual universe is known up front (e.g. replaying an
	// Evolving stream) so early epochs share the final universe and selector
	// RNG draws match a full-universe run exactly. 0 lets the universe grow
	// with the edges ingested.
	Universe int
	// Retain bounds the store's epoch retention (<= 0 for unlimited).
	Retain int
}

// Ingester accumulates a stream of edge insertions and seals them into
// epochs. It is safe for concurrent use; sealing does not block ingestion
// beyond the shared mutex. Duplicate edges and self-loops are tolerated and
// skipped (the wire repeats itself; only first insertion counts), unlike
// NewEvolving's strict validation — this is the service-facing boundary.
type Ingester struct {
	mu       sync.Mutex
	store    *Store
	builder  *Builder
	seen     map[Edge]struct{}
	maxTime  int64
	universe int
}

// NewIngester creates an ingester with a fresh epoch store.
func NewIngester(opts IngesterOptions) *Ingester {
	u := opts.Universe
	if u < 0 {
		u = 0
	}
	return &Ingester{
		store:    NewStore(opts.Retain),
		builder:  NewBuilder(u),
		seen:     make(map[Edge]struct{}),
		universe: u,
	}
}

// Store returns the epoch store the ingester seals into.
func (in *Ingester) Store() *Store { return in.store }

// Ingest records one edge insertion. It returns true when the edge was new,
// false when it was a duplicate or a self-loop (both are skipped silently).
// Negative node IDs are rejected.
func (in *Ingester) Ingest(te TimedEdge) (bool, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ingestLocked(te)
}

// IngestBatch records a batch of insertions under one lock acquisition,
// returning how many were new. The batch is applied prefix-first: on a
// validation error, edges before the offender are already ingested.
func (in *Ingester) IngestBatch(edges []TimedEdge) (added int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, te := range edges {
		ok, err := in.ingestLocked(te)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

func (in *Ingester) ingestLocked(te TimedEdge) (bool, error) {
	if te.U < 0 || te.V < 0 {
		return false, fmt.Errorf("%w: (%d, %d)", ErrNodeRange, te.U, te.V)
	}
	if te.U == te.V {
		return false, nil
	}
	c := Edge{te.U, te.V}.Canon()
	if _, dup := in.seen[c]; dup {
		return false, nil
	}
	in.seen[c] = struct{}{}
	_ = in.builder.AddEdge(c.U, c.V) // IDs validated above; cannot fail
	if te.Time > in.maxTime {
		in.maxTime = te.Time
	}
	if c.V >= in.universe {
		in.universe = c.V + 1
	}
	return true, nil
}

// Seal freezes the edges ingested so far into a new epoch and publishes it.
// Sealing with no new edges since the last seal is allowed and produces an
// epoch structurally identical to its predecessor (its delta is empty).
func (in *Ingester) Seal() *Epoch {
	// in.mu stays held through publication: two racing seals must publish in
	// the order they built, or a later-seq epoch could miss edges an
	// earlier-seq one has (breaking the supergraph invariant windows rely on).
	in.mu.Lock()
	defer in.mu.Unlock()
	g := in.builder.Build()
	if g.NumNodes() < in.universe {
		g = PadUniverse(g, in.universe)
	}
	e := &Epoch{Time: in.maxTime, EdgeCount: len(in.seen), g: g}

	in.store.mu.Lock()
	if latest, ok := in.store.Latest(); ok {
		e.Seq = latest.Seq + 1
	} else {
		e.Seq = 1
	}
	in.store.append(e)
	in.store.mu.Unlock()
	return e
}

// EdgeCount returns the number of distinct edges ingested so far.
func (in *Ingester) EdgeCount() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.seen)
}

// NumNodes returns the current node-universe size (the configured floor or
// the largest node ID seen plus one, whichever is greater).
func (in *Ingester) NumNodes() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.universe
}
