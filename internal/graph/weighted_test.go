package graph

import (
	"errors"
	"testing"
)

func TestNewWeightedBasics(t *testing.T) {
	g, err := NewWeighted(4, []WeightedEdge{
		{U: 0, V: 1, Weight: 2},
		{U: 1, V: 2, Weight: 3},
		{U: 2, V: 2, Weight: 9}, // self-loop dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Fatalf("%d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees %d %d", g.Degree(1), g.Degree(3))
	}
	adj, ws := g.Neighbors(1)
	if len(adj) != 2 || adj[0] != 0 || ws[0] != 2 || adj[1] != 2 || ws[1] != 3 {
		t.Fatalf("neighbors(1) = %v %v (must be sorted with parallel weights)", adj, ws)
	}
}

func TestNewWeightedErrors(t *testing.T) {
	if _, err := NewWeighted(2, []WeightedEdge{{U: -1, V: 0, Weight: 1}}); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewWeighted(2, []WeightedEdge{{U: 0, V: 1, Weight: -2}}); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewWeightedGrowsAndDedupes(t *testing.T) {
	g, err := NewWeighted(1, []WeightedEdge{
		{U: 0, V: 5, Weight: 7},
		{U: 5, V: 0, Weight: 3}, // duplicate: min weight wins
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 || g.NumEdges() != 1 {
		t.Fatalf("%d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	_, ws := g.Neighbors(0)
	if ws[0] != 3 {
		t.Fatalf("weight = %d, want min 3", ws[0])
	}
}

func TestFromUnweighted(t *testing.T) {
	g := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	wg := FromUnweighted(g)
	if wg.NumNodes() != 3 || wg.NumEdges() != 2 {
		t.Fatalf("%d nodes %d edges", wg.NumNodes(), wg.NumEdges())
	}
	_, ws := wg.Neighbors(1)
	for _, w := range ws {
		if w != 1 {
			t.Fatalf("unit weight = %d", w)
		}
	}
}

func TestStreamAndBuilderAccessors(t *testing.T) {
	ev, err := NewEvolving([]TimedEdge{{U: 0, V: 1, Time: 3}, {U: 1, V: 2, Time: 5}})
	if err != nil {
		t.Fatal(err)
	}
	st := ev.Stream()
	if len(st) != 2 || st[0].Time != 3 {
		t.Fatalf("stream = %v", st)
	}
	b := NewBuilder(2)
	if b.NumEdges() != 0 {
		t.Fatal("fresh builder has edges")
	}
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 0)
	if b.NumEdges() != 1 {
		t.Fatalf("builder edges = %d", b.NumEdges())
	}
}
