package graph

import (
	"errors"
	"fmt"
	"sort"
)

// WeightedEdge is an undirected edge with a non-negative integer weight.
// The paper states the problem for "undirected (weighted) graphs"; the
// evaluation datasets are unweighted, but the library supports weights so
// that traffic-style networks from the paper's introduction work too.
type WeightedEdge struct {
	U, V   int
	Weight int32
}

// Weighted is an immutable undirected graph with per-edge weights, in CSR
// form. Build one with NewWeighted.
type Weighted struct {
	offsets   []int32
	neighbors []int32
	weights   []int32
	numEdges  int
}

// ErrNegativeWeight reports an edge with a negative weight; shortest-path
// engines in this library require non-negative weights.
var ErrNegativeWeight = errors.New("graph: negative edge weight")

// NewWeighted builds a weighted undirected graph over n nodes. Self-loops are
// dropped; for duplicate edges the smallest weight wins (the shortest-path
// semantics of parallel edges).
func NewWeighted(n int, edges []WeightedEdge) (*Weighted, error) {
	best := make(map[Edge]int32, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("%w: (%d, %d)", ErrNodeRange, e.U, e.V)
		}
		if e.Weight < 0 {
			return nil, fmt.Errorf("%w: (%d, %d) weight %d", ErrNegativeWeight, e.U, e.V, e.Weight)
		}
		if e.U == e.V {
			continue
		}
		if e.U >= n {
			n = e.U + 1
		}
		if e.V >= n {
			n = e.V + 1
		}
		c := Edge{e.U, e.V}.Canon()
		if w, ok := best[c]; !ok || e.Weight < w {
			best[c] = e.Weight
		}
	}
	deg := make([]int32, n)
	for e := range best {
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int32, n+1)
	for i, d := range deg {
		offsets[i+1] = offsets[i] + d
	}
	neighbors := make([]int32, offsets[n])
	weights := make([]int32, offsets[n])
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for e, w := range best {
		neighbors[cursor[e.U]], weights[cursor[e.U]] = int32(e.V), w
		cursor[e.U]++
		neighbors[cursor[e.V]], weights[cursor[e.V]] = int32(e.U), w
		cursor[e.V]++
	}
	wg := &Weighted{offsets: offsets, neighbors: neighbors, weights: weights, numEdges: len(best)}
	for u := 0; u < n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		adj, ws := neighbors[lo:hi], weights[lo:hi]
		sort.Sort(&adjSorter{adj, ws})
	}
	return wg, nil
}

type adjSorter struct {
	adj []int32
	ws  []int32
}

func (s *adjSorter) Len() int           { return len(s.adj) }
func (s *adjSorter) Less(i, j int) bool { return s.adj[i] < s.adj[j] }
func (s *adjSorter) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}

// NumNodes returns the size of the node universe.
func (g *Weighted) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges.
func (g *Weighted) NumEdges() int { return g.numEdges }

// Degree returns the number of neighbors of node u.
func (g *Weighted) Degree(u int) int { return int(g.offsets[u+1] - g.offsets[u]) }

// Neighbors returns u's adjacency and the parallel weight slice. Both alias
// internal storage and must not be modified.
func (g *Weighted) Neighbors(u int) (adj, weights []int32) {
	return g.neighbors[g.offsets[u]:g.offsets[u+1]], g.weights[g.offsets[u]:g.offsets[u+1]]
}

// NeighborIDs returns u's adjacency without the weights, satisfying
// AdjacencyLister so component analysis works on weighted graphs too.
func (g *Weighted) NeighborIDs(u int) []int32 {
	return g.neighbors[g.offsets[u]:g.offsets[u+1]]
}

// FromUnweighted lifts an unweighted graph to a Weighted with unit weights;
// shortest paths coincide with BFS distances, which tests exploit.
func FromUnweighted(g *Graph) *Weighted {
	edges := g.Edges()
	wes := make([]WeightedEdge, len(edges))
	for i, e := range edges {
		wes[i] = WeightedEdge{U: e.U, V: e.V, Weight: 1}
	}
	wg, err := NewWeighted(g.NumNodes(), wes)
	if err != nil {
		// Edges from a valid Graph cannot have negative IDs or weights.
		panic(err)
	}
	return wg
}
