package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("zero graph: got %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Density() != 0 {
		t.Fatalf("zero graph density = %v, want 0", g.Density())
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("zero graph max degree = %d, want 0", g.MaxDegree())
	}
	built := NewBuilder(0).Build()
	if built.NumNodes() != 0 || built.NumEdges() != 0 {
		t.Fatalf("built empty graph: got %d nodes, %d edges", built.NumNodes(), built.NumEdges())
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	for _, e := range []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d nodes %d edges, want 4 and 4", g.NumNodes(), g.NumEdges())
	}
	for u := 0; u < 4; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("degree(%d) = %d, want 2", u, g.Degree(u))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("missing edge {0,1}")
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge {0,2}")
	}
	if g.HasEdge(0, 9) || g.HasEdge(-1, 0) {
		t.Error("HasEdge out of range should be false")
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	mustAdd := func(u, v int) {
		t.Helper()
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1)
	mustAdd(1, 0) // duplicate, reversed
	mustAdd(0, 1) // duplicate
	mustAdd(2, 2) // self-loop
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (dedup + no self-loops)", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("self-loop should be dropped, degree(2) = %d", g.Degree(2))
	}
}

func TestBuilderGrowsUniverse(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 7); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d, want 8", g.NumNodes())
	}
}

func TestBuilderNegativeNode(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("expected error for negative node id")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := FromEdges(6, []Edge{{3, 5}, {3, 1}, {3, 4}, {3, 0}, {3, 2}})
	adj := g.Neighbors(3)
	if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		t.Fatalf("neighbors not sorted: %v", adj)
	}
	if len(adj) != 5 {
		t.Fatalf("len(adj) = %d, want 5", len(adj))
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	want := []Edge{{0, 1}, {0, 3}, {1, 2}, {2, 3}}
	g := FromEdges(4, want)
	got := g.Edges()
	sort.Slice(got, func(i, j int) bool {
		if got[i].U != got[j].U {
			return got[i].U < got[j].U
		}
		return got[i].V < got[j].V
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges() = %v, want %v", got, want)
	}
}

func TestDensityAndMaxDegree(t *testing.T) {
	// Complete graph on 4 nodes: density 1, max degree 3.
	g := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if d := g.Density(); d != 1 {
		t.Errorf("K4 density = %v, want 1", d)
	}
	if g.MaxDegree() != 3 {
		t.Errorf("K4 max degree = %d, want 3", g.MaxDegree())
	}
	// Star on 5 nodes: 4 edges, max degree 4.
	star := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if star.MaxDegree() != 4 {
		t.Errorf("star max degree = %d, want 4", star.MaxDegree())
	}
}

func TestIsSupergraphOf(t *testing.T) {
	g1 := FromEdges(4, []Edge{{0, 1}, {1, 2}})
	g2 := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if !g2.IsSupergraphOf(g1) {
		t.Error("g2 should be a supergraph of g1")
	}
	if g1.IsSupergraphOf(g2) {
		t.Error("g1 should not be a supergraph of g2")
	}
	if !g1.IsSupergraphOf(g1) {
		t.Error("a graph is a supergraph of itself")
	}
	bigger := FromEdges(5, nil)
	if g1.IsSupergraphOf(bigger) {
		t.Error("smaller universe cannot be a supergraph of a larger one")
	}
}

// Property: building a graph from random edges preserves exactly the deduped
// edge set, adjacency is symmetric, and degrees sum to 2|E|.
func TestBuildProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		want := make(map[Edge]struct{})
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if err := b.AddEdge(u, v); err != nil {
				return false
			}
			if u != v {
				want[Edge{u, v}.Canon()] = struct{}{}
			}
		}
		g := b.Build()
		if g.NumEdges() != len(want) {
			return false
		}
		degSum := 0
		for u := 0; u < n; u++ {
			degSum += g.Degree(u)
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(int(v), u) { // symmetry
					return false
				}
				if _, ok := want[Edge{u, int(v)}.Canon()]; !ok {
					return false
				}
			}
		}
		return degSum == 2*len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestComponents(t *testing.T) {
	// Two triangles plus an isolated node.
	g := FromEdges(7, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	labels, count := Components(g)
	if count != 3 {
		t.Fatalf("component count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("first triangle split across components")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Error("second triangle split across components")
	}
	if labels[0] == labels[3] || labels[0] == labels[6] {
		t.Error("distinct components share a label")
	}
}

func TestLargestComponent(t *testing.T) {
	g := FromEdges(8, []Edge{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {6, 7}})
	nodes, count := LargestComponent(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if !reflect.DeepEqual(nodes, []int{0, 1, 2, 3}) {
		t.Fatalf("largest component = %v, want [0 1 2 3]", nodes)
	}
	if n, c := emptyLargest(); n != nil || c != 0 {
		t.Fatalf("empty graph largest component = %v, %d", n, c)
	}
}

func emptyLargest() ([]int, int) {
	var g Graph
	return LargestComponent(&g)
}

func TestSameComponent(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {2, 3}})
	same := SameComponent(g)
	if !same(0, 1) || same(0, 2) || same(1, 4) || !same(4, 4) {
		t.Fatal("SameComponent predicate incorrect")
	}
}
