package graph

// AdjacencyLister is the structural view shared by Graph and Weighted: the
// node universe plus weight-less adjacency. Component analysis only needs
// connectivity, so it runs identically on both representations (and on any
// distance source wrapping them).
type AdjacencyLister interface {
	NumNodes() int
	NeighborIDs(u int) []int32
}

// ComponentsOf labels each node of any adjacency-listing graph with a
// connected-component ID in [0, count) and returns the label slice together
// with the number of components. Isolated nodes form singleton components.
func ComponentsOf(g AdjacencyLister) (labels []int32, count int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, n)
	var next int32
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = next
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.NeighborIDs(int(u)) {
				if labels[v] < 0 {
					labels[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return labels, int(next)
}

// Components labels each node with a connected-component ID in [0, count) and
// returns the label slice together with the number of components. Isolated
// nodes form singleton components.
func Components(g *Graph) (labels []int32, count int) { return ComponentsOf(g) }

// LargestComponentOf returns the nodes of the largest connected component of
// any adjacency-listing graph, sorted ascending, together with the component
// count of the whole graph.
func LargestComponentOf(g AdjacencyLister) (nodes []int, components int) {
	labels, count := ComponentsOf(g)
	if count == 0 {
		return nil, 0
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	nodes = make([]int, 0, sizes[best])
	for u, l := range labels {
		if int(l) == best {
			nodes = append(nodes, u)
		}
	}
	return nodes, count
}

// LargestComponent returns the nodes of the largest connected component,
// sorted ascending, together with the component count of the whole graph.
func LargestComponent(g *Graph) (nodes []int, components int) {
	return LargestComponentOf(g)
}

// SameComponent returns a predicate telling whether two nodes are connected
// in g, backed by one Components pass.
func SameComponent(g *Graph) func(u, v int) bool {
	labels, _ := Components(g)
	return func(u, v int) bool { return labels[u] == labels[v] }
}
