// Package graph provides the undirected-graph substrate used throughout the
// convergence library: an immutable compressed-sparse-row (CSR) snapshot
// representation, a mutable builder, and an evolving-graph abstraction that
// turns a timestamped edge stream into snapshots at arbitrary points of the
// stream (the paper's G_t1 / G_t2 instances).
//
// Node identifiers are dense integers in [0, NumNodes). Snapshots taken from
// the same Evolving stream share one node universe, so distances between the
// same pair of IDs are directly comparable across snapshots — exactly what the
// converging-pairs problem requires.
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"repro/internal/invariant"
)

// Edge is an undirected edge between two nodes. U < V is not required on
// input; the builder normalizes orientation internally.
type Edge struct {
	U, V int
}

// Canon returns the edge with endpoints ordered so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Graph is an immutable undirected graph in CSR form. The zero value is an
// empty graph. Build one with a Builder or FromEdges.
type Graph struct {
	offsets   []int32 // len NumNodes+1
	neighbors []int32 // len 2*NumEdges
	numEdges  int
}

// ErrNodeRange reports a node identifier outside [0, NumNodes).
var ErrNodeRange = errors.New("graph: node out of range")

// NumNodes returns the size of the node universe, including isolated nodes.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Degree returns the number of neighbors of node u.
func (g *Graph) Degree(u int) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns the adjacency slice of node u, sorted ascending. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) Neighbors(u int) []int32 {
	return g.neighbors[g.offsets[u]:g.offsets[u+1]]
}

// NeighborIDs is Neighbors under the AdjacencyLister interface name, so the
// unweighted graph plugs into the generic component analysis directly.
func (g *Graph) NeighborIDs(u int) []int32 { return g.Neighbors(u) }

// CSR exposes the raw compressed-sparse-row arrays: offsets has length
// NumNodes()+1 and neighbors holds the concatenated sorted adjacency lists
// (node u's neighbors are neighbors[offsets[u]:offsets[u+1]]). Both slices
// alias internal storage and must not be modified. Flat array access lets
// traversal kernels (internal/sssp) avoid a bounds-checked method call per
// node.
func (g *Graph) CSR() (offsets, neighbors []int32) {
	if invariant.Enabled {
		g.checkCSR()
	}
	return g.offsets, g.neighbors
}

// checkCSR asserts the structural invariants every traversal kernel relies
// on: well-formed offsets, neighbor storage matching the symmetric edge
// count, and sorted adjacency lists. Compiled in only under
// -tags invariants (it is O(V+E) per call).
func (g *Graph) checkCSR() {
	n := g.NumNodes()
	if n == 0 {
		invariant.Checkf(len(g.neighbors) == 0 && g.numEdges == 0,
			"empty graph carries %d neighbor entries, %d edges", len(g.neighbors), g.numEdges)
		return
	}
	invariant.Checkf(len(g.offsets) == n+1, "offsets length %d, want NumNodes+1 = %d", len(g.offsets), n+1)
	invariant.Checkf(g.offsets[0] == 0, "offsets[0] = %d, want 0", g.offsets[0])
	for u := 0; u < n; u++ {
		invariant.Checkf(g.offsets[u] <= g.offsets[u+1],
			"offsets decrease at node %d: %d > %d", u, g.offsets[u], g.offsets[u+1])
		adj := g.neighbors[g.offsets[u]:g.offsets[u+1]]
		for i, v := range adj {
			invariant.Checkf(0 <= v && int(v) < n, "node %d has out-of-range neighbor %d", u, v)
			if i > 0 {
				invariant.Checkf(adj[i-1] < v,
					"adjacency of node %d not strictly sorted at index %d (%d, %d)", u, i, adj[i-1], v)
			}
		}
	}
	invariant.Checkf(int(g.offsets[n]) == len(g.neighbors),
		"offsets[n] = %d, but %d neighbor entries", g.offsets[n], len(g.neighbors))
	invariant.Checkf(len(g.neighbors) == 2*g.numEdges,
		"%d neighbor entries for %d undirected edges (want symmetric 2E)", len(g.neighbors), g.numEdges)
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.NumNodes() || v >= g.NumNodes() {
		return false
	}
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= int32(v) })
	return i < len(adj) && adj[i] == int32(v)
}

// Edges returns all undirected edges with U <= V, in ascending order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) <= v {
				out = append(out, Edge{u, int(v)})
			}
		}
	}
	return out
}

// Density returns the edge density 2E / (N(N-1)), or 0 for graphs with fewer
// than two nodes.
func (g *Graph) Density() float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	return 2 * float64(g.numEdges) / (float64(n) * float64(n-1))
}

// MaxDegree returns the largest node degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// IsSupergraphOf reports whether g contains every edge of h and h's node
// universe fits inside g's. The converging-pairs problem requires
// G_t2 ⊇ G_t1; Validate uses this to reject malformed snapshot pairs.
func (g *Graph) IsSupergraphOf(h *Graph) bool {
	if h.NumNodes() > g.NumNodes() {
		return false
	}
	for u := 0; u < h.NumNodes(); u++ {
		gAdj := g.Neighbors(u)
		for _, v := range h.Neighbors(u) {
			i := sort.Search(len(gAdj), func(i int) bool { return gAdj[i] >= v })
			if i == len(gAdj) || gAdj[i] != v {
				return false
			}
		}
	}
	return true
}

// Builder accumulates undirected edges and produces an immutable Graph.
// Duplicate edges and self-loops are silently dropped.
type Builder struct {
	n     int
	edges map[Edge]struct{}
}

// NewBuilder creates a Builder for a node universe of size n. AddEdge may
// grow the universe beyond n. The edge map is pre-sized for roughly 2n
// edges, the density regime of the paper's snapshots, so typical builds do
// not rehash.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[Edge]struct{}, 2*n)}
}

// AddEdge records the undirected edge {u, v}. Self-loops and duplicates are
// ignored. Negative node IDs cause an error.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("%w: (%d, %d)", ErrNodeRange, u, v)
	}
	if u == v {
		return nil
	}
	if u >= b.n {
		b.n = u + 1
	}
	if v >= b.n {
		b.n = v + 1
	}
	b.edges[Edge{u, v}.Canon()] = struct{}{}
	return nil
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable CSR graph. The Builder may be reused
// afterwards; subsequent AddEdge calls do not affect the built Graph.
func (b *Builder) Build() *Graph {
	deg := make([]int32, b.n)
	for e := range b.edges {
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int32, b.n+1)
	for i, d := range deg {
		offsets[i+1] = offsets[i] + d
	}
	neighbors := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for e := range b.edges {
		neighbors[cursor[e.U]] = int32(e.V)
		cursor[e.U]++
		neighbors[cursor[e.V]] = int32(e.U)
		cursor[e.V]++
	}
	g := &Graph{offsets: offsets, neighbors: neighbors, numEdges: len(b.edges)}
	for u := 0; u < b.n; u++ {
		slices.Sort(neighbors[offsets[u]:offsets[u+1]])
	}
	return g
}

// FromEdges builds a graph over n nodes from an edge list. It is a
// convenience wrapper around Builder for tests and examples.
func FromEdges(n int, edges []Edge) *Graph {
	b := &Builder{n: n, edges: make(map[Edge]struct{}, len(edges))}
	for _, e := range edges {
		// AddEdge only fails on negative IDs; FromEdges treats that as a
		// programming error in the caller.
		if err := b.AddEdge(e.U, e.V); err != nil {
			panic(err)
		}
	}
	return b.Build()
}
