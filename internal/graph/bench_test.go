package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchEdges produces a connected random edge list with ~3 edges per node.
func benchEdges(n int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, 3*n)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{i, rng.Intn(i)})
	}
	for i := 0; i < 2*n; i++ {
		edges = append(edges, Edge{rng.Intn(n), rng.Intn(n)})
	}
	return edges
}

// BenchmarkBuild locks in the CSR construction cost: the edge-map fill plus
// the per-node adjacency sort that Build runs on every snapshot
// materialization (each SnapshotPair costs two Builds).
func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		edges := benchEdges(n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bl := NewBuilder(n)
				for _, e := range edges {
					_ = bl.AddEdge(e.U, e.V)
				}
				if g := bl.Build(); g.NumNodes() != n {
					b.Fatal("bad build")
				}
			}
		})
	}
}
