package graph

import "testing"

// FuzzBuilder feeds arbitrary byte-derived edges into the builder: no
// panic, and the built graph keeps its structural invariants.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0})
	f.Add([]byte{})
	f.Add([]byte{255, 255, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewBuilder(0)
		for i := 0; i+1 < len(data); i += 2 {
			if err := b.AddEdge(int(data[i]), int(data[i+1])); err != nil {
				t.Fatalf("non-negative edge rejected: %v", err)
			}
		}
		g := b.Build()
		degSum := 0
		for u := 0; u < g.NumNodes(); u++ {
			degSum += g.Degree(u)
			for _, v := range g.Neighbors(u) {
				if int(v) == u {
					t.Fatal("self-loop survived")
				}
				if !g.HasEdge(int(v), u) {
					t.Fatal("asymmetric adjacency")
				}
			}
		}
		if degSum != 2*g.NumEdges() {
			t.Fatalf("degree sum %d != 2|E| %d", degSum, 2*g.NumEdges())
		}
	})
}

// FuzzEvolving validates the stream checker: arbitrary timed edges must
// either be rejected or produce monotone snapshots.
func FuzzEvolving(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var stream []TimedEdge
		for i := 0; i+2 < len(data); i += 3 {
			stream = append(stream, TimedEdge{
				U: int(data[i]), V: int(data[i+1]), Time: int64(data[i+2]),
			})
		}
		ev, err := NewEvolving(stream)
		if err != nil {
			return
		}
		half := ev.SnapshotPrefix(ev.NumEdges() / 2)
		full := ev.SnapshotPrefix(ev.NumEdges())
		if !full.IsSupergraphOf(half) {
			t.Fatal("snapshot monotonicity violated")
		}
	})
}
