package graph

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// randomStream builds a duplicate-free timed edge stream over n nodes.
func randomStream(t testing.TB, n, edges int, seed int64) []TimedEdge {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[Edge]struct{})
	var stream []TimedEdge
	for time := int64(0); len(stream) < edges; time++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		c := Edge{u, v}.Canon()
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		stream = append(stream, TimedEdge{U: u, V: v, Time: time})
	}
	return stream
}

// TestIngesterSealMatchesSnapshotPrefix pins the generalization claim: an
// ingester fed an Evolving stream prefix-by-prefix seals epochs structurally
// identical to Evolving.SnapshotPrefix over the same universe.
func TestIngesterSealMatchesSnapshotPrefix(t *testing.T) {
	stream := randomStream(t, 40, 120, 1)
	ev, err := NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	in := NewIngester(IngesterOptions{Universe: ev.NumNodes()})
	cuts := []int{30, 60, 120}
	prev := 0
	for _, cut := range cuts {
		if added, err := in.IngestBatch(stream[prev:cut]); err != nil || added != cut-prev {
			t.Fatalf("ingest [%d:%d): added %d err %v", prev, cut, added, err)
		}
		prev = cut
		e := in.Seal()
		want := ev.SnapshotPrefix(cut)
		got := e.Graph()
		if got.NumNodes() != want.NumNodes() || !reflect.DeepEqual(got.Edges(), want.Edges()) {
			t.Fatalf("epoch %d differs from SnapshotPrefix(%d)", e.Seq, cut)
		}
		if e.EdgeCount != cut {
			t.Fatalf("epoch %d EdgeCount = %d, want %d", e.Seq, e.EdgeCount, cut)
		}
	}
	if got := in.Store().Len(); got != len(cuts) {
		t.Fatalf("store holds %d epochs, want %d", got, len(cuts))
	}
}

// TestIngesterSkipsDuplicatesAndSelfLoops pins the service-boundary
// tolerance: the wire may repeat edges and send self-loops; only first
// insertions count.
func TestIngesterSkipsDuplicatesAndSelfLoops(t *testing.T) {
	in := NewIngester(IngesterOptions{})
	batch := []TimedEdge{
		{U: 0, V: 1, Time: 1},
		{U: 1, V: 0, Time: 2}, // duplicate, reversed orientation
		{U: 2, V: 2, Time: 3}, // self-loop
		{U: 1, V: 2, Time: 4},
	}
	added, err := in.IngestBatch(batch)
	if err != nil || added != 2 {
		t.Fatalf("added %d err %v, want 2 nil", added, err)
	}
	if _, err := in.Ingest(TimedEdge{U: -1, V: 3}); err == nil {
		t.Fatalf("negative node ID accepted")
	}
	e := in.Seal()
	if e.EdgeCount != 2 || e.Graph().NumNodes() != 3 {
		t.Fatalf("sealed %d edges over %d nodes, want 2 over 3", e.EdgeCount, e.Graph().NumNodes())
	}
}

// TestStoreWindow pins window semantics: pinned epochs, padded earlier
// universe, validated supergraph invariant, and error cases.
func TestStoreWindow(t *testing.T) {
	in := NewIngester(IngesterOptions{})
	in.IngestBatch([]TimedEdge{{U: 0, V: 1}, {U: 1, V: 2}})
	in.Seal()
	// Second epoch grows the universe: node 5 appears.
	in.IngestBatch([]TimedEdge{{U: 2, V: 5}})
	in.Seal()

	st := in.Store()
	w, err := st.Window(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Pair.G1.NumNodes() != w.Pair.G2.NumNodes() {
		t.Fatalf("window universes differ: %d vs %d", w.Pair.G1.NumNodes(), w.Pair.G2.NumNodes())
	}
	if err := w.Pair.Validate(); err != nil {
		t.Fatalf("window pair invalid: %v", err)
	}
	if !w.E1.Pinned() || !w.E2.Pinned() {
		t.Fatalf("window did not pin its epochs")
	}
	w.Close()
	w.Close() // idempotent
	if w.E1.Pinned() || w.E2.Pinned() {
		t.Fatalf("close did not release pins")
	}

	for _, bad := range [][2]int{{2, 1}, {1, 1}, {1, 9}, {0, 2}} {
		if _, err := st.Window(bad[0], bad[1]); err == nil {
			t.Fatalf("window(%d, %d) succeeded, want error", bad[0], bad[1])
		}
	}
}

// TestPadUniverse pins the padding contract: old nodes keep their adjacency
// (shared storage), new nodes are isolated, and no-op padding returns the
// same graph.
func TestPadUniverse(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if PadUniverse(g, 2) != g || PadUniverse(g, 3) != g {
		t.Fatalf("no-op padding did not return the original graph")
	}
	p := PadUniverse(g, 6)
	if p.NumNodes() != 6 || p.NumEdges() != g.NumEdges() {
		t.Fatalf("padded to %d nodes %d edges, want 6 and %d", p.NumNodes(), p.NumEdges(), g.NumEdges())
	}
	for u := 0; u < 3; u++ {
		if !reflect.DeepEqual(p.Neighbors(u), g.Neighbors(u)) {
			t.Fatalf("padding changed adjacency of node %d", u)
		}
	}
	for u := 3; u < 6; u++ {
		if p.Degree(u) != 0 {
			t.Fatalf("padded node %d is not isolated", u)
		}
	}
	if !p.IsSupergraphOf(g) {
		t.Fatalf("padded graph is not a supergraph of the original")
	}
}

// TestStoreRetention pins pruning: the store keeps at most retain epochs,
// always keeps the latest, never prunes a pinned epoch (or anything newer
// than it), and At keeps resolving surviving sequence numbers.
func TestStoreRetention(t *testing.T) {
	in := NewIngester(IngesterOptions{Retain: 2})
	in.Ingest(TimedEdge{U: 0, V: 1})
	e1 := in.Seal()
	release := e1.Pin()
	in.Ingest(TimedEdge{U: 1, V: 2})
	in.Seal()
	in.Ingest(TimedEdge{U: 2, V: 3})
	in.Seal()

	st := in.Store()
	// e1 is pinned: nothing could be pruned (pruning only removes a prefix).
	if st.Len() != 3 {
		t.Fatalf("pinned store pruned to %d epochs, want 3", st.Len())
	}
	release()
	in.Ingest(TimedEdge{U: 3, V: 4})
	e4 := in.Seal()
	if st.Len() != 2 {
		t.Fatalf("store holds %d epochs after prune, want 2", st.Len())
	}
	if _, ok := st.At(1); ok {
		t.Fatalf("pruned epoch 1 still resolves")
	}
	if got, ok := st.At(4); !ok || got != e4 {
		t.Fatalf("epoch 4 does not resolve after prune")
	}
	if latest, ok := st.Latest(); !ok || latest.Seq != 4 {
		t.Fatalf("latest is not epoch 4")
	}
}

// TestStoreConcurrentReaders races seals against lock-free readers under the
// race detector: readers must always observe a consistent, monotonic list.
func TestStoreConcurrentReaders(t *testing.T) {
	stream := randomStream(t, 30, 200, 3)
	in := NewIngester(IngesterOptions{Universe: 30})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if e, ok := in.Store().Latest(); ok {
					if e.Seq < last {
						t.Error("latest epoch went backwards")
						return
					}
					last = e.Seq
					_ = e.Graph().NumEdges()
				}
			}
		}()
	}
	for i := 0; i < len(stream); i += 20 {
		in.IngestBatch(stream[i : i+20])
		in.Seal()
	}
	close(stop)
	wg.Wait()
}

// TestDeltaIdenticalSnapshots pins the epoch-store edge case of sealing with
// no new edges: the delta between structurally identical snapshots is empty.
func TestDeltaIdenticalSnapshots(t *testing.T) {
	in := NewIngester(IngesterOptions{})
	in.IngestBatch([]TimedEdge{{U: 0, V: 1}, {U: 1, V: 2}})
	e1 := in.Seal()
	e2 := in.Seal() // nothing new
	d := NewDelta(e1.Graph(), e2.Graph())
	if d.NumEdges() != 0 {
		t.Fatalf("identical snapshots produced %d delta edges", d.NumEdges())
	}
	if d2 := NewDelta(e1.Graph(), e1.Graph()); d2.NumEdges() != 0 {
		t.Fatalf("self-delta produced %d edges", d2.NumEdges())
	}
}

// TestDeltaChainComposition pins that composing per-epoch deltas along a
// chain equals the direct delta of the chain's endpoints — what lets
// incremental consumers repair across several epochs without rebuilding.
func TestDeltaChainComposition(t *testing.T) {
	stream := randomStream(t, 25, 90, 5)
	in := NewIngester(IngesterOptions{Universe: 25})
	var epochs []*Epoch
	for i := 0; i < len(stream); i += 30 {
		in.IngestBatch(stream[i : i+30])
		epochs = append(epochs, in.Seal())
	}
	var steps []*Delta
	for i := 1; i < len(epochs); i++ {
		steps = append(steps, NewDelta(epochs[i-1].Graph(), epochs[i].Graph()))
	}
	merged := MergeDeltas(steps...)
	direct := NewDelta(epochs[0].Graph(), epochs[len(epochs)-1].Graph())
	if !reflect.DeepEqual(merged.Edges, direct.Edges) {
		t.Fatalf("delta composition differs from direct delta:\nmerged %v\ndirect %v",
			merged.Edges, direct.Edges)
	}
	if MergeDeltas().NumEdges() != 0 || MergeDeltas(&Delta{}).NumEdges() != 0 {
		t.Fatalf("empty merge is not empty")
	}
}

// TestDeltaUniverseGrowth pins NewDelta across epochs whose node universes
// differ: nodes beyond the earlier universe contribute all their edges, and
// padding the earlier snapshot first gives the same answer.
func TestDeltaUniverseGrowth(t *testing.T) {
	g1 := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	g2 := FromEdges(6, []Edge{{0, 1}, {1, 2}, {2, 4}, {4, 5}, {0, 3}})
	want := []Edge{{0, 3}, {2, 4}, {4, 5}}
	d := NewDelta(g1, g2)
	if !reflect.DeepEqual(d.Edges, want) {
		t.Fatalf("growth delta = %v, want %v", d.Edges, want)
	}
	padded := NewDelta(PadUniverse(g1, 6), g2)
	if !reflect.DeepEqual(padded.Edges, want) {
		t.Fatalf("padded growth delta = %v, want %v", padded.Edges, want)
	}
}
