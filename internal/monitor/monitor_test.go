package monitor

import (
	"math/rand"
	"testing"

	"repro/internal/candidates"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/landmark"
	"repro/internal/sssp"
)

func growingStream(t testing.TB, n int, seed int64) *graph.Evolving {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := map[graph.Edge]struct{}{}
	var stream []graph.TimedEdge
	add := func(u, v int) {
		if u == v {
			return
		}
		c := graph.Edge{U: u, V: v}.Canon()
		if _, dup := seen[c]; dup {
			return
		}
		seen[c] = struct{}{}
		stream = append(stream, graph.TimedEdge{U: u, V: v, Time: int64(len(stream))})
	}
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i))
		if i > 2 && rng.Intn(3) == 0 {
			add(i, rng.Intn(i))
		}
	}
	ev, err := graph.NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestWatchValidation(t *testing.T) {
	ev := growingStream(t, 50, 1)
	sel := candidates.MaxAvg()
	if _, err := Watch(ev, []float64{0.5, 1}, Config{M: 5}); err == nil {
		t.Error("missing selector should fail")
	}
	if _, err := Watch(ev, []float64{0.5, 1}, Config{Selector: sel}); err == nil {
		t.Error("missing budget should fail")
	}
	if _, err := Watch(ev, []float64{0.5}, Config{Selector: sel, M: 5}); err == nil {
		t.Error("single fraction should fail")
	}
	if _, err := Watch(ev, []float64{0.9, 0.5}, Config{Selector: sel, M: 5}); err == nil {
		t.Error("descending fractions should fail")
	}
}

func TestWatchWindows(t *testing.T) {
	ev := growingStream(t, 120, 2)
	reports, err := Watch(ev, []float64{0.6, 0.8, 1.0}, Config{
		Selector: candidates.MMSD(), M: 15, L: 4, MinDelta: 1, Seed: 3, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, rep := range reports {
		if rep.NewEdges <= 0 {
			t.Fatalf("window [%v,%v] has %d new edges", rep.StartFrac, rep.EndFrac, rep.NewEdges)
		}
		if rep.Budget.Total() > 2*15 {
			t.Fatalf("window overspent: %v", rep.Budget)
		}
		for _, p := range rep.Pairs {
			if p.Delta < 1 {
				t.Fatalf("pair below MinDelta: %v", p)
			}
		}
	}
}

// TestWatchMinDeltaDefault pins the documented default: MinDelta 0 means 2
// (distance drops of 1 are usually noise), so a zero-value config behaves
// exactly like an explicit MinDelta: 2 and never reports Δ=1 pairs.
func TestWatchMinDeltaDefault(t *testing.T) {
	ev := growingStream(t, 200, 8)
	fractions := []float64{0.6, 0.8, 1.0}
	cfg := Config{Selector: candidates.MMSD(), M: 20, L: 4, Seed: 3, Workers: 2}
	defaulted, err := Watch(ev, fractions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MinDelta = 2
	explicit, err := Watch(ev, fractions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(defaulted) != len(explicit) {
		t.Fatalf("window counts differ: %d vs %d", len(defaulted), len(explicit))
	}
	for i := range defaulted {
		dp, ep := defaulted[i].Pairs, explicit[i].Pairs
		if len(dp) != len(ep) {
			t.Fatalf("window %d: default MinDelta found %d pairs, explicit 2 found %d", i, len(dp), len(ep))
		}
		for j := range dp {
			if dp[j] != ep[j] {
				t.Fatalf("window %d pair %d: %v vs %v", i, j, dp[j], ep[j])
			}
			if dp[j].Delta < 2 {
				t.Fatalf("window %d reported Δ=%d pair %v under the default threshold", i, dp[j].Delta, dp[j])
			}
		}
	}
}

func TestEvenWindows(t *testing.T) {
	ws := EvenWindows(0.6, 4)
	if len(ws) != 5 || ws[0] != 0.6 || ws[4] != 1 {
		t.Fatalf("EvenWindows = %v", ws)
	}
	if EvenWindows(1.2, 3) != nil || EvenWindows(0.5, 0) != nil {
		t.Fatal("invalid inputs should return nil")
	}
}

func TestLandmarkTrackerMatchesFreshBFS(t *testing.T) {
	ev := growingStream(t, 150, 4)
	start := ev.NumEdges() * 7 / 10
	g1 := ev.SnapshotPrefix(start)
	set, err := landmark.Select(landmark.MaxMin, g1, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewLandmarkTracker(ev, set.Nodes, start)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AdvanceToFraction(1.0); err != nil {
		t.Fatal(err)
	}
	// The tracker's vectors must equal fresh BFS on the full graph.
	g2 := ev.SnapshotFraction(1.0)
	for i, w := range set.Nodes {
		want := sssp.Distances(g2, w)
		got := tr.Distances(i)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("landmark %d: dist[%d] = %d, want %d", w, v, got[v], want[v])
			}
		}
	}
	if tr.Prefix() != ev.NumEdges() {
		t.Fatalf("prefix = %d", tr.Prefix())
	}
	if err := tr.AdvanceTo(0); err == nil {
		t.Fatal("rewind should fail")
	}
}

func TestLandmarkTrackerTopMatchesSumDiff(t *testing.T) {
	ev := growingStream(t, 150, 5)
	start := ev.NumEdges() * 8 / 10
	g1 := ev.SnapshotPrefix(start)
	g2 := ev.SnapshotFraction(1.0)
	set, err := landmark.Select(landmark.MaxMin, g1, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewLandmarkTracker(ev, set.Nodes, start)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AdvanceToFraction(1.0); err != nil {
		t.Fatal(err)
	}
	got := tr.Top(10)

	// Reference: the offline SumDiff ranking over the same landmarks.
	norms, err := landmark.ComputeNorms(landmark.Set{Strategy: set.Strategy, Nodes: set.Nodes},
		graph.SnapshotPair{G1: g1, G2: g2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := landmark.TopByScore(norms.L1, 10, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("streaming Top = %v, offline SumDiff = %v", got, want)
		}
	}
}

func TestLandmarkTrackerCheckpoint(t *testing.T) {
	ev := growingStream(t, 120, 6)
	half := ev.NumEdges() / 2
	tr, err := NewLandmarkTracker(ev, []int{0, 1}, half)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AdvanceToFraction(0.75); err != nil {
		t.Fatal(err)
	}
	tr.Checkpoint() // new baseline at 75%
	if err := tr.AdvanceToFraction(1.0); err != nil {
		t.Fatal(err)
	}
	top := tr.Top(5)
	if len(top) != 5 {
		t.Fatalf("top = %v", top)
	}
	if saved := tr.SSSPCostSaved(10); saved != 10*2*2-2 {
		t.Fatalf("SSSPCostSaved = %d", saved)
	}
}

// TestLandmarkTrackerMultiEdgeWindows advances through several windows of
// many edges each and checks, after every window, that the batch repair left
// each landmark vector bit-identical to a fresh BFS on that prefix — the
// property the ApplyAll refactor must preserve per window, not just at the
// end of the stream — and that the cumulative repair stats reflect the work.
func TestLandmarkTrackerMultiEdgeWindows(t *testing.T) {
	ev := growingStream(t, 200, 9)
	start := ev.NumEdges() / 2
	landmarks := []int{0, 3, 7}
	tr, err := NewLandmarkTracker(ev, landmarks, start)
	if err != nil {
		t.Fatal(err)
	}
	step := (ev.NumEdges() - start) / 4
	if step < 2 {
		t.Fatalf("stream too short for multi-edge windows: %d edges", ev.NumEdges())
	}
	for prefix := start + step; prefix <= ev.NumEdges(); prefix += step {
		if err := tr.AdvanceTo(prefix); err != nil {
			t.Fatal(err)
		}
		g := ev.SnapshotPrefix(tr.Prefix())
		for i, w := range landmarks {
			want := sssp.Distances(g, w)
			got := tr.Distances(i)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("prefix %d landmark %d: dist[%d] = %d, want %d",
						prefix, w, v, got[v], want[v])
				}
			}
		}
	}
	if err := tr.AdvanceTo(ev.NumEdges()); err != nil {
		t.Fatal(err)
	}
	st := tr.RepairStats()
	if st.Changed == 0 || st.Nodes == 0 || st.FrontierPeak == 0 {
		t.Fatalf("repair stats should be non-zero after multi-edge windows: %+v", st)
	}
}

func TestLandmarkTrackerValidation(t *testing.T) {
	ev := growingStream(t, 50, 7)
	if _, err := NewLandmarkTracker(ev, nil, 10); err == nil {
		t.Fatal("no landmarks should fail")
	}
	if _, err := NewLandmarkTracker(ev, []int{9999}, 10); err == nil {
		t.Fatal("out-of-range landmark should fail")
	}
}

// TestWatchWindowTelemetry: every window of a Watch leaves one
// "watch-window" flight record (the nested TopK adds its own "topk" record)
// and one monitor.window_ns histogram observation carrying the window's
// budget report.
func TestWatchWindowTelemetry(t *testing.T) {
	ev := growingStream(t, 120, 5)
	histBefore := windowNS.Snapshot()
	totalBefore := obs.Flight.Total()
	reports, err := Watch(ev, []float64{0.6, 0.8, 1.0}, Config{
		Selector: candidates.MMSD(), M: 15, L: 4, MinDelta: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := windowNS.Snapshot().Sub(histBefore); d.Count != int64(len(reports)) {
		t.Errorf("window_ns delta count = %d, want %d", d.Count, len(reports))
	}
	appended := obs.Flight.Total() - totalBefore
	if appended != 2*int64(len(reports)) {
		t.Fatalf("watch appended %d flight records, want %d (one watch-window + one topk per window)",
			appended, 2*len(reports))
	}
	recs := obs.Flight.Last(int(appended))
	var windows []obs.RunRecord
	for _, r := range recs {
		if r.Kind == "watch-window" {
			windows = append(windows, r)
		}
	}
	if len(windows) != len(reports) {
		t.Fatalf("%d watch-window records, want %d", len(windows), len(reports))
	}
	for i, rec := range windows {
		rep := reports[i]
		want := obs.BudgetSplit{Limit: rep.Budget.Limit, CandidateGen: rep.Budget.CandidateGen, TopK: rep.Budget.TopK}
		if rec.Budget != want {
			t.Errorf("window %d flight budget %+v != report %+v", i, rec.Budget, want)
		}
		if rec.Outcome != "ok" || rec.Pairs != len(rep.Pairs) {
			t.Errorf("window %d record = outcome %q pairs %d, want ok/%d", i, rec.Outcome, rec.Pairs, len(rep.Pairs))
		}
		if rec.Phases.Total <= 0 {
			t.Errorf("window %d has non-positive total %d", i, rec.Phases.Total)
		}
	}
}
