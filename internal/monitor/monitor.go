// Package monitor watches an evolving graph over consecutive windows of its
// edge stream and reports the converging pairs of each window under a
// budget — the "continuous" deployment mode the paper's applications
// (friend recommendation, fraud rings, protein interactions) imply. It also
// provides a streaming landmark tracker that keeps landmark distance
// vectors fresh with incremental BFS (internal/dynsssp) instead of
// recomputing them per window, so a long-running monitor pays the landmark
// SSSP cost once.
package monitor

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/dynsssp"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topk"
)

// Config controls a windowed watch.
type Config struct {
	// Selector generates candidate endpoints per window; required.
	Selector candidates.Selector
	// M is the per-window endpoint budget; required.
	M int
	// L is the landmark count for landmark-based selectors (0 = default).
	L int
	// MinDelta reports pairs whose distance dropped by at least this much
	// (0 means 2 — monitoring distance drops of 1 is usually noise).
	MinDelta int32
	// Seed drives randomized selectors.
	Seed int64
	// Workers bounds BFS parallelism.
	Workers int
	// Trace, when non-nil, records one span per monitoring window (with the
	// per-phase spans of each window's Algorithm 1 run nested inside), so a
	// long watch shows where its windows and SSSPs went.
	Trace *obs.Trace
}

// WindowReport is the outcome of one monitoring window.
type WindowReport struct {
	// StartFrac and EndFrac are the window bounds as stream fractions.
	StartFrac, EndFrac float64
	// NewEdges is the number of edge insertions inside the window.
	NewEdges int
	// Pairs are the converging pairs detected, canonical order.
	Pairs []topk.Pair
	// Budget is the SSSP spending of the window's run.
	Budget budget.Report
}

// Watch slices the stream at the given ascending fractions and runs the
// budgeted converging-pairs algorithm on every consecutive pair of
// snapshots. len(fractions) must be >= 2.
func Watch(ev *graph.Evolving, fractions []float64, cfg Config) ([]WindowReport, error) {
	if cfg.Selector == nil {
		return nil, errors.New("monitor: no selector configured")
	}
	if cfg.M <= 0 {
		return nil, fmt.Errorf("monitor: non-positive budget m=%d", cfg.M)
	}
	if len(fractions) < 2 {
		return nil, fmt.Errorf("monitor: need at least 2 fractions, got %d", len(fractions))
	}
	if !sort.Float64sAreSorted(fractions) {
		return nil, fmt.Errorf("monitor: fractions must ascend: %v", fractions)
	}
	minDelta := cfg.MinDelta
	if minDelta <= 0 {
		minDelta = 2
	}
	var reports []WindowReport
	for i := 1; i < len(fractions); i++ {
		f1, f2 := fractions[i-1], fractions[i]
		span := cfg.Trace.StartSpan("window",
			obs.Int("index", i-1), obs.Float("start", f1), obs.Float("end", f2))
		pair, err := ev.Pair(f1, f2)
		if err != nil {
			span.End()
			return nil, fmt.Errorf("monitor: window [%v, %v]: %w", f1, f2, err)
		}
		var res *core.Result
		// The pprof label attributes each iteration's work to the monitor
		// subsystem in profiles of long-running watches.
		pprof.Do(context.Background(), pprof.Labels("subsystem", "monitor-window"),
			func(context.Context) {
				res, err = core.TopK(pair, core.Options{
					Selector: cfg.Selector,
					M:        cfg.M,
					L:        cfg.L,
					MinDelta: minDelta,
					Seed:     cfg.Seed + int64(i),
					Workers:  cfg.Workers,
					Trace:    cfg.Trace,
				})
			})
		if err != nil {
			span.End()
			return nil, fmt.Errorf("monitor: window [%v, %v]: %w", f1, f2, err)
		}
		span.Set(obs.Int("new-edges", pair.G2.NumEdges()-pair.G1.NumEdges()),
			obs.Int("pairs", len(res.Pairs)))
		span.End()
		reports = append(reports, WindowReport{
			StartFrac: f1,
			EndFrac:   f2,
			NewEdges:  pair.G2.NumEdges() - pair.G1.NumEdges(),
			Pairs:     res.Pairs,
			Budget:    res.Budget,
		})
	}
	return reports, nil
}

// EvenWindows returns count+1 fractions splitting [start, 1] evenly — a
// convenience for Watch.
func EvenWindows(start float64, count int) []float64 {
	if count < 1 || start < 0 || start >= 1 {
		return nil
	}
	out := make([]float64, count+1)
	step := (1 - start) / float64(count)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	out[count] = 1
	return out
}

// LandmarkTracker maintains the distance vectors of a fixed landmark set
// across the stream with incremental BFS. A checkpoint freezes the current
// vectors as the comparison baseline; after advancing further, nodes can be
// ranked by how much closer they came to the landmarks since the
// checkpoint — the streaming analogue of the SumDiff/MaxDiff selectors with
// zero per-window SSSP cost after setup.
type LandmarkTracker struct {
	ev        *graph.Evolving
	landmarks []int
	trackers  []*dynsssp.DynamicBFS
	prefix    int       // edges applied so far
	baseline  [][]int32 // checkpointed vectors, one per landmark
}

// NewLandmarkTracker initializes the tracker at the given edge prefix. The
// initial cost is one BFS per landmark (the budget the paper's landmark
// methods pay per snapshot — paid once here for the whole stream).
func NewLandmarkTracker(ev *graph.Evolving, landmarks []int, startPrefix int) (*LandmarkTracker, error) {
	if len(landmarks) == 0 {
		return nil, errors.New("monitor: no landmarks")
	}
	g := ev.SnapshotPrefix(startPrefix)
	t := &LandmarkTracker{ev: ev, landmarks: landmarks, prefix: startPrefix}
	for _, w := range landmarks {
		d, err := dynsssp.New(g, w)
		if err != nil {
			return nil, fmt.Errorf("monitor: landmark %d: %w", w, err)
		}
		t.trackers = append(t.trackers, d)
	}
	t.Checkpoint()
	return t, nil
}

// Prefix returns the number of stream edges applied so far.
func (t *LandmarkTracker) Prefix() int { return t.prefix }

// Checkpoint freezes the current landmark vectors as the baseline for
// subsequent Top rankings.
func (t *LandmarkTracker) Checkpoint() {
	t.baseline = t.baseline[:0]
	for _, d := range t.trackers {
		t.baseline = append(t.baseline, append([]int32(nil), d.Distances()...))
	}
}

// AdvanceTo applies stream edges up to the given prefix (clamped to the
// stream length). Going backwards is an error: insertions are not
// reversible.
func (t *LandmarkTracker) AdvanceTo(prefix int) error {
	if prefix > t.ev.NumEdges() {
		prefix = t.ev.NumEdges()
	}
	if prefix < t.prefix {
		return fmt.Errorf("monitor: cannot rewind from %d to %d", t.prefix, prefix)
	}
	slice := t.ev.Stream()[t.prefix:prefix]
	for _, d := range t.trackers {
		if _, err := d.ApplyStream(slice); err != nil {
			return err
		}
	}
	t.prefix = prefix
	return nil
}

// AdvanceToFraction is AdvanceTo at a stream fraction.
func (t *LandmarkTracker) AdvanceToFraction(frac float64) error {
	return t.AdvanceTo(int(frac * float64(t.ev.NumEdges())))
}

// Top returns the m nodes whose total distance to the landmarks dropped the
// most since the last checkpoint (the streaming SumDiff ranking).
func (t *LandmarkTracker) Top(m int) []int {
	n := t.ev.NumNodes()
	l1 := make([]int64, n)
	buf := make([]int32, 0)
	for i, d := range t.trackers {
		if cap(buf) < d.NumNodes() {
			buf = make([]int32, d.NumNodes())
		}
		buf = buf[:d.NumNodes()]
		// Baselines never outgrow the tracker (nodes are only added).
		if err := d.DeltaSince(t.baseline[i], buf); err != nil {
			// Internal invariant violation; surface loudly.
			panic(err)
		}
		for v, delta := range buf {
			if v < n {
				l1[v] += int64(delta)
			}
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if l1[idx[a]] != l1[idx[b]] {
			return l1[idx[a]] > l1[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if m > len(idx) {
		m = len(idx)
	}
	return idx[:m]
}

// SSSPCostSaved estimates the SSSPs a per-window recomputation would have
// spent versus the tracker's incremental maintenance: windows * 2l full BFS
// versus the l initial ones.
func (t *LandmarkTracker) SSSPCostSaved(windows int) int {
	return windows*2*len(t.landmarks) - len(t.landmarks)
}
