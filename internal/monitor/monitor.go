// Package monitor watches an evolving graph over consecutive windows of its
// edge stream and reports the converging pairs of each window under a
// budget — the "continuous" deployment mode the paper's applications
// (friend recommendation, fraud rings, protein interactions) imply. It also
// provides a streaming landmark tracker that keeps landmark distance
// vectors fresh with incremental BFS (internal/dynsssp) instead of
// recomputing them per window, so a long-running monitor pays the landmark
// SSSP cost once.
package monitor

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/dynsssp"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sssp"
	"repro/internal/topk"
)

// Config controls a windowed watch.
type Config struct {
	// Selector generates candidate endpoints per window; required.
	Selector candidates.Selector
	// M is the per-window endpoint budget; required.
	M int
	// L is the landmark count for landmark-based selectors (0 = default).
	L int
	// MinDelta reports pairs whose distance dropped by at least this much
	// (0 means 2 — monitoring distance drops of 1 is usually noise).
	MinDelta int32
	// Seed drives randomized selectors.
	Seed int64
	// Workers bounds BFS parallelism.
	Workers int
	// Trace, when non-nil, records one span per monitoring window (with the
	// per-phase spans of each window's Algorithm 1 run nested inside), so a
	// long watch shows where its windows and SSSPs went.
	Trace *obs.Trace
}

// windowNS is the per-window wall-time distribution of Watch: one sample per
// window span, inclusive of snapshot materialization and the window's TopK
// run, so a long watch exposes its window p50/p99 on /metrics.
var windowNS = obs.NewHistogram("monitor.window_ns")

// WindowReport is the outcome of one monitoring window.
type WindowReport struct {
	// StartFrac and EndFrac are the window bounds as stream fractions.
	StartFrac, EndFrac float64
	// NewEdges is the number of edge insertions inside the window.
	NewEdges int
	// Pairs are the converging pairs detected, canonical order.
	Pairs []topk.Pair
	// Budget is the SSSP spending of the window's run.
	Budget budget.Report
}

// Watch slices the stream at the given ascending fractions and runs the
// budgeted converging-pairs algorithm on every consecutive pair of
// snapshots. len(fractions) must be >= 2.
//
// Watch is now a replay client of the epoch substrate: the stream is fed
// through a graph.Ingester (pinned to the stream's full node universe, so
// selector RNG draws match a full-universe run exactly), each fraction cut
// seals an epoch, and every consecutive epoch pair is queried through a
// core.Session over a pinned store window — the same machinery a live
// convserve deployment runs, exercised here in batch. Snapshots, results,
// and budget reports are identical to materializing prefixes directly.
func Watch(ev *graph.Evolving, fractions []float64, cfg Config) ([]WindowReport, error) {
	if cfg.Selector == nil {
		return nil, errors.New("monitor: no selector configured")
	}
	if cfg.M <= 0 {
		return nil, fmt.Errorf("monitor: non-positive budget m=%d", cfg.M)
	}
	if len(fractions) < 2 {
		return nil, fmt.Errorf("monitor: need at least 2 fractions, got %d", len(fractions))
	}
	if !sort.Float64sAreSorted(fractions) {
		return nil, fmt.Errorf("monitor: fractions must ascend: %v", fractions)
	}
	minDelta := cfg.MinDelta
	if minDelta <= 0 {
		minDelta = 2
	}
	// Replay the stream into the epoch store, sealing one epoch per fraction.
	ing := graph.NewIngester(graph.IngesterOptions{Universe: ev.NumNodes()})
	stream := ev.Stream()
	prefix := 0
	for _, f := range fractions {
		cut := int(f * float64(len(stream)))
		if cut > len(stream) {
			cut = len(stream)
		}
		if cut > prefix {
			if _, err := ing.IngestBatch(stream[prefix:cut]); err != nil {
				return nil, fmt.Errorf("monitor: ingest to fraction %v: %w", f, err)
			}
			prefix = cut
		}
		ing.Seal()
	}
	store := ing.Store()
	var reports []WindowReport
	for i := 1; i < len(fractions); i++ {
		f1, f2 := fractions[i-1], fractions[i]
		//convlint:nondet window latency is observational, not part of results
		winStart := time.Now()
		// One flight record per window (Kind "watch-window", Total phase
		// only); the nested TopK run appends its own "topk" record with the
		// per-phase split.
		rec := obs.RunRecord{
			Kind:        "watch-window",
			Fingerprint: fmt.Sprintf("window=%d start=%v end=%v selector=%s m=%d", i-1, f1, f2, cfg.Selector.Name(), cfg.M),
			Outcome:     "ok",
		}
		endWindow := func(err error) {
			//convlint:nondet window latency is observational, not part of results
			rec.Phases.Total = time.Since(winStart).Nanoseconds()
			windowNS.Observe(rec.Phases.Total)
			if err != nil {
				rec.Outcome = err.Error()
			}
			obs.Flight.Append(rec)
		}
		span := cfg.Trace.StartSpan("window",
			obs.Int("index", i-1), obs.Float("start", f1), obs.Float("end", f2))
		fail := func(err error) ([]WindowReport, error) {
			span.End()
			endWindow(err)
			return nil, fmt.Errorf("monitor: window [%v, %v]: %w", f1, f2, err)
		}
		if !(f1 < f2) {
			return fail(fmt.Errorf("graph: snapshot fractions must satisfy f1 < f2, got %v >= %v", f1, f2))
		}
		// Epoch i holds the fractions[i-1] prefix (seals are 1-based).
		win, err := store.Window(i, i+1)
		if err != nil {
			return fail(err)
		}
		sess, err := core.NewSession(win.Pair, core.SessionConfig{})
		if err != nil {
			win.Close()
			return fail(err)
		}
		var res *core.Result
		// Each window pays the paper's standard 2m allowance from its own
		// meter, exactly as the one-shot default would allocate.
		meter := budget.NewMeter(cfg.M)
		// The pprof label attributes each iteration's work to the monitor
		// subsystem in profiles of long-running watches.
		pprof.Do(context.Background(), pprof.Labels("subsystem", "monitor-window"),
			func(context.Context) {
				res, err = sess.TopK(context.Background(), core.Options{
					Selector: cfg.Selector,
					M:        cfg.M,
					L:        cfg.L,
					MinDelta: minDelta,
					Seed:     cfg.Seed + int64(i),
					Workers:  cfg.Workers,
					Trace:    cfg.Trace,
					Meter:    meter,
				})
			})
		newEdges := win.Pair.G2.NumEdges() - win.Pair.G1.NumEdges()
		win.Close()
		if err != nil {
			return fail(err)
		}
		span.Set(obs.Int("new-edges", newEdges),
			obs.Int("pairs", len(res.Pairs)))
		span.End()
		rec.Budget = obs.BudgetSplit{Limit: res.Budget.Limit, CandidateGen: res.Budget.CandidateGen, TopK: res.Budget.TopK}
		rec.Candidates = len(res.Candidates)
		rec.Pairs = len(res.Pairs)
		endWindow(nil)
		reports = append(reports, WindowReport{
			StartFrac: f1,
			EndFrac:   f2,
			NewEdges:  newEdges,
			Pairs:     res.Pairs,
			Budget:    res.Budget,
		})
	}
	return reports, nil
}

// EvenWindows returns count+1 fractions splitting [start, 1] evenly — a
// convenience for Watch.
func EvenWindows(start float64, count int) []float64 {
	if count < 1 || start < 0 || start >= 1 {
		return nil
	}
	out := make([]float64, count+1)
	step := (1 - start) / float64(count)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	out[count] = 1
	return out
}

// LandmarkTracker maintains the distance vectors of a fixed landmark set
// across the stream with incremental BFS. A checkpoint freezes the current
// vectors as the comparison baseline; after advancing further, nodes can be
// ranked by how much closer they came to the landmarks since the
// checkpoint — the streaming analogue of the SumDiff/MaxDiff selectors with
// zero per-window SSSP cost after setup.
//
// Each advance materializes the target snapshot once (CSR shared read-only
// across landmarks) and batch-repairs every landmark vector over the
// window's edge delta with dynsssp.Scratch.ApplyAll — one seed pass and one
// level-ordered wave per landmark per window, instead of the former
// one-wave-per-edge insertion loop over per-landmark adjacency copies.
type LandmarkTracker struct {
	ev        *graph.Evolving
	landmarks []int
	dists     [][]int32 // current vectors, one per landmark
	scratch   *dynsssp.Scratch
	edgebuf   []graph.Edge
	prefix    int       // edges applied so far
	baseline  [][]int32 // checkpointed vectors, one per landmark
	repair    dynsssp.Stats
}

// NewLandmarkTracker initializes the tracker at the given edge prefix. The
// initial cost is one BFS per landmark (the budget the paper's landmark
// methods pay per snapshot — paid once here for the whole stream).
//
//convlint:unbudgeted one-time setup BFS per landmark; SSSPCostSaved accounts the l SSSPs this construction pays
func NewLandmarkTracker(ev *graph.Evolving, landmarks []int, startPrefix int) (*LandmarkTracker, error) {
	if len(landmarks) == 0 {
		return nil, errors.New("monitor: no landmarks")
	}
	n := ev.NumNodes()
	g := ev.SnapshotPrefix(startPrefix)
	t := &LandmarkTracker{
		ev:        ev,
		landmarks: landmarks,
		prefix:    startPrefix,
		scratch:   dynsssp.NewScratch(),
	}
	for _, w := range landmarks {
		if w < 0 || w >= n {
			return nil, fmt.Errorf("monitor: landmark %d out of range [0,%d)", w, n)
		}
		vec := make([]int32, n)
		sssp.BFS(g, w, vec)
		t.dists = append(t.dists, vec)
	}
	t.Checkpoint()
	return t, nil
}

// Prefix returns the number of stream edges applied so far.
func (t *LandmarkTracker) Prefix() int { return t.prefix }

// Distances returns landmark i's current distance vector; the slice aliases
// internal state and must not be modified.
func (t *LandmarkTracker) Distances(i int) []int32 { return t.dists[i] }

// RepairStats returns the cumulative batch-repair work of every AdvanceTo so
// far (FrontierPeak is the high-water mark across repairs) — the traversal
// the tracker performed instead of windows×l full recomputations.
func (t *LandmarkTracker) RepairStats() dynsssp.Stats { return t.repair }

// Checkpoint freezes the current landmark vectors as the baseline for
// subsequent Top rankings.
func (t *LandmarkTracker) Checkpoint() {
	t.baseline = t.baseline[:0]
	for _, d := range t.dists {
		t.baseline = append(t.baseline, append([]int32(nil), d...))
	}
}

// AdvanceTo applies stream edges up to the given prefix (clamped to the
// stream length). Going backwards is an error: insertions are not
// reversible.
//
//convlint:unbudgeted incremental repair is the cost the tracker avoids; its setup SSSPs were paid in NewLandmarkTracker
func (t *LandmarkTracker) AdvanceTo(prefix int) error {
	if prefix > t.ev.NumEdges() {
		prefix = t.ev.NumEdges()
	}
	if prefix < t.prefix {
		return fmt.Errorf("monitor: cannot rewind from %d to %d", t.prefix, prefix)
	}
	if prefix == t.prefix {
		return nil
	}
	slice := t.ev.Stream()[t.prefix:prefix]
	t.edgebuf = t.edgebuf[:0]
	for _, te := range slice {
		t.edgebuf = append(t.edgebuf, graph.Edge{U: te.U, V: te.V})
	}
	// One snapshot materialization per advance, shared by all landmarks.
	g2 := t.ev.SnapshotPrefix(prefix)
	for i := range t.dists {
		st := t.scratch.ApplyAll(g2, t.edgebuf, t.dists[i])
		t.repair.Changed += st.Changed
		t.repair.Nodes += st.Nodes
		t.repair.Edges += st.Edges
		if st.FrontierPeak > t.repair.FrontierPeak {
			t.repair.FrontierPeak = st.FrontierPeak
		}
	}
	t.prefix = prefix
	return nil
}

// AdvanceToFraction is AdvanceTo at a stream fraction.
func (t *LandmarkTracker) AdvanceToFraction(frac float64) error {
	return t.AdvanceTo(int(frac * float64(t.ev.NumEdges())))
}

// Top returns the m nodes whose total distance to the landmarks dropped the
// most since the last checkpoint (the streaming SumDiff ranking). A node
// unreachable at the checkpoint contributes nothing (it was not connected,
// hence not converging), matching dynsssp.DeltaSince semantics.
func (t *LandmarkTracker) Top(m int) []int {
	n := t.ev.NumNodes()
	l1 := make([]int64, n)
	for i, cur := range t.dists {
		base := t.baseline[i]
		for v := 0; v < n; v++ {
			b := base[v]
			if b <= 0 {
				continue
			}
			if c := cur[v]; c >= 0 && c < b {
				l1[v] += int64(b - c)
			}
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if l1[idx[a]] != l1[idx[b]] {
			return l1[idx[a]] > l1[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if m > len(idx) {
		m = len(idx)
	}
	return idx[:m]
}

// SSSPCostSaved estimates the SSSPs a per-window recomputation would have
// spent versus the tracker's incremental maintenance: windows * 2l full BFS
// versus the l initial ones.
func (t *LandmarkTracker) SSSPCostSaved(windows int) int {
	return windows*2*len(t.landmarks) - len(t.landmarks)
}
