package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/bipartite"
)

// ActorsAffiliation generates the Actors workload in its native bipartite
// form — the actor–movie affiliation stream the co-appearance graph is a
// projection of. The same casting process as Actors drives it (movies
// arrive over time, casts mix debutants with preferentially picked
// veterans), so Project(0) on the result reproduces an Actors-like
// evolving co-appearance graph while keeping the movie side available for
// bipartite analyses (the related-work [21] setting).
func ActorsAffiliation(cfg Config) (*bipartite.Stream, error) {
	const paperNodes = 10900
	target := int(float64(paperNodes) * cfg.scale())
	if target < 20 {
		return nil, fmt.Errorf("datagen: ActorsAffiliation scale %v too small (%d actors)", cfg.scale(), target)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var events []bipartite.Membership
	var tstamp int64
	pick := &prefPicker{}
	actors := 0
	newActor := func() int {
		u := actors
		actors++
		pick.addNode(u)
		return u
	}
	movies := 0
	join := func(actor, movie int) {
		events = append(events, bipartite.Membership{Left: actor, Right: movie, Time: tstamp})
		tstamp++
	}

	// Seed movie so preferential picks have a pool.
	m0 := movies
	movies++
	for i := 0; i < 3; i++ {
		a := newActor()
		join(a, m0)
		pick.addNode(a) // extra weight for the founding cast
	}

	for actors < target {
		movie := movies
		movies++
		castSize := 2
		for castSize < 8 && rng.Float64() < 0.42 {
			castSize++
		}
		inCast := map[int]bool{}
		for len(inCast) < castSize {
			var a int
			if rng.Float64() < 0.33 {
				a = newActor()
			} else {
				a = pick.pick(rng)
			}
			if inCast[a] {
				continue
			}
			inCast[a] = true
			join(a, movie)
			pick.addNode(a) // appearing in a movie raises future casting odds
		}
	}
	return bipartite.NewStream(events)
}
