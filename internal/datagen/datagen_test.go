package datagen

import (
	"testing"

	"repro/internal/graph"
)

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := Config{Seed: 7, Scale: 0.02}
			a, err := ByName(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ByName(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
				t.Fatalf("non-deterministic sizes: %d/%d vs %d/%d",
					a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
			}
			sa, sb := a.Stream(), b.Stream()
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("stream diverges at %d: %v vs %v", i, sa[i], sb[i])
				}
			}
			// A different seed must give a different stream.
			c, err := ByName(name, Config{Seed: 8, Scale: 0.02})
			if err != nil {
				t.Fatal(err)
			}
			same := c.NumEdges() == a.NumEdges()
			if same {
				sc := c.Stream()
				same = false
				for i := range sa {
					if sa[i] != sc[i] {
						break
					}
					if i == len(sa)-1 {
						same = true
					}
				}
			}
			if same {
				t.Fatal("seed has no effect")
			}
		})
	}
}

func TestGeneratorsStructure(t *testing.T) {
	// Structural regime assertions per dataset (DESIGN.md §4) at small scale.
	type regime struct {
		name          string
		minEdgePerNod float64 // average degree / 2 lower bound
		maxEdgePerNod float64
	}
	for _, r := range []regime{
		{"Actors", 2.0, 8.0},
		{"InternetLinks", 2.0, 6.0},
		{"Facebook", 3.0, 9.0},
		{"DBLP", 1.2, 4.0},
	} {
		r := r
		t.Run(r.name, func(t *testing.T) {
			ev, err := ByName(r.name, Config{Seed: 3, Scale: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			g := ev.SnapshotFraction(1.0)
			ratio := float64(g.NumEdges()) / float64(g.NumNodes())
			if ratio < r.minEdgePerNod || ratio > r.maxEdgePerNod {
				t.Fatalf("%s edge/node ratio %.2f outside [%.1f, %.1f]",
					r.name, ratio, r.minEdgePerNod, r.maxEdgePerNod)
			}
			// Snapshots are valid pairs.
			sp, err := ev.Pair(0.8, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			if err := sp.Validate(); err != nil {
				t.Fatal(err)
			}
			// The largest component holds a majority of present nodes
			// everywhere except DBLP, which intentionally leaves a fringe.
			comp, _ := graph.LargestComponent(g)
			frac := float64(len(comp)) / float64(g.NumNodes())
			if r.name == "DBLP" {
				if frac > 0.95 {
					t.Fatalf("DBLP giant component %.2f, want a disconnected fringe", frac)
				}
			} else if frac < 0.5 {
				t.Fatalf("%s giant component %.2f too small", r.name, frac)
			}
		})
	}
}

func TestHubbinessInternet(t *testing.T) {
	ev, err := InternetAS(Config{Seed: 11, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	g := ev.SnapshotFraction(1.0)
	// Heavy-tailed: max degree should dwarf the average degree.
	avg := 2 * float64(g.NumEdges()) / float64(g.NumNodes())
	if float64(g.MaxDegree()) < 8*avg {
		t.Fatalf("Internet max degree %d not hubby (avg %.1f)", g.MaxDegree(), avg)
	}
}

func TestDensityOrdering(t *testing.T) {
	// Facebook and Actors are the densest regimes; DBLP the sparsest.
	den := map[string]float64{}
	for _, name := range Names {
		ev, err := ByName(name, Config{Seed: 5, Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		den[name] = ev.SnapshotFraction(1.0).Density()
	}
	if den["DBLP"] >= den["Facebook"] {
		t.Fatalf("density(DBLP)=%g >= density(Facebook)=%g", den["DBLP"], den["Facebook"])
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", Config{}); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestScaleTooSmall(t *testing.T) {
	for _, name := range Names {
		if _, err := ByName(name, Config{Seed: 1, Scale: 0.0001}); err == nil {
			t.Fatalf("%s: microscopic scale should fail", name)
		}
	}
}

func TestActorsAffiliation(t *testing.T) {
	s, err := ActorsAffiliation(Config{Seed: 13, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLeft() < 20 || s.NumRight() < 5 {
		t.Fatalf("sizes: %d actors, %d movies", s.NumLeft(), s.NumRight())
	}
	// The projection is a valid evolving co-appearance graph with a usable
	// snapshot pair.
	ev, err := s.Project(0)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := ev.Pair(0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic in the seed.
	s2, err := ActorsAffiliation(Config{Seed: 13, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumEvents() != s.NumEvents() {
		t.Fatal("non-deterministic")
	}
	if _, err := ActorsAffiliation(Config{Seed: 1, Scale: 0.0001}); err == nil {
		t.Fatal("microscopic scale should fail")
	}
}
