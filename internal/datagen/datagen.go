// Package datagen generates the synthetic stand-ins for the paper's four
// evaluation datasets (IMDB Actors, AS-level Internet links, Facebook
// friendships, DBLP co-authorships), which are not redistributable. Each
// generator emits a deterministic timestamped edge stream whose structural
// regime matches what the paper's analysis attributes the dataset's behavior
// to:
//
//   - Actors: a dense affiliation (actor–movie) model projected to
//     co-appearance cliques — dense neighborhoods where many converging
//     pairs collapse to distance 1 and degree-based selection works.
//   - InternetAS: preferential attachment with peering densification —
//     heavy-tailed hub topology, short distances, tiny vertex covers.
//   - Facebook: growth with triadic closure plus occasional long links —
//     a social graph of moderate diameter.
//   - DBLP: community-structured small collaboration teams — sparse, large
//     diameter, a sizeable population outside the giant component.
//
// All algorithms in the paper consume only structure (degrees, distances,
// betweenness), so matching these regimes preserves the evaluated behavior;
// see DESIGN.md §4 for the substitution rationale.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Config controls a generator run.
type Config struct {
	// Seed makes the stream deterministic.
	Seed int64
	// Scale multiplies the paper-size node target (1.0 = the sizes of the
	// paper's Table 2; experiments default to a fraction so exact all-pairs
	// ground truth stays cheap). Zero means 1.0.
	Scale float64
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

// stream accumulates a deduplicated, time-ordered edge stream.
type stream struct {
	edges []graph.TimedEdge
	seen  map[graph.Edge]struct{}
}

func newStream(capHint int) *stream {
	return &stream{seen: make(map[graph.Edge]struct{}, capHint)}
}

// add appends edge {u, v} if new; reports whether it was added.
func (s *stream) add(u, v int) bool {
	if u == v {
		return false
	}
	c := graph.Edge{U: u, V: v}.Canon()
	if _, dup := s.seen[c]; dup {
		return false
	}
	s.seen[c] = struct{}{}
	s.edges = append(s.edges, graph.TimedEdge{U: u, V: v, Time: int64(len(s.edges))})
	return true
}

func (s *stream) build() (*graph.Evolving, error) { return graph.NewEvolving(s.edges) }

// prefPicker samples existing nodes proportionally to degree + smoothing,
// the standard preferential-attachment sampler: it keeps a multiset of node
// IDs with one copy per incident edge endpoint plus baseline copies.
type prefPicker struct {
	pool []int
}

func (p *prefPicker) addNode(u int) { p.pool = append(p.pool, u) } // baseline copy
func (p *prefPicker) addEdge(u, v int) {
	p.pool = append(p.pool, u, v)
}
func (p *prefPicker) pick(rng *rand.Rand) int { return p.pool[rng.Intn(len(p.pool))] }

// Actors simulates the IMDB co-appearance graph: movies arrive over time;
// each movie's cast is a mix of debutant and established (preferentially
// picked) actors, and all cast members become pairwise connected.
func Actors(cfg Config) (*graph.Evolving, error) {
	const paperNodes = 10900
	target := int(float64(paperNodes) * cfg.scale())
	if target < 20 {
		return nil, fmt.Errorf("datagen: Actors scale %v too small (%d nodes)", cfg.scale(), target)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := newStream(6 * target)
	pick := &prefPicker{}

	nodes := 0
	newActor := func() int {
		u := nodes
		nodes++
		pick.addNode(u)
		return u
	}
	// Seed cast so preferential picks have a pool.
	first := []int{newActor(), newActor(), newActor()}
	s.add(first[0], first[1])
	s.add(first[0], first[2])
	s.add(first[1], first[2])
	pick.addEdge(first[0], first[1])
	pick.addEdge(first[0], first[2])
	pick.addEdge(first[1], first[2])

	for nodes < target {
		// Cast size: 2 + geometric-ish tail, mean ≈ 3.8.
		castSize := 2
		for castSize < 8 && rng.Float64() < 0.47 {
			castSize++
		}
		cast := make([]int, 0, castSize)
		inCast := map[int]bool{}
		for len(cast) < castSize {
			var a int
			if rng.Float64() < 0.30 { // debutant rate
				a = newActor()
			} else {
				a = pick.pick(rng)
			}
			if inCast[a] {
				continue
			}
			inCast[a] = true
			cast = append(cast, a)
		}
		for i := 0; i < len(cast); i++ {
			for j := i + 1; j < len(cast); j++ {
				if s.add(cast[i], cast[j]) {
					pick.addEdge(cast[i], cast[j])
				}
			}
		}
	}
	return s.build()
}

// InternetAS simulates AS-level Internet topology: new autonomous systems
// attach preferentially to providers (creating heavy-tailed hubs), and
// existing systems keep adding peering links between already-present nodes,
// densifying the core over time.
func InternetAS(cfg Config) (*graph.Evolving, error) {
	const paperNodes = 25500
	target := int(float64(paperNodes) * cfg.scale())
	if target < 20 {
		return nil, fmt.Errorf("datagen: InternetAS scale %v too small (%d nodes)", cfg.scale(), target)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := newStream(5 * target)
	pick := &prefPicker{}

	s.add(0, 1)
	s.add(0, 2)
	s.add(1, 2)
	pick.addNode(0)
	pick.addNode(1)
	pick.addNode(2)
	pick.addEdge(0, 1)
	pick.addEdge(0, 2)
	pick.addEdge(1, 2)
	nodes := 3

	for nodes < target {
		u := nodes
		nodes++
		pick.addNode(u)
		// Multihoming: 1-4 provider links, preferential.
		links := 1 + rng.Intn(4)
		for i := 0; i < links; i++ {
			v := pick.pick(rng)
			if s.add(u, v) {
				pick.addEdge(u, v)
			}
		}
		// Peering densification: with probability ~1.1 links per arrival,
		// connect two existing systems, both preferentially picked (core
		// densification, the regime behind the dataset's tiny covers).
		for extra := 0; extra < 2; extra++ {
			if rng.Float64() < 0.70 {
				a, b := pick.pick(rng), pick.pick(rng)
				if s.add(a, b) {
					pick.addEdge(a, b)
				}
			}
		}
	}
	return s.build()
}

// Facebook simulates a friendship graph: new users join by befriending an
// existing member, then triadic closure wires them to friends-of-friends;
// established users also keep closing triangles, with occasional random
// long-range friendships.
func Facebook(cfg Config) (*graph.Evolving, error) {
	const paperNodes = 4700
	target := int(float64(paperNodes) * cfg.scale())
	if target < 20 {
		return nil, fmt.Errorf("datagen: Facebook scale %v too small (%d nodes)", cfg.scale(), target)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := newStream(8 * target)
	pick := &prefPicker{}
	adj := make([][]int32, 0, target) // mirror adjacency for closure sampling

	link := func(u, v int) bool {
		if !s.add(u, v) {
			return false
		}
		pick.addEdge(u, v)
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
		return true
	}
	addNode := func() int {
		u := len(adj)
		adj = append(adj, nil)
		pick.addNode(u)
		return u
	}
	a, b := addNode(), addNode()
	link(a, b)

	for len(adj) < target {
		u := addNode()
		anchor := pick.pick(rng)
		for anchor == u {
			anchor = pick.pick(rng)
		}
		link(u, anchor)
		// Friend-of-friend closure for the newcomer: 3-7 attempts.
		attempts := 3 + rng.Intn(5)
		for i := 0; i < attempts; i++ {
			if len(adj[anchor]) == 0 {
				break
			}
			w := int(adj[anchor][rng.Intn(len(adj[anchor]))])
			if w != u {
				link(u, w)
			}
		}
		// Ongoing activity among established users: close a random wedge,
		// and occasionally add a long random link.
		for i := 0; i < 2; i++ {
			x := pick.pick(rng)
			if len(adj[x]) < 2 {
				continue
			}
			y := int(adj[x][rng.Intn(len(adj[x]))])
			z := int(adj[x][rng.Intn(len(adj[x]))])
			if y != z {
				link(y, z)
			}
		}
		if rng.Float64() < 0.05 {
			link(rng.Intn(len(adj)), rng.Intn(len(adj)))
		}
	}
	return s.build()
}

// DBLP simulates a co-authorship graph: authors belong to research
// communities; papers are written by small teams drawn mostly from one
// community (weighted toward productive authors), with rare cross-community
// collaborations. The result is sparse, has a large diameter, and leaves
// many authors outside the giant component — the regime of the paper's DBLP
// snapshot.
func DBLP(cfg Config) (*graph.Evolving, error) {
	const paperNodes = 18000
	target := int(float64(paperNodes) * cfg.scale())
	if target < 40 {
		return nil, fmt.Errorf("datagen: DBLP scale %v too small (%d nodes)", cfg.scale(), target)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := newStream(3 * target)

	numCommunities := target / 45
	if numCommunities < 2 {
		numCommunities = 2
	}
	community := make([][]int, numCommunities) // community -> member list (with productivity copies)
	nodes := 0
	newAuthor := func(c int) int {
		u := nodes
		nodes++
		community[c] = append(community[c], u)
		return u
	}
	for c := range community {
		newAuthor(c)
	}

	for nodes < target {
		c := rng.Intn(numCommunities)
		// Team of 2-4 authors, mean ≈ 2.6.
		teamSize := 2
		for teamSize < 4 && rng.Float64() < 0.35 {
			teamSize++
		}
		team := make([]int, 0, teamSize)
		inTeam := map[int]bool{}
		for len(team) < teamSize {
			var a int
			switch {
			case rng.Float64() < 0.40: // new author joins the field
				a = newAuthor(c)
			case rng.Float64() < 0.06: // cross-community collaborator
				other := rng.Intn(numCommunities)
				a = community[other][rng.Intn(len(community[other]))]
			default: // productive member of the community
				a = community[c][rng.Intn(len(community[c]))]
			}
			if inTeam[a] {
				continue
			}
			inTeam[a] = true
			team = append(team, a)
		}
		for i := 0; i < len(team); i++ {
			for j := i + 1; j < len(team); j++ {
				if s.add(team[i], team[j]) {
					// Productivity weighting: authors who publish appear
					// more often in their community pool.
					community[c] = append(community[c], team[i], team[j])
				}
			}
		}
	}
	return s.build()
}

// Names lists the dataset generators in the paper's order.
var Names = []string{"Actors", "InternetLinks", "Facebook", "DBLP"}

// ByName dispatches to the named generator ("Actors", "InternetLinks",
// "Facebook", "DBLP").
func ByName(name string, cfg Config) (*graph.Evolving, error) {
	switch name {
	case "Actors":
		return Actors(cfg)
	case "InternetLinks":
		return InternetAS(cfg)
	case "Facebook":
		return Facebook(cfg)
	case "DBLP":
		return DBLP(cfg)
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (known: %v)", name, Names)
	}
}
