package embed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/graph"
	"repro/internal/topk"
)

func pathGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.FromEdges(n, edges)
}

func gridGraph(side int) *graph.Graph {
	b := graph.NewBuilder(side * side)
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				_ = b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < side {
				_ = b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

func TestEmbedValidation(t *testing.T) {
	g := pathGraph(5)
	rng := rand.New(rand.NewSource(1))
	if _, err := Embed(g, []int{0}, nil, Options{}, rng); err == nil {
		t.Error("single landmark should fail")
	}
	if _, err := Embed(g, []int{0, 4}, nil, Options{}, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := Embed(g, []int{0, 4}, [][]int32{{0}}, Options{}, rng); err == nil {
		t.Error("row count mismatch should fail")
	}
}

func TestEmbedPathAccuracy(t *testing.T) {
	// A path embeds perfectly in 1+ dimensions; expect low error.
	g := pathGraph(20)
	rng := rand.New(rand.NewSource(2))
	e, err := Embed(g, []int{0, 19, 10}, nil, Options{Dim: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mae := e.MeanAbsoluteError(g, []int{0, 5, 10, 19})
	if mae > 1.0 {
		t.Fatalf("path MAE = %v, want <= 1", mae)
	}
	// Monotonicity spot check: far pairs estimate farther than near pairs.
	if e.Estimate(0, 19) < e.Estimate(0, 3) {
		t.Fatalf("estimate(0,19)=%v < estimate(0,3)=%v",
			e.Estimate(0, 19), e.Estimate(0, 3))
	}
}

func TestEmbedGridAccuracy(t *testing.T) {
	g := gridGraph(8) // 64 nodes, diameter 14
	rng := rand.New(rand.NewSource(3))
	e, err := Embed(g, []int{0, 7, 56, 63, 27}, nil, Options{Dim: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mae := e.MeanAbsoluteError(g, []int{0, 27, 63})
	// Grid distances are L1-ish; a Euclidean embedding distorts but should
	// stay within ~30% of the diameter on average.
	if mae > 4.0 {
		t.Fatalf("grid MAE = %v, want <= 4", mae)
	}
}

func TestEmbedDisconnected(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	rng := rand.New(rand.NewSource(4))
	e, err := Embed(g, []int{0, 2}, nil, Options{Dim: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if e.Reached[3] || e.Reached[5] {
		t.Fatal("other component should be unreached")
	}
	if !math.IsInf(e.Estimate(0, 3), 1) {
		t.Fatal("estimate to unreached node should be +Inf")
	}
	out := make([]float64, 2)
	e.EstimateToMany(0, []int{1, 3}, out)
	if math.IsInf(out[0], 1) || !math.IsInf(out[1], 1) {
		t.Fatalf("EstimateToMany = %v", out)
	}
}

func snapshotWithChord(n int) graph.SnapshotPair {
	g1 := pathGraph(n)
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		_ = b.AddEdge(i, i+1)
	}
	_ = b.AddEdge(0, n-1)
	return graph.SnapshotPair{G1: g1, G2: b.Build()}
}

func TestSelectorFindsChordEndpoints(t *testing.T) {
	sp := snapshotWithChord(30)
	sel := NewSelector(Options{Dim: 3}, 20)
	if sel.Name() != "EmbedSum" {
		t.Fatal("name")
	}
	ctx := &candidates.Context{
		Pair: sp, M: 8, L: 3,
		RNG:   rand.New(rand.NewSource(5)),
		Meter: budget.NewMeter(8), Workers: 2,
	}
	cands, err := sel.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 8 {
		t.Fatalf("got %d candidates, want m=8", len(cands))
	}
	// Budget: 2l on candidate generation, like the hybrids.
	if rep := ctx.Meter.Report(); rep.CandidateGen != 6 {
		t.Fatalf("charged %d, want 2l=6", rep.CandidateGen)
	}
	// The chord endpoints' region must be represented: coverage of the top
	// pair (0, 29).
	set := topk.NodeSet(cands)
	top := topk.Pair{U: 0, V: 29}
	if !set[top.U] && !set[top.V] {
		t.Fatalf("candidates %v miss both chord endpoints", cands)
	}
	// Anchor rows must be cached on both snapshots.
	cached := 0
	for u := range ctx.D1Rows {
		if ctx.D2Rows[u] != nil {
			cached++
		}
	}
	if cached < 3 {
		t.Fatalf("only %d anchor rows cached", cached)
	}
}

func TestSelectorDeadZone(t *testing.T) {
	sp := snapshotWithChord(20)
	sel := NewSelector(Options{}, 10)
	ctx := &candidates.Context{
		Pair: sp, M: 2, L: 5,
		RNG:   rand.New(rand.NewSource(6)),
		Meter: budget.NewMeter(2),
	}
	if _, err := sel.Select(ctx); err == nil {
		t.Fatal("m <= l should fail with dead zone")
	}
	ctx.RNG = nil
	ctx.M = 20
	if _, err := sel.Select(ctx); err == nil {
		t.Fatal("nil RNG should fail")
	}
}
