package embed

import (
	"fmt"
	"sort"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/landmark"
	"repro/internal/sssp"
)

// selector is the embedding-based candidate generator: embed both snapshots
// over the same dispersed anchors (paying the usual 2l landmark budget),
// then rank every node by its estimated total distance decrease to a random
// probe sample — pairs the landmark-vector methods cannot score, because
// probes need no BFS of their own in the embedded space.
type selector struct {
	opts   Options
	probes int
}

// NewSelector builds the embedding selector. probes is the size of the
// random probe sample the ranking integrates over (0 means 64).
func NewSelector(opts Options, probes int) candidates.Selector {
	if probes <= 0 {
		probes = 64
	}
	return selector{opts: opts, probes: probes}
}

func (selector) Name() string { return "EmbedSum" }

func (s selector) Select(ctx *candidates.Context) ([]int, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if ctx.RNG == nil {
		return nil, fmt.Errorf("candidates: EmbedSum requires an RNG")
	}
	l := ctx.Landmarks()
	if ctx.M <= l {
		return nil, fmt.Errorf("%w: m=%d <= l=%d anchors", candidates.ErrBudgetTooSmall, ctx.M, l)
	}
	// The embedding optimizer consumes raw adjacency, so this selector only
	// runs on unweighted (BFS-backed) snapshots.
	pair, err := ctx.Unweighted()
	if err != nil {
		return nil, fmt.Errorf("EmbedSum: %w", err)
	}
	// Dispersed anchors; selection BFS rows double as the G_t1 rows.
	set, err := landmark.Select(landmark.MaxMin, pair.G1, l, ctx.RNG, ctx.Meter)
	if err != nil {
		return nil, fmt.Errorf("EmbedSum: %w", err)
	}
	if err := ctx.Meter.Charge(budget.PhaseCandidateGen, len(set.Nodes)); err != nil {
		return nil, fmt.Errorf("EmbedSum: G_t2 anchor rows: %w", err)
	}
	d2rows := sssp.DistanceMatrix(pair.G2, set.Nodes, ctx.Workers)
	for i, w := range set.Nodes {
		ctx.CacheD1(w, set.D1[i])
		ctx.CacheD2(w, d2rows[i])
	}

	e1, err := Embed(pair.G1, set.Nodes, set.D1, s.opts, ctx.RNG)
	if err != nil {
		return nil, fmt.Errorf("EmbedSum: embed G_t1: %w", err)
	}
	e2, err := Embed(pair.G2, set.Nodes, d2rows, s.opts, ctx.RNG)
	if err != nil {
		return nil, fmt.Errorf("EmbedSum: embed G_t2: %w", err)
	}

	// Probe sample: random nodes present in G_t1.
	n := pair.G1.NumNodes()
	present := make([]int, 0, n)
	for u := 0; u < n; u++ {
		if pair.G1.Degree(u) > 0 {
			present = append(present, u)
		}
	}
	if len(present) == 0 {
		return nil, nil
	}
	probes := s.probes
	if probes > len(present) {
		probes = len(present)
	}
	sample := make([]int, probes)
	for i, j := range ctx.RNG.Perm(len(present))[:probes] {
		sample[i] = present[j]
	}

	score := make([]float64, n)
	for _, u := range present {
		if !e1.Reached[u] || !e2.Reached[u] {
			continue
		}
		var total float64
		for _, p := range sample {
			if p == u || !e1.Reached[p] || !e2.Reached[p] {
				continue
			}
			drop := e1.Estimate(u, p) - e2.Estimate(u, p)
			if drop > 0 {
				total += drop
			}
		}
		score[u] = total
	}
	// Like the hybrids, the dispersed anchors join the candidate set (their
	// rows are already paid for), topped up with the best-ranked nodes.
	inAnchors := make(map[int]bool, len(set.Nodes))
	for _, w := range set.Nodes {
		inAnchors[w] = true
	}
	idx := make([]int, 0, len(present))
	for _, u := range present {
		if !inAnchors[u] {
			idx = append(idx, u)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if score[idx[a]] != score[idx[b]] {
			return score[idx[a]] > score[idx[b]]
		}
		return idx[a] < idx[b]
	})
	m := ctx.M - len(set.Nodes)
	if m > len(idx) {
		m = len(idx)
	}
	return append(append([]int(nil), set.Nodes...), idx[:m]...), nil
}
