// Package embed implements an Orion-style graph embedding: nodes are mapped
// into a low-dimensional Euclidean space so that coordinate distances
// approximate shortest-path distances. The paper names this (its ref [25])
// as future work for landmark selection and distance estimation — "it is
// beyond the scope of this work" — so this package is the library's
// implementation of that extension.
//
// The construction follows Orion's two stages: a small set of anchor
// landmarks is embedded first by fitting their exact pairwise distances
// (spring relaxation), then every other node is placed independently by
// minimizing the squared error to its BFS distances from the anchors. The
// only shortest-path cost is the anchors' BFS rows — the same 2l budget the
// paper's landmark methods pay — after which any pair's distance can be
// estimated in O(dim).
package embed

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// Embedding holds Euclidean coordinates for every node of a snapshot.
type Embedding struct {
	// Dim is the embedding dimensionality.
	Dim int
	// Coords[u] is node u's coordinate vector.
	Coords [][]float64
	// Landmarks are the anchor nodes whose BFS rows shaped the space.
	Landmarks []int
	// Reached marks nodes reachable from at least one anchor; estimates
	// involving unreached nodes are meaningless and reported as +Inf.
	Reached []bool
}

// Options tunes the embedding optimization.
type Options struct {
	// Dim is the space dimensionality; 0 means 6 (Orion found 5-7 ideal).
	Dim int
	// AnchorIters bounds the spring iterations of the anchor stage; 0 = 200.
	AnchorIters int
	// NodeIters bounds the per-node placement steps; 0 = 50.
	NodeIters int
	// Workers is accepted for symmetry; placement is cheap enough serially.
	Workers int
}

func (o Options) dim() int {
	if o.Dim <= 0 {
		return 6
	}
	return o.Dim
}

// Embed builds the embedding of g. rows[i] must be the BFS distance vector
// of landmarks[i] on g (the caller usually has them — landmark.Set.D1 or a
// budgeted DistanceMatrix); pass nil to let Embed compute them (unmetered).
//
//convlint:unbudgeted budgeted callers pass pre-charged rows; nil rows is an explicitly unmetered convenience
func Embed(g *graph.Graph, landmarks []int, rows [][]int32, opts Options, rng *rand.Rand) (*Embedding, error) {
	l := len(landmarks)
	if l < 2 {
		return nil, errors.New("embed: need at least 2 landmarks")
	}
	if rng == nil {
		return nil, errors.New("embed: nil rng")
	}
	if rows == nil {
		rows = sssp.DistanceMatrix(g, landmarks, opts.Workers)
	}
	if len(rows) != l {
		return nil, fmt.Errorf("embed: %d rows for %d landmarks", len(rows), l)
	}
	n := g.NumNodes()
	dim := opts.dim()
	anchorIters := opts.AnchorIters
	if anchorIters <= 0 {
		anchorIters = 200
	}
	nodeIters := opts.NodeIters
	if nodeIters <= 0 {
		nodeIters = 50
	}

	e := &Embedding{
		Dim:       dim,
		Coords:    make([][]float64, n),
		Landmarks: append([]int(nil), landmarks...),
		Reached:   make([]bool, n),
	}
	backing := make([]float64, n*dim)
	for u := 0; u < n; u++ {
		e.Coords[u] = backing[u*dim : (u+1)*dim : (u+1)*dim]
	}

	// Stage 1: embed the anchors against their exact pairwise distances.
	// rows[i][landmarks[j]] is d(L_i, L_j).
	anchors := make([][]float64, l)
	for i := range anchors {
		anchors[i] = make([]float64, dim)
		for d := range anchors[i] {
			anchors[i][d] = rng.NormFloat64()
		}
	}
	springFit(anchors, func(i, j int) float64 {
		d := rows[i][landmarks[j]]
		if d < 0 {
			return -1 // different components: no constraint
		}
		return float64(d)
	}, anchorIters)

	// Stage 2: place every node against its anchor distances.
	target := make([]float64, l)
	for u := 0; u < n; u++ {
		known := 0
		for i := 0; i < l; i++ {
			d := rows[i][u]
			target[i] = float64(d)
			if d >= 0 {
				known++
			}
		}
		if known == 0 {
			continue // unreachable from every anchor
		}
		e.Reached[u] = true
		// Warm start at the centroid of the nearest anchor, jittered.
		nearest := 0
		for i := 1; i < l; i++ {
			if target[i] >= 0 && (target[nearest] < 0 || target[i] < target[nearest]) {
				nearest = i
			}
		}
		for d := 0; d < dim; d++ {
			e.Coords[u][d] = anchors[nearest][d] + 0.1*rng.NormFloat64()
		}
		placeNode(e.Coords[u], anchors, target, nodeIters)
	}
	// Anchors get their stage-1 coordinates exactly.
	for i, w := range landmarks {
		copy(e.Coords[w], anchors[i])
		e.Reached[w] = true
	}
	return e, nil
}

// springFit relaxes the points so pairwise Euclidean distances approach
// dist(i, j); dist < 0 means unconstrained.
func springFit(pts [][]float64, dist func(i, j int) float64, iters int) {
	l := len(pts)
	dim := len(pts[0])
	step := 0.1
	for it := 0; it < iters; it++ {
		for i := 0; i < l; i++ {
			for j := i + 1; j < l; j++ {
				want := dist(i, j)
				if want < 0 {
					continue
				}
				got := euclid(pts[i], pts[j])
				if got < 1e-9 {
					// Coincident points: push apart along a deterministic axis.
					pts[j][it%dim] += 1e-3
					got = euclid(pts[i], pts[j])
				}
				// Move both endpoints along the connecting line by half the
				// error each (classic spring update).
				coef := step * (want - got) / got / 2
				for d := 0; d < dim; d++ {
					delta := coef * (pts[j][d] - pts[i][d])
					pts[j][d] += delta
					pts[i][d] -= delta
				}
			}
		}
		step *= 0.99
	}
}

// placeNode runs gradient descent on sum_i (||x - a_i|| - t_i)^2 for the
// anchors with t_i >= 0.
func placeNode(x []float64, anchors [][]float64, target []float64, iters int) {
	dim := len(x)
	step := 0.2
	for it := 0; it < iters; it++ {
		for i, a := range anchors {
			want := target[i]
			if want < 0 {
				continue
			}
			got := euclid(x, a)
			if got < 1e-9 {
				x[it%dim] += 1e-3
				got = euclid(x, a)
			}
			// Gradient of (||x-a|| - t)^2 is 2(||x-a||-t)(x-a)/||x-a||;
			// descending it moves x along the ray through a until the
			// distance matches the target.
			coef := step * (want - got) / got
			for d := 0; d < dim; d++ {
				x[d] += coef * (x[d] - a[d])
			}
		}
		step *= 0.97
	}
}

func euclid(a, b []float64) float64 {
	var s float64
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// Estimate returns the embedded distance between u and v, or +Inf when
// either node was unreachable from every anchor.
func (e *Embedding) Estimate(u, v int) float64 {
	if !e.Reached[u] || !e.Reached[v] {
		return math.Inf(1)
	}
	return euclid(e.Coords[u], e.Coords[v])
}

// EstimateToMany fills out[i] with the estimated distance from u to each of
// the given nodes.
func (e *Embedding) EstimateToMany(u int, nodes []int, out []float64) {
	for i, v := range nodes {
		out[i] = e.Estimate(u, v)
	}
}

// MeanAbsoluteError measures the embedding's accuracy against exact BFS
// distances from the given probe sources (a diagnostics helper; it performs
// len(probes) BFS computations).
//
//convlint:unbudgeted accuracy diagnostics outside any budgeted run; probe cost is documented above
func (e *Embedding) MeanAbsoluteError(g *graph.Graph, probes []int) float64 {
	var sum float64
	var count int
	dist := make([]int32, g.NumNodes())
	for _, src := range probes {
		sssp.BFS(g, src, dist)
		for v, d := range dist {
			if d <= 0 || !e.Reached[src] || !e.Reached[v] {
				continue
			}
			sum += math.Abs(e.Estimate(src, v) - float64(d))
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
