// Package dynsssp maintains single-source shortest-path distances under
// edge insertions — the incremental alternative the paper contrasts its
// approach with (its refs [7, 23]). A DynamicBFS tracks the distance vector
// of one source over a growing graph; inserting an edge triggers a bounded
// relaxation wave that touches only the nodes whose distance actually
// drops, instead of recomputing the whole BFS.
//
// The monitoring package uses it to keep landmark distance vectors fresh
// across sliding windows, and an ablation benchmark compares incremental
// maintenance against full recomputation.
package dynsssp

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// DynamicBFS maintains the BFS distances from a fixed source over a mutable
// undirected graph. The graph lives inside the structure (adjacency lists),
// because insertions must be visible to subsequent relaxations.
type DynamicBFS struct {
	src  int
	adj  [][]int32
	dist []int32
	// scratch backs the batch repair kernel; allocated on first ApplyBatch.
	scratch *Scratch
	// stats
	inserted   int
	touched    int
	lastRepair Stats
}

// New builds a DynamicBFS from an initial snapshot. The snapshot's adjacency
// is copied; later Graph mutations do not affect it.
//
//convlint:unbudgeted one-time construction BFS; the streaming monitor charges its l setup SSSPs when it builds trackers
func New(g *graph.Graph, src int) (*DynamicBFS, error) {
	n := g.NumNodes()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("dynsssp: source %d out of range [0,%d)", src, n)
	}
	d := &DynamicBFS{
		src:  src,
		adj:  make([][]int32, n),
		dist: make([]int32, n),
	}
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		d.adj[u] = append(make([]int32, 0, len(nbrs)), nbrs...)
	}
	sssp.BFS(g, src, d.dist)
	return d, nil
}

// Source returns the fixed BFS source.
func (d *DynamicBFS) Source() int { return d.src }

// NumNodes returns the current node-universe size.
func (d *DynamicBFS) NumNodes() int { return len(d.adj) }

// Dist returns the current distance from the source to u
// (sssp.Unreachable if none).
func (d *DynamicBFS) Dist(u int) int32 { return d.dist[u] }

// Distances returns the full distance vector; the slice aliases internal
// state and must not be modified.
func (d *DynamicBFS) Distances() []int32 { return d.dist }

// Stats reports how many insertions were processed and how many node
// relaxations they triggered — the work saved versus full recomputation.
func (d *DynamicBFS) Stats() (inserted, touched int) { return d.inserted, d.touched }

// EnsureNode grows the node universe to include u (isolated until edges
// arrive).
func (d *DynamicBFS) EnsureNode(u int) {
	for len(d.adj) <= u {
		d.adj = append(d.adj, nil)
		d.dist = append(d.dist, sssp.Unreachable)
	}
}

// InsertEdge adds the undirected edge {u, v} and incrementally repairs the
// distance vector. Self-loops are ignored; duplicate edges are tolerated
// (they trigger no relaxation). Returns the number of nodes whose distance
// changed.
func (d *DynamicBFS) InsertEdge(u, v int) (changed int, err error) {
	if u < 0 || v < 0 {
		return 0, fmt.Errorf("dynsssp: negative node in edge (%d, %d)", u, v)
	}
	if u == v {
		return 0, nil
	}
	d.EnsureNode(u)
	d.EnsureNode(v)
	d.adj[u] = append(d.adj[u], int32(v))
	d.adj[v] = append(d.adj[v], int32(u))
	d.inserted++

	// Seed the relaxation wave with whichever endpoint improves.
	var queue []int32
	du, dv := d.dist[u], d.dist[v]
	switch {
	case du >= 0 && (dv < 0 || dv > du+1):
		d.dist[v] = du + 1
		queue = append(queue, int32(v))
		changed++
	case dv >= 0 && (du < 0 || du > dv+1):
		d.dist[u] = dv + 1
		queue = append(queue, int32(u))
		changed++
	default:
		return 0, nil
	}
	// Standard decrease-only BFS wave: each pop may improve its neighbors
	// by exactly one level. A node can re-enter the queue only with a
	// strictly smaller distance, so the wave terminates.
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		d.touched++
		dx := d.dist[x]
		for _, y := range d.adj[x] {
			if d.dist[y] < 0 || d.dist[y] > dx+1 {
				d.dist[y] = dx + 1
				queue = append(queue, y)
				changed++
			}
		}
	}
	return changed, nil
}

// ApplyStream replays a batch of timed edges (e.g. one evolution slice),
// returning the total number of distance changes. It delegates to the batch
// repair kernel: one seed pass over the whole slice, one level-ordered wave.
//
//convlint:unbudgeted thin alias for ApplyBatch; callers charge (or suppress) at that entry point
func (d *DynamicBFS) ApplyStream(edges []graph.TimedEdge) (changed int, err error) {
	return d.ApplyBatch(edges)
}

// ApplyBatch inserts a batch of undirected edges and repairs the distance
// vector with one decrease-only wave over the combined delta, instead of one
// wave per edge. Self-loops are skipped; duplicate edges are tolerated.
// Unknown nodes grow the universe. Returns the number of distance
// improvements applied.
func (d *DynamicBFS) ApplyBatch(edges []graph.TimedEdge) (changed int, err error) {
	//convlint:nondet repair latency is observational, not part of results
	start := time.Now()
	for i, te := range edges {
		if te.U < 0 || te.V < 0 {
			return 0, fmt.Errorf("dynsssp: negative node in edges[%d] = (%d, %d)", i, te.U, te.V)
		}
	}
	for _, te := range edges {
		if te.U == te.V {
			continue
		}
		if te.U >= len(d.adj) || te.V >= len(d.adj) {
			d.EnsureNode(te.U)
			d.EnsureNode(te.V)
		}
		d.adj[te.U] = append(d.adj[te.U], int32(te.V))
		d.adj[te.V] = append(d.adj[te.V], int32(te.U))
		d.inserted++
	}
	if d.scratch == nil {
		d.scratch = NewScratch()
	}
	s := d.scratch
	s.seeds = s.seeds[:0]
	seedChanged := 0
	for _, te := range edges {
		if te.U != te.V {
			seedChanged += s.seedEdge(d.dist, int32(te.U), int32(te.V))
		}
	}
	var a listAdj
	a.lists = d.adj
	st := repairWave(s, a, d.dist)
	st.Changed += seedChanged
	d.touched += st.Nodes
	d.lastRepair = st
	sssp.RecordRepair(int64(st.Nodes), int64(st.Edges), int64(st.FrontierPeak), start)
	return st.Changed, nil
}

// RepairStats returns the Stats of the most recent ApplyBatch/ApplyStream
// call (zero value before the first batch).
func (d *DynamicBFS) RepairStats() Stats { return d.lastRepair }

// Stats reports the size of one batch repair: how much traversal the
// decrease-only wave performed instead of a full BFS.
type Stats struct {
	// Changed counts distance improvements applied (seed relaxations plus
	// wave relaxations). A node improved twice counts twice.
	Changed int
	// Nodes and Edges count wave node visits and adjacency scans — the
	// traversal the repair actually did; compare against V and 2E of a
	// fresh BFS to see the savings.
	Nodes int
	Edges int
	// FrontierPeak is the largest single-level wave frontier.
	FrontierPeak int
}

// Scratch holds the reusable buffers of the batch repair kernel: the seed
// (level<<32|node) queue, its counting-sort scatter buffer and level
// histogram, and the two wave frontiers. One Scratch serves one goroutine;
// workers of a parallel sweep each own one.
type Scratch struct {
	seeds  []int64
	sorted []int64
	counts []int32
	cur    []int32
	next   []int32
	// cnt backs the bounded wave's histogram of d1 values over nodes whose
	// final repaired distance is not yet determined (see repairWaveBounded).
	cnt []int32
}

// NewScratch returns an empty Scratch; buffers grow on first use and are
// reused afterwards (the repair kernel is zero-alloc in steady state).
func NewScratch() *Scratch {
	return &Scratch{}
}

// seedEdge relaxes one inserted edge {u, v} against dist, recording any
// improved endpoint as a wave seed. Returns 1 if a distance improved.
//
//convlint:hotpath
func (s *Scratch) seedEdge(dist []int32, u, v int32) int {
	du, dv := dist[u], dist[v]
	if du >= 0 && (dv < 0 || dv > du+1) {
		nd := du + 1
		dist[v] = nd
		s.seeds = append(s.seeds, int64(nd)<<32|int64(v))
		return 1
	}
	if dv >= 0 && (du < 0 || du > dv+1) {
		nd := dv + 1
		dist[u] = nd
		s.seeds = append(s.seeds, int64(nd)<<32|int64(u))
		return 1
	}
	return 0
}

// ApplyAll repairs dist — a valid distance vector of some source on g1 ⊆ g2
// — into the corresponding vector on g2, where delta is the edge difference
// g2 \ g1 (graph.NewDelta). The caller typically copies the t1 row and
// hands the copy here; after the call dist is bit-identical to a fresh BFS
// on g2 from the same source. Self-loops in delta are skipped and duplicate
// edges are tolerated. Panics on a dist/universe size mismatch or an
// out-of-range delta node: those are programming errors of the paired-sweep
// plumbing, not data errors.
//
// The repair is decrease-only (insertions never increase a distance): each
// delta edge seeds at most one improved endpoint, seeds are processed in
// level order, and the wave re-relaxes the full g2 adjacency of every
// improved node, so all shortest-path constraints involving new edges are
// re-enforced while untouched regions are never traversed.
//
//convlint:hotpath
func (s *Scratch) ApplyAll(g2 *graph.Graph, delta []graph.Edge, dist []int32) Stats {
	//convlint:nondet repair latency is observational, not part of results
	start := time.Now()
	n := g2.NumNodes()
	if len(dist) != n {
		panic(fmt.Sprintf("dynsssp: dist length %d, graph has %d nodes", len(dist), n))
	}
	s.seeds = s.seeds[:0]
	seedChanged := 0
	for i := 0; i < len(delta); {
		u := delta[i].U
		if u < 0 || u >= n {
			panic(fmt.Sprintf("dynsssp: delta[%d] = (%d, %d) out of range [0,%d)", i, u, delta[i].V, n))
		}
		// dist[u] is cached across the run of consecutive edges sharing u
		// (NewDelta emits them grouped): within the run only the v-side
		// branch below can write dist[u], and it refreshes the cache, so du
		// is always exact. Ungrouped input just means shorter runs.
		du := dist[u]
		for ; i < len(delta) && delta[i].U == u; i++ {
			v := delta[i].V
			if v < 0 || v >= n {
				panic(fmt.Sprintf("dynsssp: delta[%d] = (%d, %d) out of range [0,%d)", i, u, v, n))
			}
			if v == u {
				continue
			}
			dv := dist[v]
			if du >= 0 && (dv < 0 || dv > du+1) {
				nd := du + 1
				dist[v] = nd
				s.seeds = append(s.seeds, int64(nd)<<32|int64(v))
				seedChanged++
			} else if dv >= 0 && (du < 0 || du > dv+1) {
				du = dv + 1
				dist[u] = du
				s.seeds = append(s.seeds, int64(du)<<32|int64(u))
				seedChanged++
			}
		}
	}
	var a csrAdj
	a.offsets, a.nbrs = g2.CSR()
	st := repairWave(s, a, dist)
	st.Changed += seedChanged
	sssp.RecordRepair(int64(st.Nodes), int64(st.Edges), int64(st.FrontierPeak), start)
	return st
}

// ApplyAllBounded is ApplyAll under a Δ-threshold: dist (the caller's copy
// of the t1 row d1) is repaired toward the g2 distances, but the wave stops
// as soon as the threshold returned by bound proves no still-undetermined
// node can reach the top-k. Like the bounded BFS (sssp.PrunedSecondBFS),
// the cut relies on the growing-snapshot contract: repairs only ever
// decrease distances, a node repaired while the wave is at level Λ ends at
// a final distance >= Λ, so its delta d1−d2 is at most maxRem − Λ, with
// maxRem the largest d1 among not-yet-finalized nodes.
//
// On a cut, pending seeds still holding their tentative values are restored
// to d1 (delta 0): keeping a tentative, possibly improvable distance would
// leak a pair with a wrong D2 into the raw pair list, while delta 0 is
// discarded by the extraction floor. Returns true if the wave was cut; the
// resulting dist is then only valid for delta extraction against d1 and
// must not be cached as a real distance row.
//
//convlint:hotpath
func (s *Scratch) ApplyAllBounded(g2 *graph.Graph, delta []graph.Edge, dist, d1 []int32, bound func() int32) (Stats, bool) {
	//convlint:nondet repair latency is observational, not part of results
	start := time.Now()
	n := g2.NumNodes()
	if len(dist) != n || len(d1) != n {
		panic(fmt.Sprintf("dynsssp: dist length %d, d1 length %d, graph has %d nodes", len(dist), len(d1), n))
	}
	s.seeds = s.seeds[:0]
	seedChanged := 0
	for i := 0; i < len(delta); {
		u := delta[i].U
		if u < 0 || u >= n {
			panic(fmt.Sprintf("dynsssp: delta[%d] = (%d, %d) out of range [0,%d)", i, u, delta[i].V, n))
		}
		du := dist[u]
		for ; i < len(delta) && delta[i].U == u; i++ {
			v := delta[i].V
			if v < 0 || v >= n {
				panic(fmt.Sprintf("dynsssp: delta[%d] = (%d, %d) out of range [0,%d)", i, u, v, n))
			}
			if v == u {
				continue
			}
			dv := dist[v]
			if du >= 0 && (dv < 0 || dv > du+1) {
				nd := du + 1
				dist[v] = nd
				s.seeds = append(s.seeds, int64(nd)<<32|int64(v))
				seedChanged++
			} else if dv >= 0 && (du < 0 || du > dv+1) {
				du = dv + 1
				dist[u] = du
				s.seeds = append(s.seeds, int64(du)<<32|int64(u))
				seedChanged++
			}
		}
	}
	var a csrAdj
	a.offsets, a.nbrs = g2.CSR()
	st, cut := repairWaveBounded(s, a, dist, d1, bound)
	st.Changed += seedChanged
	sssp.RecordRepair(int64(st.Nodes), int64(st.Edges), int64(st.FrontierPeak), start)
	return st, cut
}

// adjacency abstracts the two graph representations the repair wave runs
// over: the immutable CSR of a snapshot and the mutable adjacency lists of a
// DynamicBFS. Concrete struct type parameters keep the dispatch static.
type adjacency interface {
	neighborsOf(u int32) []int32
}

type csrAdj struct {
	offsets []int32
	nbrs    []int32
}

func (a csrAdj) neighborsOf(u int32) []int32 { return a.nbrs[a.offsets[u]:a.offsets[u+1]] }

type listAdj struct {
	lists [][]int32
}

func (a listAdj) neighborsOf(u int32) []int32 { return a.lists[u] }

// sortSeedsByLevel orders s.seeds level-major with a counting sort: levels
// are small dense integers (bounded by the graph's diameter), so two linear
// passes beat a comparison sort on every realistic seed batch. Node order
// within a level is arbitrary, which the wave tolerates — its stale check is
// by level only.
//
//convlint:hotpath
func sortSeedsByLevel(s *Scratch) {
	seeds := s.seeds
	if len(seeds) < 2 {
		return
	}
	maxLevel := int32(0)
	for _, sd := range seeds {
		if l := int32(sd >> 32); l > maxLevel {
			maxLevel = l
		}
	}
	for len(s.counts) <= int(maxLevel) {
		s.counts = append(s.counts, 0)
	}
	counts := s.counts[:maxLevel+1]
	clear(counts)
	for _, sd := range seeds {
		counts[sd>>32]++
	}
	var off int32
	for l, c := range counts {
		counts[l] = off
		off += c
	}
	for len(s.sorted) < len(seeds) {
		s.sorted = append(s.sorted, 0)
	}
	sorted := s.sorted[:len(seeds)]
	for _, sd := range seeds {
		l := sd >> 32
		sorted[counts[l]] = sd
		counts[l]++
	}
	s.seeds, s.sorted = sorted, seeds[:0]
}

// repairWave runs the level-ordered decrease-only wave over the seeds in
// s.seeds (already applied to dist by seedEdge). Seeds are sorted by their
// (level, node) encoding and merged into the frontier level by level; a seed
// whose node has since improved below its level is stale and skipped
// (dist[node] != level). During the wave a node is improved at most once
// after seeding — any improver sits one level below and was itself already
// processed — so every frontier is duplicate-free and the wave visits each
// changed node exactly once.
//
//convlint:hotpath
func repairWave[A adjacency](s *Scratch, adj A, dist []int32) Stats {
	sortSeedsByLevel(s)
	cur := s.cur[:0]
	next := s.next[:0]
	seeds := s.seeds
	si := 0
	var level int32
	var st Stats
	for si < len(seeds) || len(cur) > 0 {
		if len(cur) == 0 {
			level = int32(seeds[si] >> 32) // jump over empty levels to the next seed
		}
		for si < len(seeds) && int32(seeds[si]>>32) == level {
			v := int32(uint32(seeds[si]))
			si++
			if dist[v] == level {
				cur = append(cur, v)
			}
		}
		if len(cur) > st.FrontierPeak {
			st.FrontierPeak = len(cur)
		}
		nd := level + 1
		for _, u := range cur {
			st.Nodes++
			nbrs := adj.neighborsOf(u)
			st.Edges += len(nbrs)
			for _, v := range nbrs {
				if dist[v] < 0 || dist[v] > nd {
					dist[v] = nd
					next = append(next, v)
					st.Changed++
				}
			}
		}
		level++
		cur, next = next, cur[:0]
	}
	s.cur, s.next = cur[:0], next[:0]
	return st
}

// repairWaveBounded is repairWave with a Δ-threshold cut between levels.
// It keeps a histogram cnt[d] of d1 values over nodes whose final repaired
// distance is not yet determined: a node is finalized (and decremented) the
// moment it receives a value the wave can no longer improve — a wave
// relaxation write, or a seed merge confirming its tentative value at the
// current level. Untouched nodes stay counted: the wave might still reach
// them, so excluding them would be unsound; they only loosen the bound.
//
// At the top of each level iteration Λ (before merging Λ's seeds), every
// not-yet-finalized node has final distance >= Λ, hence delta <= maxRem − Λ.
// When that is strictly below the threshold, no such node can beat the kth
// pair — including ties at the threshold, which are kept — and the wave
// stops. Pending seeds still holding tentative values are restored to d1.
//
//convlint:hotpath
func repairWaveBounded[A adjacency](s *Scratch, adj A, dist, d1 []int32, bound func() int32) (Stats, bool) {
	sortSeedsByLevel(s)
	n := len(dist)
	for len(s.cnt) <= n {
		s.cnt = append(s.cnt, 0)
	}
	cnt := s.cnt[:n+1]
	clear(cnt)
	maxRem := int32(-1)
	for _, dv := range d1 {
		if dv > 0 {
			cnt[dv]++
			if dv > maxRem {
				maxRem = dv
			}
		}
	}
	cur := s.cur[:0]
	next := s.next[:0]
	seeds := s.seeds
	si := 0
	var level int32
	var st Stats
	cutFired := false
	for si < len(seeds) || len(cur) > 0 {
		if len(cur) == 0 {
			level = int32(seeds[si] >> 32)
		}
		b := bound()
		if b < 1 {
			b = 1
		}
		if maxRem-level < b {
			cutFired = true
			break
		}
		for si < len(seeds) && int32(seeds[si]>>32) == level {
			v := int32(uint32(seeds[si]))
			si++
			if dist[v] == level {
				cur = append(cur, v)
				if d1[v] > 0 {
					cnt[d1[v]]--
				}
			}
		}
		if len(cur) > st.FrontierPeak {
			st.FrontierPeak = len(cur)
		}
		nd := level + 1
		for _, u := range cur {
			st.Nodes++
			nbrs := adj.neighborsOf(u)
			st.Edges += len(nbrs)
			for _, v := range nbrs {
				if dist[v] < 0 || dist[v] > nd {
					dist[v] = nd
					next = append(next, v)
					st.Changed++
					if d1[v] > 0 {
						cnt[d1[v]]--
					}
				}
			}
		}
		for maxRem >= 0 && cnt[maxRem] == 0 {
			maxRem--
		}
		level++
		cur, next = next, cur[:0]
	}
	var restored int64
	if cutFired {
		for ; si < len(seeds); si++ {
			v := int32(uint32(seeds[si]))
			if dist[v] == int32(seeds[si]>>32) {
				dist[v] = d1[v]
				restored++
				st.Changed--
			}
		}
		sssp.RecordRepairCut(restored)
	}
	s.cur, s.next = cur[:0], next[:0]
	return st, cutFired
}

// DeltaSince compares the maintained distances against a baseline vector
// (typically the distances at an earlier snapshot) and reports, for every
// node, the decrease baseline - current, with unreachable-in-baseline nodes
// reported as 0 (they were not connected, hence not converging). The result
// is written into out, which must have length NumNodes().
func (d *DynamicBFS) DeltaSince(baseline []int32, out []int32) error {
	if len(baseline) > len(d.dist) || len(out) != len(d.dist) {
		return fmt.Errorf("dynsssp: baseline length %d, out length %d, have %d nodes",
			len(baseline), len(out), len(d.dist))
	}
	for v := range out {
		out[v] = 0
	}
	for v, b := range baseline {
		if b <= 0 {
			continue
		}
		cur := d.dist[v]
		if cur >= 0 && cur < b {
			out[v] = b - cur
		}
	}
	return nil
}
