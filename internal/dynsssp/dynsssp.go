// Package dynsssp maintains single-source shortest-path distances under
// edge insertions — the incremental alternative the paper contrasts its
// approach with (its refs [7, 23]). A DynamicBFS tracks the distance vector
// of one source over a growing graph; inserting an edge triggers a bounded
// relaxation wave that touches only the nodes whose distance actually
// drops, instead of recomputing the whole BFS.
//
// The monitoring package uses it to keep landmark distance vectors fresh
// across sliding windows, and an ablation benchmark compares incremental
// maintenance against full recomputation.
package dynsssp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// DynamicBFS maintains the BFS distances from a fixed source over a mutable
// undirected graph. The graph lives inside the structure (adjacency lists),
// because insertions must be visible to subsequent relaxations.
type DynamicBFS struct {
	src  int
	adj  [][]int32
	dist []int32
	// stats
	inserted int
	touched  int
}

// New builds a DynamicBFS from an initial snapshot. The snapshot's adjacency
// is copied; later Graph mutations do not affect it.
//
//convlint:unbudgeted one-time construction BFS; the streaming monitor charges its l setup SSSPs when it builds trackers
func New(g *graph.Graph, src int) (*DynamicBFS, error) {
	n := g.NumNodes()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("dynsssp: source %d out of range [0,%d)", src, n)
	}
	d := &DynamicBFS{
		src:  src,
		adj:  make([][]int32, n),
		dist: make([]int32, n),
	}
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		d.adj[u] = append(make([]int32, 0, len(nbrs)), nbrs...)
	}
	sssp.BFS(g, src, d.dist)
	return d, nil
}

// Source returns the fixed BFS source.
func (d *DynamicBFS) Source() int { return d.src }

// NumNodes returns the current node-universe size.
func (d *DynamicBFS) NumNodes() int { return len(d.adj) }

// Dist returns the current distance from the source to u
// (sssp.Unreachable if none).
func (d *DynamicBFS) Dist(u int) int32 { return d.dist[u] }

// Distances returns the full distance vector; the slice aliases internal
// state and must not be modified.
func (d *DynamicBFS) Distances() []int32 { return d.dist }

// Stats reports how many insertions were processed and how many node
// relaxations they triggered — the work saved versus full recomputation.
func (d *DynamicBFS) Stats() (inserted, touched int) { return d.inserted, d.touched }

// EnsureNode grows the node universe to include u (isolated until edges
// arrive).
func (d *DynamicBFS) EnsureNode(u int) {
	for len(d.adj) <= u {
		d.adj = append(d.adj, nil)
		d.dist = append(d.dist, sssp.Unreachable)
	}
}

// InsertEdge adds the undirected edge {u, v} and incrementally repairs the
// distance vector. Self-loops are ignored; duplicate edges are tolerated
// (they trigger no relaxation). Returns the number of nodes whose distance
// changed.
func (d *DynamicBFS) InsertEdge(u, v int) (changed int, err error) {
	if u < 0 || v < 0 {
		return 0, fmt.Errorf("dynsssp: negative node in edge (%d, %d)", u, v)
	}
	if u == v {
		return 0, nil
	}
	d.EnsureNode(u)
	d.EnsureNode(v)
	d.adj[u] = append(d.adj[u], int32(v))
	d.adj[v] = append(d.adj[v], int32(u))
	d.inserted++

	// Seed the relaxation wave with whichever endpoint improves.
	var queue []int32
	du, dv := d.dist[u], d.dist[v]
	switch {
	case du >= 0 && (dv < 0 || dv > du+1):
		d.dist[v] = du + 1
		queue = append(queue, int32(v))
		changed++
	case dv >= 0 && (du < 0 || du > dv+1):
		d.dist[u] = dv + 1
		queue = append(queue, int32(u))
		changed++
	default:
		return 0, nil
	}
	// Standard decrease-only BFS wave: each pop may improve its neighbors
	// by exactly one level. A node can re-enter the queue only with a
	// strictly smaller distance, so the wave terminates.
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		d.touched++
		dx := d.dist[x]
		for _, y := range d.adj[x] {
			if d.dist[y] < 0 || d.dist[y] > dx+1 {
				d.dist[y] = dx + 1
				queue = append(queue, y)
				changed++
			}
		}
	}
	return changed, nil
}

// ApplyStream replays a batch of timed edges (e.g. one evolution slice),
// returning the total number of distance changes.
func (d *DynamicBFS) ApplyStream(edges []graph.TimedEdge) (changed int, err error) {
	for _, te := range edges {
		c, err := d.InsertEdge(te.U, te.V)
		if err != nil {
			return changed, err
		}
		changed += c
	}
	return changed, nil
}

// DeltaSince compares the maintained distances against a baseline vector
// (typically the distances at an earlier snapshot) and reports, for every
// node, the decrease baseline - current, with unreachable-in-baseline nodes
// reported as 0 (they were not connected, hence not converging). The result
// is written into out, which must have length NumNodes().
func (d *DynamicBFS) DeltaSince(baseline []int32, out []int32) error {
	if len(baseline) > len(d.dist) || len(out) != len(d.dist) {
		return fmt.Errorf("dynsssp: baseline length %d, out length %d, have %d nodes",
			len(baseline), len(out), len(d.dist))
	}
	for v := range out {
		out[v] = 0
	}
	for v, b := range baseline {
		if b <= 0 {
			continue
		}
		cur := d.dist[v]
		if cur >= 0 && cur < b {
			out[v] = b - cur
		}
	}
	return nil
}
