package dynsssp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sssp"
)

func pathGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.FromEdges(n, edges)
}

func TestNewValidation(t *testing.T) {
	g := pathGraph(4)
	if _, err := New(g, -1); err == nil {
		t.Error("negative source should fail")
	}
	if _, err := New(g, 4); err == nil {
		t.Error("out-of-range source should fail")
	}
}

func TestInsertEdgeShortcut(t *testing.T) {
	g := pathGraph(8)
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dist(7) != 7 {
		t.Fatalf("initial dist = %d", d.Dist(7))
	}
	changed, err := d.InsertEdge(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 4..7 improve: d(6): 6->1, d(5): 5->2, d(7): 7->2, d(4): 4->3.
	if changed != 4 {
		t.Fatalf("changed = %d, want 4", changed)
	}
	want := []int32{0, 1, 2, 3, 3, 2, 1, 2}
	if !reflect.DeepEqual(d.Distances(), want) {
		t.Fatalf("dist = %v, want %v", d.Distances(), want)
	}
}

func TestInsertEdgeNoImprovement(t *testing.T) {
	g := pathGraph(5)
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := d.InsertEdge(0, 1) // duplicate
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Fatalf("duplicate edge changed %d distances", changed)
	}
	changed, err = d.InsertEdge(2, 2) // self-loop
	if err != nil || changed != 0 {
		t.Fatalf("self-loop: %d, %v", changed, err)
	}
	if _, err := d.InsertEdge(-1, 2); err == nil {
		t.Fatal("negative node should fail")
	}
}

func TestInsertConnectsComponent(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 3, V: 4}, {U: 4, V: 5}})
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dist(4) != sssp.Unreachable {
		t.Fatal("4 should start unreachable")
	}
	if _, err := d.InsertEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, sssp.Unreachable, 2, 3, 4}
	if !reflect.DeepEqual(d.Distances(), want) {
		t.Fatalf("dist = %v, want %v", d.Distances(), want)
	}
}

func TestEnsureNodeGrowth(t *testing.T) {
	g := pathGraph(3)
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertEdge(2, 9); err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", d.NumNodes())
	}
	if d.Dist(9) != 3 {
		t.Fatalf("dist(9) = %d, want 3", d.Dist(9))
	}
	for v := 3; v < 9; v++ {
		if d.Dist(v) != sssp.Unreachable {
			t.Fatalf("dist(%d) = %d, want unreachable", v, d.Dist(v))
		}
	}
}

// Property: after any random insertion sequence, the maintained vector
// equals a fresh BFS on the final graph, and every insertion's relaxation
// touches no more nodes than a full BFS would.
func TestIncrementalMatchesRecompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 1; i < n/2; i++ {
			_ = b.AddEdge(i, rng.Intn(i))
		}
		g := b.Build()
		src := rng.Intn(n / 2)
		d, err := New(g, src)
		if err != nil {
			return false
		}
		// Mirror builder for the reference recomputation.
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if _, err := d.InsertEdge(u, v); err != nil {
				return false
			}
			_ = b.AddEdge(u, v)
		}
		want := sssp.Distances(b.Build(), src)
		got := d.Distances()
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyStreamAndStats(t *testing.T) {
	g := pathGraph(10)
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := d.ApplyStream([]graph.TimedEdge{
		{U: 0, V: 9, Time: 1},
		{U: 0, V: 5, Time: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("stream should change distances")
	}
	ins, touched := d.Stats()
	if ins != 2 || touched == 0 {
		t.Fatalf("stats = %d, %d", ins, touched)
	}
}

// randomEvolvingPair builds a random (g1, g2) insertion pair with g1 drawn
// from a fraction of g2's edges — disconnected snapshots and
// component-merging deltas arise naturally from the random split.
func randomEvolvingPair(rng *rand.Rand) (g1, g2 *graph.Graph) {
	n := 4 + rng.Intn(60)
	seen := map[graph.Edge]struct{}{}
	var edges []graph.Edge
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		c := graph.Edge{U: u, V: v}.Canon()
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		edges = append(edges, c)
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	split := rng.Intn(len(edges) + 1)
	return graph.FromEdges(n, edges[:split]), graph.FromEdges(n, edges)
}

// TestApplyAllMatchesFreshBFS is the repair kernel's differential oracle:
// for random snapshot pairs (random sizes, random split fractions, with
// disconnected regions and deltas that merge components), repairing the g1
// vector over the delta must be bit-identical to a fresh BFS on g2 — from
// every source. Duplicate delta edges and self-loops must not perturb the
// result.
func TestApplyAllMatchesFreshBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1, g2 := randomEvolvingPair(rng)
		delta := graph.NewDelta(g1, g2).Edges
		// Adversarial garnish: duplicate a delta edge and add a self-loop.
		if len(delta) > 0 {
			delta = append(delta, delta[rng.Intn(len(delta))])
		}
		delta = append(delta, graph.Edge{U: 0, V: 0})
		s := NewScratch()
		n := g1.NumNodes()
		dist := make([]int32, n)
		for src := 0; src < n; src++ {
			copy(dist, sssp.Distances(g1, src))
			s.ApplyAll(g2, delta, dist)
			want := sssp.Distances(g2, src)
			for v := range want {
				if dist[v] != want[v] {
					t.Logf("seed %d src %d: dist[%d] = %d, want %d", seed, src, v, dist[v], want[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyAllValidation pins the panic contract: plumbing errors (wrong
// vector length, out-of-universe delta nodes) must fail loudly, not corrupt.
func TestApplyAllValidation(t *testing.T) {
	g := pathGraph(5)
	s := NewScratch()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("short dist", func() { s.ApplyAll(g, nil, make([]int32, 3)) })
	mustPanic("out-of-range delta", func() {
		s.ApplyAll(g, []graph.Edge{{U: 0, V: 9}}, make([]int32, 5))
	})
}

// TestApplyAllZeroAllocs is the zero-alloc backstop on the repair kernel:
// once the scratch has grown (AllocsPerRun's warm-up call), repairing a row
// allocates nothing.
func TestApplyAllZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g1, g2 := randomEvolvingPair(rng)
	delta := graph.NewDelta(g1, g2).Edges
	base := sssp.Distances(g1, 0)
	dist := make([]int32, g1.NumNodes())
	s := NewScratch()
	allocs := testing.AllocsPerRun(20, func() {
		copy(dist, base)
		s.ApplyAll(g2, delta, dist)
	})
	if allocs != 0 {
		t.Fatalf("ApplyAll allocates %v per run, want 0", allocs)
	}
}

// TestApplyBatchMatchesPerEdgeInsert pins that the batch path (one seed pass
// + one wave) ends in the same state as the per-edge insertion loop it
// replaced, including node-universe growth and inserted/Changed accounting.
func TestApplyBatchMatchesPerEdgeInsert(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := pathGraph(n)
		batch, _ := New(g, 0)
		single, _ := New(g, 0)
		var edges []graph.TimedEdge
		for i := 0; i < 2*n; i++ {
			// Beyond-universe nodes exercise EnsureNode growth.
			edges = append(edges, graph.TimedEdge{U: rng.Intn(n + 3), V: rng.Intn(n + 3), Time: int64(i)})
		}
		bc, err := batch.ApplyBatch(edges)
		if err != nil {
			return false
		}
		sc := 0
		for _, te := range edges {
			c, err := single.InsertEdge(te.U, te.V)
			if err != nil {
				return false
			}
			sc += c
		}
		if batch.NumNodes() != single.NumNodes() {
			t.Logf("seed %d: universe %d vs %d", seed, batch.NumNodes(), single.NumNodes())
			return false
		}
		if !reflect.DeepEqual(batch.Distances(), single.Distances()) {
			t.Logf("seed %d: batch %v\nsingle %v", seed, batch.Distances(), single.Distances())
			return false
		}
		// Improvement counts depend on relaxation order and legitimately
		// differ between the two strategies; what must agree is whether any
		// distance changed at all.
		if (bc > 0) != (sc > 0) {
			t.Logf("seed %d: batch changed %d, per-edge %d", seed, bc, sc)
			return false
		}
		bi, _ := batch.Stats()
		si, _ := single.Stats()
		if bi != si {
			t.Logf("seed %d: inserted %d vs %d", seed, bi, si)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	// Error path: a negative node rejects the whole batch atomically.
	d, _ := New(pathGraph(4), 0)
	before := append([]int32(nil), d.Distances()...)
	if _, err := d.ApplyBatch([]graph.TimedEdge{{U: 0, V: 3}, {U: -1, V: 2}}); err == nil {
		t.Fatal("negative node should fail")
	}
	if !reflect.DeepEqual(d.Distances(), before) {
		t.Fatal("failed batch must not mutate state")
	}
	if d.RepairStats() != (Stats{}) {
		t.Fatalf("failed batch recorded repair stats: %+v", d.RepairStats())
	}
}

func TestDeltaSince(t *testing.T) {
	g := pathGraph(8)
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseline := append([]int32(nil), d.Distances()...)
	if _, err := d.InsertEdge(0, 6); err != nil {
		t.Fatal(err)
	}
	out := make([]int32, 8)
	if err := d.DeltaSince(baseline, out); err != nil {
		t.Fatal(err)
	}
	// d2(4) = 3 via 0-6-5-4 (Δ=1), d2(5) = 2 via 0-6-5 (Δ=3),
	// d2(6) = 1 (Δ=5), d2(7) = 2 via 0-6-7 (Δ=5).
	want := []int32{0, 0, 0, 0, 1, 3, 5, 5}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("delta = %v, want %v", out, want)
	}
	if err := d.DeltaSince(baseline, make([]int32, 3)); err == nil {
		t.Fatal("short out buffer should fail")
	}
	if err := d.DeltaSince(make([]int32, 99), out); err == nil {
		t.Fatal("oversized baseline should fail")
	}
}

// TestApplyAllOnWideKernelRows pins the repair wave against t1 rows produced
// by the wide MS-BFS kernels: the incremental paired sweep hands ApplyAll
// copies of rows that are views into a Scratch's shared 256/512-lane backing
// block, and the repair must still be bit-identical to a fresh BFS on g2 for
// every lane.
func TestApplyAllOnWideKernelRows(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	g1, g2 := randomEvolvingPair(rng)
	n := g1.NumNodes()
	delta := graph.NewDelta(g1, g2).Edges
	sources := make([]int, 0, 80)
	for i := 0; i < 78; i++ {
		sources = append(sources, rng.Intn(n))
	}
	sources = append(sources, sources[0], sources[1]) // duplicate lanes
	s := NewScratch()
	d2 := make([]int32, n)
	for _, eng := range []sssp.Engine{sssp.BitParallel256, sssp.BitParallel512} {
		sssp.AllSourcesParEngineFunc(g1, sources, 1, eng, 2, func(src int, d1 []int32) {
			copy(d2, d1)
			s.ApplyAll(g2, delta, d2)
			want := sssp.Distances(g2, src)
			for v := range want {
				if d2[v] != want[v] {
					t.Fatalf("engine %v src %d: repaired dist[%d] = %d, want %d", eng, src, v, d2[v], want[v])
				}
			}
		})
	}
}
