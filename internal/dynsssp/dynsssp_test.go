package dynsssp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sssp"
)

func pathGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.FromEdges(n, edges)
}

func TestNewValidation(t *testing.T) {
	g := pathGraph(4)
	if _, err := New(g, -1); err == nil {
		t.Error("negative source should fail")
	}
	if _, err := New(g, 4); err == nil {
		t.Error("out-of-range source should fail")
	}
}

func TestInsertEdgeShortcut(t *testing.T) {
	g := pathGraph(8)
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dist(7) != 7 {
		t.Fatalf("initial dist = %d", d.Dist(7))
	}
	changed, err := d.InsertEdge(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 4..7 improve: d(6): 6->1, d(5): 5->2, d(7): 7->2, d(4): 4->3.
	if changed != 4 {
		t.Fatalf("changed = %d, want 4", changed)
	}
	want := []int32{0, 1, 2, 3, 3, 2, 1, 2}
	if !reflect.DeepEqual(d.Distances(), want) {
		t.Fatalf("dist = %v, want %v", d.Distances(), want)
	}
}

func TestInsertEdgeNoImprovement(t *testing.T) {
	g := pathGraph(5)
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := d.InsertEdge(0, 1) // duplicate
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Fatalf("duplicate edge changed %d distances", changed)
	}
	changed, err = d.InsertEdge(2, 2) // self-loop
	if err != nil || changed != 0 {
		t.Fatalf("self-loop: %d, %v", changed, err)
	}
	if _, err := d.InsertEdge(-1, 2); err == nil {
		t.Fatal("negative node should fail")
	}
}

func TestInsertConnectsComponent(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 3, V: 4}, {U: 4, V: 5}})
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dist(4) != sssp.Unreachable {
		t.Fatal("4 should start unreachable")
	}
	if _, err := d.InsertEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, sssp.Unreachable, 2, 3, 4}
	if !reflect.DeepEqual(d.Distances(), want) {
		t.Fatalf("dist = %v, want %v", d.Distances(), want)
	}
}

func TestEnsureNodeGrowth(t *testing.T) {
	g := pathGraph(3)
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertEdge(2, 9); err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", d.NumNodes())
	}
	if d.Dist(9) != 3 {
		t.Fatalf("dist(9) = %d, want 3", d.Dist(9))
	}
	for v := 3; v < 9; v++ {
		if d.Dist(v) != sssp.Unreachable {
			t.Fatalf("dist(%d) = %d, want unreachable", v, d.Dist(v))
		}
	}
}

// Property: after any random insertion sequence, the maintained vector
// equals a fresh BFS on the final graph, and every insertion's relaxation
// touches no more nodes than a full BFS would.
func TestIncrementalMatchesRecompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 1; i < n/2; i++ {
			_ = b.AddEdge(i, rng.Intn(i))
		}
		g := b.Build()
		src := rng.Intn(n / 2)
		d, err := New(g, src)
		if err != nil {
			return false
		}
		// Mirror builder for the reference recomputation.
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if _, err := d.InsertEdge(u, v); err != nil {
				return false
			}
			_ = b.AddEdge(u, v)
		}
		want := sssp.Distances(b.Build(), src)
		got := d.Distances()
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyStreamAndStats(t *testing.T) {
	g := pathGraph(10)
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := d.ApplyStream([]graph.TimedEdge{
		{U: 0, V: 9, Time: 1},
		{U: 0, V: 5, Time: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("stream should change distances")
	}
	ins, touched := d.Stats()
	if ins != 2 || touched == 0 {
		t.Fatalf("stats = %d, %d", ins, touched)
	}
}

func TestDeltaSince(t *testing.T) {
	g := pathGraph(8)
	d, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseline := append([]int32(nil), d.Distances()...)
	if _, err := d.InsertEdge(0, 6); err != nil {
		t.Fatal(err)
	}
	out := make([]int32, 8)
	if err := d.DeltaSince(baseline, out); err != nil {
		t.Fatal(err)
	}
	// d2(4) = 3 via 0-6-5-4 (Δ=1), d2(5) = 2 via 0-6-5 (Δ=3),
	// d2(6) = 1 (Δ=5), d2(7) = 2 via 0-6-7 (Δ=5).
	want := []int32{0, 0, 0, 0, 1, 3, 5, 5}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("delta = %v, want %v", out, want)
	}
	if err := d.DeltaSince(baseline, make([]int32, 3)); err == nil {
		t.Fatal("short out buffer should fail")
	}
	if err := d.DeltaSince(make([]int32, 99), out); err == nil {
		t.Fatal("oversized baseline should fail")
	}
}
