// Package topk computes exact ground truth for the converging-pairs problem:
// for a snapshot pair (G_t1, G_t2) it finds every connected pair of G_t1
// whose shortest-path distance decreased the most (Problem 1 of the paper),
// the Δ histogram used to pick tie-free k values (the paper's δ thresholds),
// and the pairs graph G^p_k whose vertex covers define good candidate sets
// (Problem 2).
//
// The computation streams one BFS pair per source through a pruned
// accumulator, so memory stays O(n + kept pairs) instead of O(n²).
package topk

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/sssp"
)

// Pair is a converging pair: a pair of nodes connected in G_t1 together with
// its distances in both snapshots and the decrease Delta = D1 - D2.
// Invariant: U < V.
type Pair struct {
	U, V  int32
	D1    int32
	D2    int32
	Delta int32
}

func (p Pair) String() string {
	return fmt.Sprintf("(%d,%d) d1=%d d2=%d Δ=%d", p.U, p.V, p.D1, p.D2, p.Delta)
}

// Options configures the exact ground-truth computation.
type Options struct {
	// Workers bounds BFS parallelism; <=0 means GOMAXPROCS.
	Workers int
	// Slack keeps all pairs with Delta >= MaxDelta - Slack. The paper
	// evaluates δ ∈ {Δmax, Δmax-1, Δmax-2}, so the default of 2 retains
	// exactly the pairs every experiment needs.
	Slack int32
}

// GroundTruth is the exact result of an all-pairs Δ sweep.
type GroundTruth struct {
	// MaxDelta is Δmax, the largest distance decrease over all connected
	// pairs of G_t1 (0 if no distance decreased).
	MaxDelta int32
	// Pairs holds every pair with Delta >= max(1, MaxDelta-Slack), sorted by
	// Delta descending, then (U, V) ascending.
	Pairs []Pair
	// Slack echoes the option the sweep ran with.
	Slack int32
	// Histogram[d] is the exact number of connected pairs with Delta == d,
	// for every d >= 1 (smaller deltas than the slack window are counted but
	// their pairs are not retained).
	Histogram map[int32]int64
	// Diameter1 and Diameter2 are the exact diameters (largest finite
	// eccentricities) of the two snapshots, free by-products of the sweep.
	Diameter1, Diameter2 int32
}

// Compute runs the exact all-pairs sweep for the snapshot pair. It validates
// the pair first: G_t2 must be a supergraph of G_t1 on the same universe,
// which guarantees Delta >= 0 for every connected pair.
func Compute(pair graph.SnapshotPair, opts Options) (*GroundTruth, error) {
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	return ComputeSources(dist.BFSPair(pair, sssp.Auto), opts)
}

// ComputeSources runs the exact all-pairs sweep over an arbitrary pair of
// distance sources — the metric-agnostic form shared by the unweighted (BFS)
// and weighted (Dijkstra) ground truths. The caller validates the
// metric-specific domination invariant; here only the shared universe is
// checked.
//
//convlint:unbudgeted exact ground-truth sweep; the paper's 2m budget is defined relative to this quadratic baseline
func ComputeSources(p dist.Pair, opts Options) (*GroundTruth, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumNodes()
	s1, s2 := p.S1, p.S2

	// Only sources with at least one edge in G_t1 can participate in a
	// connected pair of G_t1.
	sources := make([]int, 0, n)
	for u := 0; u < n; u++ {
		if s1.Degree(u) > 0 {
			sources = append(sources, u)
		}
	}
	// Nodes isolated in G_t1 but connected in G_t2 cannot start a converging
	// pair, yet they may carry G_t2's diameter: sweep them separately.
	var extra []int
	for u := 0; u < n; u++ {
		if s1.Degree(u) == 0 && s2.Degree(u) > 0 {
			extra = append(extra, u)
		}
	}
	return ComputeEngine(PairEngine{
		NumNodes: n,
		Sources:  sources,
		// The batch drivers let engines amortize traversals across sources
		// (the BFS pair routes to sssp's bit-parallel paired kernel — the
		// all-pairs phase's hot path; Dijkstra runs a session pool).
		PairedAll: func(srcs []int, workers int, fn func(src int, d1, d2 []int32)) {
			dist.PairedSweep(p, srcs, workers, fn)
		},
		ExtraDiam2Sources: extra,
		Dist2All: func(srcs []int, workers int, fn func(src int, d []int32)) {
			dist.Sweep(s2, srcs, workers, fn)
		},
	}, opts)
}

// SortPairs orders pairs by Delta descending, breaking ties by (U, V)
// ascending, the canonical order used across the library.
func SortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Delta != pairs[j].Delta {
			return pairs[i].Delta > pairs[j].Delta
		}
		if pairs[i].U != pairs[j].U {
			return pairs[i].U < pairs[j].U
		}
		return pairs[i].V < pairs[j].V
	})
}

// accumulator keeps the running Δ histogram plus all pairs within the slack
// window below the running maximum, pruning as the maximum rises.
type accumulator struct {
	slack int32
	max   int32
	pairs []Pair
	hist  map[int32]int64
}

func (a *accumulator) floor() int32 {
	f := a.max - a.slack
	if f < 1 {
		f = 1
	}
	return f
}

func (a *accumulator) add(p Pair) {
	a.hist[p.Delta]++
	if p.Delta > a.max {
		a.max = p.Delta
		a.prune()
	}
	if p.Delta >= a.floor() {
		a.pairs = append(a.pairs, p)
	}
}

func (a *accumulator) prune() {
	floor := a.floor()
	kept := a.pairs[:0]
	for _, p := range a.pairs {
		if p.Delta >= floor {
			kept = append(kept, p)
		}
	}
	a.pairs = kept
}

func (a *accumulator) merge(b *accumulator) {
	for d, c := range b.hist {
		a.hist[d] += c
	}
	if b.max > a.max {
		a.max = b.max
		a.prune()
	}
	floor := a.floor()
	for _, p := range b.pairs {
		if p.Delta >= floor {
			a.pairs = append(a.pairs, p)
		}
	}
}

// PairsAtLeast returns the retained pairs with Delta >= delta, in canonical
// order. It panics if delta is below the retained window (MaxDelta - Slack),
// because the answer would be incomplete — callers must re-run Compute with
// a larger Slack for deeper thresholds.
func (gt *GroundTruth) PairsAtLeast(delta int32) []Pair {
	if gt.MaxDelta > 0 && delta < gt.MaxDelta-gt.Slack {
		panic(fmt.Sprintf("topk: δ=%d below retained window [%d, %d]; recompute with larger Slack",
			delta, gt.MaxDelta-gt.Slack, gt.MaxDelta))
	}
	// Pairs are sorted by Delta descending: binary search for the cut.
	i := sort.Search(len(gt.Pairs), func(i int) bool { return gt.Pairs[i].Delta < delta })
	return gt.Pairs[:i]
}

// KForDelta returns the number of pairs with Delta >= delta — the paper's way
// of choosing k so the top-k set is unique (no ties straddle the cut).
func (gt *GroundTruth) KForDelta(delta int32) int {
	var k int64
	for d, c := range gt.Histogram {
		if d >= delta {
			k += c
		}
	}
	return int(k)
}

// TopK returns the first k retained pairs in canonical order. It panics if k
// exceeds the retained window, for the same reason as PairsAtLeast.
func (gt *GroundTruth) TopK(k int) []Pair {
	if k <= len(gt.Pairs) {
		return gt.Pairs[:k]
	}
	panic(fmt.Sprintf("topk: k=%d exceeds the %d retained pairs; recompute with larger Slack",
		k, len(gt.Pairs)))
}
