package topk_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/topk"
)

// Example shows the exact ground-truth sweep on a small growing graph.
func Example() {
	// G1: path 0-1-2-3-4. G2 adds the chord {0,4}.
	g1 := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	g2 := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 4}})

	gt, err := topk.Compute(graph.SnapshotPair{G1: g1, G2: g2}, topk.Options{Workers: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("Δmax = %d\n", gt.MaxDelta)
	for _, p := range gt.TopK(1) {
		fmt.Println(p)
	}
	// Output:
	// Δmax = 3
	// (0,4) d1=4 d2=1 Δ=3
}

// ExampleCoverage demonstrates the evaluation metric on a candidate set.
func ExampleCoverage() {
	pairs := []topk.Pair{{U: 0, V: 4}, {U: 1, V: 4}, {U: 2, V: 5}}
	set := topk.NodeSet([]int{4})
	fmt.Printf("%.2f\n", topk.Coverage(pairs, set))
	// Output: 0.67
}

// ExampleNewPairsGraph shows the pairs graph G^p_k the vertex-cover
// formulation is built on.
func ExampleNewPairsGraph() {
	pg := topk.NewPairsGraph([]topk.Pair{{U: 0, V: 4}, {U: 0, V: 7}})
	fmt.Println(pg.NumPairs(), pg.NumEndpoints(), pg.Degree(0))
	// Output: 2 3 2
}
