package topk

import "sort"

// PairsGraph is the paper's G^p_k: a graph over the nodes of G_t1 whose edges
// are exactly the top-k converging pairs. Vertex covers of this graph are the
// smallest candidate sets that recover all top-k pairs, and coverage of its
// edges is the quality metric of every experiment.
type PairsGraph struct {
	pairs []Pair
	adj   map[int32][]int32
}

// NewPairsGraph builds G^p_k from a top-k pair set. The input order is
// preserved in Pairs.
func NewPairsGraph(pairs []Pair) *PairsGraph {
	pg := &PairsGraph{pairs: pairs, adj: make(map[int32][]int32)}
	for _, p := range pairs {
		pg.adj[p.U] = append(pg.adj[p.U], p.V)
		pg.adj[p.V] = append(pg.adj[p.V], p.U)
	}
	return pg
}

// Pairs returns the pair (edge) set of G^p_k.
func (pg *PairsGraph) Pairs() []Pair { return pg.pairs }

// NumPairs returns the number of edges of G^p_k (= k).
func (pg *PairsGraph) NumPairs() int { return len(pg.pairs) }

// Endpoints returns the distinct nodes participating in at least one top-k
// pair, sorted ascending (the "endpoints" column of the paper's Table 3).
func (pg *PairsGraph) Endpoints() []int32 {
	out := make([]int32, 0, len(pg.adj))
	for u := range pg.adj {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumEndpoints returns the number of distinct endpoints.
func (pg *PairsGraph) NumEndpoints() int { return len(pg.adj) }

// Degree returns how many top-k pairs node u participates in.
func (pg *PairsGraph) Degree(u int32) int { return len(pg.adj[u]) }

// Neighbors returns the partners of u across top-k pairs (unsorted, may
// contain u's partner once per pair). The slice must not be modified.
func (pg *PairsGraph) Neighbors(u int32) []int32 { return pg.adj[u] }

// IsEndpoint reports whether u participates in any top-k pair.
func (pg *PairsGraph) IsEndpoint(u int32) bool { return len(pg.adj[u]) > 0 }

// Coverage returns the fraction of pairs with at least one endpoint in the
// candidate set — the paper's evaluation metric. An empty pair set has
// coverage 1 by convention (there is nothing left uncovered).
func Coverage(pairs []Pair, candidates map[int32]bool) float64 {
	if len(pairs) == 0 {
		return 1
	}
	covered := 0
	for _, p := range pairs {
		if candidates[p.U] || candidates[p.V] {
			covered++
		}
	}
	return float64(covered) / float64(len(pairs))
}

// CoveredBy returns the subset of pairs with at least one endpoint in the
// candidate set, preserving order — the pairs Algorithm 1 actually recovers.
func CoveredBy(pairs []Pair, candidates map[int32]bool) []Pair {
	var out []Pair
	for _, p := range pairs {
		if candidates[p.U] || candidates[p.V] {
			out = append(out, p)
		}
	}
	return out
}

// NodeSet converts a candidate slice into the set form used by Coverage.
func NodeSet(nodes []int) map[int32]bool {
	set := make(map[int32]bool, len(nodes))
	for _, u := range nodes {
		set[int32(u)] = true
	}
	return set
}

// TieTolerantCoverage evaluates an arbitrary k (not aligned to a δ
// threshold): since many pairs tie at the k-th Δ value, any k of the tying
// pairs are an acceptable answer (the paper's observation that "for smaller
// values of k our algorithms work even better"). The score is the fraction
// of the k slots fillable with candidate-covered pairs whose Δ is at least
// the k-th largest. Panics, like TopK, if k exceeds the retained window.
func (gt *GroundTruth) TieTolerantCoverage(k int, candidates map[int32]bool) float64 {
	if k <= 0 {
		return 1
	}
	kth := gt.TopK(k) // panics if k exceeds the retained pairs
	threshold := kth[len(kth)-1].Delta
	eligible := gt.PairsAtLeast(threshold)
	covered := len(CoveredBy(eligible, candidates))
	if covered > k {
		covered = k
	}
	return float64(covered) / float64(k)
}
