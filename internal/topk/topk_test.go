package topk

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// pairFromStreams builds a SnapshotPair over n nodes from explicit edge lists.
func pairFromEdges(n int, e1, e2 []graph.Edge) graph.SnapshotPair {
	return graph.SnapshotPair{G1: graph.FromEdges(n, e1), G2: graph.FromEdges(n, e2)}
}

func TestComputePathShortcut(t *testing.T) {
	// G1: path 0-1-2-3-4-5. G2 adds edge {0,5}.
	var e1 []graph.Edge
	for i := 0; i < 5; i++ {
		e1 = append(e1, graph.Edge{U: i, V: i + 1})
	}
	e2 := append(append([]graph.Edge{}, e1...), graph.Edge{U: 0, V: 5})
	sp := pairFromEdges(6, e1, e2)
	gt, err := Compute(sp, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// d1(0,5)=5, d2(0,5)=1 => Δmax=4.
	if gt.MaxDelta != 4 {
		t.Fatalf("MaxDelta = %d, want 4", gt.MaxDelta)
	}
	if gt.Diameter1 != 5 || gt.Diameter2 != 3 {
		t.Fatalf("diameters = %d, %d; want 5, 3", gt.Diameter1, gt.Diameter2)
	}
	top := gt.TopK(1)
	want := Pair{U: 0, V: 5, D1: 5, D2: 1, Delta: 4}
	if top[0] != want {
		t.Fatalf("top pair = %v, want %v", top[0], want)
	}
	// Hand-checked histogram: with the chord {0,5} the cycle distances are
	// d2(u,v)=min(|u-v|, 6-|u-v|): Δ=4 for (0,5); Δ=2 for (0,4),(1,5);
	// Δ=... compute all: pairs at |u-v|=5: Δ=4; |u-v|=4: d2=2, Δ=2 (2 pairs);
	// |u-v|=3: d2=3, Δ=0; shorter: Δ=0.
	if gt.Histogram[4] != 1 || gt.Histogram[2] != 2 {
		t.Fatalf("histogram = %v, want {4:1, 2:2}", gt.Histogram)
	}
	if gt.KForDelta(2) != 3 || gt.KForDelta(4) != 1 || gt.KForDelta(3) != 1 {
		t.Fatalf("KForDelta: %d %d %d", gt.KForDelta(2), gt.KForDelta(4), gt.KForDelta(3))
	}
	got := gt.PairsAtLeast(2)
	if len(got) != 3 {
		t.Fatalf("PairsAtLeast(2) = %v", got)
	}
}

func TestComputeRejectsInvalidPair(t *testing.T) {
	bad := pairFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, []graph.Edge{{U: 0, V: 1}})
	if _, err := Compute(bad, Options{}); err == nil {
		t.Fatal("deletion pair should be rejected")
	}
}

func TestComputeNoChanges(t *testing.T) {
	e := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	gt, err := Compute(pairFromEdges(3, e, e), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gt.MaxDelta != 0 || len(gt.Pairs) != 0 {
		t.Fatalf("identical snapshots: MaxDelta=%d, pairs=%v", gt.MaxDelta, gt.Pairs)
	}
	if gt.KForDelta(1) != 0 {
		t.Fatalf("KForDelta(1) = %d, want 0", gt.KForDelta(1))
	}
}

func TestComputeDisconnectedStaysExcluded(t *testing.T) {
	// G1 has two components; G2 connects them. Pairs across components were
	// not connected in G1, so they are not converging pairs.
	e1 := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	e2 := append(append([]graph.Edge{}, e1...), graph.Edge{U: 1, V: 2})
	gt, err := Compute(pairFromEdges(4, e1, e2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gt.MaxDelta != 0 {
		t.Fatalf("MaxDelta = %d; cross-component pairs must not count", gt.MaxDelta)
	}
}

func TestPairsAtLeastPanicsBelowWindow(t *testing.T) {
	var e1 []graph.Edge
	for i := 0; i < 9; i++ {
		e1 = append(e1, graph.Edge{U: i, V: i + 1})
	}
	e2 := append(append([]graph.Edge{}, e1...), graph.Edge{U: 0, V: 9})
	gt, err := Compute(pairFromEdges(10, e1, e2), Options{Slack: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for δ below retained window")
		}
	}()
	gt.PairsAtLeast(1)
}

func TestTopKPanicsBeyondRetained(t *testing.T) {
	e1 := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	e2 := append(append([]graph.Edge{}, e1...), graph.Edge{U: 0, V: 3})
	gt, err := Compute(pairFromEdges(4, e1, e2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k beyond retained pairs")
		}
	}()
	gt.TopK(len(gt.Pairs) + 1)
}

// brute computes ground truth naively with per-source BFS, keeping every
// pair with Delta >= 1.
func brute(sp graph.SnapshotPair) (maxDelta int32, pairs map[Pair]bool) {
	n := sp.G1.NumNodes()
	pairs = map[Pair]bool{}
	for u := 0; u < n; u++ {
		d1 := sssp.Distances(sp.G1, u)
		d2 := sssp.Distances(sp.G2, u)
		for v := u + 1; v < n; v++ {
			if d1[v] <= 0 {
				continue
			}
			delta := d1[v] - d2[v]
			if delta > 0 {
				pairs[Pair{U: int32(u), V: int32(v), D1: d1[v], D2: d2[v], Delta: delta}] = true
				if delta > maxDelta {
					maxDelta = delta
				}
			}
		}
	}
	return maxDelta, pairs
}

// Property: on random growing graphs, the streamed/pruned parallel sweep
// agrees exactly with the brute-force computation within the slack window.
func TestComputeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		seen := map[graph.Edge]struct{}{}
		var stream []graph.TimedEdge
		target := n + rng.Intn(2*n)
		for i := 0; len(stream) < target && i < 20*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := graph.Edge{U: u, V: v}.Canon()
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			stream = append(stream, graph.TimedEdge{U: u, V: v, Time: int64(len(stream))})
		}
		if len(stream) < 2 {
			return true
		}
		ev, err := graph.NewEvolving(stream)
		if err != nil {
			return false
		}
		sp, err := ev.Pair(0.7, 1.0)
		if err != nil {
			return false
		}
		gt, err := Compute(sp, Options{Workers: 4, Slack: 3})
		if err != nil {
			return false
		}
		wantMax, wantPairs := brute(sp)
		if gt.MaxDelta != wantMax {
			return false
		}
		// Every retained pair must be real, and every brute pair within the
		// window must be retained.
		floor := gt.MaxDelta - gt.Slack
		if floor < 1 {
			floor = 1
		}
		gotSet := map[Pair]bool{}
		for _, p := range gt.Pairs {
			if !wantPairs[p] || p.Delta < floor {
				return false
			}
			gotSet[p] = true
		}
		var histTotal int64
		for _, c := range gt.Histogram {
			histTotal += c
		}
		if int(histTotal) != len(wantPairs) {
			return false
		}
		for p := range wantPairs {
			if p.Delta >= floor && !gotSet[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding edges never increases any pairwise distance (Δ >= 0),
// which Compute relies on. Checked via the histogram containing no
// non-positive keys and via direct distance comparison.
func TestDeltaNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g1 := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			_ = g1.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		built1 := g1.Build()
		for i := 0; i < n/2; i++ {
			_ = g1.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		built2 := g1.Build()
		src := rng.Intn(n)
		d1 := sssp.Distances(built1, src)
		d2 := sssp.Distances(built2, src)
		for v := range d1 {
			if d1[v] >= 0 && (d2[v] < 0 || d2[v] > d1[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSortPairsCanonicalOrder(t *testing.T) {
	pairs := []Pair{
		{U: 2, V: 3, Delta: 1},
		{U: 0, V: 5, Delta: 3},
		{U: 0, V: 4, Delta: 1},
		{U: 0, V: 2, Delta: 1},
		{U: 1, V: 9, Delta: 3},
	}
	SortPairs(pairs)
	want := []Pair{
		{U: 0, V: 5, Delta: 3},
		{U: 1, V: 9, Delta: 3},
		{U: 0, V: 2, Delta: 1},
		{U: 0, V: 4, Delta: 1},
		{U: 2, V: 3, Delta: 1},
	}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("sorted = %v", pairs)
	}
}

func TestPairsGraph(t *testing.T) {
	pairs := []Pair{
		{U: 0, V: 5, Delta: 3},
		{U: 0, V: 7, Delta: 3},
		{U: 2, V: 5, Delta: 2},
	}
	pg := NewPairsGraph(pairs)
	if pg.NumPairs() != 3 {
		t.Fatalf("NumPairs = %d", pg.NumPairs())
	}
	if got := pg.Endpoints(); !reflect.DeepEqual(got, []int32{0, 2, 5, 7}) {
		t.Fatalf("Endpoints = %v", got)
	}
	if pg.NumEndpoints() != 4 {
		t.Fatalf("NumEndpoints = %d", pg.NumEndpoints())
	}
	if pg.Degree(0) != 2 || pg.Degree(5) != 2 || pg.Degree(2) != 1 {
		t.Fatal("degrees wrong")
	}
	if !pg.IsEndpoint(7) || pg.IsEndpoint(3) {
		t.Fatal("IsEndpoint wrong")
	}
}

func TestCoverage(t *testing.T) {
	pairs := []Pair{{U: 0, V: 5}, {U: 1, V: 6}, {U: 2, V: 7}, {U: 3, V: 8}}
	set := NodeSet([]int{0, 6})
	if c := Coverage(pairs, set); c != 0.5 {
		t.Fatalf("coverage = %v, want 0.5", c)
	}
	if c := Coverage(nil, set); c != 1 {
		t.Fatalf("empty coverage = %v, want 1", c)
	}
	covered := CoveredBy(pairs, set)
	if len(covered) != 2 || covered[0].U != 0 || covered[1].V != 6 {
		t.Fatalf("CoveredBy = %v", covered)
	}
}

func TestTieTolerantCoverage(t *testing.T) {
	// Path 0..9 plus chord {0,9}: Δ histogram has one Δ=8 pair and several
	// ties below.
	var e1 []graph.Edge
	for i := 0; i < 9; i++ {
		e1 = append(e1, graph.Edge{U: i, V: i + 1})
	}
	e2 := append(append([]graph.Edge{}, e1...), graph.Edge{U: 0, V: 9})
	gt, err := Compute(pairFromEdges(10, e1, e2), Options{Slack: 100})
	if err != nil {
		t.Fatal(err)
	}
	// k=4: the 4th largest Δ is 4 and six pairs tie at Δ>=4, so the metric
	// has slack beyond the strict top-4.
	fourth := gt.TopK(4)[3].Delta
	eligible := gt.PairsAtLeast(fourth)
	if fourth != 4 || len(eligible) != 6 {
		t.Fatalf("cycle-10 structure changed: 4th Δ=%d, eligible=%d", fourth, len(eligible))
	}
	// {0,9} covers 5 of the 6 eligible pairs — enough to fill all 4 slots.
	if got := gt.TieTolerantCoverage(4, NodeSet([]int{0, 9})); got != 1 {
		t.Fatalf("tie-tolerant coverage = %v, want 1", got)
	}
	// {0} alone covers 3 eligible pairs: 3 of 4 slots.
	if got := gt.TieTolerantCoverage(4, NodeSet([]int{0})); got != 0.75 {
		t.Fatalf("partial coverage = %v, want 0.75", got)
	}
	// Empty candidates: zero.
	if got := gt.TieTolerantCoverage(4, nil); got != 0 {
		t.Fatalf("empty coverage = %v", got)
	}
	// k=0 convention.
	if got := gt.TieTolerantCoverage(0, nil); got != 1 {
		t.Fatalf("k=0 coverage = %v", got)
	}
}
