package topk

import (
	"errors"
	"sync"

	"repro/internal/sssp"
)

// PairEngine abstracts the per-source distance computation of a snapshot
// pair, so the exact sweep works for any shortest-path engine: unweighted
// BFS (Compute), weighted Dijkstra (internal/weighted), or anything else
// producing comparable int32 distances.
type PairEngine struct {
	// NumNodes is the shared node-universe size.
	NumNodes int
	// Sources lists the sweep sources — every node that can start a
	// converging pair (typically the nodes present in G_t1).
	Sources []int
	// Paired fills d1 and d2 (each len NumNodes) with the distances from
	// src in the two snapshots, using Unreachable (-1) for no path. It must
	// be safe for concurrent calls with distinct buffers.
	Paired func(src int, d1, d2 []int32)
	// PairedAll optionally drives the whole sweep itself: it must invoke
	// fn(src, d1, d2) once per source, from at most workers concurrent
	// goroutines, with buffers fn may not retain. Engines with a batched
	// multi-source kernel (sssp's bit-parallel BFS) set this so the sweep
	// amortizes traversals across sources; when nil, ComputeEngine loops
	// over Paired with its own worker pool.
	PairedAll func(sources []int, workers int, fn func(src int, d1, d2 []int32))
	// ExtraDiam2Sources optionally lists additional sources whose G_t2
	// eccentricity must be folded into Diameter2 (nodes absent from G_t1).
	ExtraDiam2Sources []int
	// Dist2 fills dist with G_t2 distances from src; required only when
	// ExtraDiam2Sources is non-empty and Dist2All is nil.
	Dist2 func(src int, dist []int32)
	// Dist2All optionally drives the extra-source sweep like PairedAll.
	Dist2All func(sources []int, workers int, fn func(src int, dist []int32))
}

// ErrBadEngine reports an incomplete PairEngine.
var ErrBadEngine = errors.New("topk: incomplete pair engine")

// ComputeEngine runs the exact converging-pairs sweep over an arbitrary
// distance engine. See Compute for the BFS instantiation and the result
// semantics.
func ComputeEngine(pe PairEngine, opts Options) (*GroundTruth, error) {
	if pe.NumNodes < 0 || (pe.Paired == nil && pe.PairedAll == nil) {
		return nil, ErrBadEngine
	}
	if len(pe.ExtraDiam2Sources) > 0 && pe.Dist2 == nil && pe.Dist2All == nil {
		return nil, ErrBadEngine
	}
	if opts.Slack <= 0 {
		opts.Slack = 2
	}
	n := pe.NumNodes

	workers := sssp.ClampWorkers(opts.Workers, len(pe.Sources))

	type shard struct {
		acc        accumulator
		ecc1, ecc2 int32
	}
	// Shards hold per-goroutine partial results. The driver may interleave
	// sources across goroutines arbitrarily, so shards are handed out
	// through a free list rather than bound to worker indices.
	shards := make([]*shard, workers)
	free := make(chan *shard, workers)
	for w := 0; w < workers; w++ {
		sh := &shard{acc: accumulator{slack: opts.Slack, hist: map[int32]int64{}}}
		shards[w] = sh
		free <- sh
	}
	accumulate := func(src int, d1, d2 []int32) {
		sh := <-free
		for v := src + 1; v < n; v++ {
			dv1 := d1[v]
			if dv1 <= 0 {
				continue
			}
			delta := dv1 - d2[v]
			if delta <= 0 {
				continue
			}
			sh.acc.add(Pair{U: int32(src), V: int32(v), D1: dv1, D2: d2[v], Delta: delta})
		}
		for v := 0; v < n; v++ {
			if d1[v] > sh.ecc1 {
				sh.ecc1 = d1[v]
			}
			if d2[v] > sh.ecc2 {
				sh.ecc2 = d2[v]
			}
		}
		free <- sh
	}

	drive := pe.PairedAll
	if drive == nil {
		drive = func(sources []int, workers int, fn func(src int, d1, d2 []int32)) {
			var wg sync.WaitGroup
			next := make(chan int, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					d1 := make([]int32, n)
					d2 := make([]int32, n)
					for i := range next {
						src := sources[i]
						pe.Paired(src, d1, d2)
						fn(src, d1, d2)
					}
				}()
			}
			for i := range sources {
				next <- i
			}
			close(next)
			wg.Wait()
		}
	}
	drive(pe.Sources, workers, accumulate)

	merged := accumulator{slack: opts.Slack, hist: map[int32]int64{}}
	var diam1, diam2 int32
	for _, sh := range shards {
		merged.merge(&sh.acc)
		if sh.ecc1 > diam1 {
			diam1 = sh.ecc1
		}
		if sh.ecc2 > diam2 {
			diam2 = sh.ecc2
		}
	}

	if len(pe.ExtraDiam2Sources) > 0 {
		var mu sync.Mutex
		foldEcc := func(src int, dist []int32) {
			var ecc int32
			for _, d := range dist {
				if d > ecc {
					ecc = d
				}
			}
			mu.Lock()
			if ecc > diam2 {
				diam2 = ecc //convlint:shared max-fold guarded by mu
			}
			mu.Unlock()
		}
		if pe.Dist2All != nil {
			pe.Dist2All(pe.ExtraDiam2Sources, workers, foldEcc)
		} else {
			var ewg sync.WaitGroup
			extraNext := make(chan int, workers)
			for w := 0; w < workers; w++ {
				ewg.Add(1)
				go func() {
					defer ewg.Done()
					dist := make([]int32, n)
					for i := range extraNext {
						src := pe.ExtraDiam2Sources[i]
						pe.Dist2(src, dist)
						foldEcc(src, dist)
					}
				}()
			}
			for i := range pe.ExtraDiam2Sources {
				extraNext <- i
			}
			close(extraNext)
			ewg.Wait()
		}
	}

	gt := &GroundTruth{
		MaxDelta:  merged.max,
		Pairs:     merged.pairs,
		Slack:     opts.Slack,
		Histogram: merged.hist,
		Diameter1: diam1,
		Diameter2: diam2,
	}
	SortPairs(gt.Pairs)
	return gt, nil
}
