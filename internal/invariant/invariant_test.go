package invariant

import (
	"strings"
	"testing"
)

func TestCheckfPasses(t *testing.T) {
	Checkf(true, "never fires %d", 1) // must not panic
}

func TestCheckfPanicsWithMessage(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Checkf(false) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violated: spent 7 > limit 5") {
			t.Fatalf("panic value = %v", r)
		}
	}()
	Checkf(false, "spent %d > limit %d", 7, 5)
}
