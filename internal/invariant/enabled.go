//go:build invariants

package invariant

// Enabled reports whether invariant assertions are compiled into this
// build (they are: the "invariants" build tag is set).
const Enabled = true
