//go:build !invariants

package invariant

// Enabled reports whether invariant assertions are compiled into this
// build (they are not; build with -tags invariants to arm them).
const Enabled = false
