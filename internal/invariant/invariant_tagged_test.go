//go:build invariants

package invariant

import "testing"

// TestEnabledUnderTag pins the build-tag wiring: the invariants tag must
// arm the Enabled constant, or every guarded check in graph and budget is
// silently dead even in assertion runs.
func TestEnabledUnderTag(t *testing.T) {
	if !Enabled {
		t.Fatal("built with -tags invariants but Enabled is false")
	}
}
