// Package invariant provides build-tag-gated runtime assertions for the
// data structures whose corruption would silently invalidate the paper
// reproduction: the graph CSR view and the budget Meter.
//
// Assertions are compiled in only with the "invariants" build tag:
//
//	go test -tags invariants ./...
//
// Callers guard every check with the Enabled constant so that default
// builds pay nothing — not even argument evaluation:
//
//	if invariant.Enabled {
//		invariant.Checkf(spent <= limit, "spent %d > limit %d", spent, limit)
//	}
//
// With the tag off, Enabled is a compile-time false and the whole block is
// dead-code-eliminated out of the hot paths.
package invariant

import "fmt"

// Checkf panics with a formatted violation report when cond is false. Only
// call it inside an `if invariant.Enabled` block; the guard, not Checkf,
// is what makes disabled builds free.
func Checkf(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
