package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ssspPkgPath is the package whose entry points spend the paper's budget
// unit (one SSSP computation).
const ssspPkgPath = "repro/internal/sssp"

// distPkgPath is the distance-engine abstraction; its query entry points
// cost the same one unit per source as the sssp kernels they dispatch to.
const distPkgPath = "repro/internal/dist"

// dynssspPkgPath holds the incremental repair kernels; batch-applying a
// delta re-derives a distance row, which the cost model prices the same one
// unit as computing the row fresh (charges count rows produced, not
// traversal work).
const dynssspPkgPath = "repro/internal/dynsssp"

// budgetPkgPath is the package whose Meter accounts for that spending.
const budgetPkgPath = "repro/internal/budget"

// corePkgPath owns the Session query surface. A Session.TopK call spends up
// to 2m SSSPs, so callers outside core must show where its meter comes from
// — the serve layer's discipline that every served query routes through a
// tenant meter.
const corePkgPath = "repro/internal/core"

// budgetExemptPkgs are allowed to call SSSP entry points freely: sssp's own
// wrappers compose each other, dist is the abstraction layer routing to
// them, and the oracle package is the budget's ground-truth referee.
var budgetExemptPkgs = map[string]bool{
	ssspPkgPath:             true,
	distPkgPath:             true,
	"repro/internal/oracle": true,
}

// budgetEntryPoint reports whether a function named name exported by the
// sssp package costs budget. The sets mirror the paper's accounting: every
// BFS/Dijkstra variant is one SSSP per source, the multi-source drivers and
// DistanceMatrix are one per source in the batch.
func budgetEntryPoint(name string) bool {
	for _, prefix := range []string{
		"BFS",            // BFS, BFSWith
		"MultiSourceBFS", // MultiSourceBFS, MultiSourceBFSWith
		"Dijkstra",
		"AllSources",    // AllSourcesFunc, AllSourcesEngineFunc
		"PairedSources", // PairedSourcesFunc, PairedSourcesEngineFunc
	} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	switch name {
	case "DistanceMatrix", "Distances", "WeightedDistances",
		// The Δ-threshold bounded second traversal: cut short for machine
		// work, but it still produces the charged row.
		"PrunedSecondBFS":
		return true
	}
	return false
}

// distEntryPoint reports whether a dist-package function or method named
// name costs budget: one unit per DistancesInto call (Source, Session, or
// Batcher), one per source for the batched sweeps and DistanceMatrix. The
// Ctx variants are the serving-path spellings of the same spending —
// cancellation changes machine work, never cost.
func distEntryPoint(name string) bool {
	switch name {
	case "DistancesInto", "DistanceMatrix", "Sweep", "PairedSweep",
		"DistancesPairInto", "DeriveInto", "IncrementalPairedSweep",
		"DistancesIntoCtx", "SweepCtx", "PairedSweepCtx",
		"IncrementalPairedSweepCtx",
		// The pruned-capability spellings cost exactly what the full
		// variants do — the Δ-threshold cuts traversal, not charges.
		"DistancesPairBoundedInto", "DeriveBoundedInto":
		return true
	}
	return false
}

// sessionEntryPoint reports whether fn is a core.Session query method.
// Matching on the receiver keeps the package-level core.TopK wrappers out:
// those are the one-shot self-metering surface, while a held Session is the
// serving idiom where the caller decides which tenant pays.
func sessionEntryPoint(fn *types.Func) bool {
	if fn.Name() != "TopK" && fn.Name() != "TopKSources" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && namedTypeIs(recv.Type(), corePkgPath, "Session")
}

// dynssspEntryPoint reports whether a dynsssp function or method named name
// re-derives distance rows and therefore costs budget under the
// rows-produced accounting: the batch repairs (one row each per call) and
// the per-edge insertion they generalize.
func dynssspEntryPoint(name string) bool {
	switch name {
	case "ApplyAll", "ApplyBatch", "ApplyStream", "InsertEdge",
		// The bounded repair re-derives the same charged row; a cut changes
		// machine work only.
		"ApplyAllBounded":
		return true
	}
	return false
}

// BudgetCheck flags calls to budget-relevant sssp entry points from
// functions that neither charge a *budget.Meter on the way to the call nor
// carry a //convlint:unbudgeted directive. It is the mechanical form of the
// paper's Table 1 discipline: every SSSP a selector performs must be
// visible to the Meter.
var BudgetCheck = &Analyzer{
	Name: "budgetcheck",
	Doc: "flag SSSP entry-point calls that are neither metered nor " +
		"declared //convlint:unbudgeted",
	Run: runBudgetCheck,
}

func runBudgetCheck(pass *Pass) error {
	if budgetExemptPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			var pkgName string
			session := false
			switch fn.Pkg().Path() {
			case ssspPkgPath:
				if !budgetEntryPoint(fn.Name()) {
					return true
				}
				pkgName = "sssp"
			case distPkgPath:
				if !distEntryPoint(fn.Name()) {
					return true
				}
				pkgName = "dist"
			case dynssspPkgPath:
				if !dynssspEntryPoint(fn.Name()) {
					return true
				}
				pkgName = "dynsssp"
			case corePkgPath:
				// core itself implements the self-metering default (a fresh
				// 2m meter when Options carries none); the session rule is
				// for callers holding a Session.
				if pass.Pkg.Path() == corePkgPath || !sessionEntryPoint(fn) {
					return true
				}
				pkgName = "core.Session"
				session = true
			default:
				return true
			}
			decl := enclosingFuncDecl(file, call.Pos())
			if decl != nil {
				if _, ok := funcDirective(decl, "unbudgeted"); ok {
					return true
				}
				if chargesBefore(pass.TypesInfo, decl, call.Pos()) {
					return true
				}
				if session && acquiresMeterBefore(pass.TypesInfo, decl, call.Pos()) {
					return true
				}
			}
			if session {
				pass.Reportf(call.Pos(),
					"call to %s.%s without meter evidence on the path; "+
						"acquire the query's meter (budget.NewMeter or a "+
						"tenant's QueryMeter) before the call or annotate the "+
						"enclosing function with //convlint:unbudgeted <reason>",
					pkgName, fn.Name())
				return true
			}
			pass.Reportf(call.Pos(),
				"call to %s.%s without a budget.Meter charge on the path; "+
					"charge the meter or annotate the enclosing function with "+
					"//convlint:unbudgeted <reason>", pkgName, fn.Name())
			return true
		})
	}
	return nil
}

// facadePkgPath is the public package; its NewBudgetMeter forwards to
// budget.NewMeter and counts as the same evidence.
const facadePkgPath = "repro"

// acquiresMeterBefore reports whether decl's body acquires a *budget.Meter
// before pos: budget.NewMeter / budget.NewMeterSSSP, a tenant's QueryMeter,
// or the facade's NewBudgetMeter. This is the session rule's evidence — a
// Session.TopK call charges the meter it carries internally, so what the
// caller must show is where that meter came from, not a Charge of its own.
func acquiresMeterBefore(info *types.Info, decl *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == budgetPkgPath:
			switch fn.Name() {
			case "NewMeter", "NewMeterSSSP", "QueryMeter":
				found = true
				return false
			}
		case fn.Pkg().Path() == facadePkgPath && fn.Name() == "NewBudgetMeter":
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil for builtins, conversions,
// and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// chargesBefore reports whether decl's body contains a call to
// (*budget.Meter).Charge at a position before pos. Lexical order is a
// sound approximation of "on the path to the call" for this codebase's
// straight-line selector style; functions with cleverer control flow can
// use the directive.
func chargesBefore(info *types.Info, decl *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Name() != "Charge" {
			return true
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv != nil && namedTypeIs(recv.Type(), budgetPkgPath, "Meter") {
			found = true
			return false
		}
		return true
	})
	return found
}
