package analysis

import (
	"go/ast"
	"go/types"
)

// noCopyTypes are the repo's share-by-pointer types: sssp.Scratch and
// sssp.DijkstraScratch own kernel buffers that must not be duplicated
// mid-traversal, budget.Meter embeds a mutex, and graph.Graph and
// graph.Weighted are CSR views whose slice headers must stay aliased to one
// owner. Copying any of them by value silently forks state.
var noCopyTypes = []struct{ pkg, name string }{
	{ssspPkgPath, "Scratch"},
	{ssspPkgPath, "DijkstraScratch"},
	{budgetPkgPath, "Meter"},
	{"repro/internal/graph", "Graph"},
	{"repro/internal/graph", "Weighted"},
}

// ScratchCopy is a copylocks-style analyzer for the repo's no-copy types.
// It flags by-value copies through assignments, declarations, function
// parameters/results/receivers, call arguments, returns, and
// range-over-slice value variables. Pass pointers (or index into slices of
// the struct) instead.
var ScratchCopy = &Analyzer{
	Name: "scratchcopy",
	Doc:  "flag by-value copies of the sssp scratch types, budget.Meter, and the graph CSR views",
	Run:  runScratchCopy,
}

// isNoCopy reports whether t itself (not a pointer to it) is one of the
// protected structs.
func isNoCopy(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return "", false
	}
	for _, nc := range noCopyTypes {
		if namedTypeIs(t, nc.pkg, nc.name) {
			return nc.name, true
		}
	}
	return "", false
}

func runScratchCopy(pass *Pass) error {
	info := pass.TypesInfo
	exprType := func(e ast.Expr) types.Type {
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			return tv.Type
		}
		// Range-clause value identifiers are definitions, not expressions.
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				return obj.Type()
			}
			if obj := info.Uses[id]; obj != nil {
				return obj.Type()
			}
		}
		return nil
	}
	// copies reports a by-value copy when expr produces a protected struct
	// value. Taking an address, indexing to then point at, or passing
	// pointers never lands here because the expression type is a pointer.
	copies := func(e ast.Expr, context string) {
		if e == nil {
			return
		}
		// Only references to values that already live elsewhere are copies;
		// composite literals and constructor-call results are initialization
		// (the copylocks convention).
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			return
		}
		if name, bad := isNoCopy(exprType(e)); bad {
			pass.Reportf(e.Pos(), "%s copies %s by value; share it by pointer", context, name)
		}
	}
	checkFieldList := func(fl *ast.FieldList, context string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if name, bad := isNoCopy(exprType(f.Type)); bad {
				pass.Reportf(f.Type.Pos(), "%s declared as %s value; use *%s", context, name, name)
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(n.Recv, "receiver")
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.AssignStmt:
				// Skip tuple-from-call forms; a function returning a protected
				// struct is caught at its declaration. Discards into the blank
				// identifier copy nothing observable.
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
						copies(rhs, "assignment")
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					copies(v, "declaration")
				}
			case *ast.CallExpr:
				if isConversionOrBuiltin(info, n) {
					return true
				}
				for _, arg := range n.Args {
					copies(arg, "call argument")
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					copies(r, "return")
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if name, bad := isNoCopy(exprType(n.Value)); bad {
						pass.Reportf(n.Value.Pos(),
							"range value copies %s per iteration; range over the "+
								"index and take &slice[i]", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isConversionOrBuiltin reports whether the call expression is a type
// conversion or a builtin (len, cap, append, ...), whose arguments are not
// ordinary by-value parameter passes.
func isConversionOrBuiltin(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch info.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.InterfaceType, *ast.StructType:
		return true
	}
	return false
}
