// Package analysistest runs an analyzer over golden fixture packages under
// testdata/src and checks its diagnostics against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line expecting a diagnostic carries a trailing comment
//
//	sssp.BFS(g, 0, dist) // want `without a budget.Meter charge`
//
// where the backquoted (or double-quoted) text is a regular expression that
// must match the message of a diagnostic reported on that line. Multiple
// expectations may appear space-separated in one want comment. Every
// diagnostic must be matched by an expectation and vice versa.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRE captures each quoted expectation in a // want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads each fixture package dir under filepath.Join(testdata, "src")
// and reports any mismatch between the analyzer's diagnostics and the
// fixtures' want comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	for _, pkgPath := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
		pkg, err := loader.LoadDir(dir, pkgPath)
		if err != nil {
			t.Errorf("%s: %v", pkgPath, err)
			continue
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: %v", pkgPath, err)
			continue
		}
		check(t, loader.Fset(), pkg, diags)
	}
}

// expectation is one want pattern at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func check(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				// The expectation is everything after the last "// want "
				// marker, which may be a standalone comment or trail other
				// comment text (directive fixtures test the comment itself).
				const marker = "// want "
				idx := strings.LastIndex(c.Text, marker)
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx+len(marker):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !matchWant(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched pattern %q", w.file, w.line, w.re)
		}
	}
}

func matchWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Testdata returns the absolute path of the testdata directory next to the
// caller's package directory.
func Testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(fmt.Errorf("analysistest: %w", err))
	}
	return abs
}
