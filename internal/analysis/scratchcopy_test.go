package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestScratchCopy(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(t), analysis.ScratchCopy, "scratchtest")
}
