package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDirectiveCheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(t), analysis.DirectiveCheck, "directivetest")
}
