package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags heap allocations inside functions marked
// //convlint:hotpath. The BFS kernels' 3.34x all-pairs win rests on
// per-source zero allocation (Scratch reuse); this analyzer keeps that
// property from regressing silently between benchmark runs.
//
// Flagged constructs: make, new, composite literals, closures, and append
// calls whose result lands in a different variable than their source
// (growing a fresh slice). Appending a slice back onto itself
// (q = append(q, v)) is the amortized scratch-queue pattern and is
// allowed — the runtime AllocsPerRun regression test backs it up.
// Allocations inside arguments to panic are error-path only and skipped.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap allocations inside //convlint:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := funcDirective(fd, "hotpath"); !ok {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Append calls already judged through their enclosing assignment;
	// ast.Inspect visits parents first, so the AssignStmt case fills this
	// before the CallExpr case sees the same node.
	judged := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch callee := calleeName(pass.TypesInfo, n); callee {
			case "panic":
				// Allocations feeding a panic message are error-path only.
				return false
			case "make", "new":
				pass.Reportf(n.Pos(), "%s in hot path %s allocates", callee, name)
			case "append":
				if !judged[n] {
					pass.Reportf(n.Pos(),
						"append in expression position in hot path %s; only "+
							"q = append(q, ...) self-appends are allocation-free", name)
				}
			}
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "composite literal in hot path %s allocates", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot path %s allocates", name)
			return false // the closure body is not the hot path itself
		case *ast.AssignStmt:
			// x := append(y, ...) / x = append(y, ...): a copy into x grows a
			// fresh backing array unless x and y are the same slice.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || calleeName(pass.TypesInfo, call) != "append" || len(call.Args) == 0 {
					continue
				}
				judged[call] = true
				if len(n.Lhs) == len(n.Rhs) && !sameExpr(n.Lhs[i], call.Args[0]) {
					pass.Reportf(call.Pos(),
						"append result assigned to a different slice in hot path %s; "+
							"the copy grows a fresh backing array", name)
				}
			}
		}
		return true
	})
}

// calleeName returns the bare name of a called builtin or function, or ""
// for complex callees.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil {
			if _, ok := obj.(*types.Builtin); ok {
				return fun.Name
			}
			return obj.Name()
		}
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// sameExpr reports whether two expressions are structurally identical
// identifier/selector/index chains (q and q, s.queue and s.queue).
func sameExpr(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExpr(a.X, b.X)
	case *ast.StarExpr:
		b, ok := b.(*ast.StarExpr)
		return ok && sameExpr(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(a.X, b.X) && sameExpr(a.Index, b.Index)
	}
	return false
}
