package analysis

import (
	"go/ast"
	"go/types"
)

// scratchTypes are the per-worker traversal scratch types. Ownership rule:
// one worker, one scratch. A scratch that leaks to another goroutine aliases
// every buffer the kernels assume they own exclusively (visited bitmaps,
// frontier queues, wide-lane words).
var scratchTypes = []struct{ pkgPath, name string }{
	{"repro/internal/sssp", "Scratch"},
	{"repro/internal/sssp", "DijkstraScratch"},
	{"repro/internal/dynsssp", "Scratch"},
}

// ScratchEscape enforces worker-ownership of traversal scratch: a
// Scratch/DijkstraScratch value or pointer must not
//
//   - be sent on a channel (handing ownership to an unknown receiver),
//   - be stored in package-level state (visible to every goroutine), or
//   - be captured by a launched closure when it was created outside it —
//     workers must create their own scratch or take &scratches[w], the
//     index-partitioned slot idiom, which stays legal.
//
// The sync.Pool get/put calls in getScratch/putScratch are method-call
// boundaries, not stores, and stay legal: the pool hands each value to
// exactly one goroutine at a time.
//
// Intentional sharing (e.g. a paired sweep reusing one scratch across both
// sweeps of a single worker) is annotated //convlint:shared <reason>.
var ScratchEscape = &Analyzer{
	Name: "scratchescape",
	Doc:  "per-worker scratch must not escape its worker (no channel sends, package state, or cross-goroutine capture)",
	Run:  runScratchEscape,
}

func isScratchType(t types.Type) bool {
	if t == nil {
		return false
	}
	for _, st := range scratchTypes {
		if namedTypeIs(t, st.pkgPath, st.name) {
			return true
		}
	}
	return false
}

func runScratchEscape(pass *Pass) error {
	flow := NewFlow(pass)
	info := pass.TypesInfo
	pkgScope := pass.Pkg.Scope()

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if isScratchType(info.TypeOf(n.Value)) {
					if !suppressedAt(pass, file, n.Pos(), "shared") {
						pass.Reportf(n.Pos(), "scratch sent on a channel escapes its worker")
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Lhs {
					checkScratchStore(pass, flow, file, pkgScope, n.Lhs[i], n.Rhs[i])
				}
			}
			return true
		})
	}

	// Cross-goroutine capture: a scratch (or pointer to one) declared
	// outside a launched closure but used inside it.
	for _, c := range flow.Closures() {
		if !c.Launched {
			continue
		}
		file := fileOf(pass, c.Lit.Pos())
		if file == nil {
			continue
		}
		for v, cap := range c.Captured {
			if !isScratchType(v.Type()) {
				continue
			}
			pos, ok := cap.Has(AccessRead, AccessWrite, AccessFieldWrite, AccessElemWrite, AccessAddr, AccessAddrElem)
			if !ok {
				continue
			}
			// &scratches[w] / scratches[w] element access partitions by
			// index and stays worker-local. That idiom appears as a capture
			// of the *slice* (not scratch-typed), so reaching here means the
			// scratch variable itself crossed the goroutine boundary.
			if suppressedAt(pass, file, pos, "shared") {
				continue
			}
			pass.Reportf(pos, "scratch %s created outside this goroutine closure is captured by it; create it inside the worker or index a per-worker slice", v.Name())
		}
	}
	return nil
}

// checkScratchStore flags stores of scratch values into package-level
// storage (directly, or through a field/element of a package variable).
func checkScratchStore(pass *Pass, flow *Flow, file *ast.File, pkgScope *types.Scope, lhs, rhs ast.Expr) {
	info := pass.TypesInfo
	if !isScratchType(info.TypeOf(rhs)) {
		return
	}
	root := flow.RootObj(lhs)
	if root == nil {
		return
	}
	global := root.Parent() == pkgScope //convlint:nondet scope identity is the semantics, not allocation order
	if v, ok := root.(*types.Var); ok && v.IsField() {
		// Storing into a field: escape only when the base chain starts at a
		// package variable.
		global = baseIsPackageVar(info, pkgScope, lhs)
	}
	if !global {
		return
	}
	if suppressedAt(pass, file, lhs.Pos(), "shared") {
		return
	}
	pass.Reportf(lhs.Pos(), "scratch stored in package-level state escapes its worker")
}

// baseIsPackageVar walks to the base identifier of a selector/index chain
// and reports whether it names a package-scope variable.
func baseIsPackageVar(info *types.Info, pkgScope *types.Scope, e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj, ok := info.Uses[x].(*types.Var)
			//convlint:nondet scope identity is the semantics, not allocation order
			return ok && obj.Parent() == pkgScope
		default:
			return false
		}
	}
}
