package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism is the mechanical half of the bit-identical-results contract:
// the same graph, budget, and seed must produce the same top-k pairs under
// every engine × workers × par setting. Three defect classes are flagged in
// library packages (package main — CLI glue, progress printing — is exempt):
//
//   - Map-order leaks: ranging over a map while appending to an outer slice,
//     sending on a channel, or printing. Appends are legal when the slice is
//     visibly sorted after the loop in the same function (the collect-then-
//     sort idiom obs.WriteMetrics uses).
//
//   - Nondeterministic sources: time.Now/time.Since and the global
//     math/rand functions (rand.Intn, rand.Perm, ...). Methods on a seeded
//     *rand.Rand are fine; so is rand.New(rand.NewSource(seed)).
//
//   - Pointer-identity branches: comparing two pointers with ==/!= (nil
//     checks excluded) makes control flow depend on allocation addresses.
//
// Observational code (trace timestamps, log timing) annotates with
// //convlint:nondet <reason>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "result paths must not leak map order, read time/global rand, or branch on pointer identity",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRange(pass, file, n, stack)
					}
				}
			case *ast.CallExpr:
				checkNondetCall(pass, file, n)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkPointerCompare(pass, file, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags order-dependent effects inside a range-over-map body:
// appends to slices declared outside the loop (unless sorted afterwards),
// channel sends, and printing.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt, stack []ast.Node) {
	info := pass.TypesInfo
	fn := enclosingFuncDecl(file, rng.Pos())
	_ = stack
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || calleeName(info, call) != "append" || len(call.Args) == 0 || i >= len(n.Lhs) {
					continue
				}
				dst, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.Uses[dst].(*types.Var)
				if !ok && info.Defs[dst] != nil {
					v, ok = info.Defs[dst].(*types.Var)
				}
				if !ok || v == nil {
					continue
				}
				// Appending to a variable declared inside the range body is
				// invisible outside one iteration.
				if rng.Body.Pos() <= v.Pos() && v.Pos() <= rng.Body.End() {
					continue
				}
				if sortedAfter(info, fn, v, rng.End()) {
					continue
				}
				if !suppressedAt(pass, file, n.Pos(), "nondet") {
					pass.Reportf(n.Pos(), "append to %s inside range over map leaks map order; sort afterwards or iterate sorted keys", v.Name())
				}
			}
		case *ast.SendStmt:
			if !suppressedAt(pass, file, n.Pos(), "nondet") {
				pass.Reportf(n.Pos(), "channel send inside range over map leaks map order")
			}
		case *ast.CallExpr:
			if name, pkg := calleeQualified(info, n); pkg == "fmt" && strings.HasPrefix(name, "Print") ||
				pkg == "fmt" && strings.HasPrefix(name, "Fprint") {
				if !suppressedAt(pass, file, n.Pos(), "nondet") {
					pass.Reportf(n.Pos(), "printing inside range over map leaks map order")
				}
			}
		}
		return true
	})
}

// sortedAfter reports whether v is passed to a recognized sort call lexically
// after pos inside fn — the collect-then-sort idiom.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, v *types.Var, pos token.Pos) bool {
	if fn == nil || fn.Body == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		name, pkg := calleeQualified(info, call)
		isSort := (pkg == "sort" || pkg == "slices") && (strings.HasPrefix(name, "Sort") ||
			name == "Strings" || name == "Ints" || name == "Float64s" || name == "Stable" || name == "Slice")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == v {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// globalRandFuncs are the math/rand (and rand/v2) package-level functions
// backed by the unseeded global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"IntN": true, "N": true, "Uint32": true, "Uint64": true, "Uint64N": true, "Uint32N": true,
	"UintN": true, "Uint": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
}

// checkNondetCall flags time.Now/time.Since and global math/rand calls.
func checkNondetCall(pass *Pass, file *ast.File, call *ast.CallExpr) {
	callee := calleeFunc(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	if callee.Type().(*types.Signature).Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch callee.Pkg().Path() {
	case "time":
		if callee.Name() == "Now" || callee.Name() == "Since" {
			if !suppressedAt(pass, file, call.Pos(), "nondet") {
				pass.Reportf(call.Pos(), "time.%s in library code breaks run-to-run determinism", callee.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[callee.Name()] {
			if !suppressedAt(pass, file, call.Pos(), "nondet") {
				pass.Reportf(call.Pos(), "global rand.%s uses an unseeded source; thread a seeded *rand.Rand instead", callee.Name())
			}
		}
	}
}

// checkPointerCompare flags ==/!= between two pointer-typed operands where
// neither side is nil.
func checkPointerCompare(pass *Pass, file *ast.File, b *ast.BinaryExpr) {
	info := pass.TypesInfo
	isNil := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && tv.IsNil()
	}
	if isNil(b.X) || isNil(b.Y) {
		return
	}
	isPtr := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Pointer)
		return ok
	}
	if !isPtr(b.X) || !isPtr(b.Y) {
		return
	}
	if suppressedAt(pass, file, b.Pos(), "nondet") {
		return
	}
	pass.Reportf(b.Pos(), "branching on pointer identity is allocation-order dependent; compare values or ids")
}

// calleeQualified returns (function name, package name) for pkg.Fn() calls,
// or ("", "") otherwise.
func calleeQualified(info *types.Info, call *ast.CallExpr) (name, pkg string) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Name(), fn.Pkg().Name()
}
