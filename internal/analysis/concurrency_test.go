package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestAtomicCheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(t), analysis.AtomicCheck, "atomictest")
}

func TestCaptureCheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(t), analysis.CaptureCheck, "capturetest")
}

func TestScratchEscape(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(t), analysis.ScratchEscape, "escapetest")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(t), analysis.Determinism, "determtest")
}

// fixtureDirs maps every analyzer to its golden fixture package under
// testdata/src. The names predate a uniform convention (budgetcheck uses
// budgettest, scratchcopy uses scratchtest), so the mapping is explicit.
var fixtureDirs = map[string]string{
	"budgetcheck":    "budgettest",
	"hotalloc":       "hotalloctest",
	"scratchcopy":    "scratchtest",
	"directivecheck": "directivetest",
	"atomiccheck":    "atomictest",
	"capturecheck":   "capturetest",
	"scratchescape":  "escapetest",
	"determinism":    "determtest",
}

// TestEveryAnalyzerHasFixtures keeps the suite honest: registering an
// analyzer without golden fixtures fails here, not in review.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	testdata := analysistest.Testdata(t)
	for _, a := range analysis.All() {
		dir, ok := fixtureDirs[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no fixture directory registered in fixtureDirs", a.Name)
			continue
		}
		pkgDir := filepath.Join(testdata, "src", dir)
		entries, err := os.ReadDir(pkgDir)
		if err != nil {
			t.Errorf("analyzer %s: fixture dir %s: %v", a.Name, pkgDir, err)
			continue
		}
		goFiles := 0
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				goFiles++
			}
		}
		if goFiles == 0 {
			t.Errorf("analyzer %s: fixture dir %s has no Go files", a.Name, pkgDir)
		}
	}
	if len(fixtureDirs) != len(analysis.All()) {
		t.Errorf("fixtureDirs has %d entries, All() has %d analyzers", len(fixtureDirs), len(analysis.All()))
	}
}
