// Package analysis is a self-contained static-analysis framework plus the
// repo-specific analyzers that guard the paper reproduction's core
// invariants: budget accounting around SSSP entry points, allocation-free
// hot paths in the BFS kernels, no-copy discipline for scratch and meter
// state, and — since the traversal kernels went multicore — the concurrency
// contracts: atomic-everywhere access, goroutine capture hygiene, worker
// ownership of scratch, and mechanical determinism of result paths.
//
// The framework mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic) but is built entirely on the standard
// library's go/ast, go/types, and go/importer, so the module keeps its
// zero-dependency footprint. The concurrency analyzers additionally share a
// function-level dataflow layer (Flow in dataflow.go): a launch walk over
// goroutine closures and the worker-pool spawner idiom, a capture
// classification per closed-over variable, and a def-use union-find that
// tracks storage aliasing across slice-header copies. Analyzers are run
// over fully type-checked packages by cmd/convlint (the multichecker
// driver) and by the analysistest harness in unit tests.
//
// The analyzers understand four source directives:
//
//	//convlint:hotpath
//	    Placed in a function's doc comment. Marks the function as an
//	    allocation-free hot path; hotalloc flags heap allocations inside it.
//
//	//convlint:unbudgeted <reason>
//	    Placed in a function's doc comment. Documents why the function may
//	    call budget-relevant sssp entry points without charging a
//	    budget.Meter (ground-truth sweeps, diagnostics helpers). The reason
//	    is mandatory; directivecheck rejects bare suppressions.
//
//	//convlint:shared <reason>
//	    Placed in a function's doc comment (covers the whole function) or on
//	    a finding's line / the line above it. Documents intentional
//	    cross-goroutine sharing that atomiccheck, capturecheck, or
//	    scratchescape would otherwise flag: phase-separated plain access,
//	    word-partitioned writes, mutex-guarded folds. The reason is
//	    mandatory.
//
//	//convlint:nondet <reason>
//	    Same placement as shared. Documents deliberate nondeterminism that
//	    the determinism analyzer would flag — observational timing, semantic
//	    identity comparisons — and why it never reaches result paths. The
//	    reason is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is a single finding reported by an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer describes one static check. Run inspects a type-checked package
// through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name is the analyzer's identifier, used as the diagnostic prefix and
	// by the driver's per-analyzer enable flags.
	Name string
	// Doc is a short description shown by the driver's help output.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to the package and returns the accumulated
// diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		BudgetCheck, HotAlloc, ScratchCopy, DirectiveCheck,
		AtomicCheck, CaptureCheck, ScratchEscape, Determinism,
	}
}

// fileOf returns the pass file containing pos, or nil.
func fileOf(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}

// namedTypeIs reports whether t (after unwrapping pointers and aliases) is
// the named type pkgPath.name. Types are matched structurally by path and
// name rather than by object identity, so packages loaded through different
// importer instances still compare equal.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// enclosingFuncDecl returns the innermost top-level function declaration in
// file whose body spans pos, or nil when pos sits outside any function
// (package-level initializers).
func enclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			return fd
		}
	}
	return nil
}
