package analysis

import (
	"go/ast"
	"strings"
)

// DirectiveCheck validates every //convlint: directive in the package:
// the verb must be known, //convlint:unbudgeted must carry a reason, and
// the directive must sit in a function declaration's doc comment (the only
// position the other analyzers read). A misspelled or misplaced directive
// therefore fails the build instead of silently suppressing nothing.
var DirectiveCheck = &Analyzer{
	Name: "directivecheck",
	Doc:  "validate //convlint: directives (known verb, reason, placement)",
	Run:  runDirectiveCheck,
}

func runDirectiveCheck(pass *Pass) error {
	for _, file := range pass.Files {
		// Comment groups that are function doc comments — the one valid home
		// for convlint directives.
		funcDocs := make(map[*ast.CommentGroup]bool)
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				checkDirectiveComment(pass, c, funcDocs[group])
			}
		}
	}
	return nil
}

func checkDirectiveComment(pass *Pass, c *ast.Comment, inFuncDoc bool) {
	text := c.Text
	if !strings.Contains(text, "convlint") {
		return
	}
	d, ok := parseDirective(c)
	if !ok {
		// Mentions convlint but is not a well-formed directive. Catch the
		// near-miss spellings that would otherwise suppress nothing:
		// "// convlint:..." (space) and "//convlint ..." (no colon).
		trimmed := strings.TrimPrefix(text, "//")
		stripped := strings.TrimSpace(trimmed)
		if strings.HasPrefix(stripped, "convlint") && (trimmed != stripped || !strings.HasPrefix(stripped, "convlint:")) {
			pass.Reportf(c.Pos(),
				"malformed convlint directive %q; write //convlint:<verb> with no spaces before the verb", text)
		}
		return
	}
	if !knownVerbs[d.Verb] {
		pass.Reportf(c.Pos(), "unknown convlint directive verb %q", d.Verb)
		return
	}
	if d.Verb == "unbudgeted" && d.Args == "" {
		pass.Reportf(c.Pos(), "//convlint:unbudgeted requires a reason")
	}
	if !inFuncDoc {
		pass.Reportf(c.Pos(),
			"//convlint:%s must be part of a function declaration's doc comment", d.Verb)
	}
}
