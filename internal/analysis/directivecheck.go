package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveCheck validates every //convlint: directive in the package: the
// verb must be known, reason-bearing verbs (unbudgeted, shared, nondet) must
// carry one, and the directive must sit where its analyzer reads it —
// function doc comments for all verbs, plus lines inside a function body for
// the per-finding suppressions (shared, nondet). A misspelled or misplaced
// directive therefore fails the build instead of silently suppressing
// nothing.
var DirectiveCheck = &Analyzer{
	Name: "directivecheck",
	Doc:  "validate //convlint: directives (known verb, reason, placement)",
	Run:  runDirectiveCheck,
}

func runDirectiveCheck(pass *Pass) error {
	for _, file := range pass.Files {
		// Comment groups that are function doc comments — the one home valid
		// for every directive verb.
		funcDocs := make(map[*ast.CommentGroup]bool)
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				checkDirectiveComment(pass, c, funcDocs[group], inFuncBody(file, c.Pos()))
			}
		}
	}
	return nil
}

// inFuncBody reports whether pos lies inside some function declaration's
// body — the valid home for line-level suppressions.
func inFuncBody(file *ast.File, pos token.Pos) bool {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil &&
			fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			return true
		}
	}
	return false
}

func checkDirectiveComment(pass *Pass, c *ast.Comment, inFuncDoc, inBody bool) {
	text := c.Text
	if !strings.Contains(text, "convlint") {
		return
	}
	d, ok := parseDirective(c)
	if !ok {
		// Mentions convlint but is not a well-formed directive. Catch the
		// near-miss spellings that would otherwise suppress nothing:
		// "// convlint:..." (space) and "//convlint ..." (no colon).
		trimmed := strings.TrimPrefix(text, "//")
		stripped := strings.TrimSpace(trimmed)
		if strings.HasPrefix(stripped, "convlint") && (trimmed != stripped || !strings.HasPrefix(stripped, "convlint:")) {
			pass.Reportf(c.Pos(),
				"malformed convlint directive %q; write //convlint:<verb> with no spaces before the verb", text)
		}
		return
	}
	if !knownVerbs[d.Verb] {
		pass.Reportf(c.Pos(), "unknown convlint directive verb %q", d.Verb)
		return
	}
	if reasonVerbs[d.Verb] && d.Args == "" {
		pass.Reportf(c.Pos(), "//convlint:%s requires a reason", d.Verb)
	}
	switch {
	case inFuncDoc:
	case bodyVerbs[d.Verb] && inBody:
	case bodyVerbs[d.Verb]:
		pass.Reportf(c.Pos(),
			"//convlint:%s must be in a function's doc comment or on a line inside a function body", d.Verb)
	default:
		pass.Reportf(c.Pos(),
			"//convlint:%s must be part of a function declaration's doc comment", d.Verb)
	}
}
