package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces all convlint source directives. Like go:build
// and go:generate, a directive comment has no space after "//".
const directivePrefix = "//convlint:"

// Directive is one parsed //convlint: comment.
type Directive struct {
	Verb string // "hotpath", "unbudgeted", ...
	Args string // remainder of the line after the verb, trimmed
	Pos  token.Pos
}

// knownVerbs enumerates the directive vocabulary. directivecheck rejects
// anything else so misspelled suppressions fail loudly instead of silently
// not suppressing.
var knownVerbs = map[string]bool{
	"hotpath":    true,
	"unbudgeted": true,
	"shared":     true,
	"nondet":     true,
}

// reasonVerbs are directives whose argument is a mandatory human-readable
// justification. Suppressing a concurrency or determinism finding without
// saying why defeats the audit trail the directives exist to build.
var reasonVerbs = map[string]bool{
	"unbudgeted": true,
	"shared":     true,
	"nondet":     true,
}

// bodyVerbs may appear on any line inside a function body (suppressing the
// finding on that line or the next) in addition to function doc comments.
// hotpath and unbudgeted keep their doc-comment-only discipline: they change
// how a whole function is analyzed, not one finding.
var bodyVerbs = map[string]bool{
	"shared": true,
	"nondet": true,
}

// parseDirective parses a single comment into a Directive. The second
// result reports whether the comment is a convlint directive at all.
func parseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	// A trailing "// want ..." marker belongs to the analysistest golden
	// harness (which places expectations on the diagnostic's own line), not
	// to the directive.
	if i := strings.Index(rest, "// want "); i >= 0 {
		rest = rest[:i]
	}
	verb, args, _ := strings.Cut(rest, " ")
	return Directive{Verb: verb, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// funcDirective returns the first directive with the given verb in the
// function declaration's doc comment, if any.
func funcDirective(decl *ast.FuncDecl, verb string) (Directive, bool) {
	if decl == nil || decl.Doc == nil {
		return Directive{}, false
	}
	for _, c := range decl.Doc.List {
		if d, ok := parseDirective(c); ok && d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// lineDirectives indexes a file's body-level directives by the source line
// they govern: a directive on line L suppresses findings on L (trailing
// comment) and on L+1 (comment-above form, matching nolint convention).
func lineDirectives(fset *token.FileSet, file *ast.File, verb string) map[int]Directive {
	lines := map[int]Directive{}
	for _, group := range file.Comments {
		for _, c := range group.List {
			d, ok := parseDirective(c)
			if !ok || d.Verb != verb {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = d
			if _, taken := lines[line+1]; !taken {
				lines[line+1] = d
			}
		}
	}
	return lines
}

// suppressedAt reports whether a finding at pos (inside file) is silenced by
// a directive with the given verb: either on the finding's line / the line
// above it, or in the enclosing function declaration's doc comment.
func suppressedAt(pass *Pass, file *ast.File, pos token.Pos, verb string) bool {
	if lines := lineDirectives(pass.Fset, file, verb); len(lines) > 0 {
		if _, ok := lines[pass.Fset.Position(pos).Line]; ok {
			return true
		}
	}
	if decl := enclosingFuncDecl(file, pos); decl != nil {
		if _, ok := funcDirective(decl, verb); ok {
			return true
		}
	}
	return false
}
