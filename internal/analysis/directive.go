package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces all convlint source directives. Like go:build
// and go:generate, a directive comment has no space after "//".
const directivePrefix = "//convlint:"

// Directive is one parsed //convlint: comment.
type Directive struct {
	Verb string // "hotpath", "unbudgeted", ...
	Args string // remainder of the line after the verb, trimmed
	Pos  token.Pos
}

// knownVerbs enumerates the directive vocabulary. directivecheck rejects
// anything else so misspelled suppressions fail loudly instead of silently
// not suppressing.
var knownVerbs = map[string]bool{
	"hotpath":    true,
	"unbudgeted": true,
}

// parseDirective parses a single comment into a Directive. The second
// result reports whether the comment is a convlint directive at all.
func parseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	// A trailing "// want ..." marker belongs to the analysistest golden
	// harness (which places expectations on the diagnostic's own line), not
	// to the directive.
	if i := strings.Index(rest, "// want "); i >= 0 {
		rest = rest[:i]
	}
	verb, args, _ := strings.Cut(rest, " ")
	return Directive{Verb: verb, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// funcDirective returns the first directive with the given verb in the
// function declaration's doc comment, if any.
func funcDirective(decl *ast.FuncDecl, verb string) (Directive, bool) {
	if decl == nil || decl.Doc == nil {
		return Directive{}, false
	}
	for _, c := range decl.Doc.List {
		if d, ok := parseDirective(c); ok && d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}
