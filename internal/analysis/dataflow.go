package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Function-level dataflow over one type-checked package, shared by the
// concurrency-contract analyzers (atomiccheck, capturecheck, scratchescape,
// determinism). Three facts are computed, all on the standard library's
// go/ast + go/types only:
//
//   - A launch walk: which function literals may run on a goroutine other
//     than their creator's. A literal is launched when a `go` statement
//     starts it (or passes it to the started call, the pprof.Do idiom), when
//     it is handed to a spawner — an in-package function that forwards a
//     func-typed parameter onto a goroutine, like sssp.sweepWorker — or
//     transitively: literals nested in, bound to variables referenced from,
//     or otherwise reachable from a launched literal run on its goroutine.
//
//   - A capture walk: for every literal, the variables it closes over and
//     how it touches them (read, whole-variable write, field write, element
//     write/index, address-of), plus whether the variable is the loop
//     variable of an enclosing for/range statement.
//
//   - Def-use aliasing: a union-find over storage roots (struct fields,
//     package variables, locals) merged at every `a = b` copy of slice or
//     pointer values, so `vis := r.vis` and `r.vis = s.vis` all name one
//     storage class. atomiccheck uses it to see that a CAS in one function
//     and a plain store in another hit the same bitmap.
//
// The walk is flow-insensitive and intra-package by design: it over-
// approximates sharing (a literal marked launched may in fact run inline),
// which is the right polarity for analyzers whose findings can be silenced
// with a reasoned //convlint:shared directive.

// AccessKind classifies how a closure touches a captured variable.
type AccessKind int

const (
	// AccessRead covers value reads, method calls, and passing the variable
	// (or an element/field of it) by value.
	AccessRead AccessKind = iota
	// AccessWrite is a whole-variable assignment or ++/-- of the captured
	// variable itself (v = x, v++, v = append(v, ...)).
	AccessWrite
	// AccessFieldWrite stores through a field path rooted at the variable
	// (v.f = x), mutating state every holder of v observes.
	AccessFieldWrite
	// AccessElemWrite stores through an index path rooted at the variable
	// (v[i] = x, v[i].f = x) — the index-partitioned worker idiom.
	AccessElemWrite
	// AccessAddr takes the address of the whole variable (&v), after which
	// any aliasing discipline is out of lexical reach.
	AccessAddr
	// AccessAddrElem takes the address of an element (&v[i]), the
	// per-worker-slot idiom (s := &scratches[w]).
	AccessAddrElem
)

// Capture is one variable a function literal closes over.
type Capture struct {
	Var *types.Var
	// Kinds holds the distinct access kinds observed, with a representative
	// position each.
	Kinds map[AccessKind]token.Pos
	// LoopVar reports that Var is the loop variable of a for/range statement
	// that encloses the literal.
	LoopVar bool
}

// Has reports whether any of the given kinds was observed, returning the
// first matching representative position.
func (c *Capture) Has(kinds ...AccessKind) (token.Pos, bool) {
	for _, k := range kinds {
		if pos, ok := c.Kinds[k]; ok {
			return pos, true
		}
	}
	return token.NoPos, false
}

// Closure is the dataflow summary of one function literal.
type Closure struct {
	Lit *ast.FuncLit
	// Decl is the top-level function declaration the literal appears in
	// (nil for package-level initializer expressions).
	Decl *ast.FuncDecl
	// Launched reports the literal may execute on another goroutine.
	Launched bool
	// LaunchInLoop reports a launch site inside a for/range statement, i.e.
	// several instances of the literal may run concurrently.
	LaunchInLoop bool
	// Captured maps each closed-over variable to its accesses.
	Captured map[*types.Var]*Capture
}

// Flow is the package-level dataflow fact base. Build it once per Pass with
// NewFlow and share it across analyzers (each analyzer constructs its own in
// this suite; construction is two linear walks plus small fixpoints).
type Flow struct {
	pass *Pass

	// closures maps every function literal in the package to its summary.
	closures map[*ast.FuncLit]*Closure
	// funcDecls maps type-checker function objects to their declarations.
	funcDecls map[*types.Func]*ast.FuncDecl
	// spawnerParams marks func-typed parameters that may run on another
	// goroutine: spawnerParams[fn][i] for parameter index i of fn.
	spawnerParams map[*types.Func]map[int]bool
	// atomicParams marks pointer parameters used exclusively through
	// sync/atomic (the orUint64 idiom): atomicParams[fn][i].
	atomicParams map[*types.Func]map[int]bool
	// aliasParent is the union-find forest over storage roots.
	aliasParent map[types.Object]types.Object
	// litVars maps variables to the literals assigned to them, for the
	// launch fixpoint (foldEcc := func(...){...}; go worker(foldEcc)).
	litVars map[*types.Var][]*ast.FuncLit
	// enclosing maps every literal to its lexical parent stack, innermost
	// last, used for loop-variable detection.
	litStacks map[*ast.FuncLit][]ast.Node
}

// NewFlow computes the dataflow fact base for the pass's package.
func NewFlow(pass *Pass) *Flow {
	f := &Flow{
		pass:          pass,
		closures:      map[*ast.FuncLit]*Closure{},
		funcDecls:     map[*types.Func]*ast.FuncDecl{},
		spawnerParams: map[*types.Func]map[int]bool{},
		atomicParams:  map[*types.Func]map[int]bool{},
		aliasParent:   map[types.Object]types.Object{},
		litVars:       map[*types.Var][]*ast.FuncLit{},
		litStacks:     map[*ast.FuncLit][]ast.Node{},
	}
	f.collect()
	f.launchFixpoint()
	f.captureWalk()
	f.atomicParamWalk()
	return f
}

// inspectStack walks root like ast.Inspect but hands fn the stack of open
// ancestor nodes (outermost first, not including n itself).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// collect gathers declarations, literals, literal-to-variable bindings, and
// the alias union-find in one pass over the files.
func (f *Flow) collect() {
	info := f.pass.TypesInfo
	for _, file := range f.pass.Files {
		var curDecl *ast.FuncDecl
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				curDecl = n
				if obj, ok := info.Defs[n.Name].(*types.Func); ok {
					f.funcDecls[obj] = n
				}
			case *ast.FuncLit:
				f.closures[n] = &Closure{Lit: n, Decl: curDecl, Captured: map[*types.Var]*Capture{}}
				f.litStacks[n] = append([]ast.Node(nil), stack...)
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						f.recordBinding(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						f.recordBinding(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
}

// recordBinding handles one lhs = rhs pair: function literals bound to
// variables feed the launch fixpoint; slice/pointer copies merge alias roots.
func (f *Flow) recordBinding(lhs, rhs ast.Expr) {
	info := f.pass.TypesInfo
	if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
		if id, ok := lhs.(*ast.Ident); ok {
			if v := f.varOf(id); v != nil {
				f.litVars[v] = append(f.litVars[v], lit)
			}
		}
		return
	}
	lo, ro := f.RootObj(lhs), f.RootObj(rhs)
	if lo == nil || ro == nil || lo == ro {
		return
	}
	// Only reference-typed copies alias storage; value copies fork it.
	if t := info.TypeOf(rhs); t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Pointer:
			f.union(lo, ro)
		}
	}
}

// varOf resolves an identifier to its variable object (definition or use).
func (f *Flow) varOf(id *ast.Ident) *types.Var {
	info := f.pass.TypesInfo
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// RootObj resolves an expression to the storage root it names: the variable
// or struct field at the base of any indexing/slicing/deref/selection chain.
// Returns nil for expressions without a nameable root (call results,
// literals).
func (f *Flow) RootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if v := f.varOf(x); v != nil {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// A field or package-variable selection is itself the root; the
			// receiver chain only locates it.
			if v, ok := f.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// find returns the union-find representative of o.
func (f *Flow) find(o types.Object) types.Object {
	for {
		p, ok := f.aliasParent[o]
		if !ok || p == o {
			return o
		}
		// Path halving.
		if gp, ok := f.aliasParent[p]; ok {
			f.aliasParent[o] = gp
		}
		o = p
	}
}

func (f *Flow) union(a, b types.Object) {
	ra, rb := f.find(a), f.find(b)
	if ra != rb {
		f.aliasParent[ra] = rb
	}
}

// Canon returns the canonical storage root for o: every variable or field
// connected to o by reference-copy assignments maps to the same object.
func (f *Flow) Canon(o types.Object) types.Object { return f.find(o) }

// CanonRoot resolves an expression to its canonical storage root, or nil.
func (f *Flow) CanonRoot(e ast.Expr) types.Object {
	o := f.RootObj(e)
	if o == nil {
		return nil
	}
	return f.find(o)
}

// launchFixpoint marks launched literals. Seed: literals started by (or
// passed to) `go` statements. Then iterate: spawner parameters propagate
// launches through in-package calls; literals nested in or referenced from
// launched literals are launched.
func (f *Flow) launchFixpoint() {
	info := f.pass.TypesInfo

	launchLit := func(lit *ast.FuncLit, inLoop bool) bool {
		c := f.closures[lit]
		if c == nil {
			return false
		}
		changed := !c.Launched || (inLoop && !c.LaunchInLoop)
		c.Launched = true
		c.LaunchInLoop = c.LaunchInLoop || inLoop
		return changed
	}
	markSpawner := func(fn *types.Func, idx int) bool {
		if fn == nil || idx < 0 {
			return false
		}
		set := f.spawnerParams[fn]
		if set == nil {
			set = map[int]bool{}
			f.spawnerParams[fn] = set
		}
		if set[idx] {
			return false
		}
		set[idx] = true
		return true
	}
	// paramIndex returns which parameter of the enclosing declaration obj is,
	// or -1.
	paramIndex := func(decl *ast.FuncDecl, obj types.Object) int {
		if decl == nil || decl.Type.Params == nil {
			return -1
		}
		idx := 0
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if info.Defs[name] == obj {
					return idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
		return -1
	}
	inLoop := func(stack []ast.Node, within ast.Node) bool {
		for _, n := range stack {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true
			case *ast.FuncLit, *ast.FuncDecl:
				// Loops outside the nearest function boundary don't multiply
				// this launch; reset.
			}
		}
		_ = within
		return false
	}
	// loopScope trims the stack to the innermost function, so loops in outer
	// functions don't count.
	trimToFunc := func(stack []ast.Node) []ast.Node {
		for i := len(stack) - 1; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.FuncLit, *ast.FuncDecl:
				return stack[i+1:]
			}
		}
		return stack
	}

	for pass := 0; ; pass++ {
		changed := false
		for _, file := range f.pass.Files {
			var curDecl *ast.FuncDecl
			inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok {
					curDecl = fd
				}
				// declObj is the function object of the enclosing declaration.
				var declObj *types.Func
				if curDecl != nil {
					declObj, _ = info.Defs[curDecl.Name].(*types.Func)
				}

				launchedCtx := false // are we lexically inside a launched literal?
				for _, a := range stack {
					if lit, ok := a.(*ast.FuncLit); ok && f.closures[lit] != nil && f.closures[lit].Launched {
						launchedCtx = true
						break
					}
				}

				switch n := n.(type) {
				case *ast.GoStmt:
					loop := inLoop(trimToFunc(stack), n)
					if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
						changed = launchLit(lit, loop) || changed
					}
					for _, arg := range n.Call.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							changed = launchLit(lit, loop) || changed
						}
						changed = f.markLaunchedValue(arg, loop, launchLit) || changed
					}
					// `go p(...)` / passing p to a go'd call launches param p.
					if id, ok := ast.Unparen(n.Call.Fun).(*ast.Ident); ok {
						if idx := paramIndex(curDecl, info.Uses[id]); idx >= 0 {
							changed = markSpawner(declObj, idx) || changed
						}
					}
					for _, arg := range n.Call.Args {
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
							if idx := paramIndex(curDecl, info.Uses[id]); idx >= 0 {
								changed = markSpawner(declObj, idx) || changed
							}
						}
					}
				case *ast.CallExpr:
					callee := calleeFunc(info, n)
					spawnIdx := f.spawnerParams[callee]
					for i, arg := range n.Args {
						argLit, isLit := ast.Unparen(arg).(*ast.FuncLit)
						spawned := spawnIdx[i]
						if spawned {
							loop := inLoop(trimToFunc(stack), n)
							if isLit {
								changed = launchLit(argLit, loop) || changed
							} else {
								changed = f.markLaunchedValue(arg, loop, launchLit) || changed
							}
							// Forwarding one of our own params to a spawner
							// makes us a spawner for it.
							if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
								if idx := paramIndex(curDecl, info.Uses[id]); idx >= 0 {
									changed = markSpawner(declObj, idx) || changed
								}
							}
						}
					}
					// Calling a func-typed parameter inside a launched literal
					// means callers' arguments run on that goroutine.
					if launchedCtx {
						if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
							if idx := paramIndex(curDecl, info.Uses[id]); idx >= 0 {
								changed = markSpawner(declObj, idx) || changed
							}
						}
					}
				case *ast.Ident:
					// Any reference to a literal-bound variable or func param
					// from inside a launched literal escapes to that goroutine.
					if launchedCtx {
						if v := f.varOf(n); v != nil {
							loop := false
							for _, a := range stack {
								if lit, ok := a.(*ast.FuncLit); ok && f.closures[lit] != nil && f.closures[lit].Launched {
									loop = f.closures[lit].LaunchInLoop
									break
								}
							}
							for _, lit := range f.litVars[v] {
								changed = launchLit(lit, loop) || changed
							}
							if idx := paramIndex(curDecl, v); idx >= 0 {
								changed = markSpawner(declObj, idx) || changed
							}
						}
					}
				case *ast.FuncLit:
					// Nested literals run on their parent's goroutine.
					if launchedCtx {
						parentLoop := false
						for _, a := range stack {
							if lit, ok := a.(*ast.FuncLit); ok && f.closures[lit] != nil && f.closures[lit].Launched {
								parentLoop = f.closures[lit].LaunchInLoop
								break
							}
						}
						changed = launchLit(n, parentLoop) || changed
					}
				}
				return true
			})
		}
		if !changed || pass > 10 {
			return
		}
	}
}

// markLaunchedValue marks literals bound to a variable-valued argument as
// launched (the `go worker(fn)` form where fn holds literals).
func (f *Flow) markLaunchedValue(arg ast.Expr, inLoop bool, launch func(*ast.FuncLit, bool) bool) bool {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return false
	}
	v := f.varOf(id)
	if v == nil {
		return false
	}
	changed := false
	for _, lit := range f.litVars[v] {
		changed = launch(lit, inLoop) || changed
	}
	return changed
}

// captureWalk fills every closure's captured-variable map.
func (f *Flow) captureWalk() {
	for lit, c := range f.closures {
		f.captureOne(lit, c)
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && node.Pos() <= obj.Pos() && obj.Pos() <= node.End()
}

func (f *Flow) captureOne(lit *ast.FuncLit, c *Closure) {
	info := f.pass.TypesInfo
	pkgScope := f.pass.Pkg.Scope()
	record := func(v *types.Var, kind AccessKind, pos token.Pos) {
		cap := c.Captured[v]
		if cap == nil {
			cap = &Capture{Var: v, Kinds: map[AccessKind]token.Pos{}}
			c.Captured[v] = cap
			cap.LoopVar = f.isLoopVar(v, lit)
		}
		if _, ok := cap.Kinds[kind]; !ok {
			cap.Kinds[kind] = pos
		}
	}
	inspectStack(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared in an enclosing function, not in this literal,
		// not package-level (package state is atomiccheck's beat).
		//convlint:nondet scope identity is the semantics, not allocation order
		if v.Parent() == pkgScope || v.Parent() == types.Universe || declaredWithin(v, lit) {
			return true
		}
		kind := classifyAccess(id, stack)
		record(v, kind, id.Pos())
		return true
	})
}

// classifyAccess determines how the identifier at the bottom of stack is
// used: written whole, written through a field or element path, address
// taken, or read.
func classifyAccess(id *ast.Ident, stack []ast.Node) AccessKind {
	// Climb the selector/index/slice/deref chain rooted at id.
	cur := ast.Node(id)
	sawSelector, sawIndex := false, false
	i := len(stack) - 1
	for ; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.SelectorExpr:
			if p.X == cur {
				sawSelector = true
				cur = p
				continue
			}
		case *ast.IndexExpr:
			if p.X == cur {
				sawIndex = true
				cur = p
				continue
			}
			if p.Index == cur {
				return AccessRead
			}
		case *ast.SliceExpr:
			if p.X == cur {
				sawIndex = true
				cur = p
				continue
			}
		case *ast.StarExpr:
			if p.X == cur {
				cur = p
				continue
			}
		}
		break
	}
	if i < 0 {
		return AccessRead
	}
	switch p := stack[i].(type) {
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == cur {
				switch {
				case sawIndex:
					return AccessElemWrite
				case sawSelector:
					return AccessFieldWrite
				default:
					return AccessWrite
				}
			}
		}
	case *ast.IncDecStmt:
		if p.X == cur {
			switch {
			case sawIndex:
				return AccessElemWrite
			case sawSelector:
				return AccessFieldWrite
			default:
				return AccessWrite
			}
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND && p.X == cur {
			if sawIndex {
				return AccessAddrElem
			}
			return AccessAddr
		}
	}
	return AccessRead
}

// isLoopVar reports whether v is the loop variable of a for/range statement
// that encloses lit (the classic captured-iteration-variable shape).
func (f *Flow) isLoopVar(v *types.Var, lit *ast.FuncLit) bool {
	for _, n := range f.litStacks[lit] {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if (n.Key != nil && declaredAt(f.pass.TypesInfo, n.Key, v)) ||
				(n.Value != nil && declaredAt(f.pass.TypesInfo, n.Value, v)) {
				return true
			}
		case *ast.ForStmt:
			if n.Init != nil && declaredWithin(v, n.Init) {
				return true
			}
		}
	}
	return false
}

// declaredAt reports whether expr is an identifier defining v.
func declaredAt(info *types.Info, expr ast.Expr, v *types.Var) bool {
	id, ok := expr.(*ast.Ident)
	return ok && info.Defs[id] == v
}

// atomicParamWalk computes which pointer parameters are used exclusively
// through sync/atomic, so calls like orUint64(&words[i], v) count as atomic
// accesses of words. One backward pass then a fixpoint for accessor chains.
func (f *Flow) atomicParamWalk() {
	for pass := 0; pass < 4; pass++ {
		changed := false
		for fn, decl := range f.funcDecls {
			if decl.Body == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if f.atomicParams[fn][i] {
					continue
				}
				ptr, ok := p.Type().Underlying().(*types.Pointer)
				if !ok {
					continue
				}
				if _, ok := ptr.Elem().Underlying().(*types.Basic); !ok {
					continue
				}
				if f.paramOnlyAtomic(decl, p) {
					set := f.atomicParams[fn]
					if set == nil {
						set = map[int]bool{}
						f.atomicParams[fn] = set
					}
					set[i] = true
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// paramOnlyAtomic reports whether every use of p in decl's body is as a
// pointer argument to sync/atomic (or to an already-classified atomic
// accessor in this package).
func (f *Flow) paramOnlyAtomic(decl *ast.FuncDecl, p *types.Var) bool {
	info := f.pass.TypesInfo
	used, ok := false, true
	inspectStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || info.Uses[id] != p {
			return true
		}
		used = true
		// The use must be an argument of an atomic call.
		if len(stack) == 0 {
			ok = false
			return true
		}
		call, isCall := stack[len(stack)-1].(*ast.CallExpr)
		if !isCall {
			ok = false
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			ok = false
			return true
		}
		if isAtomicFunc(callee) {
			return true
		}
		// Passing to another atomic accessor at an atomic index is fine.
		for i, arg := range call.Args {
			if ast.Unparen(arg) == ast.Node(id) && f.atomicParams[callee][i] {
				return true
			}
		}
		ok = false
		return true
	})
	return used && ok
}

// AtomicParamIndices returns the parameter indices of fn proven to be
// accessed only through sync/atomic, if any.
func (f *Flow) AtomicParamIndices(fn *types.Func) map[int]bool { return f.atomicParams[fn] }

// Closures returns the summary of every function literal in the package.
func (f *Flow) Closures() map[*ast.FuncLit]*Closure { return f.closures }

// ClosureOf returns the summary for lit (nil if lit is foreign to the pass).
func (f *Flow) ClosureOf(lit *ast.FuncLit) *Closure { return f.closures[lit] }

// isAtomicFunc reports whether fn is a package-level function of
// sync/atomic.
func isAtomicFunc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil
}
