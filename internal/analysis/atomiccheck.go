package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCheck enforces the atomic-everywhere rule: once any site accesses a
// storage location through sync/atomic, every site must. A plain load racing
// an atomic store is still a data race (and, worse, one the race detector
// only catches when the interleaving happens), so mixed access is a finding
// even when today's call structure makes it safe.
//
// The check is alias-aware via the Flow union-find: `vis := r.vis` followed
// by `atomic.CompareAndSwapUint64(&vis[w], ...)` marks the `r.vis` storage
// class atomic, and a later plain `s.vis[w] |= bit` in another function of
// the same package is flagged. In-package atomic accessors (pointer params
// used only through sync/atomic, like the orUint64 CAS helper) count as
// atomic sites for their arguments.
//
// Deliberately mixed access — phase-separated plain initialization of a
// bitmap that is CAS-claimed during traversal, word-partitioned plain writes
// — is silenced with a reasoned //convlint:shared directive on the function
// or the specific line.
//
// The check also flags by-value copies of sync/atomic types (atomic.Int64
// and friends), which fork the counter and discard its identity.
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "storage accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicCheck,
}

func runAtomicCheck(pass *Pass) error {
	flow := NewFlow(pass)
	info := pass.TypesInfo

	// Pass 1: collect atomic storage roots and remember which expressions
	// are themselves the atomic access (so pass 2 skips them).
	atomicRoots := map[types.Object]token.Pos{} // canonical root -> representative atomic site
	atomicArgs := map[ast.Expr]bool{}           // &x arguments of atomic calls (the x)

	markAtomicArg := func(arg ast.Expr) {
		// Atomic call operands are &expr (or a *T-typed value; then the
		// pointee root is out of lexical reach and we only record the arg).
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return
		}
		target := ast.Unparen(un.X)
		atomicArgs[target] = true
		if root := flow.CanonRoot(target); root != nil {
			if _, seen := atomicRoots[root]; !seen {
				atomicRoots[root] = arg.Pos()
			}
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return true
			}
			if isAtomicFunc(callee) {
				for _, arg := range call.Args {
					markAtomicArg(arg)
				}
				return true
			}
			if idxs := flow.AtomicParamIndices(callee); len(idxs) > 0 {
				for i, arg := range call.Args {
					if idxs[i] {
						markAtomicArg(arg)
					}
				}
			}
			return true
		})
	}

	if len(atomicRoots) > 0 {
		checkPlainAccess(pass, flow, atomicRoots, atomicArgs)
	}
	checkAtomicValueCopies(pass, flow)
	return nil
}

// checkPlainAccess flags non-atomic element or value accesses of storage
// roots that have at least one atomic site.
func checkPlainAccess(pass *Pass, flow *Flow, atomicRoots map[types.Object]token.Pos, atomicArgs map[ast.Expr]bool) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			var base ast.Expr
			switch x := n.(type) {
			case *ast.IndexExpr:
				base = x.X
			case *ast.SliceExpr:
				base = x.X
			case *ast.Ident:
				// Scalar roots: a bare use of the variable is a plain access
				// unless it is the operand of an atomic &x.
				v, ok := info.Uses[x].(*types.Var)
				if !ok || v.IsField() {
					return true
				}
				if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
					// Slice headers are aliased freely; only element access
					// races, which the Index/Slice cases catch.
					return true
				}
				root := flow.Canon(v)
				site, isAtomic := atomicRoots[root]
				if !isAtomic || atomicArgs[ast.Expr(x)] {
					return true
				}
				// Selector bases (x.f) are field paths — the field itself is
				// the root, handled when the SelectorExpr resolves.
				if len(stack) > 0 {
					if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.X == ast.Expr(x) {
						return true
					}
					if un, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && un.Op == token.AND {
						// &v without an atomic call around it: the pointer
						// escapes our reasoning; let it pass (capturecheck
						// owns shared-pointer hygiene).
						return true
					}
				}
				report(pass, file, x.Pos(), "plain access of %s, which is accessed atomically at %s",
					v.Name(), pass.Fset.Position(site))
				return true
			default:
				return true
			}

			// Element/slice access of an atomic root.
			if atomicArgs[n.(ast.Expr)] {
				return true
			}
			// Skip if the base expression itself is inside an atomic arg
			// (&words[i] marks the IndexExpr, handled above).
			root := flow.CanonRoot(base)
			if root == nil {
				return true
			}
			site, isAtomic := atomicRoots[root]
			if !isAtomic {
				return true
			}
			report(pass, file, n.Pos(), "plain access of %s elements; %s is accessed atomically at %s",
				rootName(root), rootName(root), pass.Fset.Position(site))
			return false // don't descend and re-flag the base
		})
	}
}

// checkAtomicValueCopies flags value copies of sync/atomic counter types.
func checkAtomicValueCopies(pass *Pass, flow *Flow) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				t := info.TypeOf(rhs)
				if t == nil || !isAtomicNamedType(t) {
					continue
				}
				// Assigning the value (not a pointer) forks the counter.
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					continue
				}
				if suppressedAt(pass, file, rhs.Pos(), "shared") {
					continue
				}
				pass.Reportf(assign.Lhs[i].Pos(), "value copy of %s forks the atomic variable; use a pointer", t)
			}
			return true
		})
	}
	_ = flow
}

// isAtomicNamedType reports whether t is one of sync/atomic's named types
// (atomic.Int64, atomic.Uint64, atomic.Bool, ...).
func isAtomicNamedType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// rootName names a storage root for diagnostics.
func rootName(o types.Object) string {
	if v, ok := o.(*types.Var); ok && v.IsField() {
		return v.Name()
	}
	return o.Name()
}

// report emits a diagnostic unless a //convlint:shared directive covers pos.
func report(pass *Pass, file *ast.File, pos token.Pos, format string, args ...any) {
	if suppressedAt(pass, file, pos, "shared") {
		return
	}
	pass.Reportf(pos, format, args...)
}
