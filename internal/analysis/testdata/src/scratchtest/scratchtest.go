// Package scratchtest exercises the scratchcopy analyzer: the sssp scratch
// types, budget.Meter, and the graph CSR views travel by pointer only.
package scratchtest

import (
	"repro/internal/budget"
	"repro/internal/graph"
	"repro/internal/sssp"
)

func byValueParam(s sssp.Scratch) {} // want `parameter declared as Scratch value`

func byValueResult(g *graph.Graph) graph.Graph { // want `result declared as Graph value`
	return *g // want `return copies Graph by value`
}

func copyAssign(m *budget.Meter) {
	v := *m // want `assignment copies Meter by value`
	_ = v
}

func copyCallArg(g *graph.Graph) {
	sink(*g) // want `call argument copies Graph by value`
}

func sink(graph.Graph) {} // want `parameter declared as Graph value`

func rangeCopy(ss []sssp.Scratch) {
	for _, s := range ss { // want `range value copies Scratch per iteration`
		_ = s
	}
}

// pointerDiscipline is the blessed style: pointers, indexing, and
// per-worker slices of structs never copy.
func pointerDiscipline(g *graph.Graph, m *budget.Meter, workers int) {
	scratches := make([]sssp.Scratch, workers)
	for i := range scratches {
		useScratch(&scratches[i], g, m)
	}
}

func useScratch(s *sssp.Scratch, g *graph.Graph, m *budget.Meter) {}

// construction initializes fresh values, which is not a copy (the result
// declaration itself still is).
func construction() sssp.Scratch { // want `result declared as Scratch value`
	var s sssp.Scratch
	_ = s
	return sssp.Scratch{}
}

func dijkstraByValue(s sssp.DijkstraScratch) {} // want `parameter declared as DijkstraScratch value`

func copyDijkstra(s *sssp.DijkstraScratch) {
	v := *s // want `assignment copies DijkstraScratch by value`
	_ = v
}

func weightedByValue(g *graph.Weighted) {
	v := *g // want `assignment copies Weighted by value`
	_ = v
}
