// Package escapetest exercises the scratchescape analyzer: per-worker
// traversal scratch must not be stored in package state, sent on channels,
// or captured across a goroutine boundary.
package escapetest

import (
	"sync"

	"repro/internal/sssp"
)

var global *sssp.Scratch

func storeGlobal(s *sssp.Scratch) {
	global = s // want `scratch stored in package-level state`
}

type registry struct {
	slots []*sssp.Scratch
}

var reg registry

func storeGlobalField(s *sssp.Scratch) {
	reg.slots[0] = s // want `scratch stored in package-level state`
}

func sendScratch(ch chan *sssp.Scratch, s *sssp.Scratch) {
	ch <- s // want `scratch sent on a channel`
}

// crossCapture hands a scratch created on this goroutine to another one.
func crossCapture(use func(*sssp.Scratch)) {
	var s sssp.Scratch
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		use(&s) // want `scratch s created outside this goroutine closure is captured by it`
	}()
	wg.Wait()
}

// perWorker is the blessed idiom: each worker indexes its own slot, so the
// scratch never crosses a goroutine boundary.
func perWorker(workers int, use func(*sssp.Scratch)) {
	scratches := make([]sssp.Scratch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			use(&scratches[w])
		}(w)
	}
	wg.Wait()
}

// localScratch created inside the worker is equally clean.
func localScratch(workers int, use func(*sssp.Scratch)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s sssp.Scratch
			use(&s)
		}()
	}
	wg.Wait()
}

var warm *sssp.Scratch

// keepWarm parks a prewarmed scratch in package state on purpose: the
// handoff happens before any traversal starts, and the directive records
// that reasoning.
//
//convlint:shared prewarmed scratch parked before any traversal runs
func keepWarm(s *sssp.Scratch) {
	warm = s
}
