// Package budgettest exercises the budgetcheck analyzer: SSSP entry-point
// calls must either follow a budget.Meter charge within the enclosing
// function or carry a //convlint:unbudgeted reason.
package budgettest

import (
	"context"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dynsssp"
	"repro/internal/graph"
	"repro/internal/prune"
	"repro/internal/sssp"
)

func unmetered(g *graph.Graph, dist []int32) {
	sssp.BFS(g, 0, dist) // want `call to sssp.BFS without a budget.Meter charge`
}

func unmeteredMatrix(g *graph.Graph) [][]int32 {
	return sssp.DistanceMatrix(g, []int{0}, 1) // want `call to sssp.DistanceMatrix without`
}

func metered(g *graph.Graph, m *budget.Meter, dist []int32) error {
	if err := m.Charge(budget.PhaseCandidateGen, 1); err != nil {
		return err
	}
	sssp.BFS(g, 0, dist)
	return nil
}

// chargeAfter charges only after spending, which the analyzer rejects: the
// charge must be on the path to the call.
func chargeAfter(g *graph.Graph, m *budget.Meter, dist []int32) {
	sssp.BFS(g, 0, dist) // want `call to sssp.BFS without a budget.Meter charge`
	_ = m.Charge(budget.PhaseTopK, 1)
}

// closureMetered charges up front and spends inside a worker closure, the
// selector pattern used throughout internal/core.
func closureMetered(g *graph.Graph, m *budget.Meter, dist []int32) error {
	if err := m.Charge(budget.PhaseTopK, 2); err != nil {
		return err
	}
	run := func() {
		sssp.BFSWith(g, 0, dist, sssp.Auto, nil)
		sssp.MultiSourceBFS(g, []int{0}, dist)
	}
	run()
	return nil
}

// suppressed is a ground-truth style sweep.
//
//convlint:unbudgeted fixture: exact sweep is budget-free by definition
func suppressed(g *graph.Graph, dist []int32) {
	sssp.BFS(g, 0, dist)
	sssp.AllSourcesFunc(g, []int{0}, 1, func(src int, d []int32) {})
}

// freeCalls never touch budget-relevant entry points and need nothing.
func freeCalls(g *graph.Graph, dist []int32) []int {
	return sssp.Path(g, 0, 0)
}

// The dist abstraction's query entry points cost budget exactly like the
// sssp kernels they dispatch to.

func unmeteredSource(s dist.Source, row []int32) {
	s.DistancesInto(0, row) // want `call to dist.DistancesInto without a budget.Meter charge`
}

func unmeteredSweep(s dist.Source) {
	dist.Sweep(s, []int{0}, 1, func(src int, d []int32) {}) // want `call to dist.Sweep without`
}

func meteredSession(s dist.Source, m *budget.Meter, row []int32) error {
	if err := m.Charge(budget.PhaseTopK, 1); err != nil {
		return err
	}
	dist.NewSession(s).DistancesInto(0, row)
	return nil
}

func meteredPaired(p dist.Pair, m *budget.Meter) error {
	if err := m.Charge(budget.PhaseCandidateGen, 2); err != nil {
		return err
	}
	dist.PairedSweep(p, []int{0}, 1, func(src int, d1, d2 []int32) {})
	return nil
}

// freeStructural reads only degrees and adjacency, which cost nothing.
func freeStructural(s dist.Source) int {
	return s.Degree(0) + len(s.NeighborIDs(0)) + s.NumEdges()
}

// The dynsssp batch repairs re-derive distance rows, which the rows-produced
// cost model prices like any other row: metered or declared unbudgeted.

func unmeteredRepair(s *dynsssp.Scratch, g2 *graph.Graph, delta []graph.Edge, row []int32) {
	s.ApplyAll(g2, delta, row) // want `call to dynsssp.ApplyAll without a budget.Meter charge`
}

func unmeteredBatch(d *dynsssp.DynamicBFS, edges []graph.TimedEdge) {
	_, _ = d.ApplyBatch(edges) // want `call to dynsssp.ApplyBatch without`
	_, _ = d.InsertEdge(0, 1)  // want `call to dynsssp.InsertEdge without`
}

func meteredRepair(s *dynsssp.Scratch, g2 *graph.Graph, delta []graph.Edge, m *budget.Meter, row []int32) error {
	if err := m.Charge(budget.PhaseTopK, 1); err != nil {
		return err
	}
	s.ApplyAll(g2, delta, row)
	return nil
}

// suppressedStream mirrors the streaming monitor: incremental maintenance is
// the cost the tracker avoids paying per window.
//
//convlint:unbudgeted fixture: tracker setup charged its SSSPs at construction
func suppressedStream(d *dynsssp.DynamicBFS, edges []graph.TimedEdge) {
	_, _ = d.ApplyStream(edges)
}

// freeRepairReads touch only dynsssp accessors, which cost nothing.
func freeRepairReads(d *dynsssp.DynamicBFS) int {
	return d.NumNodes() + int(d.Dist(0)) + d.RepairStats().Nodes
}

// The paired-session entry points: a derived t2 row costs one unit exactly
// like a traversed one.

func unmeteredPairedSession(ps dist.PairedSession, d1, d2 []int32) {
	ps.DistancesPairInto(0, d1, d2) // want `call to dist.DistancesPairInto without`
	ps.DeriveInto(0, d1, d2)        // want `call to dist.DeriveInto without`
}

func unmeteredIncrementalSweep(p dist.Pair) {
	dist.IncrementalPairedSweep(p, []int{0}, 1, func(src int, d1, d2 []int32) {}) // want `call to dist.IncrementalPairedSweep without`
}

func meteredPairedSession(p dist.Pair, m *budget.Meter, d1, d2 []int32) error {
	if err := m.Charge(budget.PhaseTopK, 2); err != nil {
		return err
	}
	ps := dist.NewPairedEngine(p, dist.PairedIncremental).NewSession()
	ps.DistancesPairInto(0, d1, d2)
	return nil
}

// The serving path's ctx-variant drivers and the batching layer cost budget
// exactly like the spellings they generalize: cancellation and coalescing
// change machine work, never cost.

func unmeteredCtxSweep(ctx context.Context, s dist.Source) {
	_ = dist.SweepCtx(ctx, s, []int{0}, 1, func(src int, d []int32) {}) // want `call to dist.SweepCtx without`
}

func unmeteredCtxPaired(ctx context.Context, p dist.Pair) {
	_ = dist.PairedSweepCtx(ctx, p, []int{0}, 1, func(src int, d1, d2 []int32) {})            // want `call to dist.PairedSweepCtx without`
	_, _ = dist.IncrementalPairedSweepCtx(ctx, p, []int{0}, 1, func(src int, d1, d2 []int32) {}) // want `call to dist.IncrementalPairedSweepCtx without`
}

func unmeteredBatcherRow(ctx context.Context, b *dist.Batcher, row []int32) {
	_ = b.DistancesIntoCtx(ctx, 0, row) // want `call to dist.DistancesIntoCtx without`
}

// meteredBatcherSweep is the batching-layer idiom: wrap the source once,
// charge the caller's own meter per source, and sweep — sharing a sweep
// with concurrent requests never shares the charge.
func meteredBatcherSweep(ctx context.Context, src dist.Source, m *budget.Meter) error {
	if err := m.Charge(budget.PhaseTopK, 1); err != nil {
		return err
	}
	b := dist.NewBatcher(src, dist.BatcherOptions{Immediate: true})
	return b.SweepCtx(ctx, []int{0}, 1, func(s int, d []int32) {})
}

// The Δ-threshold pruned spellings cost exactly what the full variants do:
// the bound cuts traversal work, never charges. A cut-short row was still
// produced (valid for delta extraction), so it is still one unit.

func unmeteredPrunedBFS(g2 *graph.Graph, d1, d2 []int32, ps *sssp.PrunedScratch) {
	sssp.PrunedSecondBFS(g2, 0, d1, d2, func() int32 { return 1 }, ps) // want `call to sssp.PrunedSecondBFS without`
}

func unmeteredPrunedPair(pps dist.PrunedPairSession, d1, d2 []int32) {
	pps.DistancesPairBoundedInto(0, d1, d2, func() int32 { return 1 }) // want `call to dist.DistancesPairBoundedInto without`
	pps.DeriveBoundedInto(0, d1, d2, func() int32 { return 1 })        // want `call to dist.DeriveBoundedInto without`
}

func unmeteredBoundedRepair(s *dynsssp.Scratch, g2 *graph.Graph, delta []graph.Edge, d2, d1 []int32) {
	_, _ = s.ApplyAllBounded(g2, delta, d2, d1, func() int32 { return 1 }) // want `call to dynsssp.ApplyAllBounded without`
}

// meteredThresholdLoop is the pruned-extraction idiom: charge every row up
// front, compute bounded rows through the pruned capability with the shared
// threshold as the bound, and offer each emitted delta back to the
// threshold. Threshold reads and offers cost nothing — only the row
// computations are budget-relevant.
func meteredThresholdLoop(p dist.Pair, m *budget.Meter, th *prune.Threshold, d1, d2 []int32) error {
	if err := m.Charge(budget.PhaseTopK, 2); err != nil {
		return err
	}
	pps := dist.AsPruned(dist.NewPairedEngine(p, dist.PairedFull).NewSession())
	pps.DistancesPairBoundedInto(0, d1, d2, th.Load)
	for v := range d1 {
		if d1[v] > 0 && d1[v]-d2[v] > 0 {
			th.Offer(d1[v] - d2[v])
		}
	}
	return nil
}

// A held core.Session is the serving idiom: its TopK charges the meter it
// carries, so the caller must show where that meter comes from — a tenant's
// QueryMeter or an explicit NewMeter — before the call.

func unmeteredSessionQuery(ctx context.Context, sess *core.Session) {
	_, _ = sess.TopK(ctx, core.Options{M: 1}) // want `call to core.Session.TopK without meter evidence`
}

func tenantMeteredQuery(ctx context.Context, sess *core.Session, reg *budget.Registry) error {
	meter := reg.Tenant("alice", 0).QueryMeter(5)
	_, err := sess.TopK(ctx, core.Options{M: 5, Meter: meter})
	return err
}

func oneShotMeteredQuery(ctx context.Context, sess *core.Session) error {
	meter := budget.NewMeter(5)
	_, err := sess.TopK(ctx, core.Options{M: 5, Meter: meter})
	return err
}
