// Package capturetest exercises the capturecheck analyzer: variables
// captured by goroutine closures must be read-only, concurrency-safe,
// index-partitioned, or annotated //convlint:shared.
package capturetest

import "sync"

// badWrite races the captured accumulator: no mutex, no channel.
func badWrite(items []int) int {
	total := 0
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want `goroutine closure writes captured variable total`
		}()
	}
	wg.Wait()
	return total
}

// loopCapture couples every worker to the loop's iteration variable.
func loopCapture(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(i) // want `goroutine closure captures loop variable i`
		}()
	}
	wg.Wait()
}

func process(int) {}

// partitioned is the per-worker-slot idiom: element writes at the worker's
// own index are clean.
func partitioned(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = w * w
		}(w)
	}
	wg.Wait()
	return out
}

// spawn is the worker-pool spawner idiom: body runs on a new goroutine, so
// literals handed to spawn are analyzed as launched.
func spawn(wg *sync.WaitGroup, body func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		body()
	}()
}

func viaSpawner() int {
	hits := 0
	var wg sync.WaitGroup
	spawn(&wg, func() {
		hits++ // want `goroutine closure writes captured variable hits`
	})
	wg.Wait()
	return hits
}

// guarded shares the accumulator deliberately, under a mutex, and says so.
func guarded(items []int) int {
	sum := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			mu.Lock()
			sum += it //convlint:shared per-worker sums folded under mu
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	return sum
}

// readOnly captures are always fine, as are channels and wait groups.
func readOnly(scale int, in []int) []int {
	out := make([]int, len(in))
	done := make(chan struct{})
	go func() {
		for i, v := range in {
			out[i] = v * scale
		}
		close(done)
	}()
	<-done
	return out
}
