// Package directivetest exercises directive validation: unknown verbs,
// missing reasons, misplaced and malformed directives all fail loudly.
package directivetest

// validHot is a correctly annotated hot path.
//
//convlint:hotpath
func validHot() {}

// validUnbudgeted carries the mandatory reason.
//
//convlint:unbudgeted exact ground-truth sweep, budget-free by definition
func validUnbudgeted() {}

// misspelled verbs would otherwise suppress nothing, silently.
//
//convlint:hotpth // want `unknown convlint directive verb "hotpth"`
func misspelled() {}

// bare unbudgeted hides the why.
//
//convlint:unbudgeted // want `//convlint:unbudgeted requires a reason`
func bareUnbudgeted() {}

func misplaced() {
	//convlint:hotpath // want `must be part of a function declaration's doc comment`
	_ = 0
}

// spaced directives are not directives to the other analyzers.
//
// convlint:hotpath // want `malformed convlint directive`
func spaced() {}

// prose that merely mentions the convlint suite is left alone.
func prose() {}
