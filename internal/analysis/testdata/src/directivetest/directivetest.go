// Package directivetest exercises directive validation: unknown verbs,
// missing reasons, misplaced and malformed directives all fail loudly.
package directivetest

// validHot is a correctly annotated hot path.
//
//convlint:hotpath
func validHot() {}

// validUnbudgeted carries the mandatory reason.
//
//convlint:unbudgeted exact ground-truth sweep, budget-free by definition
func validUnbudgeted() {}

// misspelled verbs would otherwise suppress nothing, silently.
//
//convlint:hotpth // want `unknown convlint directive verb "hotpth"`
func misspelled() {}

// bare unbudgeted hides the why.
//
//convlint:unbudgeted // want `//convlint:unbudgeted requires a reason`
func bareUnbudgeted() {}

func misplaced() {
	//convlint:hotpath // want `must be part of a function declaration's doc comment`
	_ = 0
}

// spaced directives are not directives to the other analyzers.
//
// convlint:hotpath // want `malformed convlint directive`
func spaced() {}

// prose that merely mentions the convlint suite is left alone.
func prose() {}

// validShared documents intentional sharing at function granularity.
//
//convlint:shared every word has exactly one writer per phase
func validShared() {}

// sharedInBody is the line-level suppression form the concurrency analyzers
// read; valid inside a function body.
func sharedInBody() {
	//convlint:shared guarded by mu
	_ = 0
	_ = 1 //convlint:nondet observational timing only
}

// bareShared hides the why.
//
//convlint:shared // want `//convlint:shared requires a reason`
func bareShared() {}

// bareNondet likewise.
//
//convlint:nondet // want `//convlint:nondet requires a reason`
func bareNondet() {}

//convlint:shared orphaned outside any function // want `must be in a function's doc comment or on a line inside a function body`
var orphanShared int
