// Package atomictest exercises the atomiccheck analyzer: storage with one
// sync/atomic access site must be accessed atomically at every site, across
// aliases and through in-package atomic accessors.
package atomictest

import "sync/atomic"

// cursor is a chunk cursor: bumped atomically by workers.
var cursor int64

func bump() int64 { return atomic.AddInt64(&cursor, 1) }

func plainCursorRead() int64 {
	return cursor // want `plain access of cursor, which is accessed atomically`
}

// run mirrors the parallel-BFS shared state: a visited bitmap CAS-claimed by
// workers.
type run struct {
	vis []uint64
}

func (r *run) claim(w int, bit uint64) bool {
	old := atomic.LoadUint64(&r.vis[w])
	if old&bit != 0 {
		return false
	}
	return atomic.CompareAndSwapUint64(&r.vis[w], old, old|bit)
}

func (r *run) plainSet(w int, bit uint64) {
	r.vis[w] |= bit // want `plain access of vis elements`
}

// aliasedRead demonstrates the def-use chain: vis aliases r.vis, so plain
// element reads through the local header are still mixed access.
func aliasedRead(r *run) uint64 {
	vis := r.vis
	return vis[0] // want `plain access of vis elements`
}

// reset is phase-separated initialization: no worker is running, so plain
// writes are intentional and documented.
//
//convlint:shared reset runs between traversals with no worker in flight
func (r *run) reset() {
	for i := range r.vis {
		r.vis[i] = 0
	}
}

// orWord is the in-package atomic-accessor idiom: its pointer parameter is
// only ever touched through sync/atomic, so calls count as atomic sites.
func orWord(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old|v == old || atomic.CompareAndSwapUint64(p, old, old|v) {
			return
		}
	}
}

var marks []uint64

func mark(i int) { orWord(&marks[i>>6], 1<<(uint(i)&63)) }

func unmark(i int) {
	marks[i>>6] &^= 1 << (uint(i) & 63) // want `plain access of marks elements`
}

// counterCopy forks an atomic counter's identity.
var hits atomic.Int64

func counterCopy() int64 {
	c := hits // want `value copy of sync/atomic.Int64 forks the atomic variable`
	return c.Load()
}

// plainOnly has no atomic site anywhere: plain access everywhere is fine.
var plainOnly int64

func incPlain() { plainOnly++ }
