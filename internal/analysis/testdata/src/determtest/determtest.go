// Package determtest exercises the determinism analyzer: no map-order
// leaks into ordered outputs, no wall-clock or global rand in library code,
// no branching on pointer identity.
package determtest

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// leakOrder returns keys in map iteration order: different every run.
func leakOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map leaks map order`
	}
	return keys
}

// collectThenSort is the blessed idiom: the sort after the loop erases the
// iteration order.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// localAppend accumulates into a slice scoped to one iteration: invisible
// outside the loop, so no order leaks.
func localAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var batch []int
		batch = append(batch, vs...)
		total += len(batch)
	}
	return total
}

func sendOrder(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `channel send inside range over map leaks map order`
	}
}

func printOrder(m map[int]int) {
	for k := range m {
		fmt.Println(k) // want `printing inside range over map leaks map order`
	}
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in library code breaks run-to-run determinism`
}

func globalRand(n int) int {
	return rand.Intn(n) // want `global rand.Intn uses an unseeded source`
}

// seededRand threads an explicit source: reproducible, clean.
func seededRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

type node struct{ id int }

func ptrIdentity(a, b *node) bool {
	return a == b // want `branching on pointer identity is allocation-order dependent`
}

// nilCheck compares against nil, which is identity-free.
func nilCheck(a *node) bool {
	return a != nil
}

// stamp is observational timing, annotated as such.
//
//convlint:nondet progress stamps are log-only, never part of results
func stamp() int64 {
	return time.Now().UnixNano()
}
