// Package hotalloctest exercises the hotalloc analyzer: functions marked
// //convlint:hotpath must not allocate.
package hotalloctest

import "fmt"

type config struct{ a, b int }

// hot is the flagged case: every allocating construct trips a diagnostic.
//
//convlint:hotpath
func hot(dst, src []int32, n int) []int32 {
	buf := make([]int32, n)          // want `make in hot path hot allocates`
	p := new(config)                 // want `new in hot path hot allocates`
	c := config{1, 2}                // want `composite literal in hot path hot allocates`
	f := func() {}                   // want `closure in hot path hot allocates`
	fresh := append(buf[:0], src...) // want `append result assigned to a different slice`
	f()
	_, _, _ = p, c, fresh
	if n < 0 {
		// Error paths may format and allocate freely.
		panic(fmt.Sprintf("bad n %d", n))
	}
	dst = append(dst, 1) // self-append: amortized by the caller's scratch
	return dst
}

// hotExpr uses append in expression position, which always hands the grown
// backing array to someone the scratch can't track.
//
//convlint:hotpath
func hotExpr(q []int32) int {
	return consume(append(q, 7)) // want `append in expression position`
}

func consume(q []int32) int { return len(q) }

type repairScratch struct {
	seeds []int64
	cur   []int32
}

// hotRepair mirrors the dynsssp repair-kernel idiom: encoded-seed
// self-appends and frontier reuse are scratch-amortized and allowed; handing
// a seed slice's grown backing array to a different variable is not.
//
//convlint:hotpath
func hotRepair(s *repairScratch, dist []int32, u, v int32) []int64 {
	s.seeds = s.seeds[:0]
	if du := dist[u]; du >= 0 && dist[v] > du+1 {
		dist[v] = du + 1
		s.seeds = append(s.seeds, int64(du+1)<<32|int64(v)) // self-append on a field
	}
	s.cur = append(s.cur, v) // self-append on a sibling field
	out := append(s.seeds, 9) // want `append result assigned to a different slice`
	return out
}

// cold is identical to hot but unannotated: no diagnostics.
func cold(dst, src []int32, n int) []int32 {
	buf := make([]int32, n)
	fresh := append(buf[:0], src...)
	_ = fresh
	return append(dst, 1)
}

type parWorker struct {
	queue []int32
	edges int64
}

type parState struct {
	workers []parWorker
	cursor  int
}

// hotWorker mirrors the parallel-BFS worker idiom: a worker materializes a
// local view of its queue (`local := ws.queue[:0]`), self-appends
// discoveries into it, and stores the header back — all scratch-amortized
// and allowed. Allocating fresh per-level state is not.
//
//convlint:hotpath
func hotWorker(r *parState, slot int, found []int32) {
	ws := &r.workers[slot]
	local := ws.queue[:0]
	for _, v := range found {
		local = append(local, v) // self-append on the local view
		ws.edges++
	}
	ws.queue = local
	spill := make([]int32, len(local)) // want `make in hot path hotWorker allocates`
	copy(spill, local)
}

// hotMerge mirrors the coordinator's per-level merge: spread-appending each
// worker's queue into the shared frontier is a self-append (the frontier
// header absorbs its own growth); spawning a goroutine per level is flagged
// as a closure.
//
//convlint:hotpath
func hotMerge(r *parState, q []int32) []int32 {
	for i := range r.workers {
		q = append(q, r.workers[i].queue...) // self-append: spread merge
	}
	go func() { r.cursor++ }() // want `closure in hot path hotMerge allocates`
	return q
}
