package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and type-checks packages from source. Imports (standard
// library and this module's own packages) resolve through the standard
// library's source importer, which shells out to the go command for path
// resolution and therefore needs no network and no pre-built export data.
// One Loader shares a FileSet and import cache across every package it
// loads; a Loader is not safe for concurrent use.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader with a fresh FileSet and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset returns the loader's shared FileSet, for rendering positions.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadDir loads the package in dir, resolving build constraints and
// excluding _test.go files the same way the go tool does. pkgPath is the
// import path to record for the package (testdata fixtures use synthetic
// paths).
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: list %s: %w", dir, err)
	}
	return l.LoadFiles(dir, pkgPath, bp.GoFiles)
}

// LoadFiles parses and type-checks the given files (relative to dir) as one
// package with import path pkgPath.
func (l *Loader) LoadFiles(dir, pkgPath string, files []string) (*Package, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		parsed = append(parsed, f)
	}
	typesInfo := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(pkgPath, l.fset, parsed, typesInfo)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   parsed,
		Types:   pkg,
		Info:    typesInfo,
	}, nil
}
