package analysis

import (
	"go/types"
)

// CaptureCheck enforces the closure-capture contract for goroutine code:
// a variable captured by a closure that may run on another goroutine (a `go`
// statement, the worker-pool spawner idiom, or transitively from either)
// must be one of
//
//   - read-only inside the closure,
//   - a concurrency-safe type (channel, sync.Mutex/WaitGroup/..., a
//     sync/atomic type, or a pointer to one),
//   - index-partitioned (only element writes, the per-worker-slot idiom), or
//   - annotated //convlint:shared <reason> at the access or on the function.
//
// Whole-variable writes, field writes, and address-taking from a launched
// closure are findings. Capturing a loop variable is flagged separately:
// even with Go ≥ 1.22 per-iteration semantics this couples the closure to
// the loop's iteration space, and the repo convention is to pass the index
// as a parameter.
var CaptureCheck = &Analyzer{
	Name: "capturecheck",
	Doc:  "captured variables in goroutine closures must be read-only, sync-safe, index-partitioned, or annotated",
	Run:  runCaptureCheck,
}

func runCaptureCheck(pass *Pass) error {
	flow := NewFlow(pass)
	for lit, c := range flow.Closures() {
		if !c.Launched {
			continue
		}
		file := fileOf(pass, lit.Pos())
		if file == nil {
			continue
		}
		for v, cap := range c.Captured {
			if concurrencySafeType(v.Type()) {
				continue
			}
			if cap.LoopVar && c.LaunchInLoop {
				if pos, ok := cap.Has(AccessRead, AccessWrite, AccessFieldWrite, AccessElemWrite, AccessAddr, AccessAddrElem); ok {
					if !suppressedAt(pass, file, pos, "shared") {
						pass.Reportf(pos, "goroutine closure captures loop variable %s; pass it as a parameter", v.Name())
					}
					continue
				}
			}
			if pos, ok := cap.Has(AccessWrite); ok {
				if !suppressedAt(pass, file, pos, "shared") {
					pass.Reportf(pos, "goroutine closure writes captured variable %s; use a channel, mutex, or per-worker slot", v.Name())
				}
				continue
			}
			if pos, ok := cap.Has(AccessFieldWrite); ok {
				if !suppressedAt(pass, file, pos, "shared") {
					pass.Reportf(pos, "goroutine closure writes field of captured variable %s; guard it or annotate //convlint:shared", v.Name())
				}
				continue
			}
			if pos, ok := cap.Has(AccessAddr); ok {
				if !suppressedAt(pass, file, pos, "shared") {
					pass.Reportf(pos, "goroutine closure takes address of captured variable %s, defeating capture analysis", v.Name())
				}
			}
			// AccessElemWrite and AccessAddrElem are the index-partitioned
			// idiom; AccessRead is always fine.
		}
	}
	return nil
}

// concurrencySafeType reports whether values of t may be shared across
// goroutines without extra discipline: channels, the sync primitives,
// sync/atomic types, and pointers to any of those. Pointer-to-mutable-struct
// is NOT safe (that is exactly the shared-state case the check exists for);
// the exception is types that are internally synchronized.
func concurrencySafeType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return concurrencySafeNamed(p.Elem())
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	// Function values are immutable once bound; calling one from two
	// goroutines is safe (what the body does is analyzed separately).
	if _, ok := t.Underlying().(*types.Signature); ok {
		return true
	}
	return concurrencySafeNamed(t)
}

// concurrencySafeNamed recognizes named types that are safe to share:
// everything in sync and sync/atomic, plus this repo's internally
// synchronized types (budget.Meter locks in Charge/Report; obs.Trace locks
// per span).
func concurrencySafeNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sync", "sync/atomic":
		return true
	case "repro/internal/budget":
		return obj.Name() == "Meter"
	case "repro/internal/obs":
		return obj.Name() == "Trace"
	}
	return false
}
