// Package prune implements the Δ-threshold substrate of pruned top-k
// extraction: a small concurrent structure tracking the kth-largest delta
// seen so far across all extraction workers, published as a lock-free
// monotone threshold.
//
// The soundness argument pruning rests on: the kth-largest delta among any
// subset of the final pair set is a lower bound on the kth-largest delta of
// the full set, so a pair whose delta is *strictly below* the current
// threshold can never enter the final top-k, no matter what is still
// undiscovered. Pairs whose delta equals the threshold must be kept — ties
// at the kth boundary are broken by node IDs during the final sort, and
// dropping one would change which pairs survive the cut. Because the
// threshold only ever rises and every skip test is strict, the set of pairs
// that survive is independent of discovery order, which is what keeps the
// pruned extraction bit-identical to the unpruned one across worker
// schedules (pinned by the differential fuzz tests in internal/core).
//
// Δ-mode queries (Options.MinDelta) must never use a Threshold: they return
// every qualifying pair, not the best k, so there is no kth boundary to
// prune against (see DESIGN.md).
package prune

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Threshold is the shared kth-Δ tracker of one extraction run. Workers
// Offer every emitted delta; Load returns the largest value T such that at
// least k offered deltas are >= T (0 until k offers arrive), or a sound
// externally-provided seed, whichever is larger. Load is a single atomic
// read, cheap enough for per-traversal-level bound checks.
//
// Concurrency contract: published is written only while mu is held (Offer's
// slow path and Seed) and read lock-free everywhere; it is monotone
// non-decreasing, so a stale read is merely a looser-but-sound threshold.
type Threshold struct {
	k int
	// published is the live threshold: max(seeded value, heap minimum once
	// the heap holds k deltas). Reads are lock-free; see struct comment.
	published atomic.Int32

	mu   sync.Mutex
	heap []int32 // min-heap of the k largest deltas offered so far
}

// NewThreshold creates a Threshold for a top-k query. k must be positive.
func NewThreshold(k int) *Threshold {
	if k <= 0 {
		panic("prune: non-positive k")
	}
	return &Threshold{k: k, heap: make([]int32, 0, k)}
}

// Load returns the current threshold (0 before it first rises). Deltas
// strictly below the returned value are provably outside the final top-k.
func (t *Threshold) Load() int32 { return t.published.Load() }

// Seed raises the threshold to at least delta without any offers backing
// it. SOUNDNESS IS THE CALLER'S OBLIGATION: delta must be a lower bound on
// the final kth-largest delta of THIS exact query. The serve layer's warm
// cache satisfies it by seeding only with the final kth delta of a previous
// query with the identical result-determining shape (same epoch window,
// selector, m, l, k, and seed), which recomputes the identical pair set.
//
//convlint:shared published is mutex-guarded for writes, lock-free monotone for reads
func (t *Threshold) Seed(delta int32) {
	if delta <= 0 {
		return
	}
	t.mu.Lock()
	if delta > t.published.Load() {
		t.published.Store(delta)
		seeded.Add(1)
	}
	t.mu.Unlock()
}

// Offer records one emitted pair delta. The fast path (delta no larger than
// the published threshold) is a single atomic read: such a delta can change
// neither the heap minimum nor the threshold.
//
//convlint:shared fast path reads published lock-free; staleness is sound (threshold is monotone)
func (t *Threshold) Offer(delta int32) {
	if delta <= t.published.Load() {
		return
	}
	t.mu.Lock()
	if len(t.heap) < t.k {
		t.heap = append(t.heap, delta)
		up(t.heap, len(t.heap)-1)
		if len(t.heap) == t.k {
			t.raise(t.heap[0])
		}
	} else if delta > t.heap[0] {
		t.heap[0] = delta
		down(t.heap, 0)
		t.raise(t.heap[0])
	}
	t.mu.Unlock()
}

// raise publishes v if it beats the current threshold. Called under mu.
func (t *Threshold) raise(v int32) {
	if v > t.published.Load() {
		t.published.Store(v)
		raises.Add(1)
	}
}

// up restores the min-heap property after appending at index i.
func up(h []int32, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// down restores the min-heap property after replacing the root.
func down(h []int32, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h[l] < h[s] {
			s = l
		}
		if r < n && h[r] < h[s] {
			s = r
		}
		if s == i {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// Package counters: how much work pruning avoided, exported through
// /metrics as prune.* alongside the sssp.pruned_* kernel counters.
var (
	candidatesSkipped atomic.Int64
	raises            atomic.Int64
	seeded            atomic.Int64
)

// SkipCandidates records n whole candidates skipped by a landmark upper
// bound: their distance rows were charged to the budget but never traversed.
func SkipCandidates(n int) { candidatesSkipped.Add(int64(n)) }

// CandidatesSkipped reads the cumulative skip counter (tests and the
// experiments harness diff it around a run).
func CandidatesSkipped() int64 { return candidatesSkipped.Load() }

func init() {
	obs.RegisterMetric("prune.candidates_skipped", candidatesSkipped.Load)
	obs.RegisterMetric("prune.threshold_raises", raises.Load)
	obs.RegisterMetric("prune.threshold_seeded", seeded.Load)
}
