package prune

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// kthLargest computes the reference threshold: the kth largest of deltas,
// or 0 when fewer than k were offered.
func kthLargest(deltas []int32, k int) int32 {
	if len(deltas) < k {
		return 0
	}
	s := append([]int32(nil), deltas...)
	sort.Slice(s, func(i, j int) bool { return s[i] > s[j] })
	return s[k-1]
}

func TestThresholdMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(8)
		n := rng.Intn(40)
		th := NewThreshold(k)
		var offered []int32
		for i := 0; i < n; i++ {
			d := int32(rng.Intn(12))
			offered = append(offered, d)
			th.Offer(d)
			if got, want := th.Load(), kthLargest(offered, k); got != want {
				t.Fatalf("trial %d after %d offers: Load=%d want %d (k=%d offered=%v)",
					trial, i+1, got, want, k, offered)
			}
		}
	}
}

func TestThresholdMonotoneUnderConcurrency(t *testing.T) {
	const k, workers, perWorker = 5, 8, 500
	th := NewThreshold(k)
	all := make([][]int32, workers)
	rng := rand.New(rand.NewSource(11))
	for w := range all {
		for i := 0; i < perWorker; i++ {
			all[w] = append(all[w], int32(rng.Intn(100)))
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(deltas []int32) {
			defer wg.Done()
			prev := int32(0)
			for _, d := range deltas {
				th.Offer(d)
				cur := th.Load()
				if cur < prev {
					t.Errorf("threshold decreased: %d -> %d", prev, cur)
					return
				}
				prev = cur
			}
		}(all[w])
	}
	wg.Wait()
	var flat []int32
	for _, d := range all {
		flat = append(flat, d...)
	}
	if got, want := th.Load(), kthLargest(flat, k); got != want {
		t.Fatalf("final threshold %d, reference %d", got, want)
	}
}

func TestSeedRaisesButNeverLowers(t *testing.T) {
	th := NewThreshold(3)
	th.Seed(4)
	if got := th.Load(); got != 4 {
		t.Fatalf("after Seed(4): %d", got)
	}
	th.Seed(2) // lower seed must not regress
	if got := th.Load(); got != 4 {
		t.Fatalf("after Seed(2): %d", got)
	}
	th.Seed(0) // non-positive ignored
	th.Seed(-3)
	if got := th.Load(); got != 4 {
		t.Fatalf("after non-positive seeds: %d", got)
	}
	// Offers below the seed never lower it; enough above it take over.
	for _, d := range []int32{1, 1, 1} {
		th.Offer(d)
	}
	if got := th.Load(); got != 4 {
		t.Fatalf("low offers lowered seed: %d", got)
	}
	for _, d := range []int32{9, 8, 7} {
		th.Offer(d)
	}
	if got := th.Load(); got != 7 {
		t.Fatalf("after high offers: %d want 7", got)
	}
}

func TestNewThresholdPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewThreshold(0) did not panic")
		}
	}()
	NewThreshold(0)
}
