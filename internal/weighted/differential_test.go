package weighted

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/topk"
)

// unitWeightPair mirrors an unweighted snapshot pair as a weighted pair with
// every edge at weight 1, where hop distance and weighted distance coincide.
func unitWeightPair(sp graph.SnapshotPair) SnapshotPair {
	return SnapshotPair{G1: graph.FromUnweighted(sp.G1), G2: graph.FromUnweighted(sp.G2)}
}

// growingPair builds a random insertion-only snapshot pair (same shape as
// the core package's test fixture).
func growingPair(t testing.TB, n int, seed int64) graph.SnapshotPair {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := map[graph.Edge]struct{}{}
	var stream []graph.TimedEdge
	add := func(u, v int) {
		if u == v {
			return
		}
		c := graph.Edge{U: u, V: v}.Canon()
		if _, dup := seen[c]; dup {
			return
		}
		seen[c] = struct{}{}
		stream = append(stream, graph.TimedEdge{U: u, V: v, Time: int64(len(stream))})
	}
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i))
		if i > 2 && rng.Intn(3) == 0 {
			add(i, rng.Intn(i))
		}
	}
	ev, err := graph.NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ev.Pair(0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestDifferentialUnitWeights is the unification's acceptance test: on
// all-weights-1 graphs, the weighted pipeline must produce bit-identical
// results to the unweighted pipeline — same Pairs, same Candidates, same
// per-phase budget report — for every registry selector and both the top-K
// and δ-threshold formulations. The two runs share one implementation of
// Algorithm 1; only the distance engine differs, and at unit weights BFS and
// Dijkstra compute the same metric.
func TestDifferentialUnitWeights(t *testing.T) {
	const (
		m = 16
		l = 4
	)
	for seed := int64(1); seed <= 3; seed++ {
		sp := growingPair(t, 80, seed)
		wsp := unitWeightPair(sp)
		if err := wsp.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, name := range candidates.Names() {
			sel, err := candidates.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []struct {
				label    string
				k        int
				minDelta int32
			}{
				{label: "topk", k: 10},
				{label: "delta", minDelta: 1},
			} {
				unw, err := core.TopK(sp, core.Options{
					Selector: sel, M: m, L: l, K: mode.k, MinDelta: mode.minDelta,
					Seed: seed, Workers: 2,
				})
				if err != nil {
					t.Fatalf("seed %d %s/%s unweighted: %v", seed, name, mode.label, err)
				}
				w, err := TopK(wsp, Options{
					Selector: name, M: m, L: l, K: mode.k, MinDelta: mode.minDelta,
					Seed: seed, Workers: 2,
				})
				if err != nil {
					t.Fatalf("seed %d %s/%s weighted: %v", seed, name, mode.label, err)
				}
				if !reflect.DeepEqual(unw.Pairs, w.Pairs) {
					t.Errorf("seed %d %s/%s: pairs diverge\nunweighted %v\nweighted   %v",
						seed, name, mode.label, unw.Pairs, w.Pairs)
				}
				if !reflect.DeepEqual(unw.Candidates, w.Candidates) {
					t.Errorf("seed %d %s/%s: candidates diverge\nunweighted %v\nweighted   %v",
						seed, name, mode.label, unw.Candidates, w.Candidates)
				}
				if unw.Budget != w.Budget {
					t.Errorf("seed %d %s/%s: budget reports diverge: %+v vs %+v",
						seed, name, mode.label, unw.Budget, w.Budget)
				}
				if unw.SelectorName != w.SelectorName {
					t.Errorf("seed %d %s/%s: selector names diverge: %q vs %q",
						seed, name, mode.label, unw.SelectorName, w.SelectorName)
				}
				if unw.Budget.Total() > 2*m {
					t.Errorf("seed %d %s/%s: overspent budget %v", seed, name, mode.label, unw.Budget)
				}
			}
		}
	}
}

// TestDifferentialClassifier extends the equivalence to a trained
// classification selector, driven through core.TopKSources directly (the
// name-based weighted adapter only covers the registry).
func TestDifferentialClassifier(t *testing.T) {
	sp := growingPair(t, 80, 9)
	wsp := unitWeightPair(sp)
	gt, err := topk.Compute(sp, topk.Options{Workers: 2, Slack: 2})
	if err != nil {
		t.Fatal(err)
	}
	positives := map[int32]bool{}
	for _, p := range gt.Pairs {
		positives[p.U] = true
		positives[p.V] = true
	}
	model, err := candidates.Train(
		[]candidates.TrainSample{{Pair: sp, Positives: positives}},
		candidates.TrainOptions{L: 3, Seed: 5, Workers: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	sel := candidates.Classifier("L-Classifier", model)
	opts := core.Options{Selector: sel, M: 14, L: 3, K: 8, Seed: 5, Workers: 2}
	unw, err := core.TopK(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.TopKSources(dist.DijkstraPair(wsp.G1, wsp.G2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unw.Pairs, w.Pairs) {
		t.Errorf("classifier pairs diverge\nunweighted %v\nweighted   %v", unw.Pairs, w.Pairs)
	}
	if !reflect.DeepEqual(unw.Candidates, w.Candidates) {
		t.Errorf("classifier candidates diverge\nunweighted %v\nweighted   %v",
			unw.Candidates, w.Candidates)
	}
	if unw.Budget != w.Budget {
		t.Errorf("classifier budget reports diverge: %+v vs %+v", unw.Budget, w.Budget)
	}
}
