package weighted

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sssp"
	"repro/internal/topk"
)

// roadPair builds a weighted "road network": a ring of n towns with heavy
// segments, where G2 upgrades two segments and adds a light bypass.
func roadPair(t testing.TB, n int) SnapshotPair {
	t.Helper()
	var e1 []graph.WeightedEdge
	for i := 0; i < n; i++ {
		e1 = append(e1, graph.WeightedEdge{U: i, V: (i + 1) % n, Weight: 4})
	}
	g1, err := graph.NewWeighted(n, e1)
	if err != nil {
		t.Fatal(err)
	}
	e2 := append([]graph.WeightedEdge{}, e1...)
	e2 = append(e2, graph.WeightedEdge{U: 0, V: n / 2, Weight: 1}) // bypass
	e2[0].Weight = 2                                               // upgrade {0,1}
	g2, err := graph.NewWeighted(n, e2)
	if err != nil {
		t.Fatal(err)
	}
	return SnapshotPair{G1: g1, G2: g2}
}

func TestValidate(t *testing.T) {
	sp := roadPair(t, 8)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (SnapshotPair{}).Validate(); err == nil {
		t.Fatal("nil snapshots should fail")
	}
	// Weight growth is rejected.
	g1, _ := graph.NewWeighted(2, []graph.WeightedEdge{{U: 0, V: 1, Weight: 1}})
	g2, _ := graph.NewWeighted(2, []graph.WeightedEdge{{U: 0, V: 1, Weight: 5}})
	if err := (SnapshotPair{G1: g1, G2: g2}).Validate(); err == nil {
		t.Fatal("weight growth should fail")
	}
	// Missing edge is rejected.
	g3, _ := graph.NewWeighted(3, []graph.WeightedEdge{{U: 0, V: 1, Weight: 1}})
	g4, _ := graph.NewWeighted(3, []graph.WeightedEdge{{U: 1, V: 2, Weight: 1}})
	if err := (SnapshotPair{G1: g3, G2: g4}).Validate(); err == nil {
		t.Fatal("edge deletion should fail")
	}
}

func TestComputeRoadNetwork(t *testing.T) {
	sp := roadPair(t, 10)
	gt, err := Compute(sp, topk.Options{Workers: 2, Slack: 100})
	if err != nil {
		t.Fatal(err)
	}
	// d1(0,5) = 20 (5 segments x 4); d2(0,5) = 1 via the bypass: Δ = 19.
	if gt.MaxDelta != 19 {
		t.Fatalf("MaxDelta = %d, want 19", gt.MaxDelta)
	}
	top := gt.TopK(1)[0]
	if top.U != 0 || top.V != 5 || top.D2 != 1 {
		t.Fatalf("top = %v", top)
	}
	if gt.Diameter1 != 20 {
		t.Fatalf("weighted diameter1 = %d, want 20", gt.Diameter1)
	}
}

// brute recomputes weighted ground truth naively.
func bruteWeighted(sp SnapshotPair) (int32, map[topk.Pair]bool) {
	n := sp.G1.NumNodes()
	pairs := map[topk.Pair]bool{}
	var maxDelta int32
	for u := 0; u < n; u++ {
		d1 := sssp.WeightedDistances(sp.G1, u)
		d2 := sssp.WeightedDistances(sp.G2, u)
		for v := u + 1; v < n; v++ {
			if d1[v] <= 0 {
				continue
			}
			delta := d1[v] - d2[v]
			if delta > 0 {
				pairs[topk.Pair{U: int32(u), V: int32(v), D1: d1[v], D2: d2[v], Delta: delta}] = true
				if delta > maxDelta {
					maxDelta = delta
				}
			}
		}
	}
	return maxDelta, pairs
}

// Property: the engine-based weighted sweep matches brute force on random
// dominated pairs.
func TestComputeMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		var e1 []graph.WeightedEdge
		for i := 1; i < n; i++ {
			e1 = append(e1, graph.WeightedEdge{U: i, V: rng.Intn(i), Weight: 1 + rng.Int31n(9)})
		}
		e2 := append([]graph.WeightedEdge{}, e1...)
		// Upgrades: shrink some weights.
		for i := range e2 {
			if rng.Intn(3) == 0 && e2[i].Weight > 1 {
				e2[i].Weight = 1 + rng.Int31n(e2[i].Weight)
			}
		}
		// New edges.
		for i := 0; i < n/2; i++ {
			e2 = append(e2, graph.WeightedEdge{U: rng.Intn(n), V: rng.Intn(n), Weight: 1 + rng.Int31n(9)})
		}
		g1, err := graph.NewWeighted(n, e1)
		if err != nil {
			return false
		}
		g2, err := graph.NewWeighted(n, e2)
		if err != nil {
			return false
		}
		sp := SnapshotPair{G1: g1, G2: g2}
		if sp.Validate() != nil {
			return true // random duplicate may break domination; skip
		}
		gt, err := Compute(sp, topk.Options{Workers: 3, Slack: 1 << 20})
		if err != nil {
			return false
		}
		wantMax, wantPairs := bruteWeighted(sp)
		if gt.MaxDelta != wantMax {
			return false
		}
		if len(gt.Pairs) != len(wantPairs) {
			return false
		}
		for _, p := range gt.Pairs {
			if !wantPairs[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKValidation(t *testing.T) {
	sp := roadPair(t, 8)
	if _, err := TopK(sp, Options{M: 0, K: 3}); err == nil {
		t.Fatal("m=0 should fail")
	}
	if _, err := TopK(sp, Options{M: 3}); err == nil {
		t.Fatal("missing K/MinDelta should fail")
	}
	if _, err := TopK(sp, Options{M: 3, K: 1, MinDelta: 1}); err == nil {
		t.Fatal("both K and MinDelta should fail")
	}
	if _, err := TopK(sp, Options{M: 3, K: 1, Selector: "Nope"}); err == nil {
		t.Fatal("unknown selector should fail")
	}
}

func TestTopKSelectorsFindBypass(t *testing.T) {
	sp := roadPair(t, 16)
	for _, sel := range []string{SelDegree, SelDegDiff, SelDegRel, SelMaxMin, SelMaxAvg, SelSumDiff, SelMaxDiff, SelMMSD} {
		res, err := TopK(sp, Options{Selector: sel, M: 8, L: 3, K: 4, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", sel, err)
		}
		if res.Budget.Total() > 16 {
			t.Fatalf("%s overspent: %v", sel, res.Budget)
		}
		if len(res.Candidates) > 8 {
			t.Fatalf("%s produced %d candidates", sel, len(res.Candidates))
		}
		// DegDiff and dispersion-style selectors should find the bypass
		// endpoints (0 and 8), which participate in the biggest drops.
		if sel == SelDegDiff || sel == SelMMSD {
			found := false
			for _, u := range res.Candidates {
				if u == 0 || u == 8 {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s candidates %v miss the bypass endpoints", sel, res.Candidates)
			}
			if len(res.Pairs) == 0 || res.Pairs[0].Delta < 10 {
				t.Fatalf("%s pairs = %v", sel, res.Pairs)
			}
		}
	}
}

func TestTopKMatchesExactWhenCovered(t *testing.T) {
	sp := roadPair(t, 12)
	gt, err := Compute(sp, topk.Options{Workers: 2, Slack: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TopK(sp, Options{Selector: SelMMSD, M: 6, L: 2, MinDelta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	truth := map[topk.Pair]bool{}
	for _, p := range gt.Pairs {
		truth[p] = true
	}
	for _, p := range res.Pairs {
		if !truth[p] {
			t.Fatalf("budgeted pair %v not in exact ground truth", p)
		}
	}
}

func TestLandmarkDeadZoneWeighted(t *testing.T) {
	sp := roadPair(t, 10)
	if _, err := TopK(sp, Options{Selector: SelSumDiff, M: 3, L: 5, K: 2, Seed: 1}); err == nil {
		t.Fatal("m <= l should fail")
	}
}
