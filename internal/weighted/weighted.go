// Package weighted extends the converging-pairs problem to weighted graphs,
// which the paper's problem statement explicitly admits ("undirected
// (weighted) graphs") but its evaluation never exercises. Distances come
// from Dijkstra instead of BFS; evolution is still insertion-only, and a
// new edge may also arrive with a smaller weight than an existing one
// (e.g. a road upgrade), which likewise only decreases distances.
//
// The package provides exact ground truth (via topk's generic engine) and a
// budgeted Algorithm 1 whose candidate generation offers the selectors that
// translate directly to weighted graphs: degree heuristics, weighted
// dispersion, and weighted landmark rankings.
package weighted

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/budget"
	"repro/internal/graph"
	"repro/internal/sssp"
	"repro/internal/topk"
)

// SnapshotPair is a weighted (G_t1, G_t2) pair. Validity requires the same
// node universe and that G_t2 dominates G_t1: every G_t1 edge exists in
// G_t2 with weight at most its G_t1 weight. That is exactly the condition
// under which all distances are non-increasing, hence Delta >= 0.
type SnapshotPair struct {
	G1, G2 *graph.Weighted
}

// Validate checks the domination invariant.
func (sp SnapshotPair) Validate() error {
	if sp.G1 == nil || sp.G2 == nil {
		return errors.New("weighted: nil snapshot")
	}
	if sp.G1.NumNodes() != sp.G2.NumNodes() {
		return fmt.Errorf("weighted: node universes differ: %d vs %d",
			sp.G1.NumNodes(), sp.G2.NumNodes())
	}
	for u := 0; u < sp.G1.NumNodes(); u++ {
		adj1, w1 := sp.G1.Neighbors(u)
		adj2, w2 := sp.G2.Neighbors(u)
		for i, v := range adj1 {
			j := sort.Search(len(adj2), func(j int) bool { return adj2[j] >= v })
			if j == len(adj2) || adj2[j] != v {
				return fmt.Errorf("weighted: edge (%d,%d) missing from G2", u, v)
			}
			if w2[j] > w1[i] {
				return fmt.Errorf("weighted: edge (%d,%d) weight grew %d -> %d",
					u, v, w1[i], w2[j])
			}
		}
	}
	return nil
}

// Compute runs the exact weighted all-pairs sweep (Dijkstra per source on
// both snapshots), producing the same GroundTruth structure as the
// unweighted sweep. Diameters are weighted eccentricities.
//
//convlint:unbudgeted exact weighted ground-truth sweep; budget-free by definition
func Compute(sp SnapshotPair, opts topk.Options) (*topk.GroundTruth, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	n := sp.G1.NumNodes()
	sources := make([]int, 0, n)
	var extra []int
	for u := 0; u < n; u++ {
		switch {
		case sp.G1.Degree(u) > 0:
			sources = append(sources, u)
		case sp.G2.Degree(u) > 0:
			extra = append(extra, u)
		}
	}
	return topk.ComputeEngine(topk.PairEngine{
		NumNodes: n,
		Sources:  sources,
		Paired: func(src int, d1, d2 []int32) {
			sssp.Dijkstra(sp.G1, src, d1)
			sssp.Dijkstra(sp.G2, src, d2)
		},
		ExtraDiam2Sources: extra,
		Dist2: func(src int, dist []int32) {
			sssp.Dijkstra(sp.G2, src, dist)
		},
	}, opts)
}

// Selector names supported by the weighted pipeline.
const (
	SelDegree  = "Degree"
	SelDegDiff = "DegDiff"
	SelDegRel  = "DegRel"
	SelMaxMin  = "MaxMin"
	SelMaxAvg  = "MaxAvg"
	SelSumDiff = "SumDiff"
	SelMaxDiff = "MaxDiff"
	SelMMSD    = "MMSD"
)

// Options configures a budgeted weighted run; semantics mirror core.Options.
type Options struct {
	Selector string
	M        int
	L        int
	K        int
	MinDelta int32
	Seed     int64
	Workers  int
}

// Result mirrors core.Result for the weighted pipeline.
type Result struct {
	Pairs      []topk.Pair
	Candidates []int
	Budget     budget.Report
}

// TopK runs the budgeted converging-pairs algorithm on a weighted pair.
func TopK(sp SnapshotPair, opts Options) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if opts.M <= 0 {
		return nil, fmt.Errorf("weighted: non-positive budget m=%d", opts.M)
	}
	if (opts.K > 0) == (opts.MinDelta > 0) {
		return nil, fmt.Errorf("weighted: exactly one of K (%d) and MinDelta (%d) must be positive",
			opts.K, opts.MinDelta)
	}
	if opts.L <= 0 {
		opts.L = 10
	}
	meter := budget.NewMeter(opts.M)
	rng := rand.New(rand.NewSource(opts.Seed))

	cands, d1rows, d2rows, err := selectCandidates(sp, opts, meter, rng)
	if err != nil {
		return nil, err
	}
	pairs, err := extract(sp, cands, d1rows, d2rows, opts, meter)
	if err != nil {
		return nil, err
	}
	return &Result{Pairs: pairs, Candidates: cands, Budget: meter.Report()}, nil
}

// selectCandidates implements the weighted selector suite. The returned row
// caches map candidate -> precomputed Dijkstra rows (may be nil).
func selectCandidates(sp SnapshotPair, opts Options, meter *budget.Meter, rng *rand.Rand) ([]int, map[int][]int32, map[int][]int32, error) {
	n := sp.G1.NumNodes()
	switch opts.Selector {
	case SelDegree, SelDegDiff, SelDegRel, "":
		type scored struct {
			node  int
			score float64
		}
		var nodes []scored
		for u := 0; u < n; u++ {
			d1, d2 := sp.G1.Degree(u), sp.G2.Degree(u)
			if d1 == 0 {
				continue
			}
			var s float64
			switch opts.Selector {
			case SelDegDiff:
				s = float64(d2 - d1)
			case SelDegRel:
				s = float64(d2-d1) / float64(d1)
			default:
				s = float64(d1)
			}
			nodes = append(nodes, scored{u, s})
		}
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].score != nodes[j].score {
				return nodes[i].score > nodes[j].score
			}
			return nodes[i].node < nodes[j].node
		})
		m := opts.M
		if m > len(nodes) {
			m = len(nodes)
		}
		out := make([]int, m)
		for i := range out {
			out[i] = nodes[i].node
		}
		return out, nil, nil, nil

	case SelMaxMin, SelMaxAvg:
		nodes, rows, err := dispersed(sp.G1, opts.M, opts.Selector == SelMaxAvg, meter)
		if err != nil {
			return nil, nil, nil, err
		}
		d1rows := map[int][]int32{}
		for i, u := range nodes {
			d1rows[u] = rows[i]
		}
		return nodes, d1rows, nil, nil

	case SelSumDiff, SelMaxDiff, SelMMSD:
		l := opts.L
		if opts.M <= l {
			return nil, nil, nil, fmt.Errorf("weighted: m=%d <= l=%d landmarks", opts.M, l)
		}
		var lms []int
		var rows1 [][]int32
		if opts.Selector == SelMMSD {
			var err error
			lms, rows1, err = dispersed(sp.G1, l, false, meter)
			if err != nil {
				return nil, nil, nil, err
			}
		} else {
			present := make([]int, 0, n)
			for u := 0; u < n; u++ {
				if sp.G1.Degree(u) > 0 {
					present = append(present, u)
				}
			}
			if len(present) == 0 {
				return nil, nil, nil, errors.New("weighted: empty G1")
			}
			if l > len(present) {
				l = len(present)
			}
			for _, i := range rng.Perm(len(present))[:l] {
				lms = append(lms, present[i])
			}
			if err := meter.Charge(budget.PhaseCandidateGen, len(lms)); err != nil {
				return nil, nil, nil, err
			}
			rows1 = make([][]int32, len(lms))
			for i, w := range lms {
				rows1[i] = make([]int32, n)
				sssp.Dijkstra(sp.G1, w, rows1[i])
			}
		}
		if err := meter.Charge(budget.PhaseCandidateGen, len(lms)); err != nil {
			return nil, nil, nil, err
		}
		rows2 := make([][]int32, len(lms))
		l1 := make([]int64, n)
		linf := make([]int32, n)
		for i, w := range lms {
			rows2[i] = make([]int32, n)
			sssp.Dijkstra(sp.G2, w, rows2[i])
			for v := 0; v < n; v++ {
				if rows1[i][v] <= 0 {
					continue
				}
				delta := rows1[i][v] - rows2[i][v]
				if delta <= 0 {
					continue
				}
				l1[v] += int64(delta)
				if delta > linf[v] {
					linf[v] = delta
				}
			}
		}
		score := l1
		if opts.Selector == SelMaxDiff {
			score = make([]int64, n)
			for v, d := range linf {
				score[v] = int64(d)
			}
		}
		inLms := map[int]bool{}
		for _, w := range lms {
			inLms[w] = true
		}
		type scored struct {
			node  int
			score int64
		}
		var ranked []scored
		for u := 0; u < n; u++ {
			if sp.G1.Degree(u) == 0 || (opts.Selector == SelMMSD && inLms[u]) {
				continue
			}
			ranked = append(ranked, scored{u, score[u]})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].score != ranked[j].score {
				return ranked[i].score > ranked[j].score
			}
			return ranked[i].node < ranked[j].node
		})
		var out []int
		d1rows := map[int][]int32{}
		d2rows := map[int][]int32{}
		// The landmark rows consumed 2l of the budget either way; only the
		// hybrid gets to count its (dispersed, meaningful) landmarks as
		// candidates, because their rows are cached for the extraction.
		take := opts.M - len(lms)
		if opts.Selector == SelMMSD {
			out = append(out, lms...)
			for i, w := range lms {
				d1rows[w] = rows1[i]
				d2rows[w] = rows2[i]
			}
			take = opts.M - len(out)
		}
		if take > len(ranked) {
			take = len(ranked)
		}
		for i := 0; i < take; i++ {
			out = append(out, ranked[i].node)
		}
		return out, d1rows, d2rows, nil

	default:
		return nil, nil, nil, fmt.Errorf("weighted: unknown selector %q", opts.Selector)
	}
}

// dispersed greedily picks m nodes maximizing the min (or average) weighted
// distance to the already-selected set, charging one Dijkstra per pick.
func dispersed(g *graph.Weighted, m int, avg bool, meter *budget.Meter) ([]int, [][]int32, error) {
	n := g.NumNodes()
	first := -1
	for u := 0; u < n; u++ {
		if g.Degree(u) > 0 && (first < 0 || g.Degree(u) > g.Degree(first)) {
			first = u
		}
	}
	if first < 0 {
		return nil, nil, errors.New("weighted: empty graph")
	}
	var nodes []int
	var rows [][]int32
	selected := make([]bool, n)
	score := make([]int64, n)
	pick := func(u int) error {
		if err := meter.Charge(budget.PhaseCandidateGen, 1); err != nil {
			return err
		}
		row := make([]int32, n)
		sssp.Dijkstra(g, u, row)
		nodes = append(nodes, u)
		rows = append(rows, row)
		selected[u] = true
		for v := 0; v < n; v++ {
			if row[v] < 0 {
				continue
			}
			d := int64(row[v])
			if avg {
				score[v] += d
			} else if len(nodes) == 1 || d < score[v] {
				score[v] = d
			}
		}
		return nil
	}
	if err := pick(first); err != nil {
		return nil, nil, err
	}
	for len(nodes) < m {
		best, bestScore := -1, int64(-1)
		for v := 0; v < n; v++ {
			if selected[v] || g.Degree(v) == 0 {
				continue
			}
			if score[v] > bestScore {
				best, bestScore = v, score[v]
			}
		}
		if best < 0 {
			break
		}
		if err := pick(best); err != nil {
			return nil, nil, err
		}
	}
	return nodes, rows, nil
}

// extract is the weighted Algorithm 1 extraction phase.
func extract(sp SnapshotPair, cands []int, d1rows, d2rows map[int][]int32, opts Options, meter *budget.Meter) ([]topk.Pair, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	n := sp.G1.NumNodes()
	toCharge := 0
	for _, u := range cands {
		if d1rows[u] == nil {
			toCharge++
		}
		if d2rows[u] == nil {
			toCharge++
		}
	}
	if err := meter.Charge(budget.PhaseTopK, toCharge); err != nil {
		return nil, err
	}
	inM := map[int]bool{}
	for _, u := range cands {
		inM[u] = true
	}
	floor := opts.MinDelta
	if floor <= 0 {
		floor = 1
	}
	var all []topk.Pair
	d1buf := make([]int32, n)
	d2buf := make([]int32, n)
	for _, u := range cands {
		d1 := d1rows[u]
		if d1 == nil {
			sssp.Dijkstra(sp.G1, u, d1buf)
			d1 = d1buf
		}
		d2 := d2rows[u]
		if d2 == nil {
			sssp.Dijkstra(sp.G2, u, d2buf)
			d2 = d2buf
		}
		for v := 0; v < n; v++ {
			if v == u || (inM[v] && v < u) {
				continue
			}
			if d1[v] <= 0 {
				continue
			}
			delta := d1[v] - d2[v]
			if delta < floor {
				continue
			}
			p := topk.Pair{U: int32(u), V: int32(v), D1: d1[v], D2: d2[v], Delta: delta}
			if p.U > p.V {
				p.U, p.V = p.V, p.U
			}
			all = append(all, p)
		}
	}
	topk.SortPairs(all)
	if opts.K > 0 && len(all) > opts.K {
		all = all[:opts.K]
	}
	return all, nil
}
