// Package weighted extends the converging-pairs problem to weighted graphs,
// which the paper's problem statement explicitly admits ("undirected
// (weighted) graphs") but its evaluation never exercises. Distances come
// from Dijkstra instead of BFS; evolution is still insertion-only, and a
// new edge may also arrive with a smaller weight than an existing one
// (e.g. a road upgrade), which likewise only decreases distances.
//
// The package is a thin adapter over the unified pipeline: it validates the
// weighted domination invariant, wraps the snapshots as Dijkstra distance
// sources (dist.DijkstraPair), and delegates both the exact ground truth
// (topk.ComputeSources) and the budgeted Algorithm 1 (core.TopKSources) to
// the same code the unweighted pipeline runs — one algorithm, two metrics.
// Every selector in the candidates registry works here; only the structural
// extras (BetDiff, EmbedSum, Incidence policies) are unweighted-only, and
// they reject weighted sources with a clear error.
package weighted

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topk"
)

// SnapshotPair is a weighted (G_t1, G_t2) pair. Validity requires the same
// node universe and that G_t2 dominates G_t1: every G_t1 edge exists in
// G_t2 with weight at most its G_t1 weight. That is exactly the condition
// under which all distances are non-increasing, hence Delta >= 0.
type SnapshotPair struct {
	G1, G2 *graph.Weighted
}

// Validate checks the domination invariant.
func (sp SnapshotPair) Validate() error {
	if sp.G1 == nil || sp.G2 == nil {
		return errors.New("weighted: nil snapshot")
	}
	if sp.G1.NumNodes() != sp.G2.NumNodes() {
		return fmt.Errorf("weighted: node universes differ: %d vs %d",
			sp.G1.NumNodes(), sp.G2.NumNodes())
	}
	for u := 0; u < sp.G1.NumNodes(); u++ {
		adj1, w1 := sp.G1.Neighbors(u)
		adj2, w2 := sp.G2.Neighbors(u)
		for i, v := range adj1 {
			j := sort.Search(len(adj2), func(j int) bool { return adj2[j] >= v })
			if j == len(adj2) || adj2[j] != v {
				return fmt.Errorf("weighted: edge (%d,%d) missing from G2", u, v)
			}
			if w2[j] > w1[i] {
				return fmt.Errorf("weighted: edge (%d,%d) weight grew %d -> %d",
					u, v, w1[i], w2[j])
			}
		}
	}
	return nil
}

// Sources wraps the validated pair as Dijkstra distance sources, the form
// the unified pipeline consumes.
func (sp SnapshotPair) Sources() dist.Pair { return dist.DijkstraPair(sp.G1, sp.G2) }

// Compute runs the exact weighted all-pairs sweep (Dijkstra per source on
// both snapshots) through topk's generic engine, producing the same
// GroundTruth structure as the unweighted sweep. Diameters are weighted
// eccentricities.
func Compute(sp SnapshotPair, opts topk.Options) (*topk.GroundTruth, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return topk.ComputeSources(sp.Sources(), opts)
}

// DefaultSelector is the selector an empty Options.Selector resolves to.
const DefaultSelector = SelDegree

// Selector names for the weighted pipeline. These are plain names into the
// unified candidates registry, kept as constants for compatibility; every
// registry selector (see Selectors) is accepted, not only these.
const (
	SelDegree  = "Degree"
	SelDegDiff = "DegDiff"
	SelDegRel  = "DegRel"
	SelMaxMin  = "MaxMin"
	SelMaxAvg  = "MaxAvg"
	SelSumDiff = "SumDiff"
	SelMaxDiff = "MaxDiff"
	SelMMSD    = "MMSD"
	SelMMMD    = "MMMD"
	SelMASD    = "MASD"
	SelMAMD    = "MAMD"
	SelRandom  = "Random"
)

// Selectors lists every selector name the weighted pipeline accepts, sorted —
// the full candidates registry, since selection runs on abstract distance
// sources.
func Selectors() []string { return candidates.Names() }

// Options configures a budgeted weighted run; semantics mirror core.Options.
type Options struct {
	// Selector names a candidates-registry selector; "" means
	// DefaultSelector. Unknown names error, listing the valid set.
	Selector string
	M        int
	L        int
	K        int
	MinDelta int32
	Seed     int64
	Workers  int
	// PairedMode mirrors core.Options.PairedMode. Dijkstra sources have no
	// incremental capability, so PairedIncremental silently runs full here;
	// the knob exists so CLI plumbing stays metric-agnostic.
	PairedMode dist.PairedMode
	// Trace, when non-nil, records the run's phases and budget charges
	// exactly like the unweighted pipeline (same span names, same phases).
	Trace *obs.Trace
}

// Result mirrors core.Result for the weighted pipeline.
type Result struct {
	Pairs      []topk.Pair
	Candidates []int
	Budget     budget.Report
	// SelectorName records which algorithm generated the candidates.
	SelectorName string
}

// TopK runs the budgeted converging-pairs algorithm on a weighted pair by
// delegating to the generic core over Dijkstra sources. Selection,
// extraction, budget metering, and tracing are the exact same code as the
// unweighted core.TopK.
func TopK(sp SnapshotPair, opts Options) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	name := opts.Selector
	if name == "" {
		name = DefaultSelector
	}
	sel, err := candidates.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("weighted: %w", err)
	}
	res, err := core.TopKSources(sp.Sources(), core.Options{
		Selector:   sel,
		M:          opts.M,
		L:          opts.L,
		K:          opts.K,
		MinDelta:   opts.MinDelta,
		Seed:       opts.Seed,
		Workers:    opts.Workers,
		PairedMode: opts.PairedMode,
		Trace:      opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Pairs:        res.Pairs,
		Candidates:   res.Candidates,
		Budget:       res.Budget,
		SelectorName: res.SelectorName,
	}, nil
}
