package weighted

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/sssp"
)

// TestTraceMatchesBudgetReportWeighted mirrors the core package's trace
// contract on the weighted pipeline: the unified run emits the same phase
// spans, and every Dijkstra the meter charges is attributed to the phase
// executing when it was spent, so traced per-phase totals equal the budget
// report. On top of the unweighted mirror it also cross-checks the kernel
// metrics: each budget unit corresponds to exactly one Dijkstra kernel call,
// so the run's kernel-call delta must equal the report's total.
func TestTraceMatchesBudgetReportWeighted(t *testing.T) {
	sp := unitWeightPair(growingPair(t, 150, 21))
	tr := obs.New("weighted-test")
	before := sssp.SnapshotMetrics()
	res, err := TopK(sp, Options{
		Selector: SelMMSD, M: 20, L: 5, K: 10, Workers: 2, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	work := sssp.SnapshotMetrics().Sub(before)

	byPhase := tr.SSSPByPhase()
	if got := byPhase["candidate-generation"]; got != res.Budget.CandidateGen {
		t.Errorf("traced candidate-generation = %d, budget report = %d", got, res.Budget.CandidateGen)
	}
	if got := byPhase["top-k-extraction"]; got != res.Budget.TopK {
		t.Errorf("traced top-k-extraction = %d, budget report = %d", got, res.Budget.TopK)
	}
	if res.Budget.Total() == 0 {
		t.Fatal("run spent no budget; the test is vacuous")
	}

	// Kernel attribution: the weighted pipeline computes distances with the
	// Dijkstra kernel only, one call per charged SSSP (landmark sets have
	// unique nodes and extraction rows are charged per cache miss).
	if work.Dijkstra.Calls != int64(res.Budget.Total()) {
		t.Errorf("Dijkstra kernel calls = %d, budget total = %d",
			work.Dijkstra.Calls, res.Budget.Total())
	}
	if work.Dijkstra.Sources != work.Dijkstra.Calls {
		t.Errorf("Dijkstra sources = %d, calls = %d", work.Dijkstra.Sources, work.Dijkstra.Calls)
	}
	if work.Dijkstra.Edges == 0 || work.Dijkstra.Nodes == 0 || work.Dijkstra.FrontierPeak == 0 {
		t.Errorf("Dijkstra kernel counters look dead: %+v", work.Dijkstra)
	}
	// No BFS kernel may run during a weighted-only pipeline. (Other tests
	// run in parallel only across packages, so the process-global counters
	// are stable within this test binary run.)
	if bfs := work.TopDown.Calls + work.DirectionOpt.Calls + work.BitParallel64.Calls + work.Envelope.Calls; bfs != 0 {
		t.Errorf("weighted run executed %d BFS kernel calls", bfs)
	}

	// The exported Chrome document must parse and contain the same phase
	// spans as the unweighted pipeline — one algorithm, one trace shape.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
		Metadata struct {
			SSSPByPhase map[string]int `json:"sssp-by-phase"`
		} `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	spans := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" {
			spans[e.Name] = true
		}
	}
	for _, want := range []string{"algorithm1", "selection", "extraction", "sort-cut"} {
		if !spans[want] {
			t.Errorf("Chrome export is missing the %q span (have %v)", want, spans)
		}
	}
	if doc.Metadata.SSSPByPhase["candidate-generation"] != res.Budget.CandidateGen {
		t.Errorf("metadata sssp-by-phase = %v, want candidate-generation=%d",
			doc.Metadata.SSSPByPhase, res.Budget.CandidateGen)
	}
}
