package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/graph"
)

func TestDegreesEmpty(t *testing.T) {
	var g graph.Graph
	st := Degrees(&g)
	if st.Max != 0 || st.Mean != 0 || st.Isolated != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestDegreesStar(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	st := Degrees(g)
	if st.Max != 4 || st.Min != 0 || st.Isolated != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Mean != 8.0/6.0 {
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.Histogram[1] != 4 || st.Histogram[4] != 1 || st.Histogram[0] != 1 {
		t.Fatalf("hist = %v", st.Histogram)
	}
	if st.Gini <= 0 || st.Gini >= 1 {
		t.Fatalf("gini = %v", st.Gini)
	}
}

func TestDegreesRegular(t *testing.T) {
	// Ring: all degrees 2, Gini 0.
	var edges []graph.Edge
	for i := 0; i < 10; i++ {
		edges = append(edges, graph.Edge{U: i, V: (i + 1) % 10})
	}
	g := graph.FromEdges(10, edges)
	st := Degrees(g)
	if st.Min != 2 || st.Max != 2 || st.Median != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Gini) > 1e-9 {
		t.Fatalf("regular graph gini = %v", st.Gini)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: CC = 1.
	tri := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if cc := ClusteringCoefficient(tri); math.Abs(cc-1) > 1e-9 {
		t.Fatalf("triangle CC = %v", cc)
	}
	// Star: no triangles, CC = 0.
	star := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	if cc := ClusteringCoefficient(star); cc != 0 {
		t.Fatalf("star CC = %v", cc)
	}
	// Empty graph.
	if cc := ClusteringCoefficient(graph.FromEdges(3, nil)); cc != 0 {
		t.Fatalf("empty CC = %v", cc)
	}
	// Triangle plus a pendant: 3 closed wedges of 3 + C(3,2)=3 at the
	// degree-3 corner + ... compute: degrees: 0:3 (in tri + pendant), 1:2,
	// 2:2, 3:1. Wedges = 3 + 1 + 1 + 0 = 5. Corner closures = 3. CC = 0.6.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3}})
	if cc := ClusteringCoefficient(g); math.Abs(cc-0.6) > 1e-9 {
		t.Fatalf("CC = %v, want 0.6", cc)
	}
}

func TestAssortativityExtremes(t *testing.T) {
	// Star: perfectly disassortative.
	star := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	if a := Assortativity(star); a >= 0 {
		t.Fatalf("star assortativity = %v, want < 0", a)
	}
	// Ring: all degrees equal -> undefined, reported as 0.
	var edges []graph.Edge
	for i := 0; i < 8; i++ {
		edges = append(edges, graph.Edge{U: i, V: (i + 1) % 8})
	}
	if a := Assortativity(graph.FromEdges(8, edges)); a != 0 {
		t.Fatalf("ring assortativity = %v", a)
	}
	if a := Assortativity(graph.FromEdges(3, nil)); a != 0 {
		t.Fatalf("empty assortativity = %v", a)
	}
}

// Property: assortativity is a correlation, so it lies in [-1, 1]; Gini in
// [0, 1); CC in [0, 1].
func TestRangesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		a := Assortativity(g)
		cc := ClusteringCoefficient(g)
		gini := Degrees(g).Gini
		return a >= -1-1e-9 && a <= 1+1e-9 && cc >= 0 && cc <= 1 && gini >= 0 && gini < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawAlpha(t *testing.T) {
	// Preferential attachment should show a heavy tail (alpha ~ 2-3.5);
	// an Erdős–Rényi-style graph of the same size should show a larger
	// alpha (thin tail decays faster than any power law fits loosely).
	ev, err := datagen.InternetAS(datagen.Config{Seed: 4, Scale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	pa := ev.SnapshotFraction(1.0)
	alphaPA := PowerLawAlpha(pa, 3)
	if alphaPA < 1.5 || alphaPA > 4.5 {
		t.Fatalf("preferential-attachment alpha = %v", alphaPA)
	}
	// Against a uniform-random graph of the same size, the heavy tail shows
	// up as dramatically larger hubs and degree inequality (the Hill
	// estimates themselves are too noisy to compare directly).
	rng := rand.New(rand.NewSource(5))
	b := graph.NewBuilder(pa.NumNodes())
	for i := 0; i < pa.NumEdges(); i++ {
		_ = b.AddEdge(rng.Intn(pa.NumNodes()), rng.Intn(pa.NumNodes()))
	}
	er := b.Build()
	if pa.MaxDegree() < 3*er.MaxDegree() {
		t.Fatalf("PA max degree %d not hub-dominant over ER %d", pa.MaxDegree(), er.MaxDegree())
	}
	if Degrees(pa).Gini <= Degrees(er).Gini {
		t.Fatalf("PA gini %v should exceed ER gini %v", Degrees(pa).Gini, Degrees(er).Gini)
	}
	// Tiny graphs report 0.
	if a := PowerLawAlpha(graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}}), 1); a != 0 {
		t.Fatalf("tiny alpha = %v", a)
	}
}

// The four dataset regimes (DESIGN.md §4) must be visible in the stats:
// Facebook has the highest clustering; Internet the heaviest hubs (highest
// Gini); DBLP is sparse with high clustering (cliques) but tiny degrees.
func TestDatasetRegimes(t *testing.T) {
	sums := map[string]Summary{}
	for _, name := range datagen.Names {
		ev, err := datagen.ByName(name, datagen.Config{Seed: 6, Scale: 0.08})
		if err != nil {
			t.Fatal(err)
		}
		sums[name] = Summarize(ev.SnapshotFraction(1.0))
	}
	if sums["InternetLinks"].Degrees.Gini <= sums["DBLP"].Degrees.Gini {
		t.Fatalf("Internet gini %v should exceed DBLP %v",
			sums["InternetLinks"].Degrees.Gini, sums["DBLP"].Degrees.Gini)
	}
	if sums["Facebook"].Clustering <= sums["InternetLinks"].Clustering {
		t.Fatalf("Facebook clustering %v should exceed Internet %v",
			sums["Facebook"].Clustering, sums["InternetLinks"].Clustering)
	}
	if sums["DBLP"].Degrees.Mean >= sums["Facebook"].Degrees.Mean {
		t.Fatalf("DBLP mean degree %v should be below Facebook %v",
			sums["DBLP"].Degrees.Mean, sums["Facebook"].Degrees.Mean)
	}
}
