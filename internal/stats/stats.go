// Package stats computes structural graph statistics — degree
// distributions, clustering coefficients, degree assortativity, and a
// heavy-tail exponent estimate — used to verify that the synthetic
// stand-in datasets occupy the structural regimes the paper's analysis
// relies on (DESIGN.md §4), and to enrich the dataset characterization of
// the experiment harness.
package stats

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// DegreeStats summarizes a graph's degree distribution.
type DegreeStats struct {
	Min, Max  int
	Mean      float64
	Median    float64
	P90, P99  int
	Gini      float64 // inequality of the degree distribution in [0, 1)
	Isolated  int     // nodes with degree 0
	Histogram map[int]int
}

// Degrees computes the degree distribution summary.
func Degrees(g *graph.Graph) DegreeStats {
	n := g.NumNodes()
	st := DegreeStats{Histogram: map[int]int{}}
	if n == 0 {
		return st
	}
	degs := make([]int, n)
	sum := 0
	st.Min = g.Degree(0)
	for u := 0; u < n; u++ {
		d := g.Degree(u)
		degs[u] = d
		sum += d
		st.Histogram[d]++
		if d == 0 {
			st.Isolated++
		}
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(sum) / float64(n)
	sort.Ints(degs)
	st.Median = float64(degs[n/2])
	if n%2 == 0 {
		st.Median = (float64(degs[n/2-1]) + float64(degs[n/2])) / 2
	}
	st.P90 = degs[min(n-1, n*90/100)]
	st.P99 = degs[min(n-1, n*99/100)]
	// Gini over sorted degrees: sum_i (2i - n + 1) x_i / (n * sum x).
	if sum > 0 {
		var acc float64
		for i, d := range degs {
			acc += float64(2*i-n+1) * float64(d)
		}
		st.Gini = acc / (float64(n) * float64(sum))
	}
	return st
}

// ClusteringCoefficient returns the global clustering coefficient
// (3 × triangles / wedges) — the triadic-closure signal that distinguishes
// the Facebook and Actors regimes from the Internet's hub topology.
func ClusteringCoefficient(g *graph.Graph) float64 {
	n := g.NumNodes()
	var triangles, wedges int64
	for u := 0; u < n; u++ {
		adj := g.Neighbors(u)
		d := int64(len(adj))
		wedges += d * (d - 1) / 2
		// Count edges among neighbors (each triangle counted once per
		// corner; dividing by the wedge count handles the multiplicity).
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				if g.HasEdge(int(adj[i]), int(adj[j])) {
					triangles++
				}
			}
		}
	}
	if wedges == 0 {
		return 0
	}
	// Each triangle contributes one closed wedge at each of its 3 corners,
	// and `triangles` already counts corner-wise closures.
	return float64(triangles) / float64(wedges)
}

// Assortativity returns the degree assortativity coefficient (Pearson
// correlation of endpoint degrees over edges). Social graphs are typically
// assortative (> 0), the Internet AS graph famously disassortative (< 0).
func Assortativity(g *graph.Graph) float64 {
	var m float64
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	for u := 0; u < g.NumNodes(); u++ {
		du := float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			// Each undirected edge is visited twice, once per direction —
			// which is exactly the symmetric treatment the coefficient needs.
			dv := float64(g.Degree(int(v)))
			sumXY += du * dv
			sumX += du
			sumY += dv
			sumX2 += du * du
			sumY2 += dv * dv
			m++
		}
	}
	if m == 0 {
		return 0
	}
	num := sumXY/m - (sumX/m)*(sumY/m)
	den := math.Sqrt(sumX2/m-(sumX/m)*(sumX/m)) * math.Sqrt(sumY2/m-(sumY/m)*(sumY/m))
	if den == 0 {
		return 0
	}
	return num / den
}

// PowerLawAlpha estimates the tail exponent of the degree distribution with
// the discrete Hill/MLE estimator α = 1 + n / Σ ln(d_i / (dmin - 0.5)) over
// degrees ≥ dmin. Heavy-tailed graphs (preferential attachment) show
// α ≈ 2-3; returns 0 if fewer than 10 nodes qualify.
func PowerLawAlpha(g *graph.Graph, dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	var sum float64
	count := 0
	for u := 0; u < g.NumNodes(); u++ {
		d := g.Degree(u)
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			count++
		}
	}
	if count < 10 || sum == 0 {
		return 0
	}
	return 1 + float64(count)/sum
}

// Summary bundles the statistics the dataset characterization prints.
type Summary struct {
	Degrees       DegreeStats
	Clustering    float64
	Assortativity float64
	PowerLawAlpha float64
}

// Summarize computes all statistics of a snapshot.
func Summarize(g *graph.Graph) Summary {
	return Summary{
		Degrees:       Degrees(g),
		Clustering:    ClusteringCoefficient(g),
		Assortativity: Assortativity(g),
		PowerLawAlpha: PowerLawAlpha(g, 2),
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
