// Package viz renders experiment data series as Unicode sparklines and
// small ASCII charts, so the experiment CLI can show figure shapes directly
// in the terminal without any plotting dependency.
package viz

import (
	"fmt"
	"strings"
)

// sparkLevels are the eight block glyphs a sparkline quantizes into.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values in [0, max] as one line of block glyphs. A
// non-positive max auto-scales to the series maximum; all-zero series
// render as the lowest block.
func Sparkline(values []float64, max float64) string {
	if len(values) == 0 {
		return ""
	}
	if max <= 0 {
		for _, v := range values {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Chart renders a labeled multi-series chart: one sparkline row per series
// plus a shared x-axis annotation. Series values are fractions in [0, 1]
// (coverage); the chart prints percentages at both ends.
func Chart(title string, xs []int, series map[string][]float64, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	labelWidth := 0
	for _, name := range order {
		if len(name) > labelWidth {
			labelWidth = len(name)
		}
	}
	for _, name := range order {
		vals := series[name]
		if len(vals) == 0 {
			continue
		}
		first, last := vals[0], vals[len(vals)-1]
		fmt.Fprintf(&b, "  %-*s %5.1f%% %s %5.1f%%\n",
			labelWidth, name, 100*first, Sparkline(vals, 1), 100*last)
	}
	if len(xs) > 0 {
		fmt.Fprintf(&b, "  %-*s m=%d%sm=%d\n", labelWidth, "",
			xs[0], strings.Repeat(" ", maxInt(1, len(xs)-len(fmt.Sprint(xs[0]))-2)), xs[len(xs)-1])
	}
	return b.String()
}

// Bar renders a horizontal percentage bar of the given width.
func Bar(fraction float64, width int) string {
	if width <= 0 {
		width = 20
	}
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	filled := int(fraction*float64(width) + 0.5)
	return strings.Repeat("█", filled) + strings.Repeat("░", width-filled)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
