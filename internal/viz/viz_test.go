package viz

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSparkline(t *testing.T) {
	if s := Sparkline(nil, 1); s != "" {
		t.Fatalf("empty = %q", s)
	}
	s := Sparkline([]float64{0, 0.5, 1}, 1)
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("length = %d", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("sparkline = %q", s)
	}
	// Auto-scaling.
	auto := Sparkline([]float64{1, 2, 4}, 0)
	if []rune(auto)[2] != '█' {
		t.Fatalf("auto = %q", auto)
	}
	// All zeros.
	flat := Sparkline([]float64{0, 0}, 0)
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat = %q", flat)
		}
	}
	// Out-of-range values clamp.
	clamped := Sparkline([]float64{-1, 2}, 1)
	rs := []rune(clamped)
	if rs[0] != '▁' || rs[1] != '█' {
		t.Fatalf("clamped = %q", clamped)
	}
}

// Property: sparkline glyph count always equals the value count and every
// glyph is one of the eight levels.
func TestSparklineProperty(t *testing.T) {
	f := func(raw []float64) bool {
		s := Sparkline(raw, 0)
		if utf8.RuneCountInString(s) != len(raw) {
			return false
		}
		for _, r := range s {
			if !strings.ContainsRune("▁▂▃▄▅▆▇█", r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChart(t *testing.T) {
	out := Chart("Coverage vs m", []int{10, 50},
		map[string][]float64{"MMSD": {0.2, 0.9}, "SumDiff": {0, 0.7}},
		[]string{"MMSD", "SumDiff"})
	for _, want := range []string{"Coverage vs m", "MMSD", "SumDiff", "90.0%", "m=10", "m=50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Missing series are skipped without panic.
	out = Chart("t", []int{1}, map[string][]float64{}, []string{"absent"})
	if !strings.Contains(out, "t") {
		t.Fatal("title missing")
	}
}

func TestBar(t *testing.T) {
	if b := Bar(0.5, 10); strings.Count(b, "█") != 5 || strings.Count(b, "░") != 5 {
		t.Fatalf("bar = %q", b)
	}
	if b := Bar(-1, 4); strings.Count(b, "█") != 0 {
		t.Fatalf("negative bar = %q", b)
	}
	if b := Bar(2, 4); strings.Count(b, "█") != 4 {
		t.Fatalf("overflow bar = %q", b)
	}
	if b := Bar(0.5, 0); utf8.RuneCountInString(b) != 20 {
		t.Fatalf("default width = %d", utf8.RuneCountInString(b))
	}
}
