// Package dataset wraps an evolving graph with the snapshot conventions of
// the paper's evaluation (Section 5.1): the test pair is (80%, 100%) of the
// edge stream, classifier training uses (60%, 70%), and per-dataset
// characteristics reproduce Table 2. It also provides a plain-text edge-list
// format so generated datasets can be saved and reloaded by the CLIs:
// "u v t" lines for unweighted streams, "u v t w" for weighted ones (w is
// the edge's fixed positive weight; snapshots then feed the Dijkstra-backed
// pipeline via WeightedPair).
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/topk"
	"repro/internal/weighted"
)

// Snapshot fractions used across the evaluation.
const (
	TrainFrac1 = 0.6
	TrainFrac2 = 0.7
	TestFrac1  = 0.8
	TestFrac2  = 1.0
)

// Dataset is a named evolving graph, optionally with per-edge weights.
type Dataset struct {
	Name string
	Ev   *graph.Evolving
	// Weights, when non-nil, holds one fixed positive weight per stream edge
	// (parallel to Ev.Stream()). Because every edge keeps its weight across
	// snapshots and evolution is insertion-only, any later weighted snapshot
	// automatically dominates any earlier one — the Delta >= 0 invariant of
	// the weighted pipeline holds by construction. nil means unit weights.
	Weights []int32
}

// Weighted reports whether the dataset carries per-edge weights.
func (d *Dataset) Weighted() bool { return d.Weights != nil }

// Generate builds one of the four synthetic paper datasets.
func Generate(name string, cfg datagen.Config) (*Dataset, error) {
	ev, err := datagen.ByName(name, cfg)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Ev: ev}, nil
}

// GenerateAll builds all four datasets with the same config.
func GenerateAll(cfg datagen.Config) ([]*Dataset, error) {
	out := make([]*Dataset, 0, len(datagen.Names))
	for _, name := range datagen.Names {
		ds, err := Generate(name, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}

// TestPair returns the evaluation snapshot pair (80% / 100%).
func (d *Dataset) TestPair() graph.SnapshotPair {
	pair, err := d.Ev.Pair(TestFrac1, TestFrac2)
	if err != nil {
		// The fractions are compile-time constants with TestFrac1 < TestFrac2.
		panic(err)
	}
	return pair
}

// TrainPair returns the classifier-training snapshot pair (60% / 70%).
func (d *Dataset) TrainPair() graph.SnapshotPair {
	pair, err := d.Ev.Pair(TrainFrac1, TrainFrac2)
	if err != nil {
		panic(err)
	}
	return pair
}

// Characteristics are the Table 2 columns for one dataset.
type Characteristics struct {
	Name string
	// Nodes1/Nodes2 count nodes with at least one edge in each snapshot.
	Nodes1, Nodes2 int
	// Edges1/Edges2 are the snapshot edge counts.
	Edges1, Edges2 int
	// Diameter1/Diameter2 are exact diameters (largest finite distance).
	Diameter1, Diameter2 int32
	// MaxDelta is Δmax, the largest shortest-path decrease.
	MaxDelta int32
	// NotConnected counts the nodes of G_t1 outside its largest connected
	// component (present nodes only).
	NotConnected int
}

// Characteristics computes the Table 2 row of the dataset's test pair. The
// ground truth gt must come from topk.Compute on the same pair (callers
// usually have it already; passing it avoids a second all-pairs sweep).
func (d *Dataset) Characteristics(pair graph.SnapshotPair, gt *topk.GroundTruth) Characteristics {
	c := Characteristics{
		Name:      d.Name,
		Edges1:    pair.G1.NumEdges(),
		Edges2:    pair.G2.NumEdges(),
		Diameter1: gt.Diameter1,
		Diameter2: gt.Diameter2,
		MaxDelta:  gt.MaxDelta,
	}
	for u := 0; u < pair.G1.NumNodes(); u++ {
		if pair.G1.Degree(u) > 0 {
			c.Nodes1++
		}
		if pair.G2.Degree(u) > 0 {
			c.Nodes2++
		}
	}
	comp, _ := graph.LargestComponent(pair.G1)
	c.NotConnected = c.Nodes1 - len(comp)
	return c
}

// Save writes the dataset as "u v t" lines (or "u v t w" when weighted)
// preceded by a name header.
func (d *Dataset) Save(w io.Writer) error {
	if d.Weights != nil && len(d.Weights) != len(d.Ev.Stream()) {
		return fmt.Errorf("dataset: %d weights for %d stream edges", len(d.Weights), len(d.Ev.Stream()))
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dataset %s\n", d.Name); err != nil {
		return err
	}
	for i, te := range d.Ev.Stream() {
		var err error
		if d.Weights != nil {
			_, err = fmt.Fprintf(bw, "%d %d %d %d\n", te.U, te.V, te.Time, d.Weights[i])
		} else {
			_, err = fmt.Fprintf(bw, "%d %d %d\n", te.U, te.V, te.Time)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the dataset to the given path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a dataset written by Save, auto-detecting the 3-column
// unweighted and 4-column weighted formats (the column count must be
// consistent across the file). Lines starting with '#' other than the name
// header are ignored; a missing header yields the fallback name.
func Load(r io.Reader, fallbackName string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	name := fallbackName
	var stream []graph.TimedEdge
	var weights []int32
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			var n string
			if _, err := fmt.Sscanf(line, "# dataset %s", &n); err == nil {
				name = n
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("dataset: line %d: %d fields, want 3 (u v t) or 4 (u v t w)", lineNo, len(fields))
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		tm, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("dataset: line %d: malformed edge %q", lineNo, line)
		}
		if len(fields) == 4 {
			if len(stream) != len(weights) {
				return nil, fmt.Errorf("dataset: line %d: weighted line in an unweighted file", lineNo)
			}
			w, err := strconv.ParseInt(fields[3], 10, 32)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("dataset: line %d: bad weight %q", lineNo, fields[3])
			}
			weights = append(weights, int32(w))
		} else if weights != nil {
			return nil, fmt.Errorf("dataset: line %d: unweighted line in a weighted file", lineNo)
		}
		stream = append(stream, graph.TimedEdge{U: u, V: v, Time: tm})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	ev, err := graph.NewEvolving(stream)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Ev: ev, Weights: weights}, nil
}

// AssignUniformWeights attaches per-edge weights drawn uniformly from
// [1, max], replacing any existing weights. The draw is deterministic in the
// seed and in stream order, so saved and regenerated datasets agree.
func (d *Dataset) AssignUniformWeights(seed int64, max int32) error {
	if max < 1 {
		return fmt.Errorf("dataset: max weight %d, want >= 1", max)
	}
	rng := rand.New(rand.NewSource(seed))
	weights := make([]int32, d.Ev.NumEdges())
	for i := range weights {
		weights[i] = 1 + rng.Int31n(max)
	}
	d.Weights = weights
	return nil
}

// weightedPrefix builds the weighted snapshot containing the first count
// stream edges, over the full node universe (mirroring SnapshotPrefix).
func (d *Dataset) weightedPrefix(count int) (*graph.Weighted, error) {
	if count < 0 {
		count = 0
	}
	if count > d.Ev.NumEdges() {
		count = d.Ev.NumEdges()
	}
	edges := make([]graph.WeightedEdge, count)
	for i, te := range d.Ev.Stream()[:count] {
		edges[i] = graph.WeightedEdge{U: te.U, V: te.V, Weight: d.Weights[i]}
	}
	return graph.NewWeighted(d.Ev.NumNodes(), edges)
}

// WeightedPair returns the weighted snapshot pair at fractions (f1, f2) of
// the edge stream, the Dijkstra-pipeline analogue of Evolving.Pair. Each edge
// keeps its fixed weight in both snapshots, so the later snapshot dominates
// the earlier one by construction. The dataset must be weighted.
func (d *Dataset) WeightedPair(f1, f2 float64) (weighted.SnapshotPair, error) {
	if d.Weights == nil {
		return weighted.SnapshotPair{}, fmt.Errorf("dataset: %s has no edge weights (load a 4-column file or call AssignUniformWeights)", d.Name)
	}
	if len(d.Weights) != d.Ev.NumEdges() {
		return weighted.SnapshotPair{}, fmt.Errorf("dataset: %d weights for %d stream edges", len(d.Weights), d.Ev.NumEdges())
	}
	if !(f1 < f2) || f1 < 0 || f2 > 1 {
		return weighted.SnapshotPair{}, fmt.Errorf("dataset: bad fractions (%v, %v), want 0 <= f1 < f2 <= 1", f1, f2)
	}
	total := float64(d.Ev.NumEdges())
	g1, err := d.weightedPrefix(int(f1 * total))
	if err != nil {
		return weighted.SnapshotPair{}, err
	}
	g2, err := d.weightedPrefix(int(f2 * total))
	if err != nil {
		return weighted.SnapshotPair{}, err
	}
	sp := weighted.SnapshotPair{G1: g1, G2: g2}
	if err := sp.Validate(); err != nil {
		return weighted.SnapshotPair{}, err
	}
	return sp, nil
}

// LoadFile reads a dataset from the given path, using the path as the
// fallback name.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, path)
}
