// Package dataset wraps an evolving graph with the snapshot conventions of
// the paper's evaluation (Section 5.1): the test pair is (80%, 100%) of the
// edge stream, classifier training uses (60%, 70%), and per-dataset
// characteristics reproduce Table 2. It also provides a plain-text edge-list
// format so generated datasets can be saved and reloaded by the CLIs.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/topk"
)

// Snapshot fractions used across the evaluation.
const (
	TrainFrac1 = 0.6
	TrainFrac2 = 0.7
	TestFrac1  = 0.8
	TestFrac2  = 1.0
)

// Dataset is a named evolving graph.
type Dataset struct {
	Name string
	Ev   *graph.Evolving
}

// Generate builds one of the four synthetic paper datasets.
func Generate(name string, cfg datagen.Config) (*Dataset, error) {
	ev, err := datagen.ByName(name, cfg)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Ev: ev}, nil
}

// GenerateAll builds all four datasets with the same config.
func GenerateAll(cfg datagen.Config) ([]*Dataset, error) {
	out := make([]*Dataset, 0, len(datagen.Names))
	for _, name := range datagen.Names {
		ds, err := Generate(name, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}

// TestPair returns the evaluation snapshot pair (80% / 100%).
func (d *Dataset) TestPair() graph.SnapshotPair {
	pair, err := d.Ev.Pair(TestFrac1, TestFrac2)
	if err != nil {
		// The fractions are compile-time constants with TestFrac1 < TestFrac2.
		panic(err)
	}
	return pair
}

// TrainPair returns the classifier-training snapshot pair (60% / 70%).
func (d *Dataset) TrainPair() graph.SnapshotPair {
	pair, err := d.Ev.Pair(TrainFrac1, TrainFrac2)
	if err != nil {
		panic(err)
	}
	return pair
}

// Characteristics are the Table 2 columns for one dataset.
type Characteristics struct {
	Name string
	// Nodes1/Nodes2 count nodes with at least one edge in each snapshot.
	Nodes1, Nodes2 int
	// Edges1/Edges2 are the snapshot edge counts.
	Edges1, Edges2 int
	// Diameter1/Diameter2 are exact diameters (largest finite distance).
	Diameter1, Diameter2 int32
	// MaxDelta is Δmax, the largest shortest-path decrease.
	MaxDelta int32
	// NotConnected counts the nodes of G_t1 outside its largest connected
	// component (present nodes only).
	NotConnected int
}

// Characteristics computes the Table 2 row of the dataset's test pair. The
// ground truth gt must come from topk.Compute on the same pair (callers
// usually have it already; passing it avoids a second all-pairs sweep).
func (d *Dataset) Characteristics(pair graph.SnapshotPair, gt *topk.GroundTruth) Characteristics {
	c := Characteristics{
		Name:      d.Name,
		Edges1:    pair.G1.NumEdges(),
		Edges2:    pair.G2.NumEdges(),
		Diameter1: gt.Diameter1,
		Diameter2: gt.Diameter2,
		MaxDelta:  gt.MaxDelta,
	}
	for u := 0; u < pair.G1.NumNodes(); u++ {
		if pair.G1.Degree(u) > 0 {
			c.Nodes1++
		}
		if pair.G2.Degree(u) > 0 {
			c.Nodes2++
		}
	}
	comp, _ := graph.LargestComponent(pair.G1)
	c.NotConnected = c.Nodes1 - len(comp)
	return c
}

// Save writes the dataset as "u v t" lines preceded by a name header.
func (d *Dataset) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dataset %s\n", d.Name); err != nil {
		return err
	}
	for _, te := range d.Ev.Stream() {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", te.U, te.V, te.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the dataset to the given path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a dataset written by Save. Lines starting with '#' other than
// the name header are ignored; a missing header yields the fallback name.
func Load(r io.Reader, fallbackName string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	name := fallbackName
	var stream []graph.TimedEdge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			var n string
			if _, err := fmt.Sscanf(line, "# dataset %s", &n); err == nil {
				name = n
			}
			continue
		}
		var u, v int
		var tm int64
		if _, err := fmt.Sscanf(line, "%d %d %d", &u, &v, &tm); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %v", lineNo, err)
		}
		stream = append(stream, graph.TimedEdge{U: u, V: v, Time: tm})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	ev, err := graph.NewEvolving(stream)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Ev: ev}, nil
}

// LoadFile reads a dataset from the given path, using the path as the
// fallback name.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, path)
}
