package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad exercises the edge-list parser with arbitrary input: it must
// never panic, and anything it accepts must round-trip through Save/Load.
func FuzzLoad(f *testing.F) {
	f.Add("0 1 0\n1 2 1\n")
	f.Add("# dataset X\n0 1 0\n")
	f.Add("")
	f.Add("a b c\n")
	f.Add("0 0 0\n")
	f.Add("1 2 5\n3 4 2\n") // unsorted times
	f.Add("-1 2 0\n")
	f.Add("999999999999999999999 1 0\n")
	f.Add("0 1 0 5\n1 2 1 9\n") // weighted format
	f.Add("0 1 0 5\n1 2 1\n")   // mixed columns (rejected)
	f.Add("0 1 0 -3\n")         // non-positive weight (rejected)
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := Load(strings.NewReader(input), "fuzz")
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := ds.Save(&buf); err != nil {
			t.Fatalf("accepted dataset failed to save: %v", err)
		}
		again, err := Load(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Ev.NumEdges() != ds.Ev.NumEdges() || again.Ev.NumNodes() != ds.Ev.NumNodes() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				ds.Ev.NumNodes(), ds.Ev.NumEdges(), again.Ev.NumNodes(), again.Ev.NumEdges())
		}
		a, b := ds.Ev.Stream(), again.Ev.Stream()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip changed stream at %d", i)
			}
		}
		if ds.Weighted() != again.Weighted() {
			t.Fatal("round trip changed weightedness")
		}
		for i := range ds.Weights {
			if ds.Weights[i] != again.Weights[i] {
				t.Fatalf("round trip changed weight at %d", i)
			}
		}
	})
}
