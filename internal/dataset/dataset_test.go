package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/topk"
)

func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate("Facebook", datagen.Config{Seed: 9, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateAll(t *testing.T) {
	all, err := GenerateAll(datagen.Config{Seed: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("got %d datasets", len(all))
	}
	names := map[string]bool{}
	for _, ds := range all {
		names[ds.Name] = true
	}
	for _, want := range datagen.Names {
		if !names[want] {
			t.Fatalf("missing dataset %s", want)
		}
	}
}

func TestSnapshotPairs(t *testing.T) {
	ds := tinyDataset(t)
	test := ds.TestPair()
	train := ds.TrainPair()
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if train.G2.NumEdges() >= test.G1.NumEdges() {
		t.Fatalf("train G2 (%d edges) should precede test G1 (%d edges)",
			train.G2.NumEdges(), test.G1.NumEdges())
	}
	if test.G2.NumEdges() != ds.Ev.NumEdges() {
		t.Fatal("test G2 should be the full graph")
	}
}

func TestCharacteristics(t *testing.T) {
	ds := tinyDataset(t)
	pair := ds.TestPair()
	gt, err := topk.Compute(pair, topk.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := ds.Characteristics(pair, gt)
	if c.Name != ds.Name {
		t.Fatal("name not propagated")
	}
	if c.Nodes1 <= 0 || c.Nodes2 < c.Nodes1 {
		t.Fatalf("node counts: %d, %d", c.Nodes1, c.Nodes2)
	}
	if c.Edges1 != pair.G1.NumEdges() || c.Edges2 != pair.G2.NumEdges() {
		t.Fatal("edge counts wrong")
	}
	// The diameter may shrink (new shortcuts) or grow (new peripheral
	// nodes), so only sanity-check the range.
	if c.Diameter1 < 1 || c.Diameter2 < 1 {
		t.Fatalf("degenerate diameters: %d, %d", c.Diameter1, c.Diameter2)
	}
	if c.NotConnected < 0 || c.NotConnected >= c.Nodes1 {
		t.Fatalf("NotConnected = %d", c.NotConnected)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := tinyDataset(t)
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != ds.Name {
		t.Fatalf("name = %q, want %q", loaded.Name, ds.Name)
	}
	if loaded.Ev.NumEdges() != ds.Ev.NumEdges() || loaded.Ev.NumNodes() != ds.Ev.NumNodes() {
		t.Fatal("round trip changed sizes")
	}
	a, b := ds.Ev.Stream(), loaded.Ev.Stream()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream diverges at %d", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := tinyDataset(t)
	path := t.TempDir() + "/fb.txt"
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Ev.NumEdges() != ds.Ev.NumEdges() {
		t.Fatal("file round trip changed edge count")
	}
	if _, err := LoadFile(t.TempDir() + "/missing.txt"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not numbers\n"), "x"); err == nil {
		t.Fatal("garbage line should fail")
	}
	if _, err := Load(strings.NewReader(""), "x"); err == nil {
		t.Fatal("empty stream should fail")
	}
	// Comments and blanks are fine.
	in := "# a comment\n\n0 1 0\n1 2 1\n"
	ds, err := Load(strings.NewReader(in), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "fallback" || ds.Ev.NumEdges() != 2 {
		t.Fatalf("ds = %q, %d edges", ds.Name, ds.Ev.NumEdges())
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", datagen.Config{}); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}
