package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/topk"
)

func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate("Facebook", datagen.Config{Seed: 9, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateAll(t *testing.T) {
	all, err := GenerateAll(datagen.Config{Seed: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("got %d datasets", len(all))
	}
	names := map[string]bool{}
	for _, ds := range all {
		names[ds.Name] = true
	}
	for _, want := range datagen.Names {
		if !names[want] {
			t.Fatalf("missing dataset %s", want)
		}
	}
}

func TestSnapshotPairs(t *testing.T) {
	ds := tinyDataset(t)
	test := ds.TestPair()
	train := ds.TrainPair()
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if train.G2.NumEdges() >= test.G1.NumEdges() {
		t.Fatalf("train G2 (%d edges) should precede test G1 (%d edges)",
			train.G2.NumEdges(), test.G1.NumEdges())
	}
	if test.G2.NumEdges() != ds.Ev.NumEdges() {
		t.Fatal("test G2 should be the full graph")
	}
}

func TestCharacteristics(t *testing.T) {
	ds := tinyDataset(t)
	pair := ds.TestPair()
	gt, err := topk.Compute(pair, topk.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := ds.Characteristics(pair, gt)
	if c.Name != ds.Name {
		t.Fatal("name not propagated")
	}
	if c.Nodes1 <= 0 || c.Nodes2 < c.Nodes1 {
		t.Fatalf("node counts: %d, %d", c.Nodes1, c.Nodes2)
	}
	if c.Edges1 != pair.G1.NumEdges() || c.Edges2 != pair.G2.NumEdges() {
		t.Fatal("edge counts wrong")
	}
	// The diameter may shrink (new shortcuts) or grow (new peripheral
	// nodes), so only sanity-check the range.
	if c.Diameter1 < 1 || c.Diameter2 < 1 {
		t.Fatalf("degenerate diameters: %d, %d", c.Diameter1, c.Diameter2)
	}
	if c.NotConnected < 0 || c.NotConnected >= c.Nodes1 {
		t.Fatalf("NotConnected = %d", c.NotConnected)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := tinyDataset(t)
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != ds.Name {
		t.Fatalf("name = %q, want %q", loaded.Name, ds.Name)
	}
	if loaded.Ev.NumEdges() != ds.Ev.NumEdges() || loaded.Ev.NumNodes() != ds.Ev.NumNodes() {
		t.Fatal("round trip changed sizes")
	}
	a, b := ds.Ev.Stream(), loaded.Ev.Stream()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream diverges at %d", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := tinyDataset(t)
	path := t.TempDir() + "/fb.txt"
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Ev.NumEdges() != ds.Ev.NumEdges() {
		t.Fatal("file round trip changed edge count")
	}
	if _, err := LoadFile(t.TempDir() + "/missing.txt"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not numbers\n"), "x"); err == nil {
		t.Fatal("garbage line should fail")
	}
	if _, err := Load(strings.NewReader(""), "x"); err == nil {
		t.Fatal("empty stream should fail")
	}
	// Comments and blanks are fine.
	in := "# a comment\n\n0 1 0\n1 2 1\n"
	ds, err := Load(strings.NewReader(in), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "fallback" || ds.Ev.NumEdges() != 2 {
		t.Fatalf("ds = %q, %d edges", ds.Name, ds.Ev.NumEdges())
	}
}

func TestWeightedRoundTrip(t *testing.T) {
	ds := tinyDataset(t)
	if ds.Weighted() {
		t.Fatal("generated dataset should start unweighted")
	}
	if _, err := ds.WeightedPair(TestFrac1, TestFrac2); err == nil {
		t.Fatal("WeightedPair on an unweighted dataset should fail")
	}
	if err := ds.AssignUniformWeights(3, 0); err == nil {
		t.Fatal("max weight 0 should fail")
	}
	if err := ds.AssignUniformWeights(3, 10); err != nil {
		t.Fatal(err)
	}
	if !ds.Weighted() || len(ds.Weights) != ds.Ev.NumEdges() {
		t.Fatalf("weights not assigned: %d for %d edges", len(ds.Weights), ds.Ev.NumEdges())
	}
	for i, w := range ds.Weights {
		if w < 1 || w > 10 {
			t.Fatalf("weight[%d] = %d outside [1, 10]", i, w)
		}
	}

	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Weighted() {
		t.Fatal("weights lost in round trip")
	}
	for i := range ds.Weights {
		if loaded.Weights[i] != ds.Weights[i] {
			t.Fatalf("weight diverges at %d: %d vs %d", i, loaded.Weights[i], ds.Weights[i])
		}
	}

	sp, err := loaded.WeightedPair(TestFrac1, TestFrac2)
	if err != nil {
		t.Fatal(err)
	}
	// The snapshots must mirror the unweighted fractions exactly: same node
	// universe, same prefix edge counts, G2 dominating G1 (checked by
	// WeightedPair via Validate).
	up := loaded.TestPair()
	if sp.G1.NumNodes() != up.G1.NumNodes() || sp.G2.NumNodes() != up.G2.NumNodes() {
		t.Fatal("weighted snapshots have a different node universe")
	}
	if sp.G1.NumEdges() != up.G1.NumEdges() || sp.G2.NumEdges() != up.G2.NumEdges() {
		t.Fatalf("weighted prefixes (%d, %d edges) differ from unweighted (%d, %d)",
			sp.G1.NumEdges(), sp.G2.NumEdges(), up.G1.NumEdges(), up.G2.NumEdges())
	}

	if _, err := loaded.WeightedPair(0.9, 0.4); err == nil {
		t.Fatal("inverted fractions should fail")
	}
}

func TestLoadMixedColumns(t *testing.T) {
	if _, err := Load(strings.NewReader("0 1 0\n1 2 1 7\n"), "x"); err == nil {
		t.Fatal("weighted line after unweighted lines should fail")
	}
	if _, err := Load(strings.NewReader("0 1 0 7\n1 2 1\n"), "x"); err == nil {
		t.Fatal("unweighted line after weighted lines should fail")
	}
	if _, err := Load(strings.NewReader("0 1 0 0\n"), "x"); err == nil {
		t.Fatal("non-positive weight should fail")
	}
	if _, err := Load(strings.NewReader("0 1 0 1 9\n"), "x"); err == nil {
		t.Fatal("five columns should fail")
	}
	ds, err := Load(strings.NewReader("# dataset W\n0 1 0 3\n1 2 1 5\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "W" || !ds.Weighted() || ds.Weights[0] != 3 || ds.Weights[1] != 5 {
		t.Fatalf("parsed %q weights %v", ds.Name, ds.Weights)
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", datagen.Config{}); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}
