package ml

import (
	"errors"
	"fmt"
	"math"
)

// LinearRegression is a ridge-regularized least-squares model. The paper's
// related work (its ref [5]) predicts distances with "linear functions that
// combine vertex-based attributes with landmark-based attributes"; the
// regression-based selector uses this model the same way, predicting each
// node's converging-pair participation.
type LinearRegression struct {
	Weights []float64
	Bias    float64
}

// ErrSingular reports a normal-equations system without a unique solution.
var ErrSingular = errors.New("ml: singular system")

// SolveLinear solves the dense system A x = b by Gaussian elimination with
// partial pivoting. A is modified in place; b is not. Returns ErrSingular
// for (numerically) rank-deficient systems.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("ml: bad system shape %dx? vs %d", n, len(b))
	}
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("ml: row %d has %d columns, want %d", i, len(row), n)
		}
	}
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		x[col], x[pivot] = x[pivot], x[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= a[col][c] * x[c]
		}
		x[col] = s / a[col][col]
	}
	return x, nil
}

// FitLinear trains ridge regression via the normal equations
// (XᵀX + λI) w = Xᵀ y, with an unregularized bias column. lambda <= 0 means
// a light default of 1e-6 (enough to make the system well posed).
func FitLinear(x [][]float64, y []float64, lambda float64) (*LinearRegression, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d rows, %d targets", ErrNoData, len(x), len(y))
	}
	d := len(x[0])
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), d)
		}
	}
	if lambda <= 0 {
		lambda = 1e-6
	}
	// Augmented design: features + bias column.
	dim := d + 1
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
	}
	aty := make([]float64, dim)
	for r, row := range x {
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				ata[i][j] += row[i] * row[j]
			}
			ata[i][d] += row[i] // bias column
			aty[i] += row[i] * y[r]
		}
		ata[d][d]++
		aty[d] += y[r]
	}
	for i := 0; i < d; i++ {
		ata[i][i] += lambda
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	for j := 0; j < d; j++ {
		ata[d][j] = ata[j][d]
	}
	w, err := SolveLinear(ata, aty)
	if err != nil {
		return nil, err
	}
	return &LinearRegression{Weights: w[:d], Bias: w[d]}, nil
}

// Predict returns the model output for one feature row.
func (m *LinearRegression) Predict(row []float64) float64 {
	z := m.Bias
	for j, v := range row {
		z += m.Weights[j] * v
	}
	return z
}

// PredictAll returns model outputs for every row.
func (m *LinearRegression) PredictAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// R2 computes the coefficient of determination on a labeled set.
func (m *LinearRegression) R2(x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i, row := range x {
		diff := y[i] - m.Predict(row)
		ssRes += diff * diff
		tot := y[i] - mean
		ssTot += tot * tot
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
