// Package ml provides the machine-learning substrate of the
// classification-based selectors: an L2-regularized logistic regression
// trained by batch gradient descent with backtracking line search, plus
// min-max feature scaling to [-1, 1]. The paper uses LIBLINEAR's logistic
// regression; this package is a from-scratch stdlib-only replacement of the
// same model family, used the same way — the predicted probability of the
// positive class ranks candidate endpoints.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// LogisticRegression is a trained binary classifier. Weights has one entry
// per feature; Bias is the intercept.
type LogisticRegression struct {
	Weights []float64
	Bias    float64
}

// TrainOptions configures Fit.
type TrainOptions struct {
	// Lambda is the L2 regularization strength (on weights, not bias).
	// Zero means a light default of 1e-4.
	Lambda float64
	// MaxIter bounds gradient-descent iterations; 0 means 500.
	MaxIter int
	// Tol stops training when the gradient norm falls below it; 0 means 1e-6.
	Tol float64
	// ClassWeight scales the loss of positive examples; 0 means balanced
	// weighting n_neg/n_pos (vertex covers are a tiny positive class, so
	// balancing matters).
	ClassWeight float64
}

var (
	// ErrNoData reports an empty training set.
	ErrNoData = errors.New("ml: empty training set")
	// ErrOneClass reports a training set with a single label value.
	ErrOneClass = errors.New("ml: training set has only one class")
)

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit trains an L2-regularized logistic regression on X (rows = examples)
// and binary labels y. All rows must share X[0]'s width.
func Fit(x [][]float64, y []bool, opts TrainOptions) (*LogisticRegression, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d rows, %d labels", ErrNoData, len(x), len(y))
	}
	d := len(x[0])
	pos := 0
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), d)
		}
		if y[i] {
			pos++
		}
	}
	if pos == 0 || pos == len(y) {
		return nil, fmt.Errorf("%w: %d positives of %d", ErrOneClass, pos, len(y))
	}
	if opts.Lambda <= 0 {
		opts.Lambda = 1e-4
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 500
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	posWeight := opts.ClassWeight
	if posWeight <= 0 {
		posWeight = float64(len(y)-pos) / float64(pos)
	}

	w := make([]float64, d)
	bias := 0.0
	grad := make([]float64, d)
	n := float64(len(x))

	loss := func(w []float64, bias float64) float64 {
		total := 0.0
		for i, row := range x {
			z := bias
			for j, v := range row {
				z += w[j] * v
			}
			// Numerically stable log(1+exp(±z)).
			var l float64
			if y[i] {
				l = posWeight * softplus(-z)
			} else {
				l = softplus(z)
			}
			total += l
		}
		total /= n
		for _, wj := range w {
			total += 0.5 * opts.Lambda * wj * wj
		}
		return total
	}

	step := 1.0
	cur := loss(w, bias)
	for iter := 0; iter < opts.MaxIter; iter++ {
		for j := range grad {
			grad[j] = opts.Lambda * w[j]
		}
		gBias := 0.0
		for i, row := range x {
			z := bias
			for j, v := range row {
				z += w[j] * v
			}
			p := sigmoid(z)
			var err float64
			if y[i] {
				err = posWeight * (p - 1)
			} else {
				err = p
			}
			err /= n
			for j, v := range row {
				grad[j] += err * v
			}
			gBias += err
		}
		gNorm := gBias * gBias
		for _, g := range grad {
			gNorm += g * g
		}
		if math.Sqrt(gNorm) < opts.Tol {
			break
		}
		// Backtracking line search on the full-batch loss.
		improved := false
		for try := 0; try < 30; try++ {
			cand := make([]float64, d)
			for j := range w {
				cand[j] = w[j] - step*grad[j]
			}
			candBias := bias - step*gBias
			if l := loss(cand, candBias); l < cur {
				w, bias, cur = cand, candBias, l
				step *= 1.2 // be a bit more aggressive next time
				improved = true
				break
			}
			step *= 0.5
		}
		if !improved {
			break
		}
	}
	return &LogisticRegression{Weights: w, Bias: bias}, nil
}

func softplus(z float64) float64 {
	if z > 30 {
		return z
	}
	return math.Log1p(math.Exp(z))
}

// Predict returns the probability of the positive class for one feature row.
func (m *LogisticRegression) Predict(row []float64) float64 {
	z := m.Bias
	for j, v := range row {
		z += m.Weights[j] * v
	}
	return sigmoid(z)
}

// PredictAll returns positive-class probabilities for every row.
func (m *LogisticRegression) PredictAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// Accuracy returns the 0.5-threshold accuracy on a labeled set; a test and
// diagnostics helper.
func (m *LogisticRegression) Accuracy(x [][]float64, y []bool) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i, row := range x {
		if (m.Predict(row) >= 0.5) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// AUC computes the area under the ROC curve of scores against labels — the
// probability a random positive outranks a random negative. Used in tests to
// assert the classifier ranks cover nodes above non-cover nodes.
func AUC(scores []float64, y []bool) float64 {
	var pos, neg, wins, ties float64
	for i, si := range scores {
		if !y[i] {
			continue
		}
		pos++
		for j, sj := range scores {
			if y[j] {
				continue
			}
			switch {
			case si > sj:
				wins++
			case si == sj:
				ties++
			}
		}
	}
	for _, label := range y {
		if !label {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (wins + 0.5*ties) / (pos * neg)
}
