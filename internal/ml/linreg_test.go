package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearBasic(t *testing.T) {
	// 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Zero pivot in the naive order; requires row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{3, 7}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Fatal("empty system should fail")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("non-square system should fail")
	}
}

// Property: SolveLinear recovers x from (A, Ax) for random well-conditioned
// systems.
func TestSolveLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := make([][]float64, n)
		want := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonal dominance for conditioning
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			for j := range want {
				b[i] += a[i][j] * want[j]
			}
		}
		// SolveLinear mutates a; keep the original for residual checks.
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFitLinearExact(t *testing.T) {
	// y = 3a - 2b + 5.
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x = append(x, []float64{a, b})
		y = append(y, 3*a-2*b+5)
	}
	m, err := FitLinear(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-3) > 1e-3 || math.Abs(m.Weights[1]+2) > 1e-3 || math.Abs(m.Bias-5) > 1e-3 {
		t.Fatalf("model = %+v", m)
	}
	if r2 := m.R2(x, y); r2 < 0.9999 {
		t.Fatalf("R2 = %v", r2)
	}
	preds := m.PredictAll(x)
	if len(preds) != 50 {
		t.Fatal("PredictAll length")
	}
}

func TestFitLinearValidation(t *testing.T) {
	if _, err := FitLinear(nil, nil, 0); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := FitLinear([][]float64{{1}, {2, 3}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("ragged rows should fail")
	}
}

func TestFitLinearRidgeShrinks(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{2, 4, 6, 8}
	weak, err := FitLinear(x, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := FitLinear(x, y, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(strong.Weights[0]) >= math.Abs(weak.Weights[0]) {
		t.Fatalf("ridge did not shrink: %v vs %v", strong.Weights[0], weak.Weights[0])
	}
}

func TestR2Degenerate(t *testing.T) {
	m := &LinearRegression{Weights: []float64{0}, Bias: 1}
	if r2 := m.R2(nil, nil); r2 != 0 {
		t.Fatalf("empty R2 = %v", r2)
	}
	// Constant targets: ssTot = 0.
	if r2 := m.R2([][]float64{{1}, {2}}, []float64{1, 1}); r2 != 0 {
		t.Fatalf("constant R2 = %v", r2)
	}
}
