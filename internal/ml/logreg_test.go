package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, TrainOptions{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: err = %v", err)
	}
	x := [][]float64{{1}, {2}}
	if _, err := Fit(x, []bool{true, true}, TrainOptions{}); !errors.Is(err, ErrOneClass) {
		t.Errorf("one class: err = %v", err)
	}
	bad := [][]float64{{1, 2}, {3}}
	if _, err := Fit(bad, []bool{true, false}, TrainOptions{}); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := Fit(x, []bool{true}, TrainOptions{}); err == nil {
		t.Error("label/row count mismatch should fail")
	}
}

func TestFitLinearlySeparable1D(t *testing.T) {
	var x [][]float64
	var y []bool
	for i := -10; i <= 10; i++ {
		if i == 0 {
			continue
		}
		x = append(x, []float64{float64(i)})
		y = append(y, i > 0)
	}
	m, err := Fit(x, y, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc != 1 {
		t.Fatalf("accuracy = %v, want 1 on separable data", acc)
	}
	if m.Predict([]float64{5}) < 0.9 || m.Predict([]float64{-5}) > 0.1 {
		t.Fatalf("probabilities not confident: p(5)=%v p(-5)=%v",
			m.Predict([]float64{5}), m.Predict([]float64{-5}))
	}
}

func TestFitNeedsBias(t *testing.T) {
	// Separable only with an intercept: positives are x > 3.
	var x [][]float64
	var y []bool
	for i := 0; i < 8; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, i > 3)
	}
	m, err := Fit(x, y, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc != 1 {
		t.Fatalf("accuracy = %v, want 1", acc)
	}
	if m.Bias >= 0 {
		t.Fatalf("bias = %v, want negative (threshold above zero)", m.Bias)
	}
}

func TestFitImbalancedClassWeighting(t *testing.T) {
	// 5 positives vs 95 negatives along one noisy dimension: balanced class
	// weighting should still rank positives on top.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []bool
	for i := 0; i < 95; i++ {
		x = append(x, []float64{rng.NormFloat64() - 1})
		y = append(y, false)
	}
	for i := 0; i < 5; i++ {
		x = append(x, []float64{rng.NormFloat64() + 2})
		y = append(y, true)
	}
	m, err := Fit(x, y, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(m.PredictAll(x), y); auc < 0.95 {
		t.Fatalf("AUC = %v, want >= 0.95", auc)
	}
}

func TestRegularizationShrinksWeights(t *testing.T) {
	var x [][]float64
	var y []bool
	for i := -6; i <= 6; i++ {
		if i == 0 {
			continue
		}
		x = append(x, []float64{float64(i)})
		y = append(y, i > 0)
	}
	weak, err := Fit(x, y, TrainOptions{Lambda: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Fit(x, y, TrainOptions{Lambda: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(strong.Weights[0]) >= math.Abs(weak.Weights[0]) {
		t.Fatalf("lambda=1 weight %v not smaller than lambda=1e-6 weight %v",
			strong.Weights[0], weak.Weights[0])
	}
}

// Property: on randomly generated linearly separable 2D data, the trained
// model achieves AUC 1 (perfect ranking).
func TestSeparableAUCProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random separating direction with margin.
		wx, wy := rng.NormFloat64(), rng.NormFloat64()
		norm := math.Hypot(wx, wy)
		if norm < 1e-3 {
			return true
		}
		wx, wy = wx/norm, wy/norm
		var x [][]float64
		var y []bool
		for i := 0; i < 60; i++ {
			px, py := rng.NormFloat64()*3, rng.NormFloat64()*3
			margin := wx*px + wy*py
			if math.Abs(margin) < 0.3 {
				continue // enforce a margin
			}
			x = append(x, []float64{px, py})
			y = append(y, margin > 0)
		}
		pos := 0
		for _, label := range y {
			if label {
				pos++
			}
		}
		if pos == 0 || pos == len(y) {
			return true
		}
		m, err := Fit(x, y, TrainOptions{MaxIter: 800})
		if err != nil {
			return false
		}
		return AUC(m.PredictAll(x), y) > 0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAUC(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	y := []bool{true, true, false, false}
	if auc := AUC(scores, y); auc != 1 {
		t.Fatalf("perfect AUC = %v", auc)
	}
	yWorst := []bool{false, false, true, true}
	if auc := AUC(scores, yWorst); auc != 0 {
		t.Fatalf("worst AUC = %v", auc)
	}
	if auc := AUC([]float64{0.5, 0.5}, []bool{true, false}); auc != 0.5 {
		t.Fatalf("tied AUC = %v", auc)
	}
	if auc := AUC(scores, []bool{true, true, true, true}); auc != 0.5 {
		t.Fatalf("degenerate AUC = %v, want 0.5", auc)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := &LogisticRegression{Weights: []float64{1}}
	if acc := m.Accuracy(nil, nil); acc != 0 {
		t.Fatalf("empty accuracy = %v", acc)
	}
}

func TestScaler(t *testing.T) {
	x := [][]float64{{0, 10, 5}, {10, 20, 5}, {5, 15, 5}}
	s, err := FitScaler(x)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := s.ApplyAll(x)
	if err != nil {
		t.Fatal(err)
	}
	if scaled[0][0] != -1 || scaled[1][0] != 1 || scaled[2][0] != 0 {
		t.Fatalf("column 0 scaled = %v %v %v", scaled[0][0], scaled[1][0], scaled[2][0])
	}
	// Constant column maps to 0.
	if scaled[0][2] != 0 || scaled[1][2] != 0 {
		t.Fatalf("constant column scaled = %v %v", scaled[0][2], scaled[1][2])
	}
	// Out-of-range test values clamp.
	row, err := s.Apply([]float64{100, -100, 5})
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 1 || row[1] != -1 {
		t.Fatalf("clamped = %v", row)
	}
	if _, err := s.Apply([]float64{1}); !errors.Is(err, ErrScalerWidth) {
		t.Fatalf("width mismatch err = %v", err)
	}
	if _, err := FitScaler(nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty scaler err = %v", err)
	}
	if _, err := FitScaler([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrScalerWidth) {
		t.Fatalf("ragged scaler err = %v", err)
	}
}
