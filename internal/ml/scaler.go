package ml

import (
	"errors"
	"fmt"
)

// Scaler min-max scales features into [-1, 1], the normalization the paper
// applies to every classifier feature. Fit on training data, apply to both
// training and test data; constant features map to 0.
type Scaler struct {
	Min, Max []float64
}

// ErrScalerWidth reports a row whose width disagrees with the fitted scaler.
var ErrScalerWidth = errors.New("ml: feature width mismatch")

// FitScaler learns per-column minima and maxima.
func FitScaler(x [][]float64) (*Scaler, error) {
	if len(x) == 0 {
		return nil, ErrNoData
	}
	d := len(x[0])
	s := &Scaler{Min: make([]float64, d), Max: make([]float64, d)}
	copy(s.Min, x[0])
	copy(s.Max, x[0])
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrScalerWidth, i, len(row), d)
		}
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return s, nil
}

// Apply scales one row into [-1, 1] in place and returns it. Values outside
// the fitted range are clamped, so test-time outliers cannot explode.
func (s *Scaler) Apply(row []float64) ([]float64, error) {
	if len(row) != len(s.Min) {
		return nil, fmt.Errorf("%w: row has %d features, scaler has %d", ErrScalerWidth, len(row), len(s.Min))
	}
	for j, v := range row {
		lo, hi := s.Min[j], s.Max[j]
		if hi == lo {
			row[j] = 0
			continue
		}
		scaled := 2*(v-lo)/(hi-lo) - 1
		if scaled < -1 {
			scaled = -1
		} else if scaled > 1 {
			scaled = 1
		}
		row[j] = scaled
	}
	return row, nil
}

// ApplyAll scales every row in place and returns x.
func (s *Scaler) ApplyAll(x [][]float64) ([][]float64, error) {
	for _, row := range x {
		if _, err := s.Apply(row); err != nil {
			return nil, err
		}
	}
	return x, nil
}
