package export

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/topk"
)

func TestWriteDOT(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, DOTOptions{
		Name:       "test",
		Pairs:      []topk.Pair{{U: 0, V: 3, Delta: 2}},
		Candidates: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graph "test" {`,
		"0 [style=filled fillcolor=lightblue];",
		"0 -- 1;",
		"2 -- 3;",
		`0 -- 3 [style=dashed color=red label="Δ=2"];`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Isolated node 4 is dropped by default.
	if strings.Contains(out, "  4;") {
		t.Fatal("isolated node should be dropped")
	}
	buf.Reset()
	if err := WriteDOT(&buf, g, DOTOptions{IncludeIsolated: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "  4;") {
		t.Fatal("isolated node should be kept with IncludeIsolated")
	}
}

func TestWriteDOTTruncates(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := 0; i < 9; i++ {
		_ = b.AddEdge(i, i+1)
	}
	g := b.Build()
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, DOTOptions{
		MaxNodes: 4,
		Pairs:    []topk.Pair{{U: 0, V: 9, Delta: 1}}, // beyond the cutoff
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "truncated to 4 of 10") {
		t.Fatal("missing truncation note")
	}
	if strings.Contains(out, "5 -- 6") || strings.Contains(out, "0 -- 9") {
		t.Fatal("edges beyond the cutoff leaked")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pairs := []topk.Pair{{U: 1, V: 9, D1: 5, D2: 1, Delta: 4}}
	if err := WriteJSON(&buf, "MMSD", 50, 98, 100, []int{9, 1}, pairs); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Selector != "MMSD" || rep.M != 50 || rep.SSSPSpent != 98 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Candidates) != 2 || rep.Candidates[0] != 1 {
		t.Fatalf("candidates = %v (should be sorted)", rep.Candidates)
	}
	if rep.Pairs[0].Delta != 4 {
		t.Fatalf("pairs = %v", rep.Pairs)
	}
	if _, err := ReadJSON(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage should fail")
	}
}
