// Package export renders snapshots, converging pairs, and candidate sets in
// interchange formats: GraphViz DOT for visual inspection and a simple
// JSON report for downstream tooling. Exported graphs highlight the
// converging pairs (dashed red) and candidate endpoints (filled), which
// makes small case studies — like the examples' ring roads — directly
// plottable with `dot -Tsvg`.
package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/graph"
	"repro/internal/topk"
)

// DOTOptions controls the GraphViz rendering.
type DOTOptions struct {
	// Name is the graph name in the DOT header ("G" if empty).
	Name string
	// Pairs are drawn as dashed highlighted edges (they need not exist in
	// the graph — converging pairs usually don't).
	Pairs []topk.Pair
	// Candidates are rendered as filled nodes.
	Candidates []int
	// MaxNodes truncates the output for huge graphs (0 = 2000); only nodes
	// below the cutoff ID are emitted, with a trailing comment noting the
	// truncation.
	MaxNodes int
	// IncludeIsolated keeps degree-0 nodes (dropped by default).
	IncludeIsolated bool
}

// WriteDOT renders g as an undirected GraphViz graph.
func WriteDOT(w io.Writer, g *graph.Graph, opts DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opts.Name
	if name == "" {
		name = "G"
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 2000
	}
	fmt.Fprintf(bw, "graph %q {\n", name)
	fmt.Fprintf(bw, "  node [shape=circle fontsize=10];\n")

	cand := make(map[int]bool, len(opts.Candidates))
	for _, u := range opts.Candidates {
		cand[u] = true
	}
	limit := g.NumNodes()
	truncated := false
	if limit > maxNodes {
		limit = maxNodes
		truncated = true
	}
	for u := 0; u < limit; u++ {
		if g.Degree(u) == 0 && !opts.IncludeIsolated && !cand[u] {
			continue
		}
		if cand[u] {
			fmt.Fprintf(bw, "  %d [style=filled fillcolor=lightblue];\n", u)
		} else {
			fmt.Fprintf(bw, "  %d;\n", u)
		}
	}
	for u := 0; u < limit; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u && int(v) < limit {
				fmt.Fprintf(bw, "  %d -- %d;\n", u, v)
			}
		}
	}
	for _, p := range opts.Pairs {
		if int(p.U) >= limit || int(p.V) >= limit {
			continue
		}
		fmt.Fprintf(bw, "  %d -- %d [style=dashed color=red label=\"Δ=%d\"];\n", p.U, p.V, p.Delta)
	}
	if truncated {
		fmt.Fprintf(bw, "  // truncated to %d of %d nodes\n", maxNodes, g.NumNodes())
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

// Report is a machine-readable summary of one budgeted run.
type Report struct {
	Selector   string       `json:"selector"`
	M          int          `json:"m"`
	SSSPSpent  int          `json:"sssp_spent"`
	SSSPLimit  int          `json:"sssp_limit"`
	Candidates []int        `json:"candidates"`
	Pairs      []PairRecord `json:"pairs"`
}

// PairRecord is one converging pair in the JSON report.
type PairRecord struct {
	U     int32 `json:"u"`
	V     int32 `json:"v"`
	D1    int32 `json:"d1"`
	D2    int32 `json:"d2"`
	Delta int32 `json:"delta"`
}

// NewReport assembles the canonical report of one budgeted run. Candidates
// are copied and sorted, so two runs that found the same set produce equal
// reports regardless of selector-internal ordering. WriteJSON and the serve
// layer both build their output here — the byte-level comparability of a
// served query against a one-shot run rests on sharing this constructor.
func NewReport(selector string, m int, spent, limit int, candidates []int, pairs []topk.Pair) Report {
	sorted := append([]int(nil), candidates...)
	sort.Ints(sorted)
	rep := Report{
		Selector:   selector,
		M:          m,
		SSSPSpent:  spent,
		SSSPLimit:  limit,
		Candidates: sorted,
		Pairs:      make([]PairRecord, len(pairs)),
	}
	for i, p := range pairs {
		rep.Pairs[i] = PairRecord{U: p.U, V: p.V, D1: p.D1, D2: p.D2, Delta: p.Delta}
	}
	return rep
}

// WriteJSON emits a run report as indented JSON.
func WriteJSON(w io.Writer, selector string, m int, spent, limit int, candidates []int, pairs []topk.Pair) error {
	rep := NewReport(selector, m, spent, limit, candidates, pairs)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadJSON parses a report written by WriteJSON.
func ReadJSON(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("export: decode report: %w", err)
	}
	return &rep, nil
}
