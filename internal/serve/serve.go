// Package serve is the session-oriented service layer behind cmd/convserve:
// a long-running HTTP/JSON surface over the library's streaming substrate.
// Edges arrive on /ingest and are sealed into immutable epochs (/seal); top-k
// converging-pairs queries run over arbitrary (t1, t2) epoch windows through
// cached core.Sessions whose distance sources are wrapped in dist.Batchers,
// so SSSP sources from concurrent queries coalesce into shared 64-lane
// sweeps. Every query charges a per-query meter chained to its tenant's
// admission meter (budget.Registry), so operators get per-tenant limits and
// per-tenant charge/latency series while each query's budget report stays
// bit-identical to a one-shot convpairs run — the package invariant, pinned
// by TestQueryMatchesOneShot.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/export"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sssp"
)

// Per-tenant query latency: one serve.phase_ns series per algorithm phase per
// tenant, observed from each query's Result.Phases. The core.phase_ns series
// stay tenant-blind; these add the tenancy split the operator dashboards cut
// by.
var phaseNames = [...]string{"selection", "extraction", "sort-cut", "total"}

// Config tunes a Server. The zero value serves with library defaults:
// unlimited retention, auto-picked BFS kernel, the default 2ms batching
// window, and unlimited auto-created tenants.
type Config struct {
	// Universe fixes the minimum node-universe size of every epoch (see
	// graph.IngesterOptions.Universe). 0 grows with the ingested edges.
	Universe int
	// Retain bounds epoch retention (<= 0 for unlimited).
	Retain int
	// Engine pins the BFS kernel for query sessions (Auto picks per call).
	Engine sssp.Engine
	// Parallelism bounds intra-traversal parallelism (0 = process default).
	Parallelism int
	// Workers bounds across-source sweep parallelism (0 = GOMAXPROCS).
	Workers int
	// BatchWindow is the cross-request coalescing window (<= 0 keeps
	// dist.DefaultBatchWindow); Immediate disables the wait entirely.
	BatchWindow time.Duration
	Immediate   bool
	// TenantLimit is the SSSP allowance given to tenants created implicitly
	// by their first query (<= 0 means unlimited). Tenants declared via
	// POST /tenants carry their declared limit instead.
	TenantLimit int
	// MaxSessions bounds the cached window sessions (default 8). Evicted
	// sessions release their epoch pins.
	MaxSessions int
}

// Server holds the daemon's state: the edge ingester with its epoch store,
// the tenant registry, and the cache of per-window query sessions.
type Server struct {
	cfg Config
	ing *graph.Ingester
	reg *budget.Registry

	mu       sync.Mutex
	sessions map[winKey]*winSession
	order    []winKey // LRU, least recent first
	phaseNS  map[string]*[4]*obs.Histogram
}

// winKey identifies one (t1, t2) epoch window.
type winKey struct{ T1, T2 int }

// winSession is a cached query session over one epoch window. The window's
// epoch pins are held for the cache lifetime of the entry (released on
// eviction), so retention can never prune an epoch a cached session reads.
type winSession struct {
	win  *graph.Window
	sess *core.Session
	// warm is the window's warm cache: memoized selections and kth-Δ prune
	// seeds, both scoped to this (t1, t2) pair. Evicting the session drops
	// the cache with it, so warm state can never leak across windows.
	warm *candidates.Warm
}

// New creates a Server.
func New(cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 8
	}
	return &Server{
		cfg:      cfg,
		ing:      graph.NewIngester(graph.IngesterOptions{Universe: cfg.Universe, Retain: cfg.Retain}),
		reg:      budget.NewRegistry(),
		sessions: make(map[winKey]*winSession),
		phaseNS:  make(map[string]*[4]*obs.Histogram),
	}
}

// Ingester exposes the edge ingester (tests seal epochs directly).
func (s *Server) Ingester() *graph.Ingester { return s.ing }

// Registry exposes the tenant registry.
func (s *Server) Registry() *budget.Registry { return s.reg }

// Close releases every cached session's epoch pins.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ws := range s.sessions {
		ws.win.Close()
	}
	s.sessions = make(map[winKey]*winSession)
	s.order = nil
}

// session returns the cached query session for the window, building (and
// caching) it on first use. Building wraps each snapshot's BFS engine in a
// dist.Batcher, so the session's sweeps coalesce across concurrent queries.
func (s *Server) session(t1, t2 int) (*winSession, error) {
	key := winKey{t1, t2}
	s.mu.Lock()
	if ws, ok := s.sessions[key]; ok {
		s.touchLocked(key)
		s.mu.Unlock()
		return ws, nil
	}
	s.mu.Unlock()

	// Build outside the lock (window validation is cheap, but no reason to
	// serialize queries on it); a racing builder of the same key loses below.
	win, err := s.ing.Store().Window(t1, t2)
	if err != nil {
		return nil, err
	}
	bopts := dist.BatcherOptions{Window: s.cfg.BatchWindow, Immediate: s.cfg.Immediate, Workers: s.cfg.Workers}
	src := dist.Pair{
		S1: dist.NewBatcher(dist.NewBFSPar(win.Pair.G1, s.cfg.Engine, s.cfg.Parallelism), bopts),
		S2: dist.NewBatcher(dist.NewBFSPar(win.Pair.G2, s.cfg.Engine, s.cfg.Parallelism), bopts),
	}
	sess, err := core.NewSessionSources(src)
	if err != nil {
		win.Close()
		return nil, err
	}
	ws := &winSession{win: win, sess: sess, warm: candidates.NewWarm()}

	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.sessions[key]; ok {
		win.Close() // lost the race; the cached one keeps its pins
		return cached, nil
	}
	s.sessions[key] = ws
	s.order = append(s.order, key)
	for len(s.order) > s.cfg.MaxSessions {
		old := s.order[0]
		s.order = s.order[1:]
		s.sessions[old].win.Close()
		delete(s.sessions, old)
	}
	return ws, nil
}

// touchLocked moves key to the most-recent end of the LRU order.
func (s *Server) touchLocked(key winKey) {
	for i, k := range s.order {
		if k == key {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), key)
			return
		}
	}
}

// tenantPhaseNS returns (building on first use) the tenant's serve.phase_ns
// histograms. The obs registry is last-wins, so a restarted server re-owning
// a tenant's series is safe.
func (s *Server) tenantPhaseNS(tenant string) *[4]*obs.Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.phaseNS[tenant]; ok {
		return h
	}
	var h [4]*obs.Histogram
	for i, phase := range phaseNames {
		h[i] = obs.NewHistogram("serve.phase_ns", obs.L("phase", phase), obs.L("tenant", tenant))
	}
	s.phaseNS[tenant] = &h
	return &h
}

// Handler returns the daemon's full HTTP surface: the query/ingest API plus
// the obs endpoints (/metrics, /debug/events, /debug/pprof).
func (s *Server) Handler() http.Handler {
	mux := obs.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/seal", s.handleSeal)
	mux.HandleFunc("/epochs", s.handleEpochs)
	mux.HandleFunc("/tenants", s.handleTenants)
	mux.HandleFunc("/query", s.handleQuery)
	return mux
}

// IngestResponse reports one /ingest call.
type IngestResponse struct {
	// Accepted is the number of edge lines parsed.
	Accepted int `json:"accepted"`
	// Added is how many were new (duplicates and self-loops are skipped).
	Added int `json:"added"`
	// Edges is the distinct-edge total ingested so far (across all calls).
	Edges int `json:"edges"`
}

// handleIngest consumes a plain-text "u v t" edge stream (the gendata /
// cmd/convpairs wire format; a missing t defaults to 0) and feeds it to the
// ingester. Duplicate edges and self-loops are skipped, not errors — the
// wire repeats itself.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("serve: POST an edge stream"))
		return
	}
	edges, err := parseEdgeStream(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	added, err := s.ing.IngestBatch(edges)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, IngestResponse{Accepted: len(edges), Added: added, Edges: s.ing.EdgeCount()})
}

// parseEdgeStream reads "u v [t]" lines ('#' comments and blanks skipped).
func parseEdgeStream(r io.Reader) ([]graph.TimedEdge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var edges []graph.TimedEdge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 && len(f) != 3 {
			return nil, fmt.Errorf("serve: line %d: %d fields, want \"u v [t]\"", lineNo, len(f))
		}
		u, err1 := strconv.Atoi(f[0])
		v, err2 := strconv.Atoi(f[1])
		var t int64
		var err3 error
		if len(f) == 3 {
			t, err3 = strconv.ParseInt(f[2], 10, 64)
		}
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("serve: line %d: malformed edge %q", lineNo, line)
		}
		edges = append(edges, graph.TimedEdge{U: u, V: v, Time: t})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return edges, nil
}

// EpochInfo describes one sealed epoch.
type EpochInfo struct {
	Seq   int   `json:"seq"`
	Edges int   `json:"edges"`
	Nodes int   `json:"nodes"`
	Time  int64 `json:"time,omitempty"`
}

func epochInfo(e *graph.Epoch) EpochInfo {
	return EpochInfo{Seq: e.Seq, Edges: e.EdgeCount, Nodes: e.Graph().NumNodes(), Time: e.Time}
}

// handleSeal freezes the edges ingested so far into a new epoch.
func (s *Server) handleSeal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("serve: POST to seal"))
		return
	}
	writeJSON(w, epochInfo(s.ing.Seal()))
}

// handleEpochs lists the retained epochs, oldest first.
func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	epochs := s.ing.Store().Epochs()
	out := make([]EpochInfo, len(epochs))
	for i, e := range epochs {
		out[i] = epochInfo(e)
	}
	writeJSON(w, out)
}

// TenantRequest declares a tenant with an SSSP allowance (<= 0 = unlimited).
type TenantRequest struct {
	Name  string `json:"name"`
	Limit int    `json:"limit"`
}

// TenantReport is one tenant's cumulative admission state.
type TenantReport struct {
	Limit        int `json:"limit"`
	CandidateGen int `json:"candidate_gen"`
	TopK         int `json:"topk"`
	Total        int `json:"total"`
}

func tenantReport(rep budget.Report) TenantReport {
	return TenantReport{Limit: rep.Limit, CandidateGen: rep.CandidateGen, TopK: rep.TopK, Total: rep.Total()}
}

// handleTenants declares a tenant (POST) or lists every tenant's cumulative
// spending (GET). Declaring an existing tenant is a no-op (first limit wins),
// matching budget.Registry semantics.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req TenantRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if req.Name == "" {
			httpError(w, http.StatusBadRequest, errors.New("serve: tenant name required"))
			return
		}
		t := s.reg.Tenant(req.Name, req.Limit)
		writeJSON(w, map[string]TenantReport{t.Name(): tenantReport(t.Report())})
	case http.MethodGet:
		reports := s.reg.Reports()
		out := make(map[string]TenantReport, len(reports))
		for name, rep := range reports {
			out[name] = tenantReport(rep)
		}
		writeJSON(w, out)
	default:
		httpError(w, http.StatusMethodNotAllowed, errors.New("serve: GET or POST"))
	}
}

// QueryRequest is one top-k converging-pairs query over an epoch window.
// T1 and T2 are epoch sequence numbers; both 0 means the latest window
// (T1 = latest-1, T2 = latest).
type QueryRequest struct {
	Tenant   string `json:"tenant"`
	Selector string `json:"selector"`
	M        int    `json:"m"`
	L        int    `json:"l,omitempty"`
	K        int    `json:"k,omitempty"`
	MinDelta int32  `json:"delta,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	T1       int    `json:"t1,omitempty"`
	T2       int    `json:"t2,omitempty"`
	Paired   string `json:"paired,omitempty"`
	Workers  int    `json:"workers,omitempty"`
}

// QueryResponse embeds the canonical run report — byte-identical to the JSON
// a one-shot `convpairs -json` run writes for the same snapshots — plus the
// window and tenancy context the service adds.
type QueryResponse struct {
	Tenant string        `json:"tenant"`
	T1     int           `json:"t1"`
	T2     int           `json:"t2"`
	Report export.Report `json:"report"`
	// TenantSpent is the tenant's cumulative SSSP total after this query.
	TenantSpent int `json:"tenant_spent"`
}

// handleQuery runs one budgeted query. The SSSPs are charged to a fresh
// per-query meter (the paper's 2m allowance) chained to the tenant's
// admission meter; an exhausted tenant gets 429 and spends nothing.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("serve: POST a query"))
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp, status, err := s.Query(r, &req)
	if err != nil {
		httpError(w, status, err)
		return
	}
	writeJSON(w, resp)
}

// Query executes a parsed query request (r carries the cancellation context;
// it may be nil for direct callers). It returns the response or an error with
// the HTTP status it maps to.
func (s *Server) Query(r *http.Request, req *QueryRequest) (*QueryResponse, int, error) {
	if req.Tenant == "" {
		return nil, http.StatusBadRequest, errors.New("serve: tenant required")
	}
	if req.Selector == "" {
		return nil, http.StatusBadRequest, errors.New("serve: selector required")
	}
	sel, err := candidates.ByName(req.Selector)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	mode, err := dist.ParsePairedMode(orDefault(req.Paired, "full"))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	t1, t2 := req.T1, req.T2
	if t1 == 0 && t2 == 0 {
		latest, ok := s.ing.Store().Latest()
		if !ok || latest.Seq < 2 {
			return nil, http.StatusConflict, errors.New("serve: need at least 2 sealed epochs (POST /seal)")
		}
		t1, t2 = latest.Seq-1, latest.Seq
	}
	ws, err := s.session(t1, t2)
	if err != nil {
		if errors.Is(err, graph.ErrNoEpoch) {
			return nil, http.StatusNotFound, err
		}
		return nil, http.StatusBadRequest, err
	}
	tenant := s.reg.Tenant(req.Tenant, s.cfg.TenantLimit)
	meter := tenant.QueryMeter(req.M)
	opts := core.Options{
		Selector:   sel,
		M:          req.M,
		L:          req.L,
		K:          req.K,
		MinDelta:   req.MinDelta,
		Seed:       req.Seed,
		Workers:    orInt(req.Workers, s.cfg.Workers),
		PairedMode: mode,
		Warm:       ws.warm,
		Meter:      meter,
	}
	ctx := context.Background()
	if r != nil {
		ctx = r.Context()
	}
	res, err := ws.sess.TopK(ctx, opts)
	if err != nil {
		switch {
		case errors.Is(err, budget.ErrExhausted):
			return nil, http.StatusTooManyRequests, err
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return nil, statusClientClosedRequest, err
		default:
			return nil, http.StatusBadRequest, err
		}
	}
	h := s.tenantPhaseNS(tenant.Name())
	h[0].Observe(res.Phases.Selection)
	h[1].Observe(res.Phases.Extraction)
	h[2].Observe(res.Phases.SortCut)
	h[3].Observe(res.Phases.Total)
	return &QueryResponse{
		Tenant:      tenant.Name(),
		T1:          t1,
		T2:          t2,
		Report:      export.NewReport(res.SelectorName, req.M, res.Budget.Total(), res.Budget.Limit, res.Candidates, res.Pairs),
		TenantSpent: tenant.Report().Total(),
	}, http.StatusOK, nil
}

// statusClientClosedRequest is nginx's conventional code for a request whose
// client went away; net/http has no name for it.
const statusClientClosedRequest = 499

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func orInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
