package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/export"
	"repro/internal/graph"
	"repro/internal/sssp"
)

// mustSelector resolves a registry selector or fails the test.
func mustSelector(t *testing.T, name string) candidates.Selector {
	t.Helper()
	sel, err := candidates.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

// genStream builds a random timestamped insertion stream over n nodes: a
// connecting backbone first (so snapshots are mostly one component), then
// random extra edges. Deterministic in seed.
func genStream(n, extra int, seed int64) []graph.TimedEdge {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[graph.Edge]bool)
	var stream []graph.TimedEdge
	add := func(u, v int) {
		if u == v {
			return
		}
		c := graph.Edge{U: u, V: v}.Canon()
		if seen[c] {
			return
		}
		seen[c] = true
		stream = append(stream, graph.TimedEdge{U: c.U, V: c.V, Time: int64(len(stream))})
	}
	for v := 1; v < n; v++ {
		add(rng.Intn(v), v)
	}
	for len(stream) < n-1+extra {
		add(rng.Intn(n), rng.Intn(n))
	}
	return stream
}

// streamText renders a stream in the "u v t" wire format /ingest consumes.
func streamText(stream []graph.TimedEdge) string {
	var b bytes.Buffer
	for _, te := range stream {
		fmt.Fprintf(&b, "%d %d %d\n", te.U, te.V, te.Time)
	}
	return b.String()
}

// postJSON posts v and decodes the response into out, returning the status.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// loadServer ingests the stream's 80% prefix as epoch 1 and the rest as
// epoch 2 through the HTTP surface.
func loadServer(t *testing.T, url string, stream []graph.TimedEdge) {
	t.Helper()
	cut := int(0.8 * float64(len(stream)))
	for _, part := range [][]graph.TimedEdge{stream[:cut], stream[cut:]} {
		resp, err := http.Post(url+"/ingest", "text/plain", bytes.NewBufferString(streamText(part)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: status %d", resp.StatusCode)
		}
		if code := postJSON(t, url+"/seal", struct{}{}, nil); code != http.StatusOK {
			t.Fatalf("seal: status %d", code)
		}
	}
}

// TestQueryMatchesOneShot is the tentpole's differential test: a served query
// is bit-identical (pairs, candidates, budget report) to a one-shot TopK run
// over the same snapshots, at every -engine / -paired / -par setting. The
// served path runs through epoch padding, session caching, and the batching
// layer; none of it may leak into results.
func TestQueryMatchesOneShot(t *testing.T) {
	stream := genStream(120, 260, 7)
	ev, err := graph.NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := ev.Pair(0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, engName := range sssp.EngineNames() {
		eng, err := sssp.ParseEngine(engName)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 2} {
			srv := New(Config{Engine: eng, Parallelism: par, Immediate: true})
			ts := httptest.NewServer(srv.Handler())
			loadServer(t, ts.URL, stream)
			for _, paired := range []string{"full", "incremental"} {
				name := fmt.Sprintf("%s/par=%d/%s", engName, par, paired)
				mode, _ := dist.ParsePairedMode(paired)
				want, err := core.TopK(pair, core.Options{
					Selector: mustSelector(t, "MMSD"), M: 15, L: 5, K: 10,
					Seed: 42, Engine: eng, Parallelism: par, PairedMode: mode,
				})
				if err != nil {
					t.Fatalf("%s one-shot: %v", name, err)
				}
				wantRep := export.NewReport(want.SelectorName, 15,
					want.Budget.Total(), want.Budget.Limit, want.Candidates, want.Pairs)
				var got QueryResponse
				code := postJSON(t, ts.URL+"/query", QueryRequest{
					Tenant: "t", Selector: "MMSD", M: 15, L: 5, K: 10,
					Seed: 42, T1: 1, T2: 2, Paired: paired,
				}, &got)
				if code != http.StatusOK {
					t.Fatalf("%s: query status %d", name, code)
				}
				if !reflect.DeepEqual(got.Report, wantRep) {
					t.Fatalf("%s: served report diverged from one-shot\n got: %+v\nwant: %+v",
						name, got.Report, wantRep)
				}
			}
			srv.Close()
			ts.Close()
		}
	}
}

// scrapeHist pulls one histogram's _sum and _count from /metrics.
func scrapeHist(t *testing.T, url, family string) (sum, count int64) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, pat := range []struct {
		re  string
		dst *int64
	}{
		{regexp.QuoteMeta(family+"_sum") + ` (\d+)`, &sum},
		{regexp.QuoteMeta(family+"_count") + ` (\d+)`, &count},
	} {
		m := regexp.MustCompile(pat.re).FindStringSubmatch(buf.String())
		if m == nil {
			return 0, 0 // series not registered yet
		}
		v, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		*pat.dst = v
	}
	return sum, count
}

// TestConcurrentTenantsShareSweeps pins the acceptance invariant: concurrent
// queries from different tenants coalesce their SSSP sources into shared
// sweeps (sources_per_sweep > 1), while each tenant's meter is charged
// exactly what a lone run would pay.
func TestConcurrentTenantsShareSweeps(t *testing.T) {
	stream := genStream(150, 320, 11)
	// A real coalescing window (not Immediate): concurrent extraction rows
	// from both tenants' queries land in the same batch.
	srv := New(Config{BatchWindow: 20 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	loadServer(t, ts.URL, stream)

	const m, queries = 12, 3
	tenants := []string{"alice", "bob"}
	for _, tn := range tenants {
		if code := postJSON(t, ts.URL+"/tenants", TenantRequest{Name: tn, Limit: 2 * m * queries}, nil); code != http.StatusOK {
			t.Fatalf("declare %s: status %d", tn, code)
		}
	}
	// Random selection spends nothing, so every SSSP is a single-source
	// extraction row routed through the batcher; distinct seeds give each
	// query a distinct candidate set, so concurrent queries contribute
	// distinct sources to the shared batch windows.
	ev, err := graph.NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := ev.Pair(0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	seed := func(ti, q int) int64 { return int64(100*ti + q) }
	wantRep := make(map[int64]export.Report)
	wantSpent := make(map[string]int)
	for ti, tn := range tenants {
		for q := 0; q < queries; q++ {
			res, err := core.TopK(pair, core.Options{
				Selector: mustSelector(t, "Random"), M: m, K: 5, Seed: seed(ti, q),
			})
			if err != nil {
				t.Fatal(err)
			}
			wantRep[seed(ti, q)] = export.NewReport(res.SelectorName, m,
				res.Budget.Total(), res.Budget.Limit, res.Candidates, res.Pairs)
			wantSpent[tn] += res.Budget.Total()
		}
	}

	sumBefore, countBefore := scrapeHist(t, ts.URL, "dist.sources_per_sweep")
	var wg sync.WaitGroup
	errs := make(chan string, len(tenants)*queries)
	for ti, tn := range tenants {
		for q := 0; q < queries; q++ {
			ti, tn, q := ti, tn, q
			wg.Add(1)
			go func() {
				defer wg.Done()
				var got QueryResponse
				code := postJSON(t, ts.URL+"/query", QueryRequest{
					Tenant: tn, Selector: "Random", M: m, K: 5, Seed: seed(ti, q),
				}, &got)
				if code != http.StatusOK {
					errs <- fmt.Sprintf("%s/%d: status %d", tn, q, code)
					return
				}
				if !reflect.DeepEqual(got.Report, wantRep[seed(ti, q)]) {
					errs <- fmt.Sprintf("%s/%d: shared-sweep report diverged from lone run", tn, q)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	sumAfter, countAfter := scrapeHist(t, ts.URL, "dist.sources_per_sweep")
	if dSum, dCount := sumAfter-sumBefore, countAfter-countBefore; dSum <= dCount {
		t.Errorf("no shared sweeps: %d sources over %d sweeps", dSum, dCount)
	}
	// Per-tenant admission: each tenant paid exactly what its queries would
	// have cost run alone, despite the shared sweeps.
	var reports map[string]TenantReport
	resp, err := http.Get(ts.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reports); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, tn := range tenants {
		if got, want := reports[tn].Total, wantSpent[tn]; got != want {
			t.Errorf("tenant %s charged %d SSSPs, want %d (sharing must not share cost)", tn, got, want)
		}
	}
}

// TestTenantAdmission pins the chained-meter semantics over HTTP: a tenant
// whose allowance cannot cover the next query is rejected with 429 and spends
// nothing on the rejected attempt.
func TestTenantAdmission(t *testing.T) {
	stream := genStream(80, 160, 13)
	srv := New(Config{Immediate: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	loadServer(t, ts.URL, stream)

	const m = 10
	// Allowance covers one query (2m) but not two.
	if code := postJSON(t, ts.URL+"/tenants", TenantRequest{Name: "capped", Limit: 3 * m}, nil); code != http.StatusOK {
		t.Fatalf("declare: status %d", code)
	}
	req := QueryRequest{Tenant: "capped", Selector: "Degree", M: m, K: 5}
	var first QueryResponse
	if code := postJSON(t, ts.URL+"/query", req, &first); code != http.StatusOK {
		t.Fatalf("first query: status %d", code)
	}
	if first.TenantSpent != 2*m {
		t.Fatalf("first query spent %d, want %d", first.TenantSpent, 2*m)
	}
	if code := postJSON(t, ts.URL+"/query", req, nil); code != http.StatusTooManyRequests {
		t.Fatalf("second query: status %d, want 429", code)
	}
	tenant, ok := srv.Registry().Get("capped")
	if !ok {
		t.Fatal("tenant vanished")
	}
	if got := tenant.Report().Total(); got != 2*m {
		t.Fatalf("rejected query changed tenant spend: %d, want %d", got, 2*m)
	}
}

// TestServeEndpoints covers the ingest/seal/epochs plumbing and the error
// mapping of /query.
func TestServeEndpoints(t *testing.T) {
	srv := New(Config{Immediate: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// No epochs yet: defaulted window is a 409, explicit window a 404.
	if code := postJSON(t, ts.URL+"/query", QueryRequest{Tenant: "t", Selector: "Degree", M: 4, K: 2}, nil); code != http.StatusConflict {
		t.Fatalf("query with no epochs: status %d, want 409", code)
	}

	// Duplicate edges and self-loops are tolerated and skipped.
	body := "0 1 0\n1 2 1\n1 2 5\n3 3 6\n2 0 7\n"
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var ing IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ing.Accepted != 5 || ing.Added != 3 || ing.Edges != 3 {
		t.Fatalf("ingest = %+v, want accepted 5, added 3, edges 3", ing)
	}

	var ep EpochInfo
	if code := postJSON(t, ts.URL+"/seal", struct{}{}, &ep); code != http.StatusOK || ep.Seq != 1 {
		t.Fatalf("seal: code %d, epoch %+v", code, ep)
	}
	resp, err = http.Post(ts.URL+"/ingest", "text/plain", bytes.NewBufferString("0 3 8\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	postJSON(t, ts.URL+"/seal", struct{}{}, nil)

	var epochs []EpochInfo
	resp, err = http.Get(ts.URL + "/epochs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&epochs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(epochs) != 2 || epochs[0].Seq != 1 || epochs[1].Seq != 2 || epochs[1].Edges != 4 {
		t.Fatalf("epochs = %+v", epochs)
	}

	if code := postJSON(t, ts.URL+"/query", QueryRequest{Tenant: "t", Selector: "Degree", M: 2, K: 2, T1: 1, T2: 9}, nil); code != http.StatusNotFound {
		t.Fatalf("missing epoch: status %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/query", QueryRequest{Tenant: "t", Selector: "NoSuch", M: 2, K: 2}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown selector: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/query", QueryRequest{Selector: "Degree", M: 2, K: 2}, nil); code != http.StatusBadRequest {
		t.Fatalf("missing tenant: status %d, want 400", code)
	}

	// A defaulted window (T1 = T2 = 0) resolves to the latest pair.
	var got QueryResponse
	if code := postJSON(t, ts.URL+"/query", QueryRequest{Tenant: "t", Selector: "Degree", M: 2, K: 2}, &got); code != http.StatusOK {
		t.Fatalf("defaulted window: status %d", code)
	}
	if got.T1 != 1 || got.T2 != 2 {
		t.Fatalf("defaulted window = (%d, %d), want (1, 2)", got.T1, got.T2)
	}
}

// TestSessionCacheEviction pins the pinning contract: cached window sessions
// pin their epochs; eviction (and Close) releases them.
func TestSessionCacheEviction(t *testing.T) {
	stream := genStream(60, 120, 17)
	srv := New(Config{Immediate: true, MaxSessions: 1})
	ing := srv.Ingester()
	cut := int(0.8 * float64(len(stream)))
	if _, err := ing.IngestBatch(stream[:cut]); err != nil {
		t.Fatal(err)
	}
	ing.Seal()
	if _, err := ing.IngestBatch(stream[cut:]); err != nil {
		t.Fatal(err)
	}
	ing.Seal()
	ing.Seal() // epoch 3, same graph

	if _, err := srv.session(1, 2); err != nil {
		t.Fatal(err)
	}
	e1, _ := ing.Store().At(1)
	if !e1.Pinned() {
		t.Fatal("cached session left its epochs unpinned")
	}
	if _, err := srv.session(2, 3); err != nil {
		t.Fatal(err)
	}
	if e1.Pinned() {
		t.Fatal("evicted session kept its pins")
	}
	srv.Close()
	e2, _ := ing.Store().At(2)
	if e2.Pinned() {
		t.Fatal("Close left epochs pinned")
	}
}
