package budget

import (
	"errors"
	"sync"
	"testing"
)

// TestQueryMeterMatchesStandalone pins the tenancy invariant: a query meter
// charged through a tenant reports exactly what a standalone NewMeter(m)
// would — tenancy adds admission control, never cost.
func TestQueryMeterMatchesStandalone(t *testing.T) {
	r := NewRegistry()
	tn := r.Tenant("acme", 100)
	qm := tn.QueryMeter(8)
	sm := NewMeter(8)
	for _, c := range []struct {
		p Phase
		n int
	}{{PhaseCandidateGen, 8}, {PhaseTopK, 5}, {PhaseTopK, 3}} {
		if err := qm.Charge(c.p, c.n); err != nil {
			t.Fatal(err)
		}
		if err := sm.Charge(c.p, c.n); err != nil {
			t.Fatal(err)
		}
	}
	if qm.Report() != sm.Report() {
		t.Fatalf("tenant query report %v differs from standalone %v", qm.Report(), sm.Report())
	}
	if got := tn.Report().Total(); got != 16 {
		t.Fatalf("tenant absorbed %d charges, want 16", got)
	}
}

// TestTenantAdmissionRejectsAtomically pins the chained-charge contract: a
// charge the tenant meter rejects spends nothing on the query meter either,
// and one the query meter rejects never reaches the tenant.
func TestTenantAdmissionRejectsAtomically(t *testing.T) {
	r := NewRegistry()
	tn := r.Tenant("small", 10)
	qm := tn.QueryMeter(100) // query limit far above the tenant allowance

	if err := qm.Charge(PhaseCandidateGen, 8); err != nil {
		t.Fatal(err)
	}
	err := qm.Charge(PhaseTopK, 5) // 8 + 5 > tenant limit 10
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	if got := qm.Report().Total(); got != 8 {
		t.Fatalf("rejected charge leaked into query meter: spent %d, want 8", got)
	}
	if got := tn.Report().Total(); got != 8 {
		t.Fatalf("rejected charge leaked into tenant meter: spent %d, want 8", got)
	}

	// The reverse direction: a child-limit rejection never consults the
	// tenant.
	qm2 := tn.QueryMeter(1) // limit 2
	if err := qm2.Charge(PhaseTopK, 3); !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	if got := tn.Report().Total(); got != 8 {
		t.Fatalf("child rejection charged the tenant: spent %d, want 8", got)
	}
}

// TestTenantsChargeIndependently pins the multi-tenant isolation claim:
// concurrent queries from different tenants each charge their own chain
// exactly as if run alone.
func TestTenantsChargeIndependently(t *testing.T) {
	r := NewRegistry()
	a := r.Tenant("a", 0)
	b := r.Tenant("b", 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		tn := a
		if i%2 == 1 {
			tn = b
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			qm := tn.QueryMeter(4)
			if err := qm.Charge(PhaseCandidateGen, 4); err != nil {
				t.Error(err)
			}
			if err := qm.Charge(PhaseTopK, 4); err != nil {
				t.Error(err)
			}
			if qm.Report().Total() != 8 {
				t.Errorf("query spent %d, want 8", qm.Report().Total())
			}
		}()
	}
	wg.Wait()
	if a.Report().Total() != 32 || b.Report().Total() != 32 {
		t.Fatalf("tenant totals %d/%d, want 32/32", a.Report().Total(), b.Report().Total())
	}
	reports := r.Reports()
	if len(reports) != 2 || reports["a"].Total() != 32 || reports["b"].Total() != 32 {
		t.Fatalf("registry reports wrong: %v", reports)
	}
}

// TestRegistryGetOrCreate pins registry semantics: first limit wins, Get
// never creates, unlimited default for non-positive limits.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Get("ghost"); ok {
		t.Fatalf("Get created a tenant")
	}
	tn := r.Tenant("x", 50)
	if again := r.Tenant("x", 9999); again != tn {
		t.Fatalf("second Tenant call returned a different tenant")
	}
	if tn.Meter().Limit() != 50 {
		t.Fatalf("first limit did not win: %d", tn.Meter().Limit())
	}
	if r.Tenant("free", 0).Meter().Limit() != Unlimited {
		t.Fatalf("non-positive limit is not Unlimited")
	}
	names := r.Names()
	if len(names) != 2 {
		t.Fatalf("names = %v, want 2 entries", names)
	}
	if tn.Name() != "x" {
		t.Fatalf("tenant name = %q", tn.Name())
	}
}
