package budget

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Multi-tenant admission control. A Registry holds one admission Meter per
// tenant; every served query charges a per-query child meter (the paper's 2m
// budget, so its Report matches a one-shot run bit for bit) chained to the
// tenant's meter (the operator-set allowance across queries). Tenants are
// charged independently even when the batching layer merges their SSSP
// sources into one shared sweep: a charge unit is a distance row *produced
// for a caller*, and each caller charges its own chain — sharing machine
// work never shares cost.

// Tenant is one admission-controlled principal: a named meter with an
// operator-set SSSP allowance, plus tenant-labeled charge-size histograms.
type Tenant struct {
	name  string
	meter *Meter
}

// Name returns the tenant identifier.
func (t *Tenant) Name() string { return t.name }

// Meter returns the tenant's admission meter. Charging it directly is
// unusual; queries should charge a QueryMeter child so per-query reports
// stay comparable to one-shot runs.
func (t *Tenant) Meter() *Meter { return t.meter }

// Report returns the tenant's cumulative spending across all its queries.
func (t *Tenant) Report() Report { return t.meter.Report() }

// QueryMeter returns a fresh per-query meter for the paper's standard budget
// (m candidates = 2m SSSPs), chained to the tenant's admission meter: every
// charge must clear both limits or it spends nothing anywhere. The child's
// Report is bit-identical to a standalone NewMeter(m) run — tenancy adds
// admission, never cost.
func (t *Tenant) QueryMeter(m int) *Meter {
	return &Meter{limit: 2 * m, parent: t.meter}
}

// Registry is the set of known tenants. Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	tenants map[string]*Tenant
}

// NewRegistry creates an empty tenant registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*Tenant)}
}

// Tenant returns the named tenant, creating it with the given SSSP allowance
// on first use (limit <= 0 means Unlimited). The limit of an existing tenant
// is not changed by later calls.
func (r *Registry) Tenant(name string, limit int) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[name]; ok {
		return t
	}
	if limit <= 0 {
		limit = Unlimited
	}
	t := &Tenant{
		name: name,
		meter: &Meter{
			limit: limit,
			hist:  tenantChargeHist(name),
		},
	}
	r.tenants[name] = t
	return t
}

// Get returns the named tenant without creating it.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	return t, ok
}

// Names returns the registered tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Reports returns every tenant's cumulative report, keyed by name.
func (r *Registry) Reports() map[string]Report {
	r.mu.Lock()
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.mu.Unlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	out := make(map[string]Report, len(tenants))
	for _, t := range tenants {
		out[t.name] = t.Report()
	}
	return out
}

// tenantChargeHist builds the tenant-labeled charge-size series. The obs
// registry is last-wins, so re-registering a returning tenant's series (a
// registry restarted, a name reused) is safe: the new instruments take over
// the exposition slot.
func tenantChargeHist(name string) *[numPhases]*obs.Histogram {
	var h [numPhases]*obs.Histogram
	for p := Phase(0); p < numPhases; p++ {
		h[p] = obs.NewHistogram("budget.charge_sssp",
			obs.L("phase", p.String()), obs.L("tenant", name))
	}
	return &h
}

// ErrUnknownTenant reports a query naming a tenant the registry has not
// seen. Serve layers map it to a client error.
var ErrUnknownTenant = fmt.Errorf("budget: unknown tenant")
