// Package budget accounts for single-source shortest-path (SSSP)
// computations, the paper's unit of computational cost. A budget of m
// candidate endpoints corresponds to 2m SSSP computations split across two
// phases (paper Table 1): candidate generation and top-k pair extraction.
//
// Every SSSP the library performs on behalf of a budgeted run is charged to a
// Meter. The Meter enforces the limit (charging past it fails), and its
// Report reproduces the per-phase allocation of Table 1, which tests assert
// exactly for every selector.
//
// A charge unit is one distance *row produced*, not the traversal work that
// produced it: a row derived incrementally from the other snapshot's row
// (dist.PairedIncremental, which repairs a copy over the edge delta instead
// of re-traversing G_t2) costs exactly the same one unit as a full BFS. This
// keeps the cost model — and every Table-1 comparison — invariant under
// execution-strategy knobs; the machine-level savings show up in the sssp
// kernel metrics (repair_nodes/repair_edges vs nodes_visited), never in the
// budget.
package budget

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/invariant"
	"repro/internal/obs"
)

// chargeHist records the size distribution of successful charges per phase:
// how many SSSPs each Charge call bought. Totals answer "how much was
// spent"; this answers "in what increments" — single-row extraction charges
// versus bulk landmark batches — which is the shape a multi-tenant admission
// controller needs to size its windows.
var chargeHist = [numPhases]*obs.Histogram{
	PhaseCandidateGen: obs.NewHistogram("budget.charge_sssp", obs.L("phase", "candidate-generation")),
	PhaseTopK:         obs.NewHistogram("budget.charge_sssp", obs.L("phase", "top-k-extraction")),
}

// Phase identifies which stage of the generic top-k algorithm an SSSP
// computation belongs to.
type Phase int

const (
	// PhaseCandidateGen covers SSSPs spent selecting candidate endpoints:
	// dispersion picks, landmark rows, classifier feature landmarks.
	PhaseCandidateGen Phase = iota
	// PhaseTopK covers SSSPs from the chosen candidate endpoints on both
	// snapshots, used to extract the converging pairs.
	PhaseTopK
	numPhases
)

// String returns a human-readable phase name.
func (p Phase) String() string {
	switch p {
	case PhaseCandidateGen:
		return "candidate-generation"
	case PhaseTopK:
		return "top-k-extraction"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// ErrExhausted reports an attempt to charge past the SSSP limit.
var ErrExhausted = errors.New("budget: SSSP budget exhausted")

// Unlimited is the limit a nil Meter reports: the largest int, i.e. "no
// budget constraint".
const Unlimited = int(^uint(0) >> 1)

// Observer receives every successful charge of a Meter, with the phase and
// size of the charge. Observability layers use it to attribute SSSPs to the
// span executing at the moment the budget is spent. The callback may fire
// concurrently (selectors charge from worker goroutines) and must not call
// back into the Meter.
type Observer func(p Phase, n int)

// Meter tracks SSSP charges against a fixed limit. Meter is safe for
// concurrent use (parallel SSSP drivers charge up front, but selectors may
// charge from worker goroutines).
//
// A nil *Meter is valid and means "unlimited, untracked" — convenient for
// ground-truth computations. These are the complete nil semantics, asserted
// by TestNilMeterSemantics: Charge always succeeds and records nothing,
// Limit and Remaining report Unlimited, Report is the zero Report (zero
// limit, zero spending — a nil meter measured nothing), and SetObserver is
// a no-op (no charges are recorded, so none can be observed).
type Meter struct {
	mu       sync.Mutex
	limit    int
	spent    [numPhases]int
	observer Observer
	// parent, when set, is charged in lockstep: a charge only commits when
	// both this meter and the parent admit it. Tenant admission control
	// chains a per-query meter (limit 2m) to a per-tenant meter this way;
	// nesting is single-level (a parent never has a parent of its own), so
	// the child→parent lock order cannot cycle.
	parent *Meter
	// hist, when set, replaces the global charge-size histograms for this
	// meter's successful charges (tenant meters use tenant-labeled series so
	// the global series counts every SSSP exactly once, via the per-query
	// child).
	hist *[numPhases]*obs.Histogram
}

// NewMeter creates a Meter for the paper's standard budget: m candidate
// endpoints = 2m SSSP computations.
func NewMeter(m int) *Meter { return &Meter{limit: 2 * m} }

// NewMeterSSSP creates a Meter with an explicit SSSP limit.
func NewMeterSSSP(limit int) *Meter { return &Meter{limit: limit} }

// Charge records n SSSP computations in the given phase. It fails without
// recording anything if the charge would exceed the limit, so callers can
// degrade gracefully (e.g. select fewer candidates).
func (mt *Meter) Charge(p Phase, n int) error {
	if mt == nil {
		return nil
	}
	if n < 0 {
		return fmt.Errorf("budget: negative charge %d", n)
	}
	if p < 0 || p >= numPhases {
		return fmt.Errorf("budget: unknown phase %d", int(p))
	}
	mt.mu.Lock()
	total := mt.spent[PhaseCandidateGen] + mt.spent[PhaseTopK]
	if total+n > mt.limit {
		mt.mu.Unlock()
		return fmt.Errorf("%w: %d spent + %d requested > limit %d", ErrExhausted, total, n, mt.limit)
	}
	if mt.parent != nil {
		// Admission at this level is fine; commit nothing unless the parent
		// admits too, so a rejected charge spends nothing anywhere.
		if err := mt.parent.Charge(p, n); err != nil {
			mt.mu.Unlock()
			return err
		}
	}
	mt.spent[p] += n
	if invariant.Enabled {
		mt.check()
	}
	fn := mt.observer
	hist := mt.hist
	mt.mu.Unlock()
	// Instrumentation runs outside the lock so the observer may inspect
	// other meters or take its own locks; only successful charges are
	// observed, matching the histogram (failed charges spent nothing).
	if hist == nil {
		hist = &chargeHist
	}
	hist[p].Observe(int64(n))
	if fn != nil {
		fn(p, n)
	}
	return nil
}

// SetObserver installs (or, with nil, removes) the callback notified of
// every subsequent successful Charge. At most one observer is active; a nil
// Meter ignores the call.
func (mt *Meter) SetObserver(fn Observer) {
	if mt == nil {
		return
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.observer = fn
}

// check asserts the Meter's accounting invariants with mu held: phase
// spending is non-negative and the total never exceeds the limit. Compiled
// in only under -tags invariants.
func (mt *Meter) check() {
	total := 0
	for p, n := range mt.spent {
		invariant.Checkf(n >= 0, "negative spending %d in phase %v", n, Phase(p))
		total += n
	}
	invariant.Checkf(total <= mt.limit, "spent %d exceeds limit %d", total, mt.limit)
}

// Remaining returns how many SSSP computations are still available
// (Unlimited for a nil Meter).
func (mt *Meter) Remaining() int {
	if mt == nil {
		return Unlimited
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.limit - mt.spent[PhaseCandidateGen] - mt.spent[PhaseTopK]
}

// Limit returns the total SSSP limit (Unlimited for a nil Meter, matching
// Remaining — a nil meter never constrains anything).
func (mt *Meter) Limit() int {
	if mt == nil {
		return Unlimited
	}
	return mt.limit
}

// Report is a snapshot of a Meter's per-phase spending; it reproduces one
// row of the paper's Table 1.
type Report struct {
	Limit        int // total SSSP budget (2m)
	CandidateGen int // SSSPs spent selecting candidates
	TopK         int // SSSPs spent extracting pairs
}

// Total returns the overall SSSPs spent.
func (r Report) Total() int { return r.CandidateGen + r.TopK }

// String formats the report like a Table 1 row.
func (r Report) String() string {
	return fmt.Sprintf("candidate-generation=%d top-k=%d total=%d/%d",
		r.CandidateGen, r.TopK, r.Total(), r.Limit)
}

// Report returns the current spending snapshot. A nil Meter reports zeros.
func (mt *Meter) Report() Report {
	if mt == nil {
		return Report{}
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return Report{
		Limit:        mt.limit,
		CandidateGen: mt.spent[PhaseCandidateGen],
		TopK:         mt.spent[PhaseTopK],
	}
}
