package budget

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMeterConcurrentCharge oversubscribes a Meter from many goroutines and
// checks that exactly the limit is granted — no lost updates, no overspend.
// Run under -race this also backs the doc's "safe for concurrent use" claim
// with an actual interleaving test.
func TestMeterConcurrentCharge(t *testing.T) {
	const (
		workers  = 8
		attempts = 50
		limit    = workers * attempts / 2 // half the attempts must fail
	)
	mt := NewMeterSSSP(limit)
	var granted, denied atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				phase := PhaseCandidateGen
				if (w+i)%2 == 1 {
					phase = PhaseTopK
				}
				switch err := mt.Charge(phase, 1); {
				case err == nil:
					granted.Add(1)
				case errors.Is(err, ErrExhausted):
					denied.Add(1)
				default:
					t.Errorf("unexpected charge error: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if granted.Load() != limit {
		t.Errorf("granted = %d, want exactly the limit %d", granted.Load(), limit)
	}
	if got, want := denied.Load(), int64(workers*attempts-limit); got != want {
		t.Errorf("denied = %d, want %d", got, want)
	}
	if mt.Remaining() != 0 {
		t.Errorf("remaining = %d after exhaustion, want 0", mt.Remaining())
	}
	rep := mt.Report()
	if rep.Total() != limit {
		t.Errorf("report total = %d, want %d", rep.Total(), limit)
	}
	if rep.CandidateGen+rep.TopK != rep.Total() {
		t.Errorf("phase split %d + %d does not sum to total %d", rep.CandidateGen, rep.TopK, rep.Total())
	}
}

// TestMeterMixedPhaseReport interleaves phases and asserts the exact
// per-phase totals Report must reproduce (a Table 1 row).
func TestMeterMixedPhaseReport(t *testing.T) {
	mt := NewMeter(50) // limit 100
	schedule := []struct {
		phase Phase
		n     int
	}{
		{PhaseCandidateGen, 10},
		{PhaseTopK, 5},
		{PhaseCandidateGen, 7},
		{PhaseTopK, 20},
		{PhaseCandidateGen, 0}, // zero charges are legal no-ops
		{PhaseTopK, 8},
	}
	for _, step := range schedule {
		if err := mt.Charge(step.phase, step.n); err != nil {
			t.Fatalf("charge(%v, %d): %v", step.phase, step.n, err)
		}
	}
	rep := mt.Report()
	if rep.Limit != 100 {
		t.Errorf("limit = %d, want 100", rep.Limit)
	}
	if rep.CandidateGen != 17 {
		t.Errorf("candidate-generation = %d, want 17", rep.CandidateGen)
	}
	if rep.TopK != 33 {
		t.Errorf("top-k = %d, want 33", rep.TopK)
	}
	if rep.Total() != 50 || mt.Remaining() != 50 {
		t.Errorf("total = %d remaining = %d, want 50/50", rep.Total(), mt.Remaining())
	}
}
