package budget

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestMeterBasics(t *testing.T) {
	mt := NewMeter(10) // 20 SSSPs
	if mt.Limit() != 20 {
		t.Fatalf("limit = %d, want 20", mt.Limit())
	}
	if err := mt.Charge(PhaseCandidateGen, 5); err != nil {
		t.Fatal(err)
	}
	if err := mt.Charge(PhaseTopK, 15); err != nil {
		t.Fatal(err)
	}
	if got := mt.Remaining(); got != 0 {
		t.Fatalf("remaining = %d, want 0", got)
	}
	rep := mt.Report()
	if rep.CandidateGen != 5 || rep.TopK != 15 || rep.Total() != 20 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "total=20/20") {
		t.Fatalf("report string = %q", rep.String())
	}
}

func TestMeterExhaustion(t *testing.T) {
	mt := NewMeterSSSP(3)
	if err := mt.Charge(PhaseTopK, 2); err != nil {
		t.Fatal(err)
	}
	err := mt.Charge(PhaseTopK, 2)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	// A failed charge must not consume budget.
	if got := mt.Remaining(); got != 1 {
		t.Fatalf("remaining = %d after failed charge, want 1", got)
	}
	if err := mt.Charge(PhaseCandidateGen, 1); err != nil {
		t.Fatalf("exact fill failed: %v", err)
	}
}

func TestMeterInvalidCharges(t *testing.T) {
	mt := NewMeterSSSP(5)
	if err := mt.Charge(PhaseTopK, -1); err == nil {
		t.Error("negative charge should fail")
	}
	if err := mt.Charge(Phase(99), 1); err == nil {
		t.Error("unknown phase should fail")
	}
}

func TestNilMeter(t *testing.T) {
	var mt *Meter
	if err := mt.Charge(PhaseTopK, 1_000_000); err != nil {
		t.Fatalf("nil meter charge failed: %v", err)
	}
	if mt.Remaining() <= 0 {
		t.Fatal("nil meter should report effectively unlimited budget")
	}
	if mt.Limit() != 0 {
		t.Fatalf("nil meter limit = %d", mt.Limit())
	}
	if rep := mt.Report(); rep.Total() != 0 {
		t.Fatalf("nil meter report = %+v", rep)
	}
}

func TestMeterConcurrent(t *testing.T) {
	mt := NewMeterSSSP(1000)
	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if mt.Charge(PhaseTopK, 1) == nil {
					mu.Lock()
					succeeded++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if succeeded != 1000 {
		t.Fatalf("succeeded charges = %d, want exactly the limit 1000", succeeded)
	}
	if mt.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", mt.Remaining())
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseCandidateGen.String() != "candidate-generation" ||
		PhaseTopK.String() != "top-k-extraction" {
		t.Fatal("phase names changed")
	}
	if !strings.Contains(Phase(42).String(), "42") {
		t.Fatal("unknown phase string should include the value")
	}
}
