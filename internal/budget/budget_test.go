package budget

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestMeterBasics(t *testing.T) {
	mt := NewMeter(10) // 20 SSSPs
	if mt.Limit() != 20 {
		t.Fatalf("limit = %d, want 20", mt.Limit())
	}
	if err := mt.Charge(PhaseCandidateGen, 5); err != nil {
		t.Fatal(err)
	}
	if err := mt.Charge(PhaseTopK, 15); err != nil {
		t.Fatal(err)
	}
	if got := mt.Remaining(); got != 0 {
		t.Fatalf("remaining = %d, want 0", got)
	}
	rep := mt.Report()
	if rep.CandidateGen != 5 || rep.TopK != 15 || rep.Total() != 20 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "total=20/20") {
		t.Fatalf("report string = %q", rep.String())
	}
}

func TestMeterExhaustion(t *testing.T) {
	mt := NewMeterSSSP(3)
	if err := mt.Charge(PhaseTopK, 2); err != nil {
		t.Fatal(err)
	}
	err := mt.Charge(PhaseTopK, 2)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	// A failed charge must not consume budget.
	if got := mt.Remaining(); got != 1 {
		t.Fatalf("remaining = %d after failed charge, want 1", got)
	}
	if err := mt.Charge(PhaseCandidateGen, 1); err != nil {
		t.Fatalf("exact fill failed: %v", err)
	}
}

func TestMeterInvalidCharges(t *testing.T) {
	mt := NewMeterSSSP(5)
	if err := mt.Charge(PhaseTopK, -1); err == nil {
		t.Error("negative charge should fail")
	}
	if err := mt.Charge(Phase(99), 1); err == nil {
		t.Error("unknown phase should fail")
	}
}

// TestNilMeterSemantics pins the documented nil-Meter contract in one place:
// unlimited and untracked. Limit and Remaining agree on Unlimited (they used
// to disagree — MaxInt vs 0 — which broke attribution code that compared
// them), Report is zero, and SetObserver is a safe no-op.
func TestNilMeterSemantics(t *testing.T) {
	var mt *Meter
	if err := mt.Charge(PhaseTopK, 1_000_000); err != nil {
		t.Fatalf("nil meter charge failed: %v", err)
	}
	if mt.Remaining() != Unlimited {
		t.Fatalf("nil meter Remaining() = %d, want Unlimited", mt.Remaining())
	}
	if mt.Limit() != Unlimited {
		t.Fatalf("nil meter Limit() = %d, want Unlimited", mt.Limit())
	}
	if mt.Limit() != mt.Remaining() {
		t.Fatal("nil meter Limit and Remaining must agree")
	}
	if rep := mt.Report(); rep.Total() != 0 || rep.Limit != 0 {
		t.Fatalf("nil meter report = %+v, want zero (nothing was measured)", rep)
	}
	mt.SetObserver(func(Phase, int) { t.Error("nil meter must never observe") })
	_ = mt.Charge(PhaseCandidateGen, 1)
}

func TestObserverSeesSuccessfulChargesOnly(t *testing.T) {
	mt := NewMeterSSSP(10)
	type charge struct {
		p Phase
		n int
	}
	var got []charge
	mt.SetObserver(func(p Phase, n int) { got = append(got, charge{p, n}) })
	if err := mt.Charge(PhaseCandidateGen, 4); err != nil {
		t.Fatal(err)
	}
	if err := mt.Charge(PhaseTopK, 6); err != nil {
		t.Fatal(err)
	}
	if err := mt.Charge(PhaseTopK, 1); err == nil {
		t.Fatal("over-limit charge should fail")
	}
	want := []charge{{PhaseCandidateGen, 4}, {PhaseTopK, 6}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("observed charges = %v, want %v", got, want)
	}
	// Removing the observer stops notifications; spending must continue to
	// match the report exactly.
	mt.SetObserver(nil)
	rep := mt.Report()
	if rep.CandidateGen != 4 || rep.TopK != 6 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestMeterConcurrent(t *testing.T) {
	mt := NewMeterSSSP(1000)
	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if mt.Charge(PhaseTopK, 1) == nil {
					mu.Lock()
					succeeded++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if succeeded != 1000 {
		t.Fatalf("succeeded charges = %d, want exactly the limit 1000", succeeded)
	}
	if mt.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", mt.Remaining())
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseCandidateGen.String() != "candidate-generation" ||
		PhaseTopK.String() != "top-k-extraction" {
		t.Fatal("phase names changed")
	}
	if !strings.Contains(Phase(42).String(), "42") {
		t.Fatal("unknown phase string should include the value")
	}
}

func TestChargeHistogramObservesSuccessfulChargesOnly(t *testing.T) {
	mt := NewMeter(3) // 6 SSSPs
	cgBefore := chargeHist[PhaseCandidateGen].Snapshot()
	tkBefore := chargeHist[PhaseTopK].Snapshot()
	if err := mt.Charge(PhaseCandidateGen, 2); err != nil {
		t.Fatal(err)
	}
	if err := mt.Charge(PhaseTopK, 4); err != nil {
		t.Fatal(err)
	}
	if err := mt.Charge(PhaseTopK, 100); err == nil {
		t.Fatal("over-limit charge should fail")
	}
	cg := chargeHist[PhaseCandidateGen].Snapshot().Sub(cgBefore)
	tk := chargeHist[PhaseTopK].Snapshot().Sub(tkBefore)
	if cg.Count != 1 || cg.Sum != 2 {
		t.Errorf("candidate-gen charge histogram delta count/sum = %d/%d, want 1/2", cg.Count, cg.Sum)
	}
	if tk.Count != 1 || tk.Sum != 4 {
		t.Errorf("top-k charge histogram delta count/sum = %d/%d, want 1/4 (failed charge must not observe)", tk.Count, tk.Sum)
	}
}
