// Package bipartite supports time-evolving bipartite graphs and their
// one-mode projections. The paper's related work (its ref [21]) monitors
// node proximity in bipartite evolving social graphs; the paper itself
// handles general graphs. This package bridges the two settings: an
// affiliation stream (e.g. actor–movie, author–paper, user–group) projects
// onto a co-membership graph whose evolution feeds the converging-pairs
// pipeline directly.
package bipartite

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Membership is one timestamped affiliation event: left-side node Left
// joins right-side node Right (actor joins movie, author joins paper).
type Membership struct {
	Left, Right int
	Time        int64
}

// Stream is a validated, time-ordered affiliation stream.
type Stream struct {
	events   []Membership
	numLeft  int
	numRight int
}

// ErrBadMembership reports invalid affiliation input.
var ErrBadMembership = errors.New("bipartite: invalid membership")

// NewStream validates and wraps an affiliation stream: non-empty,
// time-ordered, non-negative IDs, no duplicate (Left, Right) pairs.
func NewStream(events []Membership) (*Stream, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("%w: empty stream", ErrBadMembership)
	}
	seen := make(map[[2]int]struct{}, len(events))
	s := &Stream{events: events}
	for i, e := range events {
		if e.Left < 0 || e.Right < 0 {
			return nil, fmt.Errorf("%w: events[%d] = (%d, %d)", ErrBadMembership, i, e.Left, e.Right)
		}
		if i > 0 && e.Time < events[i-1].Time {
			return nil, fmt.Errorf("%w: events[%d] out of order", ErrBadMembership, i)
		}
		key := [2]int{e.Left, e.Right}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("%w: events[%d] duplicates (%d, %d)", ErrBadMembership, i, e.Left, e.Right)
		}
		seen[key] = struct{}{}
		if e.Left >= s.numLeft {
			s.numLeft = e.Left + 1
		}
		if e.Right >= s.numRight {
			s.numRight = e.Right + 1
		}
	}
	return s, nil
}

// NumLeft returns the left-side universe size (the projected nodes).
func (s *Stream) NumLeft() int { return s.numLeft }

// NumRight returns the right-side universe size (the affiliation groups).
func (s *Stream) NumRight() int { return s.numRight }

// NumEvents returns the number of affiliation events.
func (s *Stream) NumEvents() int { return len(s.events) }

// Project converts the affiliation stream into a one-mode evolving graph on
// the left side: two left nodes become connected the first time they share
// a right-side group. Edge times are the joining event's time, so snapshots
// of the projection line up with snapshots of the affiliation stream.
//
// maxGroupSize guards against degenerate hub groups projecting to enormous
// cliques (a standard projection safeguard): groups that grow beyond it
// stop contributing new edges. Zero means no limit.
func (s *Stream) Project(maxGroupSize int) (*graph.Evolving, error) {
	members := make([][]int, s.numRight)
	seen := make(map[graph.Edge]struct{})
	var stream []graph.TimedEdge
	for _, e := range s.events {
		group := members[e.Right]
		if maxGroupSize <= 0 || len(group) < maxGroupSize {
			for _, other := range group {
				if other == e.Left {
					continue
				}
				c := graph.Edge{U: e.Left, V: other}.Canon()
				if _, dup := seen[c]; dup {
					continue
				}
				seen[c] = struct{}{}
				stream = append(stream, graph.TimedEdge{U: c.U, V: c.V, Time: e.Time})
			}
		}
		members[e.Right] = append(group, e.Left)
	}
	if len(stream) == 0 {
		return nil, errors.New("bipartite: projection has no edges (no shared groups)")
	}
	return graph.NewEvolving(stream)
}

// WeightedProjection materializes the co-membership counts at a prefix of
// the stream: weight(u, v) = number of shared groups. Returned as a
// weighted graph where *smaller is closer* is achieved by inverting counts
// into distances: weight = maxShared − shared + 1, so frequently
// collaborating pairs sit nearest — the form Dijkstra-based pipelines need.
func (s *Stream) WeightedProjection(prefix int) (*graph.Weighted, error) {
	if prefix < 0 {
		prefix = 0
	}
	if prefix > len(s.events) {
		prefix = len(s.events)
	}
	members := make([][]int, s.numRight)
	counts := make(map[graph.Edge]int32)
	for _, e := range s.events[:prefix] {
		for _, other := range members[e.Right] {
			if other == e.Left {
				continue
			}
			counts[graph.Edge{U: e.Left, V: other}.Canon()]++
		}
		members[e.Right] = append(members[e.Right], e.Left)
	}
	if len(counts) == 0 {
		return nil, errors.New("bipartite: weighted projection has no edges")
	}
	var maxShared int32
	for _, c := range counts {
		if c > maxShared {
			maxShared = c
		}
	}
	edges := make([]graph.WeightedEdge, 0, len(counts))
	for e, c := range counts {
		edges = append(edges, graph.WeightedEdge{U: e.U, V: e.V, Weight: maxShared - c + 1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return graph.NewWeighted(s.numLeft, edges)
}

// GroupSizes returns the affiliation-group size distribution at the end of
// the stream (diagnostics for projection safety).
func (s *Stream) GroupSizes() []int {
	sizes := make([]int, s.numRight)
	for _, e := range s.events {
		sizes[e.Right]++
	}
	return sizes
}
