package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topk"
)

func TestNewStreamValidation(t *testing.T) {
	if _, err := NewStream(nil); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := NewStream([]Membership{{Left: -1, Right: 0}}); err == nil {
		t.Error("negative id should fail")
	}
	if _, err := NewStream([]Membership{
		{Left: 0, Right: 0, Time: 5}, {Left: 1, Right: 0, Time: 3},
	}); err == nil {
		t.Error("unsorted stream should fail")
	}
	if _, err := NewStream([]Membership{
		{Left: 0, Right: 0}, {Left: 0, Right: 0, Time: 1},
	}); err == nil {
		t.Error("duplicate membership should fail")
	}
}

func TestProjectBasic(t *testing.T) {
	// Actors 0,1 share movie 0; actors 1,2 share movie 1.
	s, err := NewStream([]Membership{
		{Left: 0, Right: 0, Time: 0},
		{Left: 1, Right: 0, Time: 1},
		{Left: 1, Right: 1, Time: 2},
		{Left: 2, Right: 1, Time: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLeft() != 3 || s.NumRight() != 2 || s.NumEvents() != 4 {
		t.Fatalf("sizes: %d %d %d", s.NumLeft(), s.NumRight(), s.NumEvents())
	}
	ev, err := s.Project(0)
	if err != nil {
		t.Fatal(err)
	}
	g := ev.SnapshotFraction(1.0)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatalf("projection edges wrong: %v", g.Edges())
	}
	// Edge times follow the joining event.
	stream := ev.Stream()
	if stream[0].Time != 1 || stream[1].Time != 3 {
		t.Fatalf("projection times = %v", stream)
	}
}

func TestProjectMaxGroupSize(t *testing.T) {
	// One huge group of 6 members: unlimited projection has C(6,2)=15
	// edges; capped at 3 it stops contributing once the group has 3.
	var events []Membership
	for i := 0; i < 6; i++ {
		events = append(events, Membership{Left: i, Right: 0, Time: int64(i)})
	}
	s, err := NewStream(events)
	if err != nil {
		t.Fatal(err)
	}
	unlimited, err := s.Project(0)
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.NumEdges() != 15 {
		t.Fatalf("unlimited edges = %d", unlimited.NumEdges())
	}
	capped, err := s.Project(3)
	if err != nil {
		t.Fatal(err)
	}
	// Members 0,1,2 form C(3,2)=3 edges; later joiners add none.
	if capped.NumEdges() != 3 {
		t.Fatalf("capped edges = %d", capped.NumEdges())
	}
	sizes := s.GroupSizes()
	if sizes[0] != 6 {
		t.Fatalf("group sizes = %v", sizes)
	}
}

func TestProjectNoSharedGroups(t *testing.T) {
	s, err := NewStream([]Membership{
		{Left: 0, Right: 0}, {Left: 1, Right: 1, Time: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Project(0); err == nil {
		t.Fatal("projection without shared groups should fail")
	}
	if _, err := s.WeightedProjection(2); err == nil {
		t.Fatal("weighted projection without edges should fail")
	}
}

func TestWeightedProjection(t *testing.T) {
	// Actors 0,1 share two movies; actors 1,2 share one.
	s, err := NewStream([]Membership{
		{Left: 0, Right: 0, Time: 0}, {Left: 1, Right: 0, Time: 1},
		{Left: 0, Right: 1, Time: 2}, {Left: 1, Right: 1, Time: 3},
		{Left: 1, Right: 2, Time: 4}, {Left: 2, Right: 2, Time: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	wg, err := s.WeightedProjection(s.NumEvents())
	if err != nil {
		t.Fatal(err)
	}
	// Shared counts: (0,1)=2, (1,2)=1, maxShared=2: weights 1 and 2.
	adj, ws := wg.Neighbors(1)
	weightTo := map[int32]int32{}
	for i, v := range adj {
		weightTo[v] = ws[i]
	}
	if weightTo[0] != 1 || weightTo[2] != 2 {
		t.Fatalf("weights = %v", weightTo)
	}
	// Prefix clamping.
	if _, err := s.WeightedProjection(999); err != nil {
		t.Fatal(err)
	}
}

// Property: the projection of any valid affiliation stream is a valid
// evolving graph whose snapshots feed the converging-pairs pipeline.
func TestProjectionPipelineProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLeft, nRight := 5+rng.Intn(30), 3+rng.Intn(10)
		seen := map[[2]int]bool{}
		var events []Membership
		for i := 0; i < 4*nLeft; i++ {
			l, r := rng.Intn(nLeft), rng.Intn(nRight)
			if seen[[2]int{l, r}] {
				continue
			}
			seen[[2]int{l, r}] = true
			events = append(events, Membership{Left: l, Right: r, Time: int64(len(events))})
		}
		if len(events) < 4 {
			return true
		}
		s, err := NewStream(events)
		if err != nil {
			return false
		}
		ev, err := s.Project(0)
		if err != nil {
			return true // all-disjoint groups: nothing to project
		}
		pair, err := ev.Pair(0.7, 1.0)
		if err != nil {
			return false
		}
		if err := pair.Validate(); err != nil {
			return false
		}
		gt, err := topk.Compute(pair, topk.Options{Workers: 2})
		if err != nil {
			return false
		}
		return gt.MaxDelta >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
