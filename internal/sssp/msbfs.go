package sssp

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/graph"
)

// Bit-parallel multi-source BFS (MS-BFS; Then et al., "The More the
// Merrier: Efficient Multi-Source Graph Traversal", VLDB 2015). Up to 64
// sources traverse the graph together: each node carries one machine word
// whose bit i means "reached by source i", so one pass over an edge
// advances every source that still needs it. A node is re-expanded only at
// the few distinct levels at which some source first reaches it — on the
// paper's small-diameter snapshots that is 2–4 levels — so a 64-source
// batch examines each edge a handful of times instead of 64.

// msBFSBatch runs BFS from sources[0..k) (k <= 64) simultaneously and
// writes the distance row of sources[i] into rows[i] (length n, Unreachable
// for nodes in other components). Duplicate sources are allowed and produce
// identical rows. The scratch's MS buffers are (re)used across calls.
//
//convlint:hotpath
func msBFSBatch(g *graph.Graph, sources []int, rows [][]int32, s *Scratch) {
	//convlint:nondet sweep latency is observational, not part of results
	start := time.Now()
	n := g.NumNodes()
	if len(sources) > msBatchBits {
		panic(fmt.Sprintf("sssp: MS-BFS batch of %d sources exceeds %d lanes", len(sources), msBatchBits))
	}
	offsets, neighbors := g.CSR()
	s.ensureMS(n)
	seen, front, next := s.seen, s.front, s.next

	for i, src := range sources {
		if src < 0 || src >= n {
			panic(fmt.Sprintf("sssp: source %d out of range [0,%d)", src, n))
		}
		row := rows[i]
		for j := range row {
			row[j] = Unreachable
		}
		row[src] = 0
	}

	q := s.queue[:0]
	for i, src := range sources {
		bit := uint64(1) << uint(i)
		if seen[src] == 0 {
			q = append(q, int32(src))
		}
		seen[src] |= bit
		front[src] |= bit
	}

	// Metrics accumulate in registers and flush once per batch. A "node"
	// here is one (source, node) visit — the scalar-equivalent work the
	// batch saves is visits versus edges actually scanned.
	var edges int64
	visits := int64(len(sources))
	peak := len(q)

	nextQ := s.nextQ[:0]
	for level := int32(1); len(q) > 0; level++ {
		nextQ = nextQ[:0]
		for _, u := range q {
			fu := front[u]
			front[u] = 0
			edges += int64(offsets[u+1] - offsets[u])
			for _, v := range neighbors[offsets[u]:offsets[u+1]] {
				new := fu &^ seen[v]
				if new == 0 {
					continue
				}
				if next[v] == 0 {
					nextQ = append(nextQ, v)
				}
				next[v] |= new
				seen[v] |= new
			}
		}
		for _, v := range nextQ {
			w := next[v]
			visits += int64(bits.OnesCount64(w))
			for w != 0 {
				rows[bits.TrailingZeros64(w)][v] = level
				w &= w - 1
			}
		}
		if len(nextQ) > peak {
			peak = len(nextQ)
		}
		front, next = next, front
		q, nextQ = nextQ, q
	}
	// Hand the (possibly swapped) slices back so the next call reuses them;
	// front and next are all-zero again at this point.
	s.front, s.next = front, next
	s.queue, s.nextQ = q[:0], nextQ[:0]
	km := &kernelMetrics[kBitParallel]
	km.calls.Add(1)
	km.sources.Add(int64(len(sources)))
	km.nodes.Add(visits)
	km.edges.Add(edges)
	peakMax(&km.frontierPeak, int64(peak))
	observeSweep(kBitParallel, start, int64(len(sources)), visits, edges)
}
