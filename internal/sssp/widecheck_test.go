package sssp

import "testing"

// TestWideWorkAccounting pins the wide kernel's amortization claim: covering
// the same 256 sources as one 256-lane traversal must examine strictly fewer
// edges than four sequential 64-lane batches, because a node is re-expanded
// only at the distinct levels at which some lane first reaches it, and one
// wide batch merges the four batches' level sets. (Whether fewer examinations
// translate to less wall-clock depends on the cache system — see
// BENCH_parallel.json — but the work accounting is machine-independent.)
func TestWideWorkAccounting(t *testing.T) {
	const n = 20000
	g := benchGraph(n, 7)
	sources := make([]int, 256)
	for i := range sources {
		sources[i] = (i * (n / 256)) % n
	}
	rows := make([][]int32, 256)
	for i := range rows {
		rows[i] = make([]int32, n)
	}
	s := NewScratch(n)
	before := SnapshotMetrics()
	for batch := 0; batch < 4; batch++ {
		msBFSBatch(g, sources[batch*64:(batch+1)*64], rows[batch*64:(batch+1)*64], s)
	}
	mid := SnapshotMetrics()
	msBFSBatchWide(g, sources, rows, 4, 1, s)
	after := SnapshotMetrics()
	d64 := mid.BitParallel64.Edges - before.BitParallel64.Edges
	d256 := after.BitParallel256.Edges - mid.BitParallel256.Edges
	if d256 >= d64 {
		t.Fatalf("wide kernel examined %d edges, want fewer than the 4x64 batches' %d", d256, d64)
	}
	// The per-lane visit totals are identical: every (source, node) pair in a
	// reachable component is visited exactly once either way.
	v64 := mid.BitParallel64.Nodes - before.BitParallel64.Nodes
	v256 := after.BitParallel256.Nodes - mid.BitParallel256.Nodes
	if v64 != v256 {
		t.Fatalf("visit totals differ: 4x64=%d wide=%d", v64, v256)
	}
	t.Logf("edges examined: 4x64=%d wide256=%d (%.2fx fewer)", d64, d256, float64(d64)/float64(d256))
}
