package sssp

import (
	"time"

	"repro/internal/graph"
)

// Δ-threshold bounded second-snapshot BFS (top-k closeness style early
// termination, after Borassi et al. / Bergamini et al., PAPERS.md).
//
// Pruned extraction computes the first-snapshot row d1 in full, then runs
// this kernel for the second snapshot. Because the snapshots grow (G_t1 ⊆
// G_t2), every node still undiscovered when the traversal is about to
// expand level L has true d2 >= L+1, so its delta d1−d2 is at most
// maxRem − (L+1), where maxRem is the largest d1 among undiscovered nodes.
// Once that ceiling drops strictly below the current kth-Δ threshold, no
// undiscovered node can enter the top-k and the traversal stops: abandoned
// nodes get d2 = d1 (delta 0, discarded by the extraction floor), which
// keeps the emitted pair set bit-identical to a full traversal.
//
// The d2 row a cut run produces is only valid for delta extraction against
// this d1 — it must never be cached or served as a real distance row
// (core.extractPairs never writes rows back, which is what makes the
// capability safe to use there).

// PrunedScratch holds the bounded kernel's buffers: the frontier queue and
// the histogram of d1 values over still-undiscovered nodes that drives the
// maxRem walk-down. Grow-only, not safe for concurrent use.
type PrunedScratch struct {
	queue []int32
	cnt   []int32 // cnt[d] = undiscovered nodes with d1 == d (d1 > 0 only)
}

// ensure grows the buffers to serve an n-node graph.
func (s *PrunedScratch) ensure(n int) {
	if cap(s.queue) < n {
		s.queue = make([]int32, 0, n)
	}
	if len(s.cnt) < n+1 {
		s.cnt = make([]int32, n+1)
	}
}

// PrunedSecondBFS fills d2 with second-snapshot distances from src,
// stopping as soon as the Δ-threshold returned by bound proves no
// undiscovered node can reach the top-k. d1 must be the full first-snapshot
// row from the same src, and g2 must be a supergraph of the first snapshot
// (the growing-snapshot contract of dist.Pair) — both are what make the cut
// sound. bound is sampled once per level; values below 1 are clamped to 1
// (the extraction floor: delta 0 pairs are never emitted). Returns true if
// the traversal was cut short.
//
// On a cut, nodes with d1 > 0 that were not yet discovered get d2 = d1;
// everything else undiscovered stays Unreachable. The row is then NOT a
// true distance row — see the package comment above.
//
//convlint:hotpath
func PrunedSecondBFS(g2 *graph.Graph, src int, d1, d2 []int32, bound func() int32, ps *PrunedScratch) bool {
	//convlint:nondet sweep latency is observational, not part of results
	start := time.Now()
	n := g2.NumNodes()
	ps.ensure(n)
	offsets, neighbors := g2.CSR()

	// Histogram of d1 over undiscovered nodes; maxRem is its top. Only
	// d1 > 0 nodes are tracked: the extraction emit loop skips d1 <= 0, so
	// they are the only nodes whose d2 can influence the output.
	cnt := ps.cnt[:n+1]
	for i := range cnt {
		cnt[i] = 0
	}
	maxRem := int32(-1)
	for v := 0; v < n; v++ {
		d2[v] = Unreachable
		if v != src && d1[v] > 0 {
			cnt[d1[v]]++
			if d1[v] > maxRem {
				maxRem = d1[v]
			}
		}
	}

	q := ps.queue[:0]
	q = append(q, int32(src))
	d2[src] = 0

	var nodes, edges int64 = 1, 0
	peak := 0
	level := int32(0)
	levelStart, levelEnd := 0, 1
	cut := false
	for levelStart < levelEnd {
		// Cut check before expanding this level: nodes discovered during it
		// get d2 = level+1, so every still-undiscovered node has true
		// d2 >= level+1 and delta <= maxRem − (level+1). Strictly below the
		// threshold means provably outside the top-k.
		b := bound()
		if b < 1 {
			b = 1
		}
		if maxRem-(level+1) < b {
			cut = true
			break
		}
		if levelEnd-levelStart > peak {
			peak = levelEnd - levelStart
		}
		for i := levelStart; i < levelEnd; i++ {
			u := q[i]
			edges += int64(offsets[u+1] - offsets[u])
			for _, v := range neighbors[offsets[u]:offsets[u+1]] {
				if d2[v] == Unreachable {
					d2[v] = level + 1
					nodes++
					if d1[v] > 0 {
						cnt[d1[v]]--
					}
					q = append(q, v)
				}
			}
		}
		for maxRem >= 0 && cnt[maxRem] == 0 {
			maxRem--
		}
		levelStart, levelEnd = levelEnd, len(q)
		level++
	}
	ps.queue = q[:0]

	// On a cut, settle the abandoned nodes and count exactly what the full
	// traversal would still have done for them. d1 > 0 implies reachable in
	// the supergraph g2, so their node visits and adjacency scans are an
	// exact lower bound on the avoided work.
	var skippedNodes, skippedEdges, remLevels int64
	if cut {
		for v := 0; v < n; v++ {
			if d2[v] == Unreachable && d1[v] > 0 {
				d2[v] = d1[v]
				skippedNodes++
				skippedEdges += int64(offsets[v+1] - offsets[v])
			}
		}
		if rem := int64(maxRem) - int64(level); rem > 0 {
			remLevels = rem
		}
	}
	RecordPrunedBFS(nodes, edges, int64(peak), cut, skippedNodes, skippedEdges, remLevels, start)
	return cut
}
