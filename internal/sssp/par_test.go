package sssp

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// bigParGraph builds a graph large enough that the parallel kernels actually
// cross their serial cutoffs (frontiers of thousands of nodes), with
// isolated nodes appended so disconnected components are exercised too.
func bigParGraph(tb testing.TB, n int, seed int64) *graph.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	return prefAttach(n, 3, n/20, rng)
}

// oracleCache memoizes referenceBFS rows per source, so driver tests over
// hundreds of sources (with duplicates) stay fast.
type oracleCache struct {
	g    *graph.Graph
	rows map[int][]int32
}

func (o *oracleCache) row(src int) []int32 {
	if r, ok := o.rows[src]; ok {
		return r
	}
	r, _, _ := referenceBFS(o.g, src)
	o.rows[src] = r
	return r
}

// TestParallelEnginesDifferential pins the parallel level-synchronous kernel
// bit-identical to the scalar oracle on graphs big enough to split frontiers
// across workers (including direction-optimized bottom-up levels, duplicate
// calls on a warm Scratch, and sources inside isolated components).
func TestParallelEnginesDifferential(t *testing.T) {
	g := bigParGraph(t, 4000, 23)
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(29))
	srcs := []int{0, 1, n - 1} // n-1 is isolated with high probability
	for i := 0; i < 5; i++ {
		srcs = append(srcs, rng.Intn(n))
	}
	dist := make([]int32, n)
	oracle := &oracleCache{g: g, rows: map[int][]int32{}}
	for _, e := range []Engine{TopDown, DirectionOpt} {
		s := NewScratch(n)
		for _, par := range []int{2, 3, 8} {
			for _, src := range srcs {
				want := oracle.row(src)
				reached, ecc := ParallelBFSWith(g, src, dist, e, par, s)
				wantReached, wantEcc := 0, int32(0)
				for _, d := range want {
					if d >= 0 {
						wantReached++
						if d > wantEcc {
							wantEcc = d
						}
					}
				}
				if reached != wantReached || ecc != wantEcc {
					t.Fatalf("engine %v par %d src %d: (reached, ecc) = (%d, %d), want (%d, %d)",
						e, par, src, reached, ecc, wantReached, wantEcc)
				}
				for v := range dist {
					if dist[v] != want[v] {
						t.Fatalf("engine %v par %d src %d: dist[%d] = %d, want %d",
							e, par, src, v, dist[v], want[v])
					}
				}
			}
		}
	}
}

// TestWideDriversDifferential pins the wide MS-BFS kernels (serial and
// parallel) bit-identical to the oracle through the multi-source drivers,
// with a source set spanning several 256/512-lane batch boundaries and
// containing duplicates.
func TestWideDriversDifferential(t *testing.T) {
	g := bigParGraph(t, 3000, 31)
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(37))
	sources := make([]int, 0, 600)
	for i := 0; i < 596; i++ {
		sources = append(sources, rng.Intn(n))
	}
	sources = append(sources, sources[0], sources[1], n-1, n-1)
	// Prefill the oracle serially: fn below runs concurrently (workers=2)
	// and must only read shared state.
	oracle := &oracleCache{g: g, rows: map[int][]int32{}}
	for _, src := range sources {
		oracle.row(src)
	}
	for _, e := range []Engine{BitParallel64, BitParallel256, BitParallel512} {
		for _, par := range []int{1, 4} {
			var calls atomic.Int64
			var failed atomic.Bool
			AllSourcesParEngineFunc(g, sources, 2, e, par, func(src int, dist []int32) {
				calls.Add(1)
				want := oracle.rows[src]
				for v := range dist {
					if dist[v] != want[v] {
						failed.Store(true)
						return
					}
				}
			})
			if failed.Load() {
				t.Fatalf("engine %v par %d: distances diverge from oracle", e, par)
			}
			if calls.Load() != int64(len(sources)) {
				t.Fatalf("engine %v par %d: fn called %d times for %d sources", e, par, calls.Load(), len(sources))
			}
		}
	}
}

// TestPairedWideDriver covers the two-snapshot driver under a wide engine
// with intra-traversal parallelism.
func TestPairedWideDriver(t *testing.T) {
	g1 := bigParGraph(t, 1500, 41)
	g2 := bigParGraph(t, 1500, 43)
	n := g1.NumNodes()
	rng := rand.New(rand.NewSource(47))
	sources := make([]int, 0, 300)
	for i := 0; i < 300; i++ {
		sources = append(sources, rng.Intn(n))
	}
	o1 := &oracleCache{g: g1, rows: map[int][]int32{}}
	o2 := &oracleCache{g: g2, rows: map[int][]int32{}}
	for _, src := range sources {
		o1.row(src)
		o2.row(src)
	}
	var failed atomic.Bool
	PairedSourcesParEngineFunc(g1, g2, sources, 2, BitParallel256, 2, func(src int, d1, d2 []int32) {
		w1, w2 := o1.rows[src], o2.rows[src]
		for v := range d1 {
			if d1[v] != w1[v] || d2[v] != w2[v] {
				failed.Store(true)
				return
			}
		}
	})
	if failed.Load() {
		t.Fatal("paired wide sweep distances diverge from oracle")
	}
}

// TestEngineNameRoundTrip pins that every engine name String() produces is
// accepted back by ParseEngine, and that the ParseEngine error enumerates
// every name (so -engine stays self-documenting as kernels are added).
func TestEngineNameRoundTrip(t *testing.T) {
	all := []Engine{Auto, TopDown, DirectionOpt, BitParallel64, BitParallel256, BitParallel512}
	if len(all) != len(EngineNames()) {
		t.Fatalf("EngineNames lists %d engines, test covers %d — keep both in sync", len(EngineNames()), len(all))
	}
	for _, e := range all {
		got, err := ParseEngine(e.String())
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", e.String(), err)
		}
		if got != e {
			t.Fatalf("ParseEngine(%q) = %v, want %v", e.String(), got, e)
		}
	}
	_, err := ParseEngine("nonsense")
	if err == nil {
		t.Fatal("ParseEngine(nonsense): expected error")
	}
	for _, name := range EngineNames() {
		if !containsStr(err.Error(), name) {
			t.Fatalf("ParseEngine error %q does not mention engine %q", err, name)
		}
	}
	// Lane widths drive batch sizing; pin them to the names.
	wantLanes := map[Engine]int{Auto: 0, TopDown: 0, DirectionOpt: 0,
		BitParallel64: 64, BitParallel256: 256, BitParallel512: 512}
	for e, want := range wantLanes {
		if e.Lanes() != want {
			t.Fatalf("%v.Lanes() = %d, want %d", e, e.Lanes(), want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestClampWorkers is the table test for the one shared worker-clamping rule
// (satellite of the dedup across topk/dist/core).
func TestClampWorkers(t *testing.T) {
	cases := []struct {
		workers, jobs, wantMin, wantMax int
	}{
		{workers: 4, jobs: 10, wantMin: 4, wantMax: 4},
		{workers: 4, jobs: 2, wantMin: 2, wantMax: 2},
		{workers: 1, jobs: 100, wantMin: 1, wantMax: 1},
		{workers: 7, jobs: 7, wantMin: 7, wantMax: 7},
		// jobs == 0 floors at 1 so pool loops still terminate.
		{workers: 4, jobs: 0, wantMin: 1, wantMax: 1},
		{workers: -3, jobs: 0, wantMin: 1, wantMax: 1},
		// workers <= 0 resolves to GOMAXPROCS, then caps at jobs.
		{workers: 0, jobs: 1, wantMin: 1, wantMax: 1},
		{workers: -1, jobs: 2, wantMin: 1, wantMax: 2},
		{workers: 0, jobs: 1 << 30, wantMin: 1, wantMax: 1 << 30},
	}
	for _, c := range cases {
		got := ClampWorkers(c.workers, c.jobs)
		if got < c.wantMin || got > c.wantMax {
			t.Errorf("ClampWorkers(%d, %d) = %d, want in [%d, %d]",
				c.workers, c.jobs, got, c.wantMin, c.wantMax)
		}
	}
}

// TestEnsureRowsGrowOnly is the regression test for the ensureRows thrash
// fix: alternating between graph sizes and lane widths must not re-pay the
// row-block allocation once the largest geometry has been served.
func TestEnsureRowsGrowOnly(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant builds allocate in assertions; grow-only holds for default builds")
	}
	s := &Scratch{}
	// Warm with the largest geometry: 512 lanes at the larger n.
	_ = s.ensureRows(1000, 512)
	sizes := []struct{ n, lanes int }{
		{1000, 64}, {500, 64}, {1000, 256}, {500, 512}, {1000, 512}, {7, 64},
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, sz := range sizes {
			rows := s.ensureRows(sz.n, sz.lanes)
			if len(rows) != sz.lanes || len(rows[0]) != sz.n {
				t.Fatalf("ensureRows(%d, %d): got %d rows of len %d", sz.n, sz.lanes, len(rows), len(rows[0]))
			}
		}
	})
	if allocs != 0 {
		t.Errorf("%.1f allocs per alternating ensureRows cycle, want 0 (grow-only)", allocs)
	}
	// Rows must be disjoint, correctly sized views.
	rows := s.ensureRows(100, 256)
	rows[0][99] = 7
	rows[1][0] = 9
	if rows[0][99] != 7 || rows[1][0] != 9 || &rows[0][99] == &rows[1][0] {
		t.Fatal("ensureRows rows alias each other")
	}
}

// TestParallelBFSZeroAllocs pins the parallel scalar kernels to zero
// steady-state allocations: the worker pool is persistent and dispatch is a
// channel send of a pre-existing pointer, so a warmed traversal allocates
// nothing no matter how many levels fan out.
func TestParallelBFSZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("CSR invariant assertions allocate; zero-alloc holds for default builds")
	}
	g := bigParGraph(t, 3000, 53)
	n := g.NumNodes()
	dist := make([]int32, n)
	for _, e := range []Engine{TopDown, DirectionOpt} {
		t.Run(e.String(), func(t *testing.T) {
			s := NewScratch(n)
			ParallelBFSWith(g, 0, dist, e, 4, s) // warm pool, vis bitmap, worker queues
			src := 0
			allocs := testing.AllocsPerRun(30, func() {
				ParallelBFSWith(g, src%n, dist, e, 4, s)
				src++
			})
			if allocs != 0 {
				t.Errorf("engine %v: %.1f allocs per parallel BFS with warmed Scratch, want 0", e, allocs)
			}
		})
	}
}

// TestWideBatchZeroAllocs pins the wide MS-BFS kernel (serial and parallel)
// to zero steady-state allocations with a warmed Scratch.
func TestWideBatchZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("CSR invariant assertions allocate; zero-alloc holds for default builds")
	}
	g := bigParGraph(t, 2000, 59)
	n := g.NumNodes()
	sources := make([]int, 256)
	for i := range sources {
		sources[i] = (i * 7) % n
	}
	for _, par := range []int{1, 4} {
		s := &Scratch{}
		rows := s.ensureRows(n, 256)
		msBFSBatchWide(g, sources, rows, 4, par, s) // warm
		allocs := testing.AllocsPerRun(10, func() {
			msBFSBatchWide(g, sources, rows, 4, par, s)
		})
		if allocs != 0 {
			t.Errorf("par %d: %.1f allocs per wide batch with warmed Scratch, want 0", par, allocs)
		}
	}
}

// TestCoresUsedMetric asserts a parallel traversal reports cores_used > 1 in
// the kernel metrics — the property the CI multicore smoke checks end to end.
func TestCoresUsedMetric(t *testing.T) {
	g := bigParGraph(t, 4000, 61)
	n := g.NumNodes()
	dist := make([]int32, n)
	ParallelBFSWith(g, 0, dist, TopDown, 4, NewScratch(n))
	after := SnapshotMetrics()
	if after.TopDown.CoresUsed < 2 {
		t.Fatalf("parallel TopDown reported cores_used = %d, want > 1", after.TopDown.CoresUsed)
	}
	// The wide kernels report their lane width and, with par > 1, multicore
	// levels too.
	sources := make([]int, 300)
	for i := range sources {
		sources[i] = (i * 11) % n
	}
	AllSourcesParEngineFunc(g, sources, 1, BitParallel256, 4, func(int, []int32) {})
	snap := SnapshotMetrics()
	if snap.BitParallel256.LaneWidth != 256 {
		t.Fatalf("BitParallel256 lane width = %d, want 256", snap.BitParallel256.LaneWidth)
	}
	if snap.BitParallel256.CoresUsed < 2 {
		t.Fatalf("parallel wide sweep reported cores_used = %d, want > 1", snap.BitParallel256.CoresUsed)
	}
	if snap.BitParallel256.Calls == 0 || snap.BitParallel256.Sources < int64(len(sources)) {
		t.Fatalf("wide sweep misattributed: calls=%d sources=%d", snap.BitParallel256.Calls, snap.BitParallel256.Sources)
	}
}
