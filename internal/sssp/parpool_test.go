package sssp

import (
	"sync"
	"testing"
)

// TestParPoolDrainRespawn is the pool shutdown/reuse stress test: spawn the
// pool, run concurrent parallel traversals through it, drain it to zero
// workers, and respawn — three times, verifying distances stay bit-identical
// to the scalar oracle throughout. Run under -race this exercises the
// spawn/drain handshake (channel close, worker exit accounting, fresh
// channel installation) against live fork-join traffic.
func TestParPoolDrainRespawn(t *testing.T) {
	g := bigParGraph(t, 3000, 67)
	n := g.NumNodes()
	srcs := []int{0, 1, 17, n / 2, n - 1}
	oracle := &oracleCache{g: g, rows: map[int][]int32{}}
	for _, src := range srcs {
		oracle.row(src)
	}

	const traversals = 4
	for round := 0; round < 3; round++ {
		// Several concurrent coordinators share the (re)spawned pool.
		var wg sync.WaitGroup
		for i := 0; i < traversals; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s := NewScratch(n)
				dist := make([]int32, n)
				for _, src := range srcs {
					ParallelBFSWith(g, src, dist, TopDown, 4, s)
					want := oracle.rows[src]
					for v := range dist {
						if dist[v] != want[v] {
							t.Errorf("traversal %d src %d: dist[%d] = %d, want %d", i, src, v, dist[v], want[v])
							return
						}
					}
				}
			}(i)
		}
		wg.Wait()

		if parPoolSize.Load() == 0 {
			t.Fatalf("round %d: pool empty after parallel traversals", round)
		}
		drainParPool()
		if got := parPoolSize.Load(); got != 0 {
			t.Fatalf("round %d: %d workers alive after drain, want 0", round, got)
		}
	}

	// A post-drain traversal must transparently respawn the pool.
	s := NewScratch(n)
	dist := make([]int32, n)
	ParallelBFSWith(g, srcs[0], dist, DirectionOpt, 4, s)
	want := oracle.rows[srcs[0]]
	for v := range dist {
		if dist[v] != want[v] {
			t.Fatalf("post-drain traversal: dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
	if parPoolSize.Load() == 0 {
		t.Fatal("pool did not respawn after drain")
	}
}
