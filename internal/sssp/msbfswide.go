package sssp

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Wide bit-parallel multi-source BFS: the MS-BFS of msbfs.go generalized
// from one visit word per node to W words (W=4 → 256 lanes, W=8 → 512).
// Batch setup — row initialization, seen-word clearing, the queue seeding —
// amortizes over W× more sources per pass, and a node is still re-expanded
// only at the few distinct levels at which some lane first reaches it. The
// price is touching W words per edge examination, which pays off once the
// sweep has thousands of sources (the exact ground-truth sweep, the paired
// sweep, DistanceMatrix on large landmark sets).
//
// The kernel also composes with intra-traversal parallelism: with par > 1
// the per-level scan splits the frontier across the traversal worker pool
// (CAS-claiming new bits on the shared seen words, with a CAS-claimed
// next-queue membership bitmap deduplicating the merged queue), and the emit
// pass — which writes each newly reached (lane, node) distance — splits the
// next queue the same way. Level-synchrony again makes every row
// deterministic: a lane bit is claimed only during the one level at which
// that source first reaches the node.

// kernelForWidth maps a wide kernel's word count to its metrics index.
func kernelForWidth(W int) kernelIndex {
	switch W {
	case 4:
		return kBitParallel256
	case 8:
		return kBitParallel512
	default:
		return kBitParallel
	}
}

// msBFSBatchWide runs BFS from sources[0..k) (k <= 64*W) simultaneously and
// writes the distance row of sources[i] into rows[i] (length n, Unreachable
// for nodes in other components). Duplicate sources produce identical rows.
// W is the number of visit words per node (1, 4, or 8); par > 1 additionally
// splits each level across the traversal worker pool. The scratch's wide
// buffers are (re)used across calls.
//
//convlint:hotpath
//convlint:shared plain wide-word access is confined to serial phases (seeding, sub-cutoff levels, post-barrier merges) with no worker in flight
func msBFSBatchWide(g *graph.Graph, sources []int, rows [][]int32, W, par int, s *Scratch) {
	//convlint:nondet sweep latency is observational, not part of results
	start := time.Now()
	n := g.NumNodes()
	lanes := W * 64
	if len(sources) > lanes {
		panic(fmt.Sprintf("sssp: MS-BFS batch of %d sources exceeds %d lanes", len(sources), lanes))
	}
	if W > 8 {
		panic(fmt.Sprintf("sssp: MS-BFS width %d words exceeds 8", W))
	}
	offsets, neighbors := g.CSR()
	s.ensureWide(n, W)
	wseen, wfront, wnext := s.wseen, s.wfront, s.wnext

	for i, src := range sources {
		if src < 0 || src >= n {
			panic(fmt.Sprintf("sssp: source %d out of range [0,%d)", src, n))
		}
		row := rows[i]
		for j := range row {
			row[j] = Unreachable
		}
		row[src] = 0
	}

	q := s.queue[:0]
	for i, src := range sources {
		word := i >> 6
		bit := uint64(1) << (uint(i) & 63)
		base := src * W
		seeded := false
		for w := 0; w < W; w++ {
			if wseen[base+w] != 0 {
				seeded = true
				break
			}
		}
		if !seeded {
			q = append(q, int32(src))
		}
		wseen[base+word] |= bit
		wfront[base+word] |= bit
	}

	// Metrics accumulate in registers and flush once per batch; a "node" is
	// one (lane, node) visit, the scalar-equivalent work.
	var edges int64
	visits := int64(len(sources))
	peak := len(q)
	coresPeak := 1

	r := &s.par
	if par > 1 {
		s.ensurePar(n, par)
		ensureParPool(par)
		r.offsets, r.neighbors = offsets, neighbors
		r.n = n
		r.W = W
		r.nextMark = s.nextMark
	}

	nextQ := s.nextQ[:0]
	for level := int32(1); len(q) > 0; level++ {
		nextQ = nextQ[:0]

		// Scan: expand the frontier's adjacency, advancing every lane that
		// still needs each edge.
		if par > 1 && len(q) >= parSerialCutoffWide {
			kk := par
			if mc := (len(q) + parChunkWide - 1) / parChunkWide; kk > mc {
				kk = mc
			}
			if kk > coresPeak {
				coresPeak = kk
			}
			r.phase = parPhaseWideScan
			r.q = q
			r.lo, r.hi = 0, len(q)
			r.wseen, r.wfront, r.wnext = wseen, wfront, wnext
			r.dispatch(kk)
			for i := 0; i < kk; i++ {
				ws := &r.workers[i]
				edges += ws.edges
				// Clear the membership marks serially while merging: mark
				// words are shared across workers' nodes, so the barrier is
				// the only safe place to flip them back.
				for _, v := range ws.queue {
					s.nextMark[v>>6] &^= 1 << (uint(v) & 63)
				}
				nextQ = append(nextQ, ws.queue...)
			}
		} else if W == 4 {
			// Unrolled W=4 fast path: the four visit words share a cache
			// line, so load them unconditionally and branch once on the
			// or-tree — the common "nothing new" case takes no per-word
			// branches.
			for _, u := range q {
				base := int(u) * 4
				f0, f1, f2, f3 := wfront[base], wfront[base+1], wfront[base+2], wfront[base+3]
				wfront[base], wfront[base+1], wfront[base+2], wfront[base+3] = 0, 0, 0, 0
				edges += int64(offsets[u+1] - offsets[u])
				for _, v := range neighbors[offsets[u]:offsets[u+1]] {
					vb := int(v) * 4
					sv := wseen[vb : vb+4 : vb+4]
					n0 := f0 &^ sv[0]
					n1 := f1 &^ sv[1]
					n2 := f2 &^ sv[2]
					n3 := f3 &^ sv[3]
					if n0|n1|n2|n3 == 0 {
						continue
					}
					nx := wnext[vb : vb+4 : vb+4]
					nx[0] |= n0
					nx[1] |= n1
					nx[2] |= n2
					nx[3] |= n3
					sv[0] |= n0
					sv[1] |= n1
					sv[2] |= n2
					sv[3] |= n3
					mw := v >> 6
					mb := uint64(1) << (uint(v) & 63)
					if s.nextMark[mw]&mb == 0 {
						s.nextMark[mw] |= mb
						nextQ = append(nextQ, v)
					}
				}
			}
			for _, v := range nextQ {
				s.nextMark[v>>6] &^= 1 << (uint(v) & 63)
			}
		} else {
			var f [8]uint64
			for _, u := range q {
				base := int(u) * W
				for w := 0; w < W; w++ {
					f[w] = wfront[base+w]
					wfront[base+w] = 0
				}
				edges += int64(offsets[u+1] - offsets[u])
				for _, v := range neighbors[offsets[u]:offsets[u+1]] {
					vb := int(v) * W
					sv := wseen[vb : vb+W : vb+W]
					nx := wnext[vb : vb+W : vb+W]
					anyNew := false
					for w := 0; w < W; w++ {
						fw := f[w]
						if fw == 0 {
							continue
						}
						nw := fw &^ sv[w]
						if nw == 0 {
							continue
						}
						nx[w] |= nw
						sv[w] |= nw
						anyNew = true
					}
					if anyNew {
						mw := v >> 6
						mb := uint64(1) << (uint(v) & 63)
						if s.nextMark[mw]&mb == 0 {
							s.nextMark[mw] |= mb
							nextQ = append(nextQ, v)
						}
					}
				}
			}
			for _, v := range nextQ {
				s.nextMark[v>>6] &^= 1 << (uint(v) & 63)
			}
		}

		// Emit: write the newly reached (lane, node) distances. wnext is
		// read-only here and each queue entry is unique, so the parallel
		// split needs no atomics beyond the chunk cursor.
		if par > 1 && len(nextQ) >= parSerialCutoffWide {
			kk := par
			if mc := (len(nextQ) + parChunkWideEmit - 1) / parChunkWideEmit; kk > mc {
				kk = mc
			}
			if kk > coresPeak {
				coresPeak = kk
			}
			r.phase = parPhaseWideEmit
			r.q = nextQ
			r.lo, r.hi = 0, len(nextQ)
			r.level = level
			r.wnext = wnext
			r.rows = rows
			r.dispatch(kk)
			for i := 0; i < kk; i++ {
				visits += r.workers[i].visits
			}
			r.rows = nil
		} else {
			// Word-blocked: one pass per visit word keeps the live row write
			// streams at 64, matching the 64-lane kernel's cache/TLB footprint
			// (a single pass interleaving all W*64 rows thrashes both).
			for w := 0; w < W; w++ {
				lbase := w << 6
				for _, v := range nextQ {
					x := wnext[int(v)*W+w]
					if x == 0 {
						continue
					}
					visits += int64(bits.OnesCount64(x))
					for x != 0 {
						rows[lbase+bits.TrailingZeros64(x)][v] = level
						x &= x - 1
					}
				}
			}
		}

		if len(nextQ) > peak {
			peak = len(nextQ)
		}
		wfront, wnext = wnext, wfront
		q, nextQ = nextQ, q
	}
	// Hand the (possibly swapped) slices back; wfront/wnext and the mark
	// bitmap are all-zero again at this point.
	s.wfront, s.wnext = wfront, wnext
	s.queue, s.nextQ = q[:0], nextQ[:0]
	km := &kernelMetrics[kernelForWidth(W)]
	km.calls.Add(1)
	km.sources.Add(int64(len(sources)))
	km.nodes.Add(visits)
	km.edges.Add(edges)
	peakMax(&km.frontierPeak, int64(peak))
	peakMax(&km.cores, int64(coresPeak))
	observeSweep(kernelForWidth(W), start, int64(len(sources)), visits, edges)
}

// wideScanChunks is one worker's share of a parallel wide scan: claim
// frontier chunks, CAS-claim newly set lane bits on the shared seen words,
// OR them into the next-frontier words, and claim next-queue membership
// through the mark bitmap so exactly one worker queues each node.
//
//convlint:hotpath
//convlint:shared each frontier node appears once in q, so its wfront words have exactly one reader/clearer; wseen and the mark bitmap are CAS-claimed
func (r *parRun) wideScanChunks(ws *parWorkerState) {
	offsets, neighbors := r.offsets, r.neighbors
	W := r.W
	wseen, wfront, wnext := r.wseen, r.wfront, r.wnext
	mark := r.nextMark
	q, hi := r.q, r.hi
	local := ws.queue[:0]
	var edges int64
	var f [8]uint64
	for {
		start := int(r.cursor.Add(parChunkWide)) - parChunkWide
		if start >= hi {
			break
		}
		end := start + parChunkWide
		if end > hi {
			end = hi
		}
		for _, u := range q[start:end] {
			// u appears once in q, so this worker owns its front words.
			base := int(u) * W
			for w := 0; w < W; w++ {
				f[w] = wfront[base+w]
				wfront[base+w] = 0
			}
			edges += int64(offsets[u+1] - offsets[u])
			for _, v := range neighbors[offsets[u]:offsets[u+1]] {
				vb := int(v) * W
				anyNew := false
				for w := 0; w < W; w++ {
					fw := f[w]
					if fw == 0 {
						continue
					}
					for {
						old := atomic.LoadUint64(&wseen[vb+w])
						nw := fw &^ old
						if nw == 0 {
							break
						}
						if atomic.CompareAndSwapUint64(&wseen[vb+w], old, old|nw) {
							orUint64(&wnext[vb+w], nw)
							anyNew = true
							break
						}
					}
				}
				if anyNew {
					mw := v >> 6
					mb := uint64(1) << (uint(v) & 63)
					for {
						old := atomic.LoadUint64(&mark[mw])
						if old&mb != 0 {
							break
						}
						if atomic.CompareAndSwapUint64(&mark[mw], old, old|mb) {
							local = append(local, v)
							break
						}
					}
				}
			}
		}
	}
	ws.queue = local
	ws.edges = edges
}

// wideEmitChunks is one worker's share of a parallel wide emit: claim chunks
// of the (duplicate-free) next queue and write each node's newly reached
// lane distances. Distinct nodes write distinct row elements, so every write
// is plain.
//
//convlint:hotpath
//convlint:shared wnext is read-only during emit; the scan/emit barrier orders the writes
func (r *parRun) wideEmitChunks(ws *parWorkerState) {
	W := r.W
	wnext := r.wnext
	rows := r.rows
	level := r.level
	q, hi := r.q, r.hi
	var visits int64
	for {
		start := int(r.cursor.Add(parChunkWideEmit)) - parChunkWideEmit
		if start >= hi {
			break
		}
		end := start + parChunkWideEmit
		if end > hi {
			end = hi
		}
		// Word-blocked like the serial emit: 64 live row streams per pass.
		for w := 0; w < W; w++ {
			lbase := w << 6
			for _, v := range q[start:end] {
				x := wnext[int(v)*W+w]
				if x == 0 {
					continue
				}
				visits += int64(bits.OnesCount64(x))
				for x != 0 {
					rows[lbase+bits.TrailingZeros64(x)][v] = level
					x &= x - 1
				}
			}
		}
	}
	ws.visits = visits
}
