package sssp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// path5 builds the path 0-1-2-3-4.
func path5(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
}

func TestKernelMetricsTopDown(t *testing.T) {
	g := path5(t)
	dist := make([]int32, 5)
	before := SnapshotMetrics()
	BFSWith(g, 0, dist, TopDown, nil)
	d := SnapshotMetrics().Sub(before)
	if d.TopDown.Calls != 1 || d.TopDown.Sources != 1 {
		t.Fatalf("topdown calls/sources = %d/%d, want 1/1", d.TopDown.Calls, d.TopDown.Sources)
	}
	if d.TopDown.Nodes != 5 {
		t.Fatalf("topdown nodes = %d, want 5", d.TopDown.Nodes)
	}
	// Every directed edge is examined exactly once: 2*4 = 8.
	if d.TopDown.Edges != 8 {
		t.Fatalf("topdown edges = %d, want 8", d.TopDown.Edges)
	}
	// Path frontiers are single nodes; the peak is a process-wide high-water
	// mark so other tests may have pushed it higher, but it must be >= 1.
	if SnapshotMetrics().TopDown.FrontierPeak < 1 {
		t.Fatalf("topdown frontier peak = %d, want >= 1", SnapshotMetrics().TopDown.FrontierPeak)
	}
}

func TestKernelMetricsAttributePerEngine(t *testing.T) {
	g := path5(t)
	dist := make([]int32, 5)
	before := SnapshotMetrics()
	BFSWith(g, 0, dist, DirectionOpt, nil)
	BFSWith(g, 0, dist, BitParallel64, nil)
	d := SnapshotMetrics().Sub(before)
	if d.DirectionOpt.Calls != 1 {
		t.Errorf("diropt calls = %d, want 1", d.DirectionOpt.Calls)
	}
	if d.BitParallel64.Calls != 1 || d.BitParallel64.Sources != 1 {
		t.Errorf("bitparallel calls/sources = %d/%d, want 1/1",
			d.BitParallel64.Calls, d.BitParallel64.Sources)
	}
	if d.TopDown.Calls != 0 {
		t.Errorf("topdown calls = %d, want 0 (no topdown work ran)", d.TopDown.Calls)
	}
	if tot := d.Total(); tot.Calls != 2 {
		t.Errorf("total calls = %d, want 2", tot.Calls)
	}
}

// A star traversed from its center forces the Beamer heuristic to switch to
// bottom-up (frontier edges = n >> unexplored edges / alpha), so the
// direction-switch counter must move.
func TestDirectionOptSwitchCounter(t *testing.T) {
	const n = 512
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v})
	}
	g := graph.FromEdges(n, edges)
	dist := make([]int32, n)
	before := SnapshotMetrics()
	BFSWith(g, 0, dist, DirectionOpt, nil)
	d := SnapshotMetrics().Sub(before)
	if d.DirectionOpt.Switches < 1 {
		t.Fatalf("diropt switches = %d, want >= 1 on a star from its center", d.DirectionOpt.Switches)
	}
	if d.DirectionOpt.BottomUpSteps < 1 {
		t.Fatalf("diropt bottom-up steps = %d, want >= 1", d.DirectionOpt.BottomUpSteps)
	}
	if d.DirectionOpt.Nodes != n {
		t.Fatalf("diropt nodes = %d, want %d", d.DirectionOpt.Nodes, n)
	}
}

func TestBatchFillMetric(t *testing.T) {
	g := path5(t)
	sources := []int{0, 1, 2}
	before := SnapshotMetrics()
	AllSourcesEngineFunc(g, sources, 1, BitParallel64, func(src int, dist []int32) {})
	d := SnapshotMetrics().Sub(before)
	if d.BitParallel64.Calls != 1 || d.BitParallel64.Sources != 3 {
		t.Fatalf("batch calls/sources = %d/%d, want 1/3", d.BitParallel64.Calls, d.BitParallel64.Sources)
	}
	want := 3.0 / 64.0
	if fill := d.BitParallel64.BatchFill(); fill != want {
		t.Fatalf("batch fill = %v, want %v", fill, want)
	}
	// Every (source, node) pair on a connected graph is one visit.
	if d.BitParallel64.Nodes != 15 {
		t.Fatalf("batch visits = %d, want 15", d.BitParallel64.Nodes)
	}
}

func TestEnvelopeMetrics(t *testing.T) {
	g := path5(t)
	dist := make([]int32, 5)
	before := SnapshotMetrics()
	MultiSourceBFS(g, []int{0, 4}, dist)
	d := SnapshotMetrics().Sub(before)
	if d.Envelope.Calls != 1 || d.Envelope.Sources != 2 {
		t.Fatalf("envelope calls/sources = %d/%d, want 1/2", d.Envelope.Calls, d.Envelope.Sources)
	}
	if d.Envelope.Nodes != 5 {
		t.Fatalf("envelope nodes = %d, want 5", d.Envelope.Nodes)
	}
}

func TestDijkstraMetrics(t *testing.T) {
	g, err := graph.NewWeighted(3, []graph.WeightedEdge{
		{U: 0, V: 1, Weight: 2}, {U: 1, V: 2, Weight: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]int32, 3)
	before := SnapshotMetrics()
	Dijkstra(g, 0, dist)
	d := SnapshotMetrics().Sub(before)
	if d.Dijkstra.Calls != 1 || d.Dijkstra.Nodes != 3 {
		t.Fatalf("dijkstra calls/nodes = %d/%d, want 1/3", d.Dijkstra.Calls, d.Dijkstra.Nodes)
	}
}

// The kernels register their counters with the obs registry at init; the
// exposition must include them after any BFS ran.
func TestMetricsExposedThroughObs(t *testing.T) {
	g := path5(t)
	dist := make([]int32, 5)
	BFSWith(g, 0, dist, TopDown, nil)
	var buf bytes.Buffer
	if err := obs.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sssp.topdown.calls", "sssp.diropt.switches", "sssp.bitparallel64.sources",
		"sssp.envelope.edges_scanned", "sssp.dijkstra.calls",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("obs exposition missing %q", want)
		}
	}
}

func TestSweepHistogramsObservePerKernel(t *testing.T) {
	g := path5(t)
	dist := make([]int32, 5)
	h := &kernelHist[kTopDown]
	before := h.sweepNS.Snapshot()
	nodesBefore := h.nodesPerSource.Snapshot()
	edgesBefore := h.edgesPerSource.Snapshot()
	BFSWith(g, 0, dist, TopDown, nil)
	BFSWith(g, 4, dist, TopDown, nil)
	if d := h.sweepNS.Snapshot().Sub(before); d.Count != 2 {
		t.Errorf("sweep_ns delta count = %d, want 2", d.Count)
	}
	d := h.nodesPerSource.Snapshot().Sub(nodesBefore)
	if d.Count != 2 || d.Sum != 10 {
		t.Errorf("nodes_per_source delta count/sum = %d/%d, want 2/10 (5 nodes per sweep)", d.Count, d.Sum)
	}
	if d := h.edgesPerSource.Snapshot().Sub(edgesBefore); d.Count != 2 || d.Sum != 16 {
		t.Errorf("edges_per_source delta count/sum = %d/%d, want 2/16", d.Count, d.Sum)
	}
}

func TestSweepHistogramsExposed(t *testing.T) {
	g := path5(t)
	dist := make([]int32, 5)
	BFSWith(g, 0, dist, TopDown, nil)
	var buf bytes.Buffer
	if err := obs.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sssp.sweep_ns histogram",
		`sssp.sweep_ns_count{kernel="topdown"}`,
		`sssp.nodes_per_source_count{kernel="topdown"}`,
		`sssp.edges_per_source_count{kernel="topdown"}`,
		`sssp.sweep_ns_count{kernel="repair"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
