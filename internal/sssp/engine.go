package sssp

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Engine selects the BFS kernel used by the unweighted shortest-path
// entry points. The engines are interchangeable: every one of them produces
// bit-identical distances (and reached counts / eccentricities) — they
// differ only in throughput on different workload shapes.
type Engine int

const (
	// Auto picks the best kernel for the call shape: direction-optimizing
	// for single sources, bit-parallel batching for multi-source sweeps.
	// A process-wide override can be installed with SetDefaultEngine.
	Auto Engine = iota
	// TopDown is the classic level-by-level scalar BFS — the baseline the
	// paper counts as one unit of budget. Kept selectable for ablations.
	TopDown
	// DirectionOpt is a Beamer-style direction-optimizing BFS: it starts
	// top-down and switches to bottom-up scanning of the unvisited set when
	// the frontier grows past a fraction of the unexplored edges, which
	// skips most edge examinations on small-diameter graphs.
	DirectionOpt
	// BitParallel64 batches up to 64 sources into one sweep, tracking
	// per-node visit sets as machine words (an MS-BFS). Only the
	// multi-source drivers exploit the batching; for a single source it
	// degenerates to a one-bit sweep and is selectable mainly for testing.
	BitParallel64
)

// String returns the engine's flag-friendly name.
func (e Engine) String() string {
	switch e {
	case Auto:
		return "auto"
	case TopDown:
		return "topdown"
	case DirectionOpt:
		return "diropt"
	case BitParallel64:
		return "bitparallel64"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseEngine converts a flag value into an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return Auto, nil
	case "topdown", "scalar":
		return TopDown, nil
	case "diropt", "direction-optimizing", "beamer":
		return DirectionOpt, nil
	case "bitparallel64", "bitparallel", "msbfs":
		return BitParallel64, nil
	default:
		return Auto, fmt.Errorf("sssp: unknown engine %q (want auto|topdown|diropt|bitparallel64)", s)
	}
}

// defaultEngine is the process-wide engine that Auto resolves to; Auto
// itself means "use the built-in heuristics".
var defaultEngine atomic.Int32

// SetDefaultEngine installs a process-wide engine override used whenever a
// caller passes (or defaults to) Auto. Ablation harnesses set this once at
// startup; normal callers never touch it.
func SetDefaultEngine(e Engine) { defaultEngine.Store(int32(e)) }

// DefaultEngine returns the current process-wide engine override (Auto when
// none is installed).
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// msBatchBits is the MS-BFS lane width: one source per bit of a uint64.
const msBatchBits = 64

// msAutoThreshold is the minimum source count for which Auto prefers the
// bit-parallel batch engine in the multi-source drivers; below it the
// per-batch setup (three words per node) isn't worth amortizing.
const msAutoThreshold = 8

// resolveSingle maps an engine request to the kernel used for one source.
func resolveSingle(e Engine) Engine {
	if e == Auto {
		e = DefaultEngine()
	}
	if e == Auto {
		return DirectionOpt
	}
	return e
}

// resolveBatch maps an engine request to the kernel used by a multi-source
// driver over nsources sources.
func resolveBatch(e Engine, nsources int) Engine {
	if e == Auto {
		e = DefaultEngine()
	}
	if e == Auto {
		if nsources >= msAutoThreshold {
			return BitParallel64
		}
		return DirectionOpt
	}
	return e
}

// Scratch holds every buffer a BFS kernel needs beyond the caller's dist
// slice: the index-cursor frontier queue, the bottom-up frontier bitmaps,
// and the bit-parallel visit words. A Scratch grows to the largest graph it
// has served and is then allocation-free; it is not safe for concurrent
// use. Parallel drivers keep one Scratch per worker; single-shot entry
// points borrow one from an internal pool.
type Scratch struct {
	queue []int32 // frontier queue, cursor-indexed (cap >= n)
	cur   []uint64
	nxt   []uint64 // bottom-up frontier bitmaps, (n+63)/64 words

	// Bit-parallel (MS-BFS) state: one word per node.
	seen  []uint64
	front []uint64
	next  []uint64
	nextQ []int32
	rows  [][]int32 // msBatchBits distance rows of length n

	// One-lane views for single-source calls routed through the batch
	// kernel, so BFSWith stays allocation-free on every engine (oneRow[0]
	// is cleared after each call; the caller's dist buffer is not retained).
	oneSrc [1]int
	oneRow [1][]int32
}

// NewScratch returns a Scratch pre-sized for graphs of n nodes.
func NewScratch(n int) *Scratch {
	s := &Scratch{}
	s.ensure(n)
	return s
}

// ensure grows the single-source buffers to serve an n-node graph.
func (s *Scratch) ensure(n int) {
	if cap(s.queue) < n {
		s.queue = make([]int32, 0, n)
	}
	words := (n + 63) / 64
	if len(s.cur) < words {
		s.cur = make([]uint64, words)
		s.nxt = make([]uint64, words)
	}
}

// ensureMS grows the bit-parallel buffers to serve an n-node graph and
// zeroes the visit words.
func (s *Scratch) ensureMS(n int) {
	s.ensure(n)
	if len(s.seen) < n {
		s.seen = make([]uint64, n)
		s.front = make([]uint64, n)
		s.next = make([]uint64, n)
	} else {
		// front/next are left all-zero by msBFSBatch; only seen needs
		// clearing.
		clearWords(s.seen[:n])
	}
	if cap(s.nextQ) < n {
		s.nextQ = make([]int32, 0, n)
	}
}

// ensureRows returns the scratch's msBatchBits distance rows of exactly
// length n, (re)allocating only when the graph size changes. Only the batch
// drivers call this; single-source bit-parallel calls write into the
// caller's dist buffer and never pay for the row block.
func (s *Scratch) ensureRows(n int) [][]int32 {
	if s.rows == nil || len(s.rows[0]) != n {
		s.rows = make([][]int32, msBatchBits)
		backing := make([]int32, msBatchBits*n)
		for i := range s.rows {
			s.rows[i] = backing[i*n : (i+1)*n]
		}
	}
	return s.rows
}

func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// scratchPool recycles Scratches for entry points called without one.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

func getScratch(n int) *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.ensure(n)
	return s
}

func putScratch(s *Scratch) { scratchPool.Put(s) }
