package sssp

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// Engine selects the BFS kernel used by the unweighted shortest-path
// entry points. The engines are interchangeable: every one of them produces
// bit-identical distances (and reached counts / eccentricities) — they
// differ only in throughput on different workload shapes.
type Engine int

const (
	// Auto picks the best kernel for the call shape: direction-optimizing
	// for single sources, bit-parallel batching for multi-source sweeps.
	// A process-wide override can be installed with SetDefaultEngine.
	Auto Engine = iota
	// TopDown is the classic level-by-level scalar BFS — the baseline the
	// paper counts as one unit of budget. Kept selectable for ablations.
	// With parallelism > 1 the level-synchronous parallel kernel runs the
	// same top-down levels split across a worker pool.
	TopDown
	// DirectionOpt is a Beamer-style direction-optimizing BFS: it starts
	// top-down and switches to bottom-up scanning of the unvisited set when
	// the frontier grows past a fraction of the unexplored edges, which
	// skips most edge examinations on small-diameter graphs. With
	// parallelism > 1 both directions split their work across a worker pool
	// (top-down splits the frontier, bottom-up partitions the unvisited
	// bitmap range).
	DirectionOpt
	// BitParallel64 batches up to 64 sources into one sweep, tracking
	// per-node visit sets as machine words (an MS-BFS). Only the
	// multi-source drivers exploit the batching; for a single source it
	// degenerates to a one-bit sweep and is selectable mainly for testing.
	BitParallel64
	// BitParallel256 is the 4-word MS-BFS: 256 sources per batch, four visit
	// words per node. Batch setup (row init, visit-word clearing) amortizes
	// over 4x more sources than BitParallel64 at the cost of touching four
	// words per edge examination.
	BitParallel256
	// BitParallel512 is the 8-word MS-BFS: 512 sources per batch. The widest
	// kernel; worthwhile on sweeps with thousands of sources where setup and
	// per-edge revisits dominate.
	BitParallel512
)

// engineNames is the single source of truth binding engines to their
// flag-friendly spellings. String and ParseEngine both derive from it, so
// -engine stays self-documenting as kernels are added (round-trip pinned by
// TestEngineNameRoundTrip).
var engineNames = []struct {
	e    Engine
	name string
}{
	{Auto, "auto"},
	{TopDown, "topdown"},
	{DirectionOpt, "diropt"},
	{BitParallel64, "bitparallel64"},
	{BitParallel256, "bitparallel256"},
	{BitParallel512, "bitparallel512"},
}

// engineAliases maps additional accepted spellings to engines.
var engineAliases = map[string]Engine{
	"":                     Auto,
	"scalar":               TopDown,
	"direction-optimizing": DirectionOpt,
	"beamer":               DirectionOpt,
	"bitparallel":          BitParallel64,
	"msbfs":                BitParallel64,
}

// String returns the engine's flag-friendly name.
func (e Engine) String() string {
	for _, en := range engineNames {
		if en.e == e {
			return en.name
		}
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// EngineNames lists the canonical -engine spellings in declaration order.
func EngineNames() []string {
	names := make([]string, len(engineNames))
	for i, en := range engineNames {
		names[i] = en.name
	}
	return names
}

// ParseEngine converts a flag value into an Engine.
func ParseEngine(s string) (Engine, error) {
	for _, en := range engineNames {
		if en.name == s {
			return en.e, nil
		}
	}
	if e, ok := engineAliases[s]; ok {
		return e, nil
	}
	return Auto, fmt.Errorf("sssp: unknown engine %q (want %s)", s, strings.Join(EngineNames(), "|"))
}

// Lanes returns the engine's multi-source batch width: how many sources one
// kernel invocation traverses together. Scalar kernels (and Auto) report 0.
func (e Engine) Lanes() int {
	switch e {
	case BitParallel64:
		return 64
	case BitParallel256:
		return 256
	case BitParallel512:
		return 512
	}
	return 0
}

// wideWords returns the number of visit words per node for a bit-parallel
// engine (1 for BitParallel64), or 0 for scalar engines.
func (e Engine) wideWords() int { return e.Lanes() / 64 }

// defaultEngine is the process-wide engine that Auto resolves to; Auto
// itself means "use the built-in heuristics".
var defaultEngine atomic.Int32

// SetDefaultEngine installs a process-wide engine override used whenever a
// caller passes (or defaults to) Auto. Ablation harnesses set this once at
// startup; normal callers never touch it.
func SetDefaultEngine(e Engine) { defaultEngine.Store(int32(e)) }

// DefaultEngine returns the current process-wide engine override (Auto when
// none is installed).
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// defaultParallelism is the process-wide intra-traversal core count used by
// entry points called without an explicit parallelism (0 or 1 = serial).
var defaultParallelism atomic.Int32

// SetDefaultParallelism installs the process-wide intra-traversal
// parallelism: the number of cores one BFS call may split its frontiers
// across when the caller does not pass an explicit value (convpairs -par
// sets it once at startup). Values <= 1 mean serial traversal, the default.
// Multi-source drivers are unaffected: they split their worker budget
// between across-source and intra-traversal parallelism themselves.
func SetDefaultParallelism(p int) { defaultParallelism.Store(int32(p)) }

// DefaultParallelism returns the process-wide intra-traversal parallelism
// (0 when unset, meaning serial).
func DefaultParallelism() int { return int(defaultParallelism.Load()) }

// maxTraversalWorkers caps intra-traversal parallelism (and the shared
// traversal worker pool); far above any realistic core count.
const maxTraversalWorkers = 64

// resolvePar maps a parallelism request to the worker count a kernel runs
// with: 0 falls back to the process default, and everything is clamped to
// [1, maxTraversalWorkers].
func resolvePar(par int) int {
	if par == 0 {
		par = DefaultParallelism()
	}
	if par < 1 {
		return 1
	}
	if par > maxTraversalWorkers {
		return maxTraversalWorkers
	}
	return par
}

// msBatchBits is the base MS-BFS lane width: one source per bit of a uint64.
const msBatchBits = 64

// msAutoThreshold is the minimum source count for which Auto prefers the
// bit-parallel batch engine in the multi-source drivers; below it the
// per-batch setup (three words per node) isn't worth amortizing.
const msAutoThreshold = 8

// resolveSingle maps an engine request to the kernel used for one source.
func resolveSingle(e Engine) Engine {
	if e == Auto {
		e = DefaultEngine()
	}
	if e == Auto {
		return DirectionOpt
	}
	return e
}

// resolveBatch maps an engine request to the kernel used by a multi-source
// driver over nsources sources. Auto stays on the 64-lane batch kernel: the
// wide kernels are explicit opt-ins because their per-worker row blocks are
// Lanes()*n ints (see AllSourcesParEngineFunc for the core split that keeps
// that affordable).
func resolveBatch(e Engine, nsources int) Engine {
	if e == Auto {
		e = DefaultEngine()
	}
	if e == Auto {
		if nsources >= msAutoThreshold {
			return BitParallel64
		}
		return DirectionOpt
	}
	return e
}

// ClampWorkers resolves a worker-count request against a job count: <= 0
// asks for GOMAXPROCS, the result never exceeds jobs, and is at least 1.
// This is the one shared clamping rule for every parallel driver (sssp
// sweeps, dist sessions pools, topk shards, core extraction).
func ClampWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Scratch holds every buffer a BFS kernel needs beyond the caller's dist
// slice: the index-cursor frontier queue, the bottom-up frontier bitmaps,
// the bit-parallel visit words (one per node for the 64-lane kernel, W per
// node for the wide kernels), and the parallel kernels' shared visited
// bitmap plus per-worker state. A Scratch grows to the largest graph (and
// widest kernel, and highest parallelism) it has served and is then
// allocation-free; it is not safe for concurrent use by multiple callers —
// the parallel kernels hand disjoint pieces of it to the traversal worker
// pool internally. Parallel drivers keep one Scratch per worker;
// single-shot entry points borrow one from an internal pool.
type Scratch struct {
	queue []int32 // frontier queue, cursor-indexed (cap >= n)
	cur   []uint64
	nxt   []uint64 // bottom-up frontier bitmaps, (n+63)/64 words

	// Bit-parallel (MS-BFS) state: one word per node.
	seen  []uint64
	front []uint64
	next  []uint64
	nextQ []int32

	// Wide MS-BFS state: W words per node, flattened node-major
	// (node v's words at [v*W, (v+1)*W)).
	wseen  []uint64
	wfront []uint64
	wnext  []uint64
	// nextMark is the wide kernels' next-queue dedup bitmap, one bit per
	// node; kernels leave it all-zero.
	nextMark []uint64

	// vis is the parallel scalar kernels' shared visited bitmap (claimed
	// with CAS during parallel top-down levels).
	vis []uint64

	// par is the reusable fork-join state handed to the traversal worker
	// pool; it embeds the per-worker next-queues and counters.
	par parRun

	// rows is the batch drivers' distance-row block: up to rowsLanes rows of
	// length rowsN, all views into the grow-only rowsBacking array (see
	// ensureRows).
	rows        [][]int32
	rowsBacking []int32
	rowsN       int
	rowsLanes   int

	// One-lane views for single-source calls routed through the batch
	// kernel, so BFSWith stays allocation-free on every engine (oneRow[0]
	// is cleared after each call; the caller's dist buffer is not retained).
	oneSrc [1]int
	oneRow [1][]int32
}

// NewScratch returns a Scratch pre-sized for graphs of n nodes.
func NewScratch(n int) *Scratch {
	s := &Scratch{}
	s.ensure(n)
	return s
}

// ensure grows the single-source buffers to serve an n-node graph.
func (s *Scratch) ensure(n int) {
	if cap(s.queue) < n {
		s.queue = make([]int32, 0, n)
	}
	words := (n + 63) / 64
	if len(s.cur) < words {
		s.cur = make([]uint64, words)
		s.nxt = make([]uint64, words)
	}
}

// ensureMS grows the bit-parallel buffers to serve an n-node graph and
// zeroes the visit words.
func (s *Scratch) ensureMS(n int) {
	s.ensure(n)
	if len(s.seen) < n {
		s.seen = make([]uint64, n)
		s.front = make([]uint64, n)
		s.next = make([]uint64, n)
	} else {
		// front/next are left all-zero by msBFSBatch; only seen needs
		// clearing.
		clearWords(s.seen[:n])
	}
	if cap(s.nextQ) < n {
		s.nextQ = make([]int32, 0, n)
	}
}

// ensureWide grows the wide MS-BFS buffers for an n-node graph and W visit
// words per node, zeroing the seen words. front/next are left all-zero by
// the kernel (like their one-word siblings), and so is nextMark.
//
//convlint:shared setup runs before any worker is dispatched; the wide words are CAS-accessed only during a scan phase
func (s *Scratch) ensureWide(n, W int) {
	s.ensure(n)
	need := n * W
	if cap(s.wseen) < need {
		s.wseen = make([]uint64, need)
		s.wfront = make([]uint64, need)
		s.wnext = make([]uint64, need)
	}
	s.wseen = s.wseen[:cap(s.wseen)]
	s.wfront = s.wfront[:cap(s.wfront)]
	s.wnext = s.wnext[:cap(s.wnext)]
	clearWords(s.wseen[:need])
	words := (n + 63) / 64
	if len(s.nextMark) < words {
		s.nextMark = make([]uint64, words)
	}
	if cap(s.nextQ) < n {
		s.nextQ = make([]int32, 0, n)
	}
}

// ensurePar grows the parallel kernels' shared visited bitmap and the
// per-worker state block for k workers.
func (s *Scratch) ensurePar(n, k int) {
	s.ensure(n)
	words := (n + 63) / 64
	if len(s.vis) < words {
		s.vis = make([]uint64, words)
	}
	s.par.ensureWorkers(k, n)
}

// ensureRows returns lanes distance rows of exactly length n, all views into
// one grow-only backing array. The backing (and the row-header block) only
// ever grow: eval suites alternating between graph sizes or lane widths
// re-point the row headers without reallocating, so a warmed Scratch serves
// any (n, lanes) it has ever seen allocation-free (pinned by
// TestEnsureRowsGrowOnly). Only the batch drivers call this; single-source
// bit-parallel calls write into the caller's dist buffer and never pay for
// the row block.
func (s *Scratch) ensureRows(n, lanes int) [][]int32 {
	if s.rowsN == n && lanes <= s.rowsLanes {
		return s.rows[:lanes]
	}
	if need := lanes * n; cap(s.rowsBacking) < need {
		s.rowsBacking = make([]int32, need)
	}
	backing := s.rowsBacking[:cap(s.rowsBacking)]
	if cap(s.rows) < lanes {
		s.rows = make([][]int32, lanes)
	}
	s.rows = s.rows[:cap(s.rows)]
	// Re-point every header the backing can hold at length n, so a later
	// call asking for more lanes at this n is a pure reslice.
	maxLanes := len(s.rows)
	if n > 0 && len(backing)/n < maxLanes {
		maxLanes = len(backing) / n
	}
	for i := 0; i < maxLanes; i++ {
		s.rows[i] = backing[i*n : (i+1)*n]
	}
	s.rows = s.rows[:maxLanes]
	s.rowsN, s.rowsLanes = n, maxLanes
	return s.rows[:lanes]
}

func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// scratchPool recycles Scratches for entry points called without one.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

func getScratch(n int) *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.ensure(n)
	return s
}

func putScratch(s *Scratch) { scratchPool.Put(s) }
