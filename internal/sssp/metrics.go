package sssp

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Kernel metrics: every BFS/Dijkstra kernel accumulates plain-int counters
// in registers during the traversal and flushes them with a handful of
// atomic adds when the call returns — one flush per source (or per 64-source
// batch), never per edge, so instrumentation stays invisible next to the
// traversal itself and the //convlint:hotpath kernels remain allocation-free
// (backed by TestBFSWithZeroAllocs).
//
// Counters are attributed per kernel so a run shows where its SSSPs really
// executed: an Auto sweep lands on diropt or bitparallel64 depending on
// shape, and the paper's cost model (1 SSSP = 1 unit) can be compared
// against the machine-level work (edges scanned) each engine actually did.

// kernelIndex identifies one instrumented kernel.
type kernelIndex int

const (
	kTopDown kernelIndex = iota
	kDirOpt
	kBitParallel
	kBitParallel256 // 4-word wide MS-BFS (256 lanes)
	kBitParallel512 // 8-word wide MS-BFS (512 lanes)
	kEnvelope       // MultiSourceBFS lower-envelope sweep
	kDijkstra
	kRepair    // dynsssp decrease-only batch repair (incremental paired sweep)
	kPrunedBFS // Δ-threshold bounded second-snapshot BFS (pruned extraction)
	numKernels
)

// kernelLaneWidth is each kernel's multi-source batch width (0 for scalar
// kernels, which traverse one source per call).
var kernelLaneWidth = [numKernels]int{
	kBitParallel:    64,
	kBitParallel256: 256,
	kBitParallel512: 512,
}

// kernelCounters is the live atomic counter block of one kernel.
type kernelCounters struct {
	calls        atomic.Int64
	sources      atomic.Int64
	nodes        atomic.Int64
	edges        atomic.Int64
	tdSteps      atomic.Int64
	buSteps      atomic.Int64
	switches     atomic.Int64
	frontierPeak atomic.Int64
	cores        atomic.Int64
}

var kernelMetrics [numKernels]kernelCounters

// kernelHists are the counters' distribution siblings: where the atomic
// totals say how much work all sweeps did, these histograms say how it was
// spread — per-sweep wall time and per-source nodes/edges visited. The
// per-source distributions are exactly the evidence the Δ-threshold pruning
// roadmap item needs (Borassi/Bergamini justify cutoffs with per-source
// visit-count distributions), which plain totals aggregate away.
type kernelHists struct {
	sweepNS        *obs.Histogram
	nodesPerSource *obs.Histogram
	edgesPerSource *obs.Histogram
}

var kernelHist [numKernels]kernelHists

// observeSweep records one kernel call's distribution samples. Called once
// per call at the existing counter-flush points — the hot traversal loops
// stay untouched and Observe itself is lock- and allocation-free.
//
//convlint:hotpath
func observeSweep(i kernelIndex, start time.Time, sources, nodes, edges int64) {
	h := &kernelHist[i]
	//convlint:nondet sweep latency is observational, not part of results
	h.sweepNS.Observe(time.Since(start).Nanoseconds())
	if sources > 0 {
		h.nodesPerSource.Observe(nodes / sources)
		h.edgesPerSource.Observe(edges / sources)
	}
}

// peakMax raises a high-water-mark counter to v if v is larger.
func peakMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// KernelCounters is a point-in-time copy of one kernel's counters.
type KernelCounters struct {
	// Calls counts kernel invocations (for BitParallel64, batches).
	Calls int64
	// Sources counts BFS sources served; equals Calls except for batched
	// kernels, where Sources/Calls is the average batch occupancy.
	Sources int64
	// Nodes and Edges count node visits and edge examinations.
	Nodes int64
	Edges int64
	// TopDownSteps and BottomUpSteps count DirectionOpt levels executed in
	// each mode; Switches counts direction changes.
	TopDownSteps  int64
	BottomUpSteps int64
	Switches      int64
	// FrontierPeak is the largest single-level frontier ever seen (a
	// high-water mark, not a rate).
	FrontierPeak int64
	// CoresUsed is the most workers any single traversal level of this
	// kernel ever ran on (a high-water mark; 1 means every call ran serial).
	CoresUsed int64
	// LaneWidth is the kernel's multi-source batch width (64/256/512 for the
	// bit-parallel kernels, 0 for scalar kernels).
	LaneWidth int
}

// BatchFill is the average MS-BFS lane occupancy in [0, 1]: how full the
// kernel's batches ran. Meaningful for the bit-parallel kernels only.
func (k KernelCounters) BatchFill() float64 {
	if k.Calls == 0 {
		return 0
	}
	lanes := k.LaneWidth
	if lanes == 0 {
		lanes = msBatchBits
	}
	return float64(k.Sources) / float64(k.Calls*int64(lanes))
}

// sub subtracts a previous snapshot counter-wise; high-water marks keep the
// current value (they are not rates and cannot be diffed).
func (k KernelCounters) sub(prev KernelCounters) KernelCounters {
	return KernelCounters{
		Calls:         k.Calls - prev.Calls,
		Sources:       k.Sources - prev.Sources,
		Nodes:         k.Nodes - prev.Nodes,
		Edges:         k.Edges - prev.Edges,
		TopDownSteps:  k.TopDownSteps - prev.TopDownSteps,
		BottomUpSteps: k.BottomUpSteps - prev.BottomUpSteps,
		Switches:      k.Switches - prev.Switches,
		FrontierPeak:  k.FrontierPeak,
		CoresUsed:     k.CoresUsed,
		LaneWidth:     k.LaneWidth,
	}
}

// add accumulates counters; high-water marks take the max.
func (k KernelCounters) add(o KernelCounters) KernelCounters {
	peak := k.FrontierPeak
	if o.FrontierPeak > peak {
		peak = o.FrontierPeak
	}
	cores := k.CoresUsed
	if o.CoresUsed > cores {
		cores = o.CoresUsed
	}
	lanes := k.LaneWidth
	if o.LaneWidth > lanes {
		lanes = o.LaneWidth
	}
	return KernelCounters{
		Calls:         k.Calls + o.Calls,
		Sources:       k.Sources + o.Sources,
		Nodes:         k.Nodes + o.Nodes,
		Edges:         k.Edges + o.Edges,
		TopDownSteps:  k.TopDownSteps + o.TopDownSteps,
		BottomUpSteps: k.BottomUpSteps + o.BottomUpSteps,
		Switches:      k.Switches + o.Switches,
		FrontierPeak:  peak,
		CoresUsed:     cores,
		LaneWidth:     lanes,
	}
}

// MetricsSnapshot is a consistent-enough copy of every kernel's counters
// (each field is read atomically; a snapshot taken mid-sweep may split one
// call's flush). Diff two snapshots with Sub to attribute work to a region
// of a run.
type MetricsSnapshot struct {
	TopDown        KernelCounters
	DirectionOpt   KernelCounters
	BitParallel64  KernelCounters
	BitParallel256 KernelCounters
	BitParallel512 KernelCounters
	Envelope       KernelCounters
	Dijkstra      KernelCounters
	// Repair counts the dynsssp batch-repair kernel: the decrease-only wave
	// that derives a t2 distance vector from the t1 vector plus the snapshot
	// edge delta. Nodes/Edges here are traversal the incremental paired
	// sweep performed instead of a full second BFS.
	Repair KernelCounters
	// PrunedBFS counts the Δ-threshold bounded second-snapshot traversals of
	// pruned extraction: Nodes/Edges are work actually done before the cut.
	// The companion PrunedWork counters say what the cut avoided.
	PrunedBFS KernelCounters
}

// PrunedWork aggregates what the Δ-threshold cutoffs skipped, alongside the
// PrunedBFS kernel counters that say what still ran. Cutoffs and
// Nodes/Edges are exact (abandoned nodes and their adjacency are counted
// when the traversal stops); Levels is the remaining-depth estimate at the
// cut, an upper bound on levels the full traversal would have expanded.
type PrunedWork struct {
	Cutoffs int64
	Nodes   int64
	Edges   int64
	Levels  int64
}

// Sub diffs two PrunedWork readings.
func (p PrunedWork) Sub(prev PrunedWork) PrunedWork {
	return PrunedWork{
		Cutoffs: p.Cutoffs - prev.Cutoffs,
		Nodes:   p.Nodes - prev.Nodes,
		Edges:   p.Edges - prev.Edges,
		Levels:  p.Levels - prev.Levels,
	}
}

var prunedWork struct {
	cutoffs atomic.Int64
	nodes   atomic.Int64
	edges   atomic.Int64
	levels  atomic.Int64
}

// SnapshotPrunedWork reads the cumulative skipped-work counters.
func SnapshotPrunedWork() PrunedWork {
	return PrunedWork{
		Cutoffs: prunedWork.cutoffs.Load(),
		Nodes:   prunedWork.nodes.Load(),
		Edges:   prunedWork.edges.Load(),
		Levels:  prunedWork.levels.Load(),
	}
}

// SnapshotMetrics reads the live kernel counters.
func SnapshotMetrics() MetricsSnapshot {
	read := func(i kernelIndex) KernelCounters {
		c := &kernelMetrics[i]
		return KernelCounters{
			Calls:         c.calls.Load(),
			Sources:       c.sources.Load(),
			Nodes:         c.nodes.Load(),
			Edges:         c.edges.Load(),
			TopDownSteps:  c.tdSteps.Load(),
			BottomUpSteps: c.buSteps.Load(),
			Switches:      c.switches.Load(),
			FrontierPeak:  c.frontierPeak.Load(),
			CoresUsed:     c.cores.Load(),
			LaneWidth:     kernelLaneWidth[i],
		}
	}
	return MetricsSnapshot{
		TopDown:        read(kTopDown),
		DirectionOpt:   read(kDirOpt),
		BitParallel64:  read(kBitParallel),
		BitParallel256: read(kBitParallel256),
		BitParallel512: read(kBitParallel512),
		Envelope:       read(kEnvelope),
		Dijkstra:       read(kDijkstra),
		Repair:         read(kRepair),
		PrunedBFS:      read(kPrunedBFS),
	}
}

// Sub returns the per-kernel work done between prev and s. FrontierPeak
// fields keep s's high-water marks.
func (s MetricsSnapshot) Sub(prev MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		TopDown:        s.TopDown.sub(prev.TopDown),
		DirectionOpt:   s.DirectionOpt.sub(prev.DirectionOpt),
		BitParallel64:  s.BitParallel64.sub(prev.BitParallel64),
		BitParallel256: s.BitParallel256.sub(prev.BitParallel256),
		BitParallel512: s.BitParallel512.sub(prev.BitParallel512),
		Envelope:       s.Envelope.sub(prev.Envelope),
		Dijkstra:       s.Dijkstra.sub(prev.Dijkstra),
		Repair:         s.Repair.sub(prev.Repair),
		PrunedBFS:      s.PrunedBFS.sub(prev.PrunedBFS),
	}
}

// Total sums the kernels (FrontierPeak takes the max across kernels).
func (s MetricsSnapshot) Total() KernelCounters {
	return s.TopDown.add(s.DirectionOpt).add(s.BitParallel64).add(s.BitParallel256).
		add(s.BitParallel512).add(s.Envelope).add(s.Dijkstra).add(s.Repair).
		add(s.PrunedBFS)
}

// RecordRepair flushes one dynsssp batch-repair run into the repair kernel
// counters: one call, one source (each repair re-derives a single source's
// distance vector), the nodes/edges the wave touched, and its largest
// single-level frontier. start is when the repair began, so the repair
// kernel's latency histogram fills alongside the BFS kernels'. Called once
// per ApplyAll/ApplyBatch, never per edge, to keep the repair kernel
// allocation- and contention-free.
func RecordRepair(nodes, edges, frontierPeak int64, start time.Time) {
	c := &kernelMetrics[kRepair]
	c.calls.Add(1)
	c.sources.Add(1)
	c.nodes.Add(nodes)
	c.edges.Add(edges)
	peakMax(&c.frontierPeak, frontierPeak)
	observeSweep(kRepair, start, 1, nodes, edges)
}

// RecordRepairCut notes one bounded repair wave (dynsssp.ApplyAllBounded)
// stopped early by the Δ-threshold; restoredSeeds pending relaxations were
// rolled back, a lower bound on the node visits the cut avoided.
func RecordRepairCut(restoredSeeds int64) {
	prunedWork.cutoffs.Add(1)
	prunedWork.nodes.Add(restoredSeeds)
}

// RecordPrunedBFS flushes one bounded second-snapshot BFS into the
// prunedbfs kernel counters: the nodes/edges it actually traversed, plus —
// when the Δ-threshold cut fired (cut=true) — the work it avoided:
// skippedNodes/skippedEdges count the abandoned undiscovered nodes and their
// adjacency exactly, and remLevels is the remaining-depth estimate at the
// cut point. Called once per traversal, never per edge.
func RecordPrunedBFS(nodes, edges, frontierPeak int64, cut bool, skippedNodes, skippedEdges, remLevels int64, start time.Time) {
	c := &kernelMetrics[kPrunedBFS]
	c.calls.Add(1)
	c.sources.Add(1)
	c.nodes.Add(nodes)
	c.edges.Add(edges)
	peakMax(&c.frontierPeak, frontierPeak)
	if cut {
		prunedWork.cutoffs.Add(1)
		prunedWork.nodes.Add(skippedNodes)
		prunedWork.edges.Add(skippedEdges)
		prunedWork.levels.Add(remLevels)
	}
	observeSweep(kPrunedBFS, start, 1, nodes, edges)
}

// init publishes the kernel counters to the obs metrics registry so
// `convpairs -metricsaddr` (and anything else serving obs.WriteMetrics)
// exposes them without further wiring.
func init() {
	names := [numKernels]string{
		kTopDown:        "topdown",
		kDirOpt:         "diropt",
		kBitParallel:    "bitparallel64",
		kBitParallel256: "bitparallel256",
		kBitParallel512: "bitparallel512",
		kEnvelope:       "envelope",
		kDijkstra:       "dijkstra",
		kRepair:         "repair",
		kPrunedBFS:      "prunedbfs",
	}
	for i := kernelIndex(0); i < numKernels; i++ {
		kernelHist[i] = kernelHists{
			sweepNS:        obs.NewHistogram("sssp.sweep_ns", obs.L("kernel", names[i])),
			nodesPerSource: obs.NewHistogram("sssp.nodes_per_source", obs.L("kernel", names[i])),
			edgesPerSource: obs.NewHistogram("sssp.edges_per_source", obs.L("kernel", names[i])),
		}
		if i == kRepair || i == kPrunedBFS {
			continue // counters registered under flat repair_*/pruned_* names below
		}
		c := &kernelMetrics[i]
		prefix := "sssp." + names[i] + "."
		obs.RegisterMetric(prefix+"calls", c.calls.Load)
		obs.RegisterMetric(prefix+"sources", c.sources.Load)
		obs.RegisterMetric(prefix+"nodes_visited", c.nodes.Load)
		obs.RegisterMetric(prefix+"edges_scanned", c.edges.Load)
		obs.RegisterMetric(prefix+"frontier_peak", c.frontierPeak.Load)
		obs.RegisterMetric(prefix+"cores_used", c.cores.Load)
		if lanes := kernelLaneWidth[i]; lanes > 0 {
			lanes64 := int64(lanes)
			obs.RegisterMetric(prefix+"lane_width", func() int64 { return lanes64 })
		}
	}
	dir := &kernelMetrics[kDirOpt]
	obs.RegisterMetric("sssp.diropt.topdown_steps", dir.tdSteps.Load)
	obs.RegisterMetric("sssp.diropt.bottomup_steps", dir.buSteps.Load)
	obs.RegisterMetric("sssp.diropt.switches", dir.switches.Load)
	rep := &kernelMetrics[kRepair]
	obs.RegisterMetric("sssp.repair_calls", rep.calls.Load)
	obs.RegisterMetric("sssp.repair_nodes", rep.nodes.Load)
	obs.RegisterMetric("sssp.repair_edges", rep.edges.Load)
	obs.RegisterMetric("sssp.repair_frontier_peak", rep.frontierPeak.Load)
	pb := &kernelMetrics[kPrunedBFS]
	obs.RegisterMetric("sssp.prunedbfs_calls", pb.calls.Load)
	obs.RegisterMetric("sssp.prunedbfs_nodes", pb.nodes.Load)
	obs.RegisterMetric("sssp.prunedbfs_edges", pb.edges.Load)
	obs.RegisterMetric("sssp.pruned_cutoffs", prunedWork.cutoffs.Load)
	obs.RegisterMetric("sssp.pruned_nodes", prunedWork.nodes.Load)
	obs.RegisterMetric("sssp.pruned_edges", prunedWork.edges.Load)
	obs.RegisterMetric("sssp.pruned_levels", prunedWork.levels.Load)
}
