package sssp

import (
	"math/bits"
	"time"

	"repro/internal/graph"
)

// Direction-optimizing BFS (Beamer, Asanović, Patterson: "Direction-
// Optimizing Breadth-First Search", SC'12). Levels run top-down (scan the
// frontier's adjacency) while the frontier is small, and bottom-up (scan
// the unvisited nodes for any parent in the frontier) once the frontier's
// outgoing edges outnumber a fraction of the unexplored edges. On the
// small-diameter graphs of the paper's datasets the middle levels hold most
// of the graph, and bottom-up terminates each node's scan at its first
// frontier parent instead of examining every frontier edge.
const (
	// dirOptAlpha: switch top-down -> bottom-up when
	// (edges out of frontier) > (edges out of unvisited) / alpha.
	dirOptAlpha = 14
	// dirOptBeta: switch bottom-up -> top-down when
	// (frontier size) < n / beta.
	dirOptBeta = 24
)

// topDownBFS is the scalar level-order kernel: an index-cursor frontier over
// a scratch-owned queue, reading the CSR arrays directly. It is both the
// TopDown engine and the baseline the others are differentially tested
// against.
//
//convlint:hotpath
func topDownBFS(g *graph.Graph, src int, dist []int32, s *Scratch) (reached int, ecc int32) {
	//convlint:nondet sweep latency is observational, not part of results
	start := time.Now()
	offsets, neighbors := g.CSR()
	q := s.queue[:0]
	q = append(q, int32(src))
	dist[src] = 0
	reached = 1
	// Metrics accumulate in registers; the queue is level-ordered, so a run
	// of equal distances is one frontier and its length bounds the peak.
	var edges int64
	peak, runLen := 0, 0
	runLevel := int32(0)
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		if du != runLevel {
			if runLen > peak {
				peak = runLen
			}
			runLen, runLevel = 0, du
		}
		runLen++
		edges += int64(offsets[u+1] - offsets[u])
		for _, v := range neighbors[offsets[u]:offsets[u+1]] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				reached++
				q = append(q, v)
			}
		}
	}
	if runLen > peak {
		peak = runLen
	}
	s.queue = q[:0]
	km := &kernelMetrics[kTopDown]
	km.calls.Add(1)
	km.sources.Add(1)
	km.nodes.Add(int64(reached))
	km.edges.Add(edges)
	peakMax(&km.frontierPeak, int64(peak))
	observeSweep(kTopDown, start, 1, int64(reached), edges)
	return reached, ecc
}

// dirOptBFS is the direction-optimizing kernel. Distances are identical to
// topDownBFS (BFS levels are order-independent); only the edge-examination
// order differs.
//
//convlint:hotpath
func dirOptBFS(g *graph.Graph, src int, dist []int32, s *Scratch) (reached int, ecc int32) {
	//convlint:nondet sweep latency is observational, not part of results
	start := time.Now()
	offsets, neighbors := g.CSR()
	n := g.NumNodes()
	words := (n + 63) / 64
	q := s.queue[:0]
	q = append(q, int32(src))
	dist[src] = 0
	reached = 1

	// mf counts directed edges out of the current frontier, mu directed
	// edges out of still-unvisited nodes; both drive the Beamer heuristic.
	mf := int64(offsets[src+1] - offsets[src])
	mu := 2*int64(g.NumEdges()) - mf

	level := int32(0)
	levelStart, levelEnd := 0, 1 // q[levelStart:levelEnd] is the frontier
	bottomUp := false
	nf := 1 // frontier node count

	// Metrics accumulate in registers and flush once on return.
	var edges, tdSteps, buSteps, switches int64
	peak := 1

	for {
		if !bottomUp && mf > mu/dirOptAlpha && nf > 1 {
			// Switch: materialize the frontier as a bitmap.
			clearWords(s.cur[:words])
			for _, u := range q[levelStart:levelEnd] {
				s.cur[u>>6] |= 1 << (uint(u) & 63)
			}
			bottomUp = true
			switches++
		} else if bottomUp && nf < n/dirOptBeta {
			// Switch back: collect the bitmap frontier into the queue.
			levelStart = len(q)
			for w, word := range s.cur[:words] {
				for word != 0 {
					q = append(q, int32(w<<6+bits.TrailingZeros64(word)))
					word &= word - 1
				}
			}
			levelEnd = len(q)
			bottomUp = false
			switches++
		}

		if !bottomUp {
			// Top-down step: expand the frontier's adjacency.
			tdSteps++
			var mfNext int64
			for head := levelStart; head < levelEnd; head++ {
				u := q[head]
				edges += int64(offsets[u+1] - offsets[u])
				for _, v := range neighbors[offsets[u]:offsets[u+1]] {
					if dist[v] == Unreachable {
						dist[v] = level + 1
						reached++
						deg := int64(offsets[v+1] - offsets[v])
						mfNext += deg
						mu -= deg
						q = append(q, v)
					}
				}
			}
			levelStart, levelEnd = levelEnd, len(q)
			nf = levelEnd - levelStart
			mf = mfNext
		} else {
			// Bottom-up step: every unvisited node looks for a parent in
			// the current frontier bitmap.
			buSteps++
			clearWords(s.nxt[:words])
			nfNext := 0
			var mfNext int64
			for v := 0; v < n; v++ {
				if dist[v] != Unreachable {
					continue
				}
				for _, w := range neighbors[offsets[v]:offsets[v+1]] {
					edges++
					if s.cur[w>>6]&(1<<(uint(w)&63)) != 0 {
						dist[v] = level + 1
						reached++
						deg := int64(offsets[v+1] - offsets[v])
						mfNext += deg
						mu -= deg
						s.nxt[v>>6] |= 1 << (uint(v) & 63)
						nfNext++
						break
					}
				}
			}
			s.cur, s.nxt = s.nxt, s.cur
			nf = nfNext
			mf = mfNext
		}
		if nf > peak {
			peak = nf
		}
		if nf == 0 {
			break
		}
		level++
		ecc = level
	}
	s.queue = q[:0]
	km := &kernelMetrics[kDirOpt]
	km.calls.Add(1)
	km.sources.Add(1)
	km.nodes.Add(int64(reached))
	km.edges.Add(edges)
	km.tdSteps.Add(tdSteps)
	km.buSteps.Add(buSteps)
	km.switches.Add(switches)
	peakMax(&km.frontierPeak, int64(peak))
	observeSweep(kDirOpt, start, 1, int64(reached), edges)
	return reached, ecc
}
