package sssp

import (
	"math/rand"
	"testing"

	"repro/internal/invariant"
)

// TestBFSWithZeroAllocs is the runtime backstop for what the hotalloc
// analyzer checks statically: with a caller-provided, warmed Scratch, one
// BFSWith call allocates nothing on any engine. This is the property the
// multi-source sweep's 3.34x win rests on.
func TestBFSWithZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("CSR invariant assertions allocate; zero-alloc holds for default builds")
	}
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 2000, 6000)
	n := g.NumNodes()
	dist := make([]int32, n)
	for _, eng := range []Engine{TopDown, DirectionOpt, BitParallel64} {
		t.Run(eng.String(), func(t *testing.T) {
			s := NewScratch(n)
			// Warm every buffer the engine lazily grows (MS-BFS visit words,
			// bitmap frontiers); steady-state calls must then be free.
			BFSWith(g, 0, dist, eng, s)
			src := 0
			allocs := testing.AllocsPerRun(50, func() {
				BFSWith(g, src%n, dist, eng, s)
				src++
			})
			if allocs != 0 {
				t.Errorf("engine %v: %.1f allocs per BFSWith with provided Scratch, want 0", eng, allocs)
			}
		})
	}
}

// TestMultiSourceBFSWithZeroAllocs covers the dispersion-selection driver
// the same way.
func TestMultiSourceBFSWithZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("CSR invariant assertions allocate; zero-alloc holds for default builds")
	}
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 1500, 4000)
	n := g.NumNodes()
	dist := make([]int32, n)
	sources := []int{0, 3, 9, 27}
	s := NewScratch(n)
	MultiSourceBFSWith(g, sources, dist, s)
	allocs := testing.AllocsPerRun(50, func() {
		MultiSourceBFSWith(g, sources, dist, s)
	})
	if allocs != 0 {
		t.Errorf("%.1f allocs per MultiSourceBFSWith with provided Scratch, want 0", allocs)
	}
}
