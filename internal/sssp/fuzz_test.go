package sssp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// referenceBFS is an intentionally naive queue BFS, independent of every
// production kernel, used as the differential-testing oracle.
func referenceBFS(g *graph.Graph, src int) (dist []int32, reached int, ecc int32) {
	n := g.NumNodes()
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	reached = 1
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] > ecc {
			ecc = dist[u]
		}
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				reached++
				queue = append(queue, int(v))
			}
		}
	}
	return dist, reached, ecc
}

// erdosRenyi samples a G(n, p) graph. Isolated nodes and multiple
// components occur naturally at small p.
func erdosRenyi(n int, p float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				_ = b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// prefAttach grows a preferential-attachment graph: each new node attaches
// to k endpoints sampled proportionally to degree (the repeated-endpoint
// trick), then a fraction of nodes is left isolated.
func prefAttach(n, k, isolated int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n + isolated)
	var endpoints []int
	for u := 1; u < n; u++ {
		for j := 0; j < k; j++ {
			var v int
			if len(endpoints) == 0 {
				v = rng.Intn(u)
			} else {
				v = endpoints[rng.Intn(len(endpoints))]
			}
			_ = b.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	return b.Build()
}

// engineList returns every selectable kernel.
func engineList() []Engine {
	return []Engine{TopDown, DirectionOpt, BitParallel64, BitParallel256, BitParallel512}
}

// assertEngineMatch runs every engine from src, serial and with
// intra-traversal parallelism, and compares against the reference oracle.
func assertEngineMatch(t *testing.T, g *graph.Graph, src int, label string) {
	t.Helper()
	want, wantReached, wantEcc := referenceBFS(g, src)
	dist := make([]int32, g.NumNodes())
	scratch := NewScratch(g.NumNodes())
	for _, e := range engineList() {
		for _, par := range []int{1, 4} {
			for _, s := range []*Scratch{nil, scratch} {
				reached, ecc := ParallelBFSWith(g, src, dist, e, par, s)
				if reached != wantReached || ecc != wantEcc {
					t.Fatalf("%s: engine %v par %d src %d: (reached, ecc) = (%d, %d), want (%d, %d)",
						label, e, par, src, reached, ecc, wantReached, wantEcc)
				}
				for v := range dist {
					if dist[v] != want[v] {
						t.Fatalf("%s: engine %v par %d src %d: dist[%d] = %d, want %d",
							label, e, par, src, v, dist[v], want[v])
					}
				}
			}
		}
	}
}

// TestEnginesDifferential asserts every engine returns bit-identical
// distances, reached counts, and eccentricities on random Erdős–Rényi and
// preferential-attachment graphs, including disconnected graphs and
// isolated nodes.
func TestEnginesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type gen struct {
		name  string
		build func() *graph.Graph
	}
	gens := []gen{
		{"er-sparse", func() *graph.Graph { return erdosRenyi(60, 0.02, rng) }},
		{"er-mid", func() *graph.Graph { return erdosRenyi(80, 0.08, rng) }},
		{"er-dense", func() *graph.Graph { return erdosRenyi(40, 0.5, rng) }},
		{"pa", func() *graph.Graph { return prefAttach(100, 2, 0, rng) }},
		{"pa-isolated", func() *graph.Graph { return prefAttach(70, 3, 12, rng) }},
		{"singleton", func() *graph.Graph { return graph.FromEdges(5, nil) }},
	}
	for _, gn := range gens {
		for trial := 0; trial < 3; trial++ {
			g := gn.build()
			n := g.NumNodes()
			if n == 0 {
				continue
			}
			label := fmt.Sprintf("%s/%d", gn.name, trial)
			for i := 0; i < 10; i++ {
				assertEngineMatch(t, g, rng.Intn(n), label)
			}
		}
	}
}

// TestDriversDifferential asserts the multi-source drivers (including the
// bit-parallel batches that span a 64-lane boundary) agree with the oracle
// for every source, and that duplicate sources get identical rows.
func TestDriversDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := prefAttach(150, 2, 10, rng)
	n := g.NumNodes()
	sources := make([]int, 0, 100)
	for i := 0; i < 96; i++ {
		sources = append(sources, rng.Intn(n))
	}
	sources = append(sources, sources[0], sources[1]) // duplicates

	for _, e := range []Engine{TopDown, DirectionOpt, BitParallel64, BitParallel256, BitParallel512, Auto} {
		calls := map[int]int{}
		AllSourcesEngineFunc(g, sources, 1, e, func(src int, dist []int32) {
			calls[src]++
			want, _, _ := referenceBFS(g, src)
			for v := range dist {
				if dist[v] != want[v] {
					t.Fatalf("engine %v: AllSources src %d dist[%d] = %d, want %d", e, src, v, dist[v], want[v])
				}
			}
		})
		total := 0
		for _, c := range calls {
			total += c
		}
		if total != len(sources) {
			t.Fatalf("engine %v: fn called %d times for %d sources", e, total, len(sources))
		}
	}

	g2 := prefAttach(150, 3, 10, rng)
	for _, e := range []Engine{TopDown, BitParallel64, BitParallel512} {
		PairedSourcesEngineFunc(g, g2, sources, 1, e, func(src int, d1, d2 []int32) {
			w1, _, _ := referenceBFS(g, src)
			w2, _, _ := referenceBFS(g2, src)
			for v := range d1 {
				if d1[v] != w1[v] || d2[v] != w2[v] {
					t.Fatalf("engine %v: Paired src %d node %d: (%d,%d), want (%d,%d)",
						e, src, v, d1[v], d2[v], w1[v], w2[v])
				}
			}
		})
	}
}

// TestMultiSourceEnvelope asserts MultiSourceBFS equals the pointwise
// minimum of the per-source BFS trees.
func TestMultiSourceEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := erdosRenyi(90, 0.04, rng)
	n := g.NumNodes()
	sources := []int{0, 17, 55, 55, 83}
	dist := make([]int32, n)
	MultiSourceBFSWith(g, sources, dist, NewScratch(n))
	for v := 0; v < n; v++ {
		want := Unreachable
		for _, s := range sources {
			d, _, _ := referenceBFS(g, s)
			if d[v] != Unreachable && (want == Unreachable || d[v] < want) {
				want = d[v]
			}
		}
		if dist[v] != want {
			t.Fatalf("envelope at %d: %d, want %d", v, dist[v], want)
		}
	}
}

// FuzzEngines feeds arbitrary byte-derived graphs and sources through every
// kernel; all engines must agree with the oracle exactly.
func FuzzEngines(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0}, uint8(0))
	f.Add([]byte{}, uint8(3))
	f.Add([]byte{255, 255, 0, 0, 7, 9}, uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, srcByte uint8) {
		b := graph.NewBuilder(int(srcByte) + 1)
		for i := 0; i+1 < len(data); i += 2 {
			_ = b.AddEdge(int(data[i]), int(data[i+1]))
		}
		g := b.Build()
		n := g.NumNodes()
		if n == 0 {
			return
		}
		src := int(srcByte) % n
		want, wantReached, wantEcc := referenceBFS(g, src)
		dist := make([]int32, n)
		for _, e := range engineList() {
			reached, ecc := BFSWith(g, src, dist, e, nil)
			if reached != wantReached || ecc != wantEcc {
				t.Fatalf("engine %v: (reached, ecc) = (%d, %d), want (%d, %d)", e, reached, ecc, wantReached, wantEcc)
			}
			for v := range dist {
				if dist[v] != want[v] {
					t.Fatalf("engine %v: dist[%d] = %d, want %d", e, v, dist[v], want[v])
				}
			}
		}
	})
}
