package sssp

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.FromEdges(n, edges)
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		// Errors are impossible: node IDs are drawn from [0, n).
		_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(5)
	dist := make([]int32, 5)
	reached, ecc := BFS(g, 0, dist)
	if reached != 5 {
		t.Fatalf("reached = %d, want 5", reached)
	}
	if ecc != 4 {
		t.Fatalf("ecc = %d, want 4", ecc)
	}
	want := []int32{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("dist = %v, want %v", dist, want)
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	dist := make([]int32, 5)
	reached, _ := BFS(g, 0, dist)
	if reached != 2 {
		t.Fatalf("reached = %d, want 2", reached)
	}
	for _, v := range []int{2, 3, 4} {
		if dist[v] != Unreachable {
			t.Errorf("dist[%d] = %d, want Unreachable", v, dist[v])
		}
	}
}

func TestBFSPanicsOnBadInput(t *testing.T) {
	g := pathGraph(3)
	assertPanics(t, "short buffer", func() { BFS(g, 0, make([]int32, 2)) })
	assertPanics(t, "bad source", func() { BFS(g, 7, make([]int32, 3)) })
	assertPanics(t, "negative source", func() { BFS(g, -1, make([]int32, 3)) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestMultiSourceBFS(t *testing.T) {
	g := pathGraph(7)
	dist := make([]int32, 7)
	MultiSourceBFS(g, []int{0, 6}, dist)
	want := []int32{0, 1, 2, 3, 2, 1, 0}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("dist = %v, want %v", dist, want)
	}
	// Duplicate sources are harmless.
	MultiSourceBFS(g, []int{3, 3}, dist)
	if dist[0] != 3 || dist[6] != 3 {
		t.Fatalf("dist = %v after duplicate-source BFS", dist)
	}
	// No sources: everything unreachable.
	MultiSourceBFS(g, nil, dist)
	for v, d := range dist {
		if d != Unreachable {
			t.Fatalf("dist[%d] = %d with no sources", v, d)
		}
	}
}

// Property: BFS distances satisfy the edge relaxation condition
// |d(u) - d(v)| <= 1 for every edge {u,v} with both ends reached, d(src)=0,
// and every reached non-source node has a neighbor one step closer.
func TestBFSRelaxationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		g := randomGraph(rng, n, 2*n)
		src := rng.Intn(n)
		dist := make([]int32, n)
		BFS(g, src, dist)
		if dist[src] != 0 {
			return false
		}
		for u := 0; u < n; u++ {
			du := dist[u]
			hasCloser := false
			for _, v := range g.Neighbors(u) {
				dv := dist[v]
				if (du == Unreachable) != (dv == Unreachable) {
					return false // an edge cannot cross component boundaries
				}
				if du != Unreachable {
					diff := du - dv
					if diff < -1 || diff > 1 {
						return false
					}
					if dv == du-1 {
						hasCloser = true
					}
				}
			}
			if du > 0 && !hasCloser {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dijkstra on unit weights equals BFS.
func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := randomGraph(rng, n, 2*n)
		wg := graph.FromUnweighted(g)
		src := rng.Intn(n)
		return reflect.DeepEqual(Distances(g, src), WeightedDistances(wg, src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// 0 --(1)-- 1 --(1)-- 2, plus a heavy shortcut 0 --(5)-- 2.
	wg, err := graph.NewWeighted(4, []graph.WeightedEdge{
		{U: 0, V: 1, Weight: 1},
		{U: 1, V: 2, Weight: 1},
		{U: 0, V: 2, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	dist := WeightedDistances(wg, 0)
	want := []int32{0, 1, 2, Unreachable}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("dist = %v, want %v", dist, want)
	}
}

func TestDijkstraZeroWeight(t *testing.T) {
	wg, err := graph.NewWeighted(3, []graph.WeightedEdge{
		{U: 0, V: 1, Weight: 0},
		{U: 1, V: 2, Weight: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	dist := WeightedDistances(wg, 0)
	want := []int32{0, 0, 3}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("dist = %v, want %v", dist, want)
	}
}

func TestNegativeWeightRejected(t *testing.T) {
	_, err := graph.NewWeighted(2, []graph.WeightedEdge{{U: 0, V: 1, Weight: -1}})
	if err == nil {
		t.Fatal("negative weight should be rejected")
	}
}

func TestWeightedDuplicateKeepsMinimum(t *testing.T) {
	wg, err := graph.NewWeighted(2, []graph.WeightedEdge{
		{U: 0, V: 1, Weight: 9},
		{U: 1, V: 0, Weight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wg.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", wg.NumEdges())
	}
	if d := WeightedDistances(wg, 0)[1]; d != 2 {
		t.Fatalf("dist = %d, want min weight 2", d)
	}
}

func TestAllSourcesFuncMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 200, 500)
	sources := []int{0, 5, 17, 100, 199}

	want := make(map[int][]int32)
	for _, s := range sources {
		want[s] = Distances(g, s)
	}
	var mu sync.Mutex
	got := make(map[int][]int32)
	AllSourcesFunc(g, sources, 4, func(src int, dist []int32) {
		row := make([]int32, len(dist))
		copy(row, dist)
		mu.Lock()
		got[src] = row
		mu.Unlock()
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel AllSourcesFunc disagrees with sequential BFS")
	}
}

func TestPairedSourcesFunc(t *testing.T) {
	g1 := pathGraph(6)
	b := graph.NewBuilder(6)
	for _, e := range g1.Edges() {
		_ = b.AddEdge(e.U, e.V)
	}
	_ = b.AddEdge(0, 5) // shortcut in the second snapshot
	g2 := b.Build()

	var mu sync.Mutex
	deltas := map[int]int32{}
	PairedSourcesFunc(g1, g2, []int{0, 3}, 2, func(src int, d1, d2 []int32) {
		var maxDelta int32
		for v := range d1 {
			if d1[v] != Unreachable && d2[v] != Unreachable && d1[v]-d2[v] > maxDelta {
				maxDelta = d1[v] - d2[v]
			}
		}
		mu.Lock()
		deltas[src] = maxDelta
		mu.Unlock()
	})
	if deltas[0] != 4 { // d1(0,5)=5 -> d2(0,5)=1
		t.Errorf("delta from 0 = %d, want 4", deltas[0])
	}
	// From node 3 the shortcut helps nothing: d1(3,·)={3,2,1,0,1,2} and the
	// best use of edge {0,5} never shortens any of those.
	if deltas[3] != 0 {
		t.Errorf("delta from 3 = %d, want 0", deltas[3])
	}
}

func TestDistanceMatrix(t *testing.T) {
	g := pathGraph(4)
	rows := DistanceMatrix(g, []int{0, 3, 0}, 2)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if !reflect.DeepEqual(rows[0], []int32{0, 1, 2, 3}) {
		t.Errorf("row 0 = %v", rows[0])
	}
	if !reflect.DeepEqual(rows[1], []int32{3, 2, 1, 0}) {
		t.Errorf("row 1 = %v", rows[1])
	}
	if !reflect.DeepEqual(rows[2], rows[0]) {
		t.Errorf("duplicate source row = %v, want same as row 0", rows[2])
	}
}

func TestDoubleSweepLowerBound(t *testing.T) {
	g := pathGraph(9)
	if got := DoubleSweepLowerBound(g, 4); got != 8 {
		t.Fatalf("double sweep = %d, want 8", got)
	}
	if got := Eccentricity(g, 4); got != 4 {
		t.Fatalf("eccentricity(4) = %d, want 4", got)
	}
}

func TestAllSourcesSequentialPath(t *testing.T) {
	// workers=1 and single-source inputs exercise the sequential fast path.
	g := pathGraph(20)
	var visited []int
	AllSourcesFunc(g, []int{3, 7}, 1, func(src int, dist []int32) {
		visited = append(visited, src)
		if dist[src] != 0 {
			t.Errorf("dist[src] = %d", dist[src])
		}
	})
	if len(visited) != 2 || visited[0] != 3 {
		t.Fatalf("visited = %v (sequential path must preserve order)", visited)
	}
	// Empty sources: no calls, no panic.
	AllSourcesFunc(g, nil, 4, func(int, []int32) { t.Fatal("unexpected call") })
	PairedSourcesFunc(g, g, nil, 4, func(int, []int32, []int32) { t.Fatal("unexpected call") })
	// Sequential paired path.
	calls := 0
	PairedSourcesFunc(g, g, []int{0}, 1, func(src int, d1, d2 []int32) {
		calls++
		for v := range d1 {
			if d1[v] != d2[v] {
				t.Errorf("identical graphs disagree at %d", v)
			}
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestPathReconstruction(t *testing.T) {
	g := pathGraph(6)
	p := Path(g, 0, 5)
	if !reflect.DeepEqual(p, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("path = %v", p)
	}
	if p := Path(g, 3, 3); !reflect.DeepEqual(p, []int{3}) {
		t.Fatalf("self path = %v", p)
	}
	disc := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if Path(disc, 0, 3) != nil {
		t.Fatal("disconnected path should be nil")
	}
	assertPanics(t, "bad endpoint", func() { Path(g, 0, 99) })
}

// Property: a reconstructed path is a real path of length dist(src, dst).
func TestPathMatchesDistanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		g := randomGraph(rng, n, 2*n)
		src, dst := rng.Intn(n), rng.Intn(n)
		dist := Distances(g, src)
		path := Path(g, src, dst)
		if dist[dst] < 0 {
			return path == nil
		}
		if len(path) != int(dist[dst])+1 {
			return false
		}
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		for i := 1; i < len(path); i++ {
			if !g.HasEdge(path[i-1], path[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
