package sssp

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// AllSourcesFunc runs fn(src, dist) for every source in sources, spreading
// the BFS work across workers goroutines (<=0 means GOMAXPROCS). Each worker
// owns one distance buffer, so fn must finish with dist before returning and
// must not retain it. fn may be called concurrently from different workers;
// for a fixed worker the calls are sequential.
//
// This is the exact-ground-truth workhorse: the topk package streams every
// source's distance vector through a Δ-accumulating callback instead of
// materializing an O(n²) distance matrix.
func AllSourcesFunc(g *graph.Graph, sources []int, workers int, fn func(src int, dist []int32)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers <= 1 {
		dist := make([]int32, g.NumNodes())
		for _, src := range sources {
			BFS(g, src, dist)
			fn(src, dist)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dist := make([]int32, g.NumNodes())
			for i := range next {
				src := sources[i]
				BFS(g, src, dist)
				fn(src, dist)
			}
		}()
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
}

// PairedSourcesFunc runs BFS from each source on both snapshots and hands the
// two distance vectors to fn together. It parallelizes across sources like
// AllSourcesFunc; the buffers are per-worker and must not be retained.
func PairedSourcesFunc(g1, g2 *graph.Graph, sources []int, workers int, fn func(src int, d1, d2 []int32)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers <= 1 {
		d1 := make([]int32, g1.NumNodes())
		d2 := make([]int32, g2.NumNodes())
		for _, src := range sources {
			BFS(g1, src, d1)
			BFS(g2, src, d2)
			fn(src, d1, d2)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d1 := make([]int32, g1.NumNodes())
			d2 := make([]int32, g2.NumNodes())
			for i := range next {
				src := sources[i]
				BFS(g1, src, d1)
				BFS(g2, src, d2)
				fn(src, d1, d2)
			}
		}()
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
}

// DistanceMatrix computes the full rows-by-n distance matrix from the given
// sources. Row i holds the distances from sources[i]. Intended for candidate
// sets and landmark sets (small m), not for all-pairs ground truth.
func DistanceMatrix(g *graph.Graph, sources []int, workers int) [][]int32 {
	rows := make([][]int32, len(sources))
	index := make(map[int]int, len(sources))
	for i, s := range sources {
		index[s] = i
	}
	AllSourcesFunc(g, sources, workers, func(src int, dist []int32) {
		row := make([]int32, len(dist))
		copy(row, dist)
		rows[index[src]] = row
	})
	// Duplicate sources all map to one computed row; alias it to the rest.
	for i, s := range sources {
		if rows[i] == nil {
			rows[i] = rows[index[s]]
		}
	}
	return rows
}
