package sssp

import (
	"context"
	"runtime/pprof"
	"sync"

	"repro/internal/graph"
)

// sweepWorker runs body on a new goroutine labeled for pprof, so CPU and
// goroutine profiles attribute multi-source sweep work to the sssp
// subsystem (and the serving kernel) rather than to anonymous funcs.
func sweepWorker(wg *sync.WaitGroup, kernel string, body func()) {
	wg.Add(1)
	go pprof.Do(context.Background(), pprof.Labels("subsystem", "sssp-sweep", "kernel", kernel),
		func(context.Context) {
			defer wg.Done()
			body()
		})
}

// AllSourcesFunc runs fn(src, dist) for every source in sources, spreading
// the BFS work across workers goroutines (<=0 means GOMAXPROCS). Each worker
// owns its distance buffers, so fn must finish with dist before returning and
// must not retain it. fn may be called concurrently from different workers;
// for a fixed worker the calls are sequential.
//
// This is the exact-ground-truth workhorse: the topk package streams every
// source's distance vector through a Δ-accumulating callback instead of
// materializing an O(n²) distance matrix. Under the Auto engine, large
// source sets run 64 sources per pass through the bit-parallel kernel.
func AllSourcesFunc(g *graph.Graph, sources []int, workers int, fn func(src int, dist []int32)) {
	AllSourcesEngineFunc(g, sources, workers, Auto, fn)
}

// AllSourcesEngineFunc is AllSourcesFunc with an explicit engine, the hook
// ablations use to compare kernels on identical sweeps. Intra-traversal
// parallelism follows the process default (SetDefaultParallelism).
func AllSourcesEngineFunc(g *graph.Graph, sources []int, workers int, e Engine, fn func(src int, dist []int32)) {
	AllSourcesParEngineFunc(g, sources, workers, e, 0, fn)
}

// AllSourcesParEngineFunc is AllSourcesEngineFunc with an explicit
// intra-traversal parallelism. The two knobs are orthogonal: workers spreads
// sources (or batches) across goroutines, par splits each individual
// traversal's frontiers across the traversal worker pool, and total
// concurrency is their product — callers dividing a core budget give the
// across-source axis priority (it parallelizes perfectly) and spend the
// remainder on par. For the wide engines note the memory trade: every worker
// holds Lanes()×n distance rows, so high workers × wide lanes multiplies
// resident row blocks where workers=1 with par=cores runs one row block and
// still uses every core.
func AllSourcesParEngineFunc(g *graph.Graph, sources []int, workers int, e Engine, par int, fn func(src int, dist []int32)) {
	_ = AllSourcesParEngineCtxFunc(context.Background(), g, sources, workers, e, par, fn)
}

// AllSourcesParEngineCtxFunc is AllSourcesParEngineFunc under a context: once
// ctx is done, no further source (or wide batch) starts traversing and the
// driver returns ctx's error; traversals already in flight finish their
// current source, so fn is never interrupted mid-row. Cancellation changes
// which sources got swept, never the rows delivered for the ones that did,
// and leaves all pooled scratch reusable.
func AllSourcesParEngineCtxFunc(ctx context.Context, g *graph.Graph, sources []int, workers int, e Engine, par int, fn func(src int, dist []int32)) error {
	workers = ClampWorkers(workers, len(sources))
	k := resolvePar(par)
	eng := resolveBatch(e, len(sources))
	if W := eng.wideWords(); W > 0 {
		lanes := eng.Lanes()
		scratches := make([]Scratch, workers)
		forEachBatch(ctx, len(sources), workers, lanes, func(w, start, end int) {
			s := &scratches[w]
			batch := sources[start:end]
			rows := s.ensureRows(g.NumNodes(), lanes)[:len(batch)]
			if W == 1 && k <= 1 {
				msBFSBatch(g, batch, rows, s)
			} else {
				msBFSBatchWide(g, batch, rows, W, k, s)
			}
			for i, src := range batch {
				fn(src, rows[i])
			}
		})
		return ctx.Err()
	}
	n := g.NumNodes()
	if workers <= 1 {
		dist := make([]int32, n)
		s := NewScratch(n)
		for _, src := range sources {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			ParallelBFSWith(g, src, dist, eng, k, s)
			fn(src, dist)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		sweepWorker(&wg, eng.String(), func() {
			dist := make([]int32, n)
			s := NewScratch(n)
			for i := range next {
				if ctx.Err() != nil {
					continue // drain without traversing
				}
				src := sources[i]
				ParallelBFSWith(g, src, dist, eng, k, s)
				fn(src, dist)
			}
		})
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}

// PairedSourcesFunc runs BFS from each source on both snapshots and hands the
// two distance vectors to fn together. It parallelizes across sources like
// AllSourcesFunc; the buffers are per-worker and must not be retained.
func PairedSourcesFunc(g1, g2 *graph.Graph, sources []int, workers int, fn func(src int, d1, d2 []int32)) {
	PairedSourcesEngineFunc(g1, g2, sources, workers, Auto, fn)
}

// PairedSourcesEngineFunc is PairedSourcesFunc with an explicit engine.
func PairedSourcesEngineFunc(g1, g2 *graph.Graph, sources []int, workers int, e Engine, fn func(src int, d1, d2 []int32)) {
	PairedSourcesParEngineFunc(g1, g2, sources, workers, e, 0, fn)
}

// PairedSourcesParEngineFunc is PairedSourcesEngineFunc with an explicit
// intra-traversal parallelism (see AllSourcesParEngineFunc for how the two
// knobs compose).
func PairedSourcesParEngineFunc(g1, g2 *graph.Graph, sources []int, workers int, e Engine, par int, fn func(src int, d1, d2 []int32)) {
	_ = PairedSourcesParEngineCtxFunc(context.Background(), g1, g2, sources, workers, e, par, fn)
}

// PairedSourcesParEngineCtxFunc is PairedSourcesParEngineFunc under a
// context, with the same cancellation contract as
// AllSourcesParEngineCtxFunc: no new source starts after ctx is done, rows
// already being produced are delivered whole, scratch stays reusable.
func PairedSourcesParEngineCtxFunc(ctx context.Context, g1, g2 *graph.Graph, sources []int, workers int, e Engine, par int, fn func(src int, d1, d2 []int32)) error {
	workers = ClampWorkers(workers, len(sources))
	k := resolvePar(par)
	eng := resolveBatch(e, len(sources))
	if W := eng.wideWords(); W > 0 {
		lanes := eng.Lanes()
		// Two scratches per worker: one per snapshot, each holding that
		// graph's distance rows across the whole sweep.
		s1 := make([]Scratch, workers)
		s2 := make([]Scratch, workers)
		forEachBatch(ctx, len(sources), workers, lanes, func(w, start, end int) {
			batch := sources[start:end]
			rows1 := s1[w].ensureRows(g1.NumNodes(), lanes)[:len(batch)]
			rows2 := s2[w].ensureRows(g2.NumNodes(), lanes)[:len(batch)]
			if W == 1 && k <= 1 {
				msBFSBatch(g1, batch, rows1, &s1[w])
				msBFSBatch(g2, batch, rows2, &s2[w])
			} else {
				msBFSBatchWide(g1, batch, rows1, W, k, &s1[w])
				msBFSBatchWide(g2, batch, rows2, W, k, &s2[w])
			}
			for i, src := range batch {
				fn(src, rows1[i], rows2[i])
			}
		})
		return ctx.Err()
	}
	if workers <= 1 {
		d1 := make([]int32, g1.NumNodes())
		d2 := make([]int32, g2.NumNodes())
		s := NewScratch(g1.NumNodes())
		for _, src := range sources {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			ParallelBFSWith(g1, src, d1, eng, k, s)
			ParallelBFSWith(g2, src, d2, eng, k, s)
			fn(src, d1, d2)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		sweepWorker(&wg, eng.String(), func() {
			d1 := make([]int32, g1.NumNodes())
			d2 := make([]int32, g2.NumNodes())
			s := NewScratch(g1.NumNodes())
			for i := range next {
				if ctx.Err() != nil {
					continue // drain without traversing
				}
				src := sources[i]
				ParallelBFSWith(g1, src, d1, eng, k, s)
				ParallelBFSWith(g2, src, d2, eng, k, s)
				fn(src, d1, d2)
			}
		})
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}

// DistanceMatrix computes the full rows-by-n distance matrix from the given
// sources. Row i holds the distances from sources[i]. Intended for candidate
// sets and landmark sets (small m), not for all-pairs ground truth.
func DistanceMatrix(g *graph.Graph, sources []int, workers int) [][]int32 {
	rows := make([][]int32, len(sources))
	// Sweep each distinct source once, anchored at its first occurrence.
	// Sweeping the raw list would make every duplicate's callback store into
	// the same slot from different workers — a write-write race on the row
	// header (and wasted sweeps) whenever the candidate set repeats a source.
	index := make(map[int]int, len(sources))
	unique := make([]int, 0, len(sources))
	for i, s := range sources {
		if _, ok := index[s]; !ok {
			index[s] = i
			unique = append(unique, s)
		}
	}
	AllSourcesFunc(g, unique, workers, func(src int, dist []int32) {
		row := make([]int32, len(dist))
		copy(row, dist)
		rows[index[src]] = row
	})
	// Duplicate sources alias their first occurrence's row.
	for i, s := range sources {
		if rows[i] == nil {
			rows[i] = rows[index[s]]
		}
	}
	return rows
}

// forEachBatch splits [0, total) into lanes-sized chunks and runs
// body(workerIndex, start, end) on each, spreading chunks across workers.
// Worker indices are dense in [0, workers), so callers can keep per-worker
// state (scratches, row buffers) in plain slices; a sweep's allocations are
// then per worker, not per source. Once ctx is done, remaining chunks are
// skipped (chunks already running finish whole).
func forEachBatch(ctx context.Context, total, workers, lanes int, body func(w, start, end int)) {
	numBatches := (total + lanes - 1) / lanes
	if workers > numBatches {
		workers = numBatches
	}
	chunk := func(b int) (int, int) {
		start := b * lanes
		end := start + lanes
		if end > total {
			end = total
		}
		return start, end
	}
	if workers <= 1 {
		for b := 0; b < numBatches; b++ {
			if ctx.Err() != nil {
				return
			}
			start, end := chunk(b)
			body(0, start, end)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		w := w
		sweepWorker(&wg, BitParallel64.String(), func() {
			for b := range next {
				if ctx.Err() != nil {
					continue // drain without traversing
				}
				start, end := chunk(b)
				body(w, start, end)
			}
		})
	}
	for b := 0; b < numBatches; b++ {
		next <- b
	}
	close(next)
	wg.Wait()
}
