package sssp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// benchGraph builds a connected random graph with ~3 edges per node.
func benchGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(i, rng.Intn(i))
	}
	for i := 0; i < 2*n; i++ {
		_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

// BenchmarkBFSScaling measures the single-source BFS cost across graph
// sizes — the unit of the paper's budget.
func BenchmarkBFSScaling(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		g := benchGraph(n, 1)
		dist := make([]int32, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				BFS(g, i%n, dist)
			}
		})
	}
}

// BenchmarkDijkstraScaling measures the weighted engine on unit weights for
// a direct comparison with BFS.
func BenchmarkDijkstraScaling(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		g := graph.FromUnweighted(benchGraph(n, 2))
		dist := make([]int32, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Dijkstra(g, i%n, dist)
			}
		})
	}
}

// BenchmarkAllSourcesParallel measures the parallel all-sources driver's
// scaling with worker count (the ground-truth sweep's engine).
func BenchmarkAllSourcesParallel(b *testing.B) {
	g := benchGraph(5000, 3)
	sources := make([]int, 200)
	for i := range sources {
		sources[i] = i * 25
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AllSourcesFunc(g, sources, workers, func(int, []int32) {})
			}
		})
	}
}

// BenchmarkMultiSourceBFS measures the dispersion step's primitive.
func BenchmarkMultiSourceBFS(b *testing.B) {
	g := benchGraph(10000, 4)
	dist := make([]int32, 10000)
	sources := []int{0, 2500, 5000, 7500}
	for i := 0; i < b.N; i++ {
		MultiSourceBFS(g, sources, dist)
	}
}

// BenchmarkBFSEngines compares the three kernels. Single-source rows
// measure one BFS; the batch rows measure a 64-source sweep per op (divide
// by 64 for the per-source cost), which is where the bit-parallel kernel's
// batching pays off.
func BenchmarkBFSEngines(b *testing.B) {
	for _, n := range []int{10000, 50000} {
		g := benchGraph(n, 1)
		dist := make([]int32, n)
		s := NewScratch(n)
		for _, e := range []Engine{TopDown, DirectionOpt} {
			b.Run(fmt.Sprintf("single/%s/n=%d", e, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					BFSWith(g, i%n, dist, e, s)
				}
			})
		}
		sources := make([]int, 64)
		for i := range sources {
			sources[i] = (i * (n / 64)) % n
		}
		for _, e := range []Engine{TopDown, DirectionOpt, BitParallel64} {
			b.Run(fmt.Sprintf("batch64/%s/n=%d", e, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					AllSourcesEngineFunc(g, sources, 1, e, func(int, []int32) {})
				}
			})
		}
	}
}

// BenchmarkAllPairs measures the exact ground-truth sweep's hot path — the
// paired per-source distance rows streamed by topk via PairedSourcesFunc —
// on a 50k-node snapshot pair, over a 1024-source slice of the full sweep
// (per-source cost is uniform, so the slice is representative). The
// topdown row is the scalar baseline; the bitparallel64 row is what Auto
// picks for sweeps this large.
func BenchmarkAllPairs(b *testing.B) {
	const n, srcCount = 50000, 1024
	g1 := benchGraph(n, 7)
	g2 := benchGraph(n, 8)
	sources := make([]int, srcCount)
	for i := range sources {
		sources[i] = (i * (n / srcCount)) % n
	}
	for _, e := range []Engine{TopDown, DirectionOpt, BitParallel64} {
		b.Run(fmt.Sprintf("paired/%s/n=%d/sources=%d", e, n, srcCount), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PairedSourcesEngineFunc(g1, g2, sources, 0, e, func(int, []int32, []int32) {})
			}
		})
	}
}
