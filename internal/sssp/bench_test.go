package sssp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// benchGraph builds a connected random graph with ~3 edges per node.
func benchGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(i, rng.Intn(i))
	}
	for i := 0; i < 2*n; i++ {
		_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

// BenchmarkBFSScaling measures the single-source BFS cost across graph
// sizes — the unit of the paper's budget.
func BenchmarkBFSScaling(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		g := benchGraph(n, 1)
		dist := make([]int32, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				BFS(g, i%n, dist)
			}
		})
	}
}

// BenchmarkDijkstraScaling measures the weighted engine on unit weights for
// a direct comparison with BFS.
func BenchmarkDijkstraScaling(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		g := graph.FromUnweighted(benchGraph(n, 2))
		dist := make([]int32, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Dijkstra(g, i%n, dist)
			}
		})
	}
}

// BenchmarkAllSourcesParallel measures the parallel all-sources driver's
// scaling with worker count (the ground-truth sweep's engine).
func BenchmarkAllSourcesParallel(b *testing.B) {
	g := benchGraph(5000, 3)
	sources := make([]int, 200)
	for i := range sources {
		sources[i] = i * 25
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AllSourcesFunc(g, sources, workers, func(int, []int32) {})
			}
		})
	}
}

// BenchmarkMultiSourceBFS measures the dispersion step's primitive.
func BenchmarkMultiSourceBFS(b *testing.B) {
	g := benchGraph(10000, 4)
	dist := make([]int32, 10000)
	sources := []int{0, 2500, 5000, 7500}
	for i := 0; i < b.N; i++ {
		MultiSourceBFS(g, sources, dist)
	}
}
