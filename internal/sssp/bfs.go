// Package sssp implements the single-source shortest-path engines the paper
// treats as its unit of computational cost: breadth-first search for
// unweighted snapshots, Dijkstra's algorithm for weighted ones, and a
// parallel all-sources driver used to compute exact ground truth.
//
// Distances are int32; Unreachable marks node pairs in different connected
// components. Engines reuse caller-provided buffers so that tight loops
// (candidate generation, all-pairs sweeps) do not allocate per source.
package sssp

import (
	"fmt"

	"repro/internal/graph"
)

// Unreachable is the distance reported for nodes with no path from the
// source. It is negative so that max-style comparisons ignore it naturally.
const Unreachable int32 = -1

// BFS computes unweighted shortest-path distances from src into dist, which
// must have length g.NumNodes(). Unreached nodes get Unreachable. It returns
// the number of reached nodes (including src) and the eccentricity of src
// within its component.
func BFS(g *graph.Graph, src int, dist []int32) (reached int, ecc int32) {
	n := g.NumNodes()
	if len(dist) != n {
		panic(fmt.Sprintf("sssp: dist buffer length %d, graph has %d nodes", len(dist), n))
	}
	if src < 0 || src >= n {
		panic(fmt.Sprintf("sssp: source %d out of range [0,%d)", src, n))
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int32, 1, 256)
	queue[0] = int32(src)
	dist[src] = 0
	reached = 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				reached++
				queue = append(queue, v)
			}
		}
	}
	return reached, ecc
}

// Distances is a convenience wrapper around BFS that allocates the buffer.
func Distances(g *graph.Graph, src int) []int32 {
	dist := make([]int32, g.NumNodes())
	BFS(g, src, dist)
	return dist
}

// MultiSourceBFS computes, for every node, the distance to the nearest of the
// given sources (the lower envelope of the sources' BFS trees). It is used by
// dispersion-based selection, where each greedy step needs the minimum
// distance to the already-selected set. dist must have length g.NumNodes().
func MultiSourceBFS(g *graph.Graph, sources []int, dist []int32) {
	n := g.NumNodes()
	if len(dist) != n {
		panic(fmt.Sprintf("sssp: dist buffer length %d, graph has %d nodes", len(dist), n))
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if s < 0 || s >= n {
			panic(fmt.Sprintf("sssp: source %d out of range [0,%d)", s, n))
		}
		if dist[s] == Unreachable {
			dist[s] = 0
			queue = append(queue, int32(s))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
}

// Eccentricity returns the greatest finite distance from src.
func Eccentricity(g *graph.Graph, src int) int32 {
	dist := make([]int32, g.NumNodes())
	_, ecc := BFS(g, src, dist)
	return ecc
}

// DoubleSweepLowerBound estimates the diameter of the component containing
// start with two BFS sweeps: the eccentricity of the farthest node found from
// start. The result is a lower bound on, and in practice usually equal to,
// the true diameter; exact diameters come from topk's all-pairs sweep.
func DoubleSweepLowerBound(g *graph.Graph, start int) int32 {
	dist := make([]int32, g.NumNodes())
	BFS(g, start, dist)
	far, farDist := start, int32(0)
	for v, d := range dist {
		if d > farDist {
			far, farDist = v, d
		}
	}
	_, ecc := BFS(g, far, dist)
	return ecc
}

// Path returns one shortest path from src to dst as a node sequence
// (inclusive), or nil if dst is unreachable. It runs a parent-tracking BFS;
// among equal-length paths the one through lowest-ID parents is returned,
// making the result deterministic.
func Path(g *graph.Graph, src, dst int) []int {
	n := g.NumNodes()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		panic(fmt.Sprintf("sssp: path endpoints (%d, %d) out of range [0,%d)", src, dst, n))
	}
	if src == dst {
		return []int{src}
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = int32(src)
	queue := append(make([]int32, 0, 256), int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if parent[v] >= 0 {
				continue
			}
			parent[v] = u
			if int(v) == dst {
				// Reconstruct by walking parents back to src.
				var rev []int
				for x := int32(dst); x != int32(src); x = parent[x] {
					rev = append(rev, int(x))
				}
				rev = append(rev, src)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, v)
		}
	}
	return nil
}
