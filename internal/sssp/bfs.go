// Package sssp implements the single-source shortest-path engines the paper
// treats as its unit of computational cost: breadth-first search for
// unweighted snapshots, Dijkstra's algorithm for weighted ones, and a
// parallel all-sources driver used to compute exact ground truth.
//
// Distances are int32; Unreachable marks node pairs in different connected
// components. Engines reuse caller-provided buffers so that tight loops
// (candidate generation, all-pairs sweeps) do not allocate per source.
//
// Three interchangeable BFS kernels back the unweighted entry points (see
// Engine): the scalar TopDown baseline, a Beamer-style DirectionOpt hybrid,
// and a BitParallel64 multi-source batch engine used by the all-sources
// drivers. All of them produce bit-identical distances.
package sssp

import (
	"fmt"
	"time"

	"repro/internal/graph"
)

// Unreachable is the distance reported for nodes with no path from the
// source. It is negative so that max-style comparisons ignore it naturally.
const Unreachable int32 = -1

// BFS computes unweighted shortest-path distances from src into dist, which
// must have length g.NumNodes(). Unreached nodes get Unreachable. It returns
// the number of reached nodes (including src) and the eccentricity of src
// within its component. The kernel is chosen by the Auto engine; use
// BFSWith to pin one or to thread a per-worker Scratch.
func BFS(g *graph.Graph, src int, dist []int32) (reached int, ecc int32) {
	return BFSWith(g, src, dist, Auto, nil)
}

// BFSWith is BFS with an explicit engine and scratch space. A nil scratch
// borrows one from an internal pool; parallel drivers pass one per worker
// so the whole sweep allocates nothing per source. Intra-traversal
// parallelism follows the process default (SetDefaultParallelism); use
// ParallelBFSWith to pin it per call.
//
//convlint:hotpath
func BFSWith(g *graph.Graph, src int, dist []int32, e Engine, s *Scratch) (reached int, ecc int32) {
	return ParallelBFSWith(g, src, dist, e, 0, s)
}

// ParallelBFSWith is BFSWith with an explicit intra-traversal parallelism:
// the number of cores this one traversal may split its frontiers across
// (0 = the process default, <= 1 = serial). Every (engine, parallelism)
// combination produces bit-identical results; parallelism changes only
// wall-clock, never distances, budget, or traversal-work metrics.
//
//convlint:hotpath
func ParallelBFSWith(g *graph.Graph, src int, dist []int32, e Engine, par int, s *Scratch) (reached int, ecc int32) {
	n := g.NumNodes()
	if len(dist) != n {
		panic(fmt.Sprintf("sssp: dist buffer length %d, graph has %d nodes", len(dist), n))
	}
	if src < 0 || src >= n {
		panic(fmt.Sprintf("sssp: source %d out of range [0,%d)", src, n))
	}
	if s == nil {
		s = getScratch(n)
		defer putScratch(s)
	} else {
		s.ensure(n)
	}
	k := resolvePar(par)
	switch eng := resolveSingle(e); eng {
	case DirectionOpt:
		for i := range dist {
			dist[i] = Unreachable
		}
		if k > 1 {
			return parBFS(g, src, dist, k, true, s)
		}
		return dirOptBFS(g, src, dist, s)
	case BitParallel64, BitParallel256, BitParallel512:
		// One-lane batch: correct but without batching leverage; selectable
		// for differential testing and ablations. The scratch-owned one-lane
		// views keep this path allocation-free like the other engines.
		s.oneSrc[0] = src
		s.oneRow[0] = dist
		if W := eng.wideWords(); W > 1 || k > 1 {
			msBFSBatchWide(g, s.oneSrc[:], s.oneRow[:], W, k, s)
		} else {
			msBFSBatch(g, s.oneSrc[:], s.oneRow[:], s)
		}
		s.oneRow[0] = nil
		for _, d := range dist {
			if d >= 0 {
				reached++
				if d > ecc {
					ecc = d
				}
			}
		}
		return reached, ecc
	default:
		for i := range dist {
			dist[i] = Unreachable
		}
		if k > 1 {
			return parBFS(g, src, dist, k, false, s)
		}
		return topDownBFS(g, src, dist, s)
	}
}

// Distances is a convenience wrapper around BFS that allocates the buffer.
func Distances(g *graph.Graph, src int) []int32 {
	dist := make([]int32, g.NumNodes())
	BFS(g, src, dist)
	return dist
}

// MultiSourceBFS computes, for every node, the distance to the nearest of the
// given sources (the lower envelope of the sources' BFS trees). It is used by
// dispersion-based selection, where each greedy step needs the minimum
// distance to the already-selected set. dist must have length g.NumNodes().
func MultiSourceBFS(g *graph.Graph, sources []int, dist []int32) {
	MultiSourceBFSWith(g, sources, dist, nil)
}

// MultiSourceBFSWith is MultiSourceBFS with caller-provided scratch space,
// for tight loops that seed from a growing set.
//
//convlint:hotpath
func MultiSourceBFSWith(g *graph.Graph, sources []int, dist []int32, s *Scratch) {
	//convlint:nondet sweep latency is observational, not part of results
	start := time.Now()
	n := g.NumNodes()
	if len(dist) != n {
		panic(fmt.Sprintf("sssp: dist buffer length %d, graph has %d nodes", len(dist), n))
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	if s == nil {
		s = getScratch(n)
		defer putScratch(s)
	} else {
		s.ensure(n)
	}
	offsets, neighbors := g.CSR()
	q := s.queue[:0]
	for _, src := range sources {
		if src < 0 || src >= n {
			panic(fmt.Sprintf("sssp: source %d out of range [0,%d)", src, n))
		}
		if dist[src] == Unreachable {
			dist[src] = 0
			q = append(q, int32(src))
		}
	}
	// Metrics accumulate in registers; the queue is level-ordered, so runs
	// of equal distances bound the frontier peak.
	var edges int64
	peak, runLen := 0, 0
	runLevel := int32(0)
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		if du != runLevel {
			if runLen > peak {
				peak = runLen
			}
			runLen, runLevel = 0, du
		}
		runLen++
		edges += int64(offsets[u+1] - offsets[u])
		for _, v := range neighbors[offsets[u]:offsets[u+1]] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				q = append(q, v)
			}
		}
	}
	if runLen > peak {
		peak = runLen
	}
	km := &kernelMetrics[kEnvelope]
	km.calls.Add(1)
	km.sources.Add(int64(len(sources)))
	km.nodes.Add(int64(len(q)))
	km.edges.Add(edges)
	peakMax(&km.frontierPeak, int64(peak))
	observeSweep(kEnvelope, start, int64(len(sources)), int64(len(q)), edges)
	s.queue = q[:0]
}

// Eccentricity returns the greatest finite distance from src.
func Eccentricity(g *graph.Graph, src int) int32 {
	return EccentricityInto(g, src, make([]int32, g.NumNodes()), nil)
}

// EccentricityInto is Eccentricity with a caller-provided distance buffer
// (length g.NumNodes()) and optional scratch, for loops sweeping many
// sources.
func EccentricityInto(g *graph.Graph, src int, dist []int32, s *Scratch) int32 {
	_, ecc := BFSWith(g, src, dist, Auto, s)
	return ecc
}

// DoubleSweepLowerBound estimates the diameter of the component containing
// start with two BFS sweeps: the eccentricity of the farthest node found from
// start. The result is a lower bound on, and in practice usually equal to,
// the true diameter; exact diameters come from topk's all-pairs sweep.
func DoubleSweepLowerBound(g *graph.Graph, start int) int32 {
	return DoubleSweepLowerBoundInto(g, start, make([]int32, g.NumNodes()), nil)
}

// DoubleSweepLowerBoundInto is DoubleSweepLowerBound with a caller-provided
// distance buffer (length g.NumNodes()) and optional scratch.
func DoubleSweepLowerBoundInto(g *graph.Graph, start int, dist []int32, s *Scratch) int32 {
	BFSWith(g, start, dist, Auto, s)
	far, farDist := start, int32(0)
	for v, d := range dist {
		if d > farDist {
			far, farDist = v, d
		}
	}
	_, ecc := BFSWith(g, far, dist, Auto, s)
	return ecc
}

// Path returns one shortest path from src to dst as a node sequence
// (inclusive), or nil if dst is unreachable. It runs a parent-tracking BFS;
// among equal-length paths the one through lowest-ID parents is returned,
// making the result deterministic.
func Path(g *graph.Graph, src, dst int) []int {
	n := g.NumNodes()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		panic(fmt.Sprintf("sssp: path endpoints (%d, %d) out of range [0,%d)", src, dst, n))
	}
	if src == dst {
		return []int{src}
	}
	offsets, neighbors := g.CSR()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = int32(src)
	s := getScratch(n)
	defer putScratch(s)
	q := s.queue[:0]
	q = append(q, int32(src))
	defer func() { s.queue = q[:0] }()
	for head := 0; head < len(q); head++ {
		u := q[head]
		for _, v := range neighbors[offsets[u]:offsets[u+1]] {
			if parent[v] >= 0 {
				continue
			}
			parent[v] = u
			if int(v) == dst {
				// Reconstruct by walking parents back to src.
				var rev []int
				for x := int32(dst); x != int32(src); x = parent[x] {
					rev = append(rev, int(x))
				}
				rev = append(rev, src)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			q = append(q, v)
		}
	}
	return nil
}
