package sssp

import (
	"fmt"
	"time"

	"repro/internal/graph"
)

// heapItem is an entry of the Dijkstra priority queue.
type heapItem struct {
	node int32
	dist int32
}

// minHeap is a hand-rolled binary min-heap on distance. It is a plain slice
// heap (lazy deletion, no decrease-key): stale entries are skipped on pop,
// which is the standard simple-and-fast Dijkstra variant.
type minHeap []heapItem

// push sifts a new entry up. The only allocation is the slice's own
// amortized growth, which the enclosing Dijkstra pre-sizes.
//
//convlint:hotpath
func (h *minHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist <= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

// pop removes the minimum and sifts the tail down, allocation-free.
//
//convlint:hotpath
func (h *minHeap) pop() heapItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && old[l].dist < old[smallest].dist {
			smallest = l
		}
		if r < last && old[r].dist < old[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		old[i], old[smallest] = old[smallest], old[i]
		i = smallest
	}
	return top
}

// DijkstraScratch holds the reusable working state of repeated Dijkstra
// calls from one goroutine: the settled bitmap and the priority queue's
// backing array. Like sssp.Scratch it is share-by-pointer (scratchcopy
// enforces no by-value copies) and not safe for concurrent use.
type DijkstraScratch struct {
	done []bool
	heap minHeap
}

// NewDijkstraScratch allocates a scratch sized for n-node graphs; it grows
// transparently if later used on a larger graph.
func NewDijkstraScratch(n int) *DijkstraScratch {
	return &DijkstraScratch{done: make([]bool, n), heap: make(minHeap, 0, 256)}
}

// ensure resets the scratch for a fresh run over n nodes.
func (s *DijkstraScratch) ensure(n int) {
	if cap(s.done) < n {
		s.done = make([]bool, n)
	} else {
		s.done = s.done[:n]
		clear(s.done)
	}
	s.heap = s.heap[:0]
}

// Dijkstra computes weighted shortest-path distances from src into dist,
// which must have length g.NumNodes(). Unreached nodes get Unreachable.
// Weights must be non-negative (enforced by graph.NewWeighted).
func Dijkstra(g *graph.Weighted, src int, dist []int32) {
	DijkstraWith(g, src, dist, nil)
}

// DijkstraWith is Dijkstra with an explicit scratch, so repeated calls from
// one goroutine reuse the settled bitmap and heap storage (the weighted
// analogue of BFSWith). A nil scratch allocates a fresh one.
func DijkstraWith(g *graph.Weighted, src int, dist []int32, s *DijkstraScratch) {
	//convlint:nondet sweep latency is observational, not part of results
	start := time.Now()
	n := g.NumNodes()
	if len(dist) != n {
		panic(fmt.Sprintf("sssp: dist buffer length %d, graph has %d nodes", len(dist), n))
	}
	if src < 0 || src >= n {
		panic(fmt.Sprintf("sssp: source %d out of range [0,%d)", src, n))
	}
	if s == nil {
		s = NewDijkstraScratch(n)
	}
	s.ensure(n)
	done, h := s.done, &s.heap
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	h.push(heapItem{node: int32(src), dist: 0})
	var settled, edges, heapPeak int64
	for len(*h) > 0 {
		if hl := int64(len(*h)); hl > heapPeak {
			heapPeak = hl
		}
		it := h.pop()
		u := it.node
		if done[u] {
			continue // stale entry
		}
		done[u] = true
		settled++
		adj, ws := g.Neighbors(int(u))
		edges += int64(len(adj))
		for i, v := range adj {
			nd := it.dist + ws[i]
			if dist[v] == Unreachable || nd < dist[v] {
				dist[v] = nd
				h.push(heapItem{node: v, dist: nd})
			}
		}
	}
	s.heap = *h
	km := &kernelMetrics[kDijkstra]
	km.calls.Add(1)
	km.sources.Add(1)
	km.nodes.Add(settled)
	km.edges.Add(edges)
	peakMax(&km.frontierPeak, heapPeak)
	observeSweep(kDijkstra, start, 1, settled, edges)
}

// WeightedDistances is a convenience wrapper around Dijkstra that allocates
// the result buffer.
func WeightedDistances(g *graph.Weighted, src int) []int32 {
	dist := make([]int32, g.NumNodes())
	Dijkstra(g, src, dist)
	return dist
}
