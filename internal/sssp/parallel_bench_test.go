package sssp

import (
	"fmt"
	"testing"
)

// BenchmarkParallelBFS measures a single scalar traversal at increasing
// intra-traversal parallelism. Each op is one full BFS from a rotating
// source on a 50k-node graph; par=1 is the serial kernel, par>1 splits
// every frontier level across the worker pool. On a multicore host the
// speedup column of BENCH_parallel.json comes from this benchmark run at
// GOMAXPROCS >= par.
func BenchmarkParallelBFS(b *testing.B) {
	const n = 50000
	g := benchGraph(n, 1)
	dist := make([]int32, n)
	s := NewScratch(n)
	for _, e := range []Engine{TopDown, DirectionOpt} {
		for _, par := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/par=%d/n=%d", e, par, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ParallelBFSWith(g, i%n, dist, e, par, s)
				}
			})
		}
	}
}

// BenchmarkWideSweep measures the multi-source sweep across lane widths:
// each op traverses the same 1024 sources, so bitparallel64 runs 16 batch
// traversals, bitparallel256 runs 4, and bitparallel512 runs 2. The
// per-traversal cost grows with W (more visit words per node) but the
// traversal count shrinks by W, so wider kernels amortize the frontier
// scan — measurable even on one core. par>1 additionally splits each
// batch traversal's node scan across the worker pool.
func BenchmarkWideSweep(b *testing.B) {
	const n, srcCount = 50000, 1024
	g := benchGraph(n, 7)
	sources := make([]int, srcCount)
	for i := range sources {
		sources[i] = (i * (n / srcCount)) % n
	}
	for _, e := range []Engine{BitParallel64, BitParallel256, BitParallel512} {
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/par=%d/n=%d/sources=%d", e, par, n, srcCount), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					AllSourcesParEngineFunc(g, sources, 1, e, par, func(int, []int32) {})
				}
			})
		}
	}
}

// BenchmarkWideKernel isolates the lane-amortization question from driver
// allocation: with a warmed scratch, one op covers the same 256 sources
// either as four sequential 64-lane batches (the old kernel) or as one
// 256-lane traversal (the wide kernel). Per edge the wide kernel touches
// one node's 4 adjacent visit words (a single cache line) where the four
// sequential batches take four separate random accesses — so the wide
// kernel pulls ahead once the visit arrays outgrow the cache (large n)
// and is overhead-bound when they fit (small n).
func BenchmarkWideKernel(b *testing.B) {
	for _, n := range []int{50000, 400000} {
		g := benchGraph(n, 7)
		sources := make([]int, 256)
		for i := range sources {
			sources[i] = (i * (n / 256)) % n
		}
		rows := make([][]int32, 256)
		for i := range rows {
			rows[i] = make([]int32, n)
		}
		s := NewScratch(n)
		b.Run(fmt.Sprintf("4x-msbfs64/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			msBFSBatch(g, sources[:64], rows[:64], s) // warm
			for i := 0; i < b.N; i++ {
				for batch := 0; batch < 4; batch++ {
					msBFSBatch(g, sources[batch*64:(batch+1)*64], rows[batch*64:(batch+1)*64], s)
				}
			}
		})
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("1x-msbfs256/par=%d/n=%d", par, n), func(b *testing.B) {
				b.ReportAllocs()
				msBFSBatchWide(g, sources, rows, 4, par, s) // warm
				for i := 0; i < b.N; i++ {
					msBFSBatchWide(g, sources, rows, 4, par, s)
				}
			})
		}
	}
}

// BenchmarkParallelPairedSweep measures the ground-truth sweep's hot path
// (paired per-source rows on a 50k snapshot pair) with the two parallelism
// knobs composed: workers fans traversals across sources, par splits each
// traversal. The workers=1/par=1 row is the BENCH_sssp.json baseline.
func BenchmarkParallelPairedSweep(b *testing.B) {
	const n, srcCount = 50000, 1024
	g1 := benchGraph(n, 7)
	g2 := benchGraph(n, 8)
	sources := make([]int, srcCount)
	for i := range sources {
		sources[i] = (i * (n / srcCount)) % n
	}
	cfgs := []struct{ workers, par int }{{1, 1}, {1, 4}, {2, 2}, {4, 1}}
	for _, e := range []Engine{DirectionOpt, BitParallel256} {
		for _, c := range cfgs {
			b.Run(fmt.Sprintf("%s/workers=%d/par=%d", e, c.workers, c.par), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					PairedSourcesParEngineFunc(g1, g2, sources, c.workers, e, c.par, func(int, []int32, []int32) {})
				}
			})
		}
	}
}
