package sssp

import (
	"context"
	"math/bits"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Parallel level-synchronous BFS. One traversal splits each frontier across
// a pool of workers: top-down levels carve the frontier into chunks claimed
// through an atomic cursor, with discoveries claimed by CAS on a shared
// visited bitmap and appended to per-worker next-queues the coordinator
// merges between levels; bottom-up levels partition the node range on
// 64-node word boundaries so every worker owns its bitmap words outright and
// needs no atomics at all. Level-synchrony makes the distances deterministic
// — a node is only ever claimed during the one level at which BFS first
// reaches it, so every interleaving writes the same value — which the
// differential fuzz in fuzz_test.go pins against the scalar kernels.
//
// The worker pool is package-level and persistent: dispatching a level sends
// pre-existing *parRun pointers over a channel, so a warmed traversal
// allocates nothing per call (TestParallelBFSZeroAllocs) no matter how many
// levels fan out. The coordinator always participates in its own run, so a
// traversal makes progress even when every pool worker is busy serving
// another traversal, and pool workers never block on anything but the task
// channel — there is no cross-run dependency that could deadlock.

// Tuning knobs for the parallel kernels. Chunks are the unit of work-stealing
// granularity; the serial cutoffs keep small frontiers on the plain scalar
// loops where atomics would only add overhead.
const (
	// parChunkTD is the top-down frontier chunk (nodes per cursor claim).
	parChunkTD = 128
	// parChunkBU is the bottom-up chunk in bitmap words (64 nodes each);
	// word granularity is what makes worker-owned plain writes safe.
	parChunkBU = 64
	// parChunkWide / parChunkWideEmit chunk the wide MS-BFS scan and emit.
	parChunkWide     = 64
	parChunkWideEmit = 256
	// parSerialCutoff: frontiers smaller than this run the serial loop even
	// when parallelism is available.
	parSerialCutoff = 256
	// parSerialCutoffWide: same for the wide kernel's scan/emit phases.
	parSerialCutoffWide = 128
)

// parPhase selects what work() does for the current dispatch.
type parPhase int

const (
	parPhaseTopDown parPhase = iota
	parPhaseBottomUp
	parPhaseWideScan
	parPhaseWideEmit
)

// parWorkerState is one worker's slice of a fork-join level: a private
// next-queue plus register-accumulated counters the coordinator sums after
// the barrier. Padded so adjacent workers don't false-share.
type parWorkerState struct {
	queue   []int32
	reached int64
	edges   int64
	mfNext  int64
	nfNext  int64
	visits  int64
	_       [7]int64 // cache-line padding
}

// parRun is the reusable fork-join state of one traversal, embedded in its
// Scratch. The coordinator fills the shared inputs, dispatches, and reads
// the per-worker outputs after the barrier; workers claim a dense slot and
// chunk through the cursor.
type parRun struct {
	wg     sync.WaitGroup
	slots  atomic.Int32
	cursor atomic.Int64
	phase  parPhase
	k      int

	// Shared read-only inputs for the current phase.
	offsets   []int32
	neighbors []int32
	dist      []int32
	vis       []uint64
	q         []int32
	lo, hi    int
	level     int32
	n         int
	curBits   []uint64
	nxtBits   []uint64

	// Wide MS-BFS phase inputs.
	W        int
	wseen    []uint64
	wfront   []uint64
	wnext    []uint64
	nextMark []uint64
	rows     [][]int32

	workers []parWorkerState
}

// ensureWorkers grows the per-worker state block to k workers whose queues
// can hold a full n-node frontier.
func (r *parRun) ensureWorkers(k, n int) {
	if cap(r.workers) < k {
		old := r.workers
		r.workers = make([]parWorkerState, k)
		copy(r.workers, old) // keep already-grown queues
	}
	r.workers = r.workers[:cap(r.workers)]
	for i := 0; i < k; i++ {
		if cap(r.workers[i].queue) < n {
			r.workers[i].queue = make([]int32, 0, n)
		}
	}
}

// dispatch runs the current phase on k participants: k-1 pool workers plus
// the coordinator itself. It is a full barrier — every chunk has been
// processed and every worker's outputs are visible when it returns.
//
//convlint:hotpath
func (r *parRun) dispatch(k int) {
	r.k = k
	r.cursor.Store(0)
	r.slots.Store(0)
	if k > 1 {
		r.wg.Add(k - 1)
		for i := 0; i < k-1; i++ {
			parTasks <- r
		}
	}
	r.work()
	if k > 1 {
		r.wg.Wait()
	}
}

// work claims a dense worker slot, resets its state, and chews chunks until
// the cursor runs dry.
//
//convlint:hotpath
func (r *parRun) work() {
	slot := int(r.slots.Add(1)) - 1
	ws := &r.workers[slot]
	ws.queue = ws.queue[:0]
	ws.reached, ws.edges, ws.mfNext, ws.nfNext, ws.visits = 0, 0, 0, 0, 0
	switch r.phase {
	case parPhaseTopDown:
		r.topDownChunks(ws)
	case parPhaseBottomUp:
		r.bottomUpChunks(ws)
	case parPhaseWideScan:
		r.wideScanChunks(ws)
	case parPhaseWideEmit:
		r.wideEmitChunks(ws)
	}
}

// Persistent traversal worker pool. Workers are spawned lazily up to
// maxTraversalWorkers-1 (the coordinator is always the missing participant)
// and then live for the life of the process, so steady-state dispatch is a
// channel send of an existing pointer — no goroutine spawns, no closures.
var (
	parTasks    = make(chan *parRun, maxTraversalWorkers)
	parPoolMu   sync.Mutex
	parPoolSize atomic.Int32
)

// ensureParPool makes sure at least k-1 pool workers exist.
func ensureParPool(k int) {
	need := int32(k - 1)
	if need <= 0 || parPoolSize.Load() >= need {
		return
	}
	parPoolMu.Lock()
	for parPoolSize.Load() < need {
		parPoolSize.Add(1)
		go parPoolWorker(parTasks)
	}
	parPoolMu.Unlock()
}

// parPoolWorker serves fork-join tasks until its channel closes, labeled so
// CPU profiles attribute intra-traversal parallelism to the sssp subsystem.
// The channel is bound at spawn time so a drain/respawn cycle can't hand a
// stale worker the replacement channel.
func parPoolWorker(tasks chan *parRun) {
	defer parPoolSize.Add(-1)
	pprof.Do(context.Background(), pprof.Labels("subsystem", "sssp-traversal", "role", "pool-worker"),
		func(context.Context) {
			for r := range tasks {
				r.work()
				r.wg.Done()
			}
		})
}

// drainParPool shuts down every pool worker and installs a fresh task
// channel, so the next ensureParPool respawns the pool from zero. The caller
// must guarantee no traversal is in flight: dispatch sends on the live
// channel without holding parPoolMu, so a concurrent traversal would send on
// a closed channel. Used by shutdown/reuse stress tests; the production
// process keeps its pool for life.
func drainParPool() {
	parPoolMu.Lock()
	defer parPoolMu.Unlock()
	close(parTasks)
	for parPoolSize.Load() > 0 {
		runtime.Gosched()
	}
	parTasks = make(chan *parRun, maxTraversalWorkers)
}

// orUint64 ORs v into *p with a CAS loop (Go 1.22-compatible stand-in for
// atomic.OrUint64).
func orUint64(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old|v == old || atomic.CompareAndSwapUint64(p, old, old|v) {
			return
		}
	}
}

// topDownChunks is one worker's share of a parallel top-down level: claim
// frontier chunks, CAS-claim discoveries on the shared visited bitmap, and
// collect winners into the private queue. The distance write is plain — only
// the CAS winner performs it, and nothing reads dist[v] until after the
// level barrier.
//
//convlint:hotpath
func (r *parRun) topDownChunks(ws *parWorkerState) {
	offsets, neighbors, dist, vis := r.offsets, r.neighbors, r.dist, r.vis
	q, lo, hi := r.q, r.lo, r.hi
	level := r.level
	local := ws.queue[:0]
	var edges, reached, mfNext int64
	for {
		start := lo + int(r.cursor.Add(parChunkTD)) - parChunkTD
		if start >= hi {
			break
		}
		end := start + parChunkTD
		if end > hi {
			end = hi
		}
		for _, u := range q[start:end] {
			edges += int64(offsets[u+1] - offsets[u])
			for _, v := range neighbors[offsets[u]:offsets[u+1]] {
				w := v >> 6
				bit := uint64(1) << (uint(v) & 63)
				if atomic.LoadUint64(&vis[w])&bit != 0 {
					continue
				}
				for {
					old := atomic.LoadUint64(&vis[w])
					if old&bit != 0 {
						break
					}
					if atomic.CompareAndSwapUint64(&vis[w], old, old|bit) {
						dist[v] = level + 1
						reached++
						mfNext += int64(offsets[v+1] - offsets[v])
						local = append(local, v)
						break
					}
				}
			}
		}
	}
	ws.queue = local
	ws.reached, ws.edges, ws.mfNext = reached, edges, mfNext
}

// bottomUpChunks is one worker's share of a parallel bottom-up level. Chunks
// are word-aligned node ranges, so the visited bitmap, next-frontier bitmap,
// and dist entries this worker writes live in words no other worker touches
// — plain operations throughout; the only atomic is the chunk cursor.
//
//convlint:hotpath
//convlint:shared chunks are word-aligned so each vis/nxt word has exactly one writer per level
func (r *parRun) bottomUpChunks(ws *parWorkerState) {
	offsets, neighbors, dist, vis := r.offsets, r.neighbors, r.dist, r.vis
	cur, nxt := r.curBits, r.nxtBits
	n := r.n
	level := r.level
	words := (n + 63) / 64
	var edges, reached, mfNext, nfNext int64
	for {
		wstart := int(r.cursor.Add(parChunkBU)) - parChunkBU
		if wstart >= words {
			break
		}
		wend := wstart + parChunkBU
		if wend > words {
			wend = words
		}
		vend := wend << 6
		if vend > n {
			vend = n
		}
		for v := wstart << 6; v < vend; v++ {
			if vis[v>>6]&(1<<(uint(v)&63)) != 0 {
				continue
			}
			for _, w := range neighbors[offsets[v]:offsets[v+1]] {
				edges++
				if cur[w>>6]&(1<<(uint(w)&63)) != 0 {
					dist[v] = level + 1
					vis[v>>6] |= 1 << (uint(v) & 63)
					nxt[v>>6] |= 1 << (uint(v) & 63)
					reached++
					mfNext += int64(offsets[v+1] - offsets[v])
					nfNext++
					break
				}
			}
		}
	}
	ws.reached, ws.edges, ws.mfNext, ws.nfNext = reached, edges, mfNext, nfNext
}

// parBFS is the parallel level-synchronous kernel behind the TopDown and
// DirectionOpt engines at parallelism > 1. It mirrors dirOptBFS exactly —
// same Beamer alpha/beta switching on the same deterministic mf/mu/nf
// aggregates, same metrics — but executes each level on up to k cores.
// Distances, reached, and ecc are bit-identical to the scalar kernels.
//
//convlint:hotpath
//convlint:shared plain vis access is confined to serial phases (setup and sub-cutoff levels) with no worker in flight
func parBFS(g *graph.Graph, src int, dist []int32, k int, dirOpt bool, s *Scratch) (reached int, ecc int32) {
	//convlint:nondet sweep latency is observational, not part of results
	start := time.Now()
	offsets, neighbors := g.CSR()
	n := g.NumNodes()
	words := (n + 63) / 64
	s.ensurePar(n, k)
	ensureParPool(k)

	clearWords(s.vis[:words])
	q := s.queue[:0]
	q = append(q, int32(src))
	dist[src] = 0
	s.vis[src>>6] |= 1 << (uint(src) & 63)
	reached = 1

	mf := int64(offsets[src+1] - offsets[src])
	mu := 2*int64(g.NumEdges()) - mf

	level := int32(0)
	levelStart, levelEnd := 0, 1
	bottomUp := false
	nf := 1

	var edges, tdSteps, buSteps, switches int64
	peak := 1
	coresPeak := 1

	r := &s.par
	r.offsets, r.neighbors, r.dist, r.vis = offsets, neighbors, dist, s.vis
	r.n = n

	for {
		if dirOpt && !bottomUp && mf > mu/dirOptAlpha && nf > 1 {
			clearWords(s.cur[:words])
			for _, u := range q[levelStart:levelEnd] {
				s.cur[u>>6] |= 1 << (uint(u) & 63)
			}
			bottomUp = true
			switches++
		} else if dirOpt && bottomUp && nf < n/dirOptBeta {
			levelStart = len(q)
			for w, word := range s.cur[:words] {
				for word != 0 {
					q = append(q, int32(w<<6+bits.TrailingZeros64(word)))
					word &= word - 1
				}
			}
			levelEnd = len(q)
			bottomUp = false
			switches++
		}

		if !bottomUp {
			tdSteps++
			var mfNext int64
			if frontier := levelEnd - levelStart; k > 1 && frontier >= parSerialCutoff {
				kk := k
				if mc := (frontier + parChunkTD - 1) / parChunkTD; kk > mc {
					kk = mc
				}
				if kk > coresPeak {
					coresPeak = kk
				}
				r.phase = parPhaseTopDown
				r.q = q
				r.lo, r.hi = levelStart, levelEnd
				r.level = level
				r.dispatch(kk)
				for i := 0; i < kk; i++ {
					ws := &r.workers[i]
					q = append(q, ws.queue...)
					reached += int(ws.reached)
					edges += ws.edges
					mfNext += ws.mfNext
				}
			} else {
				for head := levelStart; head < levelEnd; head++ {
					u := q[head]
					edges += int64(offsets[u+1] - offsets[u])
					for _, v := range neighbors[offsets[u]:offsets[u+1]] {
						w := v >> 6
						bit := uint64(1) << (uint(v) & 63)
						if s.vis[w]&bit != 0 {
							continue
						}
						s.vis[w] |= bit
						dist[v] = level + 1
						reached++
						mfNext += int64(offsets[v+1] - offsets[v])
						q = append(q, v)
					}
				}
			}
			levelStart, levelEnd = levelEnd, len(q)
			nf = levelEnd - levelStart
			mf = mfNext
			mu -= mfNext
		} else {
			// Bottom-up always goes through dispatch: chunk claims are one
			// atomic per 64 words, and dispatch(1) degenerates to the plain
			// serial scan.
			buSteps++
			clearWords(s.nxt[:words])
			kk := k
			if mc := (words + parChunkBU - 1) / parChunkBU; kk > mc {
				kk = mc
			}
			if kk < 1 {
				kk = 1
			}
			if kk > coresPeak {
				coresPeak = kk
			}
			r.phase = parPhaseBottomUp
			r.curBits, r.nxtBits = s.cur, s.nxt
			r.level = level
			r.dispatch(kk)
			var mfNext, nfNext int64
			for i := 0; i < kk; i++ {
				ws := &r.workers[i]
				reached += int(ws.reached)
				edges += ws.edges
				mfNext += ws.mfNext
				nfNext += ws.nfNext
			}
			mu -= mfNext
			s.cur, s.nxt = s.nxt, s.cur
			nf = int(nfNext)
			mf = mfNext
		}
		if nf > peak {
			peak = nf
		}
		if nf == 0 {
			break
		}
		level++
		ecc = level
	}
	s.queue = q[:0]
	ki := kTopDown
	if dirOpt {
		ki = kDirOpt
	}
	km := &kernelMetrics[ki]
	km.calls.Add(1)
	km.sources.Add(1)
	km.nodes.Add(int64(reached))
	km.edges.Add(edges)
	if dirOpt {
		km.tdSteps.Add(tdSteps)
		km.buSteps.Add(buSteps)
		km.switches.Add(switches)
	}
	peakMax(&km.frontierPeak, int64(peak))
	peakMax(&km.cores, int64(coresPeak))
	observeSweep(ki, start, 1, int64(reached), edges)
	return reached, ecc
}
