// Package incidence implements the comparison baseline of the paper (its
// reference [14], the first work on identifying converging pairs): the
// unbudgeted Incidence algorithm over the set A of "active" nodes (nodes
// that received new edges between the snapshots), its Selective Expansion
// variant, and the two budgeted rank policies the paper evaluates, IncDeg
// and IncBet.
//
// Edge importance follows the paper's own experimental setup: "we used the
// actual edge betweenness centrality, giving an advantage to the Incidence
// algorithm" — so IncBet and Selective Expansion consume exact Brandes edge
// betweenness, whose cost is deliberately NOT charged to the SSSP budget
// meter (betweenness needs all-sources work; charging it honestly would
// instantly exhaust any budget, which is exactly the paper's criticism).
package incidence

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/betweenness"
	"repro/internal/candidates"
	"repro/internal/graph"
	"repro/internal/sssp"
	"repro/internal/topk"
)

// ActiveNodes returns the nodes that received at least one new edge between
// the snapshots and that already existed in G_t1 (brand-new nodes cannot
// participate in a converging pair, whose endpoints must be connected in
// G_t1). Sorted ascending.
func ActiveNodes(pair graph.SnapshotPair) []int {
	seen := map[int]bool{}
	for _, e := range pair.NewEdges() {
		for _, u := range [2]int{e.U, e.V} {
			if pair.G1.Degree(u) > 0 {
				seen[u] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// FullResult is the outcome of an unbudgeted Incidence run.
type FullResult struct {
	// Active is the candidate set A the run used (after any expansion).
	Active []int
	// Pairs are the discovered converging pairs (Delta >= MinDelta), in
	// canonical order.
	Pairs []topk.Pair
	// SSSPCount is the number of single-source shortest-path computations
	// performed: 2|A| per round.
	SSSPCount int
	// Rounds is 1 for Full; Selective Expansion reports its iterations.
	Rounds int
}

// Full runs the original, unbudgeted Incidence algorithm: single-source
// shortest paths from every active node on both snapshots, keeping every
// pair whose distance decreased by at least minDelta (>=1).
func Full(pair graph.SnapshotPair, minDelta int32, workers int) (*FullResult, error) {
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	active := ActiveNodes(pair)
	pairs, sssps, err := pairsFrom(pair, active, minDelta, workers)
	if err != nil {
		return nil, err
	}
	return &FullResult{Active: active, Pairs: pairs, SSSPCount: sssps, Rounds: 1}, nil
}

// pairsFrom runs the extraction phase from an explicit source set,
// parallelized across sources (the active set can be half the graph, so
// this is the baseline's dominant cost).
//
//convlint:unbudgeted the [14] baseline reports its SSSP count to callers instead of enforcing a limit
func pairsFrom(pair graph.SnapshotPair, sources []int, minDelta int32, workers int) ([]topk.Pair, int, error) {
	if minDelta < 1 {
		minDelta = 1
	}
	if len(sources) == 0 {
		return nil, 0, nil
	}
	n := pair.G1.NumNodes()
	inSet := make(map[int]bool, len(sources))
	for _, u := range sources {
		inSet[u] = true
	}
	var mu sync.Mutex
	var all []topk.Pair
	sssp.PairedSourcesFunc(pair.G1, pair.G2, sources, workers, func(u int, d1, d2 []int32) {
		var local []topk.Pair
		for v := 0; v < n; v++ {
			if v == u || (inSet[v] && v < u) {
				continue
			}
			if d1[v] <= 0 {
				continue
			}
			delta := d1[v] - d2[v]
			if delta < minDelta {
				continue
			}
			p := topk.Pair{U: int32(u), V: int32(v), D1: d1[v], D2: d2[v], Delta: delta}
			if p.U > p.V {
				p.U, p.V = p.V, p.U
			}
			local = append(local, p)
		}
		if len(local) > 0 {
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}
	})
	topk.SortPairs(all)
	return all, 2 * len(sources), nil
}

// ExpansionOptions configures SelectiveExpansion.
type ExpansionOptions struct {
	// MinDelta keeps pairs with at least this distance decrease (>=1).
	MinDelta int32
	// MaxRounds bounds the expansion iterations; 0 means 5.
	MaxRounds int
	// PerRound bounds how many neighbors join A each round; 0 means the
	// size of the initial active set.
	PerRound int
	// Workers bounds parallelism of the betweenness computation.
	Workers int
}

// SelectiveExpansion runs the iterative variant of [14]: after each
// Incidence round, the neighbors of the current candidate set are evaluated
// by their number of "important" edges (edges whose exact betweenness in
// G_t2 is above the median), the best-ranked join A, and the process repeats
// until a round discovers no new pairs or MaxRounds is hit. The paper notes
// this process is very time consuming — it tends toward the all-pairs
// baseline — which the SSSPCount field makes measurable.
func SelectiveExpansion(pair graph.SnapshotPair, opts ExpansionOptions) (*FullResult, error) {
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 5
	}
	active := ActiveNodes(pair)
	if opts.PerRound <= 0 {
		opts.PerRound = len(active)
	}
	eb := betweenness.Edges(pair.G2, opts.Workers)
	important := importantEdges(eb)

	inA := make(map[int]bool, len(active))
	for _, u := range active {
		inA[u] = true
	}
	result := &FullResult{}
	prevPairs := -1
	for round := 0; round < opts.MaxRounds; round++ {
		pairs, sssps, err := pairsFrom(pair, active, opts.MinDelta, opts.Workers)
		if err != nil {
			return nil, err
		}
		result.Pairs = pairs
		result.SSSPCount += sssps
		result.Rounds = round + 1
		if len(pairs) == prevPairs {
			break
		}
		prevPairs = len(pairs)

		// Rank non-member neighbors by their number of important edges.
		type scored struct {
			node  int
			count int
		}
		var frontier []scored
		seen := map[int]bool{}
		for _, u := range active {
			for _, v := range pair.G2.Neighbors(u) {
				w := int(v)
				if inA[w] || seen[w] || pair.G1.Degree(w) == 0 {
					continue
				}
				seen[w] = true
				count := 0
				for _, x := range pair.G2.Neighbors(w) {
					if important[graph.Edge{U: w, V: int(x)}.Canon()] {
						count++
					}
				}
				if count > 0 {
					frontier = append(frontier, scored{node: w, count: count})
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		sort.Slice(frontier, func(i, j int) bool {
			if frontier[i].count != frontier[j].count {
				return frontier[i].count > frontier[j].count
			}
			return frontier[i].node < frontier[j].node
		})
		if len(frontier) > opts.PerRound {
			frontier = frontier[:opts.PerRound]
		}
		for _, s := range frontier {
			active = append(active, s.node)
			inA[s.node] = true
		}
		sort.Ints(active)
	}
	result.Active = active
	return result, nil
}

// importantEdges marks edges whose betweenness exceeds the median — the
// "important edge" notion Selective Expansion ranks neighbors with.
func importantEdges(eb betweenness.EdgeScores) map[graph.Edge]bool {
	if len(eb) == 0 {
		return nil
	}
	vals := make([]float64, 0, len(eb))
	for _, v := range eb {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	median := vals[len(vals)/2]
	out := make(map[graph.Edge]bool)
	for e, v := range eb {
		if v > median {
			out[e] = true
		}
	}
	return out
}

// --- Budgeted rank policies (Selectors) ---

// incDeg ranks active nodes by absolute degree increase.
type incDeg struct{}

// IncDeg is the degree-based budgeted Incidence policy: the m active nodes
// with the largest deg_t2(u) - deg_t1(u).
func IncDeg() candidates.Selector { return incDeg{} }

func (incDeg) Name() string { return "IncDeg" }

func (incDeg) Select(ctx *candidates.Context) ([]int, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	pair, err := ctx.Unweighted()
	if err != nil {
		return nil, fmt.Errorf("IncDeg: %w", err)
	}
	active := ActiveNodes(pair)
	sort.Slice(active, func(i, j int) bool {
		di := pair.G2.Degree(active[i]) - pair.G1.Degree(active[i])
		dj := pair.G2.Degree(active[j]) - pair.G1.Degree(active[j])
		if di != dj {
			return di > dj
		}
		return active[i] < active[j]
	})
	if len(active) > ctx.M {
		active = active[:ctx.M]
	}
	return active, nil
}

// incBet ranks active nodes by the increase in the total exact edge
// betweenness of their incident edges.
type incBet struct{}

// IncBet is the betweenness-based budgeted Incidence policy: the m active
// nodes with the largest increase in total betweenness of incident edges
// between the snapshots. The two Brandes computations are performed outside
// the SSSP budget (see the package comment).
func IncBet() candidates.Selector { return incBet{} }

func (incBet) Name() string { return "IncBet" }

func (incBet) Select(ctx *candidates.Context) ([]int, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	pair, err := ctx.Unweighted()
	if err != nil {
		return nil, fmt.Errorf("IncBet: %w", err)
	}
	eb1 := betweenness.Edges(pair.G1, ctx.Workers)
	eb2 := betweenness.Edges(pair.G2, ctx.Workers)
	score := func(u int) float64 {
		var s float64
		for _, v := range pair.G2.Neighbors(u) {
			s += eb2[graph.Edge{U: u, V: int(v)}.Canon()]
		}
		for _, v := range pair.G1.Neighbors(u) {
			s -= eb1[graph.Edge{U: u, V: int(v)}.Canon()]
		}
		return s
	}
	active := ActiveNodes(pair)
	scores := make(map[int]float64, len(active))
	for _, u := range active {
		scores[u] = score(u)
	}
	sort.Slice(active, func(i, j int) bool {
		if scores[active[i]] != scores[active[j]] {
			return scores[active[i]] > scores[active[j]]
		}
		return active[i] < active[j]
	})
	if len(active) > ctx.M {
		active = active[:ctx.M]
	}
	return active, nil
}

// Cost summarizes an unbudgeted run against a budget: how many SSSPs the
// Incidence algorithm spent versus the 2m a budgeted run would have, and the
// active-set size as a fraction of the graph (the paper's Table 6 columns).
type Cost struct {
	ActiveSize     int
	GraphSize      int
	ActiveFraction float64
	SSSPCount      int
}

// CostOf derives the Table 6 cost columns from a FullResult.
func CostOf(res *FullResult, pair graph.SnapshotPair) Cost {
	n := 0
	for u := 0; u < pair.G1.NumNodes(); u++ {
		if pair.G1.Degree(u) > 0 {
			n++
		}
	}
	frac := 0.0
	if n > 0 {
		frac = float64(len(res.Active)) / float64(n)
	}
	return Cost{
		ActiveSize:     len(res.Active),
		GraphSize:      n,
		ActiveFraction: frac,
		SSSPCount:      res.SSSPCount,
	}
}

// Budgeted is a convenience that reports how a rank policy's budget compares
// with the unbudgeted active set, formatted for logs.
func Budgeted(pair graph.SnapshotPair, m int) string {
	a := len(ActiveNodes(pair))
	return fmt.Sprintf("budget m=%d vs |A|=%d (%.1fx)", m, a, float64(a)/float64(max(m, 1)))
}
