package incidence

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/candidates"
	"repro/internal/graph"
	"repro/internal/topk"
)

func growingPair(t testing.TB, n int, seed int64) graph.SnapshotPair {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := map[graph.Edge]struct{}{}
	var stream []graph.TimedEdge
	add := func(u, v int) {
		if u == v {
			return
		}
		c := graph.Edge{U: u, V: v}.Canon()
		if _, dup := seen[c]; dup {
			return
		}
		seen[c] = struct{}{}
		stream = append(stream, graph.TimedEdge{U: u, V: v, Time: int64(len(stream))})
	}
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i))
		if i > 2 && rng.Intn(3) == 0 {
			add(i, rng.Intn(i))
		}
	}
	ev, err := graph.NewEvolving(stream)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ev.Pair(0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestActiveNodes(t *testing.T) {
	g1 := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	g2 := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	sp := graph.SnapshotPair{G1: g1, G2: g2}
	got := ActiveNodes(sp)
	// New edges: {2,3} and {3,4}; nodes 3 and 4 have degree 0 in G1, so only
	// node 2 is active.
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("active = %v, want [2]", got)
	}
}

func TestFullFindsAllCoveredPairs(t *testing.T) {
	sp := growingPair(t, 120, 1)
	res, err := Full(sp, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SSSPCount != 2*len(res.Active) {
		t.Fatalf("SSSPCount = %d, want %d", res.SSSPCount, 2*len(res.Active))
	}
	// Cross-check: every true converging pair with an active endpoint must
	// be found.
	gt, err := topk.Compute(sp, topk.Options{Workers: 2, Slack: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	activeSet := topk.NodeSet(res.Active)
	found := map[topk.Pair]bool{}
	for _, p := range res.Pairs {
		found[p] = true
	}
	for _, p := range topk.CoveredBy(gt.Pairs, activeSet) {
		if !found[p] {
			t.Fatalf("pair %v covered by active set but not found", p)
		}
	}
	for _, p := range res.Pairs {
		if !activeSet[p.U] && !activeSet[p.V] {
			t.Fatalf("pair %v found without an active endpoint", p)
		}
	}
	cost := CostOf(res, sp)
	if cost.ActiveSize != len(res.Active) || cost.ActiveFraction <= 0 || cost.ActiveFraction > 1 {
		t.Fatalf("cost = %+v", cost)
	}
}

func TestFullValidatesPair(t *testing.T) {
	bad := graph.SnapshotPair{
		G1: graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}),
		G2: graph.FromEdges(2, nil),
	}
	if _, err := Full(bad, 1, 1); err == nil {
		t.Fatal("invalid pair should fail")
	}
	if _, err := SelectiveExpansion(bad, ExpansionOptions{}); err == nil {
		t.Fatal("invalid pair should fail")
	}
}

func TestFullNoNewEdges(t *testing.T) {
	e := []graph.Edge{{U: 0, V: 1}}
	sp := graph.SnapshotPair{G1: graph.FromEdges(2, e), G2: graph.FromEdges(2, e)}
	res, err := Full(sp, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Active) != 0 || len(res.Pairs) != 0 || res.SSSPCount != 0 {
		t.Fatalf("static pair result = %+v", res)
	}
}

func TestSelectiveExpansionGrowsCoverage(t *testing.T) {
	sp := growingPair(t, 120, 2)
	full, err := Full(sp, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := SelectiveExpansion(sp, ExpansionOptions{MinDelta: 1, MaxRounds: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Pairs) < len(full.Pairs) {
		t.Fatalf("expansion found %d pairs < plain incidence %d", len(exp.Pairs), len(full.Pairs))
	}
	if len(exp.Active) < len(full.Active) {
		t.Fatal("expansion shrank the active set")
	}
	if exp.SSSPCount < full.SSSPCount {
		t.Fatal("expansion cannot be cheaper than one round")
	}
	if exp.Rounds < 1 || exp.Rounds > 3 {
		t.Fatalf("rounds = %d", exp.Rounds)
	}
}

func TestIncDegSelector(t *testing.T) {
	sp := growingPair(t, 120, 3)
	sel := IncDeg()
	if sel.Name() != "IncDeg" {
		t.Fatal("name")
	}
	ctx := &candidates.Context{Pair: sp, M: 10, Meter: budget.NewMeter(10), Workers: 2}
	got, err := sel.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 10 {
		t.Fatalf("got %d candidates", len(got))
	}
	activeSet := topk.NodeSet(ActiveNodes(sp))
	for _, u := range got {
		if !activeSet[int32(u)] {
			t.Fatalf("candidate %d not active", u)
		}
	}
	// Candidates sorted by degree gain descending.
	gain := func(u int) int { return sp.G2.Degree(u) - sp.G1.Degree(u) }
	for i := 1; i < len(got); i++ {
		if gain(got[i-1]) < gain(got[i]) {
			t.Fatal("IncDeg order violated")
		}
	}
	// Selection itself spends no SSSPs.
	if rep := ctx.Meter.Report(); rep.CandidateGen != 0 {
		t.Fatalf("IncDeg charged %d SSSPs", rep.CandidateGen)
	}
}

func TestIncBetSelector(t *testing.T) {
	sp := growingPair(t, 80, 4)
	sel := IncBet()
	if sel.Name() != "IncBet" {
		t.Fatal("name")
	}
	ctx := &candidates.Context{Pair: sp, M: 8, Meter: budget.NewMeter(8), Workers: 2}
	got, err := sel.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 8 {
		t.Fatalf("got %d candidates", len(got))
	}
	activeSet := topk.NodeSet(ActiveNodes(sp))
	for _, u := range got {
		if !activeSet[int32(u)] {
			t.Fatalf("candidate %d not active", u)
		}
	}
}

func TestBudgetedString(t *testing.T) {
	sp := growingPair(t, 80, 5)
	s := Budgeted(sp, 10)
	if !strings.Contains(s, "m=10") || !strings.Contains(s, "|A|=") {
		t.Fatalf("Budgeted = %q", s)
	}
}
