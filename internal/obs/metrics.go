package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// The metrics registry maps dotted names ("sssp.diropt.calls") to gauge
// functions read at exposition time — the expvar pattern without the JSON
// envelope, so `curl host/metrics` stays grep-able. Producers (the sssp
// kernels' atomic counters, budget meters a CLI chooses to publish) register
// once from init or setup code; WriteMetrics samples every gauge.
var (
	metricsMu sync.RWMutex
	metrics   = map[string]func() int64{}
)

// RegisterMetric installs (or replaces) a named gauge. fn must be safe to
// call from any goroutine; it is invoked on every exposition.
func RegisterMetric(name string, fn func() int64) {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	metrics[name] = fn
}

// UnregisterMetric removes a gauge (tests and short-lived meters).
func UnregisterMetric(name string) {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	delete(metrics, name)
}

// WriteMetrics samples every registered gauge and writes "name value" lines
// in sorted name order.
func WriteMetrics(w io.Writer) error {
	metricsMu.RLock()
	names := make([]string, 0, len(metrics))
	fns := make([]func() int64, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fns = append(fns, metrics[name])
	}
	metricsMu.RUnlock()
	for i, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, fns[i]()); err != nil {
			return err
		}
	}
	return nil
}
