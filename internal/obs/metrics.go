package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// The metrics registry maps metric families ("sssp.diropt.calls",
// "core.phase_ns") to typed instruments — counters, gauges, and histograms —
// optionally split into labeled series (`name{phase="selection"}`). The text
// exposition is OpenMetrics-style: one `# TYPE` line per family, then one
// sample line per series (histograms expand into `_bucket`/`_sum`/`_count`
// lines). Plain gauges still expose as bare "name value" lines, so
// `curl host/metrics | grep sssp` keeps working exactly as before the typed
// instruments existed.
//
// Producers register once from init or setup code (the sssp kernels' atomic
// counters, budget meters, the core phase histograms); WriteMetrics samples
// every instrument at exposition time. Registration is last-wins, matching
// the original RegisterMetric semantics.

// Label is one key="value" pair qualifying a metric series.
type Label struct {
	Key, Val string
}

// L builds a Label; obs.L("phase", "selection") reads better at call sites
// than a struct literal.
func L(key, val string) Label { return Label{Key: key, Val: val} }

// instrument is anything the registry can expose. series is the fully
// rendered name (family plus label set) the samples are emitted under.
type instrument interface {
	// kindName is the OpenMetrics type for the family's # TYPE line.
	kindName() string
	// writeSeries emits the instrument's sample lines for the given
	// rendered series name and raw label set.
	writeSeries(w io.Writer, family string, labels []Label) error
}

// entry is one registered series.
type entry struct {
	family string
	series string // rendered family{labels}
	labels []Label
	inst   instrument
}

var (
	metricsMu sync.RWMutex
	metrics   = map[string]entry{} // keyed by rendered series name
)

// register installs (or replaces) a series under its rendered name.
func register(family string, labels []Label, inst instrument) {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	series := renderSeries(family, ls)
	metricsMu.Lock()
	defer metricsMu.Unlock()
	metrics[series] = entry{family: family, series: series, labels: ls, inst: inst}
}

// funcGauge adapts the original func() int64 gauge registration.
type funcGauge func() int64

func (funcGauge) kindName() string { return "gauge" }

func (f funcGauge) writeSeries(w io.Writer, family string, labels []Label) error {
	_, err := fmt.Fprintf(w, "%s %d\n", renderSeries(family, labels), f())
	return err
}

// RegisterMetric installs (or replaces) a named plain gauge. fn must be safe
// to call from any goroutine; it is invoked on every exposition.
func RegisterMetric(name string, fn func() int64) {
	register(name, nil, funcGauge(fn))
}

// UnregisterMetric removes a series by its rendered name — the bare family
// for unlabeled instruments, `family{key="val"}` for labeled ones (tests and
// short-lived meters).
func UnregisterMetric(name string) {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	delete(metrics, name)
}

// renderSeries formats family{k1="v1",k2="v2"} with escaped label values;
// labels must already be sorted by key.
func renderSeries(family string, labels []Label) string {
	if len(labels) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Val))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// renderSeriesWith is renderSeries with one extra label appended in sorted
// position — how histogram buckets get their `le` without re-sorting on
// every exposition line.
func renderSeriesWith(family string, labels []Label, key, val string) string {
	merged := make([]Label, 0, len(labels)+1)
	inserted := false
	for _, l := range labels {
		if !inserted && key < l.Key {
			merged = append(merged, Label{key, val})
			inserted = true
		}
		merged = append(merged, l)
	}
	if !inserted {
		merged = append(merged, Label{key, val})
	}
	return renderSeries(family, merged)
}

// escapeLabel escapes a label value per the OpenMetrics text format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WriteMetrics samples every registered instrument and writes the text
// exposition: families in sorted name order, each preceded by its # TYPE
// line, labeled series of one family sorted among themselves.
func WriteMetrics(w io.Writer) error {
	metricsMu.RLock()
	entries := make([]entry, 0, len(metrics))
	for _, e := range metrics {
		entries = append(entries, e)
	}
	metricsMu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].family != entries[j].family {
			return entries[i].family < entries[j].family
		}
		return entries[i].series < entries[j].series
	})
	lastFamily := ""
	for _, e := range entries {
		if e.family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.family, e.inst.kindName()); err != nil {
				return err
			}
			lastFamily = e.family
		}
		if err := e.inst.writeSeries(w, e.family, e.labels); err != nil {
			return err
		}
	}
	return nil
}
