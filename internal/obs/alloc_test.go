package obs

import (
	"testing"

	"repro/internal/invariant"
)

// The hot-path instruments are called from the traversal kernels
// (//convlint:hotpath functions), so their observation paths must be
// allocation-free — the runtime backstop for what the hotalloc analyzer
// checks statically.

func TestHistogramObserveZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant builds may allocate; zero-alloc holds for default builds")
	}
	h := &Histogram{}
	v := int64(1)
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(v)
		v <<= 1
		if v <= 0 {
			v = 1
		}
	})
	if allocs != 0 {
		t.Errorf("%.1f allocs per Histogram.Observe, want 0", allocs)
	}
}

func TestCounterGaugeZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant builds may allocate; zero-alloc holds for default builds")
	}
	c := &Counter{}
	g := &Gauge{}
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(3)
		c.Inc()
		g.Set(7)
		g.Add(-1)
	})
	if allocs != 0 {
		t.Errorf("%.1f allocs per Counter/Gauge op batch, want 0", allocs)
	}
}

func TestFlightAppendZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant builds may allocate; zero-alloc holds for default builds")
	}
	f := NewFlightRecorder(8)
	rec := RunRecord{
		Kind:        "topk",
		Fingerprint: "selector=MMSD m=10",
		Phases:      PhaseNanos{Total: 1},
		Budget:      BudgetSplit{Limit: 20},
		Outcome:     "ok",
	}
	allocs := testing.AllocsPerRun(100, func() {
		f.Append(rec)
	})
	if allocs != 0 {
		t.Errorf("%.1f allocs per FlightRecorder.Append, want 0", allocs)
	}
}
