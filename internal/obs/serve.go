package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the text exposition of every registered metric.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w)
	})
}

// NewServeMux returns a mux with the full observability surface:
//
//	/metrics        text exposition of the registered instruments
//	/debug/events   the flight recorder's run records as JSONL (?n=K limits)
//	/debug/pprof/*  the standard pprof endpoints (worker goroutines carry
//	                pprof labels, so profiles split by subsystem)
func NewServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/debug/events", EventsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability HTTP server. Close shuts its listener
// down and waits for the serve loop to return, so tests (and daemons) can
// start and stop the surface without leaking goroutines or ports.
type Server struct {
	ln   net.Listener
	done chan struct{}
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server. Safe to call more than once; subsequent calls
// return the listener's already-closed error.
func (s *Server) Close() error {
	err := s.ln.Close()
	<-s.done
	return err
}

// ServeMetrics listens on addr and serves NewServeMux in a background
// goroutine. The returned Server's Close releases the port; dropping it
// instead keeps the surface up for the life of the process, which is what
// the CLIs do.
func ServeMetrics(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		_ = http.Serve(ln, NewServeMux())
	}()
	return s, nil
}
