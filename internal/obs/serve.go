package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the text exposition of every registered metric.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteMetrics(w)
	})
}

// NewServeMux returns a mux with the full observability surface:
//
//	/metrics        text exposition of the registered gauges
//	/debug/pprof/*  the standard pprof endpoints (worker goroutines carry
//	                pprof labels, so profiles split by subsystem)
func NewServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeMetrics listens on addr and serves NewServeMux in a background
// goroutine, returning the bound address (useful with ":0"). The server
// lives until the process exits — it exists to observe a running
// computation, not to outlast it.
func ServeMetrics(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, NewServeMux()) }()
	return ln.Addr().String(), nil
}
