package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// The flight recorder is a bounded ring of structured run records — one per
// TopK call or watch window — that answers "what did the last N queries look
// like?" without any external collector. Appends copy the record by value
// into a preallocated slot (no allocation in steady state, backed by
// TestFlightAppendZeroAllocs); export is JSONL via WriteJSONL, the
// /debug/events endpoint, or the CLI helper's -events flag.

// PhaseNanos carries one run's per-phase wall time in nanoseconds. Zero
// fields mean the phase did not occur (a watch-window record has only Total).
type PhaseNanos struct {
	Selection  int64 `json:"selection_ns,omitempty"`
	Extraction int64 `json:"extraction_ns,omitempty"`
	SortCut    int64 `json:"sort_cut_ns,omitempty"`
	Total      int64 `json:"total_ns"`
}

// BudgetSplit mirrors budget.Report without importing the budget package
// (obs sits below it in the import graph).
type BudgetSplit struct {
	Limit        int `json:"limit"`
	CandidateGen int `json:"candidate_gen"`
	TopK         int `json:"top_k"`
}

// KernelDelta is the traversal work a run performed, diffed from the sssp
// kernel counters around the run.
type KernelDelta struct {
	Calls       int64 `json:"calls"`
	Sources     int64 `json:"sources"`
	Nodes       int64 `json:"nodes"`
	Edges       int64 `json:"edges"`
	RepairCalls int64 `json:"repair_calls,omitempty"`
	RepairNodes int64 `json:"repair_nodes,omitempty"`
	RepairEdges int64 `json:"repair_edges,omitempty"`
	// The pruned-extraction split: how many bounded second-snapshot
	// traversals ran (and the edges they still scanned), how many were cut
	// short by the Δ-threshold, and the node visits / edge scans the cuts
	// provably avoided.
	PrunedBFSCalls     int64 `json:"prunedbfs_calls,omitempty"`
	PrunedBFSEdges     int64 `json:"prunedbfs_edges,omitempty"`
	PrunedCutoffs      int64 `json:"pruned_cutoffs,omitempty"`
	PrunedSkippedNodes int64 `json:"pruned_skipped_nodes,omitempty"`
	PrunedSkippedEdges int64 `json:"pruned_skipped_edges,omitempty"`
}

// RunRecord is one flight-recorder entry.
type RunRecord struct {
	// Seq is the record's global sequence number, assigned by Append.
	Seq int64 `json:"seq"`
	// UnixNano is the wall-clock append time.
	UnixNano int64 `json:"unix_nano"`
	// Kind distinguishes record sources: "topk", "watch-window".
	Kind string `json:"kind"`
	// Fingerprint identifies the run's options compactly, e.g.
	// "selector=MMSD m=100 k=20 seed=1 engine=auto paired=full par=1".
	Fingerprint string `json:"fingerprint"`
	// Phases is the per-phase wall time.
	Phases PhaseNanos `json:"phases"`
	// Budget is the run's SSSP spending split (mirrors budget.Report).
	Budget BudgetSplit `json:"budget"`
	// Kernels is the traversal work delta attributed to the run.
	Kernels KernelDelta `json:"kernels"`
	// Candidates and Pairs summarize the outcome size.
	Candidates int `json:"candidates"`
	Pairs      int `json:"pairs"`
	// PrunedCandidates counts candidates skipped whole by the landmark
	// upper bound (their charged rows were never traversed).
	PrunedCandidates int `json:"pruned_candidates,omitempty"`
	// Outcome is "ok" or the error text of a failed run.
	Outcome string `json:"outcome"`
}

// FlightRecorder is a fixed-capacity ring of RunRecords, safe for concurrent
// append and read.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []RunRecord
	total int64 // records ever appended; buf[(total-1) % cap] is the newest
}

// NewFlightRecorder creates a recorder holding the last capacity records
// (minimum 1).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{buf: make([]RunRecord, capacity)}
}

// Flight is the process-wide default recorder, sized for "the last few
// hundred queries" — what a daemon postmortem actually wants.
var Flight = NewFlightRecorder(256)

// Append stamps the record (Seq, UnixNano) and stores it, overwriting the
// oldest entry once the ring is full. The record is copied by value into a
// preallocated slot: no allocation in steady state.
func (f *FlightRecorder) Append(r RunRecord) {
	//convlint:nondet record timestamps are observational, not part of results
	now := time.Now().UnixNano()
	f.mu.Lock()
	r.Seq = f.total
	r.UnixNano = now
	f.buf[f.total%int64(len(f.buf))] = r
	f.total++
	f.mu.Unlock()
}

// Total returns how many records were ever appended (>= Len).
func (f *FlightRecorder) Total() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Len returns how many records are currently held.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lenLocked()
}

func (f *FlightRecorder) lenLocked() int {
	if f.total < int64(len(f.buf)) {
		return int(f.total)
	}
	return len(f.buf)
}

// Last returns copies of the newest n records, oldest first. n <= 0 or
// n > Len returns everything held.
func (f *FlightRecorder) Last(n int) []RunRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	held := f.lenLocked()
	if n <= 0 || n > held {
		n = held
	}
	out := make([]RunRecord, n)
	for i := 0; i < n; i++ {
		seq := f.total - int64(n) + int64(i)
		out[i] = f.buf[seq%int64(len(f.buf))]
	}
	return out
}

// WriteJSONL writes the newest n records (oldest first) as one JSON object
// per line. n <= 0 writes everything held.
func (f *FlightRecorder) WriteJSONL(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, r := range f.Last(n) {
		if err := enc.Encode(&r); err != nil {
			return err
		}
	}
	return nil
}

// EventsHandler serves the default flight recorder as JSONL; ?n=K limits the
// dump to the newest K records.
func EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, fmt.Sprintf("bad n=%q", q), http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = Flight.WriteJSONL(w, n)
	})
}
