package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestFlightWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Append(RunRecord{Kind: "topk", Candidates: i})
	}
	if f.Total() != 10 {
		t.Fatalf("Total=%d, want 10", f.Total())
	}
	if f.Len() != 4 {
		t.Fatalf("Len=%d, want capacity 4", f.Len())
	}
	got := f.Last(0)
	if len(got) != 4 {
		t.Fatalf("Last(0) returned %d records, want 4", len(got))
	}
	for i, r := range got {
		wantSeq := int64(6 + i) // newest 4 of 10, oldest first
		if r.Seq != wantSeq || r.Candidates != int(wantSeq) {
			t.Errorf("Last(0)[%d] = seq %d candidates %d, want %d", i, r.Seq, r.Candidates, wantSeq)
		}
	}
	got = f.Last(2)
	if len(got) != 2 || got[0].Seq != 8 || got[1].Seq != 9 {
		t.Errorf("Last(2) = %+v, want seqs 8,9", got)
	}
	// n beyond what is held clamps to Len.
	if got := f.Last(100); len(got) != 4 {
		t.Errorf("Last(100) returned %d records, want 4", len(got))
	}
}

func TestFlightBelowCapacity(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Append(RunRecord{Kind: "a"})
	f.Append(RunRecord{Kind: "b"})
	if f.Len() != 2 {
		t.Fatalf("Len=%d, want 2", f.Len())
	}
	got := f.Last(0)
	if len(got) != 2 || got[0].Kind != "a" || got[1].Kind != "b" {
		t.Fatalf("Last(0) = %+v, want kinds a,b oldest first", got)
	}
	if got[0].UnixNano == 0 {
		t.Error("Append did not stamp UnixNano")
	}
}

func TestFlightConcurrentAppend(t *testing.T) {
	f := NewFlightRecorder(16)
	const goroutines, each = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f.Append(RunRecord{Kind: "topk", Candidates: g})
				f.Last(4)
				f.Len()
			}
		}(g)
	}
	wg.Wait()
	if f.Total() != goroutines*each {
		t.Fatalf("Total=%d, want %d", f.Total(), goroutines*each)
	}
	// Sequence numbers of the held window must be consecutive.
	held := f.Last(0)
	for i := 1; i < len(held); i++ {
		if held[i].Seq != held[i-1].Seq+1 {
			t.Fatalf("non-consecutive seqs under concurrency: %d then %d", held[i-1].Seq, held[i].Seq)
		}
	}
}

func TestFlightWriteJSONL(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Append(RunRecord{
		Kind:        "topk",
		Fingerprint: "selector=MMSD m=10",
		Phases:      PhaseNanos{Selection: 5, Extraction: 7, SortCut: 1, Total: 13},
		Budget:      BudgetSplit{Limit: 20, CandidateGen: 4, TopK: 16},
		Kernels:     KernelDelta{Calls: 3, Nodes: 100, Edges: 500},
		Candidates:  10, Pairs: 2, Outcome: "ok",
	})
	f.Append(RunRecord{Kind: "watch-window", Outcome: "boom"})

	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var recs []RunRecord
	for sc.Scan() {
		var r RunRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", len(recs), err, sc.Text())
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("%d JSONL lines, want 2", len(recs))
	}
	r := recs[0]
	if r.Fingerprint != "selector=MMSD m=10" || r.Budget != (BudgetSplit{Limit: 20, CandidateGen: 4, TopK: 16}) ||
		r.Phases.Total != 13 || r.Kernels.Edges != 500 || r.Pairs != 2 {
		t.Errorf("round-tripped record mangled: %+v", r)
	}
	if recs[1].Outcome != "boom" {
		t.Errorf("outcome = %q, want boom", recs[1].Outcome)
	}
}

func TestEventsHandler(t *testing.T) {
	// The handler serves the package-global recorder; make sure it holds at
	// least 3 records with a recognizable kind.
	for i := 0; i < 3; i++ {
		Flight.Append(RunRecord{Kind: "events-handler-test"})
	}
	srv := httptest.NewServer(EventsHandler())
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body)
	}

	resp, body := get("/?n=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type=%q", got)
	}
	lines := bytes.Split(bytes.TrimRight([]byte(body), "\n"), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("?n=2 returned %d lines", len(lines))
	}
	for _, line := range lines {
		var r RunRecord
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if r.Kind != "events-handler-test" {
			t.Errorf("unexpected kind %q in newest records", r.Kind)
		}
	}

	resp, _ = get("/?n=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?n=bogus status %d, want 400", resp.StatusCode)
	}
	resp, _ = get("/?n=-1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?n=-1 status %d, want 400", resp.StatusCode)
	}
}

func TestFlightCapacityFloor(t *testing.T) {
	f := NewFlightRecorder(0)
	f.Append(RunRecord{Kind: "a"})
	f.Append(RunRecord{Kind: "b"})
	if f.Len() != 1 || f.Last(0)[0].Kind != "b" {
		t.Fatalf("capacity floor broken: len=%d last=%+v", f.Len(), f.Last(0))
	}
}

func ExampleFlightRecorder() {
	f := NewFlightRecorder(2)
	for i := 0; i < 3; i++ {
		f.Append(RunRecord{Kind: "topk", Pairs: i})
	}
	for _, r := range f.Last(0) {
		fmt.Println(r.Seq, r.Pairs)
	}
	// Output:
	// 1 1
	// 2 2
}
