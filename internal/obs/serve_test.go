package obs

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeMetricsLifecycle(t *testing.T) {
	srv, err := ServeMetrics(":0")
	if err != nil {
		t.Fatalf("ServeMetrics(:0): %v", err)
	}
	addr := srv.Addr()
	if _, _, err := net.SplitHostPort(addr); err != nil {
		t.Fatalf("Addr() = %q, not host:port: %v", addr, err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "# TYPE") {
		t.Fatalf("/metrics = %d, body %d bytes without # TYPE", resp.StatusCode, len(body))
	}

	resp, err = http.Get("http://" + addr + "/debug/events?n=1")
	if err != nil {
		t.Fatalf("GET /debug/events: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events = %d", resp.StatusCode)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The port must be released: a fresh listener can bind it.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Close: %v", err)
	}
	ln.Close()

	// Closing again reports the listener's already-closed error, not a hang.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("second Close returned nil, want already-closed error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second Close hung")
	}
}

func TestServeMetricsBadAddr(t *testing.T) {
	if _, err := ServeMetrics("256.256.256.256:99999"); err == nil {
		t.Fatal("ServeMetrics on a bogus address did not error")
	}
}
