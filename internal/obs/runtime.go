package obs

import (
	"math"
	rm "runtime/metrics"
)

// Re-export of the Go runtime's own telemetry through the metrics registry,
// so one /metrics scrape answers both "where did the algorithm's time go"
// and "what was the process doing": heap size, GC activity and pause
// distribution, goroutine count, and scheduler latency. Values are read from
// runtime/metrics at exposition time — a scrape costs a handful of sample
// reads, an idle process costs nothing.

// runtimeGauge registers a plain gauge reading one runtime/metrics sample.
func runtimeGauge(name, sample string, conv func(rm.Value) int64) {
	RegisterMetric(name, func() int64 {
		s := []rm.Sample{{Name: sample}}
		rm.Read(s)
		return conv(s[0].Value)
	})
}

// uintVal converts a runtime Uint64 sample, saturating at MaxInt64.
func uintVal(v rm.Value) int64 {
	if v.Kind() != rm.KindUint64 {
		return 0
	}
	u := v.Uint64()
	if u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// histQuantileNanos extracts the q-quantile of a runtime Float64Histogram
// sample (whose buckets are in seconds) and converts it to nanoseconds.
func histQuantileNanos(v rm.Value, q float64) int64 {
	if v.Kind() != rm.KindFloat64Histogram {
		return 0
	}
	h := v.Float64Histogram()
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Buckets[i+1] is the bucket's upper bound; the last bucket's can
			// be +Inf, in which case its lower bound is the best estimate.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				ub = h.Buckets[i]
			}
			return int64(ub * 1e9)
		}
	}
	return 0
}

func init() {
	runtimeGauge("runtime.heap_bytes", "/memory/classes/heap/objects:bytes", uintVal)
	runtimeGauge("runtime.total_bytes", "/memory/classes/total:bytes", uintVal)
	runtimeGauge("runtime.goroutines", "/sched/goroutines:goroutines", uintVal)
	runtimeGauge("runtime.gc_cycles", "/gc/cycles/total:gc-cycles", uintVal)
	runtimeGauge("runtime.gc_pause_p50_ns", "/gc/pauses:seconds",
		func(v rm.Value) int64 { return histQuantileNanos(v, 0.50) })
	runtimeGauge("runtime.gc_pause_p99_ns", "/gc/pauses:seconds",
		func(v rm.Value) int64 { return histQuantileNanos(v, 0.99) })
	runtimeGauge("runtime.sched_latency_p50_ns", "/sched/latencies:seconds",
		func(v rm.Value) int64 { return histQuantileNanos(v, 0.50) })
	runtimeGauge("runtime.sched_latency_p99_ns", "/sched/latencies:seconds",
		func(v rm.Value) int64 { return histQuantileNanos(v, 0.99) })
}
