package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// CLI is the shared observability flag set of the command-line tools
// (cmd/convpairs, cmd/experiments, examples/streaming-watch): one place
// defines -metricsaddr, -events, and -hold, so every program exposes the
// same surface with the same semantics.
type CLI struct {
	metricsAddr *string
	eventsOut   *string
	hold        *time.Duration
	srv         *Server
	// flushedLen is how many flight records the last FlushEvents wrote, so
	// Finish can skip a redundant rewrite when nothing new was recorded.
	flushedLen int
	flushed    bool
}

// BindCLIFlags registers the observability flags on fs (typically
// flag.CommandLine) and returns the handle to Start/Finish around the
// program's work.
func BindCLIFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	c.metricsAddr = fs.String("metricsaddr", "",
		"serve /metrics (instruments + histograms), /debug/events (flight recorder) and /debug/pprof on this address during the run, e.g. :6060")
	c.eventsOut = fs.String("events", "",
		"write the flight recorder's run records as JSONL to this file after the run (\"-\" for stdout)")
	c.hold = fs.Duration("hold", 0,
		"keep the -metricsaddr server up this long after the run finishes (for scraping a short-lived run)")
	return c
}

// Start brings up the metrics server if -metricsaddr was given and prints
// the bound address. Call after flag parsing, before the work.
func (c *CLI) Start() error {
	if *c.metricsAddr == "" {
		return nil
	}
	srv, err := ServeMetrics(*c.metricsAddr)
	if err != nil {
		return err
	}
	c.srv = srv
	fmt.Printf("metrics on http://%s/metrics, events on http://%s/debug/events, profiles on http://%s/debug/pprof/\n",
		srv.Addr(), srv.Addr(), srv.Addr())
	return nil
}

// Finish holds the metrics server open for the -hold duration, dumps the
// flight recorder if -events was given, then shuts the server down. Call once
// after the work completes. The hold runs *before* the events dump so any run
// records appended while the server was held (a scrape triggering work, a
// daemon draining requests) land in the file — the previous dump-then-hold
// order silently dropped them. The dump is skipped when a FlushEvents call
// already captured the recorder's current contents.
func (c *CLI) Finish() error {
	if c.srv != nil && *c.hold > 0 {
		fmt.Printf("holding metrics server on http://%s for %v\n", c.srv.Addr(), *c.hold)
		time.Sleep(*c.hold)
	}
	if *c.eventsOut != "" && !(c.flushed && c.flushedLen == Flight.Len()) {
		if err := c.dumpEvents(); err != nil {
			return err
		}
	}
	if c.srv != nil {
		if err := c.srv.Close(); err != nil {
			return err
		}
		c.srv = nil
	}
	return nil
}

// FlushEvents writes the flight recorder to the -events target immediately
// (a no-op without -events). Daemons call it from their graceful-shutdown
// path — convserve flushes on SIGTERM — so a process stopped by its
// supervisor still leaves its run records behind even if it never reaches
// Finish. Each call rewrites the full recorder contents; Finish skips its own
// dump when nothing was recorded since the last flush.
func (c *CLI) FlushEvents() error {
	if *c.eventsOut == "" {
		return nil
	}
	return c.dumpEvents()
}

// dumpEvents writes the default flight recorder as JSONL to the -events
// target.
func (c *CLI) dumpEvents() error {
	var w io.Writer = os.Stdout
	if *c.eventsOut != "-" {
		f, err := os.Create(*c.eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := Flight.WriteJSONL(w, 0); err != nil {
		return err
	}
	c.flushed = true
	c.flushedLen = Flight.Len()
	if *c.eventsOut != "-" {
		fmt.Printf("flight recorder events written to %s (%d records)\n", *c.eventsOut, c.flushedLen)
	}
	return nil
}
