package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// CLI is the shared observability flag set of the command-line tools
// (cmd/convpairs, cmd/experiments, examples/streaming-watch): one place
// defines -metricsaddr, -events, and -hold, so every program exposes the
// same surface with the same semantics.
type CLI struct {
	metricsAddr *string
	eventsOut   *string
	hold        *time.Duration
	srv         *Server
}

// BindCLIFlags registers the observability flags on fs (typically
// flag.CommandLine) and returns the handle to Start/Finish around the
// program's work.
func BindCLIFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	c.metricsAddr = fs.String("metricsaddr", "",
		"serve /metrics (instruments + histograms), /debug/events (flight recorder) and /debug/pprof on this address during the run, e.g. :6060")
	c.eventsOut = fs.String("events", "",
		"write the flight recorder's run records as JSONL to this file after the run (\"-\" for stdout)")
	c.hold = fs.Duration("hold", 0,
		"keep the -metricsaddr server up this long after the run finishes (for scraping a short-lived run)")
	return c
}

// Start brings up the metrics server if -metricsaddr was given and prints
// the bound address. Call after flag parsing, before the work.
func (c *CLI) Start() error {
	if *c.metricsAddr == "" {
		return nil
	}
	srv, err := ServeMetrics(*c.metricsAddr)
	if err != nil {
		return err
	}
	c.srv = srv
	fmt.Printf("metrics on http://%s/metrics, events on http://%s/debug/events, profiles on http://%s/debug/pprof/\n",
		srv.Addr(), srv.Addr(), srv.Addr())
	return nil
}

// Finish dumps the flight recorder if -events was given, holds the metrics
// server open for the -hold duration, then shuts it down. Call once after
// the work completes.
func (c *CLI) Finish() error {
	if *c.eventsOut != "" {
		if err := c.dumpEvents(); err != nil {
			return err
		}
	}
	if c.srv != nil {
		if *c.hold > 0 {
			fmt.Printf("holding metrics server on http://%s for %v\n", c.srv.Addr(), *c.hold)
			time.Sleep(*c.hold)
		}
		if err := c.srv.Close(); err != nil {
			return err
		}
		c.srv = nil
	}
	return nil
}

// dumpEvents writes the default flight recorder as JSONL to the -events
// target.
func (c *CLI) dumpEvents() error {
	var w io.Writer = os.Stdout
	if *c.eventsOut != "-" {
		f, err := os.Create(*c.eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := Flight.WriteJSONL(w, 0); err != nil {
		return err
	}
	if *c.eventsOut != "-" {
		fmt.Printf("flight recorder events written to %s (%d records)\n", *c.eventsOut, Flight.Len())
	}
	return nil
}
