package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// expositionLines returns the current exposition split into lines.
func expositionLines(t *testing.T) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	return strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
}

func TestCounterAndGaugeExposition(t *testing.T) {
	c := NewCounter("test.ctr")
	defer UnregisterMetric("test.ctr")
	g := NewGauge("test.gauge")
	defer UnregisterMetric("test.gauge")

	c.Add(5)
	c.Inc()
	g.Set(100)
	g.Add(-30)
	if c.Value() != 6 || g.Value() != 70 {
		t.Fatalf("Counter=%d Gauge=%d, want 6 and 70", c.Value(), g.Value())
	}

	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test.ctr counter\ntest.ctr 6\n",
		"# TYPE test.gauge gauge\ntest.gauge 70\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscapingAndOrdering(t *testing.T) {
	// Labels are registered out of key order and with every escapable
	// character in the value; the series must render sorted and escaped.
	NewCounter("test.labeled", L("zeta", "z"), L("alpha", "a\\b\"c\nd"))
	series := `test.labeled{alpha="a\\b\"c\nd",zeta="z"}`
	defer UnregisterMetric(series)

	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if !strings.Contains(buf.String(), series+" 0\n") {
		t.Fatalf("exposition missing escaped sorted series %q:\n%s", series, buf.String())
	}
}

func TestLabeledSeriesOfOneFamilyShareOneTypeLine(t *testing.T) {
	NewHistogram("test.fam_ns", L("phase", "b"))
	NewHistogram("test.fam_ns", L("phase", "a"))
	defer UnregisterMetric(`test.fam_ns{phase="a"}`)
	defer UnregisterMetric(`test.fam_ns{phase="b"}`)

	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := buf.String()
	if got := strings.Count(out, "# TYPE test.fam_ns histogram"); got != 1 {
		t.Fatalf("family has %d # TYPE lines, want 1:\n%s", got, out)
	}
	ai := strings.Index(out, `test.fam_ns_count{phase="a"}`)
	bi := strings.Index(out, `test.fam_ns_count{phase="b"}`)
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("labeled series missing or unsorted (a@%d, b@%d):\n%s", ai, bi, out)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := &Histogram{} // unregistered: pure data-structure test
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21}, {math.MaxInt64, histBuckets - 1},
	}
	for _, c := range cases {
		before := h.buckets[c.bucket].Load()
		h.Observe(c.v)
		if got := h.buckets[c.bucket].Load(); got != before+1 {
			t.Errorf("Observe(%d) did not land in bucket %d", c.v, c.bucket)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count=%d, want %d", h.Count(), len(cases))
	}
}

// parseHistogram extracts the (le, cumulative) bucket lines plus _sum and
// _count of one histogram family from an exposition.
func parseHistogram(t *testing.T, lines []string, family string) (buckets []struct {
	le  string
	cum int64
}, sum, count int64) {
	t.Helper()
	for _, line := range lines {
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(name, family+"_bucket{"):
			le := strings.TrimSuffix(strings.TrimPrefix(name, family+`_bucket{le="`), `"}`)
			buckets = append(buckets, struct {
				le  string
				cum int64
			}{le, v})
		case name == family+"_sum":
			sum = v
		case name == family+"_count":
			count = v
		}
	}
	return buckets, sum, count
}

func TestHistogramExpositionCumulative(t *testing.T) {
	h := NewHistogram("test.hist_ns")
	defer UnregisterMetric("test.hist_ns")
	var wantSum int64
	for _, v := range []int64{1, 1, 2, 3, 100, 5000} {
		h.Observe(v)
		wantSum += v
	}

	buckets, sum, count := parseHistogram(t, expositionLines(t), "test.hist_ns")
	if len(buckets) == 0 {
		t.Fatal("no _bucket lines for test.hist_ns")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].cum < buckets[i-1].cum {
			t.Errorf("buckets not cumulative: le=%s cum=%d < le=%s cum=%d",
				buckets[i].le, buckets[i].cum, buckets[i-1].le, buckets[i-1].cum)
		}
	}
	last := buckets[len(buckets)-1]
	if last.le != "+Inf" {
		t.Errorf("last bucket le=%q, want +Inf", last.le)
	}
	if last.cum != count || count != 6 {
		t.Errorf("+Inf bucket=%d, _count=%d, want both 6", last.cum, count)
	}
	if sum != wantSum {
		t.Errorf("_sum=%d, want %d", sum, wantSum)
	}
	// le bounds (numeric ones) must ascend.
	prev := int64(-1)
	for _, b := range buckets[:len(buckets)-1] {
		bound, err := strconv.ParseInt(b.le, 10, 64)
		if err != nil {
			t.Fatalf("non-numeric le %q before +Inf", b.le)
		}
		if bound <= prev {
			t.Errorf("le bounds not ascending: %d after %d", bound, prev)
		}
		prev = bound
	}
}

func TestHistogramSnapshotSubAndQuantile(t *testing.T) {
	h := &Histogram{}
	h.Observe(1000)
	before := h.Snapshot()
	// 90 fast observations and 10 slow ones: p50 lands in the fast bucket
	// range, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket (64,128]
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 << 20)
	}
	d := h.Snapshot().Sub(before)
	if d.Count != 100 {
		t.Fatalf("delta Count=%d, want 100 (pre-snapshot observation leaked in)", d.Count)
	}
	if got := d.Quantile(0.50); got != 128 {
		t.Errorf("p50=%d, want 128 (upper bound of (64,128])", got)
	}
	if got := d.Quantile(0.99); got != 1<<20 {
		t.Errorf("p99=%d, want %d", got, 1<<20)
	}
	if got := d.Quantile(0); got != 128 {
		t.Errorf("q=0 => %d, want first populated bucket bound 128", got)
	}
	wantMean := (90*100.0 + 10*float64(1<<20)) / 100
	if d.Mean() != wantMean {
		t.Errorf("Mean=%v, want %v", d.Mean(), wantMean)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot quantile/mean not 0")
	}
}

func TestMetricsHandlerContentType(t *testing.T) {
	srv := httptest.NewServer(MetricsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	want := "text/plain; version=0.0.4; charset=utf-8"
	if got := resp.Header.Get("Content-Type"); got != want {
		t.Errorf("Content-Type=%q, want %q", got, want)
	}
}

func TestRuntimeMetricsRegistered(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := buf.String()
	for _, name := range []string{
		"runtime.heap_bytes", "runtime.goroutines", "runtime.gc_pause_p99_ns",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
}

func TestRegisterLastWins(t *testing.T) {
	RegisterMetric("test.lastwins", func() int64 { return 1 })
	RegisterMetric("test.lastwins", func() int64 { return 2 })
	defer UnregisterMetric("test.lastwins")
	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test.lastwins 2\n") ||
		strings.Contains(buf.String(), "test.lastwins 1\n") {
		t.Fatalf("re-registration not last-wins:\n%s", buf.String())
	}
}

func ExampleHistogram() {
	h := &Histogram{}
	for _, v := range []int64{3, 70, 90, 1500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	fmt.Println(s.Count, s.Sum, s.Quantile(0.5))
	// Output: 4 1663 128
}
