// Package obs is the library's zero-dependency observability layer: span
// tracing for the phases of Algorithm 1 (selection, extraction, sort/cut)
// and monitoring windows, an expvar-style metrics exposition fed by the BFS
// kernels' atomic counters, and an HTTP surface combining both with pprof.
//
// Everything is nil-safe: a nil *Trace and the nil *Span it hands out are
// valid no-op receivers, so instrumented code pays a single pointer test
// when tracing is off. Traces are safe for concurrent use — selectors and
// extraction workers charge budget (and thereby annotate spans) from worker
// goroutines.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// KV is one key/value annotation on a span or instant event. Values must be
// JSON-encodable; ints, floats, strings and bools cover the library's use.
type KV struct {
	Key string
	Val any
}

// Int builds an integer annotation.
func Int(key string, v int) KV { return KV{key, v} }

// Int64 builds a 64-bit integer annotation.
func Int64(key string, v int64) KV { return KV{key, v} }

// Float builds a float annotation.
func Float(key string, v float64) KV { return KV{key, v} }

// Str builds a string annotation.
func Str(key, v string) KV { return KV{key, v} }

// Span is one timed region of a trace. Spans started while another span is
// open nest under it (the library's phases are sequential on the goroutine
// that drives the algorithm; worker goroutines annotate, they do not open
// spans). All methods are nil-safe.
type Span struct {
	tr     *Trace
	id     int
	parent int // span id, -1 for roots
	name   string
	start  time.Duration // offset from the trace epoch
	dur    time.Duration
	ended  bool
	args   []KV
	sssp   map[string]int // per-budget-phase SSSP charges attributed here
}

// instant is a point event (a budget charge, a kernel note).
type instant struct {
	name string
	ts   time.Duration
	args []KV
}

// Trace collects spans and instant events for one run. Create one with New,
// thread it through Options/Config fields, then export with WriteChrome
// (chrome://tracing / Perfetto) or WriteTree (human-readable).
type Trace struct {
	mu    sync.Mutex
	name  string
	epoch time.Time

	spans    []*Span
	stack    []int // ids of open spans, innermost last
	instants []instant
	sssp     map[string]int // per-phase totals across the whole trace
}

// New starts an empty trace. The name labels the process row in Chrome's
// viewer.
func New(name string) *Trace {
	//convlint:nondet trace timestamps are observational, not part of results
	return &Trace{name: name, epoch: time.Now(), sssp: map[string]int{}}
}

// now returns the current offset from the trace epoch.
//
//convlint:nondet span timing is observational, not part of results
func (t *Trace) now() time.Duration { return time.Since(t.epoch) }

// StartSpan opens a span nested under the innermost currently open span.
// End it with Span.End. On a nil trace it returns a nil span.
func (t *Trace) StartSpan(name string, kvs ...KV) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{
		tr:     t,
		id:     len(t.spans),
		parent: -1,
		name:   name,
		start:  t.now(),
		args:   kvs,
	}
	if len(t.stack) > 0 {
		s.parent = t.stack[len(t.stack)-1]
	}
	t.spans = append(t.spans, s)
	t.stack = append(t.stack, s.id)
	return s
}

// End closes the span. Ending a span also closes any still-open spans nested
// inside it, so a forgotten inner End cannot corrupt the tree.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	now := t.now()
	// Pop the stack down to (and including) this span; anything above it is
	// an unclosed child and inherits this span's end time.
	for i := len(t.stack) - 1; i >= 0; i-- {
		sp := t.spans[t.stack[i]]
		t.stack = t.stack[:i]
		if !sp.ended {
			sp.ended = true
			sp.dur = now - sp.start
		}
		//convlint:nondet span identity within one trace is the semantics
		if sp == s {
			return
		}
	}
	// s was not on the stack (already popped by an ancestor's End); close it
	// directly.
	s.ended = true
	s.dur = now - s.start
}

// Set appends annotations to the span (visible in both exports).
func (s *Span) Set(kvs ...KV) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.args = append(s.args, kvs...)
}

// AddSSSP attributes n SSSP computations in the named budget phase to the
// innermost open span and to the trace totals. The core algorithm wires this
// to budget.Meter's observer, so every charge lands on the span that was
// executing when the budget was spent.
func (t *Trace) AddSSSP(phase string, n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sssp[phase] += n
	if len(t.stack) > 0 {
		s := t.spans[t.stack[len(t.stack)-1]]
		if s.sssp == nil {
			s.sssp = map[string]int{}
		}
		s.sssp[phase] += n
	}
}

// Instant records a point event (rendered as a marker in Chrome's viewer).
func (t *Trace) Instant(name string, kvs ...KV) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.instants = append(t.instants, instant{name: name, ts: t.now(), args: kvs})
}

// SSSPByPhase returns the total SSSP charges observed per budget phase. For
// a traced budgeted run these equal the run's budget.Report split — the
// property cmd/convpairs verifies after every traced run.
func (t *Trace) SSSPByPhase() map[string]int {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int, len(t.sssp))
	for k, v := range t.sssp {
		out[k] = v
	}
	return out
}

// snapshot returns consistent copies of the trace state for export.
func (t *Trace) snapshot() (spans []Span, instants []instant, totals map[string]int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	spans = make([]Span, len(t.spans))
	for i, s := range t.spans {
		spans[i] = *s
		if !s.ended {
			spans[i].dur = now - s.start // open spans export as running-until-now
		}
	}
	instants = append([]instant(nil), t.instants...)
	totals = make(map[string]int, len(t.sssp))
	for k, v := range t.sssp {
		totals[k] = v
	}
	return spans, instants, totals
}

// argsMap flattens annotations (plus any per-phase SSSP counts) into the
// args object both exporters show.
func argsMap(kvs []KV, sssp map[string]int) map[string]any {
	if len(kvs) == 0 && len(sssp) == 0 {
		return nil
	}
	m := make(map[string]any, len(kvs)+len(sssp))
	for _, kv := range kvs {
		m[kv.Key] = kv.Val
	}
	for phase, n := range sssp {
		m["sssp."+phase] = n
	}
	return m
}

// chromeEvent is one entry of the Chrome trace_event format (the JSON Array
// Format wrapped in an object, as Perfetto and chrome://tracing load it).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome exports the trace in Chrome trace_event JSON. Load the file at
// chrome://tracing or https://ui.perfetto.dev. Open spans are exported with
// their duration so far.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil trace")
	}
	spans, instants, totals := t.snapshot()
	events := make([]chromeEvent, 0, len(spans)+len(instants)+2)
	events = append(events, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": t.name},
	})
	events = append(events, chromeEvent{
		Name: "thread_name", Phase: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": "algorithm"},
	})
	for i := range spans {
		s := &spans[i]
		events = append(events, chromeEvent{
			Name: s.name, Cat: "phase", Phase: "X",
			TS: s.start.Microseconds(), Dur: max64(s.dur.Microseconds(), 1),
			PID: 1, TID: 1,
			Args: argsMap(s.args, s.sssp),
		})
	}
	for _, in := range instants {
		events = append(events, chromeEvent{
			Name: in.name, Cat: "event", Phase: "i", Scope: "t",
			TS: in.ts.Microseconds(), PID: 1, TID: 1,
			Args: argsMap(in.args, nil),
		})
	}
	doc := struct {
		TraceEvents     []chromeEvent  `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		Metadata        map[string]any `json:"metadata,omitempty"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"trace-name": t.name, "sssp-by-phase": totals},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteChromeFile is WriteChrome into a newly created file.
func (t *Trace) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteTree renders the span tree with durations, annotations and per-span
// SSSP counts — the terminal-friendly view of the same data WriteChrome
// exports.
func (t *Trace) WriteTree(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans, _, totals := t.snapshot()
	if _, err := fmt.Fprintf(w, "trace %s\n", t.name); err != nil {
		return err
	}
	children := make(map[int][]int)
	var roots []int
	for i := range spans {
		if spans[i].parent < 0 {
			roots = append(roots, i)
		} else {
			children[spans[i].parent] = append(children[spans[i].parent], i)
		}
	}
	var walk func(id, depth int) error
	walk = func(id, depth int) error {
		s := &spans[id]
		line := fmt.Sprintf("%s%-*s %10s", strings.Repeat("  ", depth+1), 24-2*depth, s.name,
			s.dur.Round(time.Microsecond))
		if extra := describeArgs(s.args, s.sssp); extra != "" {
			line += "  " + extra
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range children[id] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	if len(totals) > 0 {
		keys := make([]string, 0, len(totals))
		for k := range totals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, totals[k])
		}
		if _, err := fmt.Fprintf(w, "  sssp: %s\n", strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// describeArgs formats annotations and SSSP counts for the tree view.
func describeArgs(kvs []KV, sssp map[string]int) string {
	parts := make([]string, 0, len(kvs)+len(sssp))
	for _, kv := range kvs {
		parts = append(parts, fmt.Sprintf("%s=%v", kv.Key, kv.Val))
	}
	keys := make([]string, 0, len(sssp))
	for k := range sssp {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("sssp[%s]=%d", k, sssp[k]))
	}
	return strings.Join(parts, " ")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
