package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
)

// Typed instruments: Counter, Gauge, and a lock-free power-of-two-bucketed
// Histogram. All three are a fixed block of atomics — observation is a
// handful of atomic adds, no locks, no allocation — so they are safe to call
// from the //convlint:hotpath traversal kernels. Construction registers the
// instrument in the metrics registry; exposition goes through WriteMetrics.

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// NewCounter creates and registers a counter series.
func NewCounter(name string, labels ...Label) *Counter {
	c := &Counter{}
	register(name, labels, c)
	return c
}

// Add increments the counter; n must be non-negative (unchecked — this is a
// hot-path instrument).
//
//convlint:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
//
//convlint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (*Counter) kindName() string { return "counter" }

func (c *Counter) writeSeries(w io.Writer, family string, labels []Label) error {
	_, err := fmt.Fprintf(w, "%s %d\n", renderSeries(family, labels), c.v.Load())
	return err
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// NewGauge creates and registers a gauge series.
func NewGauge(name string, labels ...Label) *Gauge {
	g := &Gauge{}
	register(name, labels, g)
	return g
}

// Set replaces the gauge value.
//
//convlint:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n (negative n allowed).
//
//convlint:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (*Gauge) kindName() string { return "gauge" }

func (g *Gauge) writeSeries(w io.Writer, family string, labels []Label) error {
	_, err := fmt.Fprintf(w, "%s %d\n", renderSeries(family, labels), g.v.Load())
	return err
}

// histBuckets is the histogram resolution: bucket 0 holds observations
// <= 1, bucket i (0 < i < histBuckets-1) holds (2^(i-1), 2^i], and the last
// bucket is the overflow (everything past 2^62, exposed only under le="+Inf").
// Power-of-two bucketing gives a fixed-size atomic array covering the whole
// int64 range at ~2x relative error — the right trade for latency and work
// distributions, where the interesting signal is orders of magnitude.
const histBuckets = 64

// Histogram is a lock-free histogram over non-negative int64 observations
// (latencies in nanoseconds, nodes/edges visited, charge sizes). Observe is
// three atomic adds and zero allocations.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// NewHistogram creates and registers a histogram series.
func NewHistogram(name string, labels ...Label) *Histogram {
	h := &Histogram{}
	register(name, labels, h)
	return h
}

// Observe records one value. Values <= 1 land in the first bucket; negative
// values are clamped there too (and still contribute to the sum, so callers
// should observe non-negative quantities).
//
//convlint:hotpath
func (h *Histogram) Observe(v int64) {
	i := 0
	if v > 1 {
		i = bits.Len64(uint64(v - 1)) // v in (2^(i-1), 2^i]
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// bucketUpper is bucket i's inclusive upper bound (MaxInt64 for the overflow
// bucket, which exposes as le="+Inf").
func bucketUpper(i int) int64 {
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << i
}

// HistogramSnapshot is a point-in-time copy of a histogram, diffable with
// Sub to attribute observations to a region of a run.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [histBuckets]int64
}

// Snapshot copies the current state. Each field is read atomically; a
// snapshot taken concurrently with Observe may split one observation between
// count and buckets, which two quiescent-point snapshots never see.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Sub subtracts an earlier snapshot bucket-wise.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// Quantile returns the inclusive upper bound of the bucket containing the
// q-quantile observation (q in [0, 1]) — an upper estimate within 2x of the
// true value, which is the histogram's resolution. Returns 0 for an empty
// snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

func (*Histogram) kindName() string { return "histogram" }

// writeSeries emits the OpenMetrics histogram triplet: cumulative
// `_bucket{le="..."}` lines up to the highest populated bound, the `+Inf`
// bucket (== _count), then _sum and _count. Buckets are read once into a
// local copy so the cumulative sums are internally consistent.
func (h *Histogram) writeSeries(w io.Writer, family string, labels []Label) error {
	s := h.Snapshot()
	high := 0
	for i := range s.Buckets {
		if s.Buckets[i] != 0 {
			high = i
		}
	}
	if high >= histBuckets-1 {
		high = histBuckets - 2 // the overflow bucket only ever shows as +Inf
	}
	cum := int64(0)
	for i := 0; i <= high; i++ {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s %d\n",
			renderSeriesWith(family+"_bucket", labels, "le", fmt.Sprint(bucketUpper(i))), cum); err != nil {
			return err
		}
	}
	total := cum + func() int64 {
		rest := int64(0)
		for i := high + 1; i < histBuckets; i++ {
			rest += s.Buckets[i]
		}
		return rest
	}()
	if _, err := fmt.Fprintf(w, "%s %d\n",
		renderSeriesWith(family+"_bucket", labels, "le", "+Inf"), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", renderSeries(family+"_sum", labels), s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", renderSeries(family+"_count", labels), s.Count)
	return err
}
