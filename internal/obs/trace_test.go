package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	s := tr.StartSpan("phase")
	if s != nil {
		t.Fatalf("nil trace returned non-nil span")
	}
	s.End()
	s.Set(Int("k", 1))
	tr.AddSSSP("candidate-generation", 3)
	tr.Instant("event")
	if got := tr.SSSPByPhase(); got != nil {
		t.Fatalf("nil trace SSSPByPhase = %v, want nil", got)
	}
	if err := tr.WriteTree(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil trace WriteTree: %v", err)
	}
}

func TestSpanNesting(t *testing.T) {
	tr := New("test")
	root := tr.StartSpan("run")
	sel := tr.StartSpan("selection")
	tr.AddSSSP("candidate-generation", 10)
	sel.End()
	ext := tr.StartSpan("extraction")
	tr.AddSSSP("top-k-extraction", 20)
	ext.End()
	root.End()

	if tr.spans[1].parent != 0 || tr.spans[2].parent != 0 {
		t.Fatalf("selection/extraction parents = %d,%d, want 0,0",
			tr.spans[1].parent, tr.spans[2].parent)
	}
	totals := tr.SSSPByPhase()
	if totals["candidate-generation"] != 10 || totals["top-k-extraction"] != 20 {
		t.Fatalf("totals = %v", totals)
	}
	if tr.spans[1].sssp["candidate-generation"] != 10 {
		t.Fatalf("selection span SSSP = %v", tr.spans[1].sssp)
	}
	if tr.spans[2].sssp["top-k-extraction"] != 20 {
		t.Fatalf("extraction span SSSP = %v", tr.spans[2].sssp)
	}
}

// Ending an outer span closes forgotten children so the tree stays sane.
func TestEndClosesNestedSpans(t *testing.T) {
	tr := New("test")
	root := tr.StartSpan("run")
	tr.StartSpan("inner") // never ended explicitly
	root.End()
	for _, s := range tr.spans {
		if !s.ended {
			t.Fatalf("span %q left open after ancestor End", s.name)
		}
	}
	if len(tr.stack) != 0 {
		t.Fatalf("stack not empty: %v", tr.stack)
	}
	// A sibling started afterwards is a root, not a child of the closed run.
	next := tr.StartSpan("next")
	if next.parent != -1 {
		t.Fatalf("post-End span parent = %d, want -1", next.parent)
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	tr := New("convpairs")
	s := tr.StartSpan("selection", Str("selector", "MMSD"))
	tr.AddSSSP("candidate-generation", 20)
	s.End()
	e := tr.StartSpan("extraction")
	tr.AddSSSP("top-k-extraction", 80)
	tr.Instant("budget.charge", Int("n", 80))
	e.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"selection", "extraction", "budget.charge", "process_name"} {
		if !names[want] {
			t.Errorf("trace JSON missing event %q (have %v)", want, names)
		}
	}
	byPhase, ok := doc.Metadata["sssp-by-phase"].(map[string]any)
	if !ok {
		t.Fatalf("metadata sssp-by-phase missing: %v", doc.Metadata)
	}
	if byPhase["candidate-generation"].(float64) != 20 || byPhase["top-k-extraction"].(float64) != 80 {
		t.Fatalf("metadata phase totals = %v", byPhase)
	}
}

func TestWriteTree(t *testing.T) {
	tr := New("run")
	root := tr.StartSpan("algorithm1", Str("selector", "MMSD"))
	sel := tr.StartSpan("selection")
	tr.AddSSSP("candidate-generation", 5)
	sel.End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatalf("WriteTree: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"algorithm1", "selection", "selector=MMSD",
		"sssp[candidate-generation]=5", "sssp: candidate-generation=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}

// Budget charges arrive from extraction worker goroutines; the trace must
// tolerate concurrent AddSSSP (run under -race in CI).
func TestConcurrentAddSSSP(t *testing.T) {
	tr := New("race")
	s := tr.StartSpan("extraction")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.AddSSSP("top-k-extraction", 1)
			}
		}()
	}
	wg.Wait()
	s.End()
	if got := tr.SSSPByPhase()["top-k-extraction"]; got != 800 {
		t.Fatalf("concurrent charges = %d, want 800", got)
	}
}
