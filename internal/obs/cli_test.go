package obs

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestCLIStartFinish(t *testing.T) {
	Flight.Append(RunRecord{Kind: "cli-test"})

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindCLIFlags(fs)
	events := filepath.Join(t.TempDir(), "events.jsonl")
	if err := fs.Parse([]string{"-metricsaddr", "127.0.0.1:0", "-events", events}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + c.srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics on CLI server: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if c.srv != nil {
		t.Error("Finish did not clear the server")
	}

	f, err := os.Open(events)
	if err != nil {
		t.Fatalf("-events file not written: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		var r RunRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("-events line %d invalid: %v", lines, err)
		}
		lines++
	}
	if lines == 0 {
		t.Error("-events file has no records")
	}
}

func TestCLIDisabledIsNoop(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindCLIFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if c.srv != nil {
		t.Error("Start without -metricsaddr bound a server")
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
}
