package obs

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestCLIStartFinish(t *testing.T) {
	Flight.Append(RunRecord{Kind: "cli-test"})

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindCLIFlags(fs)
	events := filepath.Join(t.TempDir(), "events.jsonl")
	if err := fs.Parse([]string{"-metricsaddr", "127.0.0.1:0", "-events", events}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + c.srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics on CLI server: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if c.srv != nil {
		t.Error("Finish did not clear the server")
	}

	f, err := os.Open(events)
	if err != nil {
		t.Fatalf("-events file not written: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		var r RunRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("-events line %d invalid: %v", lines, err)
		}
		lines++
	}
	if lines == 0 {
		t.Error("-events file has no records")
	}
}

// countEventLines returns the number of JSONL records in the file.
func countEventLines(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	n := 0
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			n++
		}
	}
	return n
}

// TestCLIFlushEvents pins the daemon lifecycle: FlushEvents writes the
// recorder mid-run (the convserve SIGTERM path), and Finish re-dumps only
// when new records arrived after the flush.
func TestCLIFlushEvents(t *testing.T) {
	events := filepath.Join(t.TempDir(), "events.jsonl")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindCLIFlags(fs)
	if err := fs.Parse([]string{"-events", events}); err != nil {
		t.Fatal(err)
	}

	Flight.Append(RunRecord{Kind: "test-flush", Outcome: "ok"})
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	n1 := countEventLines(t, events)
	if n1 == 0 {
		t.Fatal("FlushEvents wrote no records")
	}

	// No new records: Finish must not rewrite (the flushed state is current).
	if err := os.Remove(events); err != nil {
		t.Fatal(err)
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(events); !os.IsNotExist(err) {
		t.Fatalf("Finish re-dumped with no new records (stat err = %v)", err)
	}

	// A record after the flush: Finish must dump again and include it.
	Flight.Append(RunRecord{Kind: "test-finish", Outcome: "ok"})
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if n2 := countEventLines(t, events); n2 != n1+1 {
		t.Fatalf("post-flush Finish wrote %d records, want %d", n2, n1+1)
	}
}

// TestCLIFlushWithoutEvents pins the no-op contract of the daemon path when
// -events was not given.
func TestCLIFlushWithoutEvents(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindCLIFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
}

func TestCLIDisabledIsNoop(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindCLIFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if c.srv != nil {
		t.Error("Start without -metricsaddr bound a server")
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
}
