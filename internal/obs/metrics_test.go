package obs

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWriteMetricsSortedExposition(t *testing.T) {
	RegisterMetric("ztest.calls", func() int64 { return 7 })
	RegisterMetric("atest.calls", func() int64 { return 3 })
	defer UnregisterMetric("ztest.calls")
	defer UnregisterMetric("atest.calls")

	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := buf.String()
	ai := strings.Index(out, "atest.calls 3\n")
	zi := strings.Index(out, "ztest.calls 7\n")
	if ai < 0 || zi < 0 {
		t.Fatalf("exposition missing registered metrics:\n%s", out)
	}
	if ai > zi {
		t.Fatalf("exposition not sorted by name:\n%s", out)
	}
}

func TestMetricsHandlerAndPprofMux(t *testing.T) {
	RegisterMetric("handler.test", func() int64 { return 42 })
	defer UnregisterMetric("handler.test")

	srv := httptest.NewServer(NewServeMux())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "handler.test 42") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d (body %d bytes)", code, len(body))
	}
}
