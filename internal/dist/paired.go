package dist

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// PairedMode selects how the second-snapshot distance row of a paired query
// is produced.
type PairedMode int

const (
	// PairedFull recomputes the t2 row with a full traversal of G_t2 — the
	// paper's literal 2-SSSPs-per-candidate extraction.
	PairedFull PairedMode = iota
	// PairedIncremental derives the t2 row from the t1 row by batch-applying
	// the snapshot edge delta with dynsssp's decrease-only repair, skipping
	// the unchanged region of the graph. Falls back to PairedFull when the
	// pair does not support it (non-BFS metrics, mismatched universes).
	PairedIncremental
)

// String returns the CLI spelling of the mode.
func (m PairedMode) String() string {
	switch m {
	case PairedFull:
		return "full"
	case PairedIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("PairedMode(%d)", int(m))
	}
}

// ParsePairedMode parses the -paired CLI flag values "full" and
// "incremental". The empty string means full (the default).
func ParsePairedMode(s string) (PairedMode, error) {
	switch s {
	case "", "full":
		return PairedFull, nil
	case "incremental":
		return PairedIncremental, nil
	default:
		return PairedFull, fmt.Errorf("dist: unknown paired mode %q (want full or incremental)", s)
	}
}

// PairedSession is a single-goroutine handle producing both snapshot rows of
// one source. Both methods follow the paper's cost model: one budget unit per
// distance row *produced*, regardless of how much traversal producing it
// took — so DistancesPairInto costs 2 units and DeriveInto costs 1, in every
// mode. Callers charge their meter accordingly before invoking.
type PairedSession interface {
	// DistancesPairInto fills d1 and d2 (each length NumNodes) with the
	// distance rows of src on G_t1 and G_t2. Costs 2 budget units.
	DistancesPairInto(src int, d1, d2 []int32)
	// DeriveInto fills d2 with src's G_t2 row, given its already-computed
	// G_t1 row d1 (read-only; full-mode engines ignore it and re-traverse).
	// Costs 1 budget unit.
	DeriveInto(src int, d1, d2 []int32)
}

// PairedEngine produces PairedSessions over one snapshot pair. Engines are
// built once per run (NewPairedEngine computes the shared edge delta there)
// and hand out one session per worker.
type PairedEngine interface {
	NewSession() PairedSession
	// Mode reports the mode the engine actually runs in — PairedFull when an
	// incremental request fell back.
	Mode() PairedMode
}

// incrementalPairable is the optional capability of sources that can build
// an incremental paired engine against a second snapshot (currently the BFS
// source, when both sides share a node universe).
type incrementalPairable interface {
	newIncrementalPairedEngine(other Source) (PairedEngine, bool)
}

// NewPairedEngine builds the paired engine for p in the requested mode.
// PairedIncremental silently falls back to a full engine when the pair lacks
// the capability (e.g. Dijkstra sources); inspect Mode() on the result to
// see what was actually built.
func NewPairedEngine(p Pair, mode PairedMode) PairedEngine {
	if mode == PairedIncremental {
		if ip, ok := p.S1.(incrementalPairable); ok {
			if eng, ok := ip.newIncrementalPairedEngine(p.S2); ok {
				return eng
			}
		}
	}
	var e fullPairedEngine
	e.p = p
	return e
}

// fullPairedEngine is the mode-agnostic fallback: two independent sessions,
// one full traversal per row.
type fullPairedEngine struct {
	p Pair
}

func (e fullPairedEngine) Mode() PairedMode { return PairedFull }

func (e fullPairedEngine) NewSession() PairedSession {
	s := &fullPairedSession{s1: NewSession(e.p.S1), s2: NewSession(e.p.S2)}
	// When the second snapshot unwraps to an unweighted graph, the session
	// also offers the Δ-threshold bounded traversal (see pruned.go).
	if g2, ok := UnweightedGraph(e.p.S2); ok {
		s.g2 = g2
	}
	return s
}

type fullPairedSession struct {
	s1, s2 Session
	// g2 and pruned back the PrunedPairSession capability; g2 is nil when
	// the second source is not BFS-backed and bounded calls fall back to
	// full traversals.
	g2     *graph.Graph
	pruned *sssp.PrunedScratch
}

func (s *fullPairedSession) DistancesPairInto(src int, d1, d2 []int32) {
	s.s1.DistancesInto(src, d1)
	s.s2.DistancesInto(src, d2)
}

// DeriveInto in full mode ignores d1 and recomputes the t2 row from scratch.
func (s *fullPairedSession) DeriveInto(src int, d1, d2 []int32) {
	s.s2.DistancesInto(src, d2)
}

// incrementalSweeper is the optional capability of paired engines with a
// batched multi-source driver (the BFS incremental engine routes the t1 side
// through sssp's multi-source kernels).
type incrementalSweeper interface {
	sweep(ctx context.Context, sources []int, workers int, fn func(src int, d1, d2 []int32)) error
}

// IncrementalPairedSweep is PairedSweep's incremental sibling: for every
// source it produces the G_t1 row with a full traversal and derives the
// G_t2 row via the shared edge delta, invoking fn(src, d1, d2) from at most
// workers goroutines (buffers only valid during the call). Pairs without
// the incremental capability fall back to the regular PairedSweep. Returns
// the mode that actually ran. Costs 2·len(sources) budget units either way
// (the cost model charges rows produced, not traversal work).
func IncrementalPairedSweep(p Pair, sources []int, workers int, fn func(src int, d1, d2 []int32)) PairedMode {
	mode, _ := IncrementalPairedSweepCtx(context.Background(), p, sources, workers, fn)
	return mode
}

// IncrementalPairedSweepCtx is IncrementalPairedSweep under a context, with
// the same cancellation contract as SweepCtx: no new source starts after ctx
// is done, in-flight row pairs are delivered whole, scratch stays reusable.
func IncrementalPairedSweepCtx(ctx context.Context, p Pair, sources []int, workers int, fn func(src int, d1, d2 []int32)) (PairedMode, error) {
	eng := NewPairedEngine(p, PairedIncremental)
	if eng.Mode() != PairedIncremental {
		return PairedFull, PairedSweepCtx(ctx, p, sources, workers, fn)
	}
	if sw, ok := eng.(incrementalSweeper); ok {
		return PairedIncremental, sw.sweep(ctx, sources, workers, fn)
	}
	// Generic pool: one incremental session per worker.
	n := p.NumNodes()
	workers = sssp.ClampWorkers(workers, len(sources))
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go pprof.Do(context.Background(), pprof.Labels("subsystem", "dist-sweep"),
			func(context.Context) {
				defer wg.Done()
				sess := eng.NewSession()
				d1 := make([]int32, n)
				d2 := make([]int32, n)
				for i := range next {
					if ctx.Err() != nil {
						continue // drain without traversing
					}
					src := sources[i]
					sess.DistancesPairInto(src, d1, d2)
					fn(src, d1, d2)
				}
			})
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
	return PairedIncremental, ctx.Err()
}
