package dist

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sssp"
)

// TestBatcherRowsMatchUnbatched pins the batching invariant: rows delivered
// through a Batcher are bit-identical to direct queries, for every request
// shape (single requests, duplicate sources, bulk sweeps).
func TestBatcherRowsMatchUnbatched(t *testing.T) {
	g := randomGraph(t, 80, 7)
	src := NewBFS(g, sssp.Auto)
	b := NewBatcher(src, BatcherOptions{Immediate: true})
	n := g.NumNodes()

	want := make([]int32, n)
	got := make([]int32, n)
	for u := 0; u < n; u += 7 {
		src.DistancesInto(u, want)
		b.DistancesInto(u, got)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("batched row from %d differs", u)
		}
	}

	sources := []int{3, 11, 3, 40, 11} // duplicates share one lane
	direct := DistanceMatrix(src, sources, 2)
	batched := DistanceMatrix(b, sources, 2)
	if !reflect.DeepEqual(direct, batched) {
		t.Fatalf("batched distance matrix differs from direct")
	}
}

// TestBatcherCoalescesConcurrentRequests drives many goroutines through one
// window and asserts they shared sweeps: the sources_per_sweep histogram must
// record a multi-source flush, and every caller must still get its own
// correct row.
func TestBatcherCoalescesConcurrentRequests(t *testing.T) {
	g := randomGraph(t, 80, 9)
	src := NewBFS(g, sssp.Auto)
	b := NewBatcher(src, BatcherOptions{Window: 50 * time.Millisecond})
	n := g.NumNodes()

	before := sourcesPerSweep.Count()
	const callers = 8
	rows := make([][]int32, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows[i] = make([]int32, n)
			b.DistancesInto(i*5, rows[i])
		}()
	}
	wg.Wait()

	want := make([]int32, n)
	for i := 0; i < callers; i++ {
		src.DistancesInto(i*5, want)
		if !reflect.DeepEqual(want, rows[i]) {
			t.Fatalf("caller %d got a wrong row", i)
		}
	}
	flushes := sourcesPerSweep.Count() - before
	if flushes < 1 {
		t.Fatalf("no batched sweep recorded")
	}
	// All 8 requests landed inside one 50ms window, so at least one flush
	// carried more than one source (they cannot all have flushed alone:
	// 8 flushes of 1 source each would need 8 separate windows).
	if flushes >= callers {
		t.Fatalf("requests did not coalesce: %d flushes for %d concurrent requests", flushes, callers)
	}
}

// TestBatcherFullBatchFlushesEarly pins that a batch reaching MaxBatch sweeps
// immediately instead of waiting out the window: with a window far longer
// than the test timeout would tolerate, a bulk sweep of exactly MaxBatch
// sources must complete promptly.
func TestBatcherFullBatchFlushesEarly(t *testing.T) {
	g := randomGraph(t, 60, 11)
	src := NewBFS(g, sssp.Auto)
	b := NewBatcher(src, BatcherOptions{Window: time.Hour, MaxBatch: 4})

	sources := []int{1, 2, 3, 4}
	done := make(chan [][]int32, 1)
	go func() { done <- DistanceMatrix(b, sources, 1) }()
	select {
	case rows := <-done:
		want := DistanceMatrix(src, sources, 1)
		if !reflect.DeepEqual(want, rows) {
			t.Fatalf("full-batch rows differ from direct")
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("full batch did not flush before the window expired")
	}
}

// TestBatcherCancellation pins the withdrawal contract: a caller whose ctx
// dies before the window flushes returns promptly with ctx's error, its dst
// is never written afterwards, and the batcher remains usable.
func TestBatcherCancellation(t *testing.T) {
	g := randomGraph(t, 60, 13)
	src := NewBFS(g, sssp.Auto)
	b := NewBatcher(src, BatcherOptions{Window: time.Hour})
	n := g.NumNodes()

	ctx, cancel := context.WithCancel(context.Background())
	dst := make([]int32, n)
	errc := make(chan error, 1)
	go func() { errc <- b.DistancesIntoCtx(ctx, 5, dst) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("canceled request did not return")
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatalf("withdrawn request's dst was written")
		}
	}

	// The batcher still serves after a canceled window (the abandoned batch
	// flushes on its own time; a fresh immediate-ish request must not hang on
	// its corpse). Use a fresh batcher to keep the hour-long timer out of the
	// test's way.
	b2 := NewBatcher(src, BatcherOptions{Immediate: true})
	want := make([]int32, n)
	got := make([]int32, n)
	src.DistancesInto(5, want)
	b2.DistancesInto(5, got)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-cancel batcher returned a wrong row")
	}
}

// TestBatcherSeesThroughToGraph pins Unwrap integration: structural
// consumers must find the underlying *graph.Graph behind a Batcher.
func TestBatcherSeesThroughToGraph(t *testing.T) {
	g := randomGraph(t, 30, 17)
	b := NewBatcher(NewBFS(g, sssp.Auto), BatcherOptions{Immediate: true})
	got, ok := UnweightedGraph(b)
	if !ok || got != g {
		t.Fatalf("UnweightedGraph did not unwrap the batcher")
	}
}

// TestBatcherIncrementalPairedDelegates pins that a batched pair still
// supports incremental paired mode (delegated to the wrapped BFS sources)
// and produces rows identical to the full mode.
func TestBatcherIncrementalPairedDelegates(t *testing.T) {
	g1, g2 := evolvedPair(t, 70, 19)
	p := Pair{
		S1: NewBatcher(NewBFS(g1, sssp.Auto), BatcherOptions{Immediate: true}),
		S2: NewBatcher(NewBFS(g2, sssp.Auto), BatcherOptions{Immediate: true}),
	}
	eng := NewPairedEngine(p, PairedIncremental)
	if eng.Mode() != PairedIncremental {
		t.Fatalf("batched pair lost the incremental capability")
	}
	n := g1.NumNodes()
	sess := eng.NewSession()
	d1 := make([]int32, n)
	d2 := make([]int32, n)
	w1 := make([]int32, n)
	w2 := make([]int32, n)
	full := NewPairedEngine(Pair{S1: NewBFS(g1, sssp.Auto), S2: NewBFS(g2, sssp.Auto)}, PairedFull).NewSession()
	for _, u := range []int{0, 7, 33} {
		sess.DistancesPairInto(u, d1, d2)
		full.DistancesPairInto(u, w1, w2)
		if !reflect.DeepEqual(d1, w1) || !reflect.DeepEqual(d2, w2) {
			t.Fatalf("incremental-through-batcher rows differ at source %d", u)
		}
	}
}
