package dist

import (
	"repro/internal/graph"
	"repro/internal/sssp"
)

// BFS is the unweighted distance source: hop distances on a graph.Graph via
// the sssp BFS kernels. The zero engine (sssp.Auto) picks the fastest kernel
// per call; ablations pin one.
type BFS struct {
	g      *graph.Graph
	engine sssp.Engine
}

// NewBFS wraps g as a distance source computing distances with the given
// BFS kernel (sssp.Auto for automatic selection).
func NewBFS(g *graph.Graph, engine sssp.Engine) *BFS {
	return &BFS{g: g, engine: engine}
}

// BFSPair wraps an unweighted snapshot pair as a dist.Pair sharing one
// engine choice. The caller validates the pair (supergraph invariant).
func BFSPair(pair graph.SnapshotPair, engine sssp.Engine) Pair {
	return Pair{S1: NewBFS(pair.G1, engine), S2: NewBFS(pair.G2, engine)}
}

// NumNodes returns the node-universe size.
func (s *BFS) NumNodes() int { return s.g.NumNodes() }

// NumEdges returns the undirected edge count.
func (s *BFS) NumEdges() int { return s.g.NumEdges() }

// Degree returns the neighbor count of u.
func (s *BFS) Degree(u int) int { return s.g.Degree(u) }

// NeighborIDs returns u's adjacency; aliases internal storage.
func (s *BFS) NeighborIDs(u int) []int32 { return s.g.Neighbors(u) }

// Graph returns the underlying unweighted graph, for structural consumers
// (betweenness, embeddings, DOT export) that need more than distances.
func (s *BFS) Graph() *graph.Graph { return s.g }

// Engine returns the configured BFS kernel.
func (s *BFS) Engine() sssp.Engine { return s.engine }

// DistancesInto runs one BFS from src, borrowing pooled scratch.
func (s *BFS) DistancesInto(src int, dst []int32) {
	sssp.BFSWith(s.g, src, dst, s.engine, nil)
}

// NewSession returns a handle owning a private sssp.Scratch.
func (s *BFS) NewSession() Session {
	return &bfsSession{src: s, scratch: sssp.NewScratch(s.g.NumNodes())}
}

// Sweep drives the batched multi-source kernels (bit-parallel BFS when the
// engine resolution picks it), amortizing traversals across sources.
func (s *BFS) Sweep(sources []int, workers int, fn func(src int, dst []int32)) {
	sssp.AllSourcesEngineFunc(s.g, sources, workers, s.engine, fn)
}

// pairedSweep implements the paired fast path when both snapshots are
// BFS-backed with the same engine, reusing one traversal state for the
// (G_t1, G_t2) row pair per source.
func (s *BFS) pairedSweep(other Source, sources []int, workers int, fn func(src int, d1, d2 []int32)) bool {
	o, ok := other.(*BFS)
	if !ok || o.engine != s.engine {
		return false
	}
	sssp.PairedSourcesEngineFunc(s.g, o.g, sources, workers, s.engine, fn)
	return true
}

// bfsSession reuses one scratch across queries from a single goroutine.
type bfsSession struct {
	src     *BFS
	scratch *sssp.Scratch
}

func (s *bfsSession) DistancesInto(src int, dst []int32) {
	sssp.BFSWith(s.src.g, src, dst, s.src.engine, s.scratch)
}

// UnweightedGraph unwraps a Source to its underlying *graph.Graph when it is
// BFS-backed. Structural selectors (betweenness, embedding, incidence) use
// this to detect — and cleanly reject — metrics they do not generalize to.
func UnweightedGraph(s Source) (*graph.Graph, bool) {
	if b, ok := s.(*BFS); ok {
		return b.g, true
	}
	return nil, false
}
