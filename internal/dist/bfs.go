package dist

import (
	"context"
	"sync"

	"repro/internal/dynsssp"
	"repro/internal/graph"
	"repro/internal/sssp"
)

// BFS is the unweighted distance source: hop distances on a graph.Graph via
// the sssp BFS kernels. The zero engine (sssp.Auto) picks the fastest kernel
// per call; ablations pin one.
type BFS struct {
	g      *graph.Graph
	engine sssp.Engine
	par    int
}

// NewBFS wraps g as a distance source computing distances with the given
// BFS kernel (sssp.Auto for automatic selection). Intra-traversal
// parallelism follows the process default; use NewBFSPar to pin it.
func NewBFS(g *graph.Graph, engine sssp.Engine) *BFS {
	return NewBFSPar(g, engine, 0)
}

// NewBFSPar is NewBFS with an explicit intra-traversal parallelism: every
// traversal this source runs may split its frontiers across par cores
// (0 = process default, <= 1 = serial). Orthogonal to the sweep workers
// knob, which spreads sources; see sssp.AllSourcesParEngineFunc.
func NewBFSPar(g *graph.Graph, engine sssp.Engine, par int) *BFS {
	return &BFS{g: g, engine: engine, par: par}
}

// BFSPair wraps an unweighted snapshot pair as a dist.Pair sharing one
// engine choice. The caller validates the pair (supergraph invariant).
func BFSPair(pair graph.SnapshotPair, engine sssp.Engine) Pair {
	return BFSPairPar(pair, engine, 0)
}

// BFSPairPar is BFSPair with an explicit intra-traversal parallelism shared
// by both snapshots.
func BFSPairPar(pair graph.SnapshotPair, engine sssp.Engine, par int) Pair {
	return Pair{S1: NewBFSPar(pair.G1, engine, par), S2: NewBFSPar(pair.G2, engine, par)}
}

// NumNodes returns the node-universe size.
func (s *BFS) NumNodes() int { return s.g.NumNodes() }

// NumEdges returns the undirected edge count.
func (s *BFS) NumEdges() int { return s.g.NumEdges() }

// Degree returns the neighbor count of u.
func (s *BFS) Degree(u int) int { return s.g.Degree(u) }

// NeighborIDs returns u's adjacency; aliases internal storage.
func (s *BFS) NeighborIDs(u int) []int32 { return s.g.Neighbors(u) }

// Graph returns the underlying unweighted graph, for structural consumers
// (betweenness, embeddings, DOT export) that need more than distances.
func (s *BFS) Graph() *graph.Graph { return s.g }

// Engine returns the configured BFS kernel.
func (s *BFS) Engine() sssp.Engine { return s.engine }

// Parallelism returns the configured intra-traversal parallelism (0 means
// the process default).
func (s *BFS) Parallelism() int { return s.par }

// DistancesInto runs one BFS from src, borrowing pooled scratch.
func (s *BFS) DistancesInto(src int, dst []int32) {
	sssp.ParallelBFSWith(s.g, src, dst, s.engine, s.par, nil)
}

// NewSession returns a handle owning a private sssp.Scratch.
func (s *BFS) NewSession() Session {
	return &bfsSession{src: s, scratch: sssp.NewScratch(s.g.NumNodes())}
}

// SweepCtx drives the batched multi-source kernels (bit-parallel BFS when
// the engine resolution picks it), amortizing traversals across sources;
// once ctx is done no further source or batch starts.
func (s *BFS) SweepCtx(ctx context.Context, sources []int, workers int, fn func(src int, dst []int32)) error {
	return sssp.AllSourcesParEngineCtxFunc(ctx, s.g, sources, workers, s.engine, s.par, fn)
}

// pairedSweep implements the paired fast path when both snapshots are
// BFS-backed with the same engine, reusing one traversal state for the
// (G_t1, G_t2) row pair per source.
func (s *BFS) pairedSweep(ctx context.Context, other Source, sources []int, workers int, fn func(src int, d1, d2 []int32)) (bool, error) {
	o, ok := other.(*BFS)
	if !ok || o.engine != s.engine {
		return false, nil
	}
	return true, sssp.PairedSourcesParEngineCtxFunc(ctx, s.g, o.g, sources, workers, s.engine, s.par, fn)
}

// bfsSession reuses one scratch across queries from a single goroutine.
type bfsSession struct {
	src     *BFS
	scratch *sssp.Scratch
}

func (s *bfsSession) DistancesInto(src int, dst []int32) {
	sssp.ParallelBFSWith(s.src.g, src, dst, s.src.engine, s.src.par, s.scratch)
}

// newIncrementalPairedEngine implements the incrementalPairable capability:
// when both sides are BFS-backed over the same node universe, the engine
// computes each source's t1 row with the regular kernels and repairs a copy
// of it into the t2 row with dynsssp's batch decrease-only wave over the
// edge delta G2 \ G1 — computed once here and shared read-only by every
// session. S1's engine drives the t1 traversal; S2's engine is irrelevant
// because G2 is never fully traversed.
func (s *BFS) newIncrementalPairedEngine(other Source) (PairedEngine, bool) {
	o, ok := other.(*BFS)
	if !ok || o.g.NumNodes() != s.g.NumNodes() {
		return nil, false
	}
	return &incrPairedEngine{
		g1:     s.g,
		g2:     o.g,
		engine: s.engine,
		par:    s.par,
		delta:  graph.NewDelta(s.g, o.g),
	}, true
}

// incrPairedEngine is the BFS-backed incremental paired engine. Immutable
// after construction; sessions and the batched sweep share it concurrently.
type incrPairedEngine struct {
	g1, g2 *graph.Graph
	engine sssp.Engine
	par    int
	delta  *graph.Delta
}

func (e *incrPairedEngine) Mode() PairedMode { return PairedIncremental }

func (e *incrPairedEngine) NewSession() PairedSession {
	return &incrPairedSession{
		e:       e,
		scratch: sssp.NewScratch(e.g1.NumNodes()),
		repair:  dynsssp.NewScratch(),
	}
}

// incrPairedSession owns the per-worker traversal and repair scratch.
type incrPairedSession struct {
	e       *incrPairedEngine
	scratch *sssp.Scratch
	repair  *dynsssp.Scratch
}

func (s *incrPairedSession) DistancesPairInto(src int, d1, d2 []int32) {
	sssp.ParallelBFSWith(s.e.g1, src, d1, s.e.engine, s.e.par, s.scratch)
	s.DeriveInto(src, d1, d2)
}

// DeriveInto copies the t1 row and repairs the copy over the delta; the
// result is bit-identical to a fresh BFS on G2 (pinned by differential fuzz
// tests in dynsssp and dist).
func (s *incrPairedSession) DeriveInto(src int, d1, d2 []int32) {
	copy(d2, d1)
	s.repair.ApplyAll(s.e.g2, s.e.delta.Edges, d2)
}

// incrSweepState is the pooled per-callback state of the batched incremental
// sweep: the derived-row buffer and a repair scratch.
type incrSweepState struct {
	d2     []int32
	repair *dynsssp.Scratch
}

// sweep implements incrementalSweeper: the t1 side runs through the batched
// multi-source kernels (bit-parallel BFS when the engine resolution picks
// it), and each emitted row is repaired into its t2 counterpart in the
// worker that produced it.
func (e *incrPairedEngine) sweep(ctx context.Context, sources []int, workers int, fn func(src int, d1, d2 []int32)) error {
	n := e.g1.NumNodes()
	var pool sync.Pool
	return sssp.AllSourcesParEngineCtxFunc(ctx, e.g1, sources, workers, e.engine, e.par, func(src int, d1 []int32) {
		st, _ := pool.Get().(*incrSweepState)
		if st == nil {
			st = &incrSweepState{d2: make([]int32, n), repair: dynsssp.NewScratch()}
		}
		copy(st.d2, d1)
		st.repair.ApplyAll(e.g2, e.delta.Edges, st.d2)
		fn(src, d1, st.d2)
		pool.Put(st)
	})
}

// UnweightedGraph unwraps a Source to its underlying *graph.Graph when it is
// BFS-backed, looking through wrappers (e.g. the cross-request Batcher) that
// expose Unwrap. Structural selectors (betweenness, embedding, incidence)
// use this to detect — and cleanly reject — metrics they do not generalize to.
func UnweightedGraph(s Source) (*graph.Graph, bool) {
	for {
		if b, ok := s.(*BFS); ok {
			return b.g, true
		}
		u, ok := s.(interface{ Unwrap() Source })
		if !ok {
			return nil, false
		}
		s = u.Unwrap()
	}
}
