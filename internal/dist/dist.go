// Package dist is the distance-engine abstraction behind the paper's
// Algorithm 1. The algorithm is metric-agnostic — select m endpoints,
// compute their single-source distances on both snapshots, rank the pairwise
// decreases — so everything above the traversal kernels (selectors, budget
// metering, extraction, tracing) is written once against Source and runs
// unchanged on unweighted BFS distances and weighted Dijkstra distances.
//
// A Source is a read-only view of one snapshot that answers single-source
// distance queries; the paper's cost model charges one budget unit per
// DistancesInto call (callers charge their budget.Meter before invoking, a
// discipline convlint's budgetcheck enforces mechanically). Batched helpers
// (Sweep, PairedSweep, DistanceMatrix) let engine implementations amortize
// work across sources — the BFS source routes them to sssp's multi-source
// kernels — while the generic fallback uses per-worker Sessions so scratch
// state is reused across calls rather than reallocated per source.
package dist

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// Unreachable re-exports the distance value marking disconnected pairs, so
// dist callers need not import sssp for the sentinel.
const Unreachable = sssp.Unreachable

// Source is one snapshot under some distance metric. Implementations must be
// safe for concurrent DistancesInto calls with distinct buffers.
//
// The structural methods (NumEdges, Degree, NeighborIDs) expose the
// weight-less adjacency every selector heuristic ranks on; NeighborIDs makes
// every Source a graph.AdjacencyLister, so component analysis is shared too.
type Source interface {
	// NumNodes returns the node-universe size.
	NumNodes() int
	// NumEdges returns the undirected edge count.
	NumEdges() int
	// Degree returns the neighbor count of u.
	Degree(u int) int
	// NeighborIDs returns u's adjacency (without weights); the slice aliases
	// internal storage and must not be modified.
	NeighborIDs(u int) []int32
	// DistancesInto fills dst (length NumNodes) with the distances from src,
	// Unreachable for no path. One call costs one unit of the paper's SSSP
	// budget; callers charge their meter before invoking.
	DistancesInto(src int, dst []int32)
}

// Session is a single-goroutine handle for repeated distance queries on one
// Source, reusing traversal scratch state across calls. Obtain one per
// worker with NewSession.
type Session interface {
	// DistancesInto behaves like Source.DistancesInto and costs the same one
	// budget unit per call.
	DistancesInto(src int, dst []int32)
}

// sessioner is the optional capability of sources that provide scratch-
// reusing sessions.
type sessioner interface {
	NewSession() Session
}

// NewSession returns a scratch-reusing query handle for s. Sources without
// native sessions fall back to the source itself (correct, just without
// scratch reuse).
func NewSession(s Source) Session {
	if sp, ok := s.(sessioner); ok {
		return sp.NewSession()
	}
	return s
}

// sweeper is the optional capability of sources with a batched multi-source
// driver (e.g. the BFS source's bit-parallel kernel path).
type sweeper interface {
	SweepCtx(ctx context.Context, sources []int, workers int, fn func(src int, dst []int32)) error
}

// Sweep computes the distances from every source in sources, invoking
// fn(src, dst) once per source from at most workers goroutines; dst is only
// valid during the call. Sources with a batched kernel drive the sweep
// themselves; others get a generic session-per-worker pool. The sweep costs
// len(sources) budget units.
func Sweep(s Source, sources []int, workers int, fn func(src int, dst []int32)) {
	_ = SweepCtx(context.Background(), s, sources, workers, fn)
}

// SweepCtx is Sweep under a context: once ctx is done, no further source
// starts traversing and the driver returns ctx's error, so an abandoned
// request stops burning traversal work. Sources whose sweep already began
// deliver their rows whole (fn is never interrupted mid-row), cancellation
// never changes a delivered row, and all pooled scratch stays reusable for
// the next sweep.
func SweepCtx(ctx context.Context, s Source, sources []int, workers int, fn func(src int, dst []int32)) error {
	if sw, ok := s.(sweeper); ok {
		return sw.SweepCtx(ctx, sources, workers, fn)
	}
	n := s.NumNodes()
	workers = sssp.ClampWorkers(workers, len(sources))
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go pprof.Do(context.Background(), pprof.Labels("subsystem", "dist-sweep"),
			func(context.Context) {
				defer wg.Done()
				sess := NewSession(s)
				dst := make([]int32, n)
				for i := range next {
					if ctx.Err() != nil {
						continue // drain without traversing
					}
					src := sources[i]
					sess.DistancesInto(src, dst)
					fn(src, dst)
				}
			})
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}

// DistanceMatrix computes the full rows-by-n distance matrix from the given
// sources (row i = distances from sources[i]). Intended for candidate and
// landmark sets (small m), not all-pairs sweeps. Costs one budget unit per
// distinct source.
func DistanceMatrix(s Source, sources []int, workers int) [][]int32 {
	rows := make([][]int32, len(sources))
	index := make(map[int]int, len(sources))
	for i, src := range sources {
		index[src] = i
	}
	Sweep(s, sources, workers, func(src int, dst []int32) {
		row := make([]int32, len(dst))
		copy(row, dst)
		rows[index[src]] = row
	})
	// Duplicate sources all map to one computed row; alias it to the rest.
	for i, src := range sources {
		if rows[i] == nil {
			rows[i] = rows[index[src]]
		}
	}
	return rows
}

// Pair is a snapshot pair under one distance metric — the generic form of
// (G_t1, G_t2) that Algorithm 1 runs on.
type Pair struct {
	S1, S2 Source
}

// Validate checks that both sources exist over the same node universe. The
// metric-specific domination invariant (distances may only decrease) is the
// concrete constructors' responsibility: graph.SnapshotPair.Validate for
// BFS, weighted.SnapshotPair.Validate for Dijkstra.
func (p Pair) Validate() error {
	if p.S1 == nil || p.S2 == nil {
		return errors.New("dist: nil source in pair")
	}
	if n1, n2 := p.S1.NumNodes(), p.S2.NumNodes(); n1 != n2 {
		return fmt.Errorf("dist: node universes differ: %d vs %d", n1, n2)
	}
	return nil
}

// NumNodes returns the shared node-universe size.
func (p Pair) NumNodes() int { return p.S1.NumNodes() }

// pairedSweeper is the optional capability of source pairs with a shared
// batched driver (both BFS-backed on the same engine).
type pairedSweeper interface {
	pairedSweep(ctx context.Context, other Source, sources []int, workers int, fn func(src int, d1, d2 []int32)) (bool, error)
}

// PairedSweep computes, for every source, its distance rows on both
// snapshots and invokes fn(src, d1, d2); the buffers are only valid during
// the call. BFS pairs route to sssp's paired multi-source kernels; anything
// else runs the generic session pool. Costs 2·len(sources) budget units.
func PairedSweep(p Pair, sources []int, workers int, fn func(src int, d1, d2 []int32)) {
	_ = PairedSweepCtx(context.Background(), p, sources, workers, fn)
}

// PairedSweepCtx is PairedSweep under a context, with the same cancellation
// contract as SweepCtx: no new source starts after ctx is done, in-flight row
// pairs are delivered whole, scratch stays reusable.
func PairedSweepCtx(ctx context.Context, p Pair, sources []int, workers int, fn func(src int, d1, d2 []int32)) error {
	if ps, ok := p.S1.(pairedSweeper); ok {
		if handled, err := ps.pairedSweep(ctx, p.S2, sources, workers, fn); handled {
			return err
		}
	}
	n := p.NumNodes()
	workers = sssp.ClampWorkers(workers, len(sources))
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go pprof.Do(context.Background(), pprof.Labels("subsystem", "dist-sweep"),
			func(context.Context) {
				defer wg.Done()
				s1 := NewSession(p.S1)
				s2 := NewSession(p.S2)
				d1 := make([]int32, n)
				d2 := make([]int32, n)
				for i := range next {
					if ctx.Err() != nil {
						continue // drain without traversing
					}
					src := sources[i]
					s1.DistancesInto(src, d1)
					s2.DistancesInto(src, d2)
					fn(src, d1, d2)
				}
			})
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}

// LargestComponent returns the nodes of s's largest connected component,
// sorted ascending, with the total component count. Component analysis is
// structural (free in the paper's cost model), shared across metrics via
// graph.LargestComponentOf.
func LargestComponent(s Source) (nodes []int, components int) {
	return graph.LargestComponentOf(s)
}

// Density returns the edge density 2E / (N (N-1)) of a source's snapshot.
func Density(s Source) float64 {
	n := s.NumNodes()
	if n < 2 {
		return 0
	}
	return 2 * float64(s.NumEdges()) / (float64(n) * float64(n-1))
}

// MaxDegree returns the largest degree of a source's snapshot.
func MaxDegree(s Source) int {
	max := 0
	for u := 0; u < s.NumNodes(); u++ {
		if d := s.Degree(u); d > max {
			max = d
		}
	}
	return max
}

