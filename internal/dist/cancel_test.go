package dist

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/sssp"
)

// slowSource wraps a Source so each row blocks until released, letting the
// cancellation tests park a sweep mid-flight deterministically. It hides the
// BFS sweep capability on purpose: the generic worker-pool paths are what the
// drain contract protects.
type slowSource struct {
	inner   Source
	started atomic.Int64
	release chan struct{}
}

func newSlowSource(inner Source) *slowSource {
	return &slowSource{inner: inner, release: make(chan struct{})}
}

func (s *slowSource) NumNodes() int            { return s.inner.NumNodes() }
func (s *slowSource) NumEdges() int            { return s.inner.NumEdges() }
func (s *slowSource) Degree(u int) int         { return s.inner.Degree(u) }
func (s *slowSource) NeighborIDs(u int) []int32 { return s.inner.NeighborIDs(u) }

func (s *slowSource) DistancesInto(src int, dst []int32) {
	s.started.Add(1)
	<-s.release
	s.inner.DistancesInto(src, dst)
}

// TestSweepCtxCancellation pins the drain contract on the generic sweep pool:
// once ctx dies, queued sources are skipped without traversing, the call
// returns ctx's error promptly, and rows delivered before the cut are whole
// and correct.
func TestSweepCtxCancellation(t *testing.T) {
	g := randomGraph(t, 60, 21)
	slow := newSlowSource(NewBFS(g, sssp.Auto))
	sources := make([]int, 20)
	for i := range sources {
		sources[i] = i
	}

	ctx, cancel := context.WithCancel(context.Background())
	var delivered atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- SweepCtx(ctx, slow, sources, 2, func(src int, dst []int32) {
			delivered.Add(1)
		})
	}()

	// Let the two workers park on their first rows, then cut the context and
	// release them: the workers finish those rows whole, then drain the other
	// 18 queued sources without traversing.
	for slow.started.Load() < 2 {
		runtime.Gosched()
	}
	cancel()
	close(slow.release)

	err := <-errc
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := delivered.Load(); got > 4 {
		t.Fatalf("sweep kept traversing after cancel: %d rows delivered", got)
	}
	if started := slow.started.Load(); started >= int64(len(sources)) {
		t.Fatalf("queued sources were traversed after cancel: %d started", started)
	}
}

// TestPairedSweepCtxCancellation is the same contract on the paired generic
// pool.
func TestPairedSweepCtxCancellation(t *testing.T) {
	g1, g2 := evolvedPair(t, 60, 23)
	slow1 := newSlowSource(NewBFS(g1, sssp.Auto))
	p := Pair{S1: slow1, S2: NewBFS(g2, sssp.Auto)}
	sources := make([]int, 20)
	for i := range sources {
		sources[i] = i
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- PairedSweepCtx(ctx, p, sources, 2, func(src int, d1, d2 []int32) {})
	}()
	for slow1.started.Load() < 2 {
		runtime.Gosched()
	}
	cancel()
	close(slow1.release)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if started := slow1.started.Load(); started >= int64(len(sources)) {
		t.Fatalf("queued sources were traversed after cancel: %d started", started)
	}
}

// TestSweepCtxCancelBFSKernels pins that the BFS-backed kernel drivers (the
// wide bit-parallel path included) honor cancellation: a pre-canceled context
// sweeps nothing and returns its error, for every engine.
func TestSweepCtxCancelBFSKernels(t *testing.T) {
	g := randomGraph(t, 80, 25)
	sources := make([]int, 70) // > 64 forces the wide path to chunk
	for i := range sources {
		sources[i] = i
	}
	for _, e := range []sssp.Engine{sssp.TopDown, sssp.BitParallel64} {
		src := NewBFS(g, e)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		swept := 0
		err := SweepCtx(ctx, src, sources, 2, func(int, []int32) { swept++ })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %v: got %v, want context.Canceled", e, err)
		}
		if swept != 0 {
			t.Fatalf("engine %v: pre-canceled sweep delivered %d rows", e, swept)
		}
	}
}

// TestSweepReusableAfterCancel pins the "scratch stays reusable" half of the
// contract: a source whose sweep was canceled must produce correct rows on
// the next, uncanceled sweep.
func TestSweepReusableAfterCancel(t *testing.T) {
	g := randomGraph(t, 80, 27)
	src := NewBFS(g, sssp.BitParallel64)
	sources := make([]int, 70)
	for i := range sources {
		sources[i] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = SweepCtx(ctx, src, sources, 2, func(int, []int32) {})

	want := DistanceMatrix(NewBFS(g, sssp.TopDown), sources, 1)
	got := DistanceMatrix(src, sources, 2)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-cancel sweep rows differ")
	}
}

// TestIncrementalPairedSweepCtx pins ctx plumbing on the incremental driver:
// an uncanceled run matches the non-ctx API, and a pre-canceled run reports
// the context error without delivering rows.
func TestIncrementalPairedSweepCtx(t *testing.T) {
	g1, g2 := evolvedPair(t, 70, 29)
	p := Pair{S1: NewBFS(g1, sssp.Auto), S2: NewBFS(g2, sssp.Auto)}
	sources := []int{0, 5, 12, 31}

	type row struct{ d1, d2 []int32 }
	collect := func(run func(fn func(src int, d1, d2 []int32))) map[int]row {
		out := make(map[int]row)
		run(func(src int, d1, d2 []int32) {
			out[src] = row{append([]int32(nil), d1...), append([]int32(nil), d2...)}
		})
		return out
	}
	direct := collect(func(fn func(int, []int32, []int32)) {
		IncrementalPairedSweep(p, sources, 2, fn)
	})
	viaCtx := collect(func(fn func(int, []int32, []int32)) {
		mode, err := IncrementalPairedSweepCtx(context.Background(), p, sources, 2, fn)
		if mode != PairedIncremental || err != nil {
			t.Fatalf("ctx run: mode %v err %v", mode, err)
		}
	})
	if !reflect.DeepEqual(direct, viaCtx) {
		t.Fatalf("ctx and non-ctx incremental sweeps differ")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	delivered := 0
	if _, err := IncrementalPairedSweepCtx(ctx, p, sources, 2, func(int, []int32, []int32) {
		delivered++
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if delivered != 0 {
		t.Fatalf("pre-canceled incremental sweep delivered %d rows", delivered)
	}
}
